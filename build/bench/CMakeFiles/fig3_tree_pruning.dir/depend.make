# Empty dependencies file for fig3_tree_pruning.
# This may be replaced when dependencies are built.
