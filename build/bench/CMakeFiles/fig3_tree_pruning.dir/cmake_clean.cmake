file(REMOVE_RECURSE
  "CMakeFiles/fig3_tree_pruning.dir/fig3_tree_pruning.cpp.o"
  "CMakeFiles/fig3_tree_pruning.dir/fig3_tree_pruning.cpp.o.d"
  "fig3_tree_pruning"
  "fig3_tree_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tree_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
