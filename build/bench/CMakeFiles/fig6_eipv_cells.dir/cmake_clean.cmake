file(REMOVE_RECURSE
  "CMakeFiles/fig6_eipv_cells.dir/fig6_eipv_cells.cpp.o"
  "CMakeFiles/fig6_eipv_cells.dir/fig6_eipv_cells.cpp.o.d"
  "fig6_eipv_cells"
  "fig6_eipv_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_eipv_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
