# Empty compiler generated dependencies file for fig6_eipv_cells.
# This may be replaced when dependencies are built.
