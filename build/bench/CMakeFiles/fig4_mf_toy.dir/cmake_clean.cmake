file(REMOVE_RECURSE
  "CMakeFiles/fig4_mf_toy.dir/fig4_mf_toy.cpp.o"
  "CMakeFiles/fig4_mf_toy.dir/fig4_mf_toy.cpp.o.d"
  "fig4_mf_toy"
  "fig4_mf_toy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mf_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
