# Empty dependencies file for fig4_mf_toy.
# This may be replaced when dependencies are built.
