# Empty compiler generated dependencies file for micro_pareto.
# This may be replaced when dependencies are built.
