file(REMOVE_RECURSE
  "CMakeFiles/micro_pareto.dir/micro_pareto.cpp.o"
  "CMakeFiles/micro_pareto.dir/micro_pareto.cpp.o.d"
  "micro_pareto"
  "micro_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
