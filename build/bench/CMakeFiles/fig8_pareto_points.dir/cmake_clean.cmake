file(REMOVE_RECURSE
  "CMakeFiles/fig8_pareto_points.dir/fig8_pareto_points.cpp.o"
  "CMakeFiles/fig8_pareto_points.dir/fig8_pareto_points.cpp.o.d"
  "fig8_pareto_points"
  "fig8_pareto_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pareto_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
