file(REMOVE_RECURSE
  "libcmmfo_hls.a"
)
