
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/design_space.cpp" "src/hls/CMakeFiles/cmmfo_hls.dir/design_space.cpp.o" "gcc" "src/hls/CMakeFiles/cmmfo_hls.dir/design_space.cpp.o.d"
  "/root/repo/src/hls/directives.cpp" "src/hls/CMakeFiles/cmmfo_hls.dir/directives.cpp.o" "gcc" "src/hls/CMakeFiles/cmmfo_hls.dir/directives.cpp.o.d"
  "/root/repo/src/hls/encoding.cpp" "src/hls/CMakeFiles/cmmfo_hls.dir/encoding.cpp.o" "gcc" "src/hls/CMakeFiles/cmmfo_hls.dir/encoding.cpp.o.d"
  "/root/repo/src/hls/kernel_ir.cpp" "src/hls/CMakeFiles/cmmfo_hls.dir/kernel_ir.cpp.o" "gcc" "src/hls/CMakeFiles/cmmfo_hls.dir/kernel_ir.cpp.o.d"
  "/root/repo/src/hls/pruner.cpp" "src/hls/CMakeFiles/cmmfo_hls.dir/pruner.cpp.o" "gcc" "src/hls/CMakeFiles/cmmfo_hls.dir/pruner.cpp.o.d"
  "/root/repo/src/hls/space_parser.cpp" "src/hls/CMakeFiles/cmmfo_hls.dir/space_parser.cpp.o" "gcc" "src/hls/CMakeFiles/cmmfo_hls.dir/space_parser.cpp.o.d"
  "/root/repo/src/hls/tcl_emitter.cpp" "src/hls/CMakeFiles/cmmfo_hls.dir/tcl_emitter.cpp.o" "gcc" "src/hls/CMakeFiles/cmmfo_hls.dir/tcl_emitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/cmmfo_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
