file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_hls.dir/design_space.cpp.o"
  "CMakeFiles/cmmfo_hls.dir/design_space.cpp.o.d"
  "CMakeFiles/cmmfo_hls.dir/directives.cpp.o"
  "CMakeFiles/cmmfo_hls.dir/directives.cpp.o.d"
  "CMakeFiles/cmmfo_hls.dir/encoding.cpp.o"
  "CMakeFiles/cmmfo_hls.dir/encoding.cpp.o.d"
  "CMakeFiles/cmmfo_hls.dir/kernel_ir.cpp.o"
  "CMakeFiles/cmmfo_hls.dir/kernel_ir.cpp.o.d"
  "CMakeFiles/cmmfo_hls.dir/pruner.cpp.o"
  "CMakeFiles/cmmfo_hls.dir/pruner.cpp.o.d"
  "CMakeFiles/cmmfo_hls.dir/space_parser.cpp.o"
  "CMakeFiles/cmmfo_hls.dir/space_parser.cpp.o.d"
  "CMakeFiles/cmmfo_hls.dir/tcl_emitter.cpp.o"
  "CMakeFiles/cmmfo_hls.dir/tcl_emitter.cpp.o.d"
  "libcmmfo_hls.a"
  "libcmmfo_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
