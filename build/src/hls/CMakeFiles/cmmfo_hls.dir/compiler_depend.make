# Empty compiler generated dependencies file for cmmfo_hls.
# This may be replaced when dependencies are built.
