# Empty dependencies file for cmmfo_gp.
# This may be replaced when dependencies are built.
