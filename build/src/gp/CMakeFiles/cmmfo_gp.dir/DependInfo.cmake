
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/ard_kernels.cpp" "src/gp/CMakeFiles/cmmfo_gp.dir/ard_kernels.cpp.o" "gcc" "src/gp/CMakeFiles/cmmfo_gp.dir/ard_kernels.cpp.o.d"
  "/root/repo/src/gp/composite_kernels.cpp" "src/gp/CMakeFiles/cmmfo_gp.dir/composite_kernels.cpp.o" "gcc" "src/gp/CMakeFiles/cmmfo_gp.dir/composite_kernels.cpp.o.d"
  "/root/repo/src/gp/gp_regressor.cpp" "src/gp/CMakeFiles/cmmfo_gp.dir/gp_regressor.cpp.o" "gcc" "src/gp/CMakeFiles/cmmfo_gp.dir/gp_regressor.cpp.o.d"
  "/root/repo/src/gp/kernel.cpp" "src/gp/CMakeFiles/cmmfo_gp.dir/kernel.cpp.o" "gcc" "src/gp/CMakeFiles/cmmfo_gp.dir/kernel.cpp.o.d"
  "/root/repo/src/gp/linear_mf_gp.cpp" "src/gp/CMakeFiles/cmmfo_gp.dir/linear_mf_gp.cpp.o" "gcc" "src/gp/CMakeFiles/cmmfo_gp.dir/linear_mf_gp.cpp.o.d"
  "/root/repo/src/gp/multitask_gp.cpp" "src/gp/CMakeFiles/cmmfo_gp.dir/multitask_gp.cpp.o" "gcc" "src/gp/CMakeFiles/cmmfo_gp.dir/multitask_gp.cpp.o.d"
  "/root/repo/src/gp/nonlinear_mf_gp.cpp" "src/gp/CMakeFiles/cmmfo_gp.dir/nonlinear_mf_gp.cpp.o" "gcc" "src/gp/CMakeFiles/cmmfo_gp.dir/nonlinear_mf_gp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/cmmfo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cmmfo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/cmmfo_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
