file(REMOVE_RECURSE
  "libcmmfo_gp.a"
)
