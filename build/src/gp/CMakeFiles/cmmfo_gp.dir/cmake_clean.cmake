file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_gp.dir/ard_kernels.cpp.o"
  "CMakeFiles/cmmfo_gp.dir/ard_kernels.cpp.o.d"
  "CMakeFiles/cmmfo_gp.dir/composite_kernels.cpp.o"
  "CMakeFiles/cmmfo_gp.dir/composite_kernels.cpp.o.d"
  "CMakeFiles/cmmfo_gp.dir/gp_regressor.cpp.o"
  "CMakeFiles/cmmfo_gp.dir/gp_regressor.cpp.o.d"
  "CMakeFiles/cmmfo_gp.dir/kernel.cpp.o"
  "CMakeFiles/cmmfo_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/cmmfo_gp.dir/linear_mf_gp.cpp.o"
  "CMakeFiles/cmmfo_gp.dir/linear_mf_gp.cpp.o.d"
  "CMakeFiles/cmmfo_gp.dir/multitask_gp.cpp.o"
  "CMakeFiles/cmmfo_gp.dir/multitask_gp.cpp.o.d"
  "CMakeFiles/cmmfo_gp.dir/nonlinear_mf_gp.cpp.o"
  "CMakeFiles/cmmfo_gp.dir/nonlinear_mf_gp.cpp.o.d"
  "libcmmfo_gp.a"
  "libcmmfo_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
