file(REMOVE_RECURSE
  "libcmmfo_core.a"
)
