# Empty dependencies file for cmmfo_core.
# This may be replaced when dependencies are built.
