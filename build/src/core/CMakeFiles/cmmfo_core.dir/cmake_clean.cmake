file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_core.dir/acquisition.cpp.o"
  "CMakeFiles/cmmfo_core.dir/acquisition.cpp.o.d"
  "CMakeFiles/cmmfo_core.dir/optimizer.cpp.o"
  "CMakeFiles/cmmfo_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/cmmfo_core.dir/surrogate.cpp.o"
  "CMakeFiles/cmmfo_core.dir/surrogate.cpp.o.d"
  "libcmmfo_core.a"
  "libcmmfo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
