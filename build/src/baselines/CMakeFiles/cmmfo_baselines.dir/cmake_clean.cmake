file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_baselines.dir/gbrt.cpp.o"
  "CMakeFiles/cmmfo_baselines.dir/gbrt.cpp.o.d"
  "CMakeFiles/cmmfo_baselines.dir/methods.cpp.o"
  "CMakeFiles/cmmfo_baselines.dir/methods.cpp.o.d"
  "CMakeFiles/cmmfo_baselines.dir/mlp.cpp.o"
  "CMakeFiles/cmmfo_baselines.dir/mlp.cpp.o.d"
  "libcmmfo_baselines.a"
  "libcmmfo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
