# Empty dependencies file for cmmfo_baselines.
# This may be replaced when dependencies are built.
