file(REMOVE_RECURSE
  "libcmmfo_baselines.a"
)
