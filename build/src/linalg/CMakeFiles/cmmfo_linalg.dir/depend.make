# Empty dependencies file for cmmfo_linalg.
# This may be replaced when dependencies are built.
