file(REMOVE_RECURSE
  "libcmmfo_linalg.a"
)
