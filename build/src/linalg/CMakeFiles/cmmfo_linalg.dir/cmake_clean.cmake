file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/cmmfo_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/cmmfo_linalg.dir/matrix.cpp.o"
  "CMakeFiles/cmmfo_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/cmmfo_linalg.dir/stats.cpp.o"
  "CMakeFiles/cmmfo_linalg.dir/stats.cpp.o.d"
  "CMakeFiles/cmmfo_linalg.dir/vec_ops.cpp.o"
  "CMakeFiles/cmmfo_linalg.dir/vec_ops.cpp.o.d"
  "libcmmfo_linalg.a"
  "libcmmfo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
