file(REMOVE_RECURSE
  "libcmmfo_pareto.a"
)
