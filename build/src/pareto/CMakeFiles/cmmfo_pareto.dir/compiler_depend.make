# Empty compiler generated dependencies file for cmmfo_pareto.
# This may be replaced when dependencies are built.
