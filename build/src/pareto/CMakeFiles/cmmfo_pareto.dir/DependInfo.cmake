
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pareto/adrs.cpp" "src/pareto/CMakeFiles/cmmfo_pareto.dir/adrs.cpp.o" "gcc" "src/pareto/CMakeFiles/cmmfo_pareto.dir/adrs.cpp.o.d"
  "/root/repo/src/pareto/cells.cpp" "src/pareto/CMakeFiles/cmmfo_pareto.dir/cells.cpp.o" "gcc" "src/pareto/CMakeFiles/cmmfo_pareto.dir/cells.cpp.o.d"
  "/root/repo/src/pareto/dominance.cpp" "src/pareto/CMakeFiles/cmmfo_pareto.dir/dominance.cpp.o" "gcc" "src/pareto/CMakeFiles/cmmfo_pareto.dir/dominance.cpp.o.d"
  "/root/repo/src/pareto/eipv2.cpp" "src/pareto/CMakeFiles/cmmfo_pareto.dir/eipv2.cpp.o" "gcc" "src/pareto/CMakeFiles/cmmfo_pareto.dir/eipv2.cpp.o.d"
  "/root/repo/src/pareto/hypervolume.cpp" "src/pareto/CMakeFiles/cmmfo_pareto.dir/hypervolume.cpp.o" "gcc" "src/pareto/CMakeFiles/cmmfo_pareto.dir/hypervolume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/cmmfo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
