file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_pareto.dir/adrs.cpp.o"
  "CMakeFiles/cmmfo_pareto.dir/adrs.cpp.o.d"
  "CMakeFiles/cmmfo_pareto.dir/cells.cpp.o"
  "CMakeFiles/cmmfo_pareto.dir/cells.cpp.o.d"
  "CMakeFiles/cmmfo_pareto.dir/dominance.cpp.o"
  "CMakeFiles/cmmfo_pareto.dir/dominance.cpp.o.d"
  "CMakeFiles/cmmfo_pareto.dir/eipv2.cpp.o"
  "CMakeFiles/cmmfo_pareto.dir/eipv2.cpp.o.d"
  "CMakeFiles/cmmfo_pareto.dir/hypervolume.cpp.o"
  "CMakeFiles/cmmfo_pareto.dir/hypervolume.cpp.o.d"
  "libcmmfo_pareto.a"
  "libcmmfo_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
