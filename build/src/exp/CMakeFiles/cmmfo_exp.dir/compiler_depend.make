# Empty compiler generated dependencies file for cmmfo_exp.
# This may be replaced when dependencies are built.
