file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_exp.dir/convergence.cpp.o"
  "CMakeFiles/cmmfo_exp.dir/convergence.cpp.o.d"
  "CMakeFiles/cmmfo_exp.dir/harness.cpp.o"
  "CMakeFiles/cmmfo_exp.dir/harness.cpp.o.d"
  "CMakeFiles/cmmfo_exp.dir/table.cpp.o"
  "CMakeFiles/cmmfo_exp.dir/table.cpp.o.d"
  "libcmmfo_exp.a"
  "libcmmfo_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
