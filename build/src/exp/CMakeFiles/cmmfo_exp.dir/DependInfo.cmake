
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/convergence.cpp" "src/exp/CMakeFiles/cmmfo_exp.dir/convergence.cpp.o" "gcc" "src/exp/CMakeFiles/cmmfo_exp.dir/convergence.cpp.o.d"
  "/root/repo/src/exp/harness.cpp" "src/exp/CMakeFiles/cmmfo_exp.dir/harness.cpp.o" "gcc" "src/exp/CMakeFiles/cmmfo_exp.dir/harness.cpp.o.d"
  "/root/repo/src/exp/table.cpp" "src/exp/CMakeFiles/cmmfo_exp.dir/table.cpp.o" "gcc" "src/exp/CMakeFiles/cmmfo_exp.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/cmmfo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_suite/CMakeFiles/cmmfo_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cmmfo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/cmmfo_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cmmfo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cmmfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/cmmfo_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/cmmfo_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cmmfo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/cmmfo_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
