file(REMOVE_RECURSE
  "libcmmfo_exp.a"
)
