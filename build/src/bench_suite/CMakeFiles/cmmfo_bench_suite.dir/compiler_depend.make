# Empty compiler generated dependencies file for cmmfo_bench_suite.
# This may be replaced when dependencies are built.
