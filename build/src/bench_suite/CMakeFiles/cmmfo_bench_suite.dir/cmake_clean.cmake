file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_bench_suite.dir/benchmarks.cpp.o"
  "CMakeFiles/cmmfo_bench_suite.dir/benchmarks.cpp.o.d"
  "CMakeFiles/cmmfo_bench_suite.dir/extended_benchmarks.cpp.o"
  "CMakeFiles/cmmfo_bench_suite.dir/extended_benchmarks.cpp.o.d"
  "libcmmfo_bench_suite.a"
  "libcmmfo_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
