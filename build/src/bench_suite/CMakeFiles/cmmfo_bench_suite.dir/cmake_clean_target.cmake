file(REMOVE_RECURSE
  "libcmmfo_bench_suite.a"
)
