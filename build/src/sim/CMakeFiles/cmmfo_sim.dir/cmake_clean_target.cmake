file(REMOVE_RECURSE
  "libcmmfo_sim.a"
)
