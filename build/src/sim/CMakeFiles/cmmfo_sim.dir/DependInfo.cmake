
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/cmmfo_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/cmmfo_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/ground_truth.cpp" "src/sim/CMakeFiles/cmmfo_sim.dir/ground_truth.cpp.o" "gcc" "src/sim/CMakeFiles/cmmfo_sim.dir/ground_truth.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/cmmfo_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/cmmfo_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/tool.cpp" "src/sim/CMakeFiles/cmmfo_sim.dir/tool.cpp.o" "gcc" "src/sim/CMakeFiles/cmmfo_sim.dir/tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/cmmfo_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/cmmfo_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/cmmfo_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cmmfo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
