# Empty dependencies file for cmmfo_sim.
# This may be replaced when dependencies are built.
