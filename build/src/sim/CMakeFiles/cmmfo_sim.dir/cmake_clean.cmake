file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_sim.dir/device.cpp.o"
  "CMakeFiles/cmmfo_sim.dir/device.cpp.o.d"
  "CMakeFiles/cmmfo_sim.dir/ground_truth.cpp.o"
  "CMakeFiles/cmmfo_sim.dir/ground_truth.cpp.o.d"
  "CMakeFiles/cmmfo_sim.dir/perf_model.cpp.o"
  "CMakeFiles/cmmfo_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/cmmfo_sim.dir/tool.cpp.o"
  "CMakeFiles/cmmfo_sim.dir/tool.cpp.o.d"
  "libcmmfo_sim.a"
  "libcmmfo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
