file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_rng.dir/hash_noise.cpp.o"
  "CMakeFiles/cmmfo_rng.dir/hash_noise.cpp.o.d"
  "CMakeFiles/cmmfo_rng.dir/rng.cpp.o"
  "CMakeFiles/cmmfo_rng.dir/rng.cpp.o.d"
  "libcmmfo_rng.a"
  "libcmmfo_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
