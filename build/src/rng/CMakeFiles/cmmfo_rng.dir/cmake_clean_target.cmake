file(REMOVE_RECURSE
  "libcmmfo_rng.a"
)
