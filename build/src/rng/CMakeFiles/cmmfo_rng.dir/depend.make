# Empty dependencies file for cmmfo_rng.
# This may be replaced when dependencies are built.
