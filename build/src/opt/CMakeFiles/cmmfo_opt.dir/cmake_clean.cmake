file(REMOVE_RECURSE
  "CMakeFiles/cmmfo_opt.dir/adam.cpp.o"
  "CMakeFiles/cmmfo_opt.dir/adam.cpp.o.d"
  "CMakeFiles/cmmfo_opt.dir/finite_diff.cpp.o"
  "CMakeFiles/cmmfo_opt.dir/finite_diff.cpp.o.d"
  "CMakeFiles/cmmfo_opt.dir/lbfgs.cpp.o"
  "CMakeFiles/cmmfo_opt.dir/lbfgs.cpp.o.d"
  "CMakeFiles/cmmfo_opt.dir/multistart.cpp.o"
  "CMakeFiles/cmmfo_opt.dir/multistart.cpp.o.d"
  "CMakeFiles/cmmfo_opt.dir/nelder_mead.cpp.o"
  "CMakeFiles/cmmfo_opt.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/cmmfo_opt.dir/sampling.cpp.o"
  "CMakeFiles/cmmfo_opt.dir/sampling.cpp.o.d"
  "libcmmfo_opt.a"
  "libcmmfo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
