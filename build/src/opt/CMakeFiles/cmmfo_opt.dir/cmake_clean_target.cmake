file(REMOVE_RECURSE
  "libcmmfo_opt.a"
)
