# Empty dependencies file for cmmfo_opt.
# This may be replaced when dependencies are built.
