
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acquisition.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_acquisition.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_acquisition.cpp.o.d"
  "/root/repo/tests/test_adrs.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_adrs.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_adrs.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bench_suite.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_bench_suite.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_bench_suite.cpp.o.d"
  "/root/repo/tests/test_cells.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_cells.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_cells.cpp.o.d"
  "/root/repo/tests/test_directives.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_directives.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_directives.cpp.o.d"
  "/root/repo/tests/test_eipv2.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_eipv2.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_eipv2.cpp.o.d"
  "/root/repo/tests/test_encoding.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_encoding.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_encoding.cpp.o.d"
  "/root/repo/tests/test_extended_benchmarks.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_extended_benchmarks.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_extended_benchmarks.cpp.o.d"
  "/root/repo/tests/test_extras.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_extras.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_extras.cpp.o.d"
  "/root/repo/tests/test_gp.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_gp.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_gp.cpp.o.d"
  "/root/repo/tests/test_gp_regressions.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_gp_regressions.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_gp_regressions.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hypervolume.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_hypervolume.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_hypervolume.cpp.o.d"
  "/root/repo/tests/test_kernel_ir.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_kernel_ir.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_kernel_ir.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_mfgp.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_mfgp.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_mfgp.cpp.o.d"
  "/root/repo/tests/test_mtgp.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_mtgp.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_mtgp.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_pareto.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_pareto.cpp.o.d"
  "/root/repo/tests/test_pruner.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_pruner.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_pruner.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sampling_convergence.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_sampling_convergence.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_sampling_convergence.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_space_parser.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_space_parser.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_space_parser.cpp.o.d"
  "/root/repo/tests/test_surrogate.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_surrogate.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_surrogate.cpp.o.d"
  "/root/repo/tests/test_tcl_emitter.cpp" "tests/CMakeFiles/cmmfo_tests.dir/test_tcl_emitter.cpp.o" "gcc" "tests/CMakeFiles/cmmfo_tests.dir/test_tcl_emitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/cmmfo_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cmmfo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cmmfo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_suite/CMakeFiles/cmmfo_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cmmfo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/cmmfo_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/cmmfo_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/pareto/CMakeFiles/cmmfo_pareto.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cmmfo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/cmmfo_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cmmfo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
