# Empty compiler generated dependencies file for cmmfo_tests.
# This may be replaced when dependencies are built.
