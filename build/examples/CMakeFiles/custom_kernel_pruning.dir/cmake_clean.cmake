file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_pruning.dir/custom_kernel_pruning.cpp.o"
  "CMakeFiles/custom_kernel_pruning.dir/custom_kernel_pruning.cpp.o.d"
  "custom_kernel_pruning"
  "custom_kernel_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
