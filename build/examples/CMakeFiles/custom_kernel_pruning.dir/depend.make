# Empty dependencies file for custom_kernel_pruning.
# This may be replaced when dependencies are built.
