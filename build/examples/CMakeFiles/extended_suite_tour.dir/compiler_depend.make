# Empty compiler generated dependencies file for extended_suite_tour.
# This may be replaced when dependencies are built.
