file(REMOVE_RECURSE
  "CMakeFiles/extended_suite_tour.dir/extended_suite_tour.cpp.o"
  "CMakeFiles/extended_suite_tour.dir/extended_suite_tour.cpp.o.d"
  "extended_suite_tour"
  "extended_suite_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_suite_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
