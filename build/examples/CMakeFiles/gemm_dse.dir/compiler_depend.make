# Empty compiler generated dependencies file for gemm_dse.
# This may be replaced when dependencies are built.
