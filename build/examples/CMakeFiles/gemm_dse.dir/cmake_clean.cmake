file(REMOVE_RECURSE
  "CMakeFiles/gemm_dse.dir/gemm_dse.cpp.o"
  "CMakeFiles/gemm_dse.dir/gemm_dse.cpp.o.d"
  "gemm_dse"
  "gemm_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
