# Empty dependencies file for mf_gp_demo.
# This may be replaced when dependencies are built.
