file(REMOVE_RECURSE
  "CMakeFiles/mf_gp_demo.dir/mf_gp_demo.cpp.o"
  "CMakeFiles/mf_gp_demo.dir/mf_gp_demo.cpp.o.d"
  "mf_gp_demo"
  "mf_gp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_gp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
