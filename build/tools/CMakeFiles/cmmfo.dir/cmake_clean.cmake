file(REMOVE_RECURSE
  "CMakeFiles/cmmfo.dir/cmmfo_cli.cpp.o"
  "CMakeFiles/cmmfo.dir/cmmfo_cli.cpp.o.d"
  "cmmfo"
  "cmmfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmmfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
