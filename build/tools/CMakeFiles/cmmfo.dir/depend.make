# Empty dependencies file for cmmfo.
# This may be replaced when dependencies are built.
