#include <gtest/gtest.h>

#include <cmath>

#include "gp/ard_kernels.h"
#include "gp/gp_regressor.h"
#include "gp/multitask_gp.h"
#include "linalg/cholesky.h"
#include "rng/rng.h"

namespace cmmfo::gp {
namespace {

MultiTaskFitOptions fastOpts() {
  MultiTaskFitOptions o;
  o.mle_restarts = 0;
  o.max_mle_iters = 40;
  return o;
}

/// Two strongly correlated tasks: f2 = -2 f1 + small wiggle.
void makeCorrelatedData(std::size_t n, rng::Rng& rng, Dataset& x,
                        linalg::Matrix& y, double corr_sign = -1.0) {
  x.clear();
  y = linalg::Matrix(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.uniform();
    x.push_back({v});
    const double f = std::sin(5.0 * v);
    y(i, 0) = f + 0.02 * rng.normal();
    y(i, 1) = corr_sign * 2.0 * f + 0.02 * rng.normal();
  }
}

TEST(MultiTaskGp, FitsAndPredictsShapes) {
  rng::Rng rng(1);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(12, rng, x, y);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  const MultiPosterior p = gp.predict({0.5});
  EXPECT_EQ(p.mean.size(), 2u);
  EXPECT_EQ(p.cov.rows(), 2u);
  EXPECT_GE(p.cov(0, 0), 0.0);
  EXPECT_GE(p.cov(1, 1), 0.0);
}

TEST(MultiTaskGp, LearnsNegativeTaskCorrelation) {
  rng::Rng rng(2);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(20, rng, x, y, -1.0);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  const linalg::Matrix corr = gp.taskCorrelation();
  EXPECT_LT(corr(0, 1), -0.5);
  EXPECT_NEAR(corr(0, 0), 1.0, 1e-9);
}

TEST(MultiTaskGp, LearnsPositiveTaskCorrelation) {
  rng::Rng rng(3);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(20, rng, x, y, +1.0);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  EXPECT_GT(gp.taskCorrelation()(0, 1), 0.5);
}

TEST(MultiTaskGp, InterpolatesBothTasks) {
  rng::Rng rng(4);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(15, rng, x, y);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  for (std::size_t i = 0; i < x.size(); i += 3) {
    const MultiPosterior p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean[0], y(i, 0), 0.15);
    EXPECT_NEAR(p.mean[1], y(i, 1), 0.3);
  }
}

TEST(MultiTaskGp, CorrelationTransfersAcrossTasks) {
  // Task 1 observed densely, task 2 tied to it: at a location where task 2
  // has no nearby data, the correlated model should still track -2 f1.
  // We emulate "missing" task-2 information by checking generalization at
  // held-out inputs.
  rng::Rng rng(5);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(25, rng, x, y, -1.0);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  const double v = 0.37;
  const double f = std::sin(5.0 * v);
  const MultiPosterior p = gp.predict({v});
  EXPECT_NEAR(p.mean[0], f, 0.15);
  EXPECT_NEAR(p.mean[1], -2.0 * f, 0.3);
}

TEST(MultiTaskGp, PredictiveCovariancePsd) {
  rng::Rng rng(6);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(10, rng, x, y);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  for (double v = -0.2; v <= 1.2; v += 0.1) {
    const MultiPosterior p = gp.predict({v});
    EXPECT_TRUE(
        linalg::Cholesky::factorizeWithJitter(p.cov, 1e-9).has_value())
        << "cov not PSD at " << v;
  }
}

TEST(MultiTaskGp, ThreeTasks) {
  rng::Rng rng(7);
  Dataset x;
  linalg::Matrix y(15, 3);
  for (std::size_t i = 0; i < 15; ++i) {
    const double v = rng.uniform();
    x.push_back({v});
    y(i, 0) = std::sin(4.0 * v);
    y(i, 1) = -std::sin(4.0 * v);
    y(i, 2) = std::cos(4.0 * v);
  }
  MultiTaskGp gp(Matern52Ard(1, true), 3, fastOpts());
  gp.fit(x, y, rng);
  const MultiPosterior p = gp.predict({0.4});
  EXPECT_EQ(p.mean.size(), 3u);
  EXPECT_NEAR(p.mean[0], -p.mean[1], 0.15);
}

TEST(MultiTaskGp, RefitPosteriorKeepsHyperparameters) {
  rng::Rng rng(8);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(12, rng, x, y);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  const double before = gp.predict({0.5}).mean[0];

  // Appending a point and refitting only the posterior must incorporate it.
  Dataset x2 = x;
  x2.push_back({0.5});
  linalg::Matrix y2(y.rows() + 1, 2);
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (std::size_t m = 0; m < 2; ++m) y2(i, m) = y(i, m);
  y2(y.rows(), 0) = 10.0;  // surprising observation
  y2(y.rows(), 1) = -20.0;
  gp.refitPosterior(x2, y2);
  EXPECT_NE(gp.predict({0.5}).mean[0], before);
  EXPECT_GT(gp.predict({0.5}).mean[0], before);  // pulled toward 10
}

TEST(MultiTaskGp, MatchesSingleGpWhenTasksUnrelated) {
  // Independent tasks: the MTGP should not be (much) worse than separate
  // GPs at predicting each.
  rng::Rng rng(9);
  Dataset x;
  linalg::Matrix y(18, 2);
  for (std::size_t i = 0; i < 18; ++i) {
    const double v = i / 18.0;
    x.push_back({v});
    y(i, 0) = std::sin(6.0 * v);
    y(i, 1) = std::exp(v);  // structurally unrelated
  }
  MultiTaskGp mt(Matern52Ard(1, true), 2, fastOpts());
  mt.fit(x, y, rng);

  GpFitOptions gopts;
  gopts.mle_restarts = 1;
  GpRegressor g0(Matern52Ard(1), gopts);
  g0.fit(x, y.col(0), rng);

  const double v = 0.42;
  EXPECT_NEAR(mt.predict({v}).mean[0], g0.predict({v}).mean, 0.12);
}

TEST(MultiTaskGp, CopySemantics) {
  rng::Rng rng(10);
  Dataset x;
  linalg::Matrix y;
  makeCorrelatedData(10, rng, x, y);
  MultiTaskGp gp(Matern52Ard(1, true), 2, fastOpts());
  gp.fit(x, y, rng);
  const MultiTaskGp copy = gp;
  EXPECT_DOUBLE_EQ(copy.predict({0.3}).mean[1], gp.predict({0.3}).mean[1]);
}

}  // namespace
}  // namespace cmmfo::gp
