// Cross-module edge-case coverage that does not fit the per-module suites:
// the complete-partitioning pruner path, invalid-design-heavy optimization,
// mid-level multi-fidelity prediction, and simulator power/area couplings.

#include <gtest/gtest.h>

#include <cmath>

#include "bench_suite/benchmarks.h"
#include "core/optimizer.h"
#include "exp/harness.h"
#include "hls/design_space.h"
#include "hls/pruner.h"
#include "sim/perf_model.h"

namespace cmmfo {
namespace {

using hls::ArrayId;
using hls::DirectiveConfig;
using hls::IndexRole;
using hls::Kernel;
using hls::LoopId;
using hls::OpKind;
using hls::PartitionType;

TEST(PrunerComplete, CompletePartitionGeneratedWhenAllArraysSupportIt) {
  Kernel k("comp");
  const ArrayId a = k.addArray("a", 16);
  const LoopId l = k.addLoop("l", 16);
  k.loop(l).body_ops[OpKind::kAdd] = 1;
  k.loop(l).body_ops[OpKind::kLoad] = 1;
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, false, 1});

  hls::SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 4, 16};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic,
                          PartitionType::kComplete};
  spec.arrays[0].factors = {1, 4};

  bool complete_seen = false;
  for (const auto& c : hls::prunedConfigs(k, spec)) {
    if (c.arrays[0].type == PartitionType::kComplete) {
      complete_seen = true;
      // Complete partitioning unrolls the tree's loops to their max factor.
      EXPECT_EQ(c.loops[0].unroll, 16);
      EXPECT_EQ(c.arrays[0].factor, 16);  // = array size
    }
  }
  EXPECT_TRUE(complete_seen);
}

TEST(PrunerComplete, CompleteSkippedWhenAnyArrayLacksIt) {
  Kernel k("comp2");
  const ArrayId a = k.addArray("a", 8);
  const ArrayId b = k.addArray("b", 8);
  const LoopId l = k.addLoop("l", 8);
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, false, 1});
  k.loop(l).refs.push_back({b, {{l, IndexRole::kMinor}}, true, 1});

  hls::SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(2);
  spec.loops[0].unroll_factors = {1, 8};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kComplete};
  spec.arrays[0].factors = {1};
  spec.arrays[1].types = {PartitionType::kNone, PartitionType::kCyclic};
  spec.arrays[1].factors = {1, 8};

  for (const auto& c : hls::prunedConfigs(k, spec))
    EXPECT_NE(c.arrays[0].type, PartitionType::kComplete);
}

TEST(PerfModel, CompletePartitionRemovesPortLimit) {
  Kernel k("ports");
  const ArrayId a = k.addArray("a", 64);
  const LoopId l = k.addLoop("l", 64);
  k.loop(l).body_ops[OpKind::kLoad] = 4;
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, false, 4});

  const sim::DeviceModel dev;
  DirectiveConfig cyc{std::vector<hls::LoopDirective>(1),
                      std::vector<hls::ArrayDirective>(1)};
  cyc.loops[0].unroll = 16;
  cyc.arrays[0] = {PartitionType::kCyclic, 2};  // heavily port-limited
  DirectiveConfig comp = cyc;
  comp.arrays[0] = {PartitionType::kComplete, 64};
  EXPECT_LT(sim::estimateArchitecture(k, comp, dev).latency_cycles,
            sim::estimateArchitecture(k, cyc, dev).latency_cycles);
}

TEST(PerfModel, ParallelismRaisesPower) {
  exp::BenchmarkContext ctx(bench_suite::makeGemm());
  // Find a heavily unrolled valid config and the baseline; the former must
  // burn more power (dynamic power scales with switched capacitance).
  const auto& gt = ctx.groundTruth();
  double base_power = -1.0, big_power = -1.0, big_lut = -1.0;
  for (std::size_t i = 0; i < gt.size(); ++i) {
    if (!gt.valid(i)) continue;
    const auto y = gt.implObjectives(i);
    if (base_power < 0.0) base_power = y[0];
    if (y[2] > big_lut) {
      big_lut = y[2];
      big_power = y[0];
    }
  }
  EXPECT_GT(big_power, base_power);
}

TEST(Optimizer, SurvivesInvalidHeavyBenchmark) {
  // stencil3d has a sizeable invalid region at high utilization; the
  // optimizer must absorb invalid reports via the 10x-worst rule and still
  // produce a finite ADRS.
  exp::BenchmarkContext ctx(bench_suite::makeStencil3d());
  core::OptimizerOptions o;
  o.n_iter = 12;
  o.mc_samples = 12;
  o.max_candidates = 60;
  o.refit_every = 6;
  o.seed = 3;
  core::CorrelatedMfMoboOptimizer opt(ctx.space(), ctx.sim(), o);
  const auto res = opt.run();
  std::vector<std::size_t> sel;
  for (const auto& rec : res.cs) sel.push_back(rec.config);
  const double adrs = ctx.adrsOf(sel);
  EXPECT_TRUE(std::isfinite(adrs));
  EXPECT_LT(adrs, 1.0);
}

TEST(Surrogate, MidLevelPredictionConsistent) {
  // predict(1, x) of a 3-level nonlinear chain must agree with what the
  // level-2 augmentation uses internally — spot-check via a regression
  // problem where all three levels share the same function, so all levels
  // should roughly agree.
  rng::Rng rng(5);
  std::vector<core::FidelityObs> obs(3);
  for (int lvl = 0; lvl < 3; ++lvl) {
    const int n = 16 - 4 * lvl;
    obs[lvl].y = linalg::Matrix(n, 2);
    for (int i = 0; i < n; ++i) {
      const double x = (i + 0.3) / n;
      obs[lvl].x.push_back({x});
      obs[lvl].y(i, 0) = std::sin(3.0 * x);
      obs[lvl].y(i, 1) = x * x;
    }
  }
  core::SurrogateOptions so;
  so.mtgp.mle_restarts = 0;
  so.mtgp.max_mle_iters = 25;
  core::MultiFidelitySurrogate s(1, 2, 3, so);
  s.fit(obs, rng);
  for (double x = 0.1; x < 1.0; x += 0.2) {
    const auto p1 = s.predict(1, {x});
    const auto p2 = s.predict(2, {x});
    EXPECT_NEAR(p1.mean[0], p2.mean[0], 0.3);
    EXPECT_NEAR(p1.mean[1], p2.mean[1], 0.3);
  }
}

TEST(Matrix, RowColSetRow) {
  linalg::Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
  m.setRow(0, {7, 8, 9});
  EXPECT_EQ(m.row(0), (std::vector<double>{7, 8, 9}));
}

TEST(DirectiveConfig, UnrollClampedToTripCountInModel) {
  // Requesting unroll beyond the trip count must not break the model: it
  // behaves like full unrolling.
  Kernel k("clamp");
  const ArrayId a = k.addArray("a", 8);
  const LoopId l = k.addLoop("l", 8);
  k.loop(l).body_ops[OpKind::kAdd] = 1;
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, false, 1});
  const sim::DeviceModel dev;
  DirectiveConfig big{std::vector<hls::LoopDirective>(1),
                      std::vector<hls::ArrayDirective>(1)};
  big.loops[0].unroll = 64;
  big.arrays[0] = {PartitionType::kComplete, 8};
  DirectiveConfig full = big;
  full.loops[0].unroll = 8;
  EXPECT_DOUBLE_EQ(sim::estimateArchitecture(k, big, dev).latency_cycles,
                   sim::estimateArchitecture(k, full, dev).latency_cycles);
}

}  // namespace
}  // namespace cmmfo
