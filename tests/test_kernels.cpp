#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gp/ard_kernels.h"
#include "gp/composite_kernels.h"
#include "linalg/cholesky.h"
#include "rng/rng.h"

namespace cmmfo::gp {
namespace {

Dataset randomPoints(std::size_t n, std::size_t d, rng::Rng& rng) {
  Dataset x(n, Vec(d));
  for (auto& xi : x)
    for (auto& v : xi) v = rng.uniform(-2.0, 2.0);
  return x;
}

/// Factory for the kernel families under test.
KernelPtr makeKernel(const std::string& name, std::size_t dim) {
  if (name == "rbf") return std::make_unique<RbfArd>(dim);
  if (name == "matern") return std::make_unique<Matern52Ard>(dim);
  if (name == "rbf_unit") return std::make_unique<RbfArd>(dim, true);
  if (name == "sum")
    return std::make_unique<SumKernel>(std::make_unique<RbfArd>(dim),
                                       std::make_unique<Matern52Ard>(dim));
  if (name == "product")
    return std::make_unique<ProductKernel>(std::make_unique<RbfArd>(dim),
                                           std::make_unique<Matern52Ard>(dim));
  if (name == "subspace") {
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i + 1 < dim; ++i) dims.push_back(i);
    if (dims.empty()) dims.push_back(0);
    return std::make_unique<SubspaceKernel>(
        std::make_unique<Matern52Ard>(dims.size()), dims);
  }
  ADD_FAILURE() << "unknown kernel " << name;
  return nullptr;
}

class KernelFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelFamilies, GramIsSymmetricPsd) {
  rng::Rng rng(7);
  const auto k = makeKernel(GetParam(), 3);
  const Dataset x = randomPoints(12, 3, rng);
  linalg::Matrix gram = k->gram(x);
  EXPECT_LT(gram.maxAbsDiff(gram.transposed()), 1e-12);
  // PSD: factorizable after adding a whisker of jitter.
  EXPECT_TRUE(linalg::Cholesky::factorizeWithJitter(gram, 1e-10).has_value());
}

TEST_P(KernelFamilies, DiagonalDominatesOffDiagonal) {
  rng::Rng rng(8);
  const auto k = makeKernel(GetParam(), 3);
  const Dataset x = randomPoints(8, 3, rng);
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < x.size(); ++j)
      EXPECT_LE(k->eval(x[i], x[j]),
                k->eval(x[i], x[i]) + 1e-12);  // stationary kernels peak at 0
}

TEST_P(KernelFamilies, ParamsRoundTrip) {
  rng::Rng rng(9);
  const auto k = makeKernel(GetParam(), 3);
  Vec p = k->params();
  for (auto& v : p) v += 0.37;
  k->setParams(p);
  const Vec q = k->params();
  ASSERT_EQ(p.size(), q.size());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_DOUBLE_EQ(p[i], q[i]);
}

TEST_P(KernelFamilies, CloneIsIndependent) {
  const auto k = makeKernel(GetParam(), 2);
  auto c = k->clone();
  Vec p = c->params();
  for (auto& v : p) v += 1.0;
  c->setParams(p);
  const Vec x = {0.1, 0.2}, y = {0.6, -0.4};
  EXPECT_NE(k->eval(x, y), c->eval(x, y));
}

TEST_P(KernelFamilies, GramGradMatchesFiniteDifference) {
  rng::Rng rng(10);
  const auto k = makeKernel(GetParam(), 2);
  const Dataset x = randomPoints(6, 2, rng);
  const Vec p0 = k->params();
  const double h = 1e-6;
  for (std::size_t p = 0; p < k->numParams(); ++p) {
    const linalg::Matrix analytic = k->gramGrad(x, p);
    Vec pp = p0, pm = p0;
    pp[p] += h;
    pm[p] -= h;
    k->setParams(pp);
    const linalg::Matrix gp_ = k->gram(x);
    k->setParams(pm);
    const linalg::Matrix gm = k->gram(x);
    k->setParams(p0);
    for (std::size_t i = 0; i < x.size(); ++i)
      for (std::size_t j = 0; j < x.size(); ++j) {
        const double numeric = (gp_(i, j) - gm(i, j)) / (2.0 * h);
        EXPECT_NEAR(analytic(i, j), numeric, 1e-5)
            << GetParam() << " param " << p << " entry " << i << "," << j;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, KernelFamilies,
                         ::testing::Values("rbf", "matern", "rbf_unit", "sum",
                                           "product", "subspace"));

TEST(RbfArd, KnownValue) {
  RbfArd k(1);
  k.setLengthscale(0, 1.0);
  k.setSignalStddev(1.0);
  EXPECT_NEAR(k.eval({0.0}, {1.0}), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(k.eval({0.0}, {0.0}), 1.0, 1e-12);
}

TEST(RbfArd, LengthscaleControlsReach) {
  RbfArd k(1);
  k.setLengthscale(0, 0.2);
  const double near = k.eval({0.0}, {0.1});
  k.setLengthscale(0, 5.0);
  const double far = k.eval({0.0}, {0.1});
  EXPECT_LT(near, far);
}

TEST(RbfArd, UnitVarianceHasNoSignalParam) {
  RbfArd k(3, true);
  EXPECT_EQ(k.numParams(), 3u);
  EXPECT_DOUBLE_EQ(k.signalVariance(), 1.0);
  EXPECT_NEAR(k.eval({1, 2, 3}, {1, 2, 3}), 1.0, 1e-12);
}

TEST(Matern52Ard, KnownValueAtUnitDistance) {
  Matern52Ard k(1);
  k.setLengthscale(0, 1.0);
  k.setSignalStddev(1.0);
  const double r = 1.0;
  const double expected =
      (1.0 + std::sqrt(5.0) * r + 5.0 * r * r / 3.0) * std::exp(-std::sqrt(5.0) * r);
  EXPECT_NEAR(k.eval({0.0}, {1.0}), expected, 1e-12);
}

TEST(Matern52Ard, SmoothAtZeroDistance) {
  Matern52Ard k(1);
  // The gradient of the Gram entry at coincident points must be finite and
  // zero (the r factors cancel analytically).
  const Dataset x = {{0.5}, {0.5}};
  const linalg::Matrix g = k.gramGrad(x, 0);
  EXPECT_DOUBLE_EQ(g(0, 1), 0.0);
  EXPECT_TRUE(std::isfinite(g(0, 0)));
}

TEST(Matern52Ard, HeavierTailsThanRbf) {
  Matern52Ard m(1);
  RbfArd r(1);
  // Same unit hyperparameters: Matern decays slower at large distance.
  EXPECT_GT(m.eval({0.0}, {3.0}), r.eval({0.0}, {3.0}));
}

TEST(SubspaceKernel, IgnoresDroppedDimensions) {
  auto inner = std::make_unique<Matern52Ard>(1);
  SubspaceKernel k(std::move(inner), {0});
  EXPECT_DOUBLE_EQ(k.eval({1.0, 99.0}, {1.0, -99.0}),
                   k.eval({1.0, 0.0}, {1.0, 0.0}));
}

TEST(SumKernel, EvaluatesAsSum) {
  auto a = std::make_unique<RbfArd>(1);
  auto b = std::make_unique<RbfArd>(1);
  const double va = a->eval({0.0}, {0.5});
  SumKernel k(std::move(a), std::move(b));
  EXPECT_NEAR(k.eval({0.0}, {0.5}), 2.0 * va, 1e-12);
}

TEST(ProductKernel, EvaluatesAsProduct) {
  auto a = std::make_unique<RbfArd>(1);
  auto b = std::make_unique<Matern52Ard>(1);
  const double va = a->eval({0.0}, {0.5});
  const double vb = b->eval({0.0}, {0.5});
  ProductKernel k(std::move(a), std::move(b));
  EXPECT_NEAR(k.eval({0.0}, {0.5}), va * vb, 1e-12);
}

TEST(CompositeKernel, ParamSplitOrder) {
  auto a = std::make_unique<RbfArd>(2);   // 3 params
  auto b = std::make_unique<RbfArd>(1);   // 2 params
  SumKernel k(std::move(a), std::move(b));
  EXPECT_EQ(k.numParams(), 5u);
  Vec p = k.params();
  p[0] = 1.23;  // first factor's first lengthscale
  p[3] = -0.77; // second factor's lengthscale
  k.setParams(p);
  EXPECT_DOUBLE_EQ(k.params()[0], 1.23);
  EXPECT_DOUBLE_EQ(k.params()[3], -0.77);
}

}  // namespace
}  // namespace cmmfo::gp
