// Flight-recorder (diagnostics) tests. The load-bearing property mirrors the
// observability layer's: recording must never perturb the optimization — the
// seed-77 golden trajectory pinned in test_runtime.cpp must come out
// bit-for-bit identical with the recorder fully on. On top of that:
// calibration math against hand-computed references (1e-12), JSON escaping
// and %.17g round-trips of the checkpointable digest, seeded health checks
// firing into both journal and summary, "-" stdout dumps, and the HTML
// report renderer. All suites are named Diag* so the TSan smoke
// (run_benches.sh --tsan-smoke) picks them up — the concurrent health
// emission test is the no-tear witness for scheduler worker threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_suite/benchmarks.h"
#include "core/checkpoint.h"
#include "core/optimizer.h"
#include "diag/calibration.h"
#include "diag/health.h"
#include "diag/recorder.h"
#include "diag/report.h"
#include "runtime/eval_cache.h"
#include "runtime/scheduler.h"
#include "util/json.h"

namespace cmmfo {
namespace {

using diag::CalibrationAgg;
using diag::CalibrationSample;
using diag::DiagState;
using diag::HealthKind;
using diag::HealthThresholds;
using diag::HealthWarning;
using diag::kZ95;
using sim::Fidelity;

// The recorder is process-global (scheduler workers reach it without
// plumbing), so every test that touches it wipes it on entry and exit.
struct GlobalDiagGuard {
  GlobalDiagGuard() { reset(); }
  ~GlobalDiagGuard() { reset(); }
  static void reset() {
    diag::recorder().setEnabled(false);
    diag::recorder().clear();
    diag::recorder().setThresholds(HealthThresholds{});
    diag::recorder().setTopK(5);
    diag::recorder().setAdrsOracle({});
  }
};

struct Fixture {
  Fixture()
      : bm(bench_suite::makeSpmvCrs()),
        space(hls::DesignSpace::buildPruned(bm.kernel, bm.spec)),
        sim(bm.kernel, sim::DeviceModel::virtex7Vc707(), bm.sim_params, 42) {}
  bench_suite::Benchmark bm;
  hls::DesignSpace space;
  sim::FpgaToolSim sim;
};

core::OptimizerOptions fastOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

// ------------------------------------------------------- calibration ----

// Hand-computed references: y = 1.3, mu = 1.0, var = 0.04 (sigma = 0.2).
// z = 0.3 / 0.2 = 1.5 exactly; NLPD = 0.5 ln(2 pi 0.04) + 0.09 / 0.08.
TEST(DiagCalibration, MatchesHandComputedReference) {
  const double y = 1.3, mu = 1.0, var = 0.04;
  EXPECT_NEAR(diag::standardizedResidual(y, mu, var), 1.5, 1e-12);
  const double expected_nlpd =
      0.5 * std::log(2.0 * M_PI * var) + 0.09 / (2.0 * var);
  EXPECT_NEAR(diag::nlpd(y, mu, var), expected_nlpd, 1e-12);
  EXPECT_TRUE(diag::in95(y, mu, var));  // |z| = 1.5 < 1.96

  // The exact 95% boundary counts as inside; a hair beyond is outside.
  const double sigma = 0.2;
  EXPECT_TRUE(diag::in95(mu + kZ95 * sigma, mu, var));
  EXPECT_FALSE(diag::in95(mu + (kZ95 + 1e-9) * sigma, mu, var));
  EXPECT_TRUE(diag::in95(mu - kZ95 * sigma, mu, var));
}

TEST(DiagCalibration, NonpositiveVarianceIsClampedNotNan) {
  for (const double var : {0.0, -1.0}) {
    EXPECT_TRUE(std::isfinite(diag::nlpd(1.0, 1.0, var)));
    EXPECT_TRUE(std::isfinite(diag::standardizedResidual(1.0, 1.0, var)));
    // y == mu has residual 0 regardless of the clamp.
    EXPECT_DOUBLE_EQ(diag::standardizedResidual(1.0, 1.0, var), 0.0);
  }
}

TEST(DiagCalibration, AggregateMatchesDirectComputation) {
  CalibrationAgg agg;
  EXPECT_TRUE(std::isnan(agg.coverage()));
  EXPECT_TRUE(std::isnan(agg.meanNlpd()));

  // Four samples around N(0, 1): three inside the 95% interval, one far out.
  const std::vector<double> ys = {0.5, -1.2, 0.3, 4.0};
  double nlpd_sum = 0.0, z_sum = 0.0, z_sq = 0.0;
  for (const double y : ys) {
    agg.add(y, 0.0, 1.0);
    nlpd_sum += diag::nlpd(y, 0.0, 1.0);
    z_sum += y;  // sigma = 1, mu = 0 => z = y
    z_sq += y * y;
  }
  EXPECT_EQ(agg.n, 4);
  EXPECT_EQ(agg.n_in95, 3);
  EXPECT_NEAR(agg.coverage(), 0.75, 1e-12);
  EXPECT_NEAR(agg.meanNlpd(), nlpd_sum / 4.0, 1e-12);
  EXPECT_NEAR(agg.meanResid(), z_sum / 4.0, 1e-12);
  const double mean = z_sum / 4.0;
  EXPECT_NEAR(agg.residStddev(), std::sqrt(z_sq / 4.0 - mean * mean), 1e-12);
}

// --------------------------------------------------- golden invariance ----

// The same seed-77 trajectory test_runtime.cpp pins with diagnostics off,
// re-run with the flight recorder fully on. The recorder's extra predict()
// calls draw no RNG and feed nothing back, so every pick, every fidelity and
// the charged seconds must come out bit-for-bit identical.
TEST(DiagInvariance, GoldenTrajectoryIdenticalWithRecorderOn) {
  GlobalDiagGuard guard;
  diag::recorder().setAdrsOracle(
      [](const std::vector<std::size_t>& sel) -> double {
        return static_cast<double>(sel.size());
      });
  diag::recorder().setEnabled(true);

  Fixture f;
  core::OptimizerOptions o = fastOpts();
  o.seed = 77;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();

  const std::vector<std::pair<std::size_t, Fidelity>> golden = {
      {275, Fidelity::kImpl}, {184, Fidelity::kImpl}, {132, Fidelity::kImpl},
      {228, Fidelity::kSyn},  {20, Fidelity::kSyn},   {89, Fidelity::kHls},
      {194, Fidelity::kHls},  {57, Fidelity::kHls},   {75, Fidelity::kHls},
      {35, Fidelity::kHls},   {3, Fidelity::kHls},    {0, Fidelity::kHls},
      {7, Fidelity::kHls},    {5, Fidelity::kHls},    {17, Fidelity::kHls},
      {52, Fidelity::kHls},   {1, Fidelity::kHls},    {15, Fidelity::kHls},
  };
  ASSERT_EQ(res.cs.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(res.cs[i].config, golden[i].first) << "at index " << i;
    EXPECT_EQ(res.cs[i].fidelity, golden[i].second) << "at index " << i;
  }
  EXPECT_DOUBLE_EQ(res.tool_seconds, 3062.9170931904364);
  EXPECT_EQ(res.tool_runs, 18);

  // The journal is populated: one decision per BO pick, one model record
  // per (round, level), calibration joins for the valid picks, convergence
  // lines carrying the oracle ADRS — and every line is valid JSON.
  const DiagState st = diag::recorder().state();
  EXPECT_EQ(st.decisions, 10);  // n_iter = 10 picks
  EXPECT_GT(st.rounds, 0);
  EXPECT_GT(st.samples, 0);
  long long agg_n = 0;
  for (int l = 0; l < diag::kNumLevels; ++l)
    for (int m = 0; m < diag::kNumObjectives; ++m) agg_n += st.agg[l][m].n;
  EXPECT_GT(agg_n, 0);

  const std::string journal = diag::recorder().journal();
  std::size_t lines = 0, pos = 0;
  bool saw_decision = false, saw_model = false, saw_calibration = false,
       saw_convergence = false, saw_adrs = false;
  while (pos < journal.size()) {
    const std::size_t nl = journal.find('\n', pos);
    const std::string line = journal.substr(pos, nl - pos);
    pos = nl == std::string::npos ? journal.size() : nl + 1;
    if (line.empty()) continue;
    ++lines;
    util::Json j;
    std::string err;
    ASSERT_TRUE(util::parseJson(line, &j, &err)) << err << "\n" << line;
    const std::string type = j.strOr("type", "");
    saw_decision |= type == "decision";
    saw_model |= type == "model";
    saw_calibration |= type == "calibration";
    if (type == "convergence") {
      saw_convergence = true;
      saw_adrs |= j.numOr("adrs", -1.0) > 0.0;
    }
  }
  EXPECT_GE(lines, 3u);
  EXPECT_TRUE(saw_decision);
  EXPECT_TRUE(saw_model);
  EXPECT_TRUE(saw_calibration);
  EXPECT_TRUE(saw_convergence);
  EXPECT_TRUE(saw_adrs);
}

TEST(DiagInvariance, DisabledRecorderIngestsNothing) {
  GlobalDiagGuard guard;
  ASSERT_FALSE(diag::recorder().enabled());
  CalibrationSample s;
  s.y = {1.0};
  s.mu = {0.0};
  s.var = {1.0};
  diag::recorder().addCalibrationSample(std::move(s));
  diag::recorder().addDecision({});
  diag::recorder().addModelRecord({});
  diag::recorder().endRound(0, 1.0, {}, 0.0, 0, 0);
  diag::recorder().health({});
  EXPECT_EQ(diag::recorder().recordCount(), 0u);
  EXPECT_EQ(diag::recorder().healthCount(), 0u);
}

// ----------------------------------------------------- JSON round-trip ----

TEST(DiagJson, StringEscapingRoundTripsThroughParser) {
  const std::string nasty =
      "quote \" backslash \\ newline \n tab \t cr \r bell \b ff \f ctrl \x01 "
      "unicode \xc3\xa9";
  std::string out;
  util::putString(out, nasty);
  // The escaped form is pure ASCII-visible JSON: no raw control bytes.
  for (const char c : out)
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20) << "raw control byte";
  util::Json j;
  std::string err;
  ASSERT_TRUE(util::parseJson(out, &j, &err)) << err;
  ASSERT_EQ(j.kind, util::Json::kStr);
  EXPECT_EQ(j.str, nasty);  // byte-exact, UTF-8 payload untouched
}

TEST(DiagJson, NonFiniteDoublesSerializeAsNull) {
  std::string out;
  util::putDoubleOrNull(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
  out.clear();
  util::putDoubleOrNull(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  util::putVecOrNull(out, {1.5, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_EQ(out, "[1.5,null]");
  util::Json j;
  ASSERT_TRUE(util::parseJson(out, &j, nullptr));
  ASSERT_EQ(j.arr.size(), 2u);
  EXPECT_EQ(j.arr[1].kind, util::Json::kNull);
}

TEST(DiagJson, HealthMessagesWithSpecialCharsSurviveTheJournal) {
  GlobalDiagGuard guard;
  diag::recorder().setEnabled(true);
  HealthWarning w;
  w.kind = HealthKind::kRetryStorm;
  w.fidelity = 1;
  w.message = "path \"C:\\tools\"\nline2\ttab";
  diag::recorder().health(w);
  const std::string journal = diag::recorder().journal();
  // Every journal line parses, and the message round-trips byte-exact.
  const diag::Journal parsed = diag::parseJournal(journal);
  EXPECT_EQ(parsed.skipped_lines, 0u);
  bool found = false;
  for (const util::Json& j : parsed.records)
    if (j.strOr("type", "") == "health") {
      EXPECT_EQ(j.strOr("message", ""), w.message);
      found = true;
    }
  EXPECT_TRUE(found);
}

// ------------------------------------------------ checkpoint round-trip ----

// %.17g round-trips IEEE-754 binary64 exactly — including denormals — so
// the diagnostics digest restored from a checkpoint journal is the one that
// was saved, bit for bit (operator== compares every double exactly).
TEST(DiagCheckpoint, DigestRoundTripsThroughJournalExactly) {
  core::CheckpointState st;
  st.has_diag = true;
  DiagState& dg = st.diag;
  dg.rounds = 12;
  dg.samples = 34;
  dg.decisions = 56;
  dg.agg[0][0] = {17, 16, 123.45678901234567, -0.000123456789012345,
                  98.76543210987654};
  dg.agg[1][2] = {3, 2, 5e-324,  // denormal min
                  std::numeric_limits<double>::denorm_min(),
                  std::numeric_limits<double>::min()};
  dg.agg[2][1] = {1, 1, std::numeric_limits<double>::max(),
                  -std::numeric_limits<double>::max(),
                  1.0 + std::numeric_limits<double>::epsilon()};
  HealthWarning w;
  w.kind = HealthKind::kGramConditionBlowup;
  w.round = 3;
  w.fidelity = 2;
  w.value = 13.000000000000002;
  w.threshold = 12.0;
  w.message = "Gram \"blowup\" at level impl\nnumerics suspect\t(1e13)";
  dg.warnings.push_back(w);

  const std::string text = core::serializeCheckpoint(st);
  core::CheckpointState back;
  std::string err;
  ASSERT_TRUE(core::parseCheckpoint(text, &back, &err)) << err;
  ASSERT_TRUE(back.has_diag);
  EXPECT_TRUE(back.diag == st.diag);
}

TEST(DiagCheckpoint, JournalsWithoutDiagKeyStillLoad) {
  core::CheckpointState st;
  ASSERT_FALSE(st.has_diag);
  const std::string text = core::serializeCheckpoint(st);
  EXPECT_EQ(text.find("\"diag\""), std::string::npos);
  core::CheckpointState back;
  std::string err;
  ASSERT_TRUE(core::parseCheckpoint(text, &back, &err)) << err;
  EXPECT_FALSE(back.has_diag);
}

TEST(DiagCheckpoint, RecorderStateRestoreIsExact) {
  GlobalDiagGuard guard;
  diag::recorder().setEnabled(true);
  CalibrationSample s;
  s.round = 1;
  s.config = 42;
  s.fidelity = 0;
  s.y = {1.25, 2.5, 0.125};
  s.mu = {1.0, 2.0, 0.25};
  s.var = {0.04, 0.25, 0.01};
  diag::recorder().addCalibrationSample(s);
  diag::recorder().endRound(1, 0.5, {42}, 100.0, 0, 1);
  const DiagState before = diag::recorder().state();

  diag::recorder().clear();
  EXPECT_FALSE(diag::recorder().state() == before);
  diag::recorder().restore(before);
  EXPECT_TRUE(diag::recorder().state() == before);
}

// ----------------------------------------------------- health checks ----

// Seeded ill-conditioned Gram: a model record whose condition estimate
// exceeds the threshold must fire kGramConditionBlowup into BOTH the
// journal and the end-of-run summary — once, not once per round.
TEST(DiagHealth, IllConditionedGramFiresInJournalAndSummary) {
  GlobalDiagGuard guard;
  diag::recorder().setEnabled(true);
  diag::ModelRecord m;
  m.round = 2;
  m.level = 1;
  m.cond_log10 = 14.5;  // past the default 12.0
  diag::recorder().addModelRecord(m);
  m.round = 3;
  diag::recorder().addModelRecord(m);  // same (kind, level): deduped

  ASSERT_EQ(diag::recorder().healthCount(), 1u);
  const std::vector<HealthWarning> ws = diag::recorder().healthWarnings();
  EXPECT_EQ(ws[0].kind, HealthKind::kGramConditionBlowup);
  EXPECT_EQ(ws[0].fidelity, 1);
  EXPECT_DOUBLE_EQ(ws[0].value, 14.5);

  const diag::Journal parsed = diag::parseJournal(diag::recorder().journal());
  EXPECT_EQ(parsed.skipped_lines, 0u);
  int health_lines = 0;
  for (const util::Json& j : parsed.records)
    if (j.strOr("type", "") == "health" &&
        j.strOr("kind", "") == "gram_condition_blowup")
      ++health_lines;
  EXPECT_EQ(health_lines, 1);

  const std::string summary = diag::recorder().summaryText();
  EXPECT_NE(summary.find("gram_condition_blowup"), std::string::npos);
  EXPECT_NE(summary.find("level=syn"), std::string::npos);
}

// Tightened thresholds force the seeded Gram check through a REAL optimizer
// run end-to-end: threshold below any achievable conditioning, so the first
// model record fires it, and the warning survives into journal + summary.
TEST(DiagHealth, SeededGramCheckFiresThroughOptimizerRun) {
  GlobalDiagGuard guard;
  HealthThresholds t;
  t.max_gram_log10 = -1.0;  // log10(cond) >= 0 always: guaranteed to trip
  diag::recorder().setThresholds(t);
  diag::recorder().setEnabled(true);

  Fixture f;
  core::OptimizerOptions o = fastOpts();
  o.seed = 77;
  o.n_iter = 2;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  opt.run();

  bool fired = false;
  for (const HealthWarning& w : diag::recorder().healthWarnings())
    fired |= w.kind == HealthKind::kGramConditionBlowup;
  EXPECT_TRUE(fired);
  EXPECT_NE(diag::recorder().summaryText().find("gram_condition_blowup"),
            std::string::npos);
  const diag::Journal parsed = diag::parseJournal(diag::recorder().journal());
  bool in_journal = false;
  for (const util::Json& j : parsed.records)
    in_journal |= j.strOr("kind", "") == "gram_condition_blowup";
  EXPECT_TRUE(in_journal);
}

TEST(DiagHealth, SchedulerWorkersEmitRetryStormWarnings) {
  GlobalDiagGuard guard;
  diag::recorder().setEnabled(true);

  Fixture f;
  sim::FaultParams faults;
  faults.persistent_failure_prob = 1.0;  // every config dies persistently
  f.sim.setFaultParams(faults);
  runtime::EvalCache cache;
  runtime::RetryPolicy policy;
  policy.max_attempts = 2;
  runtime::ToolScheduler sched(f.space, f.sim, cache, 4, policy);
  sched.runBatch({{0, Fidelity::kImpl},
                  {1, Fidelity::kImpl},
                  {2, Fidelity::kHls},
                  {3, Fidelity::kSyn}});

  // Worker threads emitted concurrently; every failed job left a warning.
  EXPECT_GE(diag::recorder().healthCount(), 1u);
  for (const HealthWarning& w : diag::recorder().healthWarnings())
    EXPECT_EQ(w.kind, HealthKind::kRetryStorm);
}

// No-tear witness for the TSan smoke: many threads hammer health() while a
// reader polls the lock-free counter and snapshots the warning list. Under
// ThreadSanitizer any unsynchronized access reports; functionally, every
// emission must land exactly once and every snapshot must be internally
// consistent.
TEST(DiagHealth, ConcurrentHealthEmissionIsNeverTorn) {
  GlobalDiagGuard guard;
  diag::recorder().setEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;

  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    std::size_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t n = diag::recorder().healthCount();
      EXPECT_GE(n, last);  // monotone, never torn
      last = n;
      const auto ws = diag::recorder().healthWarnings();
      EXPECT_LE(ws.size(), static_cast<std::size_t>(kThreads * kPerThread));
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        HealthWarning w;
        w.kind = HealthKind::kRetryStorm;
        w.fidelity = t % 3;
        w.value = static_cast<double>(t * kPerThread + i);
        w.message = "storm from worker " + std::to_string(t);
        diag::recorder().health(std::move(w));
      }
    });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(diag::recorder().healthCount(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(diag::recorder().healthWarnings().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

// ------------------------------------------------------- stdout dumps ----

TEST(DiagStdout, DashWritesToStdout) {
  const std::string text = "line one\nline two\n";
  testing::internal::CaptureStdout();
  EXPECT_TRUE(util::writeTextTo("-", text));
  EXPECT_EQ(testing::internal::GetCapturedStdout(), text);
}

TEST(DiagStdout, JournalDashWritesToStdout) {
  GlobalDiagGuard guard;
  diag::recorder().setEnabled(true);
  diag::Manifest man;
  man.tool = "test";
  man.benchmark = "spmv";
  diag::recorder().setManifest(std::move(man));
  testing::internal::CaptureStdout();
  EXPECT_TRUE(diag::recorder().writeJournal("-"));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(out, diag::recorder().journal());
  EXPECT_NE(out.find("\"manifest\""), std::string::npos);
}

// ------------------------------------------------------- HTML report ----

TEST(DiagReport, RendersSelfContainedHtmlFromRealJournal) {
  GlobalDiagGuard guard;
  diag::recorder().setEnabled(true);
  diag::Manifest man;
  man.git_sha = "abc123def456";
  man.tool = "cmmfo";
  man.benchmark = "spmv_crs";
  man.method = "ours";
  man.seed = 77;
  man.has_seed = true;
  diag::recorder().setManifest(std::move(man));

  Fixture f;
  core::OptimizerOptions o = fastOpts();
  o.seed = 77;
  o.n_iter = 4;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  opt.run();

  const diag::Journal journal =
      diag::parseJournal(diag::recorder().journal());
  EXPECT_EQ(journal.skipped_lines, 0u);
  const std::string html = diag::renderHtmlReport(journal);

  // Self-contained: a real document with inline SVG charts and zero
  // external fetches (no http(s) URLs, scripts, or stylesheet links).
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  // Manifest fields are rendered.
  EXPECT_NE(html.find("abc123def456"), std::string::npos);
  EXPECT_NE(html.find("spmv_crs"), std::string::npos);
}

TEST(DiagReport, GarbageJournalRendersWithSkippedLineNote) {
  const diag::Journal journal =
      diag::parseJournal("not json\n{\"type\": \"summary\"}\n{broken\n");
  EXPECT_EQ(journal.skipped_lines, 2u);
  EXPECT_EQ(journal.records.size(), 1u);
  const std::string html = diag::renderHtmlReport(journal);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("2"), std::string::npos);  // skipped count shown
}

}  // namespace
}  // namespace cmmfo
