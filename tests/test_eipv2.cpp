#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition.h"
#include "pareto/cells.h"
#include "pareto/eipv2.h"
#include "pareto/hypervolume.h"
#include "rng/rng.h"

namespace cmmfo::pareto {
namespace {

linalg::Matrix cov2(double v1, double v2, double c) {
  linalg::Matrix m(2, 2);
  m(0, 0) = v1;
  m(1, 1) = v2;
  m(0, 1) = m(1, 0) = c;
  return m;
}

const std::vector<Point> kFront = {{0.2, 0.8}, {0.5, 0.5}, {0.8, 0.2}};
const Point kRef = {1.0, 1.0};

TEST(ExactEipv2, MatchesIndependentFormulaAtZeroCorrelation) {
  const Point mu = {0.45, 0.35};
  const Point sigma = {0.15, 0.2};
  const double ind = exactEipvIndependent(mu, sigma, kFront, kRef);
  const double corr = exactEipvCorrelated2(
      mu, cov2(sigma[0] * sigma[0], sigma[1] * sigma[1], 0.0), kFront, kRef);
  EXPECT_NEAR(corr, ind, 1e-8);
}

class Eipv2Correlations : public ::testing::TestWithParam<double> {};

TEST_P(Eipv2Correlations, MatchesMonteCarlo) {
  const double rho = GetParam();
  const Point mu = {0.5, 0.45};
  const double s1 = 0.18, s2 = 0.12;
  const linalg::Matrix cov = cov2(s1 * s1, s2 * s2, rho * s1 * s2);

  const double exact = exactEipvCorrelated2(mu, cov, kFront, kRef);

  rng::Rng rng(42);
  const auto z = core::drawStdNormals(400000, 2, rng);
  const double mc = core::mcEipv(mu, cov, kFront, kRef, z);
  EXPECT_NEAR(exact, mc, 2.5e-3) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Rhos, Eipv2Correlations,
                         ::testing::Values(-0.9, -0.5, 0.0, 0.4, 0.85));

TEST(ExactEipv2, DeterministicPointMassEqualsHvi) {
  const Point mu = {0.3, 0.3};
  const double e =
      exactEipvCorrelated2(mu, cov2(1e-26, 1e-26, 0.0), kFront, kRef);
  EXPECT_NEAR(e, hypervolumeImprovement(mu, kFront, kRef), 1e-6);
}

TEST(ExactEipv2, ZeroForConfidentlyDominatedMean) {
  const double e = exactEipvCorrelated2({0.9, 0.9}, cov2(1e-6, 1e-6, 0.0),
                                        kFront, kRef);
  EXPECT_NEAR(e, 0.0, 1e-9);
}

TEST(ExactEipv2, CorrelationSignChangesValue) {
  // Behind a single Pareto point, positively correlated samples move BELOW
  // the front in both objectives together, and the newly dominated volume is
  // a product of the two improvements — so positive correlation carries more
  // expected improvement than negative (which yields thin one-sided slices).
  // Treating the posterior as independent (the prior-work assumption the
  // paper criticizes) lands in between: correlation genuinely matters.
  const std::vector<Point> front = {{0.5, 0.5}};
  const Point mu = {0.55, 0.55};
  const double s = 0.2;
  const double neg = exactEipvCorrelated2(mu, cov2(s * s, s * s, -0.9 * s * s),
                                          front, kRef);
  const double ind =
      exactEipvCorrelated2(mu, cov2(s * s, s * s, 0.0), front, kRef);
  const double pos = exactEipvCorrelated2(mu, cov2(s * s, s * s, 0.9 * s * s),
                                          front, kRef);
  EXPECT_GT(pos, ind * 1.05);
  EXPECT_GT(ind, neg * 1.05);
}

TEST(ExactEipv2, EmptyFrontIsExpectedBoxVolume) {
  // No front: EIPV = E[(r1-y1)^+ (r2-y2)^+], check against MC.
  const Point mu = {0.5, 0.5};
  const linalg::Matrix cov = cov2(0.04, 0.04, 0.02);
  const double exact = exactEipvCorrelated2(mu, cov, {}, kRef);
  rng::Rng rng(7);
  const auto z = core::drawStdNormals(300000, 2, rng);
  const double mc = core::mcEipv(mu, cov, {}, kRef, z);
  EXPECT_NEAR(exact, mc, 3e-3);
}

TEST(ExactEipv2, DegenerateSecondObjective) {
  // sigma2 ~ 0: reduces to a 1-D expectation at y2 = mu2.
  const Point mu = {0.4, 0.45};
  const double e =
      exactEipvCorrelated2(mu, cov2(0.01, 1e-28, 0.0), kFront, kRef);
  EXPECT_GT(e, 0.0);
  EXPECT_TRUE(std::isfinite(e));
}

}  // namespace
}  // namespace cmmfo::pareto
