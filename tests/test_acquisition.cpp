#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition.h"
#include "pareto/cells.h"
#include "pareto/hypervolume.h"

namespace cmmfo::core {
namespace {

linalg::Matrix diag2(double a, double b) {
  linalg::Matrix m(2, 2);
  m(0, 0) = a;
  m(1, 1) = b;
  return m;
}

TEST(DrawStdNormals, ShapeAndDeterminism) {
  rng::Rng r1(5), r2(5);
  const auto z1 = drawStdNormals(10, 3, r1);
  const auto z2 = drawStdNormals(10, 3, r2);
  ASSERT_EQ(z1.size(), 10u);
  ASSERT_EQ(z1[0].size(), 3u);
  EXPECT_EQ(z1, z2);
}

TEST(McEipv, NonNegative) {
  rng::Rng rng(1);
  const auto z = drawStdNormals(64, 2, rng);
  const std::vector<pareto::Point> front = {{0.5, 0.5}};
  EXPECT_GE(mcEipv({0.9, 0.9}, diag2(0.01, 0.01), front, {1.0, 1.0}, z), 0.0);
}

TEST(McEipv, DeterministicGivenSameNormals) {
  rng::Rng rng(2);
  const auto z = drawStdNormals(32, 2, rng);
  const std::vector<pareto::Point> front = {{0.5, 0.5}};
  const double a = mcEipv({0.3, 0.4}, diag2(0.02, 0.02), front, {1.0, 1.0}, z);
  const double b = mcEipv({0.3, 0.4}, diag2(0.02, 0.02), front, {1.0, 1.0}, z);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(McEipv, ZeroCovarianceEqualsHvi) {
  rng::Rng rng(3);
  const auto z = drawStdNormals(16, 2, rng);
  const std::vector<pareto::Point> front = {{0.4, 0.6}, {0.6, 0.4}};
  const pareto::Point ref = {1.0, 1.0};
  const gp::Vec mu = {0.3, 0.3};
  const double e = mcEipv(mu, linalg::Matrix(2, 2), front, ref, z);
  EXPECT_NEAR(e, pareto::hypervolumeImprovement(mu, front, ref), 1e-12);
}

TEST(McEipv, MatchesExactIndependentFormula) {
  // With a diagonal covariance the MC estimate must converge to the exact
  // cell-decomposition value.
  rng::Rng rng(4);
  const auto z = drawStdNormals(60000, 2, rng);
  const std::vector<pareto::Point> front = {{0.2, 0.8}, {0.5, 0.5}, {0.8, 0.2}};
  const pareto::Point ref = {1.0, 1.0};
  const gp::Vec mu = {0.45, 0.35};
  const pareto::Point sigma = {0.15, 0.2};
  const double exact = pareto::exactEipvIndependent(mu, sigma, front, ref);
  const double mc = mcEipv(mu, diag2(sigma[0] * sigma[0], sigma[1] * sigma[1]),
                           front, ref, z);
  EXPECT_NEAR(mc, exact, 0.004);
}

TEST(McEipv, CorrelationChangesValue) {
  // With strong negative correlation between objectives, joint samples
  // spread along the front and dominate more volume than independent ones.
  rng::Rng rng(5);
  const auto z = drawStdNormals(20000, 2, rng);
  const std::vector<pareto::Point> front = {{0.5, 0.5}};
  const pareto::Point ref = {1.0, 1.0};
  const gp::Vec mu = {0.55, 0.55};

  linalg::Matrix ind = diag2(0.04, 0.04);
  linalg::Matrix corr = ind;
  corr(0, 1) = corr(1, 0) = -0.038;

  const double e_ind = mcEipv(mu, ind, front, ref, z);
  const double e_corr = mcEipv(mu, corr, front, ref, z);
  EXPECT_GT(std::fabs(e_corr - e_ind) / std::max(e_ind, 1e-12), 0.05);
}

TEST(McEipv, BetterMeanScoresHigher) {
  rng::Rng rng(6);
  const auto z = drawStdNormals(256, 2, rng);
  const std::vector<pareto::Point> front = {{0.5, 0.5}};
  const pareto::Point ref = {1.0, 1.0};
  const double good = mcEipv({0.2, 0.2}, diag2(0.01, 0.01), front, ref, z);
  const double bad = mcEipv({0.8, 0.8}, diag2(0.01, 0.01), front, ref, z);
  EXPECT_GT(good, bad);
}

TEST(McEipv, ThreeObjectives) {
  rng::Rng rng(7);
  const auto z = drawStdNormals(128, 3, rng);
  const std::vector<pareto::Point> front = {{0.5, 0.5, 0.5}};
  linalg::Matrix cov(3, 3);
  for (int i = 0; i < 3; ++i) cov(i, i) = 0.01;
  const double e =
      mcEipv({0.3, 0.3, 0.3}, cov, front, {1.0, 1.0, 1.0}, z);
  EXPECT_GT(e, 0.1);  // roughly 0.7^3 - 0.5^3
  EXPECT_LT(e, 0.35);
}

TEST(ExpectedImprovement, Eq2KnownRegimes) {
  // Far-better incumbent with tiny sigma: EI ~ deterministic improvement.
  EXPECT_NEAR(expectedImprovement(0.0, 1e-13, 5.0, 0.0), 5.0, 1e-9);
  // Mean far above incumbent: essentially zero.
  EXPECT_LT(expectedImprovement(10.0, 0.5, 0.0, 0.0), 1e-8);
  // At the incumbent with unit sigma and no jitter: EI = sigma * phi(0).
  EXPECT_NEAR(expectedImprovement(0.0, 1.0, 0.0, 0.0), 0.3989422804, 1e-6);
}

TEST(ExpectedImprovement, MonotoneInUncertaintyAtIncumbent) {
  const double lo = expectedImprovement(1.0, 0.1, 1.0, 0.0);
  const double hi = expectedImprovement(1.0, 0.5, 1.0, 0.0);
  EXPECT_GT(hi, lo);
}

TEST(ExpectedImprovement, JitterEncouragesExploration) {
  // Jitter shifts the target; EI shrinks for a point at the incumbent.
  EXPECT_LT(expectedImprovement(1.0, 0.2, 1.0, 0.1),
            expectedImprovement(1.0, 0.2, 1.0, 0.0));
}

TEST(CostPenalty, FavorsCheapFidelities) {
  // Eq. 10: PEIPV_i = EIPV_i * T_impl / T_i.
  EXPECT_DOUBLE_EQ(costPenalty(10.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(costPenalty(100.0, 100.0), 1.0);
  EXPECT_GT(costPenalty(1.0, 50.0), costPenalty(25.0, 50.0));
}

}  // namespace
}  // namespace cmmfo::core
