// Direct property tests for the math core: EIPV cell decomposition
// (Eq. 6-8) against Monte-Carlo references, and finite-difference checks of
// the analytic log-marginal-likelihood gradients that drive hyperparameter
// fitting (single-output ARD Matern-5/2, multi-task ICM, and the NARGP
// composite kernel path). The end-to-end golden trajectories pin these
// indirectly; the tests here pin the formulas themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/acquisition.h"
#include "gp/ard_kernels.h"
#include "gp/composite_kernels.h"
#include "gp/gp_regressor.h"
#include "gp/multitask_gp.h"
#include "linalg/matrix.h"
#include "pareto/cells.h"
#include "pareto/dominance.h"
#include "pareto/hypervolume.h"
#include "rng/rng.h"

namespace cmmfo {
namespace {

using pareto::Point;

// ------------------------------------------------- EIPV cell properties ----

std::vector<Point> randomFront(rng::Rng& rng, std::size_t m,
                               std::size_t n_raw) {
  std::vector<Point> pts;
  pts.reserve(n_raw);
  for (std::size_t i = 0; i < n_raw; ++i) {
    Point p(m);
    for (std::size_t d = 0; d < m; ++d) p[d] = rng.uniform(0.05, 1.0);
    pts.push_back(std::move(p));
  }
  return pareto::paretoFilter(pts);
}

bool dominatedByFront(const std::vector<Point>& front, const Point& y) {
  for (const Point& p : front) {
    bool dom = true;
    for (std::size_t d = 0; d < y.size(); ++d)
      if (p[d] > y[d]) { dom = false; break; }
    if (dom) return true;
  }
  return false;
}

// The finite non-dominated cells tile exactly the non-dominated part of the
// box [componentwise-min(front), ref]: their volumes must sum to
// vol(box) - hypervolume(front, ref), and an independent Monte-Carlo
// estimate of the same region must agree within sampling error.
TEST(EipvCells, FiniteCellVolumesComplementHypervolume) {
  rng::Rng rng(20240806);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t m = trial % 2 == 0 ? 2 : 3;
    const std::vector<Point> front = randomFront(rng, m, 4 + trial);
    const Point ref(m, 1.1);

    Point lo(m, 1e300);
    for (const Point& p : front)
      for (std::size_t d = 0; d < m; ++d) lo[d] = std::min(lo[d], p[d]);

    double box_vol = 1.0;
    for (std::size_t d = 0; d < m; ++d) box_vol *= ref[d] - lo[d];

    double finite_nd_vol = 0.0;
    for (const pareto::Cell& c : pareto::nonDominatedCells(front, ref)) {
      bool finite = true;
      for (std::size_t d = 0; d < m; ++d)
        if (!std::isfinite(c.lo[d])) { finite = false; break; }
      if (finite) finite_nd_vol += c.volume();
    }

    const double hv = pareto::hypervolume(front, ref);
    EXPECT_NEAR(finite_nd_vol, box_vol - hv, 1e-9 * std::max(1.0, box_vol))
        << "trial " << trial << " m=" << m << " |front|=" << front.size();

    // Monte-Carlo cross-check of the same identity.
    const int samples = 20000;
    int non_dominated = 0;
    for (int s = 0; s < samples; ++s) {
      Point y(m);
      for (std::size_t d = 0; d < m; ++d) y[d] = rng.uniform(lo[d], ref[d]);
      if (!dominatedByFront(front, y)) ++non_dominated;
    }
    const double frac = finite_nd_vol / box_vol;
    const double mc = static_cast<double>(non_dominated) / samples;
    const double sigma = std::sqrt(frac * (1.0 - frac) / samples) + 1e-9;
    EXPECT_NEAR(mc, frac, 5.0 * sigma + 0.005) << "trial " << trial;
  }
}

TEST(EipvCells, CellsAreDisjointAndTrulyNonDominated) {
  rng::Rng rng(7);
  const std::vector<Point> front = randomFront(rng, 3, 6);
  const Point ref(3, 1.1);
  const auto cells = pareto::nonDominatedCells(front, ref);
  ASSERT_FALSE(cells.empty());
  for (const pareto::Cell& c : cells) {
    // An interior probe of every cell must be non-dominated (the whole cell
    // is, by the grid construction). Clamp -inf edges into the box.
    Point probe(3);
    for (std::size_t d = 0; d < 3; ++d) {
      const double lo = std::isfinite(c.lo[d]) ? c.lo[d] : c.hi[d] - 1.0;
      probe[d] = 0.5 * (lo + c.hi[d]);
    }
    EXPECT_FALSE(dominatedByFront(front, probe));
  }
  // Disjointness: finite cells must not overlap pairwise.
  for (std::size_t i = 0; i < cells.size(); ++i)
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      bool overlap = true;
      for (std::size_t d = 0; d < 3; ++d) {
        const double lo_i = std::isfinite(cells[i].lo[d]) ? cells[i].lo[d]
                                                          : -1e300;
        const double lo_j = std::isfinite(cells[j].lo[d]) ? cells[j].lo[d]
                                                          : -1e300;
        if (std::min(cells[i].hi[d], cells[j].hi[d]) <=
            std::max(lo_i, lo_j) + 1e-15) {
          overlap = false;
          break;
        }
      }
      EXPECT_FALSE(overlap) << "cells " << i << " and " << j << " overlap";
    }
}

TEST(EipvProperties, ExactIndependentEipvMatchesMonteCarlo) {
  rng::Rng rng(101);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t m = trial % 2 == 0 ? 2 : 3;
    const std::vector<Point> front = randomFront(rng, m, 5);
    const Point ref(m, 1.1);
    Point mu(m), sigma(m);
    for (std::size_t d = 0; d < m; ++d) {
      mu[d] = rng.uniform(0.2, 0.9);
      sigma[d] = rng.uniform(0.05, 0.3);
    }
    const double exact = pareto::exactEipvIndependent(mu, sigma, front, ref);
    EXPECT_GE(exact, 0.0);

    // MC: mcEipv with a diagonal covariance is the same quantity.
    linalg::Matrix cov(m, m);
    for (std::size_t d = 0; d < m; ++d) cov(d, d) = sigma[d] * sigma[d];
    const auto z = core::drawStdNormals(20000, m, rng);
    const double mc = core::mcEipv(mu, cov, front, ref, z);
    EXPECT_GE(mc, 0.0);
    EXPECT_NEAR(mc, exact, 0.08 * std::max(exact, 0.01))
        << "trial " << trial << " m=" << m;
  }
}

// EIPV must be monotone in predictive-mean improvement: shifting the mean
// toward the ideal point (componentwise smaller, minimization convention)
// can only enlarge every sample's dominated volume under common random
// numbers, so the MC estimate is non-decreasing — and so is the closed form.
TEST(EipvProperties, MonotoneInPredictiveMeanImprovement) {
  rng::Rng rng(555);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t m = trial % 2 == 0 ? 2 : 3;
    const std::vector<Point> front = randomFront(rng, m, 5);
    const Point ref(m, 1.1);
    Point mu(m), sigma(m);
    for (std::size_t d = 0; d < m; ++d) {
      mu[d] = rng.uniform(0.3, 1.0);
      sigma[d] = rng.uniform(0.05, 0.25);
    }
    linalg::Matrix cov(m, m);
    for (std::size_t d = 0; d < m; ++d) cov(d, d) = sigma[d] * sigma[d];
    const auto z = core::drawStdNormals(4000, m, rng);

    double prev_mc = core::mcEipv(mu, cov, front, ref, z);
    double prev_exact = pareto::exactEipvIndependent(mu, sigma, front, ref);
    for (int step = 0; step < 4; ++step) {
      for (std::size_t d = 0; d < m; ++d) mu[d] -= 0.07;
      const double mc = core::mcEipv(mu, cov, front, ref, z);
      const double exact = pareto::exactEipvIndependent(mu, sigma, front, ref);
      // Samplewise monotone under common random numbers => no tolerance
      // needed for MC; the closed form gets a tiny numerical allowance.
      EXPECT_GE(mc, prev_mc) << "trial " << trial << " step " << step;
      EXPECT_GE(exact, prev_exact - 1e-12)
          << "trial " << trial << " step " << step;
      prev_mc = mc;
      prev_exact = exact;
    }
  }
}

// --------------------------------------- LML finite-difference checks ----

// Central finite differences of f at `packed`, compared against the
// analytic gradient returned alongside f. `h` is scaled per-coordinate.
template <typename EvalFn>
void checkGradient(const EvalFn& eval, const gp::Vec& packed, double h,
                   double rel_tol, const char* what) {
  gp::Vec grad;
  const double f0 = eval(packed, &grad);
  ASSERT_TRUE(std::isfinite(f0)) << what;
  ASSERT_EQ(grad.size(), packed.size()) << what;
  for (std::size_t i = 0; i < packed.size(); ++i) {
    gp::Vec plus = packed, minus = packed;
    plus[i] += h;
    minus[i] -= h;
    const double fp = eval(plus, nullptr);
    const double fm = eval(minus, nullptr);
    ASSERT_TRUE(std::isfinite(fp) && std::isfinite(fm)) << what;
    const double fd = (fp - fm) / (2.0 * h);
    EXPECT_NEAR(grad[i], fd, rel_tol * (1.0 + std::fabs(fd)))
        << what << ": param " << i << " of " << packed.size();
  }
}

gp::Dataset makeInputs(rng::Rng& rng, std::size_t n, std::size_t dim) {
  gp::Dataset x;
  x.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gp::Vec xi(dim);
    for (std::size_t d = 0; d < dim; ++d) xi[d] = rng.uniform(-1.0, 1.0);
    x.push_back(std::move(xi));
  }
  return x;
}

gp::Vec smoothTargets(const gp::Dataset& x, rng::Rng& rng) {
  gp::Vec y;
  y.reserve(x.size());
  for (const auto& xi : x) {
    double s = 0.0;
    for (std::size_t d = 0; d < xi.size(); ++d)
      s += std::sin(1.7 * xi[d]) + 0.3 * xi[d] * xi[d];
    y.push_back(s + 0.05 * rng.normal());
  }
  return y;
}

TEST(LmlGradients, ArdMatern52SingleOutputMatchesFiniteDifferences) {
  rng::Rng rng(31);
  const std::size_t dim = 3, n = 9;
  const gp::Dataset x = makeInputs(rng, n, dim);
  const gp::Vec y = smoothTargets(x, rng);

  gp::GpFitOptions fopts;
  gp::GpRegressor model(gp::Matern52Ard(dim, /*unit_variance=*/false), fopts);
  model.refitPosterior(x, y);  // caches the training data for the objective

  // Perturbed-but-interior parameters: lengthscales/signal near their
  // defaults, log noise strictly inside the [min_noise, max_noise] clamp
  // (the gradient is deliberately zeroed outward at the boundary).
  gp::Vec packed = model.packedParams();
  for (std::size_t i = 0; i + 1 < packed.size(); ++i)
    packed[i] += rng.uniform(-0.3, 0.3);
  packed.back() = std::log(0.08);

  const auto eval = [&model](const gp::Vec& p, gp::Vec* g) {
    return model.evalNegLogMarginalLikelihood(p, g);
  };
  checkGradient(eval, packed, 1e-5, 1e-4, "Matern52Ard");
}

TEST(LmlGradients, MultiTaskIcmMatchesFiniteDifferences) {
  rng::Rng rng(47);
  const std::size_t dim = 2, n = 7, m = 2;
  const gp::Dataset x = makeInputs(rng, n, dim);
  linalg::Matrix y(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) s += std::sin(2.0 * x[i][d]);
    y(i, 0) = s + 0.05 * rng.normal();
    y(i, 1) = -0.8 * s + 0.2 * x[i][0] + 0.05 * rng.normal();
  }

  gp::MultiTaskFitOptions fopts;
  gp::MultiTaskGp model(gp::Matern52Ard(dim, /*unit_variance=*/true), m,
                        fopts);
  model.refitPosterior(x, y);

  // Packed layout: [kernel, L lower-triangle (diag as logs), log noises].
  gp::Vec packed = model.packedParams();
  const std::size_t nk = model.inputKernel().numParams();
  for (std::size_t i = 0; i < nk; ++i) packed[i] += rng.uniform(-0.2, 0.2);
  for (std::size_t i = nk; i < nk + m * (m + 1) / 2; ++i)
    packed[i] += rng.uniform(-0.3, 0.3);
  for (std::size_t i = packed.size() - m; i < packed.size(); ++i)
    packed[i] = std::log(0.1) + rng.uniform(-0.2, 0.2);  // interior of clamp

  const auto eval = [&model](const gp::Vec& p, gp::Vec* g) {
    return model.evalNegLogMarginalLikelihood(p, g);
  };
  checkGradient(eval, packed, 1e-5, 2e-4, "MultiTaskGp/ICM");
}

// NARGP composite path (Eq. 5): k_z over [x, f_lower] plus a SubspaceKernel
// error term over x only — the exact kernel nonlinear_mf_gp builds for
// levels > 0. The composite's gramGrad chains through SumKernel and
// SubspaceKernel, so this pins the whole composite-kernel gradient path.
TEST(LmlGradients, NargpCompositeKernelMatchesFiniteDifferences) {
  rng::Rng rng(63);
  const std::size_t dim = 2, n = 8;
  // Inputs are [x (dim), f_lower (1)] — dim+1 coordinates.
  const gp::Dataset x = makeInputs(rng, n, dim + 1);
  const gp::Vec y = smoothTargets(x, rng);

  auto kz = std::make_unique<gp::Matern52Ard>(dim + 1, false);
  std::vector<std::size_t> xdims(dim);
  for (std::size_t d = 0; d < dim; ++d) xdims[d] = d;
  auto ke_inner = std::make_unique<gp::Matern52Ard>(dim, false);
  ke_inner->setSignalStddev(0.3);
  auto ke =
      std::make_unique<gp::SubspaceKernel>(std::move(ke_inner), xdims);
  const gp::SumKernel nargp(std::move(kz), std::move(ke));

  gp::GpRegressor model(nargp, gp::GpFitOptions{});
  model.refitPosterior(x, y);

  gp::Vec packed = model.packedParams();
  for (std::size_t i = 0; i + 1 < packed.size(); ++i)
    packed[i] += rng.uniform(-0.25, 0.25);
  packed.back() = std::log(0.1);

  const auto eval = [&model](const gp::Vec& p, gp::Vec* g) {
    return model.evalNegLogMarginalLikelihood(p, g);
  };
  checkGradient(eval, packed, 1e-5, 2e-4, "NARGP composite");
}

}  // namespace
}  // namespace cmmfo
