#include <gtest/gtest.h>

#include <set>

#include "bench_suite/benchmarks.h"
#include "hls/pruner.h"

namespace cmmfo::hls {
namespace {

/// The Fig. 3 kernel (same structure as in test_kernel_ir.cpp).
Kernel fig3Kernel() {
  Kernel k("fig3");
  const ArrayId a = k.addArray("A", 100);
  const ArrayId b = k.addArray("B", 100);
  const LoopId l1 = k.addLoop("L1", 10);
  const LoopId l2 = k.addLoop("L2", 10, l1);
  const LoopId l3 = k.addLoop("L3", 10, l1);
  k.loop(l2).body_ops[OpKind::kLoad] = 1;
  k.loop(l2).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l2, IndexRole::kMinor}}, false, 1});
  k.loop(l3).body_ops[OpKind::kLoad] = 2;
  k.loop(l3).refs.push_back(
      {b, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});
  k.loop(l3).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});
  return k;
}

SpaceSpec fig3Spec(const Kernel& k) {
  SpaceSpec spec;
  spec.loops.resize(k.numLoops());
  spec.arrays.resize(k.numArrays());
  for (auto& l : spec.loops) l.unroll_factors = {1, 2, 5, 10};
  for (auto& a : spec.arrays) {
    a.types = {PartitionType::kNone, PartitionType::kCyclic,
               PartitionType::kBlock};
    a.factors = {1, 2, 5, 10};
  }
  return spec;
}

TEST(MergedTrees, Fig3ArraysMergeThroughSharedLoops) {
  // A's tree has loops {L1, L2, L3}; B's has {L1, L3}: common nodes L1/L3
  // merge them into a single tree (Fig. 3b right).
  const Kernel k = fig3Kernel();
  const auto trees = buildMergedTrees(k);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].arrays, (std::vector<ArrayId>{0, 1}));
  EXPECT_EQ(trees[0].loops, (std::vector<LoopId>{0, 1, 2}));
}

TEST(MergedTrees, DisjointArraysStaySeparate) {
  Kernel k("disjoint");
  const ArrayId a = k.addArray("a", 8);
  const ArrayId b = k.addArray("b", 8);
  const LoopId l0 = k.addLoop("l0", 8);
  const LoopId l1 = k.addLoop("l1", 8);
  k.loop(l0).refs.push_back({a, {{l0, IndexRole::kMinor}}, false, 1});
  k.loop(l1).refs.push_back({b, {{l1, IndexRole::kMinor}}, false, 1});
  EXPECT_EQ(buildMergedTrees(k).size(), 2u);
}

TEST(MergedTrees, UnindexedArrayExcluded) {
  Kernel k("scalarish");
  k.addArray("coef", 2);
  const LoopId l0 = k.addLoop("l0", 8);
  k.loop(l0).refs.push_back({0, {}, false, 1});  // no loop index
  EXPECT_TRUE(buildMergedTrees(k).empty());
}

TEST(UnrollCompatible, CyclicServesMinorOnly) {
  // The paper's example: "we will not unroll L1, because L1 is incompatible
  // with CYCLIC partitioning of A".
  const Kernel k = fig3Kernel();
  EXPECT_FALSE(unrollCompatible(k, 0, 0, PartitionType::kCyclic));  // L1 vs A
  EXPECT_TRUE(unrollCompatible(k, 1, 0, PartitionType::kCyclic));   // L2 vs A
  EXPECT_TRUE(unrollCompatible(k, 2, 0, PartitionType::kCyclic));   // L3 vs A
}

TEST(UnrollCompatible, BlockIsTheDual) {
  const Kernel k = fig3Kernel();
  EXPECT_TRUE(unrollCompatible(k, 0, 0, PartitionType::kBlock));
  EXPECT_FALSE(unrollCompatible(k, 1, 0, PartitionType::kBlock));
}

TEST(UnrollCompatible, CompleteAlwaysOk
) {
  const Kernel k = fig3Kernel();
  for (LoopId l : {0, 1, 2})
    EXPECT_TRUE(unrollCompatible(k, l, 0, PartitionType::kComplete));
}

TEST(UnrollCompatible, UnrelatedPairAlwaysOk) {
  const Kernel k = fig3Kernel();
  // L2 never indexes B.
  EXPECT_TRUE(unrollCompatible(k, 1, 1, PartitionType::kCyclic));
  EXPECT_TRUE(unrollCompatible(k, 1, 1, PartitionType::kNone));
}

TEST(Pruner, BaselineConfigurationAlwaysIncluded) {
  const Kernel k = fig3Kernel();
  const auto configs = prunedConfigs(k, fig3Spec(k));
  const DirectiveConfig baseline{std::vector<LoopDirective>(3),
                                 std::vector<ArrayDirective>(2)};
  bool found = false;
  for (const auto& c : configs)
    if (c == baseline) found = true;
  EXPECT_TRUE(found);
}

TEST(Pruner, AllConfigsPassCompatibilityInvariant) {
  const Kernel k = fig3Kernel();
  for (const auto& c : prunedConfigs(k, fig3Spec(k)))
    EXPECT_TRUE(isCompatibleConfig(k, c)) << c.toString(k);
}

TEST(Pruner, NoDuplicateConfigs) {
  const Kernel k = fig3Kernel();
  const auto configs = prunedConfigs(k, fig3Spec(k));
  std::set<std::uint64_t> hashes;
  for (const auto& c : configs) hashes.insert(c.hash());
  EXPECT_EQ(hashes.size(), configs.size());
}

TEST(Pruner, ReportsReductionStats) {
  const Kernel k = fig3Kernel();
  PruneStats stats;
  const auto configs = prunedConfigs(k, fig3Spec(k), &stats);
  EXPECT_EQ(stats.pruned_size, configs.size());
  EXPECT_GT(stats.raw_size, static_cast<double>(configs.size()));
  EXPECT_GT(stats.reduction_factor(), 1.0);
}

TEST(Pruner, BacktrackAssignsCoAccessedArrays) {
  // Unrolling L3 under cyclic A requires B (also indexed minor by L3) to be
  // cyclically partitioned with a factor tiling the unroll.
  const Kernel k = fig3Kernel();
  for (const auto& c : prunedConfigs(k, fig3Spec(k))) {
    if (c.loops[2].unroll > 1 &&
        c.arrays[0].type == PartitionType::kCyclic) {
      EXPECT_EQ(c.arrays[1].type, PartitionType::kCyclic);
      EXPECT_EQ(c.arrays[1].factor % c.loops[2].unroll, 0);
    }
  }
}

TEST(Pruner, SeedFactorAlwaysExploited) {
  // "If the array partitioning factor is greater [than every unroll], more
  // memory resources are consumed without increasing parallelism" — such
  // configurations must be pruned: some loop uses the full banking.
  const Kernel k = fig3Kernel();
  for (const auto& c : prunedConfigs(k, fig3Spec(k))) {
    for (std::size_t a = 0; a < c.arrays.size(); ++a) {
      if (c.arrays[a].type != PartitionType::kCyclic &&
          c.arrays[a].type != PartitionType::kBlock)
        continue;
      int max_unroll = 1;
      for (std::size_t l = 0; l < c.loops.size(); ++l)
        max_unroll = std::max(max_unroll, c.loops[l].unroll);
      EXPECT_LE(c.arrays[a].factor, 10);
      EXPECT_GE(max_unroll, 2) << "partitioned without any unrolled loop";
    }
  }
}

TEST(Pruner, RawEnumerationRespectsCap) {
  const Kernel k = fig3Kernel();
  const auto configs = rawConfigs(k, fig3Spec(k), 100);
  EXPECT_EQ(configs.size(), 100u);
}

TEST(Pruner, RawEnumerationCoversWholeTinySpace) {
  Kernel k("tiny");
  k.addArray("a", 4);
  const LoopId l = k.addLoop("l", 4);
  k.loop(l).refs.push_back({0, {{l, IndexRole::kMinor}}, false, 1});
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2, 4};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic};
  spec.arrays[0].factors = {2, 4};
  // Raw size = 3 * (1 + 2) = 9.
  const auto configs = rawConfigs(k, spec, 1000);
  EXPECT_EQ(configs.size(), 9u);
  std::set<std::uint64_t> hashes;
  for (const auto& c : configs) hashes.insert(c.hash());
  EXPECT_EQ(hashes.size(), 9u);
}

TEST(Pruner, PrunedIsSubsetOfRawSemantics) {
  // Every pruned config must also be expressible in the raw space: factors
  // and unrolls drawn from the spec's option lists.
  const Kernel k = fig3Kernel();
  const SpaceSpec spec = fig3Spec(k);
  for (const auto& c : prunedConfigs(k, spec)) {
    for (std::size_t l = 0; l < c.loops.size(); ++l) {
      const auto& opts = spec.loops[l].unroll_factors;
      EXPECT_NE(std::find(opts.begin(), opts.end(), c.loops[l].unroll),
                opts.end());
    }
    for (std::size_t a = 0; a < c.arrays.size(); ++a) {
      if (c.arrays[a].type == PartitionType::kCyclic ||
          c.arrays[a].type == PartitionType::kBlock) {
        const auto& fopts = spec.arrays[a].factors;
        EXPECT_NE(std::find(fopts.begin(), fopts.end(), c.arrays[a].factor),
                  fopts.end());
      }
    }
  }
}

class BenchmarkPruning : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkPruning, InvariantsHoldOnRealBenchmarks) {
  const auto bm = bench_suite::makeBenchmark(GetParam());
  PruneStats stats;
  const auto configs = prunedConfigs(bm.kernel, bm.spec, &stats);
  ASSERT_GT(configs.size(), 10u);
  // Massive reduction vs the raw Cartesian space (Sec. V-A).
  EXPECT_GT(stats.reduction_factor(), 50.0);
  std::set<std::uint64_t> hashes;
  for (const auto& c : configs) {
    EXPECT_TRUE(isCompatibleConfig(bm.kernel, c));
    hashes.insert(c.hash());
  }
  EXPECT_EQ(hashes.size(), configs.size());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkPruning,
                         ::testing::ValuesIn(bench_suite::benchmarkNames()));

}  // namespace
}  // namespace cmmfo::hls
