// Fault-injection, retry/backoff, graceful degradation and checkpoint/resume
// tests for the fault-tolerant evaluation layer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_suite/benchmarks.h"
#include "core/checkpoint.h"
#include "core/optimizer.h"
#include "runtime/eval_cache.h"
#include "runtime/scheduler.h"

namespace cmmfo {
namespace {

using runtime::EvalCache;
using runtime::EvalJob;
using runtime::EvalResult;
using runtime::RetryPolicy;
using runtime::ToolScheduler;
using sim::AttemptStatus;
using sim::Fidelity;
using sim::FlowAttempt;

struct Fixture {
  Fixture()
      : bm(bench_suite::makeSpmvCrs()),
        space(hls::DesignSpace::buildPruned(bm.kernel, bm.spec)),
        sim(bm.kernel, sim::DeviceModel::virtex7Vc707(), bm.sim_params, 42) {}
  bench_suite::Benchmark bm;
  hls::DesignSpace space;
  sim::FpgaToolSim sim;
};

core::OptimizerOptions fastOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

// --------------------------------------------------- fault determinism ----

TEST(FaultInjection, DisabledFaultsAreABitExactNoOp) {
  Fixture f;
  for (std::size_t c : {0u, 17u, 99u}) {
    const auto cfg = f.space.config(c);
    const FlowAttempt fa = f.sim.runFlowAttempt(cfg, Fidelity::kImpl, 1);
    EXPECT_TRUE(fa.ok());
    EXPECT_EQ(fa.completed_upto, 2);
    // The attempt charges EXACTLY the legacy cumulative flow cost — not an
    // additive per-stage re-summation, which would differ in the last bits.
    const sim::Report clean = f.sim.run(cfg, Fidelity::kImpl);
    EXPECT_DOUBLE_EQ(fa.attempt_seconds, clean.tool_seconds);
    EXPECT_DOUBLE_EQ(fa.stages[2].delay_us, clean.delay_us);
  }
}

TEST(FaultInjection, TimeoutOnlyPolicyKeepsLegacyNumbersWhenNothingFires) {
  // A timeout forces the fault-aware path; with no fault events the charge
  // must still be bit-for-bit the legacy cumulative value.
  Fixture f;
  const auto cfg = f.space.config(5);
  const FlowAttempt fa = f.sim.runFlowAttempt(cfg, Fidelity::kImpl, 1, 1e12);
  EXPECT_TRUE(fa.ok());
  EXPECT_DOUBLE_EQ(fa.attempt_seconds,
                   f.sim.run(cfg, Fidelity::kImpl).tool_seconds);
}

TEST(FaultInjection, SameSeedSameAttemptGivesIdenticalFaultPattern) {
  Fixture f1, f2;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.3;
  faults.hang_prob = 0.1;
  faults.license_stall_prob = 0.1;
  f1.sim.setFaultParams(faults);
  f2.sim.setFaultParams(faults);
  for (std::size_t c = 0; c < 40; ++c) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const FlowAttempt a =
          f1.sim.runFlowAttempt(f1.space.config(c), Fidelity::kImpl, attempt);
      const FlowAttempt b =
          f2.sim.runFlowAttempt(f2.space.config(c), Fidelity::kImpl, attempt);
      EXPECT_EQ(a.status, b.status);
      EXPECT_EQ(a.completed_upto, b.completed_upto);
      EXPECT_EQ(a.failed_stage, b.failed_stage);
      EXPECT_DOUBLE_EQ(a.attempt_seconds, b.attempt_seconds);
    }
  }
}

TEST(FaultInjection, RetriedAttemptsRollFreshDice) {
  // With a 50% transient rate, some config must fail on attempt 1 and
  // succeed on attempt 2 — crashes key on (config, stage, attempt).
  Fixture f;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.5;
  f.sim.setFaultParams(faults);
  bool saw_retry_rescue = false;
  for (std::size_t c = 0; c < 60 && !saw_retry_rescue; ++c) {
    const FlowAttempt a1 =
        f.sim.runFlowAttempt(f.space.config(c), Fidelity::kImpl, 1);
    const FlowAttempt a2 =
        f.sim.runFlowAttempt(f.space.config(c), Fidelity::kImpl, 2);
    if (!a1.ok() && a2.ok()) saw_retry_rescue = true;
  }
  EXPECT_TRUE(saw_retry_rescue);
}

TEST(FaultInjection, TransientCrashChargesPartOfTheCleanFlow) {
  Fixture f;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.5;
  f.sim.setFaultParams(faults);
  int seen = 0;
  for (std::size_t c = 0; c < 60; ++c) {
    const auto cfg = f.space.config(c);
    const FlowAttempt fa = f.sim.runFlowAttempt(cfg, Fidelity::kImpl, 1);
    if (fa.status != AttemptStatus::kTransientCrash) continue;
    ++seen;
    EXPECT_GE(fa.failed_stage, 0);
    EXPECT_LT(fa.completed_upto, 2);
    EXPECT_GT(fa.attempt_seconds, 0.0);
    EXPECT_LT(fa.attempt_seconds, f.sim.run(cfg, Fidelity::kImpl).tool_seconds);
  }
  EXPECT_GT(seen, 0);
}

TEST(FaultInjection, HungAttemptIsKilledChargingExactlyTheTimeout) {
  Fixture f;
  sim::FaultParams faults;
  faults.hang_prob = 1.0;  // every stage wedges at 20x nominal
  f.sim.setFaultParams(faults);
  const auto cfg = f.space.config(3);
  const double clean = f.sim.run(cfg, Fidelity::kImpl).tool_seconds;
  const FlowAttempt fa = f.sim.runFlowAttempt(cfg, Fidelity::kImpl, 1, clean);
  EXPECT_EQ(fa.status, AttemptStatus::kTimeout);
  EXPECT_DOUBLE_EQ(fa.attempt_seconds, clean);
  // Without a timeout the hung run completes and charges the full 20x.
  const FlowAttempt slow = f.sim.runFlowAttempt(cfg, Fidelity::kImpl, 1);
  EXPECT_TRUE(slow.ok());
  EXPECT_NEAR(slow.attempt_seconds, 20.0 * clean, 1e-6 * clean);
}

TEST(FaultInjection, PersistentFailureHitsEveryAttemptAtTheSameStage) {
  Fixture f;
  sim::FaultParams faults;
  faults.persistent_failure_prob = 1.0;
  f.sim.setFaultParams(faults);
  const auto cfg = f.space.config(11);
  const FlowAttempt a1 = f.sim.runFlowAttempt(cfg, Fidelity::kImpl, 1);
  const FlowAttempt a9 = f.sim.runFlowAttempt(cfg, Fidelity::kImpl, 9);
  EXPECT_EQ(a1.status, AttemptStatus::kPersistentFailure);
  EXPECT_EQ(a9.status, AttemptStatus::kPersistentFailure);
  EXPECT_EQ(a1.failed_stage, a9.failed_stage);
}

// ------------------------------------------------------ backoff schedule ----

TEST(Backoff, DeterministicBoundedExponentialSchedule) {
  RetryPolicy policy;  // base 30, factor 2, jitter 0.25
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const double nominal =
        policy.backoff_base_seconds * std::pow(policy.backoff_factor,
                                               attempt - 1);
    const double d = policy.backoffSeconds(7, Fidelity::kSyn, attempt);
    EXPECT_GE(d, nominal * (1.0 - policy.backoff_jitter_frac));
    EXPECT_LE(d, nominal * (1.0 + policy.backoff_jitter_frac));
    // Deterministic: same key, same wait.
    EXPECT_DOUBLE_EQ(d, policy.backoffSeconds(7, Fidelity::kSyn, attempt));
  }
  // With 25% jitter and factor 2 the bands never overlap: the schedule is
  // strictly increasing in the attempt number.
  for (int attempt = 1; attempt < 4; ++attempt)
    EXPECT_LT(policy.backoffSeconds(7, Fidelity::kSyn, attempt),
              policy.backoffSeconds(7, Fidelity::kSyn, attempt + 1));
  // Jitter decorrelates jobs: not every config waits the same.
  bool differs = false;
  for (std::size_t c = 1; c < 20 && !differs; ++c)
    differs = policy.backoffSeconds(c, Fidelity::kSyn, 1) !=
              policy.backoffSeconds(0, Fidelity::kSyn, 1);
  EXPECT_TRUE(differs);
}

// ------------------------------------------- scheduler retry accounting ----

TEST(SchedulerFaults, RetriesChargeHonestlyAndTieOutWithTheSimulator) {
  Fixture f;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.25;
  f.sim.setFaultParams(faults);
  EvalCache cache;
  RetryPolicy policy;
  policy.max_attempts = 4;
  ToolScheduler sched(f.space, f.sim, cache, 1, policy);

  std::vector<EvalJob> jobs;
  for (std::size_t c = 0; c < 24; ++c) jobs.push_back({c, Fidelity::kImpl});
  const auto results = sched.runBatch(jobs);

  const runtime::SchedulerStats& t = sched.totals();
  EXPECT_GT(t.attempts, t.tool_runs);  // at ~25%/stage some retries happened
  EXPECT_GT(t.transient_failures, 0);
  EXPECT_GT(t.retry_seconds_wasted, 0.0);
  EXPECT_LT(t.retry_seconds_wasted, t.charged_seconds);
  EXPECT_GT(t.backoff_seconds, 0.0);
  // Sequential regime: the scheduler ledger and the simulator accumulator
  // are the same sum in the same order — exactly equal.
  EXPECT_DOUBLE_EQ(t.charged_seconds, f.sim.totalToolSeconds());
  // Wall-clock includes backoff; charged does not.
  EXPECT_GE(t.wall_seconds, t.charged_seconds + t.backoff_seconds - 1e-9);
  for (const EvalResult& r : results)
    if (r.attempts > 1) EXPECT_GT(r.wasted_seconds, 0.0);
}

TEST(SchedulerFaults, PersistentFailureAbortsWithoutBurningRetries) {
  Fixture f;
  sim::FaultParams faults;
  faults.persistent_failure_prob = 1.0;
  f.sim.setFaultParams(faults);
  EvalCache cache;
  RetryPolicy policy;
  policy.max_attempts = 5;
  ToolScheduler sched(f.space, f.sim, cache, 1, policy);

  const auto results = sched.runBatch({{0, Fidelity::kImpl}});
  ASSERT_EQ(results.size(), 1u);
  const EvalResult& r = results[0];
  EXPECT_TRUE(r.persistent_failure);
  EXPECT_EQ(r.attempts, 1);  // retrying a persistent fault only burns hours
  EXPECT_EQ(r.completed_fidelity, -1);  // stage 0 fails: nothing completed
  EXPECT_EQ(sched.totals().persistent_failures, 1);
}

TEST(SchedulerFaults, ExhaustedRetriesDegradeToTheDeepestCompletedPrefix) {
  // Find a job whose impl stage keeps crashing but whose hls/syn complete:
  // the scheduler must settle on the syn prefix and flag degradation.
  Fixture f;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.45;
  f.sim.setFaultParams(faults);
  EvalCache cache;
  RetryPolicy policy;
  policy.max_attempts = 2;
  ToolScheduler sched(f.space, f.sim, cache, 1, policy);

  std::vector<EvalJob> jobs;
  for (std::size_t c = 0; c < 48; ++c) jobs.push_back({c, Fidelity::kImpl});
  const auto results = sched.runBatch(jobs);

  int degraded = 0;
  for (const EvalResult& r : results) {
    if (r.cache_hit || r.persistent_failure) continue;
    if (r.degraded() && r.completed_fidelity >= 0) {
      ++degraded;
      // The surviving prefix is real data at its stage.
      EXPECT_TRUE(r.completedReport().tool_seconds > 0.0);
    }
  }
  EXPECT_GT(degraded, 0);
  EXPECT_EQ(sched.totals().degraded_jobs, degraded);
}

TEST(SchedulerFaults, RetryPolicyAloneIsANoOpWithoutFaults) {
  // Belt-and-braces for the acceptance criterion: turning the retry
  // machinery ON while the fault layer is OFF must not move a single bit.
  Fixture f1, f2;
  EvalCache c1, c2;
  RetryPolicy aggressive;
  aggressive.max_attempts = 7;
  aggressive.attempt_timeout_seconds = 1e12;
  ToolScheduler plain(f1.space, f1.sim, c1, 1);
  ToolScheduler armed(f2.space, f2.sim, c2, 1, aggressive);

  std::vector<EvalJob> jobs;
  for (std::size_t c = 0; c < 12; ++c) jobs.push_back({c, Fidelity::kImpl});
  const auto r1 = plain.runBatch(jobs);
  const auto r2 = armed.runBatch(jobs);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].charged_seconds, r2[i].charged_seconds);
    EXPECT_EQ(r2[i].attempts, 1);
    EXPECT_EQ(r2[i].backoff_seconds, 0.0);
  }
  EXPECT_DOUBLE_EQ(plain.totals().charged_seconds,
                   armed.totals().charged_seconds);
  EXPECT_DOUBLE_EQ(plain.totals().wall_seconds, armed.totals().wall_seconds);
}

// ------------------------------------------------- optimizer degradation ----

TEST(OptimizerFaults, RunsToCompletionUnderInjectedFaults) {
  Fixture f;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.10;
  f.sim.setFaultParams(faults);
  core::OptimizerOptions o = fastOpts();
  o.seed = 7;
  o.retry.max_attempts = 2;  // low, so some jobs degrade
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();

  EXPECT_EQ(static_cast<int>(res.iterations.size()), o.n_iter);
  EXPECT_GT(res.attempts, 0);
  EXPECT_GE(res.attempts, res.tool_runs);
  EXPECT_GE(res.wasted_seconds, 0.0);
  EXPECT_DOUBLE_EQ(res.tool_seconds, f.sim.totalToolSeconds());
  // Every proposal is represented in CS, completed or not.
  EXPECT_GE(res.cs.size(), res.iterations.size());
  if (res.transient_failures > 0) EXPECT_GT(res.wasted_seconds, 0.0);
}

TEST(OptimizerFaults, PersistentFailuresFeedThePenaltyPath) {
  Fixture f;
  sim::FaultParams faults;
  faults.persistent_failure_prob = 0.08;
  f.sim.setFaultParams(faults);
  core::OptimizerOptions o = fastOpts();
  o.seed = 3;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  EXPECT_EQ(static_cast<int>(res.iterations.size()), o.n_iter);
  // Any abandoned design must appear in CS as an invalid record so the
  // Sec. IV-C penalty entered the datasets.
  int invalid = 0;
  for (const auto& rec : res.cs)
    if (!rec.report.valid) ++invalid;
  EXPECT_GE(invalid, res.persistent_failures);
}

// ------------------------------------------------------ checkpoint state ----

TEST(Checkpoint, SerializeParseRoundTripsEveryField) {
  core::CheckpointState st;
  st.fingerprint = 0xDEADBEEFCAFEF00DULL;
  st.next_round = 4;
  st.t = 9;
  st.rng = {{0x123456789abcdef0ULL, 2, 3, 0xffffffffffffffffULL},
            true,
            -0.12345678901234567};
  st.data[0].configs = {1, 2, 3};
  st.data[0].y = {{0.1, 0.2, 0.3}, {1.0 / 3.0, 2.0 / 3.0, 4.0 / 3.0},
                  {1e-300, 1e300, -0.0}};
  st.data[2].configs = {7};
  st.data[2].y = {{-1.5, 2.5, 3.5}};
  sim::Report rep;
  rep.valid = true;
  rep.power_w = 1.2345678901234567;
  rep.delay_us = 987.65432109876543;
  rep.lut_util = 0.4444444444444444;
  rep.latency_cycles = 123456;
  rep.clock_ns = 3.21;
  rep.tool_seconds = 1234.5678901234567;
  st.cs.push_back({42, 2, rep});
  st.iterations.push_back({0, 1, 17, 0.0012345, 0});
  st.picks_per_fidelity = {3, 2, 1};
  st.totals.charged_seconds = 5555.5555;
  st.totals.attempts = 12;
  st.totals.retry_seconds_wasted = 77.7;
  st.sim_tool_seconds = 5555.5556;
  st.cache = {{3, 2}, {9, 0}};
  st.cache_hits = 5;
  st.cache_misses = 11;
  st.surrogate_hypers = {{0.5, -0.25, 1.75}, {2.5}};
  st.surrogate_base = {16, 8, 0};

  const std::string text = core::serializeCheckpoint(st);
  core::CheckpointState back;
  std::string err;
  ASSERT_TRUE(core::parseCheckpoint(text, &back, &err)) << err;

  EXPECT_EQ(back.version, core::CheckpointState::kVersion);
  EXPECT_EQ(back.fingerprint, st.fingerprint);
  EXPECT_EQ(back.next_round, st.next_round);
  EXPECT_EQ(back.t, st.t);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back.rng.s[i], st.rng.s[i]);
  EXPECT_EQ(back.rng.has_cached_normal, st.rng.has_cached_normal);
  EXPECT_DOUBLE_EQ(back.rng.cached_normal, st.rng.cached_normal);
  for (int fidx = 0; fidx < sim::kNumFidelities; ++fidx) {
    ASSERT_EQ(back.data[fidx].configs, st.data[fidx].configs);
    ASSERT_EQ(back.data[fidx].y.size(), st.data[fidx].y.size());
    for (std::size_t i = 0; i < st.data[fidx].y.size(); ++i)
      for (std::size_t m = 0; m < st.data[fidx].y[i].size(); ++m)
        EXPECT_DOUBLE_EQ(back.data[fidx].y[i][m], st.data[fidx].y[i][m]);
  }
  ASSERT_EQ(back.cs.size(), 1u);
  EXPECT_EQ(back.cs[0].config, 42u);
  EXPECT_EQ(back.cs[0].fidelity, 2);
  EXPECT_DOUBLE_EQ(back.cs[0].report.power_w, rep.power_w);
  EXPECT_DOUBLE_EQ(back.cs[0].report.tool_seconds, rep.tool_seconds);
  EXPECT_EQ(back.cs[0].report.latency_cycles, rep.latency_cycles);
  ASSERT_EQ(back.iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(back.iterations[0].peipv, 0.0012345);
  EXPECT_EQ(back.picks_per_fidelity, st.picks_per_fidelity);
  EXPECT_DOUBLE_EQ(back.totals.charged_seconds, st.totals.charged_seconds);
  EXPECT_EQ(back.totals.attempts, st.totals.attempts);
  EXPECT_DOUBLE_EQ(back.totals.retry_seconds_wasted,
                   st.totals.retry_seconds_wasted);
  EXPECT_DOUBLE_EQ(back.sim_tool_seconds, st.sim_tool_seconds);
  EXPECT_EQ(back.cache, st.cache);
  EXPECT_EQ(back.cache_hits, 5u);
  EXPECT_EQ(back.cache_misses, 11u);
  ASSERT_EQ(back.surrogate_hypers.size(), 2u);
  EXPECT_DOUBLE_EQ(back.surrogate_hypers[0][1], -0.25);
  EXPECT_DOUBLE_EQ(back.surrogate_hypers[1][0], 2.5);
  EXPECT_EQ(back.surrogate_base, st.surrogate_base);
}

TEST(Checkpoint, ParserRejectsGarbage) {
  core::CheckpointState st;
  std::string err;
  EXPECT_FALSE(core::parseCheckpoint("", &st, &err));
  EXPECT_FALSE(core::parseCheckpoint("{\"version\": }", &st, &err));
  EXPECT_FALSE(core::parseCheckpoint("not json at all", &st, &err));
}

std::string tempCheckpointPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(Checkpoint, SaveLoadIsAtomicAndRoundTrips) {
  const std::string path = tempCheckpointPath("cmmfo_ckpt_io.json");
  std::remove(path.c_str());
  core::CheckpointState st;
  st.fingerprint = 99;
  st.t = 5;
  ASSERT_TRUE(core::saveCheckpoint(path, st));
  core::CheckpointState back;
  std::string err;
  ASSERT_TRUE(core::loadCheckpoint(path, &back, &err)) << err;
  EXPECT_EQ(back.fingerprint, 99u);
  EXPECT_EQ(back.t, 5);
  std::remove(path.c_str());
}

// ---------------------------------------------------- kill-and-resume ----

void expectSameTrajectory(const core::OptimizeResult& a,
                          const core::OptimizeResult& b) {
  ASSERT_EQ(a.cs.size(), b.cs.size());
  for (std::size_t i = 0; i < a.cs.size(); ++i) {
    EXPECT_EQ(a.cs[i].config, b.cs[i].config) << "cs entry " << i;
    EXPECT_EQ(a.cs[i].fidelity, b.cs[i].fidelity) << "cs entry " << i;
    EXPECT_DOUBLE_EQ(a.cs[i].report.tool_seconds, b.cs[i].report.tool_seconds);
  }
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].config, b.iterations[i].config) << "iter " << i;
    EXPECT_EQ(a.iterations[i].fidelity, b.iterations[i].fidelity);
    EXPECT_DOUBLE_EQ(a.iterations[i].peipv, b.iterations[i].peipv);
  }
  EXPECT_EQ(a.picks_per_fidelity, b.picks_per_fidelity);
  EXPECT_DOUBLE_EQ(a.tool_seconds, b.tool_seconds);
  EXPECT_EQ(a.tool_runs, b.tool_runs);
}

TEST(Checkpoint, KillAndResumeIsTrajectoryIdentical) {
  const std::string path = tempCheckpointPath("cmmfo_ckpt_resume.json");
  std::remove(path.c_str());

  core::OptimizerOptions o = fastOpts();
  o.seed = 77;

  // Golden: one uninterrupted process.
  Fixture f1;
  core::CorrelatedMfMoboOptimizer full(f1.space, f1.sim, o);
  const auto golden = full.run();

  // "Crashed" process: journals every round, killed after round 3.
  Fixture f2;
  core::OptimizerOptions o_kill = o;
  o_kill.checkpoint_path = path;
  o_kill.max_rounds = 3;
  core::CorrelatedMfMoboOptimizer killed(f2.space, f2.sim, o_kill);
  const auto partial = killed.run();
  ASSERT_LT(partial.iterations.size(), golden.iterations.size());
  ASSERT_EQ(partial.rounds_run, 3);

  // Fresh process resumes from the journal and finishes the run.
  Fixture f3;
  core::OptimizerOptions o_resume = o;
  o_resume.checkpoint_path = path;
  o_resume.resume = true;
  core::CorrelatedMfMoboOptimizer resumed(f3.space, f3.sim, o_resume);
  const auto finished = resumed.run();
  EXPECT_TRUE(finished.resumed);

  expectSameTrajectory(golden, finished);
  std::remove(path.c_str());
}

TEST(Checkpoint, KillAndResumeUnderFaultsMatchesUninterrupted) {
  const std::string path = tempCheckpointPath("cmmfo_ckpt_faulty.json");
  std::remove(path.c_str());

  sim::FaultParams faults;
  faults.transient_crash_prob = 0.10;
  core::OptimizerOptions o = fastOpts();
  o.seed = 5;
  o.retry.max_attempts = 2;

  Fixture f1;
  f1.sim.setFaultParams(faults);
  core::CorrelatedMfMoboOptimizer full(f1.space, f1.sim, o);
  const auto golden = full.run();

  Fixture f2;
  f2.sim.setFaultParams(faults);
  core::OptimizerOptions o_kill = o;
  o_kill.checkpoint_path = path;
  o_kill.max_rounds = 4;
  core::CorrelatedMfMoboOptimizer killed(f2.space, f2.sim, o_kill);
  (void)killed.run();

  Fixture f3;
  f3.sim.setFaultParams(faults);
  core::OptimizerOptions o_resume = o;
  o_resume.checkpoint_path = path;
  o_resume.resume = true;
  core::CorrelatedMfMoboOptimizer resumed(f3.space, f3.sim, o_resume);
  const auto finished = resumed.run();
  EXPECT_TRUE(finished.resumed);

  expectSameTrajectory(golden, finished);
  // The charged + wasted ledgers also survive the crash.
  EXPECT_EQ(golden.attempts, finished.attempts);
  EXPECT_EQ(golden.transient_failures, finished.transient_failures);
  EXPECT_DOUBLE_EQ(golden.wasted_seconds, finished.wasted_seconds);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWithDifferentOptionsThrowsOnFingerprint) {
  const std::string path = tempCheckpointPath("cmmfo_ckpt_mismatch.json");
  std::remove(path.c_str());

  core::OptimizerOptions o = fastOpts();
  o.seed = 77;
  o.checkpoint_path = path;
  o.max_rounds = 1;
  Fixture f1;
  core::CorrelatedMfMoboOptimizer writer(f1.space, f1.sim, o);
  (void)writer.run();

  Fixture f2;
  core::OptimizerOptions o_bad = o;
  o_bad.seed = 78;  // different stream: the journal must be rejected
  o_bad.resume = true;
  o_bad.max_rounds = 0;
  core::CorrelatedMfMoboOptimizer reader(f2.space, f2.sim, o_bad);
  EXPECT_THROW((void)reader.run(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingJournalMeansColdStartNotError) {
  const std::string path = tempCheckpointPath("cmmfo_ckpt_nonexistent.json");
  std::remove(path.c_str());
  core::OptimizerOptions o = fastOpts();
  o.seed = 77;
  o.checkpoint_path = path;
  o.resume = true;
  Fixture f1;
  core::CorrelatedMfMoboOptimizer opt(f1.space, f1.sim, o);
  const auto res = opt.run();
  EXPECT_FALSE(res.resumed);
  EXPECT_EQ(static_cast<int>(res.iterations.size()), o.n_iter);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cmmfo
