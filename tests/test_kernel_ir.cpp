#include <gtest/gtest.h>

#include "hls/kernel_ir.h"

namespace cmmfo::hls {
namespace {

/// The Fig. 3 kernel: two nested loops under L1, arrays A and B.
///   for L1: for L2: op(A[L1*10+L2]); for L3: op(B[L1*10+L3]); op(A[L1*10+L3])
Kernel fig3Kernel() {
  Kernel k("fig3");
  const ArrayId a = k.addArray("A", 100);
  const ArrayId b = k.addArray("B", 100);
  const LoopId l1 = k.addLoop("L1", 10);
  const LoopId l2 = k.addLoop("L2", 10, l1);
  const LoopId l3 = k.addLoop("L3", 10, l1);
  k.loop(l2).body_ops[OpKind::kAdd] = 1;
  k.loop(l2).body_ops[OpKind::kLoad] = 1;
  k.loop(l2).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l2, IndexRole::kMinor}}, false, 1});
  k.loop(l3).body_ops[OpKind::kAdd] = 2;
  k.loop(l3).body_ops[OpKind::kLoad] = 2;
  k.loop(l3).refs.push_back(
      {b, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});
  k.loop(l3).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});
  return k;
}

TEST(KernelIr, BuilderAssignsSequentialIds) {
  Kernel k("t");
  EXPECT_EQ(k.addArray("x", 10), 0);
  EXPECT_EQ(k.addArray("y", 10), 1);
  EXPECT_EQ(k.addLoop("a", 4), 0);
  EXPECT_EQ(k.addLoop("b", 4, 0), 1);
  EXPECT_EQ(k.numLoops(), 2u);
  EXPECT_EQ(k.numArrays(), 2u);
}

TEST(KernelIr, LoopForestNavigation) {
  const Kernel k = fig3Kernel();
  EXPECT_EQ(k.topLoops(), (std::vector<LoopId>{0}));
  EXPECT_EQ(k.children(0), (std::vector<LoopId>{1, 2}));
  EXPECT_FALSE(k.isInnermost(0));
  EXPECT_TRUE(k.isInnermost(1));
  EXPECT_TRUE(k.isInnermost(2));
  EXPECT_EQ(k.depth(0), 0);
  EXPECT_EQ(k.depth(2), 1);
}

TEST(KernelIr, TripProductToRoot) {
  const Kernel k = fig3Kernel();
  EXPECT_EQ(k.tripProductToRoot(0), 10);
  EXPECT_EQ(k.tripProductToRoot(1), 100);
}

TEST(KernelIr, LoopsIndexingArray) {
  const Kernel k = fig3Kernel();
  EXPECT_EQ(k.loopsIndexingArray(0), (std::vector<LoopId>{0, 1, 2}));  // A
  EXPECT_EQ(k.loopsIndexingArray(1), (std::vector<LoopId>{0, 2}));     // B
}

TEST(KernelIr, ArraysInLoop) {
  const Kernel k = fig3Kernel();
  EXPECT_EQ(k.arraysInLoop(1), (std::vector<ArrayId>{0}));
  EXPECT_EQ(k.arraysInLoop(2), (std::vector<ArrayId>{0, 1}));
}

TEST(KernelIr, RoleOfReflectsIndexPosition) {
  const Kernel k = fig3Kernel();
  EXPECT_EQ(k.roleOf(0, 0), IndexRole::kMajor);  // L1 strided in A
  EXPECT_EQ(k.roleOf(1, 0), IndexRole::kMinor);  // L2 unit-stride in A
  EXPECT_EQ(k.roleOf(2, 1), IndexRole::kMinor);  // L3 unit-stride in B
}

TEST(KernelIr, OpCountsHelpers) {
  OpCounts ops;
  ops[OpKind::kAdd] = 2;
  ops[OpKind::kMul] = 1;
  ops[OpKind::kLoad] = 3;
  ops[OpKind::kStore] = 1;
  EXPECT_EQ(ops.total(), 7);
  EXPECT_EQ(ops.memoryOps(), 4);
  EXPECT_EQ(ops.computeOps(), 3);
}

TEST(KernelIr, ValidateAcceptsWellFormed) {
  EXPECT_EQ(fig3Kernel().validate(), "");
}

TEST(KernelIr, ValidateCatchesBadTripCount) {
  Kernel k("t");
  k.addLoop("l", 0);
  EXPECT_NE(k.validate().find("trip_count"), std::string::npos);
}

TEST(KernelIr, ValidateCatchesDanglingArrayRef) {
  Kernel k("t");
  const LoopId l = k.addLoop("l", 4);
  k.loop(l).refs.push_back({7, {}, false, 1});  // array 7 does not exist
  EXPECT_NE(k.validate().find("unknown array"), std::string::npos);
}

TEST(KernelIr, ValidateCatchesBadArraySize) {
  Kernel k("t");
  k.addArray("a", 0);
  EXPECT_NE(k.validate().find("size"), std::string::npos);
}

TEST(KernelIr, OpKindNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kNumOpKinds; ++i)
    names.insert(opKindName(static_cast<OpKind>(i)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpKinds));
}

}  // namespace
}  // namespace cmmfo::hls
