#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/stats.h"
#include "linalg/vec_ops.h"
#include "rng/rng.h"

namespace cmmfo::linalg {
namespace {

Matrix randomSpd(std::size_t n, rng::Rng& rng, double noise = 1e-3) {
  // A = G G^T + noise * I is SPD for any G.
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.normal();
  Matrix a = g.matmul(g.transposed());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += noise;
  return a;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3.trace(), 3.0);
  const Matrix d = Matrix::diag({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MatmulKnownValues) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulIdentityIsNoop) {
  rng::Rng rng(1);
  const Matrix a = randomSpd(5, rng);
  EXPECT_LT(a.matmul(Matrix::identity(5)).maxAbsDiff(a), 1e-14);
}

TEST(Matrix, TransposeInvolution) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_LT(a.transposed().transposed().maxAbsDiff(a), 1e-15);
  EXPECT_EQ(a.transposed().rows(), 3u);
}

TEST(Matrix, MatvecMatchesMatmul) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> v = {2.0, -1.0};
  const auto out = a.matvec(v);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
}

TEST(Matrix, VecmatIsTransposedMatvec) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> v = {1.0, 1.0, 1.0};
  const auto out = a.vecmat(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(Matrix, SymmetrizeMakesSymmetric) {
  Matrix a = {{1, 2}, {4, 1}};
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{1, 1}, {1, 1}};
  const Matrix c = a + b * 2.0 - b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 5.0);
}

TEST(VecOps, DotAndNorms) {
  const std::vector<double> a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(normInf({-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(dist2({0.0, 0.0}, a), 5.0);
}

TEST(VecOps, AxpyConcatHadamard) {
  std::vector<double> y = {1.0, 1.0};
  axpy(2.0, {1.0, 2.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  const auto c = concat({1.0}, {2.0, 3.0});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  const auto h = hadamard({2.0, 3.0}, {4.0, 5.0});
  EXPECT_DOUBLE_EQ(h[1], 15.0);
}

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, ReconstructsMatrix) {
  rng::Rng rng(GetParam());
  const Matrix a = randomSpd(GetParam(), rng);
  const auto chol = Cholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix l = chol->lower();
  EXPECT_LT(l.matmul(l.transposed()).maxAbsDiff(a), 1e-9 * a.frobeniusNorm());
}

TEST_P(CholeskySizes, SolveSatisfiesSystem) {
  rng::Rng rng(GetParam() + 100);
  const std::size_t n = GetParam();
  const Matrix a = randomSpd(n, rng);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.normal();
  const auto chol = Cholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  const auto x = chol->solve(b);
  const auto ax = a.matvec(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

TEST_P(CholeskySizes, LogDetMatchesProductOfPivots) {
  rng::Rng rng(GetParam() + 200);
  const Matrix a = randomSpd(GetParam(), rng);
  const auto chol = Cholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  // Cross-check against the inverse: logdet(A) = -logdet(A^{-1}).
  const auto inv_chol = Cholesky::factorize(chol->inverse());
  ASSERT_TRUE(inv_chol.has_value());
  EXPECT_NEAR(chol->logDet(), -inv_chol->logDet(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40));

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::factorize(a).has_value());
}

TEST(Cholesky, JitterRescuesSingular) {
  // Rank-1 matrix: plain factorization fails, jitter succeeds.
  Matrix a = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(Cholesky::factorize(a).has_value());
  const auto chol = Cholesky::factorizeWithJitter(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_GT(chol->jitterUsed(), 0.0);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  rng::Rng rng(5);
  const Matrix a = randomSpd(6, rng);
  const auto chol = Cholesky::factorize(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_LT(a.matmul(chol->inverse()).maxAbsDiff(Matrix::identity(6)), 1e-7);
}

TEST(Cholesky, IdentityLogDetZero) {
  const auto chol = Cholesky::factorize(Matrix::identity(4));
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->logDet(), 0.0, 1e-12);
}

TEST(Cholesky, MvnSampleCovarianceMatches) {
  rng::Rng rng(6);
  Matrix cov = {{2.0, 0.8}, {0.8, 1.0}};
  const auto chol = Cholesky::factorize(cov);
  ASSERT_TRUE(chol.has_value());
  const std::vector<double> mu = {1.0, -1.0};
  const int n = 40000;
  double m0 = 0, m1 = 0, c00 = 0, c01 = 0, c11 = 0;
  for (int i = 0; i < n; ++i) {
    const auto z = mvnSample(mu, *chol, {rng.normal(), rng.normal()});
    m0 += z[0];
    m1 += z[1];
    c00 += (z[0] - mu[0]) * (z[0] - mu[0]);
    c01 += (z[0] - mu[0]) * (z[1] - mu[1]);
    c11 += (z[1] - mu[1]) * (z[1] - mu[1]);
  }
  EXPECT_NEAR(m0 / n, 1.0, 0.03);
  EXPECT_NEAR(m1 / n, -1.0, 0.03);
  EXPECT_NEAR(c00 / n, 2.0, 0.06);
  EXPECT_NEAR(c01 / n, 0.8, 0.04);
  EXPECT_NEAR(c11 / n, 1.0, 0.03);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_NEAR(sampleStddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(minElem(v), 1.0);
  EXPECT_DOUBLE_EQ(maxElem(v), 4.0);
}

TEST(Stats, StandardizerRoundTrip) {
  const std::vector<double> v = {10.0, 20.0, 30.0};
  const auto s = Standardizer::fit(v);
  for (double x : v) EXPECT_NEAR(s.inverse(s.transform(x)), x, 1e-12);
  const auto t = s.transform(v);
  EXPECT_NEAR(mean(t), 0.0, 1e-12);
}

TEST(Stats, StandardizerConstantTargets) {
  const auto s = Standardizer::fit({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);  // guards against divide-by-zero
  EXPECT_DOUBLE_EQ(s.transform(5.0), 0.0);
}

TEST(Stats, MinMaxScaler) {
  const auto s = MinMaxScaler::fit({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.transform(2.0), 0.0);
  EXPECT_DOUBLE_EQ(s.transform(6.0), 1.0);
  EXPECT_DOUBLE_EQ(s.transform(4.0), 0.5);
  EXPECT_DOUBLE_EQ(s.inverse(0.5), 4.0);
}

}  // namespace
}  // namespace cmmfo::linalg
