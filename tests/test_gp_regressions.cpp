// Regression tests pinned to bugs found during development — each of these
// failed before its fix and guards against reintroduction.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gp/ard_kernels.h"
#include "gp/composite_kernels.h"
#include "gp/gp_regressor.h"
#include "rng/rng.h"

namespace cmmfo::gp {
namespace {

TEST(GpRegression, HighFrequencyTargetDoesNotCollapseToNoise) {
  // Bug: with a unit initial lengthscale, MLE converged to the
  // "everything is noise" optimum on sin(8 pi x) and predicted the constant
  // mean everywhere. Fixed by median-distance initialization plus the
  // multi-resolution lengthscale ladder of starts.
  rng::Rng rng(1);
  Dataset x;
  Vec y;
  for (int i = 0; i < 41; ++i) {
    const double v = i / 40.0;
    x.push_back({v});
    y.push_back(std::sin(8.0 * std::numbers::pi * v));
  }
  GpFitOptions opts;
  opts.mle_restarts = 1;
  opts.max_mle_iters = 50;
  opts.init_noise = 1e-2;
  GpRegressor gp(Matern52Ard(1), opts);
  gp.fit(x, y, rng);

  double se = 0.0;
  int n = 0;
  for (double v = 0.0125; v < 1.0; v += 0.025, ++n) {
    const double e = gp.predict({v}).mean - std::sin(8.0 * std::numbers::pi * v);
    se += e * e;
  }
  // Constant-mean collapse gives RMSE ~0.707; a real fit is far below 0.2.
  EXPECT_LT(std::sqrt(se / n), 0.2);
}

TEST(GpRegression, NoiseCannotRunToInfinity) {
  // Bug: an unbounded log-noise parameter walked to ~1e82 during a bad line
  // search. The fit must keep noise within the configured ceiling.
  rng::Rng rng(2);
  Dataset x;
  Vec y;
  for (int i = 0; i < 12; ++i) {
    x.push_back({i / 11.0, rng.uniform()});
    y.push_back(rng.normal());  // pure noise target
  }
  GpFitOptions opts;
  opts.max_noise = 4.0;
  GpRegressor gp(Matern52Ard(2), opts);
  gp.fit(x, y, rng);
  EXPECT_LE(gp.noiseStddev(), 4.0 * 1.001);
}

TEST(KernelInit, MedianDistanceHeuristic) {
  Matern52Ard k(1);
  Dataset x;
  for (int i = 0; i < 21; ++i) x.push_back({i * 0.05});  // spacing 0.05
  k.initFromData(x);
  // Median pairwise distance of a uniform grid on [0,1] is ~1/3.
  EXPECT_GT(k.lengthscale(0), 0.1);
  EXPECT_LT(k.lengthscale(0), 0.7);
}

TEST(KernelInit, PerDimension) {
  Matern52Ard k(2);
  Dataset x;
  for (int i = 0; i < 16; ++i) x.push_back({i / 15.0, i / 1500.0});
  k.initFromData(x);
  EXPECT_GT(k.lengthscale(0), k.lengthscale(1) * 10.0);
}

TEST(KernelInit, FlooredForConstantDimension) {
  Matern52Ard k(1);
  Dataset x(10, Vec{0.5});  // zero spread
  const double before = k.lengthscale(0);
  k.initFromData(x);
  EXPECT_DOUBLE_EQ(k.lengthscale(0), before);  // no non-zero distance: keep
}

TEST(KernelScale, LengthscaleLadder) {
  Matern52Ard k(3);
  k.setLengthscale(0, 1.0);
  k.setLengthscale(1, 2.0);
  k.setLengthscale(2, 0.5);
  k.scaleLengthscales(0.25);
  EXPECT_NEAR(k.lengthscale(0), 0.25, 1e-12);
  EXPECT_NEAR(k.lengthscale(1), 0.5, 1e-12);
  EXPECT_NEAR(k.lengthscale(2), 0.125, 1e-12);
}

TEST(KernelScale, CompositesDelegate) {
  auto a = std::make_unique<Matern52Ard>(1);
  a->setLengthscale(0, 1.0);
  auto b = std::make_unique<RbfArd>(1);
  b->setLengthscale(0, 2.0);
  SumKernel sum(std::move(a), std::move(b));
  sum.scaleLengthscales(0.5);
  const Vec p = sum.params();  // [log ls_a, log sf_a, log ls_b, log sf_b]
  EXPECT_NEAR(std::exp(p[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::exp(p[2]), 1.0, 1e-12);
}

}  // namespace
}  // namespace cmmfo::gp
