#include <gtest/gtest.h>

#include "hls/tcl_emitter.h"

namespace cmmfo::hls {
namespace {

Kernel demoKernel() {
  Kernel k("conv");
  k.addArray("ifm", 128);
  k.addArray("wgt", 64);
  const LoopId outer = k.addLoop("rows", 16);
  k.addLoop("cols", 8, outer);
  return k;
}

DirectiveConfig demoConfig() {
  DirectiveConfig c;
  c.loops.resize(2);
  c.arrays.resize(2);
  c.loops[1].unroll = 4;
  c.loops[1].pipeline = true;
  c.loops[1].ii = 2;
  c.arrays[0] = {PartitionType::kCyclic, 4};
  c.arrays[1] = {PartitionType::kComplete, 64};
  return c;
}

TEST(TclEmitter, EmitsAllActiveDirectives) {
  const Kernel k = demoKernel();
  TclOptions opts;
  opts.top_function = "conv_top";
  const std::string tcl = emitDirectivesTcl(k, demoConfig(), opts);
  EXPECT_NE(tcl.find("set_directive_unroll -factor 4 \"conv_top/cols\""),
            std::string::npos);
  EXPECT_NE(tcl.find("set_directive_pipeline -II 2 \"conv_top/cols\""),
            std::string::npos);
  EXPECT_NE(tcl.find(
                "set_directive_array_partition -type cyclic -factor 4 -dim 1 "
                "\"conv_top\" ifm"),
            std::string::npos);
  // Complete partitioning must not carry a -factor.
  EXPECT_NE(tcl.find("set_directive_array_partition -type complete -dim 1"),
            std::string::npos);
}

TEST(TclEmitter, DefaultConfigEmitsNoDirectives) {
  const Kernel k = demoKernel();
  DirectiveConfig c;
  c.loops.resize(2);
  c.arrays.resize(2);
  const std::string tcl = emitDirectivesTcl(k, c);
  EXPECT_EQ(tcl.find("set_directive"), std::string::npos);
}

TEST(TclEmitter, RolledLoopNotUnrolled) {
  const Kernel k = demoKernel();
  const std::string tcl = emitDirectivesTcl(k, demoConfig());
  EXPECT_EQ(tcl.find("top/rows"), std::string::npos);
}

TEST(TclEmitter, RunScriptHasFullFlow) {
  const Kernel k = demoKernel();
  TclOptions opts;
  opts.top_function = "conv_top";
  opts.part = "xc7vx485tffg1761-2";
  opts.clock_period_ns = 10.0;
  const std::string tcl = emitRunScriptTcl(k, demoConfig(), opts);
  for (const char* needle :
       {"open_project", "set_top conv_top", "add_files",
        "set_part {xc7vx485tffg1761-2}", "create_clock -period 10",
        "csynth_design", "export_design -flow impl"})
    EXPECT_NE(tcl.find(needle), std::string::npos) << needle;
}

TEST(TclEmitter, CsynthOnlyWhenImplementationDisabled) {
  const Kernel k = demoKernel();
  TclOptions opts;
  opts.run_implementation = false;
  const std::string tcl = emitRunScriptTcl(k, demoConfig(), opts);
  EXPECT_NE(tcl.find("csynth_design"), std::string::npos);
  EXPECT_EQ(tcl.find("export_design"), std::string::npos);
}

}  // namespace
}  // namespace cmmfo::hls
