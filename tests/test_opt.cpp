#include <gtest/gtest.h>

#include <cmath>

#include "opt/adam.h"
#include "opt/finite_diff.h"
#include "opt/lbfgs.h"
#include "opt/multistart.h"
#include "opt/nelder_mead.h"

namespace cmmfo::opt {
namespace {

// Convex quadratic with minimum at (1, -2, 3).
double quadratic(const std::vector<double>& x, std::vector<double>& g) {
  const std::vector<double> c = {1.0, -2.0, 3.0};
  double f = 0.0;
  g.assign(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - c[i];
    f += (i + 1) * d * d;
    g[i] = 2.0 * (i + 1) * d;
  }
  return f;
}

double rosenbrock(const std::vector<double>& x, std::vector<double>& g) {
  const double a = 1.0, b = 100.0;
  const double f = (a - x[0]) * (a - x[0]) +
                   b * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0]);
  g.resize(2);
  g[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
  g[1] = 2.0 * b * (x[1] - x[0] * x[0]);
  return f;
}

TEST(Lbfgs, SolvesQuadratic) {
  const auto res = minimizeLbfgs(quadratic, {0.0, 0.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
  EXPECT_NEAR(res.x[1], -2.0, 1e-5);
  EXPECT_NEAR(res.x[2], 3.0, 1e-5);
  EXPECT_NEAR(res.value, 0.0, 1e-9);
}

TEST(Lbfgs, SolvesRosenbrock) {
  LbfgsOptions opts;
  opts.max_iters = 500;
  const auto res = minimizeLbfgs(rosenbrock, {-1.2, 1.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(Lbfgs, HandlesInfiniteStart) {
  GradObjectiveFn bad = [](const std::vector<double>&, std::vector<double>& g) {
    g = {0.0};
    return std::numeric_limits<double>::infinity();
  };
  const auto res = minimizeLbfgs(bad, {0.0});
  EXPECT_TRUE(std::isinf(res.value));
}

TEST(Lbfgs, RespectsIterationBudget) {
  LbfgsOptions opts;
  opts.max_iters = 3;
  const auto res = minimizeLbfgs(rosenbrock, {-1.2, 1.0}, opts);
  EXPECT_LE(res.iterations, 3);
}

TEST(Adam, SolvesQuadratic) {
  AdamOptions opts;
  opts.max_iters = 2000;
  opts.learning_rate = 0.05;
  const auto res = minimizeAdam(quadratic, {0.0, 0.0, 0.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-2);
  EXPECT_NEAR(res.x[1], -2.0, 1e-2);
  EXPECT_NEAR(res.x[2], 3.0, 1e-2);
}

TEST(Adam, StepperMovesAgainstGradient) {
  AdamStepper stepper(1);
  std::vector<double> p = {0.0};
  stepper.step(p, {1.0});
  EXPECT_LT(p[0], 0.0);
}

TEST(NelderMead, SolvesQuadraticWithoutGradients) {
  ObjectiveFn f = [](const std::vector<double>& x) {
    std::vector<double> g;
    return quadratic(x, g);
  };
  NelderMeadOptions opts;
  opts.max_iters = 2000;
  const auto res = minimizeNelderMead(f, {0.0, 0.0, 0.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], -2.0, 1e-3);
  EXPECT_NEAR(res.x[2], 3.0, 1e-3);
}

TEST(NelderMead, HandlesNonFiniteRegions) {
  ObjectiveFn f = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  const auto res = minimizeNelderMead(f, {1.0});
  EXPECT_NEAR(res.x[0], 2.0, 1e-3);
}

TEST(NelderMead, ZeroDimensional) {
  const auto res = minimizeNelderMead(
      [](const std::vector<double>&) { return 42.0; }, {});
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.value, 42.0);
}

TEST(FiniteDiff, MatchesAnalyticGradient) {
  const std::vector<double> x = {0.3, -0.7, 1.9};
  EXPECT_LT(gradientCheckError(quadratic, x), 1e-6);
  EXPECT_LT(gradientCheckError(rosenbrock, {0.5, 0.5}), 1e-5);
}

TEST(FiniteDiff, NumericGradientWrapper) {
  ObjectiveFn f = [](const std::vector<double>& x) {
    return std::sin(x[0]) + x[1] * x[1];
  };
  const auto g = finiteDiffGradient(f, {0.0, 3.0});
  EXPECT_NEAR(g[0], 1.0, 1e-5);
  EXPECT_NEAR(g[1], 6.0, 1e-5);
}

TEST(MultiStart, EscapesBadStart) {
  // Double-well along x: f = (x^2 - 1)^2 + small tilt so the global minimum
  // is at x = -1; start near the worse well.
  GradObjectiveFn f = [](const std::vector<double>& x, std::vector<double>& g) {
    const double v = x[0] * x[0] - 1.0;
    g = {4.0 * v * x[0] + 0.1};
    return v * v + 0.1 * x[0];
  };
  rng::Rng rng(3);
  MultiStartOptions ms;
  ms.extra_starts = 10;
  ms.radius = 2.0;
  const auto res = multiStartMinimize(f, {0.9}, rng, ms);
  EXPECT_NEAR(res.x[0], -1.0, 0.1);
}

}  // namespace
}  // namespace cmmfo::opt
