#include <gtest/gtest.h>

#include "pareto/dominance.h"
#include "rng/rng.h"

namespace cmmfo::pareto {
namespace {

TEST(Dominance, Definition) {
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 3.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));   // equal in one coord
  EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0}));  // equal: not strict
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));  // incomparable
  EXPECT_FALSE(dominates({2.0, 3.0}, {1.0, 2.0}));
}

TEST(Dominance, WeakIncludesEquality) {
  EXPECT_TRUE(weaklyDominates({1.0, 2.0}, {1.0, 2.0}));
  EXPECT_TRUE(weaklyDominates({1.0, 2.0}, {1.0, 3.0}));
  EXPECT_FALSE(weaklyDominates({1.5, 2.0}, {1.0, 3.0}));
}

TEST(Dominance, AntisymmetryOfStrictDominance) {
  rng::Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    Point a = {rng.uniform(), rng.uniform(), rng.uniform()};
    Point b = {rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_FALSE(dominates(a, b) && dominates(b, a));
  }
}

TEST(Dominance, Transitivity) {
  rng::Rng rng(2);
  for (int t = 0; t < 500; ++t) {
    Point a = {rng.uniform(), rng.uniform()};
    Point b = {a[0] + rng.uniform(0.0, 0.5), a[1] + rng.uniform(0.0, 0.5)};
    Point c = {b[0] + rng.uniform(0.0, 0.5), b[1] + rng.uniform(0.0, 0.5)};
    if (dominates(a, b) && dominates(b, c)) EXPECT_TRUE(dominates(a, c));
  }
}

TEST(ParetoFilter, SimpleFront) {
  const std::vector<Point> pts = {{1, 4}, {2, 2}, {4, 1}, {3, 3}, {5, 5}};
  const auto front = paretoFilter(pts);
  EXPECT_EQ(front.size(), 3u);  // (1,4), (2,2), (4,1)
}

TEST(ParetoFilter, AllIncomparableKept) {
  const std::vector<Point> pts = {{1, 3}, {2, 2}, {3, 1}};
  EXPECT_EQ(paretoFilter(pts).size(), 3u);
}

TEST(ParetoFilter, DuplicatesAllKept) {
  const std::vector<Point> pts = {{1, 1}, {1, 1}, {2, 2}};
  EXPECT_EQ(paretoFilter(pts).size(), 2u);  // both copies of (1,1)
}

TEST(ParetoFilter, NoMemberDominatedProperty) {
  rng::Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    std::vector<Point> pts;
    for (int i = 0; i < 60; ++i)
      pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const auto front = paretoFilter(pts);
    ASSERT_FALSE(front.empty());
    for (const auto& f : front)
      for (const auto& p : pts) EXPECT_FALSE(dominates(p, f));
    // Every excluded point is dominated by some front member.
    for (const auto& p : pts) {
      bool in_front = false;
      for (const auto& f : front)
        if (f == p) in_front = true;
      if (in_front) continue;
      bool covered = false;
      for (const auto& f : front)
        if (dominates(f, p)) covered = true;
      EXPECT_TRUE(covered);
    }
  }
}

TEST(ParetoFront, InsertAndEvict) {
  ParetoFront front;
  EXPECT_TRUE(front.insert({2, 2}, 0));
  EXPECT_TRUE(front.insert({1, 3}, 1));
  EXPECT_FALSE(front.insert({3, 3}, 2));  // dominated by (2,2)
  EXPECT_EQ(front.size(), 2u);
  EXPECT_TRUE(front.insert({1, 1}, 3));  // dominates everything
  EXPECT_EQ(front.size(), 1u);
  EXPECT_EQ(front.ids()[0], 3u);
}

TEST(ParetoFront, DuplicateRejected) {
  ParetoFront front;
  EXPECT_TRUE(front.insert({1, 2}));
  EXPECT_FALSE(front.insert({1, 2}));  // weakly dominated by the existing
  EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFront, WouldAcceptDoesNotMutate) {
  ParetoFront front;
  front.insert({2, 2});
  EXPECT_TRUE(front.wouldAccept({1, 3}));
  EXPECT_FALSE(front.wouldAccept({3, 3}));
  EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFront, MatchesBatchFilter) {
  rng::Rng rng(4);
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({rng.uniform(), rng.uniform()});
  ParetoFront front;
  for (std::size_t i = 0; i < pts.size(); ++i) front.insert(pts[i], i);
  EXPECT_EQ(front.size(), paretoFilter(pts).size());
}

TEST(ParetoFront, IdsTrackPoints) {
  ParetoFront front;
  front.insert({5, 1}, 10);
  front.insert({1, 5}, 20);
  front.insert({3, 3}, 30);
  ASSERT_EQ(front.size(), 3u);
  for (std::size_t i = 0; i < front.size(); ++i) {
    if (front.ids()[i] == 30) {
      EXPECT_EQ(front.points()[i], (Point{3, 3}));
    }
  }
}

}  // namespace
}  // namespace cmmfo::pareto
