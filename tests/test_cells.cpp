#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pareto/cells.h"
#include "pareto/hypervolume.h"
#include "rng/rng.h"

namespace cmmfo::pareto {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Cells, EmptyFrontSingleCell) {
  const auto cells = nonDominatedCells({}, {1.0, 1.0});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].lo[0], -kInf);
  EXPECT_DOUBLE_EQ(cells[0].hi[0], 1.0);
}

TEST(Cells, SinglePointFig6Structure) {
  // One Pareto point splits the plane into a 2x2 grid; the cell whose lower
  // corner is the Pareto point is dominated, the other three are not.
  const auto cells = nonDominatedCells({{0.5, 0.5}}, {1.0, 1.0});
  EXPECT_EQ(cells.size(), 3u);
}

TEST(Cells, TwoPointStaircase) {
  // 3x3 grid; dominated cells are those at or beyond a Pareto point.
  const auto cells = nonDominatedCells({{0.2, 0.8}, {0.8, 0.2}}, {1.0, 1.0});
  // Of 9 cells: dominated are lower corners (0.2,0.8),(0.8,0.2),(0.8,0.8) -> 6 left.
  EXPECT_EQ(cells.size(), 6u);
}

TEST(Cells, NoCellLowerCornerDominated) {
  rng::Rng rng(1);
  std::vector<Point> pts;
  for (int i = 0; i < 8; ++i) pts.push_back({rng.uniform(), rng.uniform()});
  const auto front = paretoFilter(pts);
  const Point ref = {1.1, 1.1};
  for (const auto& c : nonDominatedCells(front, ref)) {
    for (const auto& p : front) {
      const bool dom = p[0] <= c.lo[0] && p[1] <= c.lo[1];
      EXPECT_FALSE(dom);
    }
    EXPECT_LE(c.hi[0], ref[0]);
    EXPECT_LE(c.hi[1], ref[1]);
  }
}

TEST(Cells, FiniteCellVolumeHandComputed) {
  // Front {(.2,.8),(.8,.2)}, ref (1,1): the 3x3 grid has exactly one cell
  // with both lower bounds finite AND non-dominated — [.2,.8]x[.2,.8],
  // volume 0.36. The others with finite corners sit at/behind the front.
  const std::vector<Point> front = {{0.2, 0.8}, {0.8, 0.2}};
  double finite_nd = 0.0;
  for (const auto& c : nonDominatedCells(front, {1.0, 1.0})) {
    if (c.lo[0] == -kInf || c.lo[1] == -kInf) continue;
    finite_nd += c.volume();
  }
  EXPECT_NEAR(finite_nd, 0.36, 1e-12);
}

TEST(ExactEipv, ZeroForConfidentlyDominatedPoint) {
  const std::vector<Point> front = {{0.2, 0.2}};
  const double e = exactEipvIndependent({0.9, 0.9}, {0.001, 0.001}, front,
                                        {1.0, 1.0});
  EXPECT_NEAR(e, 0.0, 1e-9);
}

TEST(ExactEipv, DeterministicPointMatchesHvi) {
  // With vanishing sigma the EIPV must equal the plain HVI of mu.
  const std::vector<Point> front = {{0.3, 0.7}, {0.7, 0.3}};
  const Point ref = {1.0, 1.0};
  const Point mu = {0.2, 0.2};
  const double e = exactEipvIndependent(mu, {1e-9, 1e-9}, front, ref);
  EXPECT_NEAR(e, hypervolumeImprovement(mu, front, ref), 1e-6);
}

TEST(ExactEipv, MatchesMonteCarloOnIndependentGaussians) {
  rng::Rng rng(7);
  const std::vector<Point> front = {{0.2, 0.8}, {0.5, 0.5}, {0.8, 0.2}};
  const Point ref = {1.0, 1.0};
  const Point mu = {0.45, 0.35};
  const Point sigma = {0.15, 0.2};

  const double exact = exactEipvIndependent(mu, sigma, front, ref);

  double mc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Point y = {mu[0] + sigma[0] * rng.normal(),
                     mu[1] + sigma[1] * rng.normal()};
    mc += hypervolumeImprovement(y, front, ref);
  }
  mc /= n;
  EXPECT_NEAR(exact, mc, 0.003);
}

TEST(ExactEipv, HigherForBetterMean) {
  const std::vector<Point> front = {{0.5, 0.5}};
  const Point ref = {1.0, 1.0};
  const double good = exactEipvIndependent({0.2, 0.2}, {0.05, 0.05}, front, ref);
  const double bad = exactEipvIndependent({0.6, 0.6}, {0.05, 0.05}, front, ref);
  EXPECT_GT(good, bad);
}

TEST(ExactEipv, UncertaintyCreatesValueBehindFront) {
  // A mean sitting exactly on a Pareto point has no deterministic
  // improvement, but uncertainty gives it a chance.
  const std::vector<Point> front = {{0.5, 0.5}};
  const Point ref = {1.0, 1.0};
  const double none = exactEipvIndependent({0.5, 0.5}, {1e-9, 1e-9}, front, ref);
  const double some = exactEipvIndependent({0.5, 0.5}, {0.2, 0.2}, front, ref);
  EXPECT_NEAR(none, 0.0, 1e-9);
  EXPECT_GT(some, 0.01);
}

TEST(ExactEipv, ThreeObjectives) {
  const std::vector<Point> front = {{0.5, 0.5, 0.5}};
  const Point ref = {1.0, 1.0, 1.0};
  const double e =
      exactEipvIndependent({0.3, 0.3, 0.3}, {0.05, 0.05, 0.05}, front, ref);
  // Deterministic HVI of (0.3)^3 box minus overlap: 0.7^3 - 0.5^3 = 0.218.
  EXPECT_NEAR(e, 0.7 * 0.7 * 0.7 - 0.125, 0.02);
}

}  // namespace
}  // namespace cmmfo::pareto
