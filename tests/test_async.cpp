// Asynchronous (event-driven) pipeline tests: completion-queue plumbing,
// simulated-time event ordering, believer invalidation determinism, the
// W=1 bitwise parity with the synchronous Algorithm 2 golden, preemption +
// resume with in-flight jobs journaled, and single-flight eval coalescing.
// The Async* suites run under TSan (run_benches.sh --tsan-smoke) and ASan
// (CI) — keep them free of sleeps-as-synchronization.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_suite/benchmarks.h"
#include "core/checkpoint.h"
#include "core/optimizer.h"
#include "runtime/eval_cache.h"
#include "runtime/scheduler.h"
#include "runtime/thread_pool.h"

namespace cmmfo {
namespace {

using runtime::CompletionQueue;
using runtime::EvalCache;
using runtime::EvalJob;
using runtime::EvalResult;
using runtime::ThreadPool;
using runtime::ToolScheduler;
using sim::Fidelity;

struct Fixture {
  Fixture()
      : bm(bench_suite::makeSpmvCrs()),
        space(hls::DesignSpace::buildPruned(bm.kernel, bm.spec)),
        sim(bm.kernel, sim::DeviceModel::virtex7Vc707(), bm.sim_params, 42) {}
  bench_suite::Benchmark bm;
  hls::DesignSpace space;
  sim::FpgaToolSim sim;
};

core::OptimizerOptions fastOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

core::OptimizerOptions asyncOpts(int workers) {
  core::OptimizerOptions o = fastOpts();
  o.async = true;
  o.n_workers = workers;
  return o;
}

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void expectSameTrajectory(const core::OptimizeResult& a,
                          const core::OptimizeResult& b) {
  ASSERT_EQ(a.cs.size(), b.cs.size());
  for (std::size_t i = 0; i < a.cs.size(); ++i) {
    EXPECT_EQ(a.cs[i].config, b.cs[i].config) << "cs entry " << i;
    EXPECT_EQ(a.cs[i].fidelity, b.cs[i].fidelity) << "cs entry " << i;
    EXPECT_DOUBLE_EQ(a.cs[i].report.tool_seconds, b.cs[i].report.tool_seconds);
  }
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].config, b.iterations[i].config) << "iter " << i;
    EXPECT_EQ(a.iterations[i].fidelity, b.iterations[i].fidelity);
    EXPECT_DOUBLE_EQ(a.iterations[i].peipv, b.iterations[i].peipv);
  }
  EXPECT_EQ(a.picks_per_fidelity, b.picks_per_fidelity);
  EXPECT_DOUBLE_EQ(a.tool_seconds, b.tool_seconds);
  EXPECT_EQ(a.tool_runs, b.tool_runs);
}

// --------------------------------------------- completion notification ----

TEST(AsyncCompletionQueue, SingleWorkerDeliversResultsInCompletionOrder) {
  ThreadPool pool(1);  // one worker: completion order == submission order
  CompletionQueue<int> done;
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(pool.submitTo(done, [i] { return i * 3; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(done.pop(), i * 3);
  EXPECT_EQ(done.size(), 0u);
  int leftover = -1;
  EXPECT_FALSE(done.tryPop(&leftover));
}

TEST(AsyncCompletionQueue, ConcurrentWorkersLoseNoCompletions) {
  ThreadPool pool(4);
  CompletionQueue<int> done;
  for (int i = 0; i < 200; ++i)
    ASSERT_TRUE(pool.submitTo(done, [i] { return i; }));
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(seen.insert(done.pop()).second);
  EXPECT_EQ(seen.size(), 200u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 199);
}

TEST(AsyncCompletionQueue, SubmitToOnStoppedPoolReportsFailure) {
  ThreadPool pool(2);
  pool.shutdown();
  CompletionQueue<int> done;
  EXPECT_FALSE(pool.submitTo(done, [] { return 1; }));
  EXPECT_EQ(done.size(), 0u);
}

// ------------------------------------------ simulated-time event order ----

// Sum of per-event charges; used to tie totals out against the event log.
double totalCharge(const std::vector<ToolScheduler::AsyncCompletion>& evs) {
  double s = 0.0;
  for (const auto& e : evs) s += e.result.charged_seconds;
  return s;
}

TEST(AsyncScheduler, CompletionOrderIsSimulatedTimeNotThreadTime) {
  // Two independent runs over identical jobs must process events in an
  // identical order and with identical accounting, no matter how the real
  // worker threads interleave.
  auto runOnce = [] {
    Fixture f;
    EvalCache cache;
    ToolScheduler sched(f.space, f.sim, cache, 4);
    const std::vector<EvalJob> jobs = {{11, Fidelity::kImpl},
                                       {23, Fidelity::kHls},
                                       {42, Fidelity::kSyn},
                                       {57, Fidelity::kHls},
                                       {75, Fidelity::kImpl}};
    for (const auto& j : jobs) sched.submitAsync(j);
    std::vector<ToolScheduler::AsyncCompletion> events;
    while (sched.inFlight() > 0) events.push_back(sched.nextCompletion());
    return std::make_pair(std::move(events), sched.totals());
  };

  const auto [ev1, tot1] = runOnce();
  const auto [ev2, tot2] = runOnce();

  ASSERT_EQ(ev1.size(), 5u);
  ASSERT_EQ(ev2.size(), 5u);
  for (std::size_t i = 0; i < ev1.size(); ++i) {
    EXPECT_EQ(ev1[i].seq, ev2[i].seq) << "event " << i;
    EXPECT_DOUBLE_EQ(ev1[i].sim_end, ev2[i].sim_end);
    EXPECT_EQ(ev1[i].result.job.config, ev2[i].result.job.config);
    EXPECT_DOUBLE_EQ(ev1[i].result.charged_seconds,
                     ev2[i].result.charged_seconds);
  }
  // Events come back sorted by (sim_end, seq), all dispatched at t=0 with
  // duration == charged (healthy regime, no backoff).
  for (std::size_t i = 0; i < ev1.size(); ++i) {
    EXPECT_DOUBLE_EQ(ev1[i].sim_start, 0.0);
    EXPECT_DOUBLE_EQ(ev1[i].sim_end, ev1[i].result.charged_seconds);
    if (i > 0) {
      EXPECT_GE(ev1[i].sim_end, ev1[i - 1].sim_end);
      if (ev1[i].sim_end == ev1[i - 1].sim_end)
        EXPECT_GT(ev1[i].seq, ev1[i - 1].seq);
    }
  }
  // The farm is 4-wide with 5 concurrent jobs at t=0, so the simulated
  // wall-clock is the latest completion, well under the serial sum.
  EXPECT_DOUBLE_EQ(tot1.wall_seconds, ev1.back().sim_end);
  EXPECT_DOUBLE_EQ(tot1.wall_seconds, tot2.wall_seconds);
  EXPECT_LT(tot1.wall_seconds, tot1.charged_seconds);
  EXPECT_EQ(tot1.tool_runs, 5);
  EXPECT_DOUBLE_EQ(totalCharge(ev1), tot1.charged_seconds);
  EXPECT_DOUBLE_EQ(tot1.charged_seconds, tot2.charged_seconds);
}

TEST(AsyncScheduler, CacheHitCompletesInstantlyAtTheCurrentClock) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 2);

  sched.submitAsync({5, Fidelity::kSyn});
  const auto first = sched.nextCompletion();
  EXPECT_FALSE(first.result.cache_hit);
  const double clock = sched.simNow();
  EXPECT_GT(clock, 0.0);

  // Same flow again: zero duration, zero charge, completes "now".
  sched.submitAsync({5, Fidelity::kHls});
  const auto hit = sched.nextCompletion();
  EXPECT_TRUE(hit.result.cache_hit);
  EXPECT_DOUBLE_EQ(hit.result.charged_seconds, 0.0);
  EXPECT_DOUBLE_EQ(hit.sim_start, clock);
  EXPECT_DOUBLE_EQ(hit.sim_end, clock);
  EXPECT_DOUBLE_EQ(sched.simNow(), clock);
  EXPECT_EQ(sched.totals().cache_hits, 1);
  // The deterministic lookup ledger booked exactly one miss + one hit.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(AsyncScheduler, ReplayedDispatchMayCompleteInThePast) {
  // The resume path re-dispatches journaled in-flight jobs at their
  // ORIGINAL sim_start, which can predate the restored clock; the clock
  // itself must never run backwards.
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 2);
  sched.submitAsync({9, Fidelity::kImpl});
  (void)sched.nextCompletion();
  const double clock = sched.simNow();

  sched.submitAsyncAt({14, Fidelity::kHls}, 0.0);
  const auto ev = sched.nextCompletion();
  EXPECT_DOUBLE_EQ(ev.sim_start, 0.0);
  EXPECT_LT(ev.sim_end, clock);          // finished before "now"
  EXPECT_DOUBLE_EQ(sched.simNow(), clock);  // clock monotone
}

TEST(AsyncScheduler, DestructorDrainsUnharvestedCompletions) {
  // Preemption abandons in-flight jobs; the scheduler must absorb their
  // late worker pushes before dying (the tasks reference its queue).
  Fixture f;
  EvalCache cache;
  {
    ToolScheduler sched(f.space, f.sim, cache, 4);
    for (std::size_t c = 0; c < 6; ++c)
      sched.submitAsync({100 + c, Fidelity::kSyn});
    (void)sched.nextCompletion();  // harvest some, abandon the rest
    EXPECT_EQ(sched.inFlight(), 5u);
  }  // ~ToolScheduler blocks here; ASan/TSan would flag a lost task
}

// ----------------------------------------------- optimizer: W=1 parity ----

// The async pipeline with one worker never stacks a believer fantasy (the
// in-flight window is full after one dispatch), so it must replay the
// paper-faithful sequential Algorithm 2 bit for bit — same golden as the
// synchronous BatchedOptimizer.SequentialGoldenTrajectoryPreserved.
TEST(AsyncOptimizer, SingleWorkerMatchesSequentialGoldenBitwise) {
  Fixture f;
  core::OptimizerOptions o = asyncOpts(1);
  o.seed = 77;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();

  const std::vector<std::pair<std::size_t, Fidelity>> golden = {
      {275, Fidelity::kImpl}, {184, Fidelity::kImpl}, {132, Fidelity::kImpl},
      {228, Fidelity::kSyn},  {20, Fidelity::kSyn},   {89, Fidelity::kHls},
      {194, Fidelity::kHls},  {57, Fidelity::kHls},   {75, Fidelity::kHls},
      {35, Fidelity::kHls},   {3, Fidelity::kHls},    {0, Fidelity::kHls},
      {7, Fidelity::kHls},    {5, Fidelity::kHls},    {17, Fidelity::kHls},
      {52, Fidelity::kHls},   {1, Fidelity::kHls},    {15, Fidelity::kHls},
  };
  ASSERT_EQ(res.cs.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(res.cs[i].config, golden[i].first) << "at index " << i;
    EXPECT_EQ(res.cs[i].fidelity, golden[i].second) << "at index " << i;
  }
  EXPECT_DOUBLE_EQ(res.tool_seconds, 3062.9170931904364);
  EXPECT_EQ(res.tool_runs, 18);
  EXPECT_DOUBLE_EQ(res.wall_seconds, res.tool_seconds);
  EXPECT_EQ(res.cache_hits, 0);

  // And bitwise against the synchronous path at the same options.
  Fixture f2;
  core::OptimizerOptions o_sync = fastOpts();
  o_sync.seed = 77;
  core::CorrelatedMfMoboOptimizer sync(f2.space, f2.sim, o_sync);
  expectSameTrajectory(sync.run(), res);
}

// ----------------------------------- optimizer: concurrency + believers ----

TEST(AsyncOptimizer, SpendsFullBudgetWithUniqueMonotoneIterations) {
  Fixture f;
  core::OptimizerOptions o = asyncOpts(4);
  o.seed = 5;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  EXPECT_EQ(res.cs.size(), static_cast<std::size_t>(o.n_init_hls + o.n_iter));
  int picks = 0;
  for (int c : res.picks_per_fidelity) picks += c;
  EXPECT_EQ(picks, o.n_iter);
  ASSERT_EQ(res.iterations.size(), static_cast<std::size_t>(o.n_iter));
  // Iteration indices are the dispatch order: unique and monotone even
  // though completion order interleaves them.
  std::set<int> indices;
  for (const auto& it : res.iterations)
    EXPECT_TRUE(indices.insert(it.iteration).second);
  EXPECT_EQ(*indices.begin(), 0);
  EXPECT_EQ(*indices.rbegin(), o.n_iter - 1);
  // Per-config uniqueness survives speculation (believer picks must not
  // re-propose an in-flight config).
  std::set<std::size_t> seen;
  for (const auto& rec : res.cs) EXPECT_TRUE(seen.insert(rec.config).second);
  // With heterogeneous fidelities in flight the farm overlaps work.
  EXPECT_LT(res.wall_seconds, res.tool_seconds);
}

TEST(AsyncOptimizer, DeterministicUnderStragglerFaults) {
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.08;
  faults.hang_prob = 0.10;
  faults.license_stall_prob = 0.10;

  auto runOnce = [&faults] {
    Fixture f;
    f.sim.setFaultParams(faults);
    core::OptimizerOptions o = asyncOpts(4);
    o.seed = 11;
    o.retry.max_attempts = 2;
    core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
    return opt.run();
  };
  const auto a = runOnce();
  const auto b = runOnce();
  expectSameTrajectory(a, b);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.transient_failures, b.transient_failures);
  EXPECT_DOUBLE_EQ(a.wasted_seconds, b.wasted_seconds);
  EXPECT_DOUBLE_EQ(a.backoff_seconds, b.backoff_seconds);
}

TEST(AsyncOptimizer, BeatsTheRoundBarrierUnderStragglers) {
  // The async pipeline's whole point: a straggling impl run must not idle
  // the other workers at a round barrier. Same budget, same farm width.
  sim::FaultParams faults;
  faults.hang_prob = 0.15;
  faults.license_stall_prob = 0.10;

  Fixture fs;
  fs.sim.setFaultParams(faults);
  core::OptimizerOptions o_sync = fastOpts();
  o_sync.seed = 3;
  o_sync.batch_size = 4;
  o_sync.n_workers = 4;
  core::CorrelatedMfMoboOptimizer sync(fs.space, fs.sim, o_sync);
  const auto rs = sync.run();

  Fixture fa;
  fa.sim.setFaultParams(faults);
  core::OptimizerOptions o_async = asyncOpts(4);
  o_async.seed = 3;
  core::CorrelatedMfMoboOptimizer async_opt(fa.space, fa.sim, o_async);
  const auto ra = async_opt.run();

  EXPECT_EQ(static_cast<int>(ra.iterations.size()), o_async.n_iter);
  EXPECT_LT(ra.wall_seconds, rs.wall_seconds);
}

// --------------------------------------------------- preemption + resume ----

TEST(AsyncResume, PreemptionJournalsInflightAndResumesIdentically) {
  const std::string path = tempPath("cmmfo_async_resume.json");
  std::remove(path.c_str());

  core::OptimizerOptions o = asyncOpts(4);
  o.seed = 77;

  // Golden: one uninterrupted async process.
  Fixture f1;
  core::CorrelatedMfMoboOptimizer full(f1.space, f1.sim, o);
  const auto golden = full.run();

  // Preempted process: max_rounds mimics a kill — in-flight jobs are
  // journaled, NOT drained.
  Fixture f2;
  core::OptimizerOptions o_kill = o;
  o_kill.checkpoint_path = path;
  o_kill.max_rounds = 5;
  core::CorrelatedMfMoboOptimizer killed(f2.space, f2.sim, o_kill);
  const auto partial = killed.run();
  ASSERT_EQ(partial.rounds_run, 5);
  ASSERT_LT(partial.iterations.size(), golden.iterations.size());

  core::CheckpointState st;
  std::string err;
  ASSERT_TRUE(core::loadCheckpoint(path, &st, &err)) << err;
  // A 4-wide window preempted mid-flight has speculative work outstanding.
  EXPECT_FALSE(st.async_inflight.empty());

  // Fresh process replays the in-flight jobs at their original dispatch
  // times and finishes the run on the exact same trajectory.
  Fixture f3;
  core::OptimizerOptions o_resume = o;
  o_resume.checkpoint_path = path;
  o_resume.resume = true;
  core::CorrelatedMfMoboOptimizer resumed(f3.space, f3.sim, o_resume);
  const auto finished = resumed.run();
  EXPECT_TRUE(finished.resumed);

  expectSameTrajectory(golden, finished);
  EXPECT_DOUBLE_EQ(golden.wall_seconds, finished.wall_seconds);
  EXPECT_EQ(golden.cache_hits, finished.cache_hits);
  std::remove(path.c_str());
}

// Regression: the tight per-fit MLE budget below makes every refit exhaust
// its L-BFGS iterations, so the surrogate's self-healing fail streak climbs
// across the kill boundary and the GBRT fallback engages at the refit AFTER
// the checkpoint. Before the recovery state was journaled, a resumed run
// restarted the streak at zero, skipped the fallback engagement the golden
// run performed, and silently diverged at the first post-resume refit.
TEST(AsyncResume, ResumeCarriesSurrogateRecoveryState) {
  const std::string path = tempPath("cmmfo_async_recovery.json");
  std::remove(path.c_str());

  core::OptimizerOptions o = asyncOpts(4);
  o.seed = 5;
  o.n_iter = 16;
  o.retry.max_attempts = 3;

  Fixture f1;
  core::CorrelatedMfMoboOptimizer full(f1.space, f1.sim, o);
  const auto golden = full.run();

  // Kill between the round-5 and round-10 refits: the streak is mid-climb.
  Fixture f2;
  core::OptimizerOptions o_kill = o;
  o_kill.checkpoint_path = path;
  o_kill.max_rounds = 6;
  core::CorrelatedMfMoboOptimizer killed(f2.space, f2.sim, o_kill);
  (void)killed.run();

  core::CheckpointState st;
  std::string err;
  ASSERT_TRUE(core::loadCheckpoint(path, &st, &err)) << err;
  ASSERT_FALSE(st.surrogate_mle_streak.empty());
  EXPECT_TRUE(std::any_of(st.surrogate_mle_streak.begin(),
                          st.surrogate_mle_streak.end(),
                          [](int s) { return s > 0; }));

  Fixture f3;
  core::OptimizerOptions o_resume = o;
  o_resume.checkpoint_path = path;
  o_resume.resume = true;
  core::CorrelatedMfMoboOptimizer resumed(f3.space, f3.sim, o_resume);
  const auto finished = resumed.run();
  EXPECT_TRUE(finished.resumed);

  expectSameTrajectory(golden, finished);
  EXPECT_DOUBLE_EQ(golden.wall_seconds, finished.wall_seconds);
  std::remove(path.c_str());
}

// Regression: a refinement pick (fidelity > 0) in flight at the kill has its
// LOWER-fidelity stages already committed and cached. The journal used to
// drop every cache entry for in-flight configs, so the resumed re-dispatch
// re-charged the committed prefix and the event order drifted. The journal
// must keep the committed prefix and the resume must replay bit-identically.
TEST(AsyncResume, ResumeKeepsCommittedCachePrefixOfInflightRefinements) {
  const std::string path = tempPath("cmmfo_async_prefix.json");
  std::remove(path.c_str());

  // Default (healthy) MLE budget: this trajectory puts a refinement in
  // flight inside the kill window.
  core::OptimizerOptions o;
  o.async = true;
  o.n_workers = 4;
  o.seed = 5;
  o.n_iter = 16;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.retry.max_attempts = 3;

  Fixture f1;
  core::CorrelatedMfMoboOptimizer full(f1.space, f1.sim, o);
  const auto golden = full.run();

  Fixture f2;
  core::OptimizerOptions o_kill = o;
  o_kill.checkpoint_path = path;
  o_kill.max_rounds = 6;
  core::CorrelatedMfMoboOptimizer killed(f2.space, f2.sim, o_kill);
  (void)killed.run();

  core::CheckpointState st;
  std::string err;
  ASSERT_TRUE(core::loadCheckpoint(path, &st, &err)) << err;
  // Journal invariant: an in-flight config whose earlier (lower-fidelity)
  // pick already committed must keep that cache entry.
  for (const auto& e : st.async_inflight)
    for (const auto& ce : st.cs)
      if (ce.config == e.config) {
        const bool journaled =
            std::any_of(st.cache.begin(), st.cache.end(),
                        [&](const std::pair<std::size_t, int>& c) {
                          return c.first == e.config;
                        });
        EXPECT_TRUE(journaled)
            << "in-flight config " << e.config
            << " has a committed prefix but no journaled cache entry";
      }

  Fixture f3;
  core::OptimizerOptions o_resume = o;
  o_resume.checkpoint_path = path;
  o_resume.resume = true;
  core::CorrelatedMfMoboOptimizer resumed(f3.space, f3.sim, o_resume);
  const auto finished = resumed.run();
  EXPECT_TRUE(finished.resumed);

  expectSameTrajectory(golden, finished);
  EXPECT_DOUBLE_EQ(golden.wall_seconds, finished.wall_seconds);
  std::remove(path.c_str());
}

TEST(AsyncResume, FingerprintRejectsModeAndWidthChanges) {
  const std::string path = tempPath("cmmfo_async_fp.json");
  std::remove(path.c_str());

  Fixture f1;
  core::OptimizerOptions o = asyncOpts(4);
  o.seed = 77;
  o.checkpoint_path = path;
  o.max_rounds = 2;
  core::CorrelatedMfMoboOptimizer writer(f1.space, f1.sim, o);
  (void)writer.run();

  // Async journals are width-stamped: the believer window is part of the
  // trajectory, so resuming on a different farm width must be refused.
  {
    Fixture f2;
    core::OptimizerOptions o_bad = o;
    o_bad.n_workers = 2;
    o_bad.resume = true;
    o_bad.max_rounds = 0;
    core::CorrelatedMfMoboOptimizer reader(f2.space, f2.sim, o_bad);
    EXPECT_THROW((void)reader.run(), std::runtime_error);
  }
  // ... and a synchronous optimizer cannot adopt an async journal.
  {
    Fixture f3;
    core::OptimizerOptions o_sync = fastOpts();
    o_sync.seed = 77;
    o_sync.checkpoint_path = path;
    o_sync.resume = true;
    core::CorrelatedMfMoboOptimizer reader(f3.space, f3.sim, o_sync);
    EXPECT_THROW((void)reader.run(), std::runtime_error);
  }
  std::remove(path.c_str());
}

// --------------------------------------------- single-flight coalescing ----

TEST(EvalCacheCoalesce, WaiterIsServedFromTheLeadersRun) {
  Fixture f;
  EvalCache cache;

  std::array<sim::Report, sim::kNumFidelities> lstage{};
  ASSERT_EQ(cache.joinFlight(8, Fidelity::kSyn, 0, 0, &lstage),
            EvalCache::FlightJoin::kLeader);

  EvalCache::FlightJoin got = EvalCache::FlightJoin::kRetry;
  std::array<sim::Report, sim::kNumFidelities> wstage{};
  std::atomic<bool> entered{false};
  std::thread waiter([&] {
    entered.store(true);
    // Ledger 42: the coalesced count lands on the WAITER's ledger.
    got = cache.joinFlight(8, Fidelity::kHls, 0, 42, &wstage);
  });
  // Park the waiter inside the flight wait before releasing the leader.
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Leader runs the flow, stores, then releases the flight.
  std::array<sim::Report, sim::kNumFidelities> stages{};
  for (int s = 0; s <= static_cast<int>(Fidelity::kSyn); ++s)
    stages[s] = f.sim.run(f.space.config(8), static_cast<Fidelity>(s));
  cache.storeFlow(8, Fidelity::kSyn, stages);
  cache.finishFlight(8, 0);
  waiter.join();

  EXPECT_EQ(got, EvalCache::FlightJoin::kServed);
  EXPECT_DOUBLE_EQ(wstage[0].delay_us, stages[0].delay_us);
  EXPECT_EQ(cache.stats().coalesced, 1u);
  EXPECT_EQ(cache.stats(0, 42).coalesced, 1u);
  EXPECT_EQ(cache.stats(0, 7).coalesced, 0u);
}

TEST(EvalCacheCoalesce, ShallowOrEmptyLeaderSendsWaiterBackAround) {
  Fixture f;
  EvalCache cache;
  std::array<sim::Report, sim::kNumFidelities> stage{};

  const auto joinBlocked = [&cache, &stage](std::size_t config,
                                            Fidelity fidelity) {
    EvalCache::FlightJoin got = EvalCache::FlightJoin::kServed;
    std::atomic<bool> entered{false};
    std::thread waiter([&] {
      entered.store(true);
      got = cache.joinFlight(config, fidelity, 0, 0, &stage);
    });
    while (!entered.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cache.finishFlight(config, 0);  // no storeFlow: the flow crashed
    waiter.join();
    return got;
  };

  // Leader running only to HLS cannot serve an IMPL request.
  ASSERT_EQ(cache.joinFlight(3, Fidelity::kHls, 0, 0, &stage),
            EvalCache::FlightJoin::kLeader);
  EXPECT_EQ(joinBlocked(3, Fidelity::kImpl), EvalCache::FlightJoin::kRetry);

  // A deep-enough leader whose run failed (nothing stored) also retries.
  ASSERT_EQ(cache.joinFlight(4, Fidelity::kImpl, 0, 0, &stage),
            EvalCache::FlightJoin::kLeader);
  EXPECT_EQ(joinBlocked(4, Fidelity::kHls), EvalCache::FlightJoin::kRetry);
  EXPECT_EQ(cache.stats().coalesced, 0u);
}

TEST(EvalCacheCoalesce, ConcurrentIdenticalJobsLaunchOneToolRun) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 4);

  const std::vector<EvalJob> jobs(4, EvalJob{7, Fidelity::kSyn});
  const auto results = sched.runBatch(jobs);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.completed_fidelity, static_cast<int>(Fidelity::kSyn));
    EXPECT_DOUBLE_EQ(r.stages[0].delay_us, results[0].stages[0].delay_us);
  }
  const auto tot = sched.totals();
  EXPECT_EQ(tot.tool_runs, 1);
  // The other three were served without a duplicate run: either they
  // joined the in-flight leader (coalesced) or probed after it stored
  // (late-arrival cache hit) — timing decides which, never a second run.
  EXPECT_EQ(tot.coalesced + tot.cache_hits, 3);
  EXPECT_EQ(static_cast<int>(cache.stats().coalesced), tot.coalesced);
  // Exactly one flow's charge; joins and hits are free.
  double charged = 0.0;
  for (const auto& r : results) charged += r.charged_seconds;
  EXPECT_DOUBLE_EQ(tot.charged_seconds, charged);
  EXPECT_EQ(tot.attempts, 1);
}

TEST(EvalCacheCoalesce, AsyncDuplicateSubmissionsCoalesceToo) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 4);
  for (int i = 0; i < 4; ++i) sched.submitAsync({31, Fidelity::kImpl});
  std::vector<ToolScheduler::AsyncCompletion> evs;
  while (sched.inFlight() > 0) evs.push_back(sched.nextCompletion());
  ASSERT_EQ(evs.size(), 4u);
  const auto tot = sched.totals();
  EXPECT_EQ(tot.tool_runs, 1);
  EXPECT_EQ(tot.coalesced + tot.cache_hits, 3);
  // Served/hit jobs occupy no simulated worker: the makespan is one run.
  double max_charge = 0.0;
  for (const auto& e : evs)
    max_charge = std::max(max_charge, e.result.charged_seconds);
  EXPECT_DOUBLE_EQ(tot.wall_seconds, max_charge);
}

}  // namespace
}  // namespace cmmfo
