#include <gtest/gtest.h>

#include "bench_suite/benchmarks.h"
#include "hls/design_space.h"
#include "sim/ground_truth.h"

namespace cmmfo::bench_suite {
namespace {

class AllBenchmarks : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarks, KernelValidates) {
  const Benchmark bm = makeBenchmark(GetParam());
  EXPECT_EQ(bm.kernel.validate(), "") << bm.kernel.name();
  EXPECT_EQ(bm.kernel.name(), GetParam());
  EXPECT_FALSE(bm.description.empty());
}

TEST_P(AllBenchmarks, SpecCoversAllSites) {
  const Benchmark bm = makeBenchmark(GetParam());
  EXPECT_EQ(bm.spec.loops.size(), bm.kernel.numLoops());
  EXPECT_EQ(bm.spec.arrays.size(), bm.kernel.numArrays());
  for (const auto& l : bm.spec.loops) {
    ASSERT_FALSE(l.unroll_factors.empty());
    EXPECT_EQ(l.unroll_factors[0], 1);  // baseline must be expressible
  }
}

TEST_P(AllBenchmarks, PrunedSpaceInSaneRange) {
  const Benchmark bm = makeBenchmark(GetParam());
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  EXPECT_GE(space.size(), 100u) << "space too small to be interesting";
  EXPECT_LE(space.size(), 50000u) << "space too large for exhaustive truth";
  EXPECT_GT(space.stats().raw_size, 1e4);
}

TEST_P(AllBenchmarks, GroundTruthHasNonTrivialFront) {
  const Benchmark bm = makeBenchmark(GetParam());
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  const sim::FpgaToolSim sim(bm.kernel, sim::DeviceModel::virtex7Vc707(),
                             bm.sim_params, 42);
  const sim::GroundTruth gt(space, sim);
  EXPECT_GE(gt.paretoFront().size(), 5u);
  EXPECT_LT(gt.paretoFront().size(), space.size());
}

TEST_P(AllBenchmarks, ObjectivesSpanMeaningfulRanges) {
  const Benchmark bm = makeBenchmark(GetParam());
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  const sim::FpgaToolSim sim(bm.kernel, sim::DeviceModel::virtex7Vc707(),
                             bm.sim_params, 42);
  const sim::GroundTruth gt(space, sim);
  double dmin = 1e300, dmax = 0.0;
  for (std::size_t i = 0; i < gt.size(); ++i) {
    if (!gt.valid(i)) continue;
    const auto y = gt.implObjectives(i);
    dmin = std::min(dmin, y[1]);
    dmax = std::max(dmax, y[1]);
  }
  // Directives must matter: at least 3x spread between the fastest and
  // slowest valid design.
  EXPECT_GT(dmax / dmin, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Suite, AllBenchmarks,
                         ::testing::ValuesIn(benchmarkNames()));

TEST(BenchSuite, SixBenchmarksInPaperOrder) {
  const auto names = benchmarkNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "gemm");
  EXPECT_EQ(names[1], "ismart2");
}

TEST(BenchSuite, UnknownNameThrows) {
  EXPECT_THROW(makeBenchmark("nope"), std::invalid_argument);
}

TEST(BenchSuite, DivergenceMatchesFig5Narrative) {
  // Fig. 5: GEMM's three fidelities nearly overlap, SPMV_ELLPACK's diverge.
  EXPECT_LT(makeGemm().sim_params.divergence,
            makeSpmvEllpack().sim_params.divergence);
}

TEST(BenchSuite, RadixHasRecurrences) {
  const Benchmark bm = makeSortRadix();
  int recurrences = 0;
  for (std::size_t l = 0; l < bm.kernel.numLoops(); ++l)
    if (bm.kernel.loop(static_cast<hls::LoopId>(l)).loop_carried_dep)
      ++recurrences;
  EXPECT_GE(recurrences, 2);  // histogram + scan at least
}

TEST(BenchSuite, SortRadixSpaceLargestAfterIsmart) {
  // Sec. V-A singles out SORT_RADIX's pruning (3.8e12 -> 2e4); our space is
  // of that order of magnitude.
  const Benchmark bm = makeSortRadix();
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  EXPECT_GE(space.size(), 2000u);
  EXPECT_GT(space.stats().reduction_factor(), 1e3);
}

}  // namespace
}  // namespace cmmfo::bench_suite
