#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rng/hash_noise.h"
#include "rng/rng.h"

namespace cmmfo::rng {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += r.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double s = 0.0, s2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double z = r.normal();
    s += z;
    s2 += z * z;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithMeanAndStddev) {
  Rng r(17);
  double s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s += r.normal(5.0, 2.0);
  EXPECT_NEAR(s / n, 5.0, 0.05);
}

TEST(Rng, IndexWithinBound) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(r.index(17), 17u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng r(23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(29);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = r.uniformInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng r(31);
  const auto s = r.sampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng r(37);
  const auto s = r.sampleWithoutReplacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(43);
  Rng child = a.split(1);
  Rng child2 = a.split(1);
  // Children of sequential splits differ (parent state advanced).
  EXPECT_NE(child.next(), child2.next());
}

TEST(Rng, BernoulliExtremes) {
  Rng r(47);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(HashNoise, DeterministicByKey) {
  HashNoise n(99);
  EXPECT_EQ(n.uniform(1, 2, 3), n.uniform(1, 2, 3));
  EXPECT_EQ(n.normal(5, 6), n.normal(5, 6));
}

TEST(HashNoise, DifferentKeysDiffer) {
  HashNoise n(99);
  EXPECT_NE(n.uniform(1, 2, 3), n.uniform(1, 2, 4));
  EXPECT_NE(n.uniform(1), n.uniform(2));
}

TEST(HashNoise, DifferentSaltsDiffer) {
  HashNoise a(1), b(2);
  EXPECT_NE(a.uniform(10), b.uniform(10));
}

TEST(HashNoise, UniformInRange) {
  HashNoise n(7);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double u = n.uniform(k);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(HashNoise, NormalApproximatelyStandard) {
  HashNoise n(7);
  double s = 0.0, s2 = 0.0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) {
    const double z = n.normal(i);
    s += z;
    s2 += z * z;
  }
  EXPECT_NEAR(s / k, 0.0, 0.03);
  EXPECT_NEAR(s2 / k, 1.0, 0.05);
}

}  // namespace
}  // namespace cmmfo::rng
