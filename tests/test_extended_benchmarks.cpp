#include <gtest/gtest.h>

#include "bench_suite/extended_benchmarks.h"
#include "hls/design_space.h"
#include "sim/ground_truth.h"

namespace cmmfo::bench_suite {
namespace {

class ExtendedSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtendedSuite, KernelValidates) {
  const Benchmark bm = makeAnyBenchmark(GetParam());
  EXPECT_EQ(bm.kernel.validate(), "");
  EXPECT_EQ(bm.kernel.name(), GetParam());
}

TEST_P(ExtendedSuite, SpaceBuildsAndHasFront) {
  const Benchmark bm = makeAnyBenchmark(GetParam());
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  ASSERT_GE(space.size(), 20u);
  const sim::FpgaToolSim sim(bm.kernel, sim::DeviceModel::virtex7Vc707(),
                             bm.sim_params, 42);
  const sim::GroundTruth gt(space, sim);
  EXPECT_GE(gt.paretoFront().size(), 3u);
}

TEST_P(ExtendedSuite, PrunedConfigsAreCompatible) {
  const Benchmark bm = makeAnyBenchmark(GetParam());
  for (const auto& c : hls::prunedConfigs(bm.kernel, bm.spec))
    EXPECT_TRUE(hls::isCompatibleConfig(bm.kernel, c));
}

INSTANTIATE_TEST_SUITE_P(Kernels, ExtendedSuite,
                         ::testing::ValuesIn(extendedBenchmarkNames()));

TEST(ExtendedSuite, SixExtraKernels) {
  EXPECT_EQ(extendedBenchmarkNames().size(), 6u);
}

TEST(ExtendedSuite, MakeAnyResolvesCoreNamesToo) {
  EXPECT_EQ(makeAnyBenchmark("gemm").kernel.name(), "gemm");
  EXPECT_THROW(makeAnyBenchmark("bogus"), std::invalid_argument);
}

TEST(ExtendedSuite, SequentialKernelsResistUnrolling) {
  // KMP's scan is a serial state machine: the ground truth's best delay
  // should NOT be far below the baseline config's delay (no free
  // parallelism) — a sanity check that the recurrence model bites.
  const Benchmark bm = makeKmp();
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  const sim::FpgaToolSim sim(bm.kernel, sim::DeviceModel::virtex7Vc707(),
                             bm.sim_params, 42);
  hls::DirectiveConfig base;
  base.loops.resize(bm.kernel.numLoops());
  base.arrays.resize(bm.kernel.numArrays());
  const double base_delay = sim.run(base, sim::Fidelity::kImpl).delay_us;
  double best = base_delay;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto r = sim.run(space.config(i), sim::Fidelity::kImpl);
    if (r.valid) best = std::min(best, r.delay_us);
  }
  // Pipelining still helps (overlaps the per-iteration ops), but the
  // speedup must stay well below the unroll factors offered (8x).
  EXPECT_GT(best, base_delay / 8.0);
}

}  // namespace
}  // namespace cmmfo::bench_suite
