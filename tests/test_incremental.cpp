// Incremental posterior math core: rank-append Cholesky updates, batched
// multi-RHS solve paths, and the shared PosteriorState across every GP
// layer. The claims under test are exact:
//  - appendRow / truncateTo round-trip bit-identically with a dense
//    refactorization (jitter-free factors);
//  - multi-RHS solves are bit-equal per column to the per-vector solves;
//  - GpRegressor::appendObservation is bit-identical to a dense
//    refitPosterior on the extended data; MultiTaskGp / NonlinearMfGp agree
//    to tight roundoff (the multi-task append uses a bordered row ordering,
//    a symmetric permutation of the task-major stacked Gram);
//  - every predictBatch is bit-identical per candidate to scalar predict;
//  - the surrogate's speculative append + commit rollback leaves the
//    committed posterior bit-identical to never having speculated, and
//    restorePosterior(base counts) reproduces the incremental factors.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "core/surrogate.h"
#include "gp/ard_kernels.h"
#include "gp/gp_regressor.h"
#include "gp/multitask_gp.h"
#include "gp/nonlinear_mf_gp.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace cmmfo {
namespace {

using linalg::Cholesky;
using linalg::Matrix;

Matrix randomSpd(std::size_t n, rng::Rng& rng, double diag_boost) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  Matrix spd = a.matmul(a.transposed());
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += diag_boost;
  return spd;
}

// ------------------------------------------------------ linalg layer ----

TEST(CholeskyAppend, AppendRowBitwiseEqualsDenseRefactorization) {
  rng::Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.index(12);
    const Matrix big = randomSpd(n + 1, rng, 2.0 + static_cast<double>(n));
    Matrix lead(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) lead(i, j) = big(i, j);

    auto chol = Cholesky::factorize(lead);
    ASSERT_TRUE(chol.has_value());
    std::vector<double> cross(n);
    for (std::size_t i = 0; i < n; ++i) cross[i] = big(i, n);
    ASSERT_TRUE(chol->appendRow(cross, big(n, n)));

    const auto dense = Cholesky::factorize(big);
    ASSERT_TRUE(dense.has_value());
    ASSERT_EQ(chol->dim(), n + 1);
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        EXPECT_EQ(chol->lower()(i, j), dense->lower()(i, j))
            << "entry (" << i << "," << j << ") trial " << trial;
  }
}

TEST(CholeskyAppend, TruncateIsBitwiseInverseOfAppend) {
  rng::Rng rng(102);
  const std::size_t n = 9;
  const Matrix big = randomSpd(n + 3, rng, 6.0);
  Matrix lead(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) lead(i, j) = big(i, j);
  auto chol = Cholesky::factorize(lead);
  ASSERT_TRUE(chol.has_value());
  const Matrix before = chol->lower();

  for (std::size_t k = 0; k < 3; ++k) {
    std::vector<double> cross(n + k);
    for (std::size_t i = 0; i < n + k; ++i) cross[i] = big(i, n + k);
    ASSERT_TRUE(chol->appendRow(cross, big(n + k, n + k)));
  }
  chol->truncateTo(n);
  ASSERT_EQ(chol->dim(), n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_EQ(chol->lower()(i, j), before(i, j));
}

TEST(CholeskyAppend, RefusesJitteredFactors) {
  // A singular matrix forces factorizeWithJitter to add jitter; appendRow
  // must refuse rather than grow a factor of a half-jittered matrix.
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  auto chol = Cholesky::factorizeWithJitter(a);
  ASSERT_TRUE(chol.has_value());
  ASSERT_GT(chol->jitterUsed(), 0.0);
  EXPECT_FALSE(chol->appendRow({0.1, 0.1}, 5.0));
  EXPECT_EQ(chol->dim(), 2u);
}

TEST(CholeskyMultiRhs, SolveMatchesPerVectorBitwise) {
  rng::Rng rng(103);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 2 + rng.index(14);
    const std::size_t k = 1 + rng.index(7);
    const auto chol = Cholesky::factorize(randomSpd(n, rng, 3.0));
    ASSERT_TRUE(chol.has_value());
    Matrix b(n, k);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < k; ++c) b(i, c) = rng.uniform(-2.0, 2.0);

    const Matrix x = chol->solve(b);
    const Matrix y = chol->solveLower(b);
    for (std::size_t c = 0; c < k; ++c) {
      const std::vector<double> xc = chol->solve(b.col(c));
      const std::vector<double> yc = chol->solveLower(b.col(c));
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(x(i, c), xc[i]);
        EXPECT_EQ(y(i, c), yc[i]);
      }
    }
  }
}

// -------------------------------------------------------- gp layer ----

gp::Dataset randomInputs(std::size_t n, std::size_t d, rng::Rng& rng) {
  gp::Dataset x;
  x.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gp::Vec xi(d);
    for (std::size_t k = 0; k < d; ++k) xi[k] = rng.uniform();
    x.push_back(std::move(xi));
  }
  return x;
}

double target0(const gp::Vec& x) {
  return std::sin(4.0 * x[0]) + 0.7 * x[1] * x[1];
}
double target1(const gp::Vec& x) {
  return -1.5 * target0(x) + 0.3 * x[0];
}

TEST(GpRegressorIncremental, AppendBitwiseEqualsDenseRefit) {
  rng::Rng rng(7);
  const gp::Dataset x = randomInputs(24, 2, rng);
  gp::Vec y;
  for (const auto& xi : x) y.push_back(target0(xi));

  gp::GpFitOptions fo;
  fo.mle_restarts = 0;
  fo.max_mle_iters = 25;
  gp::GpRegressor inc(gp::Matern52Ard(2, false), fo);
  rng::Rng fit_rng(3);
  inc.fit(gp::Dataset(x.begin(), x.begin() + 16),
          gp::Vec(y.begin(), y.begin() + 16), fit_rng);
  gp::GpRegressor dense = inc;

  const gp::Dataset probes = randomInputs(5, 2, rng);
  for (std::size_t i = 16; i < x.size(); ++i) {
    ASSERT_TRUE(inc.appendObservation(x[i], y[i]));
    dense.refitPosterior(gp::Dataset(x.begin(), x.begin() + i + 1),
                         gp::Vec(y.begin(), y.begin() + i + 1));
    EXPECT_EQ(inc.logMarginalLikelihood(), dense.logMarginalLikelihood());
    for (const auto& p : probes) {
      const gp::Posterior a = inc.predict(p);
      const gp::Posterior b = dense.predict(p);
      EXPECT_EQ(a.mean, b.mean);
      EXPECT_EQ(a.var, b.var);
    }
  }
  EXPECT_EQ(inc.denseBaseSize(), 16u);
}

TEST(GpRegressorIncremental, TruncateRollsBackAppendsBitwise) {
  rng::Rng rng(8);
  const gp::Dataset x = randomInputs(20, 2, rng);
  gp::Vec y;
  for (const auto& xi : x) y.push_back(target0(xi));

  gp::GpFitOptions fo;
  fo.mle_restarts = 0;
  fo.max_mle_iters = 25;
  gp::GpRegressor m(gp::Matern52Ard(2, false), fo);
  rng::Rng fit_rng(3);
  m.fit(gp::Dataset(x.begin(), x.begin() + 15),
        gp::Vec(y.begin(), y.begin() + 15), fit_rng);

  const gp::Vec probe = {0.3, 0.8};
  const gp::Posterior before = m.predict(probe);
  const double lml_before = m.logMarginalLikelihood();
  for (std::size_t i = 15; i < 20; ++i) m.appendObservation(x[i], y[i]);
  m.truncateTo(15);
  const gp::Posterior after = m.predict(probe);
  EXPECT_EQ(before.mean, after.mean);
  EXPECT_EQ(before.var, after.var);
  EXPECT_EQ(lml_before, m.logMarginalLikelihood());
}

TEST(GpRegressorIncremental, PredictBatchBitwiseEqualsScalar) {
  rng::Rng rng(9);
  const gp::Dataset x = randomInputs(18, 3, rng);
  gp::Vec y;
  for (const auto& xi : x) y.push_back(target0(xi));
  gp::GpFitOptions fo;
  fo.mle_restarts = 0;
  fo.max_mle_iters = 25;
  gp::GpRegressor m(gp::Matern52Ard(3, false), fo);
  rng::Rng fit_rng(4);
  m.fit(x, y, fit_rng);

  const gp::Dataset cand = randomInputs(31, 3, rng);
  const std::vector<gp::Posterior> batch = m.predictBatch(cand);
  ASSERT_EQ(batch.size(), cand.size());
  for (std::size_t c = 0; c < cand.size(); ++c) {
    const gp::Posterior p = m.predict(cand[c]);
    EXPECT_EQ(batch[c].mean, p.mean);
    EXPECT_EQ(batch[c].var, p.var);
  }
}

TEST(MultiTaskGpIncremental, AppendMatchesDenseRefitToRoundoff) {
  rng::Rng rng(11);
  const gp::Dataset x = randomInputs(18, 2, rng);
  Matrix y(x.size(), 2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    y(i, 0) = target0(x[i]);
    y(i, 1) = target1(x[i]);
  }

  gp::MultiTaskFitOptions fo;
  fo.mle_restarts = 0;
  fo.max_mle_iters = 25;
  gp::MultiTaskGp inc(gp::Matern52Ard(2, true), 2, fo);
  rng::Rng fit_rng(5);
  Matrix y12(12, 2);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t mm = 0; mm < 2; ++mm) y12(i, mm) = y(i, mm);
  inc.fit(gp::Dataset(x.begin(), x.begin() + 12), y12, fit_rng);
  gp::MultiTaskGp dense = inc;

  const gp::Dataset probes = randomInputs(4, 2, rng);
  for (std::size_t i = 12; i < x.size(); ++i) {
    ASSERT_TRUE(inc.appendObservation(x[i], {y(i, 0), y(i, 1)}));
    Matrix yi(i + 1, 2);
    for (std::size_t r = 0; r <= i; ++r)
      for (std::size_t mm = 0; mm < 2; ++mm) yi(r, mm) = y(r, mm);
    dense.refitPosterior(gp::Dataset(x.begin(), x.begin() + i + 1), yi);

    // The bordered row ordering is a symmetric permutation of the dense
    // task-major Gram: posteriors agree to roundoff, not bit-for-bit.
    EXPECT_NEAR(inc.logMarginalLikelihood(), dense.logMarginalLikelihood(),
                1e-8);
    for (const auto& p : probes) {
      const gp::MultiPosterior a = inc.predict(p);
      const gp::MultiPosterior b = dense.predict(p);
      for (std::size_t mm = 0; mm < 2; ++mm) {
        EXPECT_NEAR(a.mean[mm], b.mean[mm], 1e-8);
        for (std::size_t mp = 0; mp < 2; ++mp)
          EXPECT_NEAR(a.cov(mm, mp), b.cov(mm, mp), 1e-8);
      }
    }
  }
  EXPECT_EQ(inc.denseBasePoints(), 12u);
}

TEST(MultiTaskGpIncremental, TruncateRollsBackAppendsBitwise) {
  rng::Rng rng(12);
  const gp::Dataset x = randomInputs(16, 2, rng);
  Matrix y(x.size(), 2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    y(i, 0) = target0(x[i]);
    y(i, 1) = target1(x[i]);
  }
  gp::MultiTaskFitOptions fo;
  fo.mle_restarts = 0;
  fo.max_mle_iters = 25;
  gp::MultiTaskGp m(gp::Matern52Ard(2, true), 2, fo);
  rng::Rng fit_rng(6);
  Matrix y12(12, 2);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t mm = 0; mm < 2; ++mm) y12(i, mm) = y(i, mm);
  m.fit(gp::Dataset(x.begin(), x.begin() + 12), y12, fit_rng);

  const gp::Vec probe = {0.4, 0.1};
  const gp::MultiPosterior before = m.predict(probe);
  for (std::size_t i = 12; i < 16; ++i)
    m.appendObservation(x[i], {y(i, 0), y(i, 1)});
  m.truncateToPoints(12);
  const gp::MultiPosterior after = m.predict(probe);
  for (std::size_t mm = 0; mm < 2; ++mm) {
    EXPECT_EQ(before.mean[mm], after.mean[mm]);
    for (std::size_t mp = 0; mp < 2; ++mp)
      EXPECT_EQ(before.cov(mm, mp), after.cov(mm, mp));
  }
}

TEST(MultiTaskGpIncremental, PredictBatchBitwiseEqualsScalar) {
  rng::Rng rng(13);
  const gp::Dataset x = randomInputs(14, 2, rng);
  Matrix y(x.size(), 2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    y(i, 0) = target0(x[i]);
    y(i, 1) = target1(x[i]);
  }
  gp::MultiTaskFitOptions fo;
  fo.mle_restarts = 0;
  fo.max_mle_iters = 25;
  gp::MultiTaskGp m(gp::Matern52Ard(2, true), 2, fo);
  rng::Rng fit_rng(7);
  m.fit(x, y, fit_rng);
  // Stack a couple of bordered append rows on top so the batch path is
  // exercised against a mixed-ordering factor too.
  m.appendObservation({0.15, 0.95}, {0.2, -0.4});
  m.appendObservation({0.85, 0.05}, {0.6, -1.0});

  const gp::Dataset cand = randomInputs(23, 2, rng);
  const std::vector<gp::MultiPosterior> batch = m.predictBatch(cand);
  ASSERT_EQ(batch.size(), cand.size());
  for (std::size_t c = 0; c < cand.size(); ++c) {
    const gp::MultiPosterior p = m.predict(cand[c]);
    for (std::size_t mm = 0; mm < 2; ++mm) {
      EXPECT_EQ(batch[c].mean[mm], p.mean[mm]);
      for (std::size_t mp = 0; mp < 2; ++mp)
        EXPECT_EQ(batch[c].cov(mm, mp), p.cov(mm, mp));
    }
  }
}

TEST(NonlinearMfGpIncremental, AppendMatchesDenseRefitExactly) {
  rng::Rng rng(17);
  std::vector<gp::FidelityData> data(2);
  data[0].x = randomInputs(16, 2, rng);
  for (const auto& xi : data[0].x) data[0].y.push_back(target0(xi));
  data[1].x = randomInputs(8, 2, rng);
  for (const auto& xi : data[1].x)
    data[1].y.push_back(target0(xi) * target0(xi) + 0.2 * xi[0]);

  gp::NonlinearMfGpOptions opts;
  opts.gp.mle_restarts = 0;
  opts.gp.max_mle_iters = 20;
  gp::NonlinearMfGp inc(2, 2, opts);
  rng::Rng fit_rng(8);
  inc.fit(data, fit_rng);
  gp::NonlinearMfGp dense = inc;

  // Level-0 appends are rank-appends; the level above is refit densely with
  // fresh augmentation — exactly what refitPosterior computes, so the two
  // hierarchies stay bit-identical.
  std::vector<gp::FidelityData> grown = data;
  const gp::Vec xa = {0.33, 0.71};
  grown[0].x.push_back(xa);
  grown[0].y.push_back(target0(xa));
  ASSERT_TRUE(inc.appendObservation(0, xa, target0(xa)));
  dense.refitPosterior(grown);

  const gp::Dataset probes = randomInputs(5, 2, rng);
  for (const auto& p : probes)
    for (std::size_t l = 0; l < 2; ++l) {
      const gp::Posterior a = inc.predict(l, p);
      const gp::Posterior b = dense.predict(l, p);
      EXPECT_EQ(a.mean, b.mean);
      EXPECT_EQ(a.var, b.var);
    }

  // Appending at the top level leaves the lower level untouched.
  const gp::Vec xb = {0.62, 0.27};
  const double yb = target0(xb) * target0(xb) + 0.2 * xb[0];
  grown[1].x.push_back(xb);
  grown[1].y.push_back(yb);
  ASSERT_TRUE(inc.appendObservation(1, xb, yb));
  dense.refitPosterior(grown);
  for (const auto& p : probes) {
    const gp::Posterior a = inc.predict(1, p);
    const gp::Posterior b = dense.predict(1, p);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.var, b.var);
  }
}

TEST(NonlinearMfGpIncremental, PredictBatchBitwiseEqualsScalar) {
  rng::Rng rng(18);
  std::vector<gp::FidelityData> data(2);
  data[0].x = randomInputs(14, 2, rng);
  for (const auto& xi : data[0].x) data[0].y.push_back(target0(xi));
  data[1].x = randomInputs(7, 2, rng);
  for (const auto& xi : data[1].x)
    data[1].y.push_back(target0(xi) * target0(xi) + 0.2 * xi[0]);

  gp::NonlinearMfGpOptions opts;
  opts.gp.mle_restarts = 0;
  opts.gp.max_mle_iters = 20;
  gp::NonlinearMfGp m(2, 2, opts);
  rng::Rng fit_rng(9);
  m.fit(data, fit_rng);

  const gp::Dataset cand = randomInputs(19, 2, rng);
  for (std::size_t l = 0; l < 2; ++l) {
    const std::vector<gp::Posterior> batch = m.predictBatch(l, cand);
    ASSERT_EQ(batch.size(), cand.size());
    for (std::size_t c = 0; c < cand.size(); ++c) {
      const gp::Posterior p = m.predict(l, cand[c]);
      EXPECT_EQ(batch[c].mean, p.mean);
      EXPECT_EQ(batch[c].var, p.var);
    }
  }
}

}  // namespace
}  // namespace cmmfo

// --------------------------------------------------- surrogate layer ----

namespace cmmfo::core {
namespace {

std::vector<FidelityObs> surrogateObs(int n0, int n1, int n2, rng::Rng& rng) {
  std::vector<FidelityObs> obs(3);
  auto fill = [&](FidelityObs& o, int n, int level) {
    o.y = linalg::Matrix(n, 2);
    for (int i = 0; i < n; ++i) {
      const std::vector<double> x = {rng.uniform(), rng.uniform()};
      o.x.push_back(x);
      double y0 = std::sin(3.0 * x[0]) + 0.5 * x[1];
      double y1 = -2.0 * y0 + 0.1 * x[1];
      if (level >= 1) {
        y0 = y0 * y0 + 0.2 * x[0];
        y1 = 0.8 * y1 - 0.1;
      }
      if (level >= 2) {
        y0 += 0.05 * x[1];
        y1 += 0.05;
      }
      o.y(i, 0) = y0;
      o.y(i, 1) = y1;
    }
  };
  fill(obs[0], n0, 0);
  fill(obs[1], n1, 1);
  fill(obs[2], n2, 2);
  return obs;
}

std::vector<FidelityObs> extendObs(const std::vector<FidelityObs>& obs,
                                   const std::vector<FidelityObs>& extra,
                                   const std::array<int, 3>& counts) {
  std::vector<FidelityObs> out(3);
  for (int l = 0; l < 3; ++l) {
    out[l] = obs[l];
    const std::size_t n = out[l].x.size();
    linalg::Matrix y(n + counts[l], 2);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t m = 0; m < 2; ++m) y(i, m) = out[l].y(i, m);
    for (int k = 0; k < counts[l]; ++k) {
      out[l].x.push_back(extra[l].x[k]);
      for (std::size_t m = 0; m < 2; ++m) y(n + k, m) = extra[l].y(k, m);
    }
    out[l].y = std::move(y);
  }
  return out;
}

SurrogateOptions fastSurrogate(MfKind mf, ObjModelKind obj) {
  SurrogateOptions o;
  o.mf = mf;
  o.obj = obj;
  o.mtgp.mle_restarts = 0;
  o.mtgp.max_mle_iters = 25;
  o.gp.mle_restarts = 0;
  o.gp.max_mle_iters = 25;
  return o;
}

class IncrementalSurrogate
    : public ::testing::TestWithParam<std::pair<MfKind, ObjModelKind>> {};

// Committed appends must track a freshly fitted surrogate to roundoff, and
// batched prediction must stay bitwise equal to scalar prediction on the
// appended (mixed dense + bordered) posterior.
TEST_P(IncrementalSurrogate, CommittedAppendTracksDenseRefit) {
  rng::Rng rng(31);
  const auto obs = surrogateObs(18, 9, 5, rng);
  const auto extra = surrogateObs(3, 2, 1, rng);
  MultiFidelitySurrogate inc(2, 2, 3,
                             fastSurrogate(GetParam().first, GetParam().second));
  rng::Rng fit_rng(10);
  inc.fit(obs, fit_rng);
  MultiFidelitySurrogate dense = inc;

  const auto grown = extendObs(obs, extra, {3, 2, 1});
  inc.appendObservations(grown, /*commit=*/true);
  // The reference surrogate refits its posterior densely on the same data
  // with the same (untouched) hyperparameters.
  rng::Rng refit_rng(11);
  dense.fit(grown, refit_rng, /*optimize_hypers=*/false);

  for (std::size_t level = 0; level < 3; ++level) {
    gp::Dataset cand;
    for (int c = 0; c < 9; ++c) cand.push_back({rng.uniform(), rng.uniform()});
    const auto batch = inc.predictBatch(level, cand);
    ASSERT_EQ(batch.size(), cand.size());
    for (std::size_t c = 0; c < cand.size(); ++c) {
      const gp::MultiPosterior a = inc.predict(level, cand[c]);
      const gp::MultiPosterior b = dense.predict(level, cand[c]);
      for (std::size_t mm = 0; mm < 2; ++mm) {
        EXPECT_NEAR(a.mean[mm], b.mean[mm], 1e-8);
        EXPECT_NEAR(a.cov(mm, mm), b.cov(mm, mm), 1e-8);
        // Batched == scalar is exact.
        EXPECT_EQ(batch[c].mean[mm], a.mean[mm]);
        for (std::size_t mp = 0; mp < 2; ++mp)
          EXPECT_EQ(batch[c].cov(mm, mp), a.cov(mm, mp));
      }
    }
  }
}

// Kriging-believer speculation must leave no trace: speculate, then commit
// the original data; predictions must be bitwise identical to a surrogate
// that never speculated.
TEST_P(IncrementalSurrogate, SpeculationRollsBackBitwise) {
  rng::Rng rng(32);
  const auto obs = surrogateObs(16, 8, 4, rng);
  const auto extra = surrogateObs(2, 2, 2, rng);
  MultiFidelitySurrogate s(2, 2, 3,
                           fastSurrogate(GetParam().first, GetParam().second));
  rng::Rng fit_rng(12);
  s.fit(obs, fit_rng);

  const gp::Vec probe = {0.45, 0.55};
  std::vector<gp::MultiPosterior> before;
  for (std::size_t l = 0; l < 3; ++l) before.push_back(s.predict(l, probe));

  // Two speculative stacking steps (like two believer picks), then a commit
  // on the unchanged real data.
  s.appendObservations(extendObs(obs, extra, {1, 0, 0}), /*commit=*/false);
  s.appendObservations(extendObs(obs, extra, {2, 1, 0}), /*commit=*/false);
  s.appendObservations(obs, /*commit=*/true);

  for (std::size_t l = 0; l < 3; ++l) {
    const gp::MultiPosterior after = s.predict(l, probe);
    for (std::size_t mm = 0; mm < 2; ++mm) {
      EXPECT_EQ(before[l].mean[mm], after.mean[mm]) << "level " << l;
      for (std::size_t mp = 0; mp < 2; ++mp)
        EXPECT_EQ(before[l].cov(mm, mp), after.cov(mm, mp)) << "level " << l;
    }
  }
}

// restorePosterior(dense base + rank-appends) must reproduce the factors an
// uninterrupted run evolved incrementally — the checkpoint/resume contract.
TEST_P(IncrementalSurrogate, RestorePosteriorReproducesIncrementalState) {
  rng::Rng rng(33);
  const auto obs = surrogateObs(15, 8, 4, rng);
  const auto extra = surrogateObs(4, 2, 1, rng);
  MultiFidelitySurrogate live(2, 2, 3,
                              fastSurrogate(GetParam().first, GetParam().second));
  rng::Rng fit_rng(13);
  live.fit(obs, fit_rng);
  const auto grown = extendObs(obs, extra, {4, 2, 1});
  live.appendObservations(grown, /*commit=*/true);

  MultiFidelitySurrogate resumed(
      2, 2, 3, fastSurrogate(GetParam().first, GetParam().second));
  resumed.setHyperState(live.hyperState());
  resumed.restorePosterior(grown, live.committedBaseCounts());

  const gp::Dataset probes = {{0.2, 0.9}, {0.7, 0.3}, {0.5, 0.5}};
  for (std::size_t l = 0; l < 3; ++l)
    for (const auto& p : probes) {
      const gp::MultiPosterior a = live.predict(l, p);
      const gp::MultiPosterior b = resumed.predict(l, p);
      for (std::size_t mm = 0; mm < 2; ++mm) {
        EXPECT_EQ(a.mean[mm], b.mean[mm]) << "level " << l;
        for (std::size_t mp = 0; mp < 2; ++mp)
          EXPECT_EQ(a.cov(mm, mp), b.cov(mm, mp)) << "level " << l;
      }
    }
  EXPECT_EQ(live.committedBaseCounts(), resumed.committedBaseCounts());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, IncrementalSurrogate,
    ::testing::Values(
        std::make_pair(MfKind::kNonlinear, ObjModelKind::kCorrelated),
        std::make_pair(MfKind::kNonlinear, ObjModelKind::kIndependent),
        std::make_pair(MfKind::kLinear, ObjModelKind::kIndependent),
        std::make_pair(MfKind::kSingleFidelity, ObjModelKind::kCorrelated)));

}  // namespace
}  // namespace cmmfo::core
