#include <gtest/gtest.h>

#include "hls/design_space.h"
#include "hls/space_parser.h"

namespace cmmfo::hls {
namespace {

Kernel demoKernel() {
  Kernel k("demo");
  k.addArray("buf", 64);
  k.addArray("tab", 32);
  const LoopId outer = k.addLoop("outer", 16);
  const LoopId inner = k.addLoop("inner", 8, outer);
  k.loop(inner).refs.push_back({0, {{inner, IndexRole::kMinor}}, false, 1});
  return k;
}

TEST(SpaceParser, ParsesFullDescription) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, R"(
# candidate directives
loop outer unroll 1,2,4
loop inner unroll 1,2,8 pipeline 1,2
array buf partition none,cyclic factors 1,2,8
array tab partition none,block factors 1,4
)");
  ASSERT_TRUE(std::holds_alternative<SpaceSpec>(result));
  const SpaceSpec& spec = std::get<SpaceSpec>(result);
  EXPECT_EQ(spec.loops[0].unroll_factors, (std::vector<int>{1, 2, 4}));
  EXPECT_FALSE(spec.loops[0].allow_pipeline);
  EXPECT_TRUE(spec.loops[1].allow_pipeline);
  EXPECT_EQ(spec.loops[1].pipeline_iis, (std::vector<int>{1, 2}));
  EXPECT_EQ(spec.arrays[0].types,
            (std::vector<PartitionType>{PartitionType::kNone,
                                        PartitionType::kCyclic}));
  EXPECT_EQ(spec.arrays[1].factors, (std::vector<int>{1, 4}));
}

TEST(SpaceParser, UnmentionedSitesKeepDefaults) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, "loop outer unroll 1,2\n");
  ASSERT_TRUE(std::holds_alternative<SpaceSpec>(result));
  const SpaceSpec& spec = std::get<SpaceSpec>(result);
  EXPECT_EQ(spec.loops[1].unroll_factors, (std::vector<int>{1}));
  EXPECT_EQ(spec.arrays[0].types,
            (std::vector<PartitionType>{PartitionType::kNone}));
}

TEST(SpaceParser, InsertsMandatoryUnrollOne) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, "loop outer unroll 2,4\n");
  ASSERT_TRUE(std::holds_alternative<SpaceSpec>(result));
  EXPECT_EQ(std::get<SpaceSpec>(result).loops[0].unroll_factors,
            (std::vector<int>{1, 2, 4}));
}

TEST(SpaceParser, CommentsAndBlankLinesIgnored) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, R"(
# full-line comment

loop outer unroll 1,2   # trailing comment
)");
  ASSERT_TRUE(std::holds_alternative<SpaceSpec>(result));
}

TEST(SpaceParser, ReportsUnknownLoop) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, "loop nope unroll 1,2\n");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
  const ParseError& err = std::get<ParseError>(result);
  EXPECT_EQ(err.line, 1);
  EXPECT_NE(err.message.find("unknown loop"), std::string::npos);
}

TEST(SpaceParser, ReportsBadFactor) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, "\nloop outer unroll 1,0,4\n");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
  EXPECT_EQ(std::get<ParseError>(result).line, 2);
}

TEST(SpaceParser, ReportsBadPartitionType) {
  const Kernel k = demoKernel();
  const auto result =
      parseSpaceSpec(k, "array buf partition diagonal factors 1,2\n");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
}

TEST(SpaceParser, ReportsUnknownKind) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, "pragma buf inline\n");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
}

TEST(SpaceParser, RoundTripsThroughFormat) {
  const Kernel k = demoKernel();
  const std::string text =
      "loop outer unroll 1,2,4\n"
      "loop inner unroll 1,8 pipeline 1,2\n"
      "array buf partition none,cyclic factors 1,8\n"
      "array tab partition none factors 1\n";
  const auto first = parseSpaceSpec(k, text);
  ASSERT_TRUE(std::holds_alternative<SpaceSpec>(first));
  const std::string rendered = formatSpaceSpec(k, std::get<SpaceSpec>(first));
  const auto second = parseSpaceSpec(k, rendered);
  ASSERT_TRUE(std::holds_alternative<SpaceSpec>(second));
  EXPECT_DOUBLE_EQ(std::get<SpaceSpec>(first).rawSize(),
                   std::get<SpaceSpec>(second).rawSize());
}

TEST(SpaceParser, ParsedSpecDrivesPruner) {
  const Kernel k = demoKernel();
  const auto result = parseSpaceSpec(k, R"(
loop inner unroll 1,2,8 pipeline 1,2
array buf partition none,cyclic factors 1,2,8
)");
  ASSERT_TRUE(std::holds_alternative<SpaceSpec>(result));
  const auto space =
      DesignSpace::buildPruned(k, std::get<SpaceSpec>(result));
  EXPECT_GT(space.size(), 3u);
}

}  // namespace
}  // namespace cmmfo::hls
