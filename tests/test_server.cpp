// Multi-campaign optimization server tests: registry concurrency, fair-share
// dispatch, the shared-farm clock, the NDJSON line protocol (stdio + TCP),
// and kill-and-resume of a whole journaled daemon.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign_stepper.h"
#include "core/optimizer.h"
#include "obs/obs.h"
#include "runtime/eval_cache.h"
#include "runtime/scheduler.h"
#include "runtime/thread_pool.h"
#include "server/campaign.h"
#include "server/fair_scheduler.h"
#include "server/farm_model.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "server/server.h"
#include "util/json.h"

namespace cmmfo {
namespace {

namespace fs = std::filesystem;
using server::Campaign;
using server::CampaignSpec;
using server::CampaignState;
using server::OptimizationServer;
using server::ServerOptions;

core::OptimizerOptions fastOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

CampaignSpec fastSpec(const std::string& id, std::uint64_t seed,
                      std::uint64_t sim_seed, int n_iter = 6) {
  CampaignSpec spec;
  spec.id = id;
  spec.benchmark = "spmv_crs";
  spec.sim_seed = sim_seed;
  spec.opts = fastOpts();
  spec.opts.seed = seed;
  spec.opts.n_iter = n_iter;
  spec.opts.batch_size = 2;
  return spec;
}

/// Isolated single-campaign run of a spec (its own cache + pool) — the
/// golden the multiplexed server must reproduce bit-for-bit.
core::OptimizeResult runIsolated(const CampaignSpec& spec) {
  const auto space = server::makeSpaceFor(spec.benchmark);
  const auto bm = server::makeBenchmarkFor(spec.benchmark);
  const auto sim = server::makeSimFor(spec, *bm);
  core::CampaignStepper stepper(*space, *sim, spec.opts);
  while (!stepper.done()) stepper.step();
  return stepper.finish();
}

void expectSameTrajectory(const core::OptimizeResult& a,
                          const core::OptimizeResult& b) {
  ASSERT_EQ(a.cs.size(), b.cs.size());
  for (std::size_t i = 0; i < a.cs.size(); ++i) {
    EXPECT_EQ(a.cs[i].config, b.cs[i].config) << "cs entry " << i;
    EXPECT_EQ(a.cs[i].fidelity, b.cs[i].fidelity) << "cs entry " << i;
    EXPECT_DOUBLE_EQ(a.cs[i].report.tool_seconds, b.cs[i].report.tool_seconds);
  }
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].config, b.iterations[i].config) << "iter " << i;
    EXPECT_EQ(a.iterations[i].fidelity, b.iterations[i].fidelity);
    EXPECT_DOUBLE_EQ(a.iterations[i].peipv, b.iterations[i].peipv);
  }
  EXPECT_EQ(a.picks_per_fidelity, b.picks_per_fidelity);
  EXPECT_DOUBLE_EQ(a.tool_seconds, b.tool_seconds);
  EXPECT_EQ(a.tool_runs, b.tool_runs);
}

// ------------------------------------------------------ cache namespace ----

TEST(ServerCacheNamespace, KeysOnBenchmarkAndSimSeedOnly) {
  const CampaignSpec a = fastSpec("a", 7, 42);
  CampaignSpec b = a;
  b.id = "b";
  b.opts.seed = 99;  // different search trajectory, same tool ground truth
  EXPECT_EQ(server::cacheNamespaceOf(a), server::cacheNamespaceOf(b));

  CampaignSpec other_tool = a;
  other_tool.sim_seed = 43;
  EXPECT_NE(server::cacheNamespaceOf(a), server::cacheNamespaceOf(other_tool));

  CampaignSpec other_bench = a;
  other_bench.benchmark = "gemm";
  EXPECT_NE(server::cacheNamespaceOf(a),
            server::cacheNamespaceOf(other_bench));

  // 0 is reserved for the single-campaign default namespace.
  EXPECT_NE(server::cacheNamespaceOf(a), 0u);
}

TEST(ServerCacheLedger, CountersArePerLedgerWithinSharedNamespace) {
  runtime::EvalCache cache;
  const std::uint64_t ns = 7, la = 100, lb = 200;
  const std::array<sim::Report, sim::kNumFidelities> stages{};

  // Tenant A misses, the flow is stored, then both tenants hit it.
  EXPECT_FALSE(cache.find(1, sim::Fidelity::kHls, ns, la).has_value());
  cache.storeFlow(1, sim::Fidelity::kHls, stages, ns);
  EXPECT_TRUE(cache.find(1, sim::Fidelity::kHls, ns, la).has_value());
  EXPECT_TRUE(cache.find(1, sim::Fidelity::kHls, ns, lb).has_value());

  const auto sa = cache.stats(ns, la);
  const auto sb = cache.stats(ns, lb);
  EXPECT_EQ(sa.hits, 1u);
  EXPECT_EQ(sa.misses, 1u);
  EXPECT_EQ(sb.hits, 1u);
  EXPECT_EQ(sb.misses, 0u);
  // Artifacts (flows/entries) stay keyed on the shared namespace.
  EXPECT_EQ(sa.flows, 1u);
  EXPECT_EQ(sb.flows, 1u);

  // Restoring A's journaled counters must not clobber B's ledger.
  cache.restoreCounters(10, 20, la);
  EXPECT_EQ(cache.stats(ns, la).hits, 10u);
  EXPECT_EQ(cache.stats(ns, la).misses, 20u);
  EXPECT_EQ(cache.stats(ns, lb).hits, 1u);

  // Ledger 0 falls back to the namespace key (single-campaign regime).
  EXPECT_EQ(cache.stats(ns).hits, 0u);
  EXPECT_FALSE(cache.find(2, sim::Fidelity::kHls, ns).has_value());
  EXPECT_EQ(cache.stats(ns).misses, 1u);
}

TEST(ServerCacheLedger, CoTenantsShareArtifactsButNotCounters) {
  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 2;
  OptimizationServer srv(opts);
  srv.start();
  std::string err;
  // Same benchmark + sim_seed -> one shared artifact namespace; different
  // search seeds -> different trajectories over it.
  ASSERT_TRUE(srv.submit(fastSpec("ta", 5, 21, 4), &err)) << err;
  ASSERT_TRUE(srv.submit(fastSpec("tb", 9, 21, 4), &err)) << err;
  srv.drain();

  const auto a = srv.campaign("ta")->snapshot();
  const auto b = srv.campaign("tb")->snapshot();
  EXPECT_GT(a.cache_misses, 0u);
  EXPECT_GT(b.cache_misses, 0u);
  // Every lookup lands on exactly one tenant's ledger: the per-campaign
  // counters partition the cache-wide totals.
  const auto total = srv.cache().stats();
  EXPECT_EQ(total.hits, a.cache_hits + b.cache_hits);
  EXPECT_EQ(total.misses, a.cache_misses + b.cache_misses);
  srv.stop();
}

// ------------------------------------------------------------- stepper ----

TEST(ServerStepper, StepLoopMatchesMonolithicRunExactly) {
  CampaignSpec spec = fastSpec("golden", 77, 42, 10);

  const auto space = server::makeSpaceFor(spec.benchmark);
  const auto bm = server::makeBenchmarkFor(spec.benchmark);
  const auto sim_a = server::makeSimFor(spec, *bm);
  core::CorrelatedMfMoboOptimizer monolithic(*space, *sim_a, spec.opts);
  const core::OptimizeResult golden = monolithic.run();

  const core::OptimizeResult stepped = runIsolated(spec);
  expectSameTrajectory(golden, stepped);
}

TEST(ServerStepper, ResumedFirstStepReportsJournaledRounds) {
  const std::string dir = testing::TempDir() + "/cmmfo_stepper_resume_rounds";
  fs::remove_all(dir);
  fs::create_directories(dir);
  CampaignSpec spec = fastSpec("rr", 5, 33, 8);
  spec.opts.checkpoint_path = dir + "/rr.ckpt.json";

  const auto space = server::makeSpaceFor(spec.benchmark);
  const auto bm = server::makeBenchmarkFor(spec.benchmark);
  const auto sim_a = server::makeSimFor(spec, *bm);
  core::CampaignStepper a(*space, *sim_a, spec.opts);
  EXPECT_EQ(a.step().round, -1);  // init
  EXPECT_EQ(a.step().round, 0);
  EXPECT_EQ(a.step().round, 1);

  // The resumed process's first step restores the journal and must report
  // the last completed round — not the init sentinel, which would make a
  // status snapshot claim 0 rounds of prior progress.
  spec.opts.resume = true;
  const auto sim_b = server::makeSimFor(spec, *bm);
  core::CampaignStepper b(*space, *sim_b, spec.opts);
  const core::RoundOutcome r0 = b.step();
  EXPECT_TRUE(r0.resumed);
  EXPECT_EQ(r0.round, 1);
  EXPECT_EQ(b.step().round, 2);  // and the next round continues from there
  fs::remove_all(dir);
}

// ------------------------------------------------------------ registry ----

TEST(ServerRegistry, RejectsDuplicatesAndListsSorted) {
  server::Registry reg;
  const auto space = server::makeSpaceFor("spmv_crs");
  const auto mk = [&](const std::string& id) {
    return std::make_shared<Campaign>(fastSpec(id, 1, 42), space,
                                      core::SharedRuntime{});
  };
  EXPECT_TRUE(reg.add(mk("b")));
  EXPECT_TRUE(reg.add(mk("a")));
  EXPECT_FALSE(reg.add(mk("a")));  // duplicate id
  EXPECT_EQ(reg.size(), 2u);
  const auto all = reg.list();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->spec().id, "a");
  EXPECT_EQ(all[1]->spec().id, "b");
  EXPECT_NE(reg.get("a"), nullptr);
  EXPECT_EQ(reg.get("missing"), nullptr);
}

TEST(ServerRegistry, ConcurrentSubmitAndLookupIsSafe) {
  server::Registry reg;
  const auto space = server::makeSpaceFor("spmv_crs");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 8;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const std::string id =
            "w" + std::to_string(w) + "_" + std::to_string(i);
        ASSERT_TRUE(reg.add(std::make_shared<Campaign>(
            fastSpec(id, 1, 42), space, core::SharedRuntime{})));
      }
    });
  }
  // Readers hammer get/list while writers insert.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        (void)reg.get("w0_0");
        const auto all = reg.list();
        for (std::size_t k = 1; k < all.size(); ++k)
          EXPECT_LT(all[k - 1]->spec().id, all[k]->spec().id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  EXPECT_EQ(reg.list().size(), reg.size());
}

// ---------------------------------------------------------- fair share ----

TEST(ServerFairShare, PicksMinDeficitQueuedAndBreaksTiesTowardFirst) {
  const auto space = server::makeSpaceFor("spmv_crs");
  const auto mk = [&](const std::string& id, double weight) {
    CampaignSpec s = fastSpec(id, 1, 42);
    s.weight = weight;
    return std::make_shared<Campaign>(s, space, core::SharedRuntime{});
  };
  auto a = mk("a", 1.0);
  auto b = mk("b", 1.0);
  auto c = mk("c", 1.0);
  const std::vector<std::shared_ptr<Campaign>> all = {a, b, c};

  // All deficits are 0: the tie breaks toward the first (= smallest id,
  // Registry::list() order).
  EXPECT_EQ(server::FairScheduler::pickNext(all), a);

  // One step charges `a` some tool seconds; the pick moves on.
  ASSERT_TRUE(a->beginStep());
  a->endStep(a->runStep());
  EXPECT_GT(a->deficit(), 0.0);
  EXPECT_EQ(server::FairScheduler::pickNext(all), b);

  // Paused campaigns are not runnable.
  std::string err;
  ASSERT_TRUE(b->requestPause(&err)) << err;
  EXPECT_EQ(server::FairScheduler::pickNext(all), c);

  // Nothing queued -> null.
  ASSERT_TRUE(c->requestPause(&err)) << err;
  EXPECT_EQ(server::FairScheduler::pickNext({b, c}), nullptr);
}

TEST(ServerFairShare, DeficitIsChargedSecondsOverWeight) {
  const auto space = server::makeSpaceFor("spmv_crs");
  CampaignSpec heavy_spec = fastSpec("heavy", 3, 42);
  heavy_spec.weight = 4.0;
  auto heavy =
      std::make_shared<Campaign>(heavy_spec, space, core::SharedRuntime{});
  auto light = std::make_shared<Campaign>(fastSpec("light", 3, 42), space,
                                          core::SharedRuntime{});

  // Same spec, same step: identical charge, 4x-weighted tenant gets a
  // quarter of the deficit — it is entitled to 4x the tool time.
  for (const auto& c : {heavy, light}) {
    ASSERT_TRUE(c->beginStep());
    c->endStep(c->runStep());
  }
  const auto hs = heavy->snapshot();
  const auto ls = light->snapshot();
  ASSERT_GT(hs.charged_seconds, 0.0);
  EXPECT_DOUBLE_EQ(hs.charged_seconds, ls.charged_seconds);
  EXPECT_DOUBLE_EQ(heavy->deficit(), hs.charged_seconds / 4.0);
  EXPECT_DOUBLE_EQ(light->deficit(), ls.charged_seconds);
  EXPECT_EQ(server::FairScheduler::pickNext({light, heavy}), heavy);
}

// ---------------------------------------------------------- farm model ----

TEST(ServerFarm, GreedyPlacementRespectsRoundOrderAndWorkerWidth) {
  server::SharedFarmModel farm(2);
  // 3 jobs of 10s on 2 workers: 10+10 in parallel, then 10 more -> 20.
  EXPECT_DOUBLE_EQ(farm.placeRound("a", {10.0, 10.0, 10.0}), 20.0);
  // Another campaign's round fills the idle worker: starts at 10, ends 15.
  EXPECT_DOUBLE_EQ(farm.placeRound("b", {5.0}), 15.0);
  EXPECT_DOUBLE_EQ(farm.makespan(), 20.0);
  // Campaign a's next round cannot start before its round 1 finished (20)
  // even though a worker frees up at 15.
  EXPECT_DOUBLE_EQ(farm.placeRound("a", {1.0}), 21.0);
  EXPECT_DOUBLE_EQ(farm.makespan(), 21.0);
  // An all-cache-hit round occupies no worker time.
  EXPECT_DOUBLE_EQ(farm.placeRound("c", {}), 0.0);
  EXPECT_DOUBLE_EQ(farm.makespan(), 21.0);
}

// ------------------------------------------------------- line protocol ----

TEST(ServerProtocol, ParseRejectsMalformedRequests) {
  server::Request req;
  std::string err;
  EXPECT_FALSE(server::parseRequest("not json at all", &req, &err));
  EXPECT_FALSE(server::parseRequest("[1,2,3]", &req, &err));
  EXPECT_FALSE(server::parseRequest("{\"op\":5}", &req, &err));
  EXPECT_FALSE(server::parseRequest("{}", &req, &err));
  EXPECT_TRUE(
      server::parseRequest("{\"op\":\"status\",\"id\":\"x\"}", &req, &err));
  EXPECT_EQ(req.op, "status");
  EXPECT_EQ(req.id, "x");
}

TEST(ServerProtocol, StdioSessionRunsACampaignAndRejectsBadInput) {
  ServerOptions opts;
  opts.workers = 4;
  opts.slots = 2;
  OptimizationServer srv(opts);
  srv.start();

  std::stringstream in;
  in << "this is not json\n"
     << "{\"op\":\"definitely_not_an_op\"}\n"
     << "{\"op\":\"submit\",\"id\":\"bad id!\"}\n"
     << "{\"op\":\"status\",\"id\":\"missing\"}\n"
     << "{\"op\":\"subscribe\"}\n"
     << "{\"op\":\"submit\",\"id\":\"p1\",\"benchmark\":\"spmv_crs\","
        "\"seed\":7,\"sim_seed\":11,\"n_iter\":4,\"batch_size\":2,"
        "\"mc_samples\":16,\"max_candidates\":60,\"refit_every\":5,"
        "\"mle_restarts\":0,\"max_mle_iters\":25}\n"
     << "{\"op\":\"drain\"}\n"
     << "{\"op\":\"status\",\"id\":\"p1\"}\n"
     << "{\"op\":\"shutdown\"}\n";
  std::stringstream out;
  srv.serveStdio(in, out);
  srv.stop();

  int parse_failures = 0, errors = 0, rounds = 0, done_rounds = 0;
  bool saw_done_state = false, saw_final_status = false;
  std::string line;
  while (std::getline(out, line)) {
    util::Json j;
    std::string jerr;
    if (!util::parseJson(line, &j, &jerr)) {
      ++parse_failures;
      continue;
    }
    if (const util::Json* ok = j.find("ok");
        ok != nullptr && ok->kind == util::Json::kBool && !ok->b)
      ++errors;
    if (j.strOr("event", "") == "round") {
      ++rounds;
      EXPECT_EQ(j.strOr("id", ""), "p1");
      if (const util::Json* d = j.find("done");
          d != nullptr && d->kind == util::Json::kBool && d->b)
        ++done_rounds;
    }
    if (j.strOr("event", "") == "state" && j.strOr("state", "") == "done")
      saw_done_state = true;
    if (const util::Json* c = j.find("campaign");
        c != nullptr && c->strOr("state", "") == "done")
      saw_final_status = true;
  }
  EXPECT_EQ(parse_failures, 0) << "every output line must be valid JSON";
  // garbage, unknown op, invalid id, unknown campaign status.
  EXPECT_EQ(errors, 4);
  // init round + ceil(4/2) BO rounds, all streamed to the subscriber.
  EXPECT_GE(rounds, 3);
  EXPECT_EQ(done_rounds, 1);
  EXPECT_TRUE(saw_done_state);
  EXPECT_TRUE(saw_final_status);
}

TEST(ServerProtocol, PauseHoldsProgressAndResumeFinishes) {
  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 1;
  OptimizationServer srv(opts);
  srv.start();

  std::string err;
  ASSERT_TRUE(srv.submit(fastSpec("pc", 5, 21, 6), &err)) << err;
  ASSERT_TRUE(srv.pause("pc", &err)) << err;
  srv.drain();  // paused campaigns leave the server drained
  const auto paused = srv.campaign("pc")->snapshot();
  EXPECT_EQ(paused.state, CampaignState::kPaused);

  ASSERT_TRUE(srv.resumeCampaign("pc", &err)) << err;
  srv.drain();
  const auto done = srv.campaign("pc")->snapshot();
  EXPECT_EQ(done.state, CampaignState::kDone);
  EXPECT_EQ(done.proposals, 6);
  srv.stop();

  // The multiplexed trajectory equals the isolated golden.
  const auto result = srv.campaign("pc")->result();
  ASSERT_TRUE(result.has_value());
  expectSameTrajectory(runIsolated(fastSpec("pc", 5, 21, 6)), *result);
}

// --------------------------------------------------------- telemetry ----

// Tests flipping the process-wide observability flags restore them on exit
// (pass or fail) so co-resident tests never inherit a live registry.
struct ObsReset {
  ~ObsReset() { obs::global().reset(); }
};

TEST(ServerProtocol, MetricsVerbExposesSloSeries) {
  ObsReset reset_on_exit;
  obs::metrics().setEnabled(true);

  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 2;
  OptimizationServer srv(opts);
  srv.start();
  std::string err;
  ASSERT_TRUE(srv.submit(fastSpec("mv", 7, 31, 4), &err)) << err;
  srv.drain();

  std::stringstream in, out;
  in << "{\"op\":\"metrics\"}\n"
     << "{\"op\":\"shutdown\"}\n";
  srv.serveStdio(in, out);
  srv.stop();

  // The first output line answers the metrics verb.
  std::string line;
  ASSERT_TRUE(std::getline(out, line));
  util::Json j;
  ASSERT_TRUE(util::parseJson(line, &j)) << line;
  const util::Json* ok = j.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->b) << line;
  const util::Json* enabled = j.find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->b);
  EXPECT_NE(j.find("trace_dropped"), nullptr);

  const util::Json* arr = j.find("metrics");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->kind, util::Json::kArr);
  ASSERT_FALSE(arr->arr.empty());

  bool saw_step = false, saw_labeled = false, saw_fanout = false;
  for (const util::Json& p : arr->arr) {
    const std::string name = p.strOr("name", "");
    if (name == "slo.step_seconds") {
      saw_step = true;
      EXPECT_EQ(p.strOr("kind", ""), "histogram");
      // init round + ceil(4/2) BO rounds drove at least 3 steps.
      EXPECT_GE(p.numOr("count", 0.0), 3.0);
      const util::Json* bounds = p.find("bounds");
      const util::Json* buckets = p.find("buckets");
      ASSERT_NE(bounds, nullptr);
      ASSERT_NE(buckets, nullptr);
      EXPECT_EQ(buckets->arr.size(), bounds->arr.size() + 1);
    }
    // The per-campaign series carries the flat label suffix the
    // Prometheus renderer turns into {campaign="mv"}.
    if (name == "slo.step_seconds#campaign=mv") saw_labeled = true;
    // Every single-flight leader finish observes its fan-out.
    if (name == "slo.coalesce_fanout") {
      saw_fanout = true;
      EXPECT_EQ(p.strOr("kind", ""), "histogram");
      EXPECT_GT(p.numOr("count", 0.0), 0.0);
    }
  }
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_labeled);
  EXPECT_TRUE(saw_fanout);
}

// Follows one campaign's trace through a coalesced job shared with a
// second campaign: campaign A's job leads the single-flight on (config,
// fidelity); campaign B's scheduler — a co-tenant in the same cache
// namespace — joins mid-flight and must record a "coalesced" job span in
// ITS OWN trace that links to A's leader span. The leader is gated on
// flightWaiters(), so the interleaving is deterministic, not timing luck.
TEST(ServerTrace, CoalescedJobLinksFollowerSpanToLeaderAcrossCampaigns) {
  ObsReset reset_on_exit;
  obs::tracer().setEnabled(true);

  const CampaignSpec spec_a = fastSpec("trace_a", 7, 42);
  const CampaignSpec spec_b = fastSpec("trace_b", 9, 42);  // co-tenant
  const std::uint64_t ns = server::cacheNamespaceOf(spec_a);
  ASSERT_EQ(ns, server::cacheNamespaceOf(spec_b));
  const std::uint64_t root_a = server::cacheLedgerOf(spec_a);
  const std::uint64_t root_b = server::cacheLedgerOf(spec_b);
  ASSERT_NE(root_a, root_b);

  const auto space = server::makeSpaceFor(spec_a.benchmark);
  const auto bm = server::makeBenchmarkFor(spec_a.benchmark);
  const auto sim_a = server::makeSimFor(spec_a, *bm);
  const auto sim_b = server::makeSimFor(spec_b, *bm);
  runtime::EvalCache cache;
  runtime::ThreadPool pool(2);
  runtime::ToolScheduler sched_b(*space, *sim_b, cache, pool, {}, ns,
                                 root_b);

  constexpr std::size_t kConfig = 7;
  const auto fidelity = sim::Fidelity::kSyn;

  // Campaign A's driver: root context, a leader job span, and the
  // single-flight registration the scheduler performs for a leader —
  // carrying the span's causal identity into the cache.
  obs::ContextGuard root_guard(&obs::tracer(),
                               obs::TraceContext{root_a, root_a});
  auto leader_span =
      std::make_unique<obs::Span>(&obs::tracer(), "job", "scheduler");
  const std::uint64_t leader_span_id = leader_span->spanId();
  ASSERT_EQ(leader_span->traceId(), root_a);
  std::array<sim::Report, sim::kNumFidelities> stages{};
  ASSERT_EQ(cache.joinFlight(kConfig, fidelity, ns, root_a, &stages,
                             {root_a, leader_span_id}),
            runtime::EvalCache::FlightJoin::kLeader);

  // Campaign B: a real scheduler round submitted under B's root context.
  std::vector<runtime::EvalResult> results_b;
  std::thread campaign_b([&] {
    obs::ContextGuard guard(&obs::tracer(),
                            obs::TraceContext{root_b, root_b});
    results_b = sched_b.runBatch({{kConfig, fidelity}});
  });

  // Release the leader only after B parked inside the flight wait.
  while (cache.flightWaiters(kConfig, ns) < 1) std::this_thread::yield();
  for (int s = 0; s <= static_cast<int>(fidelity); ++s)
    stages[s] =
        sim_a->run(space->config(kConfig), static_cast<sim::Fidelity>(s));
  cache.storeFlow(kConfig, fidelity, stages, ns);
  leader_span->outcome("ok");
  leader_span.reset();  // records A's job span
  EXPECT_EQ(cache.finishFlight(kConfig, ns), 1);
  campaign_b.join();

  ASSERT_EQ(results_b.size(), 1u);
  EXPECT_TRUE(results_b[0].coalesced);
  EXPECT_DOUBLE_EQ(results_b[0].charged_seconds, 0.0);

  // One trace per campaign; B's job span carries the cross-trace link.
  const auto events = obs::tracer().events();
  const obs::TraceEvent* leader = nullptr;
  const obs::TraceEvent* follower = nullptr;
  const obs::TraceEvent* batch_b = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "run_batch" && e.trace_id == root_b) batch_b = &e;
    if (e.name != "job") continue;
    if (e.trace_id == root_a) leader = &e;
    if (e.trace_id == root_b) follower = &e;
  }
  ASSERT_NE(leader, nullptr);
  ASSERT_NE(follower, nullptr);
  ASSERT_NE(batch_b, nullptr);
  EXPECT_EQ(leader->span_id, leader_span_id);
  EXPECT_EQ(leader->parent_span_id, root_a);
  // Full causal chain in B's trace: job -> run_batch -> campaign root —
  // the parent survives the hop onto the worker thread.
  EXPECT_EQ(follower->parent_span_id, batch_b->span_id);
  EXPECT_EQ(batch_b->parent_span_id, root_b);
  EXPECT_EQ(follower->outcome, "coalesced");
  EXPECT_EQ(follower->id, static_cast<std::int64_t>(kConfig));
  EXPECT_EQ(follower->link_trace_id, root_a);
  EXPECT_EQ(follower->link_span_id, leader_span_id);
  EXPECT_NE(follower->span_id, leader->span_id);
}

// ----------------------------------------------------- kill and resume ----

TEST(ServerDaemon, KillAndResumeThreeCampaignsIsTrajectoryIdentical) {
  const std::string dir = testing::TempDir() + "/cmmfo_server_journal_kr";
  fs::remove_all(dir);

  // Distinct sim seeds -> distinct cache namespaces -> each campaign's
  // cache economics match its isolated golden exactly (no cross-tenant
  // hits to perturb tool_seconds).
  const std::vector<CampaignSpec> specs = {fastSpec("k0", 7, 101, 8),
                                           fastSpec("k1", 8, 102, 8),
                                           fastSpec("k2", 9, 103, 8)};
  std::vector<core::OptimizeResult> golden;
  golden.reserve(specs.size());
  for (const auto& s : specs) golden.push_back(runIsolated(s));

  ServerOptions opts;
  opts.workers = 4;
  opts.slots = 2;
  opts.journal_dir = dir;

  // First daemon: submit all three, let every campaign get at least one BO
  // round into its journal, then kill it mid-flight.
  OptimizationServer first(opts);
  first.start();
  std::string err;
  for (const auto& s : specs) ASSERT_TRUE(first.submit(s, &err)) << err;
  const auto all_started = [&] {
    for (const auto& s : specs)
      if (first.campaign(s.id)->snapshot().rounds < 1) return false;
    return true;
  };
  while (!all_started())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  first.stop();  // finishes in-flight steps, leaves the rest checkpointed

  // Second daemon resumes the journal and runs everything to completion.
  ServerOptions ropts = opts;
  ropts.resume = true;
  OptimizationServer second(ropts);
  second.start();
  second.drain();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string& id = specs[i].id;
    // A campaign that happened to finish before the kill is journaled final
    // and not re-submitted; its result lives in the first daemon.
    auto campaign = second.campaign(id);
    if (campaign == nullptr) campaign = first.campaign(id);
    ASSERT_NE(campaign, nullptr) << id;
    EXPECT_EQ(campaign->snapshot().state, CampaignState::kDone) << id;
    const auto result = campaign->result();
    ASSERT_TRUE(result.has_value()) << id;
    expectSameTrajectory(golden[i], *result);
  }
  second.stop();
  fs::remove_all(dir);
}

// ------------------------------------------------------------------ TCP ----

std::string readLine(int fd) {
  std::string line;
  char c;
  while (read(fd, &c, 1) == 1) {
    if (c == '\n') return line;
    line.push_back(c);
  }
  return line;
}

int dialLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

void sendLine(int fd, const std::string& s) {
  const std::string msg = s + "\n";
  ASSERT_EQ(write(fd, msg.data(), msg.size()),
            static_cast<ssize_t>(msg.size()));
}

TEST(ServerTcp, SocketRoundTripServesRequestsUntilShutdown) {
  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 1;
  OptimizationServer srv(opts);
  srv.start();
  const int port = srv.listenTcp(0);
  ASSERT_GT(port, 0);

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const auto send_line = [&](const std::string& s) {
    const std::string msg = s + "\n";
    ASSERT_EQ(write(fd, msg.data(), msg.size()),
              static_cast<ssize_t>(msg.size()));
  };

  send_line("{\"op\":\"list\"}");
  util::Json j;
  ASSERT_TRUE(util::parseJson(readLine(fd), &j));
  const util::Json* ok = j.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->b);

  send_line("{\"op\":\"no_such_op\"}");
  ASSERT_TRUE(util::parseJson(readLine(fd), &j));
  ok = j.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->b);

  send_line("{\"op\":\"shutdown\"}");
  ASSERT_TRUE(util::parseJson(readLine(fd), &j));
  close(fd);
  srv.waitUntilStopped();
  srv.stop();
}

TEST(ServerTcp, StopUnblocksIdleConnections) {
  // Regression: a reader parked in ::read on an idle-but-open connection
  // must be woken by stop()'s socket shutdown, or shutdown joins forever.
  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 1;
  OptimizationServer srv(opts);
  srv.start();
  const int port = srv.listenTcp(0);
  ASSERT_GT(port, 0);

  const int active = dialLoopback(port);
  const int idle = dialLoopback(port);
  ASSERT_GE(active, 0);
  ASSERT_GE(idle, 0);
  // One round-trip per connection, so both reader threads are provably up
  // and parked in ::read afterwards.
  util::Json j;
  sendLine(active, "{\"op\":\"list\"}");
  ASSERT_TRUE(util::parseJson(readLine(active), &j));
  sendLine(idle, "{\"op\":\"list\"}");
  ASSERT_TRUE(util::parseJson(readLine(idle), &j));

  // Client-initiated shutdown: the connection thread only INITIATES the
  // stop; the joining happens here on the test thread (the daemon's
  // waitUntilStopped/stop sequence), never on a connection thread.
  sendLine(active, "{\"op\":\"shutdown\"}");
  ASSERT_TRUE(util::parseJson(readLine(active), &j));
  srv.waitUntilStopped();
  srv.stop();  // must not hang on the idle connection

  // The server hung up on the idle client.
  char c;
  EXPECT_LE(read(idle, &c, 1), 0);
  close(active);
  close(idle);
  // Scope exit re-runs stop() via the destructor: blocking + idempotent.
}

TEST(ServerTcp, ConcurrentStopIsBlockingAndIdempotent) {
  // Regression: a second stop() must BLOCK until the first finishes, so
  // destroying the server right after any stop() returns is safe.
  auto srv = std::make_unique<OptimizationServer>(ServerOptions{});
  srv->start();
  ASSERT_GT(srv->listenTcp(0), 0);
  std::string err;
  ASSERT_TRUE(srv->submit(fastSpec("cs", 3, 17, 4), &err)) << err;
  std::thread t1([&] { srv->stop(); });
  std::thread t2([&] { srv->stop(); });
  t1.join();
  t2.join();
  srv.reset();  // both stops returned -> teardown must be safe
}

}  // namespace
}  // namespace cmmfo
