#include <gtest/gtest.h>

#include "baselines/methods.h"
#include "bench_suite/benchmarks.h"
#include "core/optimizer.h"
#include "exp/harness.h"

namespace cmmfo::core {
namespace {

OptimizerOptions fastOpts() {
  OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

struct Fixture {
  Fixture()
      : bm(bench_suite::makeSpmvCrs()),
        space(hls::DesignSpace::buildPruned(bm.kernel, bm.spec)),
        sim(bm.kernel, sim::DeviceModel::virtex7Vc707(), bm.sim_params, 42) {}
  bench_suite::Benchmark bm;
  hls::DesignSpace space;
  sim::FpgaToolSim sim;
};

TEST(Optimizer, CsContainsInitPlusIterations) {
  Fixture f;
  OptimizerOptions o = fastOpts();
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const OptimizeResult res = opt.run();
  EXPECT_EQ(res.cs.size(), static_cast<std::size_t>(o.n_init_hls + o.n_iter));
  int picks = 0;
  for (int c : res.picks_per_fidelity) picks += c;
  EXPECT_EQ(picks, o.n_iter);
}

TEST(Optimizer, NoConfigSampledTwice) {
  Fixture f;
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, fastOpts());
  const OptimizeResult res = opt.run();
  std::set<std::size_t> seen;
  for (const auto& rec : res.cs) EXPECT_TRUE(seen.insert(rec.config).second);
}

TEST(Optimizer, ToolTimeChargedMatchesSim) {
  Fixture f;
  f.sim.resetAccounting();
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, fastOpts());
  const OptimizeResult res = opt.run();
  EXPECT_GT(res.tool_seconds, 0.0);
  EXPECT_DOUBLE_EQ(res.tool_seconds, f.sim.totalToolSeconds());
  EXPECT_EQ(res.tool_runs,
            fastOpts().n_init_hls + fastOpts().n_iter);
}

TEST(Optimizer, DeterministicForFixedSeed) {
  Fixture f1, f2;
  OptimizerOptions o = fastOpts();
  o.seed = 77;
  CorrelatedMfMoboOptimizer a(f1.space, f1.sim, o);
  CorrelatedMfMoboOptimizer b(f2.space, f2.sim, o);
  const auto ra = a.run(), rb = b.run();
  ASSERT_EQ(ra.cs.size(), rb.cs.size());
  for (std::size_t i = 0; i < ra.cs.size(); ++i)
    EXPECT_EQ(ra.cs[i].config, rb.cs[i].config);
}

TEST(Optimizer, DifferentSeedsExploreDifferently) {
  Fixture f1, f2;
  OptimizerOptions o = fastOpts();
  o.seed = 1;
  CorrelatedMfMoboOptimizer a(f1.space, f1.sim, o);
  o.seed = 2;
  CorrelatedMfMoboOptimizer b(f2.space, f2.sim, o);
  const auto ra = a.run(), rb = b.run();
  bool any_diff = false;
  for (std::size_t i = 0; i < ra.cs.size(); ++i)
    if (ra.cs[i].config != rb.cs[i].config) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Optimizer, MostPicksAtCheapFidelities) {
  // The PEIPV penalty (T_impl / T_i) should keep the bulk of the BO picks
  // at the cheaper stages.
  Fixture f;
  OptimizerOptions o = fastOpts();
  o.n_iter = 16;
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  EXPECT_GE(res.picks_per_fidelity[0] + res.picks_per_fidelity[1],
            res.picks_per_fidelity[2]);
}

TEST(Optimizer, BeatsRandomSamplingAtEqualRunCount) {
  exp::BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  OptimizerOptions o = fastOpts();
  o.n_iter = 20;
  baselines::OursMethod ours(o);
  // Random gets the same number of tool runs, all at impl (more information
  // per run than ours gets!) — BO must still win on ADRS.
  baselines::RandomMethod random(28);
  const auto s_ours = exp::evaluateMethod(ctx, ours, 3, 11);
  const auto s_rand = exp::evaluateMethod(ctx, random, 3, 11);
  EXPECT_LT(s_ours.adrs_mean, s_rand.adrs_mean * 1.2);
}

TEST(Optimizer, ExhaustsTinySpaceGracefully) {
  // A space smaller than init + iters: the loop must stop early, sampling
  // every configuration exactly once.
  hls::Kernel k("tiny");
  const hls::ArrayId a = k.addArray("a", 32);
  const hls::LoopId l = k.addLoop("l", 32);
  k.loop(l).body_ops[hls::OpKind::kAdd] = 1;
  k.loop(l).body_ops[hls::OpKind::kLoad] = 1;
  k.loop(l).refs.push_back({a, {{l, hls::IndexRole::kMinor}}, false, 1});
  hls::SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2, 4, 8};
  spec.loops[0].allow_pipeline = true;
  spec.loops[0].pipeline_iis = {1, 2};
  spec.arrays[0].types = {hls::PartitionType::kNone, hls::PartitionType::kCyclic};
  spec.arrays[0].factors = {1, 2, 4, 8};
  const auto space = hls::DesignSpace::buildPruned(k, spec);
  ASSERT_LT(space.size(), 40u);
  sim::FpgaToolSim sim(k, sim::DeviceModel::virtex7Vc707(), {}, 42);

  OptimizerOptions o = fastOpts();
  o.n_iter = 1000;
  o.max_candidates = 10000;
  o.mc_samples = 4;
  o.refit_every = 50;
  CorrelatedMfMoboOptimizer opt(space, sim, o);
  const auto res = opt.run();
  EXPECT_EQ(res.cs.size(), space.size());
}

TEST(Optimizer, SurrogateFittedAfterRun) {
  Fixture f;
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, fastOpts());
  opt.run();
  EXPECT_TRUE(opt.surrogate().fitted());
  // The paper's central claim object: a learned task correlation exists.
  const auto corr = opt.surrogate().taskCorrelation(0);
  EXPECT_EQ(corr.rows(), 3u);
  EXPECT_NEAR(corr(0, 0), 1.0, 1e-6);
}

TEST(Optimizer, IterationLogTracksEveryStep) {
  Fixture f;
  OptimizerOptions o = fastOpts();
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  ASSERT_EQ(res.iterations.size(), static_cast<std::size_t>(o.n_iter));
  for (std::size_t i = 0; i < res.iterations.size(); ++i) {
    EXPECT_EQ(res.iterations[i].iteration, static_cast<int>(i));
    EXPECT_GE(res.iterations[i].peipv, 0.0);
    EXPECT_LT(res.iterations[i].config, f.space.size());
    // The logged pick matches the CS entry appended that step.
    EXPECT_EQ(res.iterations[i].config,
              res.cs[o.n_init_hls + i].config);
  }
}

TEST(Optimizer, CostPenaltyOffStillRuns) {
  Fixture f;
  OptimizerOptions o = fastOpts();
  o.cost_penalty = false;
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  EXPECT_EQ(res.cs.size(), static_cast<std::size_t>(o.n_init_hls + o.n_iter));
}

TEST(Optimizer, LinearIndependentVariantRuns) {
  Fixture f;
  OptimizerOptions o = fastOpts();
  o.surrogate.mf = MfKind::kLinear;
  o.surrogate.obj = ObjModelKind::kIndependent;
  CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  EXPECT_EQ(res.cs.size(), static_cast<std::size_t>(o.n_init_hls + o.n_iter));
}

}  // namespace
}  // namespace cmmfo::core
