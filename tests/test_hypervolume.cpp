#include <gtest/gtest.h>

#include <cmath>

#include "pareto/hypervolume.h"
#include "rng/rng.h"

namespace cmmfo::pareto {
namespace {

TEST(Hypervolume, SingleBox2d) {
  // Point (1,1) with ref (3,3): box 2x2.
  EXPECT_DOUBLE_EQ(hypervolume({{1, 1}}, {3, 3}), 4.0);
}

TEST(Hypervolume, SingleBox3d) {
  EXPECT_DOUBLE_EQ(hypervolume({{0, 0, 0}}, {2, 3, 4}), 24.0);
}

TEST(Hypervolume, TwoPointStaircase2d) {
  // (1,2) and (2,1) with ref (3,3): union area = 2*1 + 1*2 - 1*1 ... compute:
  // box1 = (3-1)(3-2)=2; box2 = (3-2)(3-1)=2; overlap=(3-2)(3-2)=1 -> 3.
  EXPECT_DOUBLE_EQ(hypervolume({{1, 2}, {2, 1}}, {3, 3}), 3.0);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const double base = hypervolume({{1, 1}}, {3, 3});
  EXPECT_DOUBLE_EQ(hypervolume({{1, 1}, {2, 2}}, {3, 3}), base);
}

TEST(Hypervolume, PointOutsideRefIgnored) {
  EXPECT_DOUBLE_EQ(hypervolume({{4, 4}}, {3, 3}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume({{1, 1}, {5, 0}}, {3, 3}),
                   hypervolume({{1, 1}}, {3, 3}) +
                       0.0);  // (5,0) has a coord beyond ref
}

TEST(Hypervolume, EmptySetIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, {1, 1}), 0.0);
}

TEST(Hypervolume, OneDimensional) {
  EXPECT_DOUBLE_EQ(hypervolume({{2.0}, {4.0}}, {10.0}), 8.0);
}

TEST(Hypervolume, ThreeDStaircase) {
  // Two incomparable boxes in 3-D with a computable overlap.
  // a=(0,1,1), b=(1,0,0), ref=(2,2,2):
  // vol(a)=2*1*1=2, vol(b)=1*2*2=4, overlap=max corner (1,1,1): 1*1*1=1 -> 5.
  EXPECT_DOUBLE_EQ(hypervolume({{0, 1, 1}, {1, 0, 0}}, {2, 2, 2}), 5.0);
}

TEST(Hypervolume, WfgMatches3dSweepOn4d) {
  // Embed a 3-D problem into 4-D with a constant last coordinate: volumes
  // scale by the last-axis extent, exercising the generic WFG recursion.
  const std::vector<Point> pts3 = {{0, 1, 1}, {1, 0, 0}, {0.5, 0.5, 2}};
  std::vector<Point> pts4;
  for (auto p : pts3) {
    p.push_back(1.0);
    pts4.push_back(p);
  }
  const double v3 = hypervolume(pts3, {2, 2, 3});
  const double v4 = hypervolume(pts4, {2, 2, 3, 3});
  EXPECT_NEAR(v4, v3 * 2.0, 1e-9);
}

TEST(Hypervolume, MonotoneInPoints) {
  rng::Rng rng(1);
  for (int t = 0; t < 30; ++t) {
    std::vector<Point> pts;
    for (int i = 0; i < 10; ++i)
      pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const Point ref = {1.2, 1.2, 1.2};
    const double v1 = hypervolume(pts, ref);
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const double v2 = hypervolume(pts, ref);
    EXPECT_GE(v2, v1 - 1e-12);
  }
}

TEST(Hypervolume, InvariantToPointOrder) {
  rng::Rng rng(2);
  std::vector<Point> pts;
  for (int i = 0; i < 12; ++i)
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  const Point ref = {1.1, 1.1, 1.1};
  const double v1 = hypervolume(pts, ref);
  rng.shuffle(pts);
  EXPECT_NEAR(hypervolume(pts, ref), v1, 1e-12);
}

class HviProperty : public ::testing::TestWithParam<int> {};

TEST_P(HviProperty, MatchesDefinitionOnRandomSets) {
  // HVI(y, P) must equal HV(P ∪ {y}) - HV(P) for random sets — this is the
  // identity the MC-EIPV estimator relies on.
  rng::Rng rng(GetParam());
  const int m = 2 + GetParam() % 2;  // 2-D and 3-D
  const Point ref(m, 1.2);
  std::vector<Point> pts;
  for (int i = 0; i < 15; ++i) {
    Point p(m);
    for (auto& v : p) v = rng.uniform();
    pts.push_back(std::move(p));
  }
  for (int t = 0; t < 40; ++t) {
    Point y(m);
    for (auto& v : y) v = rng.uniform(-0.1, 1.3);
    const double direct =
        hypervolume([&] {
          auto all = pts;
          all.push_back(y);
          return all;
        }(), ref) -
        hypervolume(pts, ref);
    EXPECT_NEAR(hypervolumeImprovement(y, pts, ref), direct, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HviProperty, ::testing::Range(1, 9));

TEST(HypervolumeImprovement, EmptyFrontIsFullBox) {
  EXPECT_DOUBLE_EQ(hypervolumeImprovement({1, 1}, {}, {3, 4}), 6.0);
}

TEST(HypervolumeImprovement, DominatedPointIsZero) {
  EXPECT_DOUBLE_EQ(hypervolumeImprovement({2, 2}, {{1, 1}}, {3, 3}), 0.0);
}

TEST(HypervolumeImprovement, OutsideRefIsZero) {
  EXPECT_DOUBLE_EQ(hypervolumeImprovement({3.5, 0.0}, {{1, 1}}, {3, 3}), 0.0);
}

TEST(ReferencePoint, BeyondAllPoints) {
  const auto ref = referencePoint({{1, 5}, {2, 3}}, 0.1);
  EXPECT_GT(ref[0], 2.0);
  EXPECT_GT(ref[1], 5.0);
}

TEST(ReferencePoint, DegenerateRangeStillStrict) {
  const auto ref = referencePoint({{1, 1}, {1, 2}}, 0.1);
  EXPECT_GT(ref[0], 1.0);  // zero-range dim still gets a strict margin
}

}  // namespace
}  // namespace cmmfo::pareto
