#include <gtest/gtest.h>

#include <cmath>

#include "pareto/adrs.h"

namespace cmmfo::pareto {
namespace {

TEST(Adrs, ZeroWhenLearnedEqualsReference) {
  const std::vector<Point> ref = {{1, 2}, {2, 1}};
  EXPECT_DOUBLE_EQ(adrs(ref, ref), 0.0);
  EXPECT_DOUBLE_EQ(adrs(ref, ref, AdrsDistance::kRelativeWorst), 0.0);
}

TEST(Adrs, ZeroWhenLearnedSupersetOfReference) {
  const std::vector<Point> ref = {{1, 2}, {2, 1}};
  const std::vector<Point> learned = {{1, 2}, {2, 1}, {5, 5}};
  EXPECT_DOUBLE_EQ(adrs(ref, learned), 0.0);
}

TEST(Adrs, EuclideanKnownValue) {
  const std::vector<Point> ref = {{0, 0}};
  const std::vector<Point> learned = {{3, 4}};
  EXPECT_DOUBLE_EQ(adrs(ref, learned), 5.0);
}

TEST(Adrs, AveragesOverReferencePoints) {
  const std::vector<Point> ref = {{0, 0}, {10, 10}};
  const std::vector<Point> learned = {{0, 1}, {10, 10}};
  EXPECT_DOUBLE_EQ(adrs(ref, learned), 0.5);  // (1 + 0) / 2
}

TEST(Adrs, TakesNearestLearnedPoint) {
  const std::vector<Point> ref = {{0, 0}};
  const std::vector<Point> learned = {{100, 100}, {0, 2}};
  EXPECT_DOUBLE_EQ(adrs(ref, learned), 2.0);
}

TEST(Adrs, EmptyLearnedIsInfinite) {
  const std::vector<Point> ref = {{1, 1}};
  EXPECT_TRUE(std::isinf(adrs(ref, {})));
}

TEST(Adrs, RelativeWorstIgnoresImprovements) {
  // A learned point better than the reference in every dim has distance 0.
  const std::vector<Point> ref = {{2.0, 2.0}};
  EXPECT_DOUBLE_EQ(adrs(ref, {{1.0, 1.0}}, AdrsDistance::kRelativeWorst), 0.0);
}

TEST(Adrs, RelativeWorstPicksWorstDimension) {
  const std::vector<Point> ref = {{2.0, 4.0}};
  // (3, 5): dim0 off by 50%, dim1 by 25% -> 0.5.
  EXPECT_DOUBLE_EQ(adrs(ref, {{3.0, 5.0}}, AdrsDistance::kRelativeWorst), 0.5);
}

TEST(Adrs, MoreLearnedPointsNeverHurts) {
  const std::vector<Point> ref = {{0, 0}, {5, 5}, {9, 1}};
  std::vector<Point> learned = {{1, 1}};
  const double a1 = adrs(ref, learned);
  learned.push_back({5, 5});
  const double a2 = adrs(ref, learned);
  EXPECT_LE(a2, a1);
}

TEST(NormalizeJointly, MapsToUnitBox) {
  const std::vector<std::vector<Point>> sets = {{{0, 10}, {10, 0}},
                                                {{5, 5}}};
  const auto norm = normalizeJointly(sets);
  EXPECT_DOUBLE_EQ(norm[0][0][0], 0.0);
  EXPECT_DOUBLE_EQ(norm[0][0][1], 1.0);
  EXPECT_DOUBLE_EQ(norm[1][0][0], 0.5);
  EXPECT_DOUBLE_EQ(norm[1][0][1], 0.5);
}

TEST(NormalizeJointly, SharedRangesAcrossSets) {
  // The max lives in set 2; set 1 must still normalize against it.
  const std::vector<std::vector<Point>> sets = {{{0.0}}, {{100.0}}};
  const auto norm = normalizeJointly(sets);
  EXPECT_DOUBLE_EQ(norm[0][0][0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1][0][0], 1.0);
}

TEST(NormalizeJointly, DegenerateDimension) {
  const std::vector<std::vector<Point>> sets = {{{3.0, 1.0}, {3.0, 2.0}}};
  const auto norm = normalizeJointly(sets);
  EXPECT_DOUBLE_EQ(norm[0][0][0], 0.0);  // constant dim maps to 0
  EXPECT_DOUBLE_EQ(norm[0][1][1], 1.0);
}

TEST(NormalizeJointly, EmptyInput) {
  const auto norm = normalizeJointly({});
  EXPECT_TRUE(norm.empty());
}

}  // namespace
}  // namespace cmmfo::pareto
