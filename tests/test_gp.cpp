#include <gtest/gtest.h>

#include <cmath>

#include "gp/ard_kernels.h"
#include "gp/gp_regressor.h"
#include "rng/rng.h"

namespace cmmfo::gp {
namespace {

GpFitOptions fastOpts() {
  GpFitOptions o;
  o.mle_restarts = 1;
  o.max_mle_iters = 40;
  return o;
}

TEST(GpRegressor, InterpolatesNoiseFreeData) {
  rng::Rng rng(1);
  Matern52Ard proto(1);
  GpFitOptions opts = fastOpts();
  opts.init_noise = 1e-3;
  GpRegressor gp(proto, opts);

  Dataset x;
  Vec y;
  for (double v = 0.0; v <= 1.0; v += 0.2) {
    x.push_back({v});
    y.push_back(std::sin(4.0 * v));
  }
  gp.fit(x, y, rng);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(gp.predict(x[i]).mean, y[i], 0.05);
}

TEST(GpRegressor, UncertaintyGrowsAwayFromData) {
  rng::Rng rng(2);
  GpRegressor gp(Matern52Ard(1), fastOpts());
  gp.fit({{0.0}, {0.2}, {0.4}}, {0.1, 0.5, 0.3}, rng);
  const double var_near = gp.predict({0.2}).var;
  const double var_far = gp.predict({3.0}).var;
  EXPECT_GT(var_far, var_near);
}

TEST(GpRegressor, PredictsReasonablyOnSmoothFunction) {
  rng::Rng rng(3);
  GpRegressor gp(Matern52Ard(1), fastOpts());
  Dataset x;
  Vec y;
  for (int i = 0; i <= 20; ++i) {
    const double v = i / 20.0;
    x.push_back({v});
    y.push_back(v * v + 0.5 * v);
  }
  gp.fit(x, y, rng);
  EXPECT_NEAR(gp.predict({0.33}).mean, 0.33 * 0.33 + 0.5 * 0.33, 0.02);
  EXPECT_NEAR(gp.predict({0.77}).mean, 0.77 * 0.77 + 0.5 * 0.77, 0.02);
}

TEST(GpRegressor, MleImprovesLikelihoodOverDefaults) {
  rng::Rng rng(4);
  Matern52Ard proto(1);
  proto.setLengthscale(0, 10.0);  // deliberately bad initial lengthscale

  Dataset x;
  Vec y;
  for (int i = 0; i < 15; ++i) {
    const double v = i / 15.0;
    x.push_back({v});
    y.push_back(std::sin(12.0 * v));
  }

  GpFitOptions no_opt = fastOpts();
  GpRegressor fixed(proto, no_opt);
  fixed.refitPosterior(x, y);  // posterior at the bad defaults
  const double lml_default = fixed.logMarginalLikelihood();

  GpRegressor fitted(proto, fastOpts());
  fitted.fit(x, y, rng);
  EXPECT_GT(fitted.logMarginalLikelihood(), lml_default);
}

TEST(GpRegressor, PredictionsInOriginalUnits) {
  rng::Rng rng(5);
  GpRegressor gp(Matern52Ard(1), fastOpts());
  // Targets with large offset and scale: standardization must be invisible.
  gp.fit({{0.0}, {0.5}, {1.0}}, {1000.0, 1500.0, 2000.0}, rng);
  EXPECT_NEAR(gp.predict({0.5}).mean, 1500.0, 50.0);
}

TEST(GpRegressor, VarianceIsNonNegativeEverywhere) {
  rng::Rng rng(6);
  GpRegressor gp(Matern52Ard(2), fastOpts());
  Dataset x;
  Vec y;
  for (int i = 0; i < 10; ++i) {
    x.push_back({rng.uniform(), rng.uniform()});
    y.push_back(rng.normal());
  }
  gp.fit(x, y, rng);
  for (int i = 0; i < 50; ++i)
    EXPECT_GE(gp.predict({rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0)}).var,
              0.0);
}

TEST(GpRegressor, HandlesDuplicateInputs) {
  rng::Rng rng(7);
  GpRegressor gp(Matern52Ard(1), fastOpts());
  // Identical inputs with different targets — only noise can explain this;
  // the fit must survive (jitter + noise floor) and average the targets.
  gp.fit({{0.5}, {0.5}, {0.5}, {0.1}}, {1.0, 2.0, 3.0, 0.0}, rng);
  EXPECT_NEAR(gp.predict({0.5}).mean, 2.0, 0.75);
}

TEST(GpRegressor, CopySemantics) {
  rng::Rng rng(8);
  GpRegressor gp(Matern52Ard(1), fastOpts());
  gp.fit({{0.0}, {1.0}}, {0.0, 1.0}, rng);
  GpRegressor copy = gp;
  EXPECT_DOUBLE_EQ(copy.predict({0.4}).mean, gp.predict({0.4}).mean);
  // Refitting the copy must not disturb the original.
  copy.refitPosterior({{0.0}, {1.0}}, {5.0, 6.0});
  EXPECT_NE(copy.predict({0.4}).mean, gp.predict({0.4}).mean);
}

TEST(GpRegressor, BatchPredictMatchesScalar) {
  rng::Rng rng(9);
  GpRegressor gp(Matern52Ard(1), fastOpts());
  gp.fit({{0.0}, {0.3}, {0.9}}, {1.0, -1.0, 0.5}, rng);
  const Dataset q = {{0.1}, {0.5}};
  const auto batch = gp.predictBatch(q);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0].mean, gp.predict(q[0]).mean);
  EXPECT_DOUBLE_EQ(batch[1].var, gp.predict(q[1]).var);
}

TEST(GpRegressor, NoiseFloorRespected) {
  rng::Rng rng(10);
  GpFitOptions opts = fastOpts();
  opts.min_noise = 1e-2;
  GpRegressor gp(Matern52Ard(1), opts);
  gp.fit({{0.0}, {0.5}, {1.0}}, {0.0, 1.0, 0.0}, rng);
  EXPECT_GE(gp.noiseStddev(), 1e-2 * 0.999);
}

TEST(GpRegressor, SinglePointFit) {
  rng::Rng rng(11);
  GpRegressor gp(Matern52Ard(1), fastOpts());
  gp.fit({{0.5}}, {3.0}, rng);
  // With one observation, the posterior mean at that point is the target.
  EXPECT_NEAR(gp.predict({0.5}).mean, 3.0, 1e-3);
}

}  // namespace
}  // namespace cmmfo::gp
