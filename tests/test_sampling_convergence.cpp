#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "exp/convergence.h"
#include "linalg/vec_ops.h"
#include "opt/sampling.h"

namespace cmmfo {
namespace {

std::vector<std::vector<double>> gridFeatures(int side) {
  std::vector<std::vector<double>> f;
  for (int i = 0; i < side; ++i)
    for (int j = 0; j < side; ++j)
      f.push_back({i / double(side - 1), j / double(side - 1)});
  return f;
}

TEST(Sampling, RandomSubsetDistinctAndBounded) {
  rng::Rng rng(1);
  const auto s = opt::randomSubset(50, 10, rng);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  const auto all = opt::randomSubset(5, 10, rng);
  EXPECT_EQ(all.size(), 5u);  // clamped to n
}

TEST(Sampling, MaximinSpreadsBetterThanRandom) {
  rng::Rng rng(2);
  const auto feats = gridFeatures(12);  // 144 points
  auto minPairDist = [&](const std::vector<std::size_t>& idx) {
    double best = 1e300;
    for (std::size_t a = 0; a < idx.size(); ++a)
      for (std::size_t b = a + 1; b < idx.size(); ++b)
        best = std::min(best, linalg::dist2(feats[idx[a]], feats[idx[b]]));
    return best;
  };
  double random_avg = 0.0, maximin_avg = 0.0;
  for (int t = 0; t < 10; ++t) {
    random_avg += minPairDist(opt::randomSubset(feats.size(), 8, rng));
    maximin_avg += minPairDist(opt::maximinSubset(feats, 8, rng));
  }
  EXPECT_GT(maximin_avg, random_avg * 1.5);
}

TEST(Sampling, MaximinDistinctIndices) {
  rng::Rng rng(3);
  const auto feats = gridFeatures(6);
  const auto s = opt::maximinSubset(feats, 12, rng);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 12u);
}

TEST(Sampling, StratifiedCoversAxisQuantiles) {
  rng::Rng rng(4);
  // 1-D features 0..99: a stratified pick of 10 must hit all deciles.
  std::vector<std::vector<double>> feats;
  for (int i = 0; i < 100; ++i) feats.push_back({i / 99.0});
  const auto s = opt::stratifiedSubset(feats, 10, rng);
  ASSERT_EQ(s.size(), 10u);
  std::set<int> deciles;
  for (std::size_t i : s) deciles.insert(static_cast<int>(i / 10));
  EXPECT_EQ(deciles.size(), 10u);
}

TEST(Sampling, StratifiedDistinct) {
  rng::Rng rng(5);
  const auto feats = gridFeatures(5);
  const auto s = opt::stratifiedSubset(feats, 25, rng);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 25u);
}

TEST(Optimizer, MaximinInitDesignRuns) {
  exp::BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  core::OptimizerOptions o;
  o.n_iter = 6;
  o.mc_samples = 8;
  o.max_candidates = 40;
  o.refit_every = 6;
  o.init_design = core::InitDesign::kMaximin;
  core::CorrelatedMfMoboOptimizer opt(ctx.space(), ctx.sim(), o);
  const auto res = opt.run();
  EXPECT_EQ(res.cs.size(), static_cast<std::size_t>(o.n_init_hls + o.n_iter));
}

TEST(Convergence, CurveTracksEverySample) {
  exp::BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  core::OptimizerOptions o;
  o.n_iter = 8;
  o.mc_samples = 8;
  o.max_candidates = 40;
  o.refit_every = 8;
  core::CorrelatedMfMoboOptimizer opt(ctx.space(), ctx.sim(), o);
  const auto res = opt.run();
  const auto curve = exp::convergenceCurve(ctx, res);
  ASSERT_EQ(curve.size(), res.cs.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].samples, static_cast<int>(i + 1));
    EXPECT_TRUE(std::isfinite(curve[i].adrs));
    EXPECT_GE(curve[i].hypervolume, 0.0);
    if (i > 0) {
      // Hypervolume of a growing set is monotone, as is spent tool time.
      // (ADRS is NOT strictly monotone: the learned set is Pareto-filtered,
      // and a dominating-but-farther proposal can evict a nearer one.)
      EXPECT_GE(curve[i].hypervolume, curve[i - 1].hypervolume - 1e-12);
      EXPECT_GE(curve[i].tool_seconds, curve[i - 1].tool_seconds);
    }
  }
  // The search must end at least as close to the front as it started.
  EXPECT_LE(curve.back().adrs, curve.front().adrs + 1e-12);
}

TEST(Convergence, AucSummarizesCurve) {
  std::vector<exp::ConvergencePoint> fast = {{1, 0, 0.5, 0}, {2, 0, 0.1, 0}};
  std::vector<exp::ConvergencePoint> slow = {{1, 0, 0.5, 0}, {2, 0, 0.4, 0}};
  EXPECT_LT(exp::adrsAuc(fast), exp::adrsAuc(slow));
}

TEST(WeightedSumBo, RunsAndFindsReasonablePoints) {
  exp::BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  baselines::WeightedSumBoMethod ws(8, 12);
  const auto out = ws.run(ctx.space(), ctx.sim(), 11);
  EXPECT_EQ(out.tool_runs, 20);
  EXPECT_GT(out.tool_seconds, 0.0);
  const double adrs = ctx.adrsOf(out.selected);
  EXPECT_TRUE(std::isfinite(adrs));
  // Scalarization drives toward ONE region of the front; it should lag the
  // Pareto-aware optimizer but still beat garbage.
  EXPECT_LT(adrs, 1.0);
}

TEST(WeightedSumBo, CustomWeightsShiftFocus) {
  exp::BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  baselines::WeightedSumBoMethod delay_heavy(8, 10, {0.05, 0.9, 0.05});
  baselines::WeightedSumBoMethod power_heavy(8, 10, {0.9, 0.05, 0.05});
  const auto a = delay_heavy.run(ctx.space(), ctx.sim(), 13);
  const auto b = power_heavy.run(ctx.space(), ctx.sim(), 13);
  // Best achieved delay under the delay-heavy weighting should not be worse
  // than under the power-heavy one.
  auto bestDelay = [&](const baselines::DseOutcome& out) {
    double best = 1e300;
    for (std::size_t i : out.selected)
      if (ctx.groundTruth().valid(i))
        best = std::min(best, ctx.groundTruth().implObjectives(i)[1]);
    return best;
  };
  EXPECT_LE(bestDelay(a), bestDelay(b) * 1.5);
}

}  // namespace
}  // namespace cmmfo
