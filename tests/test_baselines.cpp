#include <gtest/gtest.h>

#include <cmath>

#include "baselines/methods.h"
#include "bench_suite/benchmarks.h"
#include "exp/harness.h"

namespace cmmfo::baselines {
namespace {

TEST(Mlp, FitsLinearFunction) {
  rng::Rng rng(1);
  MlpOptions opts;
  opts.epochs = 1500;
  Mlp net(2, opts);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    x.push_back({rng.uniform(), rng.uniform()});
    y.push_back(3.0 * x.back()[0] - 2.0 * x.back()[1] + 1.0);
  }
  net.fit(x, y, rng);
  double se = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = net.predict(x[i]) - y[i];
    se += e * e;
  }
  EXPECT_LT(std::sqrt(se / x.size()), 0.15);
}

TEST(Mlp, FitsNonlinearFunction) {
  rng::Rng rng(2);
  MlpOptions opts;
  opts.epochs = 3000;
  Mlp net(1, opts);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double v = i / 49.0;
    x.push_back({v});
    y.push_back(std::sin(6.0 * v));
  }
  net.fit(x, y, rng);
  EXPECT_LT(net.trainingLoss(), 0.05);
}

TEST(Mlp, HandlesLargeTargetScale) {
  rng::Rng rng(3);
  Mlp net(1);
  std::vector<std::vector<double>> x = {{0.0}, {0.5}, {1.0}};
  std::vector<double> y = {1e4, 2e4, 3e4};
  net.fit(x, y, rng);
  EXPECT_NEAR(net.predict({0.5}), 2e4, 2.5e3);
}

TEST(Gbrt, FitsStepFunction) {
  rng::Rng rng(4);
  Gbrt model;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    const double v = i / 59.0;
    x.push_back({v});
    y.push_back(v < 0.5 ? 1.0 : 5.0);
  }
  model.fit(x, y, rng);
  EXPECT_NEAR(model.predict({0.2}), 1.0, 0.3);
  EXPECT_NEAR(model.predict({0.8}), 5.0, 0.3);
}

TEST(Gbrt, FitsAdditiveFunction) {
  rng::Rng rng(5);
  GbrtOptions opts;
  opts.num_trees = 300;
  Gbrt model(opts);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    x.push_back({rng.uniform(), rng.uniform()});
    y.push_back(2.0 * x.back()[0] + std::sin(5.0 * x.back()[1]));
  }
  model.fit(x, y, rng);
  double se = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = model.predict(x[i]) - y[i];
    se += e * e;
  }
  EXPECT_LT(std::sqrt(se / x.size()), 0.25);
}

TEST(Gbrt, DepthZeroIsConstantModel) {
  rng::Rng rng(6);
  GbrtOptions opts;
  opts.max_depth = 0;
  Gbrt model(opts);
  std::vector<std::vector<double>> x = {{0.0}, {1.0}};
  std::vector<double> y = {0.0, 10.0};
  model.fit(x, y, rng);
  EXPECT_NEAR(model.predict({0.0}), model.predict({1.0}), 1e-9);
}

struct MethodsFixture {
  MethodsFixture() : ctx(bench_suite::makeSpmvCrs()) {}
  exp::BenchmarkContext ctx;
};

TEST(Methods, AnnProposesValidIndices) {
  MethodsFixture f;
  MlpOptions mo;
  mo.epochs = 300;  // keep the test quick
  AnnMethod ann(mo);
  const DseOutcome out = ann.run(f.ctx.space(), f.ctx.sim(), 9);
  EXPECT_FALSE(out.selected.empty());
  for (std::size_t i : out.selected) EXPECT_LT(i, f.ctx.space().size());
  EXPECT_GT(out.tool_seconds, 0.0);
  EXPECT_EQ(out.tool_runs, 48);
}

TEST(Methods, BtProposesValidIndices) {
  MethodsFixture f;
  BtMethod bt;
  const DseOutcome out = bt.run(f.ctx.space(), f.ctx.sim(), 9);
  EXPECT_FALSE(out.selected.empty());
  for (std::size_t i : out.selected) EXPECT_LT(i, f.ctx.space().size());
}

TEST(Methods, Dac19CostsRoughlySevenTimesAnn) {
  // Table I: DAC19's running time is (3+11)/2 = 7x the single-set methods.
  MethodsFixture f;
  MlpOptions mo;
  mo.epochs = 50;
  AnnMethod ann(mo);
  Dac19Method dac(7);
  const double t_ann = ann.run(f.ctx.space(), f.ctx.sim(), 3).tool_seconds;
  const double t_dac = dac.run(f.ctx.space(), f.ctx.sim(), 3).tool_seconds;
  EXPECT_NEAR(t_dac / t_ann, 7.0, 1.5);
}

TEST(Methods, RandomSelectsObservedPareto) {
  MethodsFixture f;
  RandomMethod random(30);
  const DseOutcome out = random.run(f.ctx.space(), f.ctx.sim(), 5);
  EXPECT_FALSE(out.selected.empty());
  EXPECT_LE(out.selected.size(), 30u);
  EXPECT_EQ(out.tool_runs, 30);
}

TEST(Methods, OursAndFpl18UseConfiguredModels) {
  core::OptimizerOptions oo;
  OursMethod ours(oo);
  EXPECT_EQ(ours.options().surrogate.mf, core::MfKind::kNonlinear);
  EXPECT_EQ(ours.options().surrogate.obj, core::ObjModelKind::kCorrelated);
  EXPECT_EQ(ours.name(), "Ours");
  EXPECT_EQ(Fpl18Method().name(), "FPL18");
  EXPECT_EQ(AnnMethod().name(), "ANN");
  EXPECT_EQ(BtMethod().name(), "BT");
  EXPECT_EQ(Dac19Method().name(), "DAC19");
}

TEST(Methods, InvalidDesignsDoNotPoisonAnn) {
  // stencil3d has invalid high-utilization configs; ANN training must not
  // produce NaNs from the 10x-worst penalty rows.
  exp::BenchmarkContext ctx(bench_suite::makeStencil3d());
  MlpOptions mo;
  mo.epochs = 200;
  AnnMethod ann(mo);
  const DseOutcome out = ann.run(ctx.space(), ctx.sim(), 17);
  EXPECT_FALSE(out.selected.empty());
  const double adrs = ctx.adrsOf(out.selected);
  EXPECT_TRUE(std::isfinite(adrs));
}

}  // namespace
}  // namespace cmmfo::baselines
