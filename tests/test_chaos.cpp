// Crash-only supervision and robustness tests: CRC-framed journal
// integrity, corrupt-tail quarantine + rollback, supervised restart to
// bit-identical trajectories, watchdog stall/heartbeat reporting, admission
// control, protocol fuzzing, lenient daemon resume, numerical self-healing
// (jitter escalation, GBRT fallback, forced dense refit), and bounded-LRU
// eval-cache eviction under concurrent multi-namespace access.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign_stepper.h"
#include "core/checkpoint.h"
#include "core/optimizer.h"
#include "core/surrogate.h"
#include "gp/posterior_state.h"
#include "linalg/matrix.h"
#include "rng/rng.h"
#include "runtime/eval_cache.h"
#include "server/campaign.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/crc32c.h"
#include "util/framed_log.h"
#include "util/json.h"

namespace cmmfo {
namespace {

namespace fs = std::filesystem;
using server::CampaignSpec;
using server::CampaignState;
using server::OptimizationServer;
using server::ServerOptions;

core::OptimizerOptions fastOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

CampaignSpec fastSpec(const std::string& id, std::uint64_t seed,
                      std::uint64_t sim_seed, int n_iter = 6) {
  CampaignSpec spec;
  spec.id = id;
  spec.benchmark = "spmv_crs";
  spec.sim_seed = sim_seed;
  spec.opts = fastOpts();
  spec.opts.seed = seed;
  spec.opts.n_iter = n_iter;
  spec.opts.batch_size = 2;
  return spec;
}

/// Fault-free isolated run of a spec — the golden every supervised /
/// chaos-injected / resumed execution must reproduce bit-for-bit.
core::OptimizeResult runIsolated(const CampaignSpec& spec) {
  const auto space = server::makeSpaceFor(spec.benchmark);
  const auto bm = server::makeBenchmarkFor(spec.benchmark);
  const auto sim = server::makeSimFor(spec, *bm);
  core::CampaignStepper stepper(*space, *sim, spec.opts);
  while (!stepper.done()) stepper.step();
  return stepper.finish();
}

void expectSameTrajectory(const core::OptimizeResult& a,
                          const core::OptimizeResult& b) {
  ASSERT_EQ(a.cs.size(), b.cs.size());
  for (std::size_t i = 0; i < a.cs.size(); ++i) {
    EXPECT_EQ(a.cs[i].config, b.cs[i].config) << "cs entry " << i;
    EXPECT_EQ(a.cs[i].fidelity, b.cs[i].fidelity) << "cs entry " << i;
    EXPECT_DOUBLE_EQ(a.cs[i].report.tool_seconds, b.cs[i].report.tool_seconds);
  }
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].config, b.iterations[i].config) << "iter " << i;
    EXPECT_EQ(a.iterations[i].fidelity, b.iterations[i].fidelity);
    EXPECT_DOUBLE_EQ(a.iterations[i].peipv, b.iterations[i].peipv);
  }
  EXPECT_EQ(a.picks_per_fidelity, b.picks_per_fidelity);
  EXPECT_DOUBLE_EQ(a.tool_seconds, b.tool_seconds);
  EXPECT_EQ(a.tool_runs, b.tool_runs);
}

std::string readAll(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ----------------------------------------------------------------- CRC ----

TEST(ChaosCrc32c, KnownAnswerAndChaining) {
  // The canonical CRC-32C check value (iSCSI test vector).
  const char msg[] = "123456789";
  EXPECT_EQ(util::crc32c(msg, 9), 0xE3069283u);
  EXPECT_EQ(util::crc32c(msg, 0), 0u);
  // Seed chaining: crc(b | crc(a)) == crc(a+b).
  EXPECT_EQ(util::crc32c(msg + 4, 5, util::crc32c(msg, 4)),
            util::crc32c(msg, 9));
  // Single-bit sensitivity.
  const char flipped[] = "123456788";
  EXPECT_NE(util::crc32c(flipped, 9), util::crc32c(msg, 9));
}

// ---------------------------------------------------------- framed log ----

TEST(ChaosFramedLog, RoundTripTornTailAndQuarantine) {
  const fs::path dir = freshDir("cmmfo_chaos_framed");
  const std::string path = (dir / "log.cmj").string();

  const std::vector<std::string> payloads = {"first", "second record",
                                             std::string(1000, 'x')};
  for (const auto& p : payloads) ASSERT_TRUE(util::appendFrame(path, p));

  util::FramedReadResult r = util::readFrames(path);
  ASSERT_EQ(r.frames.size(), 3u);
  EXPECT_EQ(r.frames[1], "second record");
  EXPECT_FALSE(r.corrupt_tail);
  EXPECT_EQ(r.intact_bytes, fs::file_size(path));

  // A torn append (half a frame) is detected, and everything before it
  // still reads intact.
  const std::string torn = util::encodeFrame("never finished");
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(torn.data(), static_cast<std::streamsize>(torn.size() / 2));
  }
  r = util::readFrames(path);
  EXPECT_EQ(r.frames.size(), 3u);
  EXPECT_TRUE(r.corrupt_tail);
  EXPECT_FALSE(r.tail_reason.empty());

  // Quarantine preserves the corrupt bytes before the log is truncated.
  const std::string qpath = path + ".quarantine";
  ASSERT_TRUE(util::quarantineTail(path, r.intact_bytes, r.frames, qpath));
  EXPECT_EQ(fs::file_size(qpath), torn.size() / 2);
  r = util::readFrames(path);
  EXPECT_EQ(r.frames.size(), 3u);
  EXPECT_FALSE(r.corrupt_tail);

  // A flipped payload byte invalidates exactly the frames from it onward.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12 + 2);  // inside the first frame's payload
    f.put('X');
  }
  r = util::readFrames(path);
  EXPECT_EQ(r.frames.size(), 0u);
  EXPECT_TRUE(r.corrupt_tail);

  fs::remove_all(dir);
}

// ---------------------------------------------- framed checkpoint load ----

TEST(ChaosCheckpoint, CorruptTailRollsBackToPreviousGeneration) {
  const fs::path dir = freshDir("cmmfo_chaos_ckpt");
  const std::string path = (dir / "c.ckpt.json").string();

  core::CheckpointState st;
  st.fingerprint = 0xfeedULL;
  for (int round = 1; round <= 3; ++round) {
    st.next_round = round;
    st.t = round * 2;
    ASSERT_TRUE(core::saveCheckpointFramed(path, st));
  }

  // Clean load returns the newest generation.
  core::CheckpointState got;
  core::JournalLoadInfo info;
  ASSERT_TRUE(core::loadCheckpointAny(path, &got, nullptr, &info));
  EXPECT_TRUE(info.framed);
  EXPECT_FALSE(info.rolled_back);
  EXPECT_EQ(got.next_round, 3);

  // Corrupt the newest frame's payload (last byte of the file) — the load
  // must quarantine the tail and roll back to generation 2.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('#');
  }
  std::string err;
  ASSERT_TRUE(core::loadCheckpointAny(path, &got, &err, &info)) << err;
  EXPECT_TRUE(info.rolled_back);
  EXPECT_EQ(got.next_round, 2);
  EXPECT_EQ(got.t, 4);
  EXPECT_FALSE(info.note.empty());
  ASSERT_FALSE(info.quarantine_path.empty());
  EXPECT_TRUE(fs::exists(info.quarantine_path));

  // The repair is durable: the next load is clean at generation 2.
  ASSERT_TRUE(core::loadCheckpointAny(path, &got, nullptr, &info));
  EXPECT_FALSE(info.rolled_back);
  EXPECT_EQ(got.next_round, 2);

  // Plain single-JSON journals (the CLI's historical format) still load.
  ASSERT_TRUE(core::saveCheckpoint(path, st));
  ASSERT_TRUE(core::loadCheckpointAny(path, &got, nullptr, &info));
  EXPECT_FALSE(info.framed);
  EXPECT_EQ(got.next_round, 3);

  fs::remove_all(dir);
}

// ---------------------------------------------------------- supervision ----

TEST(ChaosSupervision, RestartedCampaignMatchesFaultFreeGolden) {
  const fs::path dir = freshDir("cmmfo_chaos_restart");
  const CampaignSpec spec = fastSpec("rc", 7, 42, 6);
  const auto golden = runIsolated(spec);

  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 1;
  opts.journal_dir = dir.string();
  opts.max_restarts = 64;
  opts.restart_backoff_ms = 1;
  opts.chaos.seed = 1234;
  opts.chaos.step_fault_prob = 0.5;
  opts.chaos.only_id = "rc";
  OptimizationServer srv(opts);
  srv.start();
  std::string err;
  ASSERT_TRUE(srv.submit(spec, &err)) << err;
  srv.drain();

  const auto c = srv.campaign("rc");
  ASSERT_NE(c, nullptr);
  const auto snap = c->snapshot();
  EXPECT_EQ(snap.state, CampaignState::kDone);
  // The seeded coin at p=0.5 must have hit at least once across the run's
  // step attempts, so this really exercised restart-from-checkpoint.
  EXPECT_GE(snap.restarts, 1);
  EXPECT_EQ(srv.stats().supervision.restarts,
            static_cast<std::size_t>(snap.restarts));

  const auto result = c->result();
  ASSERT_TRUE(result.has_value());
  expectSameTrajectory(golden, *result);

  // Every restart left a diagnostic record in the campaign's journal.
  const std::string diag = readAll(dir / "rc.diag.jsonl");
  EXPECT_NE(diag.find("\"type\":\"failure\""), std::string::npos);
  EXPECT_NE(diag.find("\"action\":\"restart\""), std::string::npos);
  srv.stop();
  fs::remove_all(dir);
}

TEST(ChaosSupervision, MaxRestartsParksVictimFailedBystanderUntouched) {
  const fs::path dir = freshDir("cmmfo_chaos_victim");
  const CampaignSpec victim = fastSpec("victim", 7, 42, 6);
  const CampaignSpec bystander = fastSpec("bystander", 9, 43, 6);
  const auto golden = runIsolated(bystander);

  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 2;
  opts.journal_dir = dir.string();
  opts.max_restarts = 2;
  opts.restart_backoff_ms = 1;
  opts.chaos.seed = 99;
  opts.chaos.step_fault_prob = 1.0;  // the victim can never take a step
  opts.chaos.only_id = "victim";
  OptimizationServer srv(opts);
  srv.start();
  std::string err;
  ASSERT_TRUE(srv.submit(victim, &err)) << err;
  ASSERT_TRUE(srv.submit(bystander, &err)) << err;
  srv.drain();

  // Victim: initial attempt + max_restarts supervised retries, then parked
  // failed with the diagnostic error surfaced in its status.
  const auto v = srv.campaign("victim")->snapshot();
  EXPECT_EQ(v.state, CampaignState::kFailed);
  EXPECT_EQ(v.restarts, 2);
  EXPECT_NE(v.error.find("chaos"), std::string::npos);
  const std::string diag = readAll(dir / "victim.diag.jsonl");
  EXPECT_NE(diag.find("\"action\":\"restart\""), std::string::npos);
  EXPECT_NE(diag.find("\"action\":\"failed\""), std::string::npos);
  // Failure is terminal in the journal too: a final marker exists, so a
  // --resume daemon will not resurrect a permanently failed campaign.
  EXPECT_TRUE(fs::exists(dir / "victim.final.json"));

  // Bystander: completely unaffected, bit-identical to its golden.
  const auto b = srv.campaign("bystander");
  EXPECT_EQ(b->snapshot().state, CampaignState::kDone);
  EXPECT_EQ(b->snapshot().restarts, 0);
  const auto result = b->result();
  ASSERT_TRUE(result.has_value());
  expectSameTrajectory(golden, *result);

  srv.stop();
  fs::remove_all(dir);
}

// ------------------------------------------------------------- watchdog ----

TEST(ChaosWatchdog, StallAndHeartbeatEventsStream) {
  const CampaignSpec spec = fastSpec("wd", 7, 42, 4);
  const auto golden = runIsolated(spec);

  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 1;
  opts.step_deadline_seconds = 0.004;
  opts.heartbeat_seconds = 0.02;
  opts.chaos.seed = 5;
  opts.chaos.step_hang_prob = 1.0;  // every step sleeps 25ms: a "hung eval"
  opts.chaos.hang_ms = 25;
  OptimizationServer srv(opts);

  std::mutex mu;
  std::vector<std::string> events;
  const int token = srv.subscribe([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(line);
  });
  srv.start();
  std::string err;
  ASSERT_TRUE(srv.submit(spec, &err)) << err;
  srv.drain();
  srv.stop();
  srv.unsubscribe(token);

  int stalls = 0, heartbeats = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& line : events) {
      util::Json j;
      std::string jerr;
      ASSERT_TRUE(util::parseJson(line, &j, &jerr)) << line;
      const std::string ev = j.strOr("event", "");
      if (ev == "stall") {
        ++stalls;
        EXPECT_EQ(j.strOr("id", ""), "wd");
      }
      if (ev == "heartbeat") ++heartbeats;
    }
  }
  // Every step overran the 4ms deadline by construction; the watchdog must
  // have reported stalls and kept its heartbeat going.
  EXPECT_GE(stalls, 1);
  EXPECT_GE(heartbeats, 1);
  EXPECT_GE(srv.stats().supervision.stalled_steps, 1u);

  // Hang injection (unlike fault injection) perturbs only wall time: the
  // campaign still completes bit-identically to its golden.
  const auto c = srv.campaign("wd");
  EXPECT_EQ(c->snapshot().state, CampaignState::kDone);
  const auto result = c->result();
  ASSERT_TRUE(result.has_value());
  expectSameTrajectory(golden, *result);
}

// ------------------------------------------------------------ admission ----

TEST(ChaosAdmission, SubmitsBeyondCapacityAreShedAndRetryable) {
  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 1;
  opts.max_campaigns = 2;
  OptimizationServer srv(opts);
  srv.start();
  std::string err;
  ASSERT_TRUE(srv.submit(fastSpec("a", 5, 21, 6), &err)) << err;
  ASSERT_TRUE(srv.submit(fastSpec("b", 9, 22, 6), &err)) << err;

  // Third submit while both are live: refused with the load-shed marker
  // (a "retry later", distinct from a bad-spec rejection).
  bool shed = false;
  EXPECT_FALSE(srv.submit(fastSpec("c", 3, 23, 4), &err, &shed));
  EXPECT_TRUE(shed);
  EXPECT_NE(err.find("capacity"), std::string::npos);

  // Same refusal at the protocol layer: an explicit {"shed":true} frame.
  bool quit = false;
  int sub_token = -1;
  const std::string reply = srv.handleLine(
      "{\"op\":\"submit\",\"id\":\"c\",\"benchmark\":\"spmv_crs\","
      "\"seed\":3,\"sim_seed\":23,\"n_iter\":4,\"batch_size\":2,"
      "\"mc_samples\":16,\"max_candidates\":60,\"refit_every\":5,"
      "\"mle_restarts\":0,\"max_mle_iters\":25}",
      nullptr, &quit, &sub_token);
  util::Json j;
  std::string jerr;
  ASSERT_TRUE(util::parseJson(reply, &j, &jerr)) << reply;
  const util::Json* sj = j.find("shed");
  ASSERT_NE(sj, nullptr);
  EXPECT_TRUE(sj->kind == util::Json::kBool && sj->b);
  EXPECT_EQ(srv.stats().supervision.load_shed, 2u);

  // Once capacity frees up the same spec is admitted.
  srv.drain();
  shed = false;
  ASSERT_TRUE(srv.submit(fastSpec("c", 3, 23, 4), &err, &shed)) << err;
  EXPECT_FALSE(shed);
  srv.drain();
  EXPECT_EQ(srv.campaign("c")->snapshot().state, CampaignState::kDone);
  srv.stop();
}

// ------------------------------------------------------------- protocol ----

TEST(ChaosProtocol, OversizedLinesGetErrorRepliesNotDisconnects) {
  ServerOptions opts;
  opts.workers = 1;
  opts.slots = 1;
  opts.max_line_bytes = 200;
  OptimizationServer srv(opts);
  srv.start();

  std::stringstream in;
  in << "{\"op\":\"list\",\"pad\":\"" << std::string(400, 'x') << "\"}\n"
     << "{\"op\":\"list\"}\n"
     << "{\"op\":\"shutdown\"}\n";
  std::stringstream out;
  srv.serveStdio(in, out);
  srv.stop();

  std::vector<std::string> lines;
  for (std::string l; std::getline(out, l);) lines.push_back(l);
  ASSERT_GE(lines.size(), 3u);
  // Oversized request: an error frame naming the limit, connection kept.
  EXPECT_NE(lines[0].find("max_line_bytes"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":false"), std::string::npos);
  // The next, well-sized request on the same stream still succeeds.
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos);
}

TEST(ChaosProtocol, FuzzCorpusNeverKillsTheDaemonAndRepliesStayWellFormed) {
  // Seeded malformed-frame corpus: random binary (invalid UTF-8 included),
  // truncated JSON prefixes of a real submit, structurally wrong payloads.
  std::mt19937_64 rng(0xC0FFEEULL);
  const std::string valid_submit =
      "{\"op\":\"submit\",\"id\":\"p1\",\"benchmark\":\"spmv_crs\","
      "\"seed\":7,\"sim_seed\":11,\"n_iter\":4,\"batch_size\":2}";
  std::vector<std::string> corpus = {
      "{",
      "}",
      "[1,2,3]",
      "42",
      "\"just a string\"",
      "null",
      "{\"op\":7}",
      "{\"op\":null}",
      "{\"op\":\"\"}",
      "{\"op\":\"submit\"}",
      "{\"op\":\"status\"}",
      "{\"op\":\"no_such_op\",\"id\":\"x\"}",
      "{\"op\":\"submit\",\"id\":\"../escape\",\"benchmark\":\"spmv_crs\"}",
      std::string("\xff\xfe\xc3\x28\xa0\xa1", 6),  // invalid UTF-8 bytes
  };
  // Truncated prefixes of a valid request (every proper prefix leaves the
  // object unterminated).
  for (std::size_t n = 1; n < valid_submit.size(); n += 13)
    corpus.push_back(valid_submit.substr(0, n));
  // Random garbage lines, newline-free.
  for (int i = 0; i < 120; ++i) {
    std::string line;
    const std::size_t len = 1 + rng() % 90;
    for (std::size_t k = 0; k < len; ++k) {
      char c = static_cast<char>(1 + rng() % 255);
      if (c == '\n' || c == '\r') c = '?';
      line.push_back(c);
    }
    corpus.push_back(line);
  }

  ServerOptions opts;
  opts.workers = 1;
  opts.slots = 1;
  OptimizationServer srv(opts);
  srv.start();
  std::stringstream in;
  for (const std::string& line : corpus) in << line << "\n";
  in << "{\"op\":\"stats\"}\n"
     << "{\"op\":\"shutdown\"}\n";
  std::stringstream out;
  srv.serveStdio(in, out);
  srv.stop();

  std::size_t replies = 0, well_formed = 0, ok_true = 0;
  for (std::string line; std::getline(out, line);) {
    ++replies;
    util::Json j;
    std::string jerr;
    if (!util::parseJson(line, &j, &jerr)) continue;
    ++well_formed;
    if (const util::Json* ok = j.find("ok");
        ok != nullptr && ok->kind == util::Json::kBool && ok->b)
      ++ok_true;
  }
  // One reply per corpus line plus stats plus shutdown, every single one
  // valid JSON; the daemon survived to answer the trailing stats request.
  EXPECT_EQ(replies, corpus.size() + 2);
  EXPECT_EQ(well_formed, replies);
  EXPECT_EQ(ok_true, 2u);  // stats + shutdown succeed; every fuzz line fails
}

// ----------------------------------------------------------- resume -------

TEST(ChaosResume, MissingOrEmptyJournalFilesRequeueFromSpec) {
  const fs::path dir = freshDir("cmmfo_chaos_requeue");
  const CampaignSpec ra = fastSpec("ra", 7, 42, 6);
  const CampaignSpec rb = fastSpec("rb", 9, 43, 6);
  const auto golden_a = runIsolated(ra);
  const auto golden_b = runIsolated(rb);

  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 2;
  opts.journal_dir = dir.string();
  {
    OptimizationServer first(opts);
    first.start();
    std::string err;
    ASSERT_TRUE(first.submit(ra, &err)) << err;
    ASSERT_TRUE(first.submit(rb, &err)) << err;
    first.drain();
    first.stop();
  }

  // ra: final marker and checkpoint both gone (e.g. a partial disk wipe).
  fs::remove(dir / "ra.final.json");
  fs::remove(dir / "ra.ckpt.json");
  // rb: final marker and checkpoint both truncated to empty (torn writes).
  std::ofstream(dir / "rb.final.json", std::ios::trunc).close();
  std::ofstream(dir / "rb.ckpt.json", std::ios::trunc).close();

  // A resuming daemon must re-queue both from their specs — with warnings,
  // not a daemon abort — and reproduce the goldens from cold starts.
  ServerOptions ropts = opts;
  ropts.resume = true;
  OptimizationServer second(ropts);
  second.start();
  second.drain();

  for (const auto* pair :
       {&ra, &rb}) {
    const auto c = second.campaign(pair->id);
    ASSERT_NE(c, nullptr) << pair->id;
    EXPECT_EQ(c->snapshot().state, CampaignState::kDone) << pair->id;
  }
  expectSameTrajectory(golden_a, *second.campaign("ra")->result());
  expectSameTrajectory(golden_b, *second.campaign("rb")->result());
  // The unreadable final marker left a logged warning.
  EXPECT_NE(readAll(dir / "rb.diag.jsonl").find("resume_warning"),
            std::string::npos);
  second.stop();
  fs::remove_all(dir);
}

TEST(ChaosResume, CorruptSpecIsSkippedWithWarningNotDaemonAbort) {
  const fs::path dir = freshDir("cmmfo_chaos_badspec");
  const CampaignSpec good = fastSpec("good", 9, 43, 6);
  const auto golden = runIsolated(good);

  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 2;
  opts.journal_dir = dir.string();
  {
    OptimizationServer first(opts);
    first.start();
    std::string err;
    ASSERT_TRUE(first.submit(fastSpec("bad", 7, 42, 6), &err)) << err;
    ASSERT_TRUE(first.submit(good, &err)) << err;
    first.drain();
    first.stop();
  }
  fs::remove(dir / "bad.final.json");
  fs::remove(dir / "good.final.json");
  {
    std::ofstream out(dir / "bad.spec.json", std::ios::trunc);
    out << "{{{ this is not a campaign spec\n";
  }

  ServerOptions ropts = opts;
  ropts.resume = true;
  OptimizationServer second(ropts);
  second.start();  // must not throw
  second.drain();

  EXPECT_EQ(second.campaign("bad"), nullptr);
  EXPECT_NE(readAll(dir / "bad.diag.jsonl").find("resume_warning"),
            std::string::npos);
  const auto c = second.campaign("good");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->snapshot().state, CampaignState::kDone);
  expectSameTrajectory(golden, *c->result());
  second.stop();
  fs::remove_all(dir);
}

TEST(ChaosResume, CorruptCheckpointTailRollsBackAndMatchesGolden) {
  const fs::path dir = freshDir("cmmfo_chaos_torn");
  const CampaignSpec spec = fastSpec("ct", 7, 42, 8);
  const auto golden = runIsolated(spec);

  ServerOptions opts;
  opts.workers = 2;
  opts.slots = 1;
  opts.journal_dir = dir.string();
  {
    OptimizationServer first(opts);
    first.start();
    std::string err;
    ASSERT_TRUE(first.submit(spec, &err)) << err;
    // Kill the daemon mid-flight with at least one round checkpointed.
    while (first.campaign("ct")->snapshot().rounds < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    first.stop();
  }
  fs::remove(dir / "ct.final.json");  // in case the campaign raced to done
  // Torn write: garbage appended after the last intact frame.
  {
    const std::string garbage("CMJ1\x20\x00\x00\x00 torn garbage frame", 28);
    std::ofstream out(dir / "ct.ckpt.json", std::ios::binary | std::ios::app);
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }

  ServerOptions ropts = opts;
  ropts.resume = true;
  OptimizationServer second(ropts);
  second.start();
  second.drain();

  const auto c = second.campaign("ct");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->snapshot().state, CampaignState::kDone);
  const auto result = c->result();
  ASSERT_TRUE(result.has_value());
  // Rolled back to the last intact checkpoint, then replayed forward —
  // bit-identical to the never-crashed run.
  expectSameTrajectory(golden, *result);
  // The corrupt tail was preserved as evidence, and the rollback logged.
  EXPECT_TRUE(fs::exists(dir / "ct.ckpt.json.quarantine"));
  EXPECT_NE(readAll(dir / "ct.diag.jsonl").find("\"type\":\"journal\""),
            std::string::npos);
  second.stop();
  fs::remove_all(dir);
}

// ---------------------------------------------- numerical self-healing ----

TEST(ChaosRecovery, JitterEscalationRescuesIndefiniteGram) {
  gp::PosteriorState st;
  // Indefinite "Gram" (eigenvalues 3 and -1): the standard jitter ladder
  // tops out near 1e-1 and cannot rescue it; the escalated ladder can.
  linalg::Matrix bad(2, 2);
  bad(0, 0) = 1.0;
  bad(0, 1) = 2.0;
  bad(1, 0) = 2.0;
  bad(1, 1) = 1.0;
  ASSERT_TRUE(st.refitDense(bad));
  EXPECT_EQ(st.jitter_escalations, 1u);
  // Above anything the standard ladder (tops out near 1e-1) could reach.
  EXPECT_GE(st.last_escalation_jitter, 1.0);

  // A healthy Gram goes through the standard ladder without counting.
  linalg::Matrix good(2, 2);
  good(0, 0) = 2.0;
  good(0, 1) = 0.5;
  good(1, 0) = 0.5;
  good(1, 1) = 2.0;
  ASSERT_TRUE(st.refitDense(good));
  EXPECT_EQ(st.jitter_escalations, 1u);

  // Non-finite entries are beyond any jitter: the escalated ladder reports
  // failure instead of faking a factorization.
  bad(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(st.refitDense(bad));
}

/// Synthetic 3-fidelity 2-objective observations (same construction as the
/// surrogate unit tests).
std::vector<core::FidelityObs> syntheticObs(int n0, int n1, int n2,
                                            rng::Rng& rng) {
  std::vector<core::FidelityObs> obs(3);
  const auto fill = [&](core::FidelityObs& o, int n, int level) {
    o.y = linalg::Matrix(n, 2);
    for (int i = 0; i < n; ++i) {
      const std::vector<double> x = {rng.uniform(), rng.uniform()};
      o.x.push_back(x);
      double y0 = std::sin(3.0 * x[0]) + 0.5 * x[1];
      double y1 = -2.0 * y0 + 0.1 * x[1];
      if (level >= 1) {
        y0 = y0 * y0 + 0.2 * x[0];
        y1 = y1 * 0.8 - 0.1;
      }
      if (level >= 2) {
        y0 += 0.05 * x[1];
        y1 += 0.05;
      }
      o.y(i, 0) = y0;
      o.y(i, 1) = y1;
    }
  };
  fill(obs[0], n0, 0);
  fill(obs[1], n1, 1);
  fill(obs[2], n2, 2);
  return obs;
}

TEST(ChaosRecovery, SurrogateFallsBackToGbrtOnMleExhaustion) {
  rng::Rng rng(3);
  const auto obs = syntheticObs(16, 10, 6, rng);
  core::SurrogateOptions so;
  so.mtgp.mle_restarts = 0;
  so.mtgp.max_mle_iters = 1;  // every fit exhausts its whole budget
  so.gp.mle_restarts = 0;
  so.gp.max_mle_iters = 1;
  core::MultiFidelitySurrogate s(2, 2, 3, so);
  core::RecoveryOptions r;
  r.mle_fail_streak = 1;
  s.setRecovery(r);
  s.fit(obs, rng);

  int fallbacks = 0;
  for (std::size_t level = 0; level < 3; ++level)
    if (s.fallbackActive(level)) ++fallbacks;
  EXPECT_GE(fallbacks, 1);
  const auto events = s.drainRecoveryEvents();
  bool saw_fallback = false;
  for (const auto& e : events) saw_fallback |= e.action == "surrogate_fallback";
  EXPECT_TRUE(saw_fallback);

  // Fallback predictions must be finite and carry nonzero uncertainty —
  // the acquisition keeps working while the GP recovers.
  for (std::size_t level = 0; level < 3; ++level) {
    const gp::MultiPosterior p = s.predict(level, {0.4, 0.6});
    ASSERT_EQ(p.mean.size(), 2u);
    for (double m : p.mean) EXPECT_TRUE(std::isfinite(m));
    for (std::size_t mm = 0; mm < 2; ++mm) {
      EXPECT_TRUE(std::isfinite(p.cov(mm, mm)));
      EXPECT_GT(p.cov(mm, mm), 0.0);
    }
  }
}

TEST(ChaosRecovery, CondBlowupForcesDenseRefitOnCommit) {
  rng::Rng rng(11);
  const auto obs = syntheticObs(16, 10, 6, rng);
  core::SurrogateOptions so;
  so.mtgp.mle_restarts = 0;
  so.mtgp.max_mle_iters = 30;
  so.gp.mle_restarts = 0;
  so.gp.max_mle_iters = 30;
  core::MultiFidelitySurrogate s(2, 2, 3, so);
  s.fit(obs, rng);
  (void)s.drainRecoveryEvents();  // discard anything the fit itself noted

  // Force the condition trigger (any finite estimate exceeds -1) and
  // commit: the self-healing layer must refit densely and say so.
  core::RecoveryOptions r;
  r.dense_refit_cond_log10 = -1.0;
  s.setRecovery(r);
  s.appendObservations(obs, /*commit=*/true);
  const auto events = s.drainRecoveryEvents();
  bool saw_refit = false;
  for (const auto& e : events) saw_refit |= e.action == "dense_refit";
  EXPECT_TRUE(saw_refit);

  // At loose default thresholds the same commit takes no recovery action.
  core::MultiFidelitySurrogate healthy(2, 2, 3, so);
  rng::Rng rng2(11);
  healthy.fit(obs, rng2);
  (void)healthy.drainRecoveryEvents();
  healthy.appendObservations(obs, /*commit=*/true);
  EXPECT_TRUE(healthy.drainRecoveryEvents().empty());
}

// --------------------------------------------------- eval-cache LRU -------

TEST(EvalCacheLru, EvictionCounterTieOutIsExact) {
  runtime::EvalCache cache;
  cache.setCapacity(4);
  const std::array<sim::Report, sim::kNumFidelities> stages{};
  for (std::size_t i = 0; i < 10; ++i)
    cache.storeFlow(i, sim::Fidelity::kHls, stages, /*ns=*/1);

  auto st = cache.stats();
  EXPECT_EQ(st.flows, 4u);
  EXPECT_EQ(st.evictions, 6u);  // creations (10) - survivors (4)
  // The survivors are exactly the most recently stored flows.
  const auto kept = cache.contents(1);
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().first, 6u);
  EXPECT_EQ(kept.back().first, 9u);

  // A hit refreshes LRU position: after touching 6, storing a new flow
  // evicts 7 (now the oldest), not 6.
  EXPECT_TRUE(cache.find(6, sim::Fidelity::kHls, 1).has_value());
  cache.storeFlow(10, sim::Fidelity::kHls, stages, 1);
  bool has6 = false, has7 = false;
  for (const auto& [config, fid] : cache.contents(1)) {
    has6 |= config == 6;
    has7 |= config == 7;
  }
  EXPECT_TRUE(has6);
  EXPECT_FALSE(has7);
  EXPECT_EQ(cache.stats().evictions, 7u);
}

TEST(EvalCacheLru, ConcurrentMultiNamespaceLedgersStayIsolated) {
  runtime::EvalCache cache;
  cache.setCapacity(8);
  constexpr int kThreads = 4;
  constexpr std::size_t kConfigs = 64;
  constexpr int kPasses = 2;
  const std::array<sim::Report, sim::kNumFidelities> stages{};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t ns = 1000 + t, ledger = 2000 + t;
      for (int pass = 0; pass < kPasses; ++pass)
        for (std::size_t i = 0; i < kConfigs; ++i) {
          (void)cache.find(i, sim::Fidelity::kHls, ns, ledger);
          cache.storeFlow(i, sim::Fidelity::kHls, stages, ns);
        }
    });
  }
  for (auto& th : threads) th.join();

  // Capacity bound held under concurrent cross-namespace pressure.
  const auto total = cache.stats();
  EXPECT_LE(total.flows, 8u);

  // Per-ledger counters: every thread's finds landed on its own ledger and
  // nowhere else — hits + misses tie out exactly per tenant, so there is no
  // cross-namespace (or cross-ledger) bleed under contention.
  std::uint64_t hits_sum = 0, misses_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    const auto st = cache.stats(1000 + t, 2000 + t);
    EXPECT_EQ(st.hits + st.misses, kPasses * kConfigs) << "ledger " << t;
    // With 64 configs cycling through an 8-flow cache, the first pass is
    // all misses and later passes keep missing on evicted flows.
    EXPECT_GE(st.misses, kConfigs) << "ledger " << t;
    hits_sum += st.hits;
    misses_sum += st.misses;
  }
  EXPECT_EQ(hits_sum + misses_sum,
            static_cast<std::uint64_t>(kThreads) * kPasses * kConfigs);
  EXPECT_EQ(total.hits, hits_sum);
  EXPECT_EQ(total.misses, misses_sum);

  // Eviction tie-out under concurrency: every flow creation beyond the
  // survivors was an eviction. Creations are bounded below by the distinct
  // configs stored (each miss preceded a creating store — namespaces are
  // disjoint, so no other thread could create it first) and above by the
  // total number of store calls.
  const std::uint64_t stores =
      static_cast<std::uint64_t>(kThreads) * kPasses * kConfigs;
  EXPECT_GE(total.evictions, misses_sum - total.flows);
  EXPECT_LE(total.evictions, stores - total.flows);
}

}  // namespace
}  // namespace cmmfo
