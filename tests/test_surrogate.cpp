#include <gtest/gtest.h>

#include <cmath>

#include "core/surrogate.h"
#include "rng/rng.h"

namespace cmmfo::core {
namespace {

/// Synthetic 3-fidelity, 2-objective problem over 2-D inputs with
/// correlated objectives and a non-linear fidelity map:
///   f0_m(x): base objectives; f1 = f0^2 * sign + x-dependent shift;
///   f2 = f1 + small refinement.
double base0(const std::vector<double>& x) {
  return std::sin(3.0 * x[0]) + 0.5 * x[1];
}
double base1(const std::vector<double>& x) {
  return -2.0 * base0(x) + 0.1 * x[1];  // negatively correlated with f0
}

std::vector<FidelityObs> makeObs(int n0, int n1, int n2, rng::Rng& rng) {
  std::vector<FidelityObs> obs(3);
  auto fill = [&](FidelityObs& o, int n, int level) {
    o.y = linalg::Matrix(n, 2);
    for (int i = 0; i < n; ++i) {
      const std::vector<double> x = {rng.uniform(), rng.uniform()};
      o.x.push_back(x);
      double y0 = base0(x), y1 = base1(x);
      if (level >= 1) {
        y0 = y0 * y0 + 0.2 * x[0];  // non-linear cross-fidelity map
        y1 = y1 * 0.8 - 0.1;
      }
      if (level >= 2) {
        y0 += 0.05 * x[1];
        y1 += 0.05;
      }
      o.y(i, 0) = y0;
      o.y(i, 1) = y1;
    }
  };
  fill(obs[0], n0, 0);
  fill(obs[1], n1, 1);
  fill(obs[2], n2, 2);
  return obs;
}

SurrogateOptions fastOpts(MfKind mf, ObjModelKind obj) {
  SurrogateOptions o;
  o.mf = mf;
  o.obj = obj;
  o.mtgp.mle_restarts = 0;
  o.mtgp.max_mle_iters = 30;
  o.gp.mle_restarts = 0;
  o.gp.max_mle_iters = 30;
  return o;
}

class SurrogateVariants
    : public ::testing::TestWithParam<std::pair<MfKind, ObjModelKind>> {};

TEST_P(SurrogateVariants, FitPredictShapesAndPsd) {
  rng::Rng rng(1);
  auto obs = makeObs(20, 10, 6, rng);
  MultiFidelitySurrogate s(2, 2, 3, fastOpts(GetParam().first, GetParam().second));
  s.fit(obs, rng);
  EXPECT_TRUE(s.fitted());
  for (std::size_t level = 0; level < 3; ++level) {
    const gp::MultiPosterior p = s.predict(level, {0.4, 0.6});
    ASSERT_EQ(p.mean.size(), 2u);
    ASSERT_EQ(p.cov.rows(), 2u);
    EXPECT_GE(p.cov(0, 0), 0.0);
    EXPECT_GE(p.cov(1, 1), 0.0);
    EXPECT_TRUE(std::isfinite(p.mean[0]));
    EXPECT_TRUE(std::isfinite(p.mean[1]));
  }
}

TEST_P(SurrogateVariants, TopLevelGeneralizes) {
  rng::Rng rng(2);
  auto obs = makeObs(25, 14, 8, rng);
  MultiFidelitySurrogate s(2, 2, 3, fastOpts(GetParam().first, GetParam().second));
  s.fit(obs, rng);
  // Mean error at the top level should be bounded on held-out points.
  double se = 0.0;
  int n = 0;
  rng::Rng qrng(99);
  for (int i = 0; i < 20; ++i, ++n) {
    const std::vector<double> x = {qrng.uniform(), qrng.uniform()};
    double y0 = base0(x);
    y0 = y0 * y0 + 0.2 * x[0] + 0.05 * x[1];
    const double err = s.predict(2, x).mean[0] - y0;
    se += err * err;
  }
  EXPECT_LT(std::sqrt(se / n), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SurrogateVariants,
    ::testing::Values(
        std::make_pair(MfKind::kNonlinear, ObjModelKind::kCorrelated),
        std::make_pair(MfKind::kNonlinear, ObjModelKind::kIndependent),
        std::make_pair(MfKind::kLinear, ObjModelKind::kIndependent),
        std::make_pair(MfKind::kLinear, ObjModelKind::kCorrelated),
        std::make_pair(MfKind::kSingleFidelity, ObjModelKind::kCorrelated)));

TEST(Surrogate, CorrelatedLearnsNegativeCorrelation) {
  rng::Rng rng(3);
  auto obs = makeObs(25, 12, 6, rng);
  MultiFidelitySurrogate s(
      2, 2, 3, fastOpts(MfKind::kNonlinear, ObjModelKind::kCorrelated));
  s.fit(obs, rng);
  // Level 0 objectives are y1 = -2 y0 + eps: strong negative correlation.
  EXPECT_LT(s.taskCorrelation(0)(0, 1), -0.5);
}

TEST(Surrogate, IndependentVariantHasDiagonalCov) {
  rng::Rng rng(4);
  auto obs = makeObs(15, 8, 5, rng);
  MultiFidelitySurrogate s(
      2, 2, 3, fastOpts(MfKind::kNonlinear, ObjModelKind::kIndependent));
  s.fit(obs, rng);
  const gp::MultiPosterior p = s.predict(1, {0.3, 0.3});
  EXPECT_DOUBLE_EQ(p.cov(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(p.cov(1, 0), 0.0);
}

TEST(Surrogate, NonlinearBeatsSingleFidelityWithScarceTopData) {
  rng::Rng rng1(5), rng2(5);
  auto obs = makeObs(30, 15, 5, rng1);

  MultiFidelitySurrogate chained(
      2, 2, 3, fastOpts(MfKind::kNonlinear, ObjModelKind::kIndependent));
  chained.fit(obs, rng2);
  rng::Rng rng3(5);
  MultiFidelitySurrogate single(
      2, 2, 3, fastOpts(MfKind::kSingleFidelity, ObjModelKind::kIndependent));
  single.fit(obs, rng3);

  auto rmseTop = [&](const MultiFidelitySurrogate& s) {
    rng::Rng qrng(123);
    double se = 0.0;
    for (int i = 0; i < 30; ++i) {
      const std::vector<double> x = {qrng.uniform(), qrng.uniform()};
      double y0 = base0(x);
      y0 = y0 * y0 + 0.2 * x[0] + 0.05 * x[1];
      const double err = s.predict(2, x).mean[0] - y0;
      se += err * err;
    }
    return std::sqrt(se / 30.0);
  };
  EXPECT_LT(rmseTop(chained), rmseTop(single) * 1.05);
}

TEST(Surrogate, RefitWithoutHypersIsCheapAndConsistent) {
  rng::Rng rng(6);
  auto obs = makeObs(15, 8, 4, rng);
  MultiFidelitySurrogate s(
      2, 2, 3, fastOpts(MfKind::kNonlinear, ObjModelKind::kCorrelated));
  s.fit(obs, rng);
  const double before = s.predict(2, {0.5, 0.5}).mean[0];
  // Refit with identical data and frozen hypers: prediction unchanged.
  s.fit(obs, rng, /*optimize_hypers=*/false);
  EXPECT_NEAR(s.predict(2, {0.5, 0.5}).mean[0], before, 1e-9);
}

}  // namespace
}  // namespace cmmfo::core
