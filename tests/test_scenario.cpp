// Property battery for the procedural scenario generator and its
// exhaustive-enumeration oracles (src/scenario/).
//
// The suites are prefixed Scenario* so CI's sanitizer smoke jobs can select
// them: the generator's validity/round-trip properties over many seeds, the
// oracle's pruning-soundness audit (Algorithm 1 never eps-discards a
// raw-front point its own premises accept), hand-computed ADRS and
// die-crossing references, fidelity blindness of the multi-die model, and
// bit-exact determinism of the full generate -> oracle -> optimize chain.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/methods.h"
#include "core/optimizer.h"
#include "hls/design_space.h"
#include "hls/encoding.h"
#include "hls/space_parser.h"
#include "pareto/dominance.h"
#include "scenario/generator.h"
#include "scenario/oracle.h"
#include "server/campaign.h"
#include "sim/die.h"
#include "sim/tool.h"

namespace cmmfo {
namespace {

scenario::Scenario makeScenario(std::uint64_t seed, double size,
                                int dies = 1) {
  scenario::GeneratorParams p;
  p.seed = seed;
  p.target_raw_size = size;
  p.num_dies = dies;
  return scenario::generate(p);
}

// ---------------------------------------------------------------------------
// ScenarioGenerator: structural validity, round-trips, size targeting.
// ---------------------------------------------------------------------------

TEST(ScenarioGenerator, FiftySeedsProduceValidKernels) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const scenario::Scenario sc = makeScenario(seed, 300.0);
    EXPECT_EQ(sc.kernel().validate(), "") << "seed " << seed;
    EXPECT_GE(sc.kernel().numLoops(), 1u) << "seed " << seed;
    EXPECT_GE(sc.kernel().numArrays(), 1u) << "seed " << seed;
    // Every array is referenced somewhere (die crossings and factor menus
    // both assume live arrays).
    for (std::size_t a = 0; a < sc.kernel().numArrays(); ++a)
      EXPECT_FALSE(
          sc.kernel().loopsIndexingArray(static_cast<hls::ArrayId>(a)).empty())
          << "seed " << seed << " array " << a;
  }
}

TEST(ScenarioGenerator, FiftySeedsSpecRoundTripsBitwise) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const scenario::Scenario sc = makeScenario(seed, 300.0);
    const std::string text = hls::formatSpaceSpec(sc.kernel(), sc.spec());
    const auto parsed = hls::parseSpaceSpec(sc.kernel(), text);
    ASSERT_TRUE(std::holds_alternative<hls::SpaceSpec>(parsed))
        << "seed " << seed << ": "
        << std::get<hls::ParseError>(parsed).message;
    // SpaceSpec::operator== is field-exact, so this is a bitwise claim.
    EXPECT_TRUE(std::get<hls::SpaceSpec>(parsed) == sc.spec())
        << "seed " << seed;
  }
}

TEST(ScenarioGenerator, FiftySeedsEncodeFinitelyAndDeterministically) {
  // The encoder min-max normalizes by the spec's option menus, so sites can
  // land slightly outside [0, 1] for values the menus don't list (ii = 1 on
  // an unpipelined config, backtracking-derived partition factors) — the GP
  // does not care. What generated spaces must guarantee: a stable feature
  // dimension, finite values, and bit-identical re-encoding.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const scenario::Scenario sc = makeScenario(seed, 300.0);
    const hls::DesignSpace space =
        hls::DesignSpace::buildPruned(sc.kernel(), sc.spec());
    ASSERT_GE(space.size(), 1u) << "seed " << seed;
    const hls::Encoder enc(sc.kernel(), sc.spec());
    ASSERT_GT(enc.dim(), 0u) << "seed " << seed;
    for (std::size_t i = 0; i < std::min<std::size_t>(space.size(), 8); ++i) {
      const std::vector<double> x = enc.encode(space.config(i));
      ASSERT_EQ(x.size(), enc.dim());
      for (double v : x) EXPECT_TRUE(std::isfinite(v)) << "seed " << seed;
      // Deterministic: encoding the same config twice is bit-identical.
      EXPECT_EQ(enc.encode(space.config(i)), x);
    }
  }
}

TEST(ScenarioGenerator, SizeTargetingShrinksAndOrdersSpaces) {
  // shrinkToward guarantees the 4x upper band whenever the structural floor
  // allows; the lower band is best-effort (tiny kernels cannot grow to 1e6),
  // so the hard property on that side is monotonicity: a larger target never
  // yields a smaller space for the same seed.
  bool any_growth = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    double prev = 0.0;
    for (const double target : {1e2, 1e3, 1e4}) {
      const scenario::Scenario sc = makeScenario(seed, target);
      const double raw = sc.spec().rawSize();
      EXPECT_GE(raw, 1.0) << "seed " << seed << " target " << target;
      EXPECT_LE(raw, 4.0 * target) << "seed " << seed << " target " << target;
      EXPECT_GE(raw, prev) << "seed " << seed << " target " << target;
      if (raw > prev && prev > 0.0) any_growth = true;
      prev = raw;
    }
  }
  EXPECT_TRUE(any_growth) << "targeting had no effect on any seed";
}

TEST(ScenarioGenerator, NameRoundTrip) {
  scenario::GeneratorParams p;
  p.seed = 9;
  p.num_dies = 3;
  p.target_raw_size = 777.0;
  const std::string name = scenario::scenarioName(p);
  EXPECT_EQ(name, "scenario:9:dies=3:size=777");
  const scenario::Scenario sc = scenario::generateFromName(name);
  EXPECT_TRUE(sc.params == p);
  EXPECT_EQ(sc.name, name);

  // Defaults are omitted from the name and restored by the parser.
  scenario::GeneratorParams q;
  q.seed = 4;
  EXPECT_EQ(scenario::scenarioName(q), "scenario:4");
  EXPECT_TRUE(scenario::generateFromName("scenario:4").params == q);
}

TEST(ScenarioGenerator, MalformedNamesThrow) {
  EXPECT_FALSE(scenario::isScenarioName("atax"));
  EXPECT_TRUE(scenario::isScenarioName("scenario:1"));
  EXPECT_THROW(scenario::generateFromName("atax"), std::invalid_argument);
  EXPECT_THROW(scenario::generateFromName("scenario:"), std::invalid_argument);
  EXPECT_THROW(scenario::generateFromName("scenario:abc"),
               std::invalid_argument);
  EXPECT_THROW(scenario::generateFromName("scenario:1:dies=0"),
               std::invalid_argument);
  EXPECT_THROW(scenario::generateFromName("scenario:1:dies=17"),
               std::invalid_argument);
  EXPECT_THROW(scenario::generateFromName("scenario:1:size=0"),
               std::invalid_argument);
  EXPECT_THROW(scenario::generateFromName("scenario:1:bogus=2"),
               std::invalid_argument);
}

TEST(ScenarioGenerator, DieCountDoesNotPerturbKernelOrSpace) {
  // The die map draws last, so the kernel, spec and sim params of
  // scenario:S and scenario:S:dies=D are identical — multi-die cells in the
  // matrix isolate the floorplan's effect, nothing else.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const scenario::Scenario one = makeScenario(seed, 300.0, 1);
    const scenario::Scenario two = makeScenario(seed, 300.0, 2);
    EXPECT_TRUE(one.spec() == two.spec()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(one.benchmark->sim_params.divergence,
                     two.benchmark->sim_params.divergence)
        << "seed " << seed;
    const hls::DesignSpace s1 =
        hls::DesignSpace::buildPruned(one.kernel(), one.spec());
    const hls::DesignSpace s2 =
        hls::DesignSpace::buildPruned(two.kernel(), two.spec());
    ASSERT_EQ(s1.size(), s2.size()) << "seed " << seed;
    for (std::size_t i = 0; i < s1.size(); ++i)
      EXPECT_TRUE(s1.config(i) == s2.config(i)) << "seed " << seed;
    EXPECT_FALSE(one.benchmark->die_map.enabled());
    EXPECT_TRUE(two.benchmark->die_map.enabled());
  }
}

// ---------------------------------------------------------------------------
// ScenarioOracle: pruning soundness, ADRS references, caps.
// ---------------------------------------------------------------------------

TEST(ScenarioOracle, PruningNeverEpsDiscardsACompatibleFrontPoint) {
  // The core Algorithm 1 property over 50 generated spaces: every raw
  // Pareto point the pruner's own enumeration premises accept must be
  // within eps (normalized worst-objective) of some pruned config. 0.10
  // sits above the simulator's cross-config noise envelope (~0.08 measured)
  // and far below genuine enumeration bugs (0.2-0.8 measured while live).
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const scenario::Scenario sc = makeScenario(seed, 300.0);
    const auto oracle = scenario::Oracle::build(sc);
    ASSERT_NE(oracle, nullptr) << "seed " << seed;
    const scenario::PruningAudit audit = oracle->auditPruning(0.10);
    EXPECT_TRUE(audit.raw_complete) << "seed " << seed;
    EXPECT_EQ(audit.violations, 0u)
        << "seed " << seed << " max_regret " << audit.max_regret;
    // The full front's regret (heuristic cost) is reported, never gated —
    // but it must dominate the compatible front's by construction.
    EXPECT_GE(audit.full_max_regret, audit.max_regret) << "seed " << seed;
  }
}

TEST(ScenarioOracle, AdrsMatchesHandComputedReference) {
  // Re-derive oracle ADRS independently: normalize by the valid impl
  // ranges, Pareto-filter the selection, average over true-front points the
  // Euclidean distance to the nearest selected point. Must agree to 1e-12.
  const scenario::Scenario sc = makeScenario(3, 300.0);
  const auto oracle = scenario::Oracle::build(sc);
  ASSERT_NE(oracle, nullptr);
  const sim::GroundTruth& gt = oracle->groundTruth();

  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < gt.size(); i += 2) selected.push_back(i);
  const double got = oracle->adrsOf(selected);

  std::vector<double> lo(sim::kNumObjectives, 1e300);
  std::vector<double> hi(sim::kNumObjectives, -1e300);
  for (std::size_t i = 0; i < gt.size(); ++i) {
    if (!gt.valid(i)) continue;
    const pareto::Point y = gt.implObjectives(i);
    for (int m = 0; m < sim::kNumObjectives; ++m) {
      lo[m] = std::min(lo[m], y[m]);
      hi[m] = std::max(hi[m], y[m]);
    }
  }
  const auto norm = [&](const pareto::Point& p) {
    pareto::Point q(p.size());
    for (std::size_t m = 0; m < p.size(); ++m)
      q[m] = (p[m] - lo[m]) / std::max(hi[m] - lo[m], 1e-12);
    return q;
  };
  std::vector<pareto::Point> learned;
  for (std::size_t i : selected)
    if (gt.valid(i)) learned.push_back(norm(gt.implObjectives(i)));
  learned = pareto::paretoFilter(learned);
  ASSERT_FALSE(learned.empty());
  double sum = 0.0;
  std::size_t n = 0;
  for (const pareto::Point& ref : gt.paretoFront()) {
    const pareto::Point r = norm(ref);
    double best = 1e300;
    for (const pareto::Point& l : learned) {
      double d2 = 0.0;
      for (std::size_t m = 0; m < r.size(); ++m)
        d2 += (l[m] - r[m]) * (l[m] - r[m]);
      best = std::min(best, std::sqrt(d2));
    }
    sum += best;
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_NEAR(got, sum / static_cast<double>(n), 1e-12);
}

TEST(ScenarioOracle, FullSelectionHasZeroAdrs) {
  for (std::uint64_t seed : {1ull, 7ull, 19ull}) {
    const scenario::Scenario sc = makeScenario(seed, 300.0);
    const auto oracle = scenario::Oracle::build(sc);
    ASSERT_NE(oracle, nullptr) << "seed " << seed;
    std::vector<std::size_t> all(oracle->groundTruth().size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    EXPECT_NEAR(oracle->adrsOf(all), 0.0, 1e-12) << "seed " << seed;
    // Selecting exactly the true-front indices is equally perfect.
    EXPECT_NEAR(oracle->adrsOf(oracle->groundTruth().paretoIndices()), 0.0,
                1e-12)
        << "seed " << seed;
  }
}

TEST(ScenarioOracle, EmptySelectionScoresWorstCorner) {
  const scenario::Scenario sc = makeScenario(3, 300.0);
  const auto oracle = scenario::Oracle::build(sc);
  ASSERT_NE(oracle, nullptr);
  // No valid selection: the learned front degenerates to the worst corner
  // (1,1,...,1) in normalized space, the same fallback BenchmarkContext
  // uses, so the score is large but finite.
  const double adrs = oracle->adrsOf({});
  EXPECT_GT(adrs, 0.0);
  EXPECT_LT(adrs, std::sqrt(static_cast<double>(sim::kNumObjectives)) + 1e-9);
}

TEST(ScenarioOracle, RefusesSpacesOverTheEnumerationCap) {
  scenario::OracleOptions opts;
  opts.enum_cap = 2;  // any real scenario exceeds this
  EXPECT_EQ(scenario::Oracle::build(makeScenario(1, 300.0), opts), nullptr);
  // The default cap accepts the CI-grid sizes.
  EXPECT_NE(scenario::Oracle::build(makeScenario(1, 300.0)), nullptr);
}

TEST(ScenarioOracle, FidelityGapIsZeroAtImplByConstruction) {
  const scenario::Scenario sc = makeScenario(5, 300.0, 2);
  const auto oracle = scenario::Oracle::build(sc);
  ASSERT_NE(oracle, nullptr);
  EXPECT_NEAR(oracle->fidelityGap(sim::Fidelity::kImpl), 0.0, 1e-12);
  EXPECT_GE(oracle->fidelityGap(sim::Fidelity::kHls), 0.0);
}

// ---------------------------------------------------------------------------
// ScenarioDie: the multi-die extension's fidelity contract.
// ---------------------------------------------------------------------------

void expectReportsBitIdentical(const sim::Report& a, const sim::Report& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
  EXPECT_DOUBLE_EQ(a.delay_us, b.delay_us);
  EXPECT_DOUBLE_EQ(a.lut_util, b.lut_util);
  EXPECT_DOUBLE_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_DOUBLE_EQ(a.clock_ns, b.clock_ns);
  EXPECT_DOUBLE_EQ(a.tool_seconds, b.tool_seconds);
}

TEST(ScenarioDie, LowFidelitiesAreDieBlind) {
  // FADO-style failure mode: HLS and synthesis never see the floorplan, so
  // their reports are bit-identical with and without the die map; only the
  // impl stage diverges.
  const scenario::Scenario sc = makeScenario(12, 300.0, 2);
  sim::FpgaToolSim blind(sc.kernel(), sim::DeviceModel::virtex7Vc707(),
                         sc.benchmark->sim_params, 42);
  sim::FpgaToolSim aware(sc.kernel(), sim::DeviceModel::virtex7Vc707(),
                         sc.benchmark->sim_params, 42);
  aware.setDieMap(sc.benchmark->die_map);

  const hls::DesignSpace space =
      hls::DesignSpace::buildPruned(sc.kernel(), sc.spec());
  bool impl_diverged = false;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const hls::DirectiveConfig& cfg = space.config(i);
    expectReportsBitIdentical(blind.run(cfg, sim::Fidelity::kHls),
                              aware.run(cfg, sim::Fidelity::kHls));
    expectReportsBitIdentical(blind.run(cfg, sim::Fidelity::kSyn),
                              aware.run(cfg, sim::Fidelity::kSyn));
    const sim::Report bi = blind.run(cfg, sim::Fidelity::kImpl);
    const sim::Report ai = aware.run(cfg, sim::Fidelity::kImpl);
    if (bi.valid != ai.valid || bi.clock_ns != ai.clock_ns ||
        bi.power_w != ai.power_w)
      impl_diverged = true;
  }
  EXPECT_TRUE(impl_diverged)
      << "a 2-die map with a guaranteed crossing must perturb impl reports";
}

TEST(ScenarioDie, SingleDieMapIsAStrictNoOp) {
  const scenario::Scenario sc = makeScenario(12, 300.0, 1);
  sim::FpgaToolSim plain(sc.kernel(), sim::DeviceModel::virtex7Vc707(),
                         sc.benchmark->sim_params, 42);
  sim::FpgaToolSim mapped(sc.kernel(), sim::DeviceModel::virtex7Vc707(),
                          sc.benchmark->sim_params, 42);
  sim::DieMap noop;  // num_dies = 1 with populated placement vectors
  noop.loop_die.assign(sc.kernel().numLoops(), 0);
  noop.array_die.assign(sc.kernel().numArrays(), 0);
  mapped.setDieMap(noop);

  const hls::DesignSpace space =
      hls::DesignSpace::buildPruned(sc.kernel(), sc.spec());
  for (std::size_t i = 0; i < space.size(); ++i)
    for (int f = 0; f < sim::kNumFidelities; ++f)
      expectReportsBitIdentical(
          plain.run(space.config(i), static_cast<sim::Fidelity>(f)),
          mapped.run(space.config(i), static_cast<sim::Fidelity>(f)));
}

TEST(ScenarioDie, CrossingsMatchHandComputedReference) {
  // One loop on die 0 reading A (32-bit, x2 per iter) on die 2 and writing
  // B (32-bit, x1) on die 0; unroll 4 replicates the crossing lanes.
  hls::Kernel k("xdie");
  const hls::ArrayId a = k.addArray("A", 64, 32);
  const hls::ArrayId b = k.addArray("B", 64, 32);
  const hls::LoopId l = k.addLoop("L", 16);
  hls::ArrayRef ra;
  ra.array = a;
  ra.index.push_back({l, hls::IndexRole::kMinor});
  ra.count = 2;
  k.loop(l).refs.push_back(ra);
  hls::ArrayRef rb;
  rb.array = b;
  rb.index.push_back({l, hls::IndexRole::kMinor});
  rb.is_write = true;
  rb.count = 1;
  k.loop(l).refs.push_back(rb);
  k.loop(l).body_ops[hls::OpKind::kLoad] = 2;
  k.loop(l).body_ops[hls::OpKind::kStore] = 1;
  ASSERT_EQ(k.validate(), "");

  sim::DieMap dm;
  dm.num_dies = 3;
  dm.loop_die = {0};
  dm.array_die = {2, 0};
  dm.sll_capacity_bits = 500.0;

  hls::DirectiveConfig cfg;
  cfg.loops.resize(1);
  cfg.arrays.resize(2);
  cfg.loops[0].unroll = 4;

  const sim::DieCrossing dx = sim::estimateDieCrossings(k, cfg, dm);
  // A crosses 2 dies: 32 bits x 2 accesses x 4 lanes x 2 hops = 512 bits.
  // B is local (hop 0) and contributes nothing.
  EXPECT_EQ(dx.max_hop, 2);
  EXPECT_DOUBLE_EQ(dx.sll_bits, 512.0);
  // Two boundaries of 500 bits each -> util = 512 / 1000.
  EXPECT_DOUBLE_EQ(dx.sll_util, 0.512);
  EXPECT_TRUE(dx.feasible);

  // Shrinking the pool below the demand flips feasibility — crisply, no
  // noise involved.
  dm.sll_capacity_bits = 200.0;
  const sim::DieCrossing tight = sim::estimateDieCrossings(k, cfg, dm);
  EXPECT_DOUBLE_EQ(tight.sll_bits, 512.0);
  EXPECT_FALSE(tight.feasible);

  // Disabled map: all zeros regardless of placement vectors.
  const sim::DieCrossing off =
      sim::estimateDieCrossings(k, cfg, sim::DieMap{});
  EXPECT_EQ(off.max_hop, 0);
  EXPECT_DOUBLE_EQ(off.sll_bits, 0.0);
  EXPECT_TRUE(off.feasible);
}

TEST(ScenarioDie, MultiDieScenarioHasMeasurableFidelityGap) {
  // scenario:12:dies=2:size=300 is a matrix cell whose die-blind hls front
  // provably mis-ranks the true impl front.
  const auto oracle = scenario::Oracle::build(makeScenario(12, 300.0, 2));
  ASSERT_NE(oracle, nullptr);
  EXPECT_GT(oracle->fidelityGap(sim::Fidelity::kHls), 1e-4);
}

// ---------------------------------------------------------------------------
// ScenarioDeterminism: same seed => bit-identical everything.
// ---------------------------------------------------------------------------

TEST(ScenarioDeterminism, RegeneratedScenarioIsBitIdentical) {
  const scenario::Scenario a = makeScenario(7, 300.0, 2);
  const scenario::Scenario b = makeScenario(7, 300.0, 2);
  EXPECT_TRUE(a.spec() == b.spec());
  EXPECT_TRUE(a.benchmark->die_map == b.benchmark->die_map);
  EXPECT_DOUBLE_EQ(a.benchmark->sim_params.divergence,
                   b.benchmark->sim_params.divergence);
  EXPECT_EQ(hls::formatSpaceSpec(a.kernel(), a.spec()),
            hls::formatSpaceSpec(b.kernel(), b.spec()));
  const hls::DesignSpace sa = hls::DesignSpace::buildPruned(a.kernel(), a.spec());
  const hls::DesignSpace sb = hls::DesignSpace::buildPruned(b.kernel(), b.spec());
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(sa.config(i) == sb.config(i));
    EXPECT_EQ(sa.config(i).hash(), sb.config(i).hash());
  }
}

TEST(ScenarioDeterminism, OptimizerTrajectoryIsReproducible) {
  // Two fully independent generate -> oracle -> optimize chains with the
  // pinned seed 77 must agree on every proposal and every charged second.
  baselines::DseOutcome runs[2];
  for (int r = 0; r < 2; ++r) {
    const auto oracle = scenario::Oracle::build(makeScenario(7, 300.0, 2));
    ASSERT_NE(oracle, nullptr);
    core::OptimizerOptions opts;
    opts.n_iter = 6;
    opts.batch_size = 2;
    opts.n_workers = 2;
    opts.surrogate.mtgp.mle_restarts = 0;
    opts.surrogate.gp.mle_restarts = 0;
    runs[r] = baselines::OursMethod(opts).run(oracle->space(), oracle->sim(),
                                              77);
  }
  ASSERT_EQ(runs[0].selected.size(), runs[1].selected.size());
  for (std::size_t i = 0; i < runs[0].selected.size(); ++i)
    EXPECT_EQ(runs[0].selected[i], runs[1].selected[i]) << "at " << i;
  EXPECT_EQ(runs[0].tool_runs, runs[1].tool_runs);
  EXPECT_DOUBLE_EQ(runs[0].tool_seconds, runs[1].tool_seconds);
  EXPECT_DOUBLE_EQ(runs[0].wall_seconds, runs[1].wall_seconds);
}

TEST(ScenarioDeterminism, PinnedSeedGolden) {
  // Pinned golden for the full chain (generator draws, pruner, simulator
  // noise, optimizer trajectory). A change here means the scenario stream
  // changed for EVERY consumer — matrix cells, archived BENCH_8.json rows,
  // server campaign names — and must be deliberate.
  const scenario::Scenario sc = makeScenario(7, 300.0);
  EXPECT_EQ(sc.name, "scenario:7:size=300");
  EXPECT_DOUBLE_EQ(sc.spec().rawSize(), 1008.0);
  const auto oracle = scenario::Oracle::build(sc);
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->space().size(), 12u);
  EXPECT_EQ(oracle->groundTruth().paretoFront().size(), 5u);

  core::OptimizerOptions opts;
  opts.n_iter = 6;
  opts.batch_size = 2;
  opts.n_workers = 2;
  opts.surrogate.mtgp.mle_restarts = 0;
  opts.surrogate.gp.mle_restarts = 0;
  const baselines::DseOutcome out =
      baselines::OursMethod(opts).run(oracle->space(), oracle->sim(), 77);
  const std::vector<std::size_t> golden_selected = {11, 4, 10, 3, 8, 6,
                                                    1,  5, 0,  2, 9, 7};
  EXPECT_EQ(out.selected, golden_selected);
  EXPECT_DOUBLE_EQ(out.tool_seconds, 4374.444238023515);
}

// ---------------------------------------------------------------------------
// ScenarioLifetime: the server's kernel-lifetime pattern over generated
// benchmarks (ASan hunts dangling kernel pointers here).
// ---------------------------------------------------------------------------

TEST(ScenarioLifetime, ServerResolvesScenarioNames) {
  std::shared_ptr<const bench_suite::Benchmark> bm =
      server::makeBenchmarkFor("scenario:3:size=300");
  ASSERT_NE(bm, nullptr);
  EXPECT_EQ(bm->kernel.validate(), "");

  // The simulator holds a raw pointer into bm->kernel: run it after every
  // other handle to the scenario is gone, so ASan sees any dangling use.
  sim::FpgaToolSim sim(bm->kernel, sim::DeviceModel::virtex7Vc707(),
                       bm->sim_params, 42);
  sim.setDieMap(bm->die_map);
  const auto space = server::makeSpaceFor("scenario:3:size=300");
  ASSERT_NE(space, nullptr);
  ASSERT_GE(space->size(), 1u);
  const sim::Report r = sim.run(space->config(0), sim::Fidelity::kImpl);
  EXPECT_GT(r.tool_seconds, 0.0);
}

TEST(ScenarioLifetime, SimulatorOutlivesEveryOtherHandle) {
  // The kernel-lifetime pattern: the simulator's raw kernel pointer is only
  // valid while something co-owns the benchmark. Keep exactly that one
  // shared_ptr alive, let every other scenario handle (the generateFromName
  // temporary, the design space) die, then run — ASan flags any dangling
  // kernel access.
  std::shared_ptr<const bench_suite::Benchmark> keeper;
  std::unique_ptr<sim::FpgaToolSim> sim;
  hls::DirectiveConfig cfg;
  {
    keeper = server::makeBenchmarkFor("scenario:5:dies=2:size=300");
    sim = std::make_unique<sim::FpgaToolSim>(
        keeper->kernel, sim::DeviceModel::virtex7Vc707(), keeper->sim_params,
        7);
    sim->setDieMap(keeper->die_map);
    cfg = hls::DesignSpace::buildPruned(keeper->kernel, keeper->spec).config(0);
  }
  const sim::Report r = sim->run(cfg, sim::Fidelity::kImpl);
  EXPECT_GT(r.tool_seconds, 0.0);
}

TEST(ScenarioLifetime, ServerRejectsMalformedScenarioNames) {
  EXPECT_THROW(server::makeBenchmarkFor("scenario:nope"),
               std::invalid_argument);
  EXPECT_THROW(server::makeSpaceFor("scenario:1:dies=99"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ScenarioBudget: the charged-seconds stop the matrix relies on.
// ---------------------------------------------------------------------------

// FpgaToolSim is neither copyable nor movable (atomic charge accumulator),
// so each optimizer run below gets a fresh heap simulator built exactly
// like the oracle's (same device, params and seed — bit-identical reports).
std::unique_ptr<sim::FpgaToolSim> freshSim(const scenario::Scenario& sc) {
  auto s = std::make_unique<sim::FpgaToolSim>(
      sc.kernel(), sim::DeviceModel::virtex7Vc707(), sc.benchmark->sim_params,
      scenario::OracleOptions{}.sim_seed);
  s->setDieMap(sc.benchmark->die_map);
  return s;
}

TEST(ScenarioBudget, ChargedSecondsBudgetStopsTheRun) {
  const scenario::Scenario sc = makeScenario(7, 300.0);
  const auto oracle = scenario::Oracle::build(sc);
  ASSERT_NE(oracle, nullptr);

  core::OptimizerOptions opts;
  opts.n_iter = 8;
  opts.surrogate.mtgp.mle_restarts = 0;
  opts.surrogate.gp.mle_restarts = 0;

  core::OptimizerOptions tight = opts;
  tight.max_charged_seconds = 1.0;  // initialization alone exceeds this
  const auto sim_a = freshSim(sc);
  core::CorrelatedMfMoboOptimizer budgeted(oracle->space(), *sim_a, tight);
  const core::OptimizeResult r_tight = budgeted.run();

  const auto sim_b = freshSim(sc);
  core::CorrelatedMfMoboOptimizer free_run(oracle->space(), *sim_b, opts);
  const core::OptimizeResult r_free = free_run.run();

  EXPECT_LT(r_tight.rounds_run, r_free.rounds_run);
  EXPECT_GT(sim_b->totalToolSeconds(), sim_a->totalToolSeconds());
}

TEST(ScenarioBudget, BudgetIsPartOfTheCheckpointFingerprint) {
  // A journal written under one charged-seconds budget must not resume a
  // campaign configured with another: the budget shapes the trajectory, so
  // the fingerprint has to cover it. (Budget 0 keeps the legacy
  // fingerprint, so old journals still resume — covered by the runtime
  // suite's goldens staying green.)
  const scenario::Scenario sc = makeScenario(7, 300.0);
  const auto oracle = scenario::Oracle::build(sc);
  ASSERT_NE(oracle, nullptr);
  const std::string path = testing::TempDir() + "/scenario_budget_fp.journal";
  std::remove(path.c_str());

  core::OptimizerOptions opts;
  opts.n_iter = 3;
  opts.surrogate.mtgp.mle_restarts = 0;
  opts.surrogate.gp.mle_restarts = 0;
  opts.checkpoint_path = path;
  opts.max_charged_seconds = 1e9;  // non-binding but fingerprinted

  const auto sim_a = freshSim(sc);
  core::CorrelatedMfMoboOptimizer first(oracle->space(), *sim_a, opts);
  (void)first.run();

  core::OptimizerOptions same = opts;
  same.resume = true;
  const auto sim_b = freshSim(sc);
  core::CorrelatedMfMoboOptimizer resumed(oracle->space(), *sim_b, same);
  EXPECT_TRUE(resumed.run().resumed);

  core::OptimizerOptions other = opts;
  other.resume = true;
  other.max_charged_seconds = 5e8;  // different budget, same everything else
  {
    // Strict resume refuses the foreign journal outright.
    const auto sim_c = freshSim(sc);
    core::CorrelatedMfMoboOptimizer strict(oracle->space(), *sim_c, other);
    EXPECT_THROW(strict.run(), std::runtime_error);
  }
  {
    // The daemon's lenient regime quarantines it and starts cold instead.
    other.resume_lenient = true;
    const auto sim_d = freshSim(sc);
    core::CorrelatedMfMoboOptimizer lenient(oracle->space(), *sim_d, other);
    EXPECT_FALSE(lenient.run().resumed);
  }
  std::remove(path.c_str());
  std::remove((path + ".quarantine").c_str());
}

}  // namespace
}  // namespace cmmfo
