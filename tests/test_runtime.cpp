#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.h"
#include "core/optimizer.h"
#include "runtime/eval_cache.h"
#include "runtime/scheduler.h"
#include "runtime/thread_pool.h"

namespace cmmfo {
namespace {

using runtime::EvalCache;
using runtime::EvalJob;
using runtime::EvalResult;
using runtime::ThreadPool;
using runtime::ToolScheduler;
using sim::Fidelity;

// ------------------------------------------------------------ ThreadPool ----

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsEveryQueuedTask) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SingleWorkerExecutesFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  for (auto& f : futures) f.get();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SubmitOnStoppedPoolReturnsFailedFuture) {
  ThreadPool pool(2);
  pool.shutdown();
  auto f = pool.submit([] { return 1; });
  EXPECT_THROW(f.get(), std::runtime_error);
  // numWorkers() stays meaningful after shutdown, and shutdown is idempotent.
  EXPECT_EQ(pool.numWorkers(), 2);
  pool.shutdown();
}

TEST(ThreadPool, SubmitRacingShutdownNeverLosesAFuture) {
  // Satellite regression: submit used to push into the queue of a pool
  // whose workers had already been told to stop, silently stranding the
  // task (a broken_promise on get). Now every submit either runs or fails
  // fast. Run under TSan via run_benches.sh --tsan-smoke.
  for (int iter = 0; iter < 20; ++iter) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<bool> go{false};
    std::vector<std::future<int>> futures;
    std::thread submitter([&] {
      while (!go.load()) {}
      for (int i = 0; i < 64; ++i)
        futures.push_back(pool->submit([i] { return i; }));
    });
    go.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(iter * 10));
    pool->shutdown();
    submitter.join();
    // Every future we did get must settle: either a value or the
    // stopped-pool exception — never a hang or a broken promise.
    for (auto& f : futures) {
      try {
        (void)f.get();
      } catch (const std::runtime_error&) {
      }
    }
  }
}

// ------------------------------------------------------------- Fixtures ----

struct Fixture {
  Fixture()
      : bm(bench_suite::makeSpmvCrs()),
        space(hls::DesignSpace::buildPruned(bm.kernel, bm.spec)),
        sim(bm.kernel, sim::DeviceModel::virtex7Vc707(), bm.sim_params, 42) {}
  bench_suite::Benchmark bm;
  hls::DesignSpace space;
  sim::FpgaToolSim sim;
};

core::OptimizerOptions fastOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

std::array<sim::Report, sim::kNumFidelities> flowOf(const Fixture& f,
                                                    std::size_t config,
                                                    Fidelity upto) {
  std::array<sim::Report, sim::kNumFidelities> stages{};
  for (int s = 0; s <= static_cast<int>(upto); ++s)
    stages[s] = f.sim.run(f.space.config(config), static_cast<Fidelity>(s));
  return stages;
}

// ------------------------------------------------------------- EvalCache ----

TEST(EvalCache, StoreFlowPopulatesEveryStageUpToCharged) {
  Fixture f;
  EvalCache cache;
  EXPECT_FALSE(cache.find(0, Fidelity::kHls).has_value());

  cache.storeFlow(0, Fidelity::kImpl, flowOf(f, 0, Fidelity::kImpl));
  // The impl flow left every intermediate artifact behind.
  for (int s = 0; s < sim::kNumFidelities; ++s)
    EXPECT_TRUE(cache.find(0, static_cast<Fidelity>(s)).has_value());
  EXPECT_EQ(cache.size(), 3u);

  const auto hls = cache.find(0, Fidelity::kHls);
  EXPECT_DOUBLE_EQ(hls->delay_us,
                   f.sim.run(f.space.config(0), Fidelity::kHls).delay_us);
}

TEST(EvalCache, PartialFlowDoesNotFakeHigherStages) {
  Fixture f;
  EvalCache cache;
  cache.storeFlow(1, Fidelity::kSyn, flowOf(f, 1, Fidelity::kSyn));
  EXPECT_TRUE(cache.find(1, Fidelity::kHls).has_value());
  EXPECT_TRUE(cache.find(1, Fidelity::kSyn).has_value());
  EXPECT_FALSE(cache.find(1, Fidelity::kImpl).has_value());
  EXPECT_FALSE(cache.findFlow(1, Fidelity::kImpl).has_value());
  EXPECT_TRUE(cache.findFlow(1, Fidelity::kSyn).has_value());
}

TEST(EvalCache, CountsHitsAndMisses) {
  Fixture f;
  EvalCache cache;
  cache.find(5, Fidelity::kHls);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.storeFlow(5, Fidelity::kHls, flowOf(f, 5, Fidelity::kHls));
  cache.find(5, Fidelity::kHls);
  EXPECT_EQ(cache.hits(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(EvalCache, ConcurrentSameKeyInsertStaysConsistent) {
  // Satellite: many workers finishing the same flow concurrently must be
  // safe (the tool is deterministic, so last-writer-wins is correct). Run
  // under TSan via run_benches.sh --tsan-smoke.
  Fixture f;
  EvalCache cache;
  const auto flow = flowOf(f, 4, Fidelity::kImpl);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&cache, &flow] {
      for (int k = 0; k < 50; ++k)
        cache.storeFlow(4, Fidelity::kImpl, flow);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.size(), 3u);  // one entry per stage, no duplicates
  const auto got = cache.find(4, Fidelity::kImpl);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->delay_us, flow[2].delay_us);
}

TEST(EvalCache, StatsSnapshotMatchesCountersAndContentsSorted) {
  Fixture f;
  EvalCache cache;
  cache.storeFlow(9, Fidelity::kSyn, flowOf(f, 9, Fidelity::kSyn));
  cache.storeFlow(2, Fidelity::kImpl, flowOf(f, 2, Fidelity::kImpl));
  cache.find(9, Fidelity::kSyn);   // hit
  cache.find(50, Fidelity::kHls);  // miss
  const EvalCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, cache.size());
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  // contents() collapses the stage ladder to (config, highest fidelity),
  // sorted by config — the journal's canonical form.
  const auto contents = cache.contents();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], (std::pair<std::size_t, Fidelity>{2, Fidelity::kImpl}));
  EXPECT_EQ(contents[1], (std::pair<std::size_t, Fidelity>{9, Fidelity::kSyn}));
  cache.restoreCounters(10, 20);
  EXPECT_EQ(cache.hits(), 10u);
  EXPECT_EQ(cache.misses(), 20u);
}

// ----------------------------------------------------------- ToolScheduler ----

std::vector<EvalJob> someJobs(const Fixture& f, std::size_t n) {
  std::vector<EvalJob> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    const Fidelity fid = static_cast<Fidelity>(i % sim::kNumFidelities);
    jobs.push_back({(i * 17) % f.space.size(), fid});
  }
  return jobs;
}

TEST(Scheduler, ResultsComeBackInJobOrder) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 4);
  const auto jobs = someJobs(f, 12);
  const auto results = sched.runBatch(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].job.config, jobs[i].config);
    EXPECT_EQ(results[i].job.fidelity, jobs[i].fidelity);
  }
}

TEST(Scheduler, CacheHitChargesNothingAndSkipsTheTool) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 2);
  const std::vector<EvalJob> jobs = {{3, Fidelity::kSyn}};
  const auto first = sched.runBatch(jobs);
  EXPECT_FALSE(first[0].cache_hit);
  EXPECT_GT(first[0].charged_seconds, 0.0);
  const double charged_after_first = f.sim.totalToolSeconds();

  const auto second = sched.runBatch(jobs);
  EXPECT_TRUE(second[0].cache_hit);
  EXPECT_DOUBLE_EQ(second[0].charged_seconds, 0.0);
  EXPECT_DOUBLE_EQ(f.sim.totalToolSeconds(), charged_after_first);
  EXPECT_EQ(sched.totals().tool_runs, 1);
  EXPECT_EQ(sched.totals().cache_hits, 1);
  // The hit returned the identical report.
  EXPECT_DOUBLE_EQ(second[0].report().delay_us, first[0].report().delay_us);
}

TEST(Scheduler, ImplRunSeedsLowerFidelityHits) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 2);
  sched.runBatch({{9, Fidelity::kImpl}});
  // Flow nesting: hls and syn proposals of the same config are now free.
  const auto res = sched.runBatch({{9, Fidelity::kHls}, {9, Fidelity::kSyn}});
  EXPECT_TRUE(res[0].cache_hit);
  EXPECT_TRUE(res[1].cache_hit);
  EXPECT_EQ(sched.totals().tool_runs, 1);
  EXPECT_EQ(sched.totals().cache_hits, 2);
  EXPECT_DOUBLE_EQ(sched.lastBatch().charged_seconds, 0.0);
}

// The satellite regression: accounting through the scheduler must agree
// between a sequential farm and a parallel one.
TEST(Scheduler, ParallelAccountingEqualsSequentialAccounting) {
  Fixture seq_f, par_f;
  EvalCache seq_cache, par_cache;
  ToolScheduler seq(seq_f.space, seq_f.sim, seq_cache, 1);
  ToolScheduler par(par_f.space, par_f.sim, par_cache, 4);
  const auto jobs = someJobs(seq_f, 24);
  const auto rs = seq.runBatch(jobs);
  const auto rp = par.runBatch(jobs);

  // Scheduler-side charges are summed in job order on the main thread:
  // bitwise identical.
  EXPECT_DOUBLE_EQ(par.totals().charged_seconds, seq.totals().charged_seconds);
  EXPECT_EQ(par.totals().tool_runs, seq.totals().tool_runs);
  // Simulator-side accumulation order depends on thread interleaving, so
  // allow rounding-reorder slack only.
  EXPECT_NEAR(par_f.sim.totalToolSeconds(), seq_f.sim.totalToolSeconds(),
              1e-9 * seq_f.sim.totalToolSeconds());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(rp[i].charged_seconds, rs[i].charged_seconds);
    EXPECT_DOUBLE_EQ(rp[i].report().power_w, rs[i].report().power_w);
  }
}

TEST(Scheduler, SequentialWallClockEqualsChargedTime) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 1);
  sched.runBatch(someJobs(f, 10));
  EXPECT_DOUBLE_EQ(sched.totals().wall_seconds,
                   sched.totals().charged_seconds);
}

// Satellite: the two accounting ledgers — the scheduler's charged_seconds
// and the simulator's own accumulator — must tie out in every regime:
// cache hits (charge nothing on both sides), multi-round batches, and
// fault-injected retries (failed attempts charge both sides).
TEST(Scheduler, AccountingTiesOutAcrossAllRegimes) {
  Fixture f;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.2;
  f.sim.setFaultParams(faults);
  EvalCache cache;
  runtime::RetryPolicy policy;
  policy.max_attempts = 3;
  ToolScheduler sched(f.space, f.sim, cache, 1, policy);

  sched.runBatch(someJobs(f, 12));      // fresh runs, some retried
  sched.runBatch(someJobs(f, 12));      // pure cache-hit round
  sched.runBatch(someJobs(f, 20));      // mixed hits and fresh runs
  EXPECT_GT(sched.totals().cache_hits, 0);
  // Sequential farm: both ledgers sum the same charges in the same order.
  EXPECT_DOUBLE_EQ(sched.totals().charged_seconds, f.sim.totalToolSeconds());

  // resetAccounting clears BOTH sides together, so they stay tied.
  sched.resetAccounting();
  EXPECT_DOUBLE_EQ(sched.totals().charged_seconds, 0.0);
  EXPECT_DOUBLE_EQ(f.sim.totalToolSeconds(), 0.0);
  sched.runBatch(someJobs(f, 6));
  EXPECT_DOUBLE_EQ(sched.totals().charged_seconds, f.sim.totalToolSeconds());
}

TEST(Scheduler, ParallelWallClockIsMakespanBounded) {
  Fixture f;
  EvalCache cache;
  ToolScheduler sched(f.space, f.sim, cache, 4);
  const auto jobs = someJobs(f, 16);
  const auto results = sched.runBatch(jobs);
  double max_job = 0.0;
  for (const auto& r : results) max_job = std::max(max_job, r.charged_seconds);
  const auto& s = sched.totals();
  EXPECT_LT(s.wall_seconds, s.charged_seconds);       // it actually overlaps
  EXPECT_GE(s.wall_seconds, s.charged_seconds / 4.0 - 1e-9);  // <= farm width
  EXPECT_GE(s.wall_seconds, max_job - 1e-9);          // critical path
}

// Direct hammer on the atomic accumulator (the concurrent-use fix).
TEST(ToolSim, ConcurrentRunCountedMatchesSequentialTotal) {
  Fixture seq_f, par_f;
  const int kThreads = 8, kPerThread = 25;

  double sequential = 0.0;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i) {
      const std::size_t c = (t * kPerThread + i) % seq_f.space.size();
      sequential +=
          seq_f.sim.runCounted(seq_f.space.config(c), Fidelity::kSyn)
              .tool_seconds;
    }
  EXPECT_NEAR(seq_f.sim.totalToolSeconds(), sequential, 1e-9 * sequential);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&par_f, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t c = (t * kPerThread + i) % par_f.space.size();
        par_f.sim.runCounted(par_f.space.config(c), Fidelity::kSyn);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_NEAR(par_f.sim.totalToolSeconds(), sequential, 1e-9 * sequential);
}

// ------------------------------------------- Batched optimizer semantics ----

TEST(BatchedOptimizer, KrigingBelieverBatchesNeverRepeatConfigs) {
  Fixture f;
  core::OptimizerOptions o = fastOpts();
  o.n_iter = 12;
  o.batch_size = 4;
  o.n_workers = 4;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  std::set<std::size_t> seen;
  for (const auto& rec : res.cs) EXPECT_TRUE(seen.insert(rec.config).second);
}

TEST(BatchedOptimizer, SpendsTheFullProposalBudget) {
  Fixture f;
  core::OptimizerOptions o = fastOpts();
  o.n_iter = 10;
  o.batch_size = 3;  // 10 = 3 + 3 + 3 + 1: last round is a partial batch
  o.n_workers = 3;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();
  EXPECT_EQ(res.cs.size(), static_cast<std::size_t>(o.n_init_hls + o.n_iter));
  int picks = 0;
  for (int c : res.picks_per_fidelity) picks += c;
  EXPECT_EQ(picks, o.n_iter);
  ASSERT_EQ(res.iterations.size(), static_cast<std::size_t>(o.n_iter));
  for (int i = 0; i < o.n_iter; ++i) {
    EXPECT_EQ(res.iterations[i].iteration, i);
    EXPECT_EQ(res.iterations[i].round, i / 3);
  }
}

TEST(BatchedOptimizer, TrajectoryIndependentOfWorkerCount) {
  core::OptimizerOptions o = fastOpts();
  o.n_iter = 8;
  o.batch_size = 4;
  o.seed = 5;

  std::vector<core::OptimizeResult> runs;
  for (const int workers : {1, 4, 8}) {
    Fixture f;
    o.n_workers = workers;
    core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
    runs.push_back(opt.run());
  }
  for (std::size_t w = 1; w < runs.size(); ++w) {
    ASSERT_EQ(runs[w].cs.size(), runs[0].cs.size());
    for (std::size_t i = 0; i < runs[0].cs.size(); ++i) {
      EXPECT_EQ(runs[w].cs[i].config, runs[0].cs[i].config);
      EXPECT_EQ(runs[w].cs[i].fidelity, runs[0].cs[i].fidelity);
    }
    EXPECT_EQ(runs[w].tool_runs, runs[0].tool_runs);
    EXPECT_NEAR(runs[w].tool_seconds, runs[0].tool_seconds,
                1e-9 * runs[0].tool_seconds);
  }
  // More workers can only shrink the simulated wall-clock.
  EXPECT_GE(runs[0].wall_seconds, runs[1].wall_seconds);
  EXPECT_GE(runs[1].wall_seconds, runs[2].wall_seconds);
}

TEST(BatchedOptimizer, BatchingShrinksWallClockAtEqualChargedTime) {
  Fixture f1, f8;
  core::OptimizerOptions o = fastOpts();
  o.n_iter = 8;
  core::CorrelatedMfMoboOptimizer seq(f1.space, f1.sim, o);
  const auto rs = seq.run();
  EXPECT_DOUBLE_EQ(rs.wall_seconds, rs.tool_seconds);  // sequential regime

  o.batch_size = 8;
  o.n_workers = 8;
  core::CorrelatedMfMoboOptimizer par(f8.space, f8.sim, o);
  const auto rp = par.run();
  EXPECT_EQ(rp.tool_runs, rs.tool_runs);
  EXPECT_LT(rp.wall_seconds, 0.9 * rp.tool_seconds);
}

// Pins the exact sequential trajectory of the pre-runtime implementation
// (captured from the seed build): batch_size = n_workers = 1 must stay
// bit-for-bit equal to the paper-faithful sequential Algorithm 2.
TEST(BatchedOptimizer, SequentialGoldenTrajectoryPreserved) {
  Fixture f;
  core::OptimizerOptions o = fastOpts();
  o.seed = 77;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();

  const std::vector<std::pair<std::size_t, Fidelity>> golden = {
      {275, Fidelity::kImpl}, {184, Fidelity::kImpl}, {132, Fidelity::kImpl},
      {228, Fidelity::kSyn},  {20, Fidelity::kSyn},   {89, Fidelity::kHls},
      {194, Fidelity::kHls},  {57, Fidelity::kHls},   {75, Fidelity::kHls},
      {35, Fidelity::kHls},   {3, Fidelity::kHls},    {0, Fidelity::kHls},
      {7, Fidelity::kHls},    {5, Fidelity::kHls},    {17, Fidelity::kHls},
      {52, Fidelity::kHls},   {1, Fidelity::kHls},    {15, Fidelity::kHls},
  };
  ASSERT_EQ(res.cs.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(res.cs[i].config, golden[i].first) << "at index " << i;
    EXPECT_EQ(res.cs[i].fidelity, golden[i].second) << "at index " << i;
  }
  EXPECT_DOUBLE_EQ(res.tool_seconds, 3062.9170931904364);
  EXPECT_EQ(res.tool_runs, 18);
  EXPECT_DOUBLE_EQ(res.wall_seconds, res.tool_seconds);
  EXPECT_EQ(res.cache_hits, 0);
}

}  // namespace
}  // namespace cmmfo
