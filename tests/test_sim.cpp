#include <gtest/gtest.h>

#include <cmath>

#include "bench_suite/benchmarks.h"
#include "sim/ground_truth.h"
#include "sim/perf_model.h"
#include "sim/tool.h"

namespace cmmfo::sim {
namespace {

using hls::ArrayId;
using hls::DirectiveConfig;
using hls::IndexRole;
using hls::Kernel;
using hls::LoopId;
using hls::OpKind;
using hls::PartitionType;

/// Simple parallel-friendly kernel: one loop streaming over one array.
Kernel streamKernel() {
  Kernel k("stream");
  const ArrayId a = k.addArray("a", 1024);
  const LoopId l = k.addLoop("l", 1024);
  k.loop(l).body_ops[OpKind::kLoad] = 2;
  k.loop(l).body_ops[OpKind::kAdd] = 1;
  k.loop(l).body_ops[OpKind::kStore] = 1;
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, false, 2});
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, true, 1});
  return k;
}

DirectiveConfig defaults(const Kernel& k) {
  DirectiveConfig c;
  c.loops.resize(k.numLoops());
  c.arrays.resize(k.numArrays());
  return c;
}

FpgaToolSim makeSim(const Kernel& k, double divergence = 0.3) {
  SimParams p;
  p.divergence = divergence;
  return FpgaToolSim(k, DeviceModel::virtex7Vc707(), p, 7);
}

TEST(PerfModel, UnrollWithBankingReducesLatency) {
  const Kernel k = streamKernel();
  const DeviceModel dev;
  DirectiveConfig base = defaults(k);
  const double lat0 = estimateArchitecture(k, base, dev).latency_cycles;

  DirectiveConfig unrolled = base;
  unrolled.loops[0].unroll = 8;
  unrolled.arrays[0] = {PartitionType::kCyclic, 8};
  const double lat8 = estimateArchitecture(k, unrolled, dev).latency_cycles;
  EXPECT_LT(lat8, lat0 / 3.0);
}

TEST(PerfModel, UnrollWithoutBankingIsPortLimited) {
  const Kernel k = streamKernel();
  const DeviceModel dev;
  DirectiveConfig no_banks = defaults(k);
  no_banks.loops[0].unroll = 8;
  DirectiveConfig banked = no_banks;
  banked.arrays[0] = {PartitionType::kCyclic, 8};
  EXPECT_GT(estimateArchitecture(k, no_banks, dev).latency_cycles,
            estimateArchitecture(k, banked, dev).latency_cycles);
}

TEST(PerfModel, UnrollIncreasesArea) {
  const Kernel k = streamKernel();
  const DeviceModel dev;
  DirectiveConfig base = defaults(k);
  DirectiveConfig unrolled = base;
  unrolled.loops[0].unroll = 16;
  unrolled.arrays[0] = {PartitionType::kCyclic, 16};
  EXPECT_GT(estimateArchitecture(k, unrolled, dev).lut_raw,
            estimateArchitecture(k, base, dev).lut_raw);
}

TEST(PerfModel, PartitioningCostsMuxes) {
  const Kernel k = streamKernel();
  const DeviceModel dev;
  DirectiveConfig base = defaults(k);
  DirectiveConfig banked = base;
  banked.arrays[0] = {PartitionType::kCyclic, 16};
  EXPECT_GT(estimateArchitecture(k, banked, dev).lut_raw,
            estimateArchitecture(k, base, dev).lut_raw);
}

TEST(PerfModel, PipelineBeatsSequential) {
  const Kernel k = streamKernel();
  const DeviceModel dev;
  DirectiveConfig base = defaults(k);
  DirectiveConfig piped = base;
  piped.loops[0].pipeline = true;
  piped.loops[0].ii = 1;
  EXPECT_LT(estimateArchitecture(k, piped, dev).latency_cycles,
            estimateArchitecture(k, base, dev).latency_cycles);
}

TEST(PerfModel, RecurrenceNeutralizesUnroll) {
  Kernel k("rec");
  const ArrayId a = k.addArray("acc", 128);
  const LoopId l = k.addLoop("l", 128);
  k.loop(l).body_ops[OpKind::kLoad] = 1;
  k.loop(l).body_ops[OpKind::kAdd] = 1;
  k.loop(l).body_ops[OpKind::kStore] = 1;
  k.loop(l).loop_carried_dep = true;
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, true, 1});
  const DeviceModel dev;
  DirectiveConfig base = defaults(k);
  DirectiveConfig unrolled = base;
  unrolled.loops[0].unroll = 8;
  unrolled.arrays[0] = {PartitionType::kCyclic, 8};
  const double lat_u = estimateArchitecture(k, unrolled, dev).latency_cycles;
  const double lat_b = estimateArchitecture(k, base, dev).latency_cycles;
  // Unrolling a recurrence loop must NOT give a near-linear speedup.
  EXPECT_GT(lat_u, lat_b * 0.6);
}

TEST(Tool, RunIsDeterministic) {
  const Kernel k = streamKernel();
  const FpgaToolSim sim = makeSim(k);
  const DirectiveConfig c = defaults(k);
  for (int f = 0; f < kNumFidelities; ++f) {
    const Report r1 = sim.run(c, static_cast<Fidelity>(f));
    const Report r2 = sim.run(c, static_cast<Fidelity>(f));
    EXPECT_DOUBLE_EQ(r1.power_w, r2.power_w);
    EXPECT_DOUBLE_EQ(r1.delay_us, r2.delay_us);
    EXPECT_DOUBLE_EQ(r1.lut_util, r2.lut_util);
  }
}

TEST(Tool, DifferentSeedsDifferentReports) {
  const Kernel k = streamKernel();
  SimParams p;
  const FpgaToolSim s1(k, DeviceModel::virtex7Vc707(), p, 1);
  const FpgaToolSim s2(k, DeviceModel::virtex7Vc707(), p, 2);
  const DirectiveConfig c = defaults(k);
  EXPECT_NE(s1.run(c, Fidelity::kImpl).power_w,
            s2.run(c, Fidelity::kImpl).power_w);
}

TEST(Tool, LaterFidelitiesCostMore) {
  const Kernel k = streamKernel();
  const FpgaToolSim sim = makeSim(k);
  const DirectiveConfig c = defaults(k);
  const double t_hls = sim.run(c, Fidelity::kHls).tool_seconds;
  const double t_syn = sim.run(c, Fidelity::kSyn).tool_seconds;
  const double t_impl = sim.run(c, Fidelity::kImpl).tool_seconds;
  EXPECT_LT(t_hls, t_syn);
  EXPECT_LT(t_syn, t_impl);
  EXPECT_GT(t_impl / t_hls, 5.0);  // orders-of-magnitude stage gap
}

TEST(Tool, DelayIsLatencyTimesClock) {
  const Kernel k = streamKernel();
  const FpgaToolSim sim = makeSim(k);
  const Report r = sim.run(defaults(k), Fidelity::kSyn);
  EXPECT_NEAR(r.delay_us, r.latency_cycles * r.clock_ns * 1e-3, 1e-9);
}

TEST(Tool, DivergenceSeparatesFidelities) {
  const Kernel k = streamKernel();
  const DirectiveConfig c = [&] {
    DirectiveConfig cc = defaults(k);
    cc.loops[0].unroll = 16;
    cc.arrays[0] = {PartitionType::kCyclic, 16};
    return cc;
  }();
  const FpgaToolSim calm = makeSim(k, 0.05);
  const FpgaToolSim wild = makeSim(k, 0.95);
  auto gap = [&](const FpgaToolSim& s) {
    const double d_hls = s.run(c, Fidelity::kHls).delay_us;
    const double d_impl = s.run(c, Fidelity::kImpl).delay_us;
    return std::fabs(d_impl - d_hls) / d_hls;
  };
  EXPECT_GT(gap(wild), gap(calm));
}

TEST(Tool, OverUtilizedDesignInvalidAtImpl) {
  // Blow up the area far past capacity: implementation must fail while the
  // HLS stage (which never rejects) still reports.
  Kernel k("huge");
  const ArrayId a = k.addArray("a", 4096);
  const LoopId l = k.addLoop("l", 4096);
  k.loop(l).body_ops[OpKind::kMul] = 8;
  k.loop(l).body_ops[OpKind::kDiv] = 4;
  k.loop(l).refs.push_back({a, {{l, IndexRole::kMinor}}, false, 1});
  DirectiveConfig c = defaults(k);
  c.loops[0].unroll = 4096;
  c.arrays[0] = {PartitionType::kComplete, 4096};
  const FpgaToolSim sim = makeSim(k);
  EXPECT_TRUE(sim.run(c, Fidelity::kHls).valid);
  EXPECT_FALSE(sim.run(c, Fidelity::kImpl).valid);
}

TEST(Tool, AccountingAccumulatesAndResets) {
  const Kernel k = streamKernel();
  FpgaToolSim sim = makeSim(k);
  const DirectiveConfig c = defaults(k);
  EXPECT_DOUBLE_EQ(sim.totalToolSeconds(), 0.0);
  const Report r = sim.runCounted(c, Fidelity::kSyn);
  EXPECT_DOUBLE_EQ(sim.totalToolSeconds(), r.tool_seconds);
  sim.runCounted(c, Fidelity::kHls);
  EXPECT_GT(sim.totalToolSeconds(), r.tool_seconds);
  sim.resetAccounting();
  EXPECT_DOUBLE_EQ(sim.totalToolSeconds(), 0.0);
}

TEST(Tool, NominalStageSecondsOrdered) {
  const Kernel k = streamKernel();
  const auto t = makeSim(k).nominalStageSeconds();
  EXPECT_LT(t[0], t[1]);
  EXPECT_LT(t[1], t[2]);
}

TEST(Tool, ObjectivesVectorLayout) {
  Report r;
  r.power_w = 1.0;
  r.delay_us = 2.0;
  r.lut_util = 0.3;
  EXPECT_EQ(r.objectives(), (std::vector<double>{1.0, 2.0, 0.3}));
}

TEST(GroundTruth, FrontMembersAreValidAndNonDominated) {
  const auto bm = bench_suite::makeSpmvCrs();
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  const FpgaToolSim sim(bm.kernel, DeviceModel::virtex7Vc707(), bm.sim_params,
                        42);
  const GroundTruth gt(space, sim);
  ASSERT_FALSE(gt.paretoFront().empty());
  for (std::size_t idx : gt.paretoIndices()) {
    EXPECT_TRUE(gt.valid(idx));
    for (std::size_t j = 0; j < gt.size(); ++j) {
      if (!gt.valid(j)) continue;
      EXPECT_FALSE(
          pareto::dominates(gt.implObjectives(j), gt.implObjectives(idx)));
    }
  }
}

TEST(GroundTruth, ReportsMatchDirectSimRuns) {
  const auto bm = bench_suite::makeSpmvCrs();
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  const FpgaToolSim sim(bm.kernel, DeviceModel::virtex7Vc707(), bm.sim_params,
                        42);
  const GroundTruth gt(space, sim);
  const Report direct = sim.run(space.config(5), Fidelity::kSyn);
  EXPECT_DOUBLE_EQ(gt.report(5, Fidelity::kSyn).delay_us, direct.delay_us);
}

TEST(FidelityNames, Distinct) {
  EXPECT_STRNE(fidelityName(Fidelity::kHls), fidelityName(Fidelity::kSyn));
  EXPECT_STRNE(fidelityName(Fidelity::kSyn), fidelityName(Fidelity::kImpl));
}

}  // namespace
}  // namespace cmmfo::sim
