#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "exp/harness.h"
#include "exp/table.h"

namespace cmmfo::exp {
namespace {

TEST(Harness, AdrsZeroForTrueParetoIndices) {
  BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  const auto& idx = ctx.groundTruth().paretoIndices();
  EXPECT_NEAR(ctx.adrsOf({idx.begin(), idx.end()}), 0.0, 1e-12);
}

TEST(Harness, AdrsPositiveForSingleBadConfig) {
  BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  // Baseline config (index of all-defaults) is generally not the whole front.
  std::vector<std::size_t> one = {0};
  EXPECT_GT(ctx.adrsOf(one), 0.0);
}

TEST(Harness, AdrsWorsensWhenDroppingFrontMembers) {
  BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  const auto& idx = ctx.groundTruth().paretoIndices();
  ASSERT_GT(idx.size(), 2u);
  std::vector<std::size_t> all(idx.begin(), idx.end());
  std::vector<std::size_t> half(idx.begin(), idx.begin() + idx.size() / 2);
  EXPECT_GE(ctx.adrsOf(half), ctx.adrsOf(all));
}

TEST(Harness, AdrsFiniteForEmptySelection) {
  BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  const double a = ctx.adrsOf({});
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_GT(a, 0.1);  // the worst-corner fallback is far from the front
}

TEST(Harness, EvaluateMethodAggregates) {
  BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  baselines::RandomMethod random(20);
  const MethodStats s = evaluateMethod(ctx, random, 4, 42);
  EXPECT_EQ(s.runs.size(), 4u);
  EXPECT_EQ(s.method, "Random");
  EXPECT_GT(s.time_mean, 0.0);
  EXPECT_GE(s.adrs_std, 0.0);
  double acc = 0.0;
  for (const auto& r : s.runs) acc += r.adrs;
  EXPECT_NEAR(s.adrs_mean, acc / 4.0, 1e-12);
}

TEST(Harness, RepeatsFromEnvOverrides) {
  ::setenv("CMMFO_REPEATS", "3", 1);
  EXPECT_EQ(repeatsFromEnv(10), 3);
  ::unsetenv("CMMFO_REPEATS");
  EXPECT_EQ(repeatsFromEnv(10), 10);
}

TEST(Harness, FastModeFromEnv) {
  ::setenv("CMMFO_FAST", "1", 1);
  EXPECT_TRUE(fastModeFromEnv());
  EXPECT_EQ(repeatsFromEnv(10), 2);
  ::unsetenv("CMMFO_FAST");
  EXPECT_FALSE(fastModeFromEnv());
}

BenchmarkResults fakeResults() {
  BenchmarkResults row;
  row.benchmark = "fake";
  MethodStats ours;
  ours.method = "Ours";
  ours.adrs_mean = 0.1;
  ours.adrs_std = 0.01;
  ours.time_mean = 100.0;
  ours.wall_mean = 25.0;  // a 4-wide farm
  ours.runs.push_back({0.1, 100.0, 25.0, 10, 5});
  MethodStats ann;
  ann.method = "ANN";
  ann.adrs_mean = 0.2;
  ann.adrs_std = 0.02;
  ann.time_mean = 200.0;
  ann.wall_mean = 200.0;  // sequential
  ann.runs.push_back({0.2, 200.0, 200.0, 48, 9});
  row.by_method["Ours"] = ours;
  row.by_method["ANN"] = ann;
  return row;
}

TEST(Table, NormalizesToAnn) {
  std::ostringstream os;
  printTable1({fakeResults()}, {"Ours", "ANN"}, "ANN", os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Normalized ADRS"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);  // ours/ann = 0.5
  EXPECT_NE(out.find("1.00"), std::string::npos);  // ann/ann = 1
  EXPECT_NE(out.find("Average"), std::string::npos);
}

TEST(Table, CsvDumpHasHeaderAndRows) {
  std::ostringstream os;
  writeRunsCsv({fakeResults()}, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("benchmark,method,run"), std::string::npos);
  EXPECT_NE(out.find("fake,ANN,0,0.2"), std::string::npos);
}

TEST(Table, MissingNormalizerHandled) {
  BenchmarkResults row = fakeResults();
  row.by_method.erase("ANN");
  std::ostringstream os;
  printTable1({row}, {"Ours"}, "ANN", os);
  EXPECT_NE(os.str().find("Ours"), std::string::npos);
}

}  // namespace
}  // namespace cmmfo::exp
