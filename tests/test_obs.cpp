// Observability layer tests. The load-bearing property is the determinism
// invariant: tracing and metrics must never perturb the optimization — the
// seed-77 golden trajectory pinned in test_runtime.cpp must come out
// bit-for-bit identical with full instrumentation enabled, and the metrics
// dump must tie out EXACTLY (EXPECT_DOUBLE_EQ, not NEAR) with the
// scheduler's own accounting ledgers. All suites here are named Obs* so the
// TSan smoke (run_benches.sh --tsan-smoke) picks them up.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_suite/benchmarks.h"
#include "core/checkpoint.h"
#include "core/optimizer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "runtime/scheduler.h"
#include "runtime/thread_pool.h"
#include "util/json.h"

namespace cmmfo {
namespace {

using obs::MetricKind;
using obs::MetricPoint;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using sim::Fidelity;

// Tests share a process when the binary runs un-filtered, so every test
// that touches obs::global() wipes it on entry and on exit.
struct GlobalObsGuard {
  GlobalObsGuard() { reset(); }
  ~GlobalObsGuard() { reset(); }
  static void reset() {
    obs::tracer().setEnabled(false);
    obs::tracer().clear();
    obs::metrics().setEnabled(false);
    obs::metrics().clear();
  }
};

const MetricPoint* find(const MetricsSnapshot& snap, const std::string& name) {
  for (const MetricPoint& p : snap)
    if (p.name == name) return &p;
  return nullptr;
}

// ---------------------------------------------------------- MetricsUnit ----

TEST(ObsMetrics, DisabledMutatorsAreNoOps) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.enabled());
  reg.add("c");
  reg.set("g", 3.0);
  reg.observe("h", 1.0);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(ObsMetrics, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  reg.setEnabled(true);
  reg.add("runs");
  reg.add("runs", 2.0);
  reg.set("depth", 5.0);
  reg.set("depth", 3.0);
  reg.defineHistogram("t", {1.0, 10.0, 100.0});
  reg.observe("t", 0.5);
  reg.observe("t", 10.0);   // boundary: counts in the <=10 bucket
  reg.observe("t", 1e6);    // overflow bucket

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Snapshot is name-sorted.
  EXPECT_EQ(snap[0].name, "depth");
  EXPECT_EQ(snap[1].name, "runs");
  EXPECT_EQ(snap[2].name, "t");

  const MetricPoint* runs = find(snap, "runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(runs->value, 3.0);
  EXPECT_EQ(runs->count, 2u);

  const MetricPoint* depth = find(snap, "depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(depth->value, 3.0);  // last set wins

  const MetricPoint* t = find(snap, "t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, MetricKind::kHistogram);
  EXPECT_EQ(t->count, 3u);
  EXPECT_DOUBLE_EQ(t->sum, 0.5 + 10.0 + 1e6);
  EXPECT_DOUBLE_EQ(t->min, 0.5);
  EXPECT_DOUBLE_EQ(t->max, 1e6);
  ASSERT_EQ(t->bounds.size(), 3u);
  ASSERT_EQ(t->buckets.size(), 4u);
  EXPECT_EQ(t->buckets[0], 1u);  // 0.5 <= 1
  EXPECT_EQ(t->buckets[1], 1u);  // 10 <= 10
  EXPECT_EQ(t->buckets[2], 0u);
  EXPECT_EQ(t->buckets[3], 1u);  // 1e6 overflows past 100
}

TEST(ObsMetrics, RestoreRoundTripsSnapshotExactly) {
  MetricsRegistry reg;
  reg.setEnabled(true);
  reg.add("a", 0.1);
  reg.add("a", 0.2);  // 0.1 + 0.2 != 0.3: exercises exact double transport
  reg.set("b", 3062.9170931904364);
  reg.observe("c", 1e-7);
  reg.observe("c", 123.456);
  const MetricsSnapshot snap = reg.snapshot();

  MetricsRegistry other;
  other.setEnabled(true);
  other.add("stale", 9.0);  // must be dropped by restore
  other.restore(snap);
  EXPECT_EQ(other.snapshot(), snap);
}

TEST(ObsMetrics, CsvAndJsonDumpsCarryEverySeries) {
  MetricsRegistry reg;
  reg.setEnabled(true);
  reg.add("sched.tool_runs", 18.0);
  reg.set("sched.charged_seconds", 3062.9170931904364);
  reg.defineHistogram("phase.round.seconds", MetricsRegistry::defaultBounds());
  reg.observe("phase.round.seconds", 0.02);

  const std::string csv = reg.toCsv();
  EXPECT_NE(csv.find("name,kind,value,count,sum,min,max"), std::string::npos);
  EXPECT_NE(csv.find("sched.tool_runs"), std::string::npos);
  EXPECT_NE(csv.find("3062.9170931904364"), std::string::npos);
  EXPECT_NE(csv.find("le_"), std::string::npos);

  const std::string json = reg.toJson();
  EXPECT_NE(json.find("\"sched.charged_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"phase.round.seconds\""), std::string::npos);
}

TEST(ObsMetrics, FixedBucketLayoutsAreStrictlyIncreasing) {
  for (const auto& bounds :
       {MetricsRegistry::defaultBounds(), MetricsRegistry::conditionBounds(),
        MetricsRegistry::countBounds()}) {
    ASSERT_GE(bounds.size(), 2u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
      EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ------------------------------------------------------------ TraceUnit ----

TEST(ObsTrace, DisabledSpanRecordsNothing) {
  obs::Tracer tracer;
  {
    obs::Span s(tracer.enabled() ? &tracer : nullptr, "round", "optimizer");
    EXPECT_FALSE(s.active());
    s.round(3).value(1.0);
  }
  EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(ObsTrace, SpanRecordsFieldsAndDuration) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  {
    obs::Span s(&tracer, "job", "scheduler");
    EXPECT_TRUE(s.active());
    s.round(2).fidelity(1).id(42).attempts(3).value(7.5).outcome("ok");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  const obs::TraceEvent& ev = events[0];
  EXPECT_EQ(ev.name, "job");
  EXPECT_EQ(ev.cat, "scheduler");
  EXPECT_EQ(ev.round, 2);
  EXPECT_EQ(ev.fidelity, 1);
  EXPECT_EQ(ev.id, 42);
  EXPECT_EQ(ev.attempts, 3);
  EXPECT_TRUE(ev.has_value);
  EXPECT_DOUBLE_EQ(ev.value, 7.5);
  EXPECT_EQ(ev.outcome, "ok");
  EXPECT_GE(ev.start_us, 0);
  EXPECT_GE(ev.dur_us, 1000);

  const std::string jsonl = tracer.toJsonl();
  EXPECT_NE(jsonl.find("\"name\": \"job\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"outcome\": \"ok\""), std::string::npos);
  const std::string chrome = tracer.toChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsTrace, ScopedPhaseEmitsSpanAndHistogram) {
  GlobalObsGuard guard;
  obs::tracer().setEnabled(true);
  obs::metrics().setEnabled(true);
  { obs::ScopedPhase p("unit_test_phase", 4); }
  const auto events = obs::tracer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit_test_phase");
  EXPECT_EQ(events[0].round, 4);
  const MetricsSnapshot snap = obs::metrics().snapshot();
  const MetricPoint* h = find(snap, "phase.unit_test_phase.seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricKind::kHistogram);
  EXPECT_EQ(h->count, 1u);
}

TEST(ObsTrace, ConcurrentSpansFromManyThreadsAllLand) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  constexpr int kThreads = 8, kSpansPer = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPer; ++i)
        obs::Span(&tracer, "worker_span", "test").id(t * kSpansPer + i);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.eventCount(),
            static_cast<std::size_t>(kThreads * kSpansPer));
}

// ------------------------------------------------ Causal trace context ----

TEST(ObsTrace, ContextGuardParentsSpansAndRestoresOnExit) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  const std::uint64_t root = 0x5EEDF00Dull;

  std::uint64_t outer_id = 0;
  {
    obs::ContextGuard guard(&tracer, obs::TraceContext{root, root});
    EXPECT_EQ(obs::currentContext().trace_id, root);
    EXPECT_EQ(obs::currentContext().span_id, root);
    {
      obs::Span outer(&tracer, "outer", "test");
      outer_id = outer.spanId();
      EXPECT_EQ(outer.traceId(), root);
      // The open span becomes the ambient context its children parent to.
      EXPECT_EQ(obs::currentContext().span_id, outer_id);
      obs::Span inner(&tracer, "inner", "test");
      EXPECT_EQ(inner.traceId(), root);
    }
    // Closing the spans restored the guard's context.
    EXPECT_EQ(obs::currentContext().span_id, root);
  }
  EXPECT_EQ(obs::currentContext().trace_id, 0u);  // guard popped on exit

  const auto events = tracer.events();  // inner closes (records) first
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  ASSERT_EQ(inner.name, "inner");
  ASSERT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.trace_id, root);
  // Campaign-root convention: a direct child of the root has
  // parent_span_id == trace_id.
  EXPECT_EQ(outer.parent_span_id, root);
  EXPECT_EQ(inner.trace_id, root);
  EXPECT_EQ(inner.parent_span_id, outer_id);
  EXPECT_NE(inner.span_id, outer.span_id);
  EXPECT_NE(inner.span_id, 0u);
}

TEST(ObsTrace, CapturedContextReinstallsAcrossThreads) {
  // The scheduler propagates causality onto worker threads by capturing
  // currentContext() at submit time and re-installing it in the worker;
  // this pins that exact mechanism in isolation.
  obs::Tracer tracer;
  tracer.setEnabled(true);
  const std::uint64_t root = 42ull;
  obs::TraceContext submit_ctx;
  std::uint64_t submit_span = 0;
  {
    obs::ContextGuard guard(&tracer, obs::TraceContext{root, root});
    obs::Span submit(&tracer, "submit", "test");
    submit_span = submit.spanId();
    submit_ctx = obs::currentContext();
  }
  EXPECT_EQ(submit_ctx.span_id, submit_span);

  std::thread worker([&tracer, submit_ctx] {
    EXPECT_EQ(obs::currentContext().trace_id, 0u);  // fresh thread: no ctx
    obs::ContextGuard guard(&tracer, submit_ctx);
    obs::Span(&tracer, "job", "test").outcome("ok");
  });
  worker.join();

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent& job = events[1];
  ASSERT_EQ(job.name, "job");
  EXPECT_EQ(job.trace_id, root);
  EXPECT_EQ(job.parent_span_id, submit_span);
}

TEST(ObsTrace, RingBufferDropsOldestAndCountsDrops) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  EXPECT_EQ(tracer.capacity(), obs::Tracer::kDefaultCapacity);
  tracer.setCapacity(8);
  for (int i = 0; i < 20; ++i) obs::Span(&tracer, "s", "test").id(i);
  EXPECT_EQ(tracer.eventCount(), 8u);
  EXPECT_EQ(tracer.droppedCount(), 12u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)  // oldest were dropped
    EXPECT_EQ(events[i].id, static_cast<std::int64_t>(12 + i));

  // Shrinking below the live size drops (and counts) the overflow too.
  tracer.setCapacity(3);
  EXPECT_EQ(tracer.eventCount(), 3u);
  EXPECT_EQ(tracer.droppedCount(), 17u);
  // clear() resets the drop counter with the buffer.
  tracer.clear();
  EXPECT_EQ(tracer.eventCount(), 0u);
  EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST(ObsTrace, StreamingSinkWritesParseableJsonlAndRotates) {
  const std::string path = testing::TempDir() + "/cmmfo_obs_stream.jsonl";
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());

  obs::Tracer tracer;
  tracer.setEnabled(true);
  ASSERT_TRUE(tracer.openStream(path, /*max_bytes=*/1024));
  EXPECT_TRUE(tracer.streaming());
  for (int i = 0; i < 40; ++i)
    obs::Span(&tracer, "streamed", "test").id(i).value(1.5).outcome("ok");
  tracer.closeStream();
  EXPECT_FALSE(tracer.streaming());

  // ~40 spans at ~100 bytes/line blow through the 1 KiB cap several times:
  // a rotated generation must exist alongside the live file, every line
  // must be well-formed JSON, and the stream's tail must reach the final
  // span (rotation drops a prefix, never the newest events).
  std::size_t lines = 0;
  std::int64_t last_id = -1;
  for (const std::string& file : {rotated, path}) {
    std::ifstream in(file);
    ASSERT_TRUE(in.good()) << file;
    std::string line;
    while (std::getline(in, line)) {
      ++lines;
      util::Json ev;
      ASSERT_TRUE(util::parseJson(line, &ev)) << line;
      EXPECT_EQ(ev.strOr("name", ""), "streamed");
      last_id = static_cast<std::int64_t>(ev.numOr("id", -1.0));
    }
  }
  EXPECT_GT(lines, 0u);
  EXPECT_LE(lines, 40u);
  EXPECT_EQ(last_id, 39);
  // The in-memory ring kept everything regardless of streaming.
  EXPECT_EQ(tracer.eventCount(), 40u);

  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

// ----------------------------------------------- Prometheus exposition ----

// Strict text-format (0.0.4) validation of the scrape renderer: metric
// name charset, # TYPE before any sample of its family, bucket le ordering
// and count cumulativity, +Inf bucket == _count, _sum present, and the
// flat `#campaign=` registry suffix rendered as a real Prometheus label.
TEST(ObsPrometheus, ExpositionSurvivesStrictTextFormatValidation) {
  MetricsRegistry reg;
  reg.setEnabled(true);
  reg.add("server.rounds", 12.0);
  reg.set("sched.charged_seconds", 3062.9170931904364);
  reg.defineHistogram("slo.step_seconds", MetricsRegistry::defaultBounds());
  reg.observe("slo.step_seconds", 0.004);
  reg.observe("slo.step_seconds", 2.5);
  reg.defineHistogram("slo.step_seconds#campaign=camp-a",
                      MetricsRegistry::defaultBounds());
  reg.observe("slo.step_seconds#campaign=camp-a", 0.004);
  reg.set("weird name!", 1.0);  // sanitizer coverage

  const std::string text =
      obs::toPrometheusText(reg.snapshot(), /*trace_dropped=*/7);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');  // exposition must end in a newline

  const auto validName = [](const std::string& name) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
      const bool digit = c >= '0' && c <= '9';
      if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
    }
    return true;
  };

  std::map<std::string, std::string> family_type;
  // Per (family | label-set without le): ordered (le, cumulative count).
  std::map<std::string, std::vector<std::pair<double, double>>> bucket_series;
  std::map<std::string, double> counts, sums;

  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string family, type;
      ASSERT_TRUE(static_cast<bool>(ls >> family >> type)) << line;
      EXPECT_TRUE(validName(family)) << family;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      EXPECT_EQ(family_type.count(family), 0u)
          << "duplicate # TYPE for " << family;
      family_type[family] = type;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;

    // Sample line: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, std::min(brace, space));
    EXPECT_TRUE(validName(name)) << name;

    std::string labels;
    std::size_t value_at = space + 1;
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      labels = line.substr(brace + 1, close - brace - 1);
      ASSERT_LT(close + 1, line.size()) << line;
      ASSERT_EQ(line[close + 1], ' ') << line;
      value_at = close + 2;
    }
    const std::string value_text = line.substr(value_at);
    ASSERT_FALSE(value_text.empty()) << line;
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    ASSERT_EQ(*end, '\0') << line;

    // Histogram sub-series resolve to their base family; every sample must
    // appear AFTER its family's # TYPE line.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string base = name.substr(0, name.size() - s.size());
        const auto it = family_type.find(base);
        if (it != family_type.end() && it->second == "histogram") {
          family = base;
          break;
        }
      }
    }
    ASSERT_EQ(family_type.count(family), 1u)
        << "sample before its # TYPE line: " << line;

    if (family_type[family] == "histogram") {
      std::string series = family + "|";
      double le_val = 0.0;
      bool has_le = false;
      std::size_t pos = 0;
      while (pos < labels.size()) {
        auto comma = labels.find(',', pos);
        if (comma == std::string::npos) comma = labels.size();
        const std::string pair = labels.substr(pos, comma - pos);
        if (pair.rfind("le=\"", 0) == 0) {
          ASSERT_EQ(pair.back(), '"') << line;
          const std::string raw = pair.substr(4, pair.size() - 5);
          has_le = true;
          le_val = raw == "+Inf" ? std::numeric_limits<double>::infinity()
                                 : std::strtod(raw.c_str(), nullptr);
        } else {
          series += pair + ";";
        }
        pos = comma + 1;
      }
      if (name == family + "_bucket") {
        ASSERT_TRUE(has_le) << line;
        bucket_series[series].emplace_back(le_val, value);
      } else if (name == family + "_count") {
        counts[series] = value;
      } else if (name == family + "_sum") {
        sums[series] = value;
      } else {
        ADD_FAILURE() << "bare sample of a histogram family: " << line;
      }
    }
  }

  // Histogram integrity: le strictly ascending, counts cumulative, +Inf
  // bucket last and equal to _count, _sum present — per label set.
  ASSERT_EQ(bucket_series.size(), 2u);  // unlabeled + campaign-labeled
  for (const auto& [series, bs] : bucket_series) {
    ASSERT_GE(bs.size(), 2u) << series;
    for (std::size_t i = 1; i < bs.size(); ++i) {
      EXPECT_LT(bs[i - 1].first, bs[i].first) << series;
      EXPECT_LE(bs[i - 1].second, bs[i].second) << series;
    }
    EXPECT_TRUE(std::isinf(bs.back().first)) << series;
    ASSERT_EQ(counts.count(series), 1u) << series;
    ASSERT_EQ(sums.count(series), 1u) << series;
    EXPECT_DOUBLE_EQ(bs.back().second, counts[series]) << series;
  }

  // The `#campaign=` suffix became a real label on every sub-series.
  EXPECT_NE(
      text.find("cmmfo_slo_step_seconds_bucket{campaign=\"camp-a\",le=\""),
      std::string::npos);
  EXPECT_NE(text.find("cmmfo_slo_step_seconds_sum{campaign=\"camp-a\"} "),
            std::string::npos);
  // Counters take the _total suffix; the drop counter is always exported.
  EXPECT_NE(text.find("cmmfo_server_rounds_total "), std::string::npos);
  EXPECT_NE(text.find("cmmfo_trace_dropped_total 7\n"), std::string::npos);
  // Illegal name characters were rewritten.
  EXPECT_NE(text.find("cmmfo_weird_name_ "), std::string::npos);
}

// --------------------------------------------------- Golden invariance ----

struct Fixture {
  Fixture()
      : bm(bench_suite::makeSpmvCrs()),
        space(hls::DesignSpace::buildPruned(bm.kernel, bm.spec)),
        sim(bm.kernel, sim::DeviceModel::virtex7Vc707(), bm.sim_params, 42) {}
  bench_suite::Benchmark bm;
  hls::DesignSpace space;
  sim::FpgaToolSim sim;
};

core::OptimizerOptions fastOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  return o;
}

// The same seed-77 trajectory test_runtime.cpp pins with observability off,
// re-run here with tracer AND metrics fully on. Instrumentation must be
// invisible to the algorithm: identical picks, identical charged seconds to
// the last bit — and the metrics ledger must tie out exactly against the
// run's own result accounting.
TEST(ObsInvariance, GoldenTrajectoryIdenticalWithFullInstrumentationOn) {
  GlobalObsGuard guard;
  obs::tracer().setEnabled(true);
  obs::metrics().setEnabled(true);

  Fixture f;
  core::OptimizerOptions o = fastOpts();
  o.seed = 77;
  core::CorrelatedMfMoboOptimizer opt(f.space, f.sim, o);
  const auto res = opt.run();

  const std::vector<std::pair<std::size_t, Fidelity>> golden = {
      {275, Fidelity::kImpl}, {184, Fidelity::kImpl}, {132, Fidelity::kImpl},
      {228, Fidelity::kSyn},  {20, Fidelity::kSyn},   {89, Fidelity::kHls},
      {194, Fidelity::kHls},  {57, Fidelity::kHls},   {75, Fidelity::kHls},
      {35, Fidelity::kHls},   {3, Fidelity::kHls},    {0, Fidelity::kHls},
      {7, Fidelity::kHls},    {5, Fidelity::kHls},    {17, Fidelity::kHls},
      {52, Fidelity::kHls},   {1, Fidelity::kHls},    {15, Fidelity::kHls},
  };
  ASSERT_EQ(res.cs.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(res.cs[i].config, golden[i].first) << "at index " << i;
    EXPECT_EQ(res.cs[i].fidelity, golden[i].second) << "at index " << i;
  }
  EXPECT_DOUBLE_EQ(res.tool_seconds, 3062.9170931904364);
  EXPECT_EQ(res.tool_runs, 18);
  EXPECT_DOUBLE_EQ(res.wall_seconds, res.tool_seconds);
  EXPECT_EQ(res.cache_hits, 0);

  // ---- Exact ledger tie-out: metrics vs the run's own accounting. ----
  const MetricsSnapshot snap = obs::metrics().snapshot();

  const MetricPoint* charged = find(snap, "sched.charged_seconds");
  ASSERT_NE(charged, nullptr);
  EXPECT_EQ(charged->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(charged->value, res.tool_seconds);

  const MetricPoint* wall = find(snap, "sched.wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(wall->value, res.wall_seconds);

  const MetricPoint* runs = find(snap, "sched.tool_runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_DOUBLE_EQ(runs->value, 18.0);

  const MetricPoint* hits = find(snap, "sched.cache_hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_DOUBLE_EQ(hits->value, 0.0);

  // Worker-side counter: one flow attempt per tool run (no faults here).
  const MetricPoint* attempts = find(snap, "sim.flow_attempts");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(attempts->value, static_cast<double>(res.attempts));
  EXPECT_DOUBLE_EQ(attempts->value, 18.0);

  const MetricPoint* completed = find(snap, "sim.attempt_status.completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_DOUBLE_EQ(completed->value, 18.0);

  // Per-fidelity PEIPV histograms cover the BO picks (the golden run makes
  // all 10 acquisition picks at the HLS fidelity; the impl/syn entries in
  // the trajectory are the initial design, which has no PEIPV).
  const MetricPoint* p_hls = find(snap, "acq.peipv.hls");
  ASSERT_NE(p_hls, nullptr);
  EXPECT_EQ(p_hls->count, 10u);

  // Phase profiling and progression gauges exist.
  EXPECT_NE(find(snap, "phase.round.seconds"), nullptr);
  EXPECT_NE(find(snap, "phase.gp_fit.seconds"), nullptr);
  EXPECT_NE(find(snap, "phase.acquisition.seconds"), nullptr);
  EXPECT_NE(find(snap, "phase.evaluate.seconds"), nullptr);
  EXPECT_NE(find(snap, "gp.fit_iters"), nullptr);
  EXPECT_NE(find(snap, "gp.cond_log10"), nullptr);
  const MetricPoint* hv = find(snap, "opt.hypervolume.impl");
  ASSERT_NE(hv, nullptr);
  EXPECT_GT(hv->value, 0.0);

  // The trace saw the whole run: rounds, GP fits, picks, jobs, attempts.
  const auto events = obs::tracer().events();
  ASSERT_FALSE(events.empty());
  const auto count = [&events](const char* name) {
    return std::count_if(events.begin(), events.end(),
                         [name](const obs::TraceEvent& e) {
                           return e.name == name;
                         });
  };
  EXPECT_EQ(count("round"), 10);
  EXPECT_EQ(count("acq_pick"), 10);  // one BO pick per round
  EXPECT_EQ(count("job"), 18);       // 8 initial designs + 10 picks
  EXPECT_EQ(count("flow_attempt"), 18);
  EXPECT_GE(count("gp_fit_level"), 3);
}

// ------------------------------------------------- Checkpoint round-trip ----

TEST(ObsCheckpoint, MetricsLedgerSurvivesJournalRoundTripExactly) {
  MetricsRegistry reg;
  reg.setEnabled(true);
  reg.add("sim.flow_attempts", 18.0);
  reg.set("sched.charged_seconds", 3062.9170931904364);
  reg.set("tiny", 4.9406564584124654e-324);  // denormal min: worst case
  reg.defineHistogram("gp.cond_log10", MetricsRegistry::conditionBounds());
  reg.observe("gp.cond_log10", 3.7);
  reg.observe("gp.cond_log10", 12.1);

  core::CheckpointState st;
  st.fingerprint = 0xDEADBEEF;
  st.metrics = reg.snapshot();

  core::CheckpointState back;
  std::string err;
  ASSERT_TRUE(core::parseCheckpoint(core::serializeCheckpoint(st), &back,
                                    &err))
      << err;
  EXPECT_EQ(back.metrics, st.metrics);

  // Restoring into a registry with stale content reproduces the snapshot.
  MetricsRegistry resumed;
  resumed.setEnabled(true);
  resumed.add("leftover", 1.0);
  resumed.restore(back.metrics);
  EXPECT_EQ(resumed.snapshot(), st.metrics);
}

TEST(ObsCheckpoint, JournalsWithoutMetricsKeyStillLoad) {
  // Version-1 journals predating the metrics ledger have no "metrics" key;
  // the parser must treat it as optional.
  core::CheckpointState st;
  std::string text = core::serializeCheckpoint(st);
  const auto pos = text.find("\"metrics\"");
  ASSERT_NE(pos, std::string::npos);
  // Splice the key out: find the preceding comma and the closing ']'.
  const auto comma = text.rfind(',', pos);
  const auto close = text.find(']', pos);
  ASSERT_NE(comma, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  text.erase(comma, close - comma + 1);

  core::CheckpointState back;
  std::string err;
  EXPECT_TRUE(core::parseCheckpoint(text, &back, &err)) << err;
  EXPECT_TRUE(back.metrics.empty());
}

// The async pipeline journals the metrics ledger with every checkpoint; a
// preempted campaign resumed from disk must (1) round-trip the histogram
// state bit-for-bit through the journal and (2) continue accumulating onto
// the restored ledger, so the deterministic series finish exactly where an
// uninterrupted instrumented run finishes.
TEST(ObsCheckpoint, AsyncResumeRestoresAndContinuesHistogramLedger) {
  const std::string path =
      testing::TempDir() + "/cmmfo_obs_async_resume.json";
  std::remove(path.c_str());

  core::OptimizerOptions o = fastOpts();
  o.async = true;
  o.n_workers = 4;
  o.seed = 77;

  // Golden: one uninterrupted, fully instrumented async run.
  GlobalObsGuard guard;
  obs::metrics().setEnabled(true);
  Fixture f1;
  core::CorrelatedMfMoboOptimizer full(f1.space, f1.sim, o);
  const auto golden = full.run();
  const MetricsSnapshot golden_snap = obs::metrics().snapshot();

  // Preempted process: max_rounds mimics a kill with work in flight.
  GlobalObsGuard::reset();
  obs::metrics().setEnabled(true);
  Fixture f2;
  core::OptimizerOptions o_kill = o;
  o_kill.checkpoint_path = path;
  o_kill.max_rounds = 5;
  core::CorrelatedMfMoboOptimizer killed(f2.space, f2.sim, o_kill);
  (void)killed.run();

  // The journal carries live histogram state that restores bit-for-bit
  // into a fresh registry.
  core::CheckpointState st;
  std::string err;
  ASSERT_TRUE(core::loadCheckpointAny(path, &st, &err)) << err;
  ASSERT_FALSE(st.metrics.empty());
  EXPECT_TRUE(std::any_of(st.metrics.begin(), st.metrics.end(),
                          [](const MetricPoint& p) {
                            return p.kind == MetricKind::kHistogram &&
                                   p.count > 0;
                          }));
  MetricsRegistry fresh;
  fresh.setEnabled(true);
  fresh.restore(st.metrics);
  EXPECT_EQ(fresh.snapshot(), st.metrics);

  // Resume: pre-existing registry content is wiped by the restore and the
  // continued run lands the deterministic series on the uninterrupted
  // run's exact values.
  GlobalObsGuard::reset();
  obs::metrics().setEnabled(true);
  obs::metrics().add("stale.junk", 7.0);
  Fixture f3;
  core::OptimizerOptions o_resume = o;
  o_resume.checkpoint_path = path;
  o_resume.resume = true;
  core::CorrelatedMfMoboOptimizer resumed(f3.space, f3.sim, o_resume);
  const auto finished = resumed.run();
  EXPECT_TRUE(finished.resumed);
  EXPECT_DOUBLE_EQ(finished.tool_seconds, golden.tool_seconds);

  const MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_EQ(find(snap, "stale.junk"), nullptr);
  for (const char* name : {"sched.charged_seconds", "sched.wall_seconds",
                           "sched.cache_hits", "sched.tool_runs"}) {
    const MetricPoint* got = find(snap, name);
    const MetricPoint* want = find(golden_snap, name);
    ASSERT_NE(got, nullptr) << name;
    ASSERT_NE(want, nullptr) << name;
    EXPECT_DOUBLE_EQ(got->value, want->value) << name;
  }
  // The acquisition histograms observe deterministic PEIPV values in
  // deterministic pick order: restored + continued must equal the golden
  // run POINT-for-point (count, sum, min, max, every bucket).
  int peipv_series = 0;
  for (const MetricPoint& want : golden_snap) {
    if (want.name.rfind("acq.peipv.", 0) != 0) continue;
    ++peipv_series;
    const MetricPoint* got = find(snap, want.name);
    ASSERT_NE(got, nullptr) << want.name;
    EXPECT_EQ(*got, want) << want.name;
  }
  EXPECT_GE(peipv_series, 1);

  std::remove(path.c_str());
}

// ------------------------------------------- Concurrent observer (TSan) ----

TEST(ObsThreadPool, QueueDepthReadableWhileWorkersRun) {
  runtime::ThreadPool pool(2);
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load()) {
      const std::size_t d = pool.queueDepth();
      EXPECT_LE(d, 512u);
    }
  });
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 256; ++i)
    futures.push_back(pool.submit([i] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      return i;
    }));
  for (auto& f : futures) (void)f.get();
  stop.store(true);
  observer.join();
  EXPECT_EQ(pool.queueDepth(), 0u);
}

// An observer thread hammers totals()/lastBatch()/metrics snapshots while
// runBatch() executes faulty jobs. Under TSan this proves the stats mutex
// covers every ledger access; the assertions prove snapshots are never torn
// (wasted retries can never exceed total charged seconds within ONE
// consistent snapshot).
TEST(ObsScheduler, ConcurrentStatsSnapshotsAreNeverTorn) {
  GlobalObsGuard guard;
  obs::metrics().setEnabled(true);

  Fixture f;
  sim::FaultParams faults;
  faults.transient_crash_prob = 0.3;
  f.sim.setFaultParams(faults);

  runtime::EvalCache cache;
  runtime::RetryPolicy policy;
  policy.max_attempts = 3;
  runtime::ToolScheduler sched(f.space, f.sim, cache, /*n_workers=*/4,
                               policy);

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load()) {
      const runtime::SchedulerStats t = sched.totals();
      EXPECT_LE(t.retry_seconds_wasted, t.charged_seconds + 1e-9);
      EXPECT_GE(t.attempts, t.tool_runs);
      const runtime::SchedulerStats lb = sched.lastBatch();
      EXPECT_LE(lb.retry_seconds_wasted, lb.charged_seconds + 1e-9);
      (void)obs::metrics().snapshot();
    }
  });

  for (int round = 0; round < 4; ++round) {
    std::vector<runtime::EvalJob> jobs;
    for (std::size_t c = 0; c < 12; ++c)
      jobs.push_back({(round * 12 + c) % f.space.size(), Fidelity::kHls});
    const auto results = sched.runBatch(jobs);
    EXPECT_EQ(results.size(), jobs.size());
  }
  stop.store(true);
  observer.join();

  // After quiescence the gauges equal the ledger exactly.
  const runtime::SchedulerStats t = sched.totals();
  const MetricsSnapshot snap = obs::metrics().snapshot();
  const MetricPoint* charged = find(snap, "sched.charged_seconds");
  ASSERT_NE(charged, nullptr);
  EXPECT_DOUBLE_EQ(charged->value, t.charged_seconds);
  const MetricPoint* attempts = find(snap, "sched.attempts");
  ASSERT_NE(attempts, nullptr);
  EXPECT_DOUBLE_EQ(attempts->value, static_cast<double>(t.attempts));
}

}  // namespace
}  // namespace cmmfo
