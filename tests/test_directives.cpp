#include <gtest/gtest.h>

#include <set>

#include "hls/directives.h"

namespace cmmfo::hls {
namespace {

Kernel tinyKernel() {
  Kernel k("tiny");
  k.addArray("a", 16);
  k.addLoop("l0", 8);
  k.addLoop("l1", 4, 0);
  return k;
}

TEST(Directives, HashStableAndDistinct) {
  DirectiveConfig c1;
  c1.loops.resize(2);
  c1.arrays.resize(1);
  const std::uint64_t h1 = c1.hash();
  EXPECT_EQ(h1, c1.hash());

  DirectiveConfig c2 = c1;
  c2.loops[0].unroll = 2;
  EXPECT_NE(c2.hash(), h1);

  DirectiveConfig c3 = c1;
  c3.arrays[0] = {PartitionType::kCyclic, 2};
  EXPECT_NE(c3.hash(), h1);
  EXPECT_NE(c3.hash(), c2.hash());
}

TEST(Directives, HashDistinguishesPipelineFromUnroll) {
  DirectiveConfig a, b;
  a.loops.resize(1);
  b.loops.resize(1);
  a.loops[0].pipeline = true;
  b.loops[0].unroll = 2;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Directives, HashCollisionsRareOverEnumeration) {
  std::set<std::uint64_t> hashes;
  int count = 0;
  for (int u0 : {1, 2, 4, 8})
    for (int u1 : {1, 2, 4})
      for (int p : {0, 1})
        for (int f : {1, 2, 4, 8, 16}) {
          DirectiveConfig c;
          c.loops.resize(2);
          c.arrays.resize(1);
          c.loops[0].unroll = u0;
          c.loops[1].unroll = u1;
          c.loops[1].pipeline = p != 0;
          c.arrays[0] = {f > 1 ? PartitionType::kCyclic : PartitionType::kNone,
                         f};
          hashes.insert(c.hash());
          ++count;
        }
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(count));
}

TEST(Directives, ToStringMentionsActiveDirectivesOnly) {
  const Kernel k = tinyKernel();
  DirectiveConfig c;
  c.loops.resize(2);
  c.arrays.resize(1);
  EXPECT_EQ(c.toString(k), "");
  c.loops[0].unroll = 4;
  c.arrays[0] = {PartitionType::kBlock, 2};
  const std::string s = c.toString(k);
  EXPECT_NE(s.find("unroll l0 factor=4"), std::string::npos);
  EXPECT_NE(s.find("array_partition a block factor=2"), std::string::npos);
  EXPECT_EQ(s.find("l1"), std::string::npos);
}

TEST(SpaceSpec, RawSizeCountsCartesianProduct) {
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2, 4};           // 3
  spec.loops[0].allow_pipeline = true;                // x (1 + |iis|)
  spec.loops[0].pipeline_iis = {1, 2};                // -> 3 * 3 = 9
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic};
  spec.arrays[0].factors = {2, 4};                    // 1 + 2 = 3
  EXPECT_DOUBLE_EQ(spec.rawSize(), 27.0);
}

TEST(SpaceSpec, RawSizeNoPipeline) {
  SpaceSpec spec;
  spec.loops.resize(2);
  spec.arrays.resize(0);
  spec.loops[0].unroll_factors = {1, 2};
  spec.loops[1].unroll_factors = {1, 2, 4, 8};
  EXPECT_DOUBLE_EQ(spec.rawSize(), 8.0);
}

TEST(DivisorFactors, DivisorsUpToCap) {
  EXPECT_EQ(divisorFactors(12, 6), (std::vector<int>{1, 2, 3, 4, 6}));
  EXPECT_EQ(divisorFactors(8, 100), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(divisorFactors(7, 6), (std::vector<int>{1}));
}

TEST(PartitionTypeNames, Distinct) {
  std::set<std::string> names;
  for (PartitionType t : {PartitionType::kNone, PartitionType::kCyclic,
                          PartitionType::kBlock, PartitionType::kComplete})
    names.insert(partitionTypeName(t));
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace cmmfo::hls
