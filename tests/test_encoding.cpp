#include <gtest/gtest.h>

#include <set>

#include "hls/design_space.h"
#include "hls/encoding.h"

namespace cmmfo::hls {
namespace {

Kernel oneLoopKernel() {
  Kernel k("enc");
  k.addArray("a", 16);
  const LoopId l = k.addLoop("l", 10);
  k.loop(l).refs.push_back({0, {{l, IndexRole::kMinor}}, false, 1});
  return k;
}

TEST(Encoder, PaperNormalizationExample) {
  // Sec. III-B: "three factors {2, 5, 10} are encoded as {0, 0.375, 1}".
  const Kernel k = oneLoopKernel();
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {2, 5, 10};
  spec.arrays[0].types = {PartitionType::kNone};
  spec.arrays[0].factors = {1};
  const Encoder enc(k, spec);
  ASSERT_EQ(enc.dim(), 1u);

  DirectiveConfig c;
  c.loops.resize(1);
  c.arrays.resize(1);
  c.loops[0].unroll = 2;
  EXPECT_DOUBLE_EQ(enc.encode(c)[0], 0.0);
  c.loops[0].unroll = 5;
  EXPECT_DOUBLE_EQ(enc.encode(c)[0], 0.375);
  c.loops[0].unroll = 10;
  EXPECT_DOUBLE_EQ(enc.encode(c)[0], 1.0);
}

TEST(Encoder, PipelineBooleanFeature) {
  const Kernel k = oneLoopKernel();
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2};
  spec.loops[0].allow_pipeline = true;
  spec.loops[0].pipeline_iis = {1, 2, 4};
  spec.arrays[0].types = {PartitionType::kNone};
  spec.arrays[0].factors = {1};
  const Encoder enc(k, spec);
  ASSERT_EQ(enc.dim(), 3u);  // unroll, pipeline flag, ii

  DirectiveConfig c;
  c.loops.resize(1);
  c.arrays.resize(1);
  c.loops[0].pipeline = false;
  auto x = enc.encode(c);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_DOUBLE_EQ(x[2], 0.0);  // II feature inert while not pipelined
  c.loops[0].pipeline = true;
  c.loops[0].ii = 4;
  x = enc.encode(c);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(Encoder, PartitionTypeAndFactorFeatures) {
  const Kernel k = oneLoopKernel();
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic,
                          PartitionType::kBlock};
  spec.arrays[0].factors = {1, 2, 4};
  const Encoder enc(k, spec);
  // unroll site is constant (single option) but still emitted; type+factor.
  ASSERT_EQ(enc.dim(), 3u);

  DirectiveConfig c;
  c.loops.resize(1);
  c.arrays.resize(1);
  c.arrays[0] = {PartitionType::kCyclic, 4};
  auto x = enc.encode(c);
  EXPECT_DOUBLE_EQ(x[1], 0.5);  // cyclic = index 1 of 3 types
  EXPECT_DOUBLE_EQ(x[2], 1.0);  // factor 4 of {1,2,4}
  c.arrays[0] = {PartitionType::kNone, 1};
  x = enc.encode(c);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
}

TEST(Encoder, FeatureNamesMatchDim) {
  const Kernel k = oneLoopKernel();
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2, 4};
  spec.loops[0].allow_pipeline = true;
  spec.loops[0].pipeline_iis = {1, 2};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic};
  spec.arrays[0].factors = {1, 2};
  const Encoder enc(k, spec);
  EXPECT_EQ(enc.featureNames().size(), enc.dim());
  for (const auto& n : enc.featureNames()) EXPECT_FALSE(n.empty());
}

TEST(Encoder, FeaturesInUnitInterval) {
  const auto bm_name = std::string("gemm");
  // Exercise through the DesignSpace of a real benchmark indirectly by
  // constructing a small spec here (bench-suite coverage lives elsewhere).
  const Kernel k = oneLoopKernel();
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2, 5, 10};
  spec.loops[0].allow_pipeline = true;
  spec.loops[0].pipeline_iis = {1, 4};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic};
  spec.arrays[0].factors = {1, 2, 5, 10};
  const DesignSpace space = DesignSpace::buildPruned(k, spec);
  for (std::size_t i = 0; i < space.size(); ++i)
    for (double v : space.features(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  (void)bm_name;
}

TEST(DesignSpace, DistinctConfigsDistinctFeatures) {
  const Kernel k = oneLoopKernel();
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2, 5, 10};
  spec.loops[0].allow_pipeline = true;
  spec.loops[0].pipeline_iis = {1, 4};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic};
  spec.arrays[0].factors = {1, 2, 5, 10};
  const DesignSpace space = DesignSpace::buildPruned(k, spec);
  std::set<std::vector<double>> seen;
  for (std::size_t i = 0; i < space.size(); ++i)
    seen.insert(space.features(i));
  EXPECT_EQ(seen.size(), space.size());
}

TEST(DesignSpace, BuildRawAndPrunedShareEncoder) {
  const Kernel k = oneLoopKernel();
  SpaceSpec spec;
  spec.loops.resize(1);
  spec.arrays.resize(1);
  spec.loops[0].unroll_factors = {1, 2};
  spec.arrays[0].types = {PartitionType::kNone, PartitionType::kCyclic};
  spec.arrays[0].factors = {1, 2};
  const DesignSpace pruned = DesignSpace::buildPruned(k, spec);
  const DesignSpace raw = DesignSpace::buildRaw(k, spec, 100);
  EXPECT_EQ(pruned.featureDim(), raw.featureDim());
  EXPECT_GE(raw.size(), pruned.size());
}

}  // namespace
}  // namespace cmmfo::hls
