#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gp/ard_kernels.h"
#include "gp/linear_mf_gp.h"
#include "gp/nonlinear_mf_gp.h"
#include "rng/rng.h"

namespace cmmfo::gp {
namespace {

// The classic NARGP benchmark pair (Perdikaris et al. 2017):
//   f_lo(x)  = sin(8 pi x)
//   f_hi(x)  = (x - sqrt(2)) * f_lo(x)^2
// The high fidelity is a NON-LINEAR transform of the low fidelity, which a
// linear AR(1) model cannot capture but the non-linear model can.
double fLo(double x) { return std::sin(8.0 * std::numbers::pi * x); }
double fHi(double x) { return (x - std::sqrt(2.0)) * fLo(x) * fLo(x); }

NonlinearMfGpOptions fastNargp() {
  NonlinearMfGpOptions o;
  o.gp.mle_restarts = 1;
  o.gp.max_mle_iters = 50;
  o.gp.init_noise = 1e-2;
  return o;
}

std::vector<FidelityData> nargpData(int n_lo, int n_hi) {
  std::vector<FidelityData> data(2);
  for (int i = 0; i < n_lo; ++i) {
    const double x = static_cast<double>(i) / (n_lo - 1);
    data[0].x.push_back({x});
    data[0].y.push_back(fLo(x));
  }
  for (int i = 0; i < n_hi; ++i) {
    const double x = static_cast<double>(i) / (n_hi - 1);
    data[1].x.push_back({x});
    data[1].y.push_back(fHi(x));
  }
  return data;
}

double rmseHighFidelity(const NonlinearMfGp& gp) {
  double se = 0.0;
  int n = 0;
  for (double x = 0.025; x < 1.0; x += 0.05, ++n) {
    const double err = gp.predictHighest({x}).mean - fHi(x);
    se += err * err;
  }
  return std::sqrt(se / n);
}

TEST(NonlinearMfGp, LearnsNonlinearCrossFidelityMap) {
  rng::Rng rng(1);
  NonlinearMfGp gp(1, 2, fastNargp());
  gp.fit(nargpData(41, 15), rng);
  EXPECT_LT(rmseHighFidelity(gp), 0.12);
}

TEST(NonlinearMfGp, BeatsSingleFidelityGpWithScarceHighData) {
  rng::Rng rng(2);
  const auto data = nargpData(41, 15);

  NonlinearMfGp mf(1, 2, fastNargp());
  mf.fit(data, rng);

  GpFitOptions gopts;
  gopts.mle_restarts = 1;
  GpRegressor single(Matern52Ard(1), gopts);
  single.fit(data[1].x, data[1].y, rng);

  double se_single = 0.0;
  int n = 0;
  for (double x = 0.025; x < 1.0; x += 0.05, ++n) {
    const double e = single.predict({x}).mean - fHi(x);
    se_single += e * e;
  }
  const double rmse_single = std::sqrt(se_single / n);
  EXPECT_LT(rmseHighFidelity(mf), rmse_single);
}

TEST(NonlinearMfGp, ThreeLevels) {
  rng::Rng rng(3);
  // Level 2 = linear transform of level 1 (which is nonlinear in level 0).
  std::vector<FidelityData> data(3);
  for (int i = 0; i < 31; ++i) {
    const double x = i / 30.0;
    data[0].x.push_back({x});
    data[0].y.push_back(fLo(x));
  }
  for (int i = 0; i < 15; ++i) {
    const double x = i / 14.0;
    data[1].x.push_back({x});
    data[1].y.push_back(fHi(x));
  }
  for (int i = 0; i < 9; ++i) {
    // Avoid multiples of 1/8, which are zeros of sin(8 pi x) — sampling
    // there would make the level-2 training targets literally constant.
    const double x = (i + 0.45) / 9.0;
    data[2].x.push_back({x});
    data[2].y.push_back(2.0 * fHi(x) + 0.3);
  }
  NonlinearMfGp gp(1, 3, fastNargp());
  gp.fit(data, rng);
  double se = 0.0;
  int n = 0;
  for (double x = 0.05; x < 1.0; x += 0.1, ++n) {
    const double e = gp.predict(2, {x}).mean - (2.0 * fHi(x) + 0.3);
    se += e * e;
  }
  EXPECT_LT(std::sqrt(se / n), 0.25);
}

TEST(NonlinearMfGp, VariancePropagationInflatesUncertainty) {
  rng::Rng rng(4);
  NonlinearMfGpOptions with = fastNargp();
  with.propagate_variance = true;
  NonlinearMfGpOptions without = fastNargp();
  without.propagate_variance = false;

  const auto data = nargpData(21, 7);
  NonlinearMfGp a(1, 2, with), b(1, 2, without);
  a.fit(data, rng);
  rng::Rng rng2(4);
  b.fit(data, rng2);
  // At a point far from high-fidelity data, propagated variance >= plain.
  const double va = a.predictHighest({0.93}).var;
  const double vb = b.predictHighest({0.93}).var;
  EXPECT_GE(va, vb * 0.999);
}

TEST(LinearMfGp, RecoversLinearScale) {
  rng::Rng rng(5);
  // f_hi = 3 f_lo + 1: exactly the AR(1) family.
  std::vector<FidelityData> data(2);
  for (int i = 0; i < 25; ++i) {
    const double x = i / 24.0;
    data[0].x.push_back({x});
    data[0].y.push_back(std::sin(5.0 * x));
  }
  for (int i = 0; i < 9; ++i) {
    const double x = i / 8.0;
    data[1].x.push_back({x});
    data[1].y.push_back(3.0 * std::sin(5.0 * x) + 1.0);
  }
  LinearMfGp gp(1, 2);
  gp.fit(data, rng);
  double se = 0.0;
  int n = 0;
  for (double x = 0.05; x < 1.0; x += 0.1, ++n) {
    const double e = gp.predictHighest({x}).mean - (3.0 * std::sin(5.0 * x) + 1.0);
    se += e * e;
  }
  EXPECT_LT(std::sqrt(se / n), 0.25);
}

TEST(LinearMfGp, NonlinearMapDefeatsLinearModel) {
  // On the NARGP pair, the non-linear model should beat the linear one —
  // this is exactly the paper's argument for Eq. (5) over FPL18.
  rng::Rng rng1(6), rng2(6);
  std::vector<FidelityData> data(2);
  const auto nd = nargpData(41, 15);
  data[0] = nd[0];
  data[1] = nd[1];

  LinearMfGp lin(1, 2);
  lin.fit(data, rng1);
  NonlinearMfGp nonlin(1, 2, fastNargp());
  nonlin.fit(data, rng2);

  auto rmse = [&](auto& model) {
    double se = 0.0;
    int n = 0;
    for (double x = 0.025; x < 1.0; x += 0.05, ++n) {
      const double e = model.predictHighest({x}).mean - fHi(x);
      se += e * e;
    }
    return std::sqrt(se / n);
  };
  EXPECT_LT(rmse(nonlin), rmse(lin));
}

TEST(LinearMfGp, PredictLowestLevelIsPlainGp) {
  rng::Rng rng(7);
  std::vector<FidelityData> data(2);
  for (int i = 0; i < 12; ++i) {
    const double x = i / 11.0;
    data[0].x.push_back({x});
    data[0].y.push_back(x * x);
    if (i % 2 == 0) {
      data[1].x.push_back({x});
      data[1].y.push_back(x * x);
    }
  }
  LinearMfGp gp(1, 2);
  gp.fit(data, rng);
  EXPECT_NEAR(gp.predict(0, {0.5}).mean, 0.25, 0.05);
}

}  // namespace
}  // namespace cmmfo::gp
