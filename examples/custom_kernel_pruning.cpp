// Custom-kernel walkthrough of the tree-based pruning method (Algorithm 1)
// on exactly the code of the paper's Fig. 3:
//
//   for L1 in range(0, N1):
//     for L2 in range(0, N2): op(A[L1*10 + L2])
//     for L3 in range(0, N3): op(B[L1*10 + L3]); op(A[L1*10 + L3])
//
// Shows the per-array trees, the merged tree, the compatibility rules, and
// how the surviving configurations look.

#include <cstdio>

#include "hls/design_space.h"
#include "hls/pruner.h"

using namespace cmmfo::hls;

int main() {
  Kernel k("fig3");
  const ArrayId a = k.addArray("A", 100);
  const ArrayId b = k.addArray("B", 100);
  const LoopId l1 = k.addLoop("L1", 10);
  const LoopId l2 = k.addLoop("L2", 10, l1);
  const LoopId l3 = k.addLoop("L3", 10, l1);
  k.loop(l2).body_ops[OpKind::kAdd] = 1;
  k.loop(l2).body_ops[OpKind::kLoad] = 1;
  k.loop(l2).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l2, IndexRole::kMinor}}, false, 1});
  k.loop(l3).body_ops[OpKind::kAdd] = 2;
  k.loop(l3).body_ops[OpKind::kLoad] = 2;
  k.loop(l3).refs.push_back(
      {b, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});
  k.loop(l3).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});

  // Merged trees (Fig. 3b): A and B share L1/L3, so one tree remains.
  std::printf("merged trees:\n");
  for (const auto& t : buildMergedTrees(k)) {
    std::printf("  arrays:");
    for (ArrayId ai : t.arrays) std::printf(" %s", k.array(ai).name.c_str());
    std::printf("   loops:");
    for (LoopId li : t.loops) std::printf(" %s", k.loop(li).name.c_str());
    std::printf("\n");
  }

  // The compatibility rules the paper walks through.
  std::printf("\ncyclic partitioning of A:\n");
  for (LoopId l : {l1, l2, l3})
    std::printf("  unroll %s: %s\n", k.loop(l).name.c_str(),
                unrollCompatible(k, l, a, PartitionType::kCyclic)
                    ? "compatible"
                    : "INCOMPATIBLE (strided access would collide in banks)");

  // Directive space and pruning.
  SpaceSpec spec;
  spec.loops.resize(k.numLoops());
  spec.arrays.resize(k.numArrays());
  for (auto& site : spec.loops) site.unroll_factors = {1, 2, 5, 10};
  spec.loops[l2].allow_pipeline = true;
  spec.loops[l3].allow_pipeline = true;
  for (auto& site : spec.arrays) {
    site.types = {PartitionType::kNone, PartitionType::kCyclic,
                  PartitionType::kBlock};
    site.factors = {1, 2, 5, 10};
  }

  PruneStats stats;
  const auto configs = prunedConfigs(k, spec, &stats);
  std::printf("\nraw space %.0f -> pruned %zu (%.0fx reduction)\n\n",
              stats.raw_size, stats.pruned_size, stats.reduction_factor());

  std::printf("a few surviving configurations:\n");
  for (std::size_t i = 0; i < configs.size(); i += configs.size() / 5 + 1) {
    std::printf("--- config %zu ---\n%s", i,
                configs[i].toString(k).empty() ? "(all defaults)\n"
                                               : configs[i].toString(k).c_str());
  }

  // Every survivor satisfies the compatibility invariant.
  int ok = 0;
  for (const auto& c : configs) ok += isCompatibleConfig(k, c);
  std::printf("\n%d / %zu configurations pass the compatibility check\n", ok,
              configs.size());
  return 0;
}
