// GEMM design-space exploration: the paper's flagship workload. Runs the
// full method and the FPL18 baseline on the MachSuite GEMM benchmark,
// compares their learned Pareto sets against the exhaustive ground truth
// (ADRS), and prints the learned objective correlations — the quantity the
// correlated multi-task model exists to capture (latency vs LUT negative,
// power vs LUT positive; Sec. IV-B).

#include <cstdio>

#include "exp/harness.h"

using namespace cmmfo;

int main() {
  exp::BenchmarkContext ctx(bench_suite::makeGemm());
  std::printf("GEMM: %zu pruned configurations, %zu true Pareto points\n\n",
              ctx.space().size(), ctx.groundTruth().paretoFront().size());

  core::OptimizerOptions opts;
  opts.n_iter = 30;
  opts.max_candidates = 250;
  opts.refit_every = 4;
  opts.seed = 11;

  // --- Ours.
  ctx.sim().resetAccounting();
  core::CorrelatedMfMoboOptimizer ours(ctx.space(), ctx.sim(), opts);
  const auto res = ours.run();
  std::vector<std::size_t> sel;
  for (const auto& rec : res.cs) sel.push_back(rec.config);
  std::printf("Ours : ADRS=%.4f  tool-time=%.1f h  (%d tool runs)\n",
              ctx.adrsOf(sel), res.tool_seconds / 3600.0, res.tool_runs);

  // Learned objective correlations at the hls fidelity.
  const auto corr = ours.surrogate().taskCorrelation(0);
  std::printf("learned objective correlations (hls level):\n");
  std::printf("            Power   Delay     LUT\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-8s", sim::objectiveName(i));
    for (int j = 0; j < 3; ++j) std::printf(" %7.3f", corr(i, j));
    std::printf("\n");
  }

  // --- FPL18 for contrast.
  ctx.sim().resetAccounting();
  core::OptimizerOptions fopts = opts;
  fopts.surrogate.mf = core::MfKind::kLinear;
  fopts.surrogate.obj = core::ObjModelKind::kIndependent;
  core::CorrelatedMfMoboOptimizer fpl(ctx.space(), ctx.sim(), fopts);
  const auto fres = fpl.run();
  std::vector<std::size_t> fsel;
  for (const auto& rec : fres.cs) fsel.push_back(rec.config);
  std::printf("\nFPL18: ADRS=%.4f  tool-time=%.1f h\n", ctx.adrsOf(fsel),
              fres.tool_seconds / 3600.0);

  // --- The learned front itself.
  std::printf("\nbest learned designs (true post-Impl values):\n");
  pareto::ParetoFront front;
  for (std::size_t i : sel)
    if (ctx.groundTruth().valid(i))
      front.insert(ctx.groundTruth().implObjectives(i), i);
  std::printf("%8s %10s %9s  directives (abridged)\n", "power/W", "delay/us",
              "LUT util");
  for (std::size_t i = 0; i < front.size() && i < 8; ++i) {
    const auto& y = front.points()[i];
    std::printf("%8.3f %10.2f %9.4f\n", y[0], y[1], y[2]);
  }
  return 0;
}
