// Quickstart: optimize the HLS directives of a small vector-scale kernel
// with the paper's correlated multi-objective multi-fidelity Bayesian
// optimizer, end to end:
//
//   1. describe the kernel (loops, arrays, accesses) in the IR,
//   2. declare the candidate directives (the raw design space),
//   3. prune with the tree-based method (Algorithm 1),
//   4. run the optimizer against the simulated FPGA flow,
//   5. print the learned Pareto set.

#include <cstdio>

#include "core/optimizer.h"
#include "hls/design_space.h"
#include "pareto/dominance.h"
#include "sim/tool.h"

using namespace cmmfo;

int main() {
  // ---- 1. Kernel: for (i < 512) out[i] = a[i] * b[i] + c;  --------------
  hls::Kernel kernel("saxpy");
  const hls::ArrayId a = kernel.addArray("a", 512);
  const hls::ArrayId b = kernel.addArray("b", 512);
  const hls::ArrayId out = kernel.addArray("out", 512);
  const hls::LoopId loop = kernel.addLoop("i", 512);
  kernel.loop(loop).body_ops[hls::OpKind::kLoad] = 2;
  kernel.loop(loop).body_ops[hls::OpKind::kMul] = 1;
  kernel.loop(loop).body_ops[hls::OpKind::kAdd] = 1;
  kernel.loop(loop).body_ops[hls::OpKind::kStore] = 1;
  using hls::IndexRole;
  kernel.loop(loop).refs.push_back({a, {{loop, IndexRole::kMinor}}, false, 1});
  kernel.loop(loop).refs.push_back({b, {{loop, IndexRole::kMinor}}, false, 1});
  kernel.loop(loop).refs.push_back({out, {{loop, IndexRole::kMinor}}, true, 1});

  // ---- 2. Candidate directives. ------------------------------------------
  hls::SpaceSpec spec;
  spec.loops.resize(kernel.numLoops());
  spec.arrays.resize(kernel.numArrays());
  spec.loops[loop].unroll_factors = {1, 2, 4, 8, 16, 32};
  spec.loops[loop].allow_pipeline = true;
  spec.loops[loop].pipeline_iis = {1, 2, 4};
  for (auto& site : spec.arrays) {
    site.types = {hls::PartitionType::kNone, hls::PartitionType::kCyclic,
                  hls::PartitionType::kBlock};
    site.factors = {1, 2, 4, 8, 16, 32};
  }
  std::printf("raw design space:    %.3g configurations\n", spec.rawSize());

  // ---- 3. Tree-based pruning (Algorithm 1). -------------------------------
  const auto space = hls::DesignSpace::buildPruned(kernel, spec);
  std::printf("pruned design space: %zu configurations (%.0fx reduction)\n\n",
              space.size(), space.stats().reduction_factor());

  // ---- 4. Optimize against the simulated Vivado-style flow. ---------------
  sim::SimParams params;  // defaults: moderate cross-fidelity divergence
  sim::FpgaToolSim sim(kernel, sim::DeviceModel::virtex7Vc707(), params, 1);

  core::OptimizerOptions opts;
  opts.n_iter = 25;
  opts.seed = 7;
  core::CorrelatedMfMoboOptimizer optimizer(space, sim, opts);
  const core::OptimizeResult result = optimizer.run();

  std::printf("tool invocations: %d   simulated tool time: %.0f s\n",
              result.tool_runs, result.tool_seconds);
  std::printf("BO picks per fidelity: hls=%d syn=%d impl=%d\n\n",
              result.picks_per_fidelity[0], result.picks_per_fidelity[1],
              result.picks_per_fidelity[2]);

  // ---- 5. Learned Pareto set (at each sample's measured values). ----------
  pareto::ParetoFront front;
  for (const auto& rec : result.cs)
    if (rec.report.valid) front.insert(rec.report.objectives(), rec.config);

  std::printf("learned Pareto set (%zu points):\n", front.size());
  std::printf("%8s %10s %10s %8s   directives\n", "power/W", "delay/us",
              "LUT util", "config#");
  for (std::size_t i = 0; i < front.size(); ++i) {
    const auto& y = front.points()[i];
    const std::size_t id = front.ids()[i];
    std::printf("%8.3f %10.2f %10.4f %8zu\n", y[0], y[1], y[2], id);
    std::printf("%s", space.config(id).toString(kernel).c_str());
  }
  return 0;
}
