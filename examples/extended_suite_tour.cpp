// Tour of the extended benchmark suite: for each of the six extra MachSuite
// kernels, parse a user-style directive-space description where one exists,
// prune, run a short optimization with the maximin seed design, and emit
// the Vivado TCL for the best-delay design found — the full user-facing
// path from kernel description to tool script.

#include <cstdio>

#include "bench_suite/extended_benchmarks.h"
#include "exp/harness.h"
#include "hls/space_parser.h"
#include "hls/tcl_emitter.h"

using namespace cmmfo;

int main() {
  for (const auto& name : bench_suite::extendedBenchmarkNames()) {
    exp::BenchmarkContext ctx(bench_suite::makeAnyBenchmark(name));
    std::printf("== %s: %s ==\n", name.c_str(),
                ctx.benchmark().description.c_str());
    std::printf("   space %zu (raw %.3g), true Pareto %zu\n",
                ctx.space().size(), ctx.space().stats().raw_size,
                ctx.groundTruth().paretoFront().size());

    core::OptimizerOptions opts;
    opts.n_iter = 15;
    opts.mc_samples = 16;
    opts.max_candidates = 120;
    opts.refit_every = 5;
    opts.init_design = core::InitDesign::kMaximin;
    opts.seed = 21;
    core::CorrelatedMfMoboOptimizer optimizer(ctx.space(), ctx.sim(), opts);
    const auto res = optimizer.run();

    std::vector<std::size_t> sel;
    for (const auto& rec : res.cs) sel.push_back(rec.config);
    std::printf("   ADRS after %zu tool runs: %.4f\n", res.cs.size(),
                ctx.adrsOf(sel));

    // Best-delay valid proposal -> its TCL directive block.
    std::size_t best = sel[0];
    double best_delay = 1e300;
    for (std::size_t i : sel) {
      if (!ctx.groundTruth().valid(i)) continue;
      const double d = ctx.groundTruth().implObjectives(i)[1];
      if (d < best_delay) {
        best_delay = d;
        best = i;
      }
    }
    hls::TclOptions topts;
    topts.top_function = name;
    std::printf("   best delay %.2f us; directives:\n%s\n", best_delay,
                hls::emitDirectivesTcl(ctx.benchmark().kernel,
                                       ctx.space().config(best), topts)
                    .c_str());
  }

  // The space-parser path: re-describe one kernel's directive space in the
  // text format and show it produces a usable design space.
  const auto bm = bench_suite::makeFft();
  const auto parsed = hls::parseSpaceSpec(bm.kernel, R"(
loop butterfly unroll 1,2,4,8 pipeline 1,2
array real partition none,cyclic factors 1,2,4,8
array img partition none,cyclic factors 1,2,4,8
)");
  if (std::holds_alternative<hls::SpaceSpec>(parsed)) {
    const auto space = hls::DesignSpace::buildPruned(
        bm.kernel, std::get<hls::SpaceSpec>(parsed));
    std::printf("parsed FFT space from text description: %zu configurations\n",
                space.size());
  }
  return 0;
}
