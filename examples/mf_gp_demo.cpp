// Multi-fidelity GP regression demo on the classic NARGP benchmark pair
// (the structure behind Eq. 5 of the paper):
//
//   f_lo(x) = sin(8 pi x)                 cheap, dense data
//   f_hi(x) = (x - sqrt(2)) * f_lo(x)^2   expensive, scarce data
//
// The high fidelity is a NON-LINEAR transform of the low one. The demo fits
// (a) a plain GP on the scarce high-fidelity data,
// (b) the linear AR(1) co-kriging model (FPL18's assumption), and
// (c) the paper's non-linear multi-fidelity model,
// and prints their predictions side by side.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "gp/ard_kernels.h"
#include "gp/gp_regressor.h"
#include "gp/linear_mf_gp.h"
#include "gp/nonlinear_mf_gp.h"

using namespace cmmfo;
using namespace cmmfo::gp;

namespace {
double fLo(double x) { return std::sin(8.0 * std::numbers::pi * x); }
double fHi(double x) { return (x - std::sqrt(2.0)) * fLo(x) * fLo(x); }
}  // namespace

int main() {
  rng::Rng rng(1);

  std::vector<FidelityData> data(2);
  for (int i = 0; i < 41; ++i) {
    const double x = i / 40.0;
    data[0].x.push_back({x});
    data[0].y.push_back(fLo(x));
  }
  for (int i = 0; i < 15; ++i) {
    const double x = i / 14.0;
    data[1].x.push_back({x});
    data[1].y.push_back(fHi(x));
  }

  GpFitOptions gopts;
  gopts.mle_restarts = 2;
  GpRegressor single(Matern52Ard(1), gopts);
  single.fit(data[1].x, data[1].y, rng);

  LinearMfGp linear(1, 2, gopts);
  linear.fit(data, rng);

  NonlinearMfGpOptions nopts;
  nopts.gp = gopts;
  NonlinearMfGp nonlinear(1, 2, nopts);
  nonlinear.fit(data, rng);

  std::printf("# x     true    single    linear  nonlinear\n");
  double se_s = 0.0, se_l = 0.0, se_n = 0.0;
  int n = 0;
  for (int i = 0; i <= 100; ++i, ++n) {
    const double x = i / 100.0;
    const double t = fHi(x);
    const double ps = single.predict({x}).mean;
    const double pl = linear.predictHighest({x}).mean;
    const double pn = nonlinear.predictHighest({x}).mean;
    se_s += (ps - t) * (ps - t);
    se_l += (pl - t) * (pl - t);
    se_n += (pn - t) * (pn - t);
    if (i % 5 == 0)
      std::printf("%.2f %8.4f %9.4f %9.4f %10.4f\n", x, t, ps, pl, pn);
  }
  std::printf("\nRMSE  single-fidelity GP: %.4f\n", std::sqrt(se_s / n));
  std::printf("RMSE  linear MF (FPL18) : %.4f\n", std::sqrt(se_l / n));
  std::printf("RMSE  non-linear MF     : %.4f   <- Eq. (5)\n",
              std::sqrt(se_n / n));
  return 0;
}
