#!/bin/sh
# Runs every bench binary (the repo's reproduction sweep).
#
#   ./run_benches.sh               run all benches from build/bench; micro
#                                  benches additionally emit JSON, merged
#                                  into BENCH_10.json (the perf trajectory
#                                  archive)
#   ./run_benches.sh --tsan-smoke  build the test binary under ThreadSanitizer
#                                  (CMMFO_SANITIZE=thread) and run the
#                                  parallel-runtime tests under it

if [ "$1" = "--tsan-smoke" ]; then
  set -e
  cmake -B build-tsan -S . -DCMMFO_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j --target cmmfo_tests
  exec ./build-tsan/tests/cmmfo_tests \
    --gtest_filter='ThreadPool*:EvalCache*:Scheduler*:ToolSim*:BatchedOptimizer*:FaultInjection*:SchedulerFaults*:OptimizerFaults*:Backoff*:Checkpoint*:Obs*:Diag*:Server*:Chaos*:Scenario*:Async*'
fi

OUTDIR=bench-out
mkdir -p "$OUTDIR"

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "====================================================================="
  echo "===== $b"
  echo "====================================================================="
  case "$(basename "$b")" in
    micro_*)
      # Google-benchmark binaries archive their results as JSON so the perf
      # trajectory accumulates across revisions.
      "$b" --benchmark_out="$OUTDIR/$(basename "$b").json" \
           --benchmark_out_format=json
      ;;
    server_throughput)
      # The multi-campaign server harness archives its own JSON summary.
      "$b" --out "$OUTDIR/server_throughput.json"
      ;;
    chaos_sweep)
      # Crash-only supervision gate: exits non-zero on any trajectory
      # deviation; counters are archived alongside the perf numbers.
      "$b" --out "$OUTDIR/chaos_sweep.json"
      ;;
    scenario_matrix)
      # Procedural-scenario acceptance gates: pruning-audit soundness,
      # budgeted oracle-ADRS, multi-die fidelity gap, diag capture.
      "$b" --out "$OUTDIR/scenario_matrix.json"
      ;;
    async_scaling)
      # Event-driven pipeline vs the round barrier; archives the
      # speedup/ADRS numbers behind the CMMFO_PERF_GATE CI gate.
      "$b" --out "$OUTDIR/async_scaling.json"
      ;;
    *)
      "$b"
      ;;
  esac
done

# Merge the per-binary JSON files into one archive keyed by binary name.
if command -v python3 > /dev/null 2>&1 && [ -n "$(ls "$OUTDIR" 2>/dev/null)" ]; then
  python3 - "$OUTDIR" BENCH_10.json <<'EOF'
import json, os, sys
outdir, dest = sys.argv[1], sys.argv[2]
merged = {}
for f in sorted(os.listdir(outdir)):
    if not f.endswith(".json"):
        continue
    try:
        with open(os.path.join(outdir, f)) as fh:
            merged[f[:-5]] = json.load(fh)
    except (OSError, ValueError):
        pass
with open(dest, "w") as fh:
    json.dump(merged, fh, indent=1)
print("archived %d bench result set(s) -> %s" % (len(merged), dest))
EOF
fi
