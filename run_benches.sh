#!/bin/sh
# Runs every bench binary (the repo's reproduction sweep).
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "=====================================================================" 
  echo "===== $b"
  echo "====================================================================="
  "$b"
done
