#!/bin/sh
# Runs every bench binary (the repo's reproduction sweep).
#
#   ./run_benches.sh               run all benches from build/bench
#   ./run_benches.sh --tsan-smoke  build the test binary under ThreadSanitizer
#                                  (CMMFO_SANITIZE=thread) and run the
#                                  parallel-runtime tests under it

if [ "$1" = "--tsan-smoke" ]; then
  set -e
  cmake -B build-tsan -S . -DCMMFO_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j --target cmmfo_tests
  exec ./build-tsan/tests/cmmfo_tests \
    --gtest_filter='ThreadPool*:EvalCache*:Scheduler*:ToolSim*:BatchedOptimizer*:FaultInjection*:SchedulerFaults*:OptimizerFaults*:Backoff*:Checkpoint*:Obs*'
fi

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "====================================================================="
  echo "===== $b"
  echo "====================================================================="
  "$b"
done
