// google-benchmark microbenchmarks for the Pareto kernels: dominance
// filtering, 2-D/3-D hypervolume, hypervolume improvement and the Fig. 6
// cell decomposition.

#include <benchmark/benchmark.h>

#include "pareto/cells.h"
#include "pareto/dominance.h"
#include "pareto/hypervolume.h"
#include "rng/rng.h"

using namespace cmmfo;
using namespace cmmfo::pareto;

namespace {

std::vector<Point> randomPoints(std::size_t n, std::size_t m,
                                std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<Point> pts(n, Point(m));
  for (auto& p : pts)
    for (auto& v : p) v = rng.uniform();
  return pts;
}

void BM_ParetoFilter(benchmark::State& state) {
  const auto pts = randomPoints(state.range(0), 3, 1);
  for (auto _ : state) benchmark::DoNotOptimize(paretoFilter(pts));
}
BENCHMARK(BM_ParetoFilter)->Arg(64)->Arg(256)->Arg(1024);

void BM_Hypervolume2d(benchmark::State& state) {
  const auto pts = randomPoints(state.range(0), 2, 2);
  const Point ref = {1.1, 1.1};
  for (auto _ : state) benchmark::DoNotOptimize(hypervolume(pts, ref));
}
BENCHMARK(BM_Hypervolume2d)->Arg(32)->Arg(128);

void BM_Hypervolume3d(benchmark::State& state) {
  const auto pts = randomPoints(state.range(0), 3, 3);
  const Point ref = {1.1, 1.1, 1.1};
  for (auto _ : state) benchmark::DoNotOptimize(hypervolume(pts, ref));
}
BENCHMARK(BM_Hypervolume3d)->Arg(32)->Arg(128);

void BM_HviExclusive(benchmark::State& state) {
  const auto front = paretoFilter(randomPoints(state.range(0), 3, 4));
  const Point ref = {1.1, 1.1, 1.1};
  rng::Rng rng(5);
  const Point y = {rng.uniform(), rng.uniform(), rng.uniform()};
  for (auto _ : state)
    benchmark::DoNotOptimize(hypervolumeImprovement(y, front, ref));
}
BENCHMARK(BM_HviExclusive)->Arg(64)->Arg(256);

void BM_CellDecomposition2d(benchmark::State& state) {
  const auto front = paretoFilter(randomPoints(state.range(0), 2, 6));
  const Point ref = {1.1, 1.1};
  for (auto _ : state) benchmark::DoNotOptimize(nonDominatedCells(front, ref));
}
BENCHMARK(BM_CellDecomposition2d)->Arg(16)->Arg(64);

void BM_ExactEipv2d(benchmark::State& state) {
  const auto front = paretoFilter(randomPoints(state.range(0), 2, 7));
  const Point ref = {1.1, 1.1};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        exactEipvIndependent({0.4, 0.4}, {0.1, 0.1}, front, ref));
}
BENCHMARK(BM_ExactEipv2d)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
