// Observability overhead bench: proves the tracing + metrics layer is
// cheap enough to leave on (<2% wall-clock by default) and — the part that
// actually matters — that it is ALGORITHMICALLY invisible: the optimizer's
// trajectory with full instrumentation enabled is bit-for-bit the
// trajectory with it disabled.
//
// Method: alternate disabled/enabled runs of the seed-77 SpmvCrs golden
// configuration (interleaved so CPU frequency drift hits both arms
// equally), compare the median wall-clock of each arm, and fingerprint
// every run's (config, fidelity) sequence plus charged tool-seconds.
//
// Knobs:
//   CMMFO_OBS_BUDGET    relative overhead budget (default 0.02)
//   CMMFO_REPEATS       runs per arm (default 5, CMMFO_FAST caps to 3)
//   CMMFO_OBS_TRACE     path to dump a sample trace JSONL (optional)
//   CMMFO_OBS_METRICS   path to dump a sample metrics CSV (optional)
//
// Exit status 1 when the overhead budget is exceeded or any enabled run's
// trajectory diverges from the disabled baseline — CI fails on either.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.h"
#include "core/optimizer.h"
#include "exp/harness.h"
#include "obs/obs.h"

using namespace cmmfo;

namespace {

core::OptimizerOptions goldenOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  o.seed = 77;
  return o;
}

struct RunOutcome {
  double seconds = 0.0;           // host wall-clock of run()
  double tool_seconds = 0.0;      // simulated charged time (determinism key)
  std::vector<std::pair<std::size_t, int>> picks;
};

RunOutcome runOnce(bool instrumented) {
  obs::tracer().clear();
  obs::metrics().clear();
  obs::tracer().setEnabled(instrumented);
  obs::metrics().setEnabled(instrumented);

  const auto bm = bench_suite::makeSpmvCrs();
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  sim::FpgaToolSim sim(bm.kernel, sim::DeviceModel::virtex7Vc707(),
                       bm.sim_params, 42);
  core::CorrelatedMfMoboOptimizer opt(space, sim, goldenOpts());

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = opt.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.tool_seconds = res.tool_seconds;
  for (const auto& e : res.cs)
    out.picks.emplace_back(e.config, static_cast<int>(e.fidelity));
  return out;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  const bool fast = exp::fastModeFromEnv();
  int repeats = exp::repeatsFromEnv(5);
  if (fast) repeats = std::min(repeats, 3);
  repeats = std::max(repeats, 1);

  double budget = 0.02;
  if (const char* b = std::getenv("CMMFO_OBS_BUDGET")) budget = std::atof(b);
  // Absolute noise floor: on sub-second runs, scheduler jitter alone can
  // exceed 2% — never fail on less than 25 ms of absolute difference.
  const double abs_floor = 0.025;

  std::printf("observability overhead: SpmvCrs seed-77 golden run, "
              "%d repeats per arm, budget %.1f%%\n\n",
              repeats, 100.0 * budget);

  // Warm-up run (untimed) so allocator/page-cache state is equal for both.
  const RunOutcome baseline = runOnce(false);

  std::vector<double> t_off, t_on;
  bool identical = true;
  for (int i = 0; i < repeats; ++i) {  // interleave the arms
    const RunOutcome off = runOnce(false);
    const RunOutcome on = runOnce(true);
    t_off.push_back(off.seconds);
    t_on.push_back(on.seconds);
    if (off.picks != baseline.picks || on.picks != baseline.picks ||
        off.tool_seconds != baseline.tool_seconds ||
        on.tool_seconds != baseline.tool_seconds) {
      identical = false;
      std::printf("repeat %d: TRAJECTORY DIVERGED (off %zu picks %.17g s, "
                  "on %zu picks %.17g s)\n",
                  i, off.picks.size(), off.tool_seconds, on.picks.size(),
                  on.tool_seconds);
    }
    std::printf("repeat %d: off %.3f s   on %.3f s   (%zu trace events, "
                "%zu metric series)\n",
                i, off.seconds, on.seconds, obs::tracer().eventCount(),
                obs::metrics().snapshot().size());
  }

  const double m_off = median(t_off);
  const double m_on = median(t_on);
  const double overhead = m_off > 0.0 ? (m_on - m_off) / m_off : 0.0;
  std::printf("\nmedian off %.3f s   median on %.3f s   overhead %+.2f%%\n",
              m_off, m_on, 100.0 * overhead);
  std::printf("trajectories identical across arms: %s\n",
              identical ? "yes" : "NO");

  // Sample artifacts (the last instrumented run's buffers are still live).
  if (const char* p = std::getenv("CMMFO_OBS_TRACE")) {
    if (obs::tracer().writeJsonl(p))
      std::printf("sample trace  -> %s (%zu events)\n", p,
                  obs::tracer().eventCount());
  }
  if (const char* p = std::getenv("CMMFO_OBS_METRICS")) {
    if (obs::metrics().writeFile(p))
      std::printf("sample metrics -> %s (%zu series)\n", p,
                  obs::metrics().snapshot().size());
  }

  bool ok = identical;
  if (overhead > budget && (m_on - m_off) > abs_floor) {
    std::printf("FAIL: overhead %.2f%% exceeds the %.1f%% budget\n",
                100.0 * overhead, 100.0 * budget);
    ok = false;
  }
  if (!identical)
    std::printf("FAIL: instrumentation perturbed the trajectory\n");
  return ok ? 0 : 1;
}
