// Observability overhead bench: proves the tracing + metrics layer is
// cheap enough to leave on (<2% wall-clock by default) and — the part that
// actually matters — that it is ALGORITHMICALLY invisible: the optimizer's
// trajectory with full instrumentation enabled is bit-for-bit the
// trajectory with it disabled.
//
// Three arms, each gated independently:
//   sync    the seed-77 SpmvCrs golden run (Algorithm 2, sequential)
//   async   the same spec through the asynchronous pipeline (W=2): covers
//           the submit-closure context capture and queue-wait timing
//   server  two campaigns multiplexed on one OptimizationServer (shared
//           pool, shared cache, per-campaign SLO series): covers the
//           driver-loop step histograms and the campaign trace roots
//
// Method per arm: alternate disabled/enabled runs (interleaved so CPU
// frequency drift hits both sub-arms equally), compare the median
// wall-clock, and fingerprint every run's (config, fidelity) sequence plus
// charged tool-seconds.
//
// Knobs:
//   CMMFO_OBS_BUDGET    relative overhead budget (default 0.02)
//   CMMFO_REPEATS       runs per arm (default 5, CMMFO_FAST caps to 3)
//   CMMFO_OBS_TRACE     path to dump a sample trace JSONL (optional)
//   CMMFO_OBS_METRICS   path to dump a sample metrics CSV (optional)
//
// Exit status 1 when any arm exceeds the overhead budget or any enabled
// run's trajectory diverges from its disabled baseline — CI fails on
// either.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_suite/benchmarks.h"
#include "core/optimizer.h"
#include "exp/harness.h"
#include "obs/obs.h"
#include "server/server.h"

using namespace cmmfo;

namespace {

core::OptimizerOptions goldenOpts() {
  core::OptimizerOptions o;
  o.n_iter = 10;
  o.mc_samples = 16;
  o.max_candidates = 60;
  o.refit_every = 5;
  o.surrogate.mtgp.mle_restarts = 0;
  o.surrogate.mtgp.max_mle_iters = 25;
  o.surrogate.gp.mle_restarts = 0;
  o.surrogate.gp.max_mle_iters = 25;
  o.seed = 77;
  return o;
}

enum class Arm { kSync, kAsync, kServer };

const char* armName(Arm a) {
  switch (a) {
    case Arm::kSync: return "sync";
    case Arm::kAsync: return "async";
    case Arm::kServer: return "server";
  }
  return "?";
}

struct RunOutcome {
  double seconds = 0.0;           // host wall-clock of run()
  double tool_seconds = 0.0;      // simulated charged time (determinism key)
  std::vector<std::pair<std::size_t, int>> picks;
};

RunOutcome runDirect(bool async) {
  const auto bm = bench_suite::makeSpmvCrs();
  const auto space = hls::DesignSpace::buildPruned(bm.kernel, bm.spec);
  sim::FpgaToolSim sim(bm.kernel, sim::DeviceModel::virtex7Vc707(),
                       bm.sim_params, 42);
  core::OptimizerOptions opts = goldenOpts();
  if (async) {
    opts.async = true;
    opts.n_workers = 2;
  }
  core::CorrelatedMfMoboOptimizer opt(space, sim, opts);

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = opt.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.tool_seconds = res.tool_seconds;
  for (const auto& e : res.cs)
    out.picks.emplace_back(e.config, static_cast<int>(e.fidelity));
  return out;
}

server::CampaignSpec serverSpec(const std::string& id, std::uint64_t seed,
                                std::uint64_t sim_seed) {
  server::CampaignSpec spec;
  spec.id = id;
  spec.benchmark = "spmv_crs";
  // Distinct sim_seeds put the two campaigns in DIFFERENT cache
  // namespaces: no cross-campaign coalescing, so each trajectory's charged
  // seconds stay deterministic under thread interleaving.
  spec.sim_seed = sim_seed;
  spec.opts = goldenOpts();
  spec.opts.seed = seed;
  spec.opts.n_iter = 6;
  spec.opts.batch_size = 2;
  return spec;
}

RunOutcome runServer() {
  server::ServerOptions so;
  so.workers = 2;
  so.slots = 2;
  server::OptimizationServer srv(so);

  const auto t0 = std::chrono::steady_clock::now();
  srv.start();
  std::string err;
  if (!srv.submit(serverSpec("obs_a", 77, 42), &err) ||
      !srv.submit(serverSpec("obs_b", 78, 43), &err)) {
    std::fprintf(stderr, "obs_overhead: submit failed: %s\n", err.c_str());
    std::exit(1);
  }
  srv.drain();
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  // Fingerprint both campaigns in id order; the {SIZE_MAX, -1} sentinel
  // keeps the concatenated sequences unambiguous.
  for (const char* id : {"obs_a", "obs_b"}) {
    const auto c = srv.campaign(id);
    const auto res = c != nullptr ? c->result() : std::nullopt;
    if (!res.has_value()) {
      std::fprintf(stderr, "obs_overhead: campaign %s has no result\n", id);
      std::exit(1);
    }
    out.tool_seconds += res->tool_seconds;
    out.picks.emplace_back(static_cast<std::size_t>(-1), -1);
    for (const auto& e : res->cs)
      out.picks.emplace_back(e.config, static_cast<int>(e.fidelity));
  }
  srv.stop();
  return out;
}

RunOutcome runOnce(Arm arm, bool instrumented) {
  obs::tracer().clear();
  obs::metrics().clear();
  obs::tracer().setEnabled(instrumented);
  obs::metrics().setEnabled(instrumented);
  switch (arm) {
    case Arm::kSync: return runDirect(false);
    case Arm::kAsync: return runDirect(true);
    case Arm::kServer: return runServer();
  }
  return {};
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One interleaved off/on comparison for one arm. Returns false on an
/// exceeded budget or a perturbed trajectory.
bool runArm(Arm arm, int repeats, double budget, double abs_floor) {
  std::printf("---- arm: %s ----\n", armName(arm));
  // Warm-up run (untimed) so allocator/page-cache state is equal for both.
  const RunOutcome baseline = runOnce(arm, false);

  std::vector<double> t_off, t_on;
  bool identical = true;
  for (int i = 0; i < repeats; ++i) {  // interleave the sub-arms
    const RunOutcome off = runOnce(arm, false);
    const RunOutcome on = runOnce(arm, true);
    t_off.push_back(off.seconds);
    t_on.push_back(on.seconds);
    if (off.picks != baseline.picks || on.picks != baseline.picks ||
        off.tool_seconds != baseline.tool_seconds ||
        on.tool_seconds != baseline.tool_seconds) {
      identical = false;
      std::printf("repeat %d: TRAJECTORY DIVERGED (off %zu picks %.17g s, "
                  "on %zu picks %.17g s)\n",
                  i, off.picks.size(), off.tool_seconds, on.picks.size(),
                  on.tool_seconds);
    }
    std::printf("repeat %d: off %.3f s   on %.3f s   (%zu trace events, "
                "%zu metric series)\n",
                i, off.seconds, on.seconds, obs::tracer().eventCount(),
                obs::metrics().snapshot().size());
  }

  const double m_off = median(t_off);
  const double m_on = median(t_on);
  const double overhead = m_off > 0.0 ? (m_on - m_off) / m_off : 0.0;
  std::printf("median off %.3f s   median on %.3f s   overhead %+.2f%%\n",
              m_off, m_on, 100.0 * overhead);
  std::printf("trajectories identical across arms: %s\n\n",
              identical ? "yes" : "NO");

  bool ok = identical;
  if (overhead > budget && (m_on - m_off) > abs_floor) {
    std::printf("FAIL: %s overhead %.2f%% exceeds the %.1f%% budget\n",
                armName(arm), 100.0 * overhead, 100.0 * budget);
    ok = false;
  }
  if (!identical)
    std::printf("FAIL: %s instrumentation perturbed the trajectory\n",
                armName(arm));
  return ok;
}

}  // namespace

int main() {
  const bool fast = exp::fastModeFromEnv();
  int repeats = exp::repeatsFromEnv(5);
  if (fast) repeats = std::min(repeats, 3);
  repeats = std::max(repeats, 1);

  double budget = 0.02;
  if (const char* b = std::getenv("CMMFO_OBS_BUDGET")) budget = std::atof(b);
  // Absolute noise floor: on sub-second runs, scheduler jitter alone can
  // exceed 2% — never fail on less than 25 ms of absolute difference (50 ms
  // for the threaded server arm, whose start/stop adds scheduler noise).
  const double abs_floor = 0.025;

  std::printf("observability overhead: SpmvCrs seed-77 golden spec, "
              "%d repeats per arm, budget %.1f%%\n\n",
              repeats, 100.0 * budget);

  bool ok = true;
  ok &= runArm(Arm::kSync, repeats, budget, abs_floor);
  ok &= runArm(Arm::kAsync, repeats, budget, abs_floor);
  ok &= runArm(Arm::kServer, repeats, budget, 2.0 * abs_floor);

  // Sample artifacts (the last instrumented run's buffers are still live —
  // the server arm, so the dump carries campaign trace roots and the
  // per-campaign SLO series).
  if (const char* p = std::getenv("CMMFO_OBS_TRACE")) {
    if (obs::tracer().writeJsonl(p))
      std::printf("sample trace  -> %s (%zu events)\n", p,
                  obs::tracer().eventCount());
  }
  if (const char* p = std::getenv("CMMFO_OBS_METRICS")) {
    if (obs::metrics().writeFile(p))
      std::printf("sample metrics -> %s (%zu series)\n", p,
                  obs::metrics().snapshot().size());
  }

  return ok ? 0 : 1;
}
