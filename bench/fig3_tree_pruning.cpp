// Regenerates Fig. 3 / the Sec. V-A pruning claim: per-benchmark raw
// Cartesian design-space sizes vs tree-pruned sizes ("the design space [of
// SORT_RADIX] is pruned from more than 3.8e12 to 20000 configurations"),
// plus the merged-tree structure of the Fig. 3 example kernel.

#include <cstdio>

#include "bench_suite/benchmarks.h"
#include "hls/design_space.h"
#include "hls/pruner.h"

using namespace cmmfo;
using namespace cmmfo::hls;

int main() {
  // --- The Fig. 3 example itself: trees of A and B merge through L1/L3.
  Kernel k("fig3");
  const ArrayId a = k.addArray("A", 100);
  const ArrayId b = k.addArray("B", 100);
  const LoopId l1 = k.addLoop("L1", 10);
  const LoopId l2 = k.addLoop("L2", 10, l1);
  const LoopId l3 = k.addLoop("L3", 10, l1);
  k.loop(l2).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l2, IndexRole::kMinor}}, false, 1});
  k.loop(l3).refs.push_back(
      {b, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});
  k.loop(l3).refs.push_back(
      {a, {{l1, IndexRole::kMajor}, {l3, IndexRole::kMinor}}, false, 1});

  std::printf("Fig. 3 example: merged trees\n");
  for (const auto& tree : buildMergedTrees(k)) {
    std::printf("  tree: arrays {");
    for (ArrayId ai : tree.arrays) std::printf(" %s", k.array(ai).name.c_str());
    std::printf(" }  loops {");
    for (LoopId li : tree.loops) std::printf(" %s", k.loop(li).name.c_str());
    std::printf(" }\n");
  }
  std::printf(
      "  cyclic(A) compatible loops: L1=%d L2=%d L3=%d (paper: L1 is "
      "incompatible)\n\n",
      unrollCompatible(k, l1, a, PartitionType::kCyclic),
      unrollCompatible(k, l2, a, PartitionType::kCyclic),
      unrollCompatible(k, l3, a, PartitionType::kCyclic));

  // --- Per-benchmark pruning statistics.
  std::printf("%-14s %14s %10s %12s\n", "benchmark", "raw size", "pruned",
              "reduction");
  for (const auto& name : bench_suite::benchmarkNames()) {
    const auto bm = bench_suite::makeBenchmark(name);
    const auto space = DesignSpace::buildPruned(bm.kernel, bm.spec);
    std::printf("%-14s %14.3g %10zu %11.0fx\n", name.c_str(),
                space.stats().raw_size, space.size(),
                space.stats().reduction_factor());
  }
  return 0;
}
