// Multi-campaign server throughput harness.
//
// The same 8-campaign workload runs two ways at EQUAL worker count W:
//  - sequential baseline: each campaign alone on a W-wide farm (its own
//    cache, its own pool), one after the other;
//  - concurrent: all 8 submitted to one OptimizationServer multiplexing
//    them over a shared W-wide pool and a shared namespaced eval cache.
//
// The headline metric is SIMULATED farm time — this box may have a single
// core, so real wall-clock mostly measures the model math, not the tool
// farm the server is scheduling. Simulated time is the same accounting the
// repo's batch-scaling bench reports: per-round greedy list scheduling,
// summed per campaign in isolation vs packed onto the shared farm by
// SharedFarmModel. Real host seconds are reported alongside.
//
// The workload is 4 distinct (seed) specs x 2 replicas on one benchmark:
// replicas share a cache namespace, so the second submission of each pair
// rides the first one's artifacts — the shared-cache hit-rate uplift a
// multi-tenant deployment sees on re-runs and warm restarts.
//
// With CMMFO_PERF_GATE set, exits non-zero unless the concurrent server
// clears >= 2x aggregate campaigns/sec over the sequential baseline.
// --out PATH additionally writes the numbers as JSON.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/campaign_stepper.h"
#include "exp/harness.h"
#include "server/server.h"
#include "util/json.h"

using namespace cmmfo;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const bool fast = exp::fastModeFromEnv();
  const int kWorkers = 8;
  const int kSlots = 4;
  const int kDistinct = fast ? 2 : 4;
  const int kReplicas = 2;
  const int n_campaigns = kDistinct * kReplicas;

  // One spec per campaign; replica r of seed s differs only in id.
  std::vector<server::CampaignSpec> specs;
  for (int s = 0; s < kDistinct; ++s) {
    for (int r = 0; r < kReplicas; ++r) {
      server::CampaignSpec spec;
      spec.id = "c" + std::to_string(s) + "_r" + std::to_string(r);
      spec.benchmark = "spmv_crs";
      spec.opts.seed = 100 + static_cast<std::uint64_t>(s);
      spec.opts.n_iter = fast ? 6 : 10;
      spec.opts.batch_size = 2;
      spec.opts.mc_samples = 16;
      spec.opts.max_candidates = 60;
      spec.opts.refit_every = 5;
      spec.opts.surrogate.mtgp.mle_restarts = 0;
      spec.opts.surrogate.gp.mle_restarts = 0;
      spec.opts.surrogate.mtgp.max_mle_iters = 25;
      spec.opts.surrogate.gp.max_mle_iters = 25;
      specs.push_back(spec);
    }
  }

  std::printf("server_throughput: %d campaigns (%d distinct x %d replicas), "
              "W=%d workers, %d slots\n\n",
              n_campaigns, kDistinct, kReplicas, kWorkers, kSlots);

  // ---- Sequential baseline: isolated campaigns, back to back. ----
  double seq_sim_seconds = 0.0;
  std::uint64_t seq_hits = 0, seq_misses = 0;
  const double seq_t0 = nowSeconds();
  for (const server::CampaignSpec& spec : specs) {
    const std::shared_ptr<const hls::DesignSpace> space =
        server::makeSpaceFor(spec.benchmark);
    const std::shared_ptr<const bench_suite::Benchmark> bm =
        server::makeBenchmarkFor(spec.benchmark);
    const std::unique_ptr<sim::FpgaToolSim> sim =
        server::makeSimFor(spec, *bm);
    core::OptimizerOptions o = spec.opts;
    o.n_workers = kWorkers;  // equal farm width, private to this campaign
    core::CampaignStepper stepper(*space, *sim, o);
    while (!stepper.done()) stepper.step();
    const core::OptimizeResult res = stepper.finish();
    seq_sim_seconds += res.wall_seconds;
    seq_hits += static_cast<std::uint64_t>(res.cache_hits);
    seq_misses += static_cast<std::uint64_t>(res.tool_runs);
  }
  const double seq_real_seconds = nowSeconds() - seq_t0;

  // ---- Concurrent: one server, shared pool + cache. ----
  server::ServerOptions sopts;
  sopts.workers = kWorkers;
  sopts.slots = kSlots;
  server::OptimizationServer srv(sopts);

  std::vector<double> step_seconds;
  std::mutex steps_mu;
  srv.subscribe([&](const std::string& line) {
    // Cheap extraction; the event format is produced by this repo.
    const std::size_t k = line.find("\"step_seconds\":");
    if (k == std::string::npos) return;
    std::lock_guard<std::mutex> lock(steps_mu);
    step_seconds.push_back(std::strtod(line.c_str() + k + 15, nullptr));
  });

  srv.start();
  const double conc_t0 = nowSeconds();
  for (const server::CampaignSpec& spec : specs) {
    std::string err;
    if (!srv.submit(spec, &err)) {
      std::fprintf(stderr, "submit %s failed: %s\n", spec.id.c_str(),
                   err.c_str());
      return 1;
    }
  }
  srv.drain();
  const double conc_real_seconds = nowSeconds() - conc_t0;
  const server::ServerStats stats = srv.stats();
  const double conc_sim_seconds = stats.farm_makespan_seconds;
  srv.stop();

  const double sim_speedup =
      conc_sim_seconds > 1e-12 ? seq_sim_seconds / conc_sim_seconds : 0.0;
  const double real_speedup =
      conc_real_seconds > 1e-12 ? seq_real_seconds / conc_real_seconds : 0.0;
  const double seq_cps =
      seq_sim_seconds > 1e-12 ? n_campaigns / seq_sim_seconds : 0.0;
  const double conc_cps =
      conc_sim_seconds > 1e-12 ? n_campaigns / conc_sim_seconds : 0.0;
  const double seq_lookups = static_cast<double>(seq_hits + seq_misses);
  const double seq_hit_rate =
      seq_lookups > 0.0 ? static_cast<double>(seq_hits) / seq_lookups : 0.0;
  const double conc_lookups =
      static_cast<double>(stats.cache.hits + stats.cache.misses);
  const double conc_hit_rate =
      conc_lookups > 0.0 ? static_cast<double>(stats.cache.hits) / conc_lookups
                         : 0.0;
  const double p50 = percentile(step_seconds, 0.50);
  const double p95 = percentile(step_seconds, 0.95);
  const double p99 = percentile(step_seconds, 0.99);

  std::printf("%-34s %14s %14s\n", "", "sequential", "concurrent");
  std::printf("%-34s %14.1f %14.1f\n", "simulated farm seconds",
              seq_sim_seconds, conc_sim_seconds);
  std::printf("%-34s %14.2f %14.2f\n", "real host seconds", seq_real_seconds,
              conc_real_seconds);
  std::printf("%-34s %14.4f %14.4f\n", "campaigns/sim-sec", seq_cps,
              conc_cps);
  std::printf("%-34s %14.3f %14.3f\n", "cache hit rate", seq_hit_rate,
              conc_hit_rate);
  std::printf("\nsimulated speedup (>= 2x required): %.2fx\n", sim_speedup);
  std::printf("real-host speedup on this machine:  %.2fx\n", real_speedup);
  std::printf("per-step real latency p50/p95/p99:  %.1f / %.1f / %.1f ms "
              "(%zu steps)\n",
              p50 * 1e3, p95 * 1e3, p99 * 1e3, step_seconds.size());
  std::printf("shared-cache hit-rate uplift:       %+.1f points\n",
              100.0 * (conc_hit_rate - seq_hit_rate));

  if (!out_path.empty()) {
    std::string j = "{\"campaigns\":";
    util::putInt(j, n_campaigns);
    j += ",\"workers\":";
    util::putInt(j, kWorkers);
    j += ",\"slots\":";
    util::putInt(j, kSlots);
    j += ",\"seq_sim_seconds\":";
    util::putDouble(j, seq_sim_seconds);
    j += ",\"conc_sim_seconds\":";
    util::putDouble(j, conc_sim_seconds);
    j += ",\"seq_real_seconds\":";
    util::putDouble(j, seq_real_seconds);
    j += ",\"conc_real_seconds\":";
    util::putDouble(j, conc_real_seconds);
    j += ",\"sim_speedup\":";
    util::putDouble(j, sim_speedup);
    j += ",\"real_speedup\":";
    util::putDouble(j, real_speedup);
    j += ",\"campaigns_per_sim_second_sequential\":";
    util::putDouble(j, seq_cps);
    j += ",\"campaigns_per_sim_second_concurrent\":";
    util::putDouble(j, conc_cps);
    j += ",\"cache_hit_rate_sequential\":";
    util::putDouble(j, seq_hit_rate);
    j += ",\"cache_hit_rate_concurrent\":";
    util::putDouble(j, conc_hit_rate);
    j += ",\"step_latency_p50_ms\":";
    util::putDouble(j, p50 * 1e3);
    j += ",\"step_latency_p95_ms\":";
    util::putDouble(j, p95 * 1e3);
    j += ",\"step_latency_p99_ms\":";
    util::putDouble(j, p99 * 1e3);
    j += ",\"steps\":";
    util::putInt(j, static_cast<long long>(step_seconds.size()));
    j += "}\n";
    util::writeTextTo(out_path, j);
  }

  if (const char* gate = std::getenv("CMMFO_PERF_GATE");
      gate != nullptr && gate[0] != '\0' &&
      !(gate[0] == '0' && gate[1] == '\0')) {
    const bool pass = sim_speedup >= 2.0;
    std::printf("\nperf-gate: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
  return 0;
}
