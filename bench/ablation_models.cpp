// Ablation bench for the design choices DESIGN.md calls out (Sec. IV):
//   1. non-linear vs linear vs none multi-fidelity chaining,
//   2. correlated vs independent multi-objective models,
//   3. PEIPV cost penalty on vs off,
//   4. tree-pruned vs raw (capped) design space.
// Run on GEMM and SPMV_CRS; reports ADRS and tool time per variant.

#include <cstdio>

#include "exp/harness.h"

using namespace cmmfo;

namespace {

core::OptimizerOptions baseOpts(bool fast) {
  core::OptimizerOptions bo;
  bo.n_iter = fast ? 10 : 30;
  bo.mc_samples = fast ? 16 : 32;
  bo.max_candidates = fast ? 80 : 250;
  bo.refit_every = 4;
  return bo;
}

struct Variant {
  const char* label;
  core::OptimizerOptions opts;
};

void runVariants(const std::string& bench_name, int repeats, bool fast) {
  exp::BenchmarkContext ctx(bench_suite::makeBenchmark(bench_name));
  std::printf("== %s (space=%zu, repeats=%d) ==\n", bench_name.c_str(),
              ctx.space().size(), repeats);

  std::vector<Variant> variants;
  {
    Variant v{"full (nonlinear+correlated+penalty)", baseOpts(fast)};
    variants.push_back(v);
  }
  {
    Variant v{"linear MF chain", baseOpts(fast)};
    v.opts.surrogate.mf = core::MfKind::kLinear;
    variants.push_back(v);
  }
  {
    Variant v{"no MF chain (single-fidelity models)", baseOpts(fast)};
    v.opts.surrogate.mf = core::MfKind::kSingleFidelity;
    variants.push_back(v);
  }
  {
    Variant v{"independent objectives", baseOpts(fast)};
    v.opts.surrogate.obj = core::ObjModelKind::kIndependent;
    variants.push_back(v);
  }
  {
    Variant v{"no cost penalty", baseOpts(fast)};
    v.opts.cost_penalty = false;
    variants.push_back(v);
  }

  std::printf("%-40s %8s %8s %10s %14s\n", "variant", "ADRS", "std",
              "tool-time", "picks h/s/i");
  for (const auto& v : variants) {
    // Drive the optimizer directly (OursMethod would pin the surrogate to
    // nonlinear+correlated, defeating the ablation).
    std::vector<double> adrs, times;
    std::array<int, 3> picks{};
    for (int r = 0; r < repeats; ++r) {
      ctx.sim().resetAccounting();
      core::OptimizerOptions o = v.opts;
      o.seed = 900 + 31 * r;
      core::CorrelatedMfMoboOptimizer opt(ctx.space(), ctx.sim(), o);
      const auto res = opt.run();
      std::vector<std::size_t> sel;
      for (const auto& rec : res.cs) sel.push_back(rec.config);
      adrs.push_back(ctx.adrsOf(sel));
      times.push_back(res.tool_seconds);
      for (int f = 0; f < 3; ++f) picks[f] += res.picks_per_fidelity[f];
    }
    std::printf("%-40s %8.4f %8.4f %9.0fs %5d/%d/%d\n", v.label,
                linalg::mean(adrs), linalg::sampleStddev(adrs),
                linalg::mean(times), picks[0], picks[1], picks[2]);
  }

  // Pruning-off ablation: same optimizer on the RAW (capped) space.
  {
    const auto bm = bench_suite::makeBenchmark(bench_name);
    const auto raw_space =
        hls::DesignSpace::buildRaw(bm.kernel, bm.spec, ctx.space().size() * 4);
    sim::FpgaToolSim raw_sim(bm.kernel, sim::DeviceModel::virtex7Vc707(),
                             bm.sim_params, 42);
    std::vector<double> adrs;
    for (int r = 0; r < repeats; ++r) {
      raw_sim.resetAccounting();
      core::OptimizerOptions o = baseOpts(fast);
      o.seed = 900 + 31 * r;
      core::CorrelatedMfMoboOptimizer opt(raw_space, raw_sim, o);
      const auto res = opt.run();
      // Score against the PRUNED ground truth: proposals are matched by
      // directive-config hash.
      std::vector<std::size_t> sel;
      for (const auto& rec : res.cs)
        for (std::size_t i = 0; i < ctx.space().size(); ++i)
          if (ctx.space().config(i).hash() == raw_space.config(rec.config).hash())
            sel.push_back(i);
      adrs.push_back(ctx.adrsOf(sel));
    }
    std::printf("%-40s %8.4f %8s %10s\n", "no pruning (raw space, capped)",
                linalg::mean(adrs), "-", "-");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const bool fast = exp::fastModeFromEnv();
  const int repeats = exp::repeatsFromEnv(3);
  runVariants("gemm", repeats, fast);
  runVariants("spmv_crs", repeats, fast);
  return 0;
}
