// Convergence-trajectory bench (not a paper figure; supporting evidence for
// Table I): ADRS and learned-front hypervolume after every tool invocation,
// for Ours vs FPL18 vs weighted-sum scalarization on GEMM. Shows WHERE the
// methods' budgets go, not only where they end.

#include <cstdio>

#include "exp/convergence.h"

using namespace cmmfo;

namespace {

void runAndDump(exp::BenchmarkContext& ctx, const char* label,
                core::OptimizerOptions o) {
  ctx.sim().resetAccounting();
  core::CorrelatedMfMoboOptimizer opt(ctx.space(), ctx.sim(), o);
  const auto res = opt.run();
  const auto curve = exp::convergenceCurve(ctx, res);
  std::printf("# series %s (samples tool_hours adrs hv)\n", label);
  for (const auto& pt : curve)
    std::printf("%4d %8.2f %8.4f %8.4f\n", pt.samples,
                pt.tool_seconds / 3600.0, pt.adrs, pt.hypervolume);
  std::printf("# %s ADRS-AUC = %.3f, final ADRS = %.4f\n\n", label,
              exp::adrsAuc(curve), curve.back().adrs);
}

}  // namespace

int main() {
  const bool fast = exp::fastModeFromEnv();
  exp::BenchmarkContext ctx(bench_suite::makeGemm());
  std::printf("# GEMM convergence, space=%zu\n", ctx.space().size());

  core::OptimizerOptions o;
  o.n_iter = fast ? 12 : 40;
  o.mc_samples = fast ? 16 : 32;
  o.max_candidates = fast ? 100 : 300;
  o.refit_every = 4;
  o.seed = 99;

  runAndDump(ctx, "Ours", o);

  core::OptimizerOptions lin = o;
  lin.surrogate.mf = core::MfKind::kLinear;
  lin.surrogate.obj = core::ObjModelKind::kIndependent;
  runAndDump(ctx, "FPL18", lin);

  core::OptimizerOptions mm = o;
  mm.init_design = core::InitDesign::kMaximin;
  runAndDump(ctx, "Ours+maximin-init", mm);

  // Scalarized reference (Sec. II-C's "straightforward strategy").
  {
    ctx.sim().resetAccounting();
    baselines::WeightedSumBoMethod ws(8, o.n_iter);
    const auto out = ws.run(ctx.space(), ctx.sim(), 99);
    std::printf("# WeightedSum final ADRS = %.4f (tool %.2f h)\n",
                ctx.adrsOf(out.selected), out.tool_seconds / 3600.0);
  }
  return 0;
}
