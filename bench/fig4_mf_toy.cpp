// Regenerates Fig. 4: a 1-D toy problem with three fidelities. Lower
// fidelities have wider error bands; each fidelity's (cost-penalized) EI is
// evaluated over the candidate grid and the winning (point, fidelity) pair
// is reported — in the paper's illustration the LOWEST fidelity wins.

#include <cmath>
#include <cstdio>

#include "gp/ard_kernels.h"
#include "gp/nonlinear_mf_gp.h"
#include "rng/rng.h"

using namespace cmmfo;
using namespace cmmfo::gp;

namespace {

// Three nested approximations of the same 1-D landscape (minimization).
double fImpl(double x) { return std::sin(3.0 * x) + 0.6 * x; }
double fSyn(double x) { return fImpl(x) + 0.15 * std::cos(7.0 * x); }
double fHls(double x) { return fImpl(x) + 0.3 * std::cos(5.0 * x) + 0.1; }

double normPdf(double z) { return std::exp(-0.5 * z * z) * 0.3989422804014327; }
double normCdf(double z) { return 0.5 * std::erfc(-z * 0.70710678118654752); }

/// Single-objective expected improvement (Eq. 2, jitter xi = 0.01).
double expectedImprovement(double mu, double sigma, double best) {
  if (sigma < 1e-12) return 0.0;
  const double lambda = (best - 0.01 - mu) / sigma;
  return sigma * (lambda * normCdf(lambda) + normPdf(lambda));
}

}  // namespace

int main() {
  rng::Rng rng(3);

  // Nested designs: many cheap points, few expensive ones.
  std::vector<FidelityData> data(3);
  for (int i = 0; i < 7; ++i) {
    const double x = i / 6.0 * 3.0;
    data[0].x.push_back({x});
    data[0].y.push_back(fHls(x));
  }
  for (int i = 0; i < 4; ++i) {
    const double x = i / 3.0 * 3.0;
    data[1].x.push_back({x});
    data[1].y.push_back(fSyn(x));
  }
  for (int i = 0; i < 3; ++i) {
    const double x = i / 2.0 * 3.0;
    data[2].x.push_back({x});
    data[2].y.push_back(fImpl(x));
  }

  NonlinearMfGpOptions opts;
  opts.gp.mle_restarts = 2;
  NonlinearMfGp model(1, 3, opts);
  model.fit(data, rng);

  const double t[3] = {1.0, 8.0, 40.0};  // stage costs; penalty = t[2]/t[i]
  const double best[3] = {[&] {
                            double b = 1e300;
                            for (double y : data[0].y) b = std::min(b, y);
                            return b;
                          }(),
                          [&] {
                            double b = 1e300;
                            for (double y : data[1].y) b = std::min(b, y);
                            return b;
                          }(),
                          [&] {
                            double b = 1e300;
                            for (double y : data[2].y) b = std::min(b, y);
                            return b;
                          }()};

  std::printf("# x  mu_hls sd_hls ei_hls  mu_syn sd_syn ei_syn  "
              "mu_impl sd_impl ei_impl\n");
  double best_ei = -1.0;
  double best_x = 0.0;
  int best_f = 0;
  for (int i = 0; i <= 120; ++i) {
    const double x = i / 120.0 * 3.0;
    std::printf("%.3f", x);
    for (int f = 0; f < 3; ++f) {
      const Posterior p = model.predict(f, {x});
      const double sd = std::sqrt(std::max(p.var, 0.0));
      const double ei =
          expectedImprovement(p.mean, sd, best[f]) * (t[2] / t[f]);
      std::printf("  %.4f %.4f %.5f", p.mean, sd, ei);
      if (ei > best_ei) {
        best_ei = ei;
        best_x = x;
        best_f = f;
      }
    }
    std::printf("\n");
  }
  const char* names[3] = {"hls", "syn", "impl"};
  std::printf("# winner: fidelity=%s at x=%.3f (penalized EI=%.5f) — the "
              "paper's Fig. 4 illustration likewise favors a cheap fidelity\n",
              names[best_f], best_x, best_ei);
  return 0;
}
