// Regenerates Fig. 8: learned Pareto points of every method vs the real
// Pareto front, for GEMM and SPMV_ELLPACK, projected onto the (LUT, Delay)
// and (Power, Delay) planes (objectives min-max normalized as in the paper).
//
// Output: "# series <benchmark> <method>" blocks of "power delay lut" rows,
// plus each method's ADRS for the run shown.

#include <cstdio>

#include "exp/harness.h"

using namespace cmmfo;

namespace {

void dumpSeries(exp::BenchmarkContext& ctx, const char* bench,
                const char* label, const std::vector<std::size_t>& selected) {
  // True post-impl values of the proposal, normalized by ground-truth ranges.
  const auto& gt = ctx.groundTruth();
  pareto::Point lo(sim::kNumObjectives, 1e300), hi(sim::kNumObjectives, -1e300);
  for (std::size_t i = 0; i < gt.size(); ++i) {
    if (!gt.valid(i)) continue;
    const auto y = gt.implObjectives(i);
    for (int m = 0; m < sim::kNumObjectives; ++m) {
      lo[m] = std::min(lo[m], y[m]);
      hi[m] = std::max(hi[m], y[m]);
    }
  }
  std::printf("# series %s %s (power delay lut, normalized)\n", bench, label);
  for (std::size_t i : selected) {
    if (!gt.valid(i)) continue;
    const auto y = gt.implObjectives(i);
    std::printf("%.4f %.4f %.4f\n", (y[0] - lo[0]) / (hi[0] - lo[0]),
                (y[1] - lo[1]) / (hi[1] - lo[1]),
                (y[2] - lo[2]) / (hi[2] - lo[2]));
  }
}

}  // namespace

int main() {
  const bool fast = exp::fastModeFromEnv();
  core::OptimizerOptions bo;
  bo.n_iter = fast ? 12 : 40;
  bo.mc_samples = fast ? 16 : 32;
  bo.max_candidates = fast ? 100 : 300;
  bo.refit_every = 4;
  baselines::MlpOptions mlp;
  if (fast) mlp.epochs = 300;

  const baselines::OursMethod ours(bo);
  const baselines::Fpl18Method fpl18(bo);
  const baselines::AnnMethod ann(mlp);
  const baselines::BtMethod bt;
  const baselines::Dac19Method dac19;

  for (const std::string name : {"gemm", "spmv_ellpack"}) {
    exp::BenchmarkContext ctx(bench_suite::makeBenchmark(name));
    dumpSeries(ctx, name.c_str(), "RealPareto",
               ctx.groundTruth().paretoIndices());
    for (const baselines::DseMethod* m :
         std::initializer_list<const baselines::DseMethod*>{
             &ours, &fpl18, &ann, &bt, &dac19}) {
      const auto out = m->run(ctx.space(), ctx.sim(), 4242);
      dumpSeries(ctx, name.c_str(), m->name().c_str(), out.selected);
      std::printf("# %s %s ADRS = %.4f\n\n", name.c_str(), m->name().c_str(),
                  ctx.adrsOf(out.selected));
    }
  }
  return 0;
}
