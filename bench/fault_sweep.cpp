// Fault-tolerance study of the evaluation layer (an extension beyond the
// paper; the flows of Sec. V implicitly assume every tool run succeeds).
//
// Sweeps the per-stage transient crash probability injected into the
// simulated FPGA flow while the optimizer runs with its retry/backoff/
// degradation machinery enabled. Every point spends the same proposal
// budget; what changes is how much charged tool time is burned by failed
// attempts and how much of the fidelity ladder survives.
//
// Reported per crash rate: mean ADRS, charged tool hours, simulated
// wall-clock hours, wasted retry hours (subset of charged — the honest cost
// of flakiness), backoff wait hours (wall-only), attempts per tool run, and
// degraded/abandoned job counts. The expected picture: ADRS degrades
// smoothly (degraded impl jobs still contribute their hls/syn prefixes to
// the datasets) while wasted time grows with the crash rate.

#include <cstdio>
#include <vector>

#include "exp/harness.h"

using namespace cmmfo;

int main() {
  const bool fast = exp::fastModeFromEnv();
  const int repeats = exp::repeatsFromEnv(fast ? 2 : 5);

  exp::BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  std::printf("SPMV-CRS: %zu configurations, %zu true Pareto points, "
              "%d repeats per crash rate\n\n",
              ctx.space().size(), ctx.groundTruth().paretoFront().size(),
              repeats);

  core::OptimizerOptions base;
  base.n_iter = fast ? 12 : 32;
  base.max_candidates = fast ? 80 : 250;
  base.mc_samples = fast ? 16 : 32;
  base.refit_every = 4;
  if (fast) {
    base.surrogate.mtgp.mle_restarts = 0;
    base.surrogate.gp.mle_restarts = 0;
  }
  base.retry.max_attempts = 3;

  struct Row {
    double rate = 0.0;
    double adrs = 0.0;
    double charged_h = 0.0;
    double wall_h = 0.0;
    double wasted_h = 0.0;
    double backoff_h = 0.0;
    double attempts_per_run = 0.0;
    int degraded = 0;
    int persistent = 0;
  };
  std::vector<Row> rows;

  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.15}) {
    sim::FaultParams faults;
    faults.transient_crash_prob = rate;
    ctx.sim().setFaultParams(faults);

    const baselines::OursMethod method(base);
    Row row;
    row.rate = rate;
    int attempts = 0, runs = 0;
    for (int r = 0; r < repeats; ++r) {
      const baselines::DseOutcome out =
          method.run(ctx.space(), ctx.sim(), 1000 + r);
      row.adrs += ctx.adrsOf(out.selected) / repeats;
      row.charged_h += out.tool_seconds / 3600.0 / repeats;
      row.wall_h += out.wall_seconds / 3600.0 / repeats;
      row.wasted_h += out.wasted_seconds / 3600.0 / repeats;
      row.backoff_h += out.backoff_seconds / 3600.0 / repeats;
      row.degraded += out.degraded_jobs;
      row.persistent += out.persistent_failures;
      attempts += out.attempts;
      runs += out.tool_runs;
    }
    row.attempts_per_run = runs > 0 ? static_cast<double>(attempts) / runs : 0;
    rows.push_back(row);
  }
  ctx.sim().setFaultParams({});

  std::printf("%7s %9s %11s %9s %10s %11s %9s %9s %7s\n", "rate", "ADRS",
              "charged/h", "wall/h", "wasted/h", "backoff/h", "att/run",
              "degraded", "abandn");
  for (const Row& r : rows)
    std::printf("%6.0f%% %9.4f %11.2f %9.2f %10.2f %11.2f %9.2f %9d %7d\n",
                100.0 * r.rate, r.adrs, r.charged_h, r.wall_h, r.wasted_h,
                r.backoff_h, r.attempts_per_run, r.degraded, r.persistent);
  std::printf(
      "\nwasted/h is charged time burned by failed attempts (subset of "
      "charged/h); backoff/h extends wall-clock only. degraded = jobs that "
      "fell back to a completed lower fidelity; abandn = jobs lost to "
      "persistent per-design faults.\n");
  return 0;
}
