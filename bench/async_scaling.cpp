// Asynchronous-pipeline scaling study: event-driven proposals vs the
// round-barrier batch runtime at EQUAL worker count and EQUAL proposal
// budget, under a straggler-heavy fault mix (license stalls + occasional
// hangs + transient crashes) where barrier idling hurts most.
//
// Per farm width W the same budget runs two ways:
//  - sync:  batch_size = n_workers = W, Kriging-believer q-PEIPV rounds;
//    every round waits for its slowest job before the next fit.
//  - async: OptimizerOptions::async, n_workers = W; the moment a worker
//    frees it pulls a fresh believer-conditioned argmax-PEIPV proposal, so
//    heterogeneous fidelities overlap and a stalled run never idles the
//    rest of the farm.
//
// The straggler mechanism is dominated by license stalls: a flat
// per-attempt charge (~900 s) that hits cheap HLS evaluations hardest,
// spreading per-job durations across a wide range without inflating the
// (identical-in-both-arms) initial-design implementation runs. SPMV is
// used rather than GEMM because its posterior drives mixed-fidelity
// proposals, which is exactly the heterogeneity the round barrier
// serializes on.
//
// Reported per arm: mean ADRS, charged tool hours (equal to first order —
// the budget is fixed), simulated wall-clock hours, idle worker hours
// (W * wall - charged - backoff: time workers sat at a barrier or ran out
// of in-flight work), and the async-over-sync wall-clock speedup at each W.
//
// With CMMFO_PERF_GATE set (non-empty, not "0") the binary exits non-zero
// unless async clears >= 1.3x wall-clock over sync at W = 4 with ADRS
// inside the no-regression band. --out PATH additionally writes the
// numbers as JSON (archived as BENCH_9.json by run_benches.sh).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "util/json.h"

using namespace cmmfo;

namespace {

struct Arm {
  int workers = 0;
  bool async = false;
  double adrs = 0.0;
  double charged_h = 0.0;
  double wall_h = 0.0;
  double backoff_h = 0.0;
  double idle_h = 0.0;  // W * wall - charged - backoff
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const bool fast = exp::fastModeFromEnv();
  // The gate wants stable repeat means even in fast mode, so don't take
  // repeatsFromEnv's fast-mode shrink to 2; an explicit CMMFO_REPEATS
  // still wins.
  int repeats = fast ? 4 : 6;
  if (const char* s = std::getenv("CMMFO_REPEATS")) {
    const int v = std::atoi(s);
    if (v > 0) repeats = v;
  }

  exp::BenchmarkContext ctx(bench_suite::makeSpmvCrs());
  std::printf("SPMV: %zu configurations, %zu true Pareto points, "
              "%d repeats per arm\n\n",
              ctx.space().size(), ctx.groundTruth().paretoFront().size(),
              repeats);

  // Straggler-heavy mix: license stalls add a flat ~15-minute charge to a
  // third of the attempts (the dominant duration spreader), a few hung
  // runs take 8x their nominal charge, and transient crashes keep the
  // retry path honest.
  sim::FaultParams faults;
  faults.license_stall_prob = 0.30;
  faults.license_stall_seconds = 900.0;
  faults.transient_crash_prob = 0.03;
  faults.hang_prob = 0.02;
  faults.hang_multiplier = 8.0;
  ctx.sim().setFaultParams(faults);

  core::OptimizerOptions base;
  base.n_iter = fast ? 32 : 40;
  base.max_candidates = 80;
  base.mc_samples = 16;
  base.refit_every = 4;
  base.surrogate.mtgp.mle_restarts = 0;
  base.surrogate.gp.mle_restarts = 0;
  base.retry.max_attempts = 3;

  std::vector<Arm> arms;
  for (const int w : {4, 8}) {
    for (const bool async : {false, true}) {
      core::OptimizerOptions o = base;
      o.n_workers = w;
      if (async) {
        o.async = true;
      } else {
        o.batch_size = w;
      }
      const baselines::OursMethod method(o);
      Arm arm;
      arm.workers = w;
      arm.async = async;
      for (int r = 0; r < repeats; ++r) {
        const baselines::DseOutcome out =
            method.run(ctx.space(), ctx.sim(), 1000 + r);
        arm.adrs += ctx.adrsOf(out.selected) / repeats;
        arm.charged_h += out.tool_seconds / 3600.0 / repeats;
        arm.wall_h += out.wall_seconds / 3600.0 / repeats;
        arm.backoff_h += out.backoff_seconds / 3600.0 / repeats;
      }
      arm.idle_h = w * arm.wall_h - arm.charged_h - arm.backoff_h;
      arms.push_back(arm);
    }
  }
  ctx.sim().setFaultParams({});

  std::printf("%3s %6s %10s %12s %10s %10s %10s\n", "W", "mode", "ADRS",
              "charged/h", "wall/h", "idle/h", "speedup");
  double gate_speedup = 0.0, gate_adrs_sync = 0.0, gate_adrs_async = 0.0;
  for (std::size_t i = 0; i < arms.size(); i += 2) {
    const Arm& sync = arms[i];
    const Arm& async_arm = arms[i + 1];
    const double speedup =
        async_arm.wall_h > 1e-12 ? sync.wall_h / async_arm.wall_h : 0.0;
    std::printf("%3d %6s %10.4f %12.2f %10.2f %10.2f %10s\n", sync.workers,
                "sync", sync.adrs, sync.charged_h, sync.wall_h, sync.idle_h,
                "1.00x");
    std::printf("%3d %6s %10.4f %12.2f %10.2f %10.2f %9.2fx\n",
                async_arm.workers, "async", async_arm.adrs,
                async_arm.charged_h, async_arm.wall_h, async_arm.idle_h,
                speedup);
    if (sync.workers == 4) {
      gate_speedup = speedup;
      gate_adrs_sync = sync.adrs;
      gate_adrs_async = async_arm.adrs;
    }
  }
  std::printf(
      "\nspeedup = wall-clock(sync)/wall-clock(async) at equal W and equal "
      "proposal budget; idle/h = W*wall - charged - backoff (barrier wait "
      "plus drained-window slack).\n");

  if (!out_path.empty()) {
    std::string j = "{\"bench\":\"async_scaling\",\"arms\":[";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      const Arm& a = arms[i];
      if (i != 0) j += ",";
      j += "{\"workers\":";
      util::putInt(j, a.workers);
      j += ",\"async\":";
      j += a.async ? "true" : "false";
      j += ",\"adrs\":";
      util::putDouble(j, a.adrs);
      j += ",\"charged_hours\":";
      util::putDouble(j, a.charged_h);
      j += ",\"wall_hours\":";
      util::putDouble(j, a.wall_h);
      j += ",\"idle_worker_hours\":";
      util::putDouble(j, a.idle_h);
      j += "}";
    }
    j += "],\"speedup_w4\":";
    util::putDouble(j, gate_speedup);
    j += ",\"adrs_sync_w4\":";
    util::putDouble(j, gate_adrs_sync);
    j += ",\"adrs_async_w4\":";
    util::putDouble(j, gate_adrs_async);
    j += "}\n";
    util::writeTextTo(out_path, j);
  }

  if (const char* gate = std::getenv("CMMFO_PERF_GATE");
      gate != nullptr && gate[0] != '\0' &&
      !(gate[0] == '0' && gate[1] == '\0')) {
    // No-regression band: per-seed ADRS noise under this fault mix is
    // sigma/mean ~ 25-40% per arm, so the band is set from measured
    // repeat means (async within 25% of sync, plus a hair of absolute
    // slack when sync is already near zero). Async's believer depth is
    // W-1 on every pick vs (B-1)/2 on average for the sync rounds, so a
    // small mean gap is structural, not a defect.
    const bool adrs_ok =
        gate_adrs_async <= gate_adrs_sync * 1.25 + 1e-3;
    const bool pass = gate_speedup >= 1.3 && adrs_ok;
    std::printf("\nperf-gate: %s (speedup %.2fx >= 1.30x: %s; ADRS %.4f vs "
                "%.4f sync: %s)\n",
                pass ? "PASS" : "FAIL", gate_speedup,
                gate_speedup >= 1.3 ? "yes" : "no", gate_adrs_async,
                gate_adrs_sync, adrs_ok ? "ok" : "regressed");
    return pass ? 0 : 1;
  }
  return 0;
}
