// google-benchmark microbenchmarks for the GP stack: Gram construction,
// Cholesky, single-output MLE fit, multi-task fit and prediction, and the
// MC-EIPV acquisition — the per-iteration cost drivers of Algorithm 2.

#include <benchmark/benchmark.h>

#include "core/acquisition.h"
#include "gp/ard_kernels.h"
#include "gp/gp_regressor.h"
#include "gp/multitask_gp.h"
#include "linalg/cholesky.h"
#include "rng/rng.h"

using namespace cmmfo;
using namespace cmmfo::gp;

namespace {

Dataset randomPoints(std::size_t n, std::size_t d, std::uint64_t seed) {
  rng::Rng rng(seed);
  Dataset x(n, Vec(d));
  for (auto& xi : x)
    for (auto& v : xi) v = rng.uniform();
  return x;
}

void BM_GramMatrix(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Matern52Ard k(12);
  const Dataset x = randomPoints(n, 12, 1);
  for (auto _ : state) benchmark::DoNotOptimize(k.gram(x));
}
BENCHMARK(BM_GramMatrix)->Arg(16)->Arg(48)->Arg(96);

void BM_Cholesky(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Matern52Ard k(12);
  const Dataset x = randomPoints(n, 12, 2);
  linalg::Matrix gram = k.gram(x);
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += 1e-4;
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::Cholesky::factorize(gram));
}
BENCHMARK(BM_Cholesky)->Arg(48)->Arg(96)->Arg(144);

void BM_GpFit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 3);
  rng::Rng rng(3);
  Vec y(n);
  for (auto& v : y) v = rng.normal();
  GpFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 30;
  for (auto _ : state) {
    GpRegressor gp(Matern52Ard(12), opts);
    rng::Rng r(4);
    gp.fit(x, y, r);
    benchmark::DoNotOptimize(gp.predict(x[0]));
  }
}
BENCHMARK(BM_GpFit)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_MultiTaskFit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 5);
  rng::Rng rng(5);
  linalg::Matrix y(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t m = 0; m < 3; ++m) y(i, m) = rng.normal();
  MultiTaskFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 25;
  for (auto _ : state) {
    MultiTaskGp gp(Matern52Ard(12, true), 3, opts);
    rng::Rng r(6);
    gp.fit(x, y, r);
    benchmark::DoNotOptimize(gp.predict(x[0]));
  }
}
BENCHMARK(BM_MultiTaskFit)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_MultiTaskPredict(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 7);
  rng::Rng rng(7);
  linalg::Matrix y(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t m = 0; m < 3; ++m) y(i, m) = rng.normal();
  MultiTaskFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 10;
  MultiTaskGp gp(Matern52Ard(12, true), 3, opts);
  gp.fit(x, y, rng);
  const Vec q = randomPoints(1, 12, 8)[0];
  for (auto _ : state) benchmark::DoNotOptimize(gp.predict(q));
}
BENCHMARK(BM_MultiTaskPredict)->Arg(24)->Arg(48);

void BM_McEipv(benchmark::State& state) {
  rng::Rng rng(9);
  const auto z = core::drawStdNormals(state.range(0), 3, rng);
  std::vector<pareto::Point> front;
  for (int i = 0; i < 30; ++i)
    front.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  linalg::Matrix cov(3, 3);
  for (int i = 0; i < 3; ++i) cov(i, i) = 0.02;
  cov(0, 1) = cov(1, 0) = -0.01;
  const pareto::Point ref = {1.1, 1.1, 1.1};
  const Vec mu = {0.4, 0.4, 0.4};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::mcEipv(mu, cov, front, ref, z));
}
BENCHMARK(BM_McEipv)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
