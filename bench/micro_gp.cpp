// google-benchmark microbenchmarks for the GP stack: Gram construction,
// Cholesky, single-output MLE fit, multi-task fit and prediction, the
// incremental posterior paths (rank-append vs dense refit, batched vs
// scalar prediction), and the MC-EIPV acquisition — the per-iteration cost
// drivers of Algorithm 2.
//
// With CMMFO_PERF_GATE set (non-empty, not "0") the binary skips the
// google-benchmark harness and runs a hard perf-regression gate instead:
// it exits 1 unless the rank-append posterior update is >= 5x faster than a
// dense refit at n = 256 and the batched predict path is >= 3x faster than
// the scalar loop on a 1024-candidate sweep.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/acquisition.h"
#include "gp/ard_kernels.h"
#include "gp/gp_regressor.h"
#include "gp/multitask_gp.h"
#include "linalg/cholesky.h"
#include "rng/rng.h"

using namespace cmmfo;
using namespace cmmfo::gp;

namespace {

Dataset randomPoints(std::size_t n, std::size_t d, std::uint64_t seed) {
  rng::Rng rng(seed);
  Dataset x(n, Vec(d));
  for (auto& xi : x)
    for (auto& v : xi) v = rng.uniform();
  return x;
}

void BM_GramMatrix(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Matern52Ard k(12);
  const Dataset x = randomPoints(n, 12, 1);
  for (auto _ : state) benchmark::DoNotOptimize(k.gram(x));
}
BENCHMARK(BM_GramMatrix)->Arg(16)->Arg(48)->Arg(96);

void BM_Cholesky(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Matern52Ard k(12);
  const Dataset x = randomPoints(n, 12, 2);
  linalg::Matrix gram = k.gram(x);
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += 1e-4;
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::Cholesky::factorize(gram));
}
BENCHMARK(BM_Cholesky)->Arg(48)->Arg(96)->Arg(144);

void BM_GpFit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 3);
  rng::Rng rng(3);
  Vec y(n);
  for (auto& v : y) v = rng.normal();
  GpFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 30;
  for (auto _ : state) {
    GpRegressor gp(Matern52Ard(12), opts);
    rng::Rng r(4);
    gp.fit(x, y, r);
    benchmark::DoNotOptimize(gp.predict(x[0]));
  }
}
BENCHMARK(BM_GpFit)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_MultiTaskFit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 5);
  rng::Rng rng(5);
  linalg::Matrix y(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t m = 0; m < 3; ++m) y(i, m) = rng.normal();
  MultiTaskFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 25;
  for (auto _ : state) {
    MultiTaskGp gp(Matern52Ard(12, true), 3, opts);
    rng::Rng r(6);
    gp.fit(x, y, r);
    benchmark::DoNotOptimize(gp.predict(x[0]));
  }
}
BENCHMARK(BM_MultiTaskFit)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_MultiTaskPredict(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 7);
  rng::Rng rng(7);
  linalg::Matrix y(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t m = 0; m < 3; ++m) y(i, m) = rng.normal();
  MultiTaskFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 10;
  MultiTaskGp gp(Matern52Ard(12, true), 3, opts);
  gp.fit(x, y, rng);
  const Vec q = randomPoints(1, 12, 8)[0];
  for (auto _ : state) benchmark::DoNotOptimize(gp.predict(q));
}
BENCHMARK(BM_MultiTaskPredict)->Arg(24)->Arg(48);

/// Fitted single-output GP on n points (cheap hypers: the posterior-update
/// benchmarks only exercise linear algebra, not MLE quality).
GpRegressor fittedGp(const Dataset& x, const Vec& y) {
  GpFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 2;
  GpRegressor gp(Matern52Ard(x[0].size()), opts);
  rng::Rng r(12);
  gp.fit(x, y, r);
  return gp;
}

MultiTaskGp fittedMtGp(const Dataset& x, const linalg::Matrix& y) {
  MultiTaskFitOptions opts;
  opts.mle_restarts = 0;
  opts.max_mle_iters = 2;
  MultiTaskGp gp(Matern52Ard(x[0].size(), true), 3, opts);
  rng::Rng r(13);
  gp.fit(x, y, r);
  return gp;
}

// Incremental O(n^2) posterior update vs the dense O(n^3) refit it
// replaces. One iteration = absorb one new observation (the append variant
// rolls back with an exact truncation so n stays fixed), so the reported
// per-iteration time is ns/observation for either path.
void BM_PosteriorAppend(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n + 1, 12, 11);
  rng::Rng rng(11);
  Vec y(n + 1);
  for (auto& v : y) v = rng.normal();
  GpRegressor gp = fittedGp(Dataset(x.begin(), x.begin() + n),
                            Vec(y.begin(), y.begin() + n));
  for (auto _ : state) {
    gp.appendObservation(x[n], y[n]);
    gp.truncateTo(n);
  }
}
BENCHMARK(BM_PosteriorAppend)->Arg(64)->Arg(256);

void BM_PosteriorFullRefit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n + 1, 12, 11);
  rng::Rng rng(11);
  Vec y(n + 1);
  for (auto& v : y) v = rng.normal();
  GpRegressor gp = fittedGp(Dataset(x.begin(), x.begin() + n),
                            Vec(y.begin(), y.begin() + n));
  for (auto _ : state) gp.refitPosterior(x, y);
}
BENCHMARK(BM_PosteriorFullRefit)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Batched candidate sweep (one cross-Gram + one multi-RHS solve for the
// whole block) vs the scalar predict loop the optimizer used to run. One
// iteration = a full 1024-candidate sweep; items processed = candidates, so
// the rate column reads candidates/second.
constexpr std::size_t kSweepCandidates = 1024;

void BM_PredictSweepScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 14);
  rng::Rng rng(14);
  linalg::Matrix y(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t m = 0; m < 3; ++m) y(i, m) = rng.normal();
  const MultiTaskGp gp = fittedMtGp(x, y);
  const Dataset cand = randomPoints(kSweepCandidates, 12, 15);
  for (auto _ : state)
    for (const auto& c : cand) benchmark::DoNotOptimize(gp.predict(c));
  state.SetItemsProcessed(state.iterations() * kSweepCandidates);
}
BENCHMARK(BM_PredictSweepScalar)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_PredictSweepBatched(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const Dataset x = randomPoints(n, 12, 14);
  rng::Rng rng(14);
  linalg::Matrix y(n, 3);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t m = 0; m < 3; ++m) y(i, m) = rng.normal();
  const MultiTaskGp gp = fittedMtGp(x, y);
  const Dataset cand = randomPoints(kSweepCandidates, 12, 15);
  for (auto _ : state) benchmark::DoNotOptimize(gp.predictBatch(cand));
  state.SetItemsProcessed(state.iterations() * kSweepCandidates);
}
BENCHMARK(BM_PredictSweepBatched)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_McEipv(benchmark::State& state) {
  rng::Rng rng(9);
  const auto z = core::drawStdNormals(state.range(0), 3, rng);
  std::vector<pareto::Point> front;
  for (int i = 0; i < 30; ++i)
    front.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  linalg::Matrix cov(3, 3);
  for (int i = 0; i < 3; ++i) cov(i, i) = 0.02;
  cov(0, 1) = cov(1, 0) = -0.01;
  const pareto::Point ref = {1.1, 1.1, 1.1};
  const Vec mu = {0.4, 0.4, 0.4};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::mcEipv(mu, cov, front, ref, z));
}
BENCHMARK(BM_McEipv)->Arg(16)->Arg(32)->Arg(64);

// ---------------------------------------------------------------------
// CI perf-regression gate (CMMFO_PERF_GATE). Plain steady_clock timing —
// best-of-k medians are unnecessary at these effect sizes (the required
// ratios are 5x and 3x); best-of-reps keeps the gate robust to CI noise.

template <class F>
double bestSecondsOf(int tries, int reps, F&& body) {
  double best = 1e300;
  for (int t = 0; t < tries; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) body();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count() /
                     reps;
    if (s < best) best = s;
  }
  return best;
}

int runPerfGate() {
  int failures = 0;

  {  // Rank-append vs dense refit, single-output GP at n = 256.
    const std::size_t n = 256;
    const Dataset x = randomPoints(n + 1, 12, 11);
    rng::Rng rng(11);
    Vec y(n + 1);
    for (auto& v : y) v = rng.normal();
    GpRegressor gp = fittedGp(Dataset(x.begin(), x.begin() + n),
                              Vec(y.begin(), y.begin() + n));
    const double append_s = bestSecondsOf(5, 8, [&] {
      gp.appendObservation(x[n], y[n]);
      gp.truncateTo(n);
    });
    const double refit_s =
        bestSecondsOf(5, 2, [&] { gp.refitPosterior(x, y); });
    const double ratio = refit_s / append_s;
    std::printf("perf-gate: posterior update n=%zu: append %.0f ns/obs, "
                "dense refit %.0f ns/obs, speedup %.2fx (need >= 5x)\n",
                n, append_s * 1e9, refit_s * 1e9, ratio);
    if (ratio < 5.0) {
      std::printf("perf-gate: FAIL — incremental append lost its edge\n");
      ++failures;
    }
  }

  {  // Batched vs scalar 1024-candidate sweep, multi-task GP at n = 256.
    // The scalar path runs one per-vector substitution per task column; the
    // batched path amortizes the stacked factor across 64-column compact
    // tiles where the row-blocked kernel runs near peak.
    const std::size_t n = 256;
    const Dataset x = randomPoints(n, 12, 14);
    rng::Rng rng(14);
    linalg::Matrix y(n, 3);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t m = 0; m < 3; ++m) y(i, m) = rng.normal();
    const MultiTaskGp gp = fittedMtGp(x, y);
    const Dataset cand = randomPoints(kSweepCandidates, 12, 15);
    const double scalar_s = bestSecondsOf(3, 1, [&] {
      for (const auto& c : cand) benchmark::DoNotOptimize(gp.predict(c));
    });
    const double batch_s = bestSecondsOf(3, 1, [&] {
      benchmark::DoNotOptimize(gp.predictBatch(cand));
    });
    const double ratio = scalar_s / batch_s;
    std::printf("perf-gate: %zu-candidate sweep n=%zu: batched %.0f "
                "ns/cand, scalar %.0f ns/cand, speedup %.2fx (need >= 3x)\n",
                kSweepCandidates, n, batch_s * 1e9 / kSweepCandidates,
                scalar_s * 1e9 / kSweepCandidates, ratio);
    if (ratio < 3.0) {
      std::printf("perf-gate: FAIL — batched predict lost its edge\n");
      ++failures;
    }
  }

  std::printf("perf-gate: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* gate = std::getenv("CMMFO_PERF_GATE");
      gate != nullptr && gate[0] != '\0' &&
      !(gate[0] == '0' && gate[1] == '\0')) {
    return runPerfGate();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
