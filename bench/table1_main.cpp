// Regenerates TABLE I of the paper: normalized ADRS, normalized standard
// deviation of ADRS, and normalized overall running time for
// {Ours, FPL18, ANN, BT, DAC19} on the six benchmarks, normalized to ANN.
//
// Environment knobs:
//   CMMFO_REPEATS=n  repeats per method/benchmark (default 5; paper uses 10)
//   CMMFO_FAST=1     2 repeats, reduced BO budget — smoke mode
//
// The absolute values live in a simulated Vivado flow, so only the SHAPE is
// comparable with the paper: Ours should achieve the lowest ADRS and the
// lowest ADRS spread on average, BO methods should cost far less tool time
// than the regression baselines, and DAC19 should cost ~7x ANN.

#include <iostream>

#include "exp/harness.h"
#include "exp/table.h"

using namespace cmmfo;

int main() {
  const int repeats = exp::repeatsFromEnv(5);
  const bool fast = exp::fastModeFromEnv();

  core::OptimizerOptions bo;
  bo.n_iter = fast ? 12 : 40;  // paper: 40 optimization steps
  bo.mc_samples = fast ? 16 : 32;
  bo.max_candidates = fast ? 100 : 300;
  bo.refit_every = fast ? 6 : 4;
  if (fast) {
    bo.surrogate.mtgp.max_mle_iters = 25;
    bo.surrogate.gp.max_mle_iters = 25;
    bo.surrogate.mtgp.mle_restarts = 0;
    bo.surrogate.gp.mle_restarts = 0;
  }

  baselines::MlpOptions mlp;
  if (fast) mlp.epochs = 300;
  baselines::RegressionProtocol proto;  // 48 training configs (paper)

  const baselines::OursMethod ours(bo);
  const baselines::Fpl18Method fpl18(bo);
  const baselines::AnnMethod ann(mlp, proto);
  const baselines::BtMethod bt({}, proto);
  const baselines::Dac19Method dac19(7, {}, proto);
  const std::vector<const baselines::DseMethod*> methods = {&ours, &fpl18, &ann,
                                                            &bt, &dac19};

  std::vector<exp::BenchmarkResults> rows;
  for (const auto& name : bench_suite::benchmarkNames()) {
    std::cerr << "== " << name << " ==" << std::endl;
    exp::BenchmarkContext ctx(bench_suite::makeBenchmark(name));
    std::cerr << "   space=" << ctx.space().size()
              << " true-pareto=" << ctx.groundTruth().paretoFront().size()
              << std::endl;
    exp::BenchmarkResults row;
    row.benchmark = name;
    for (const auto* m : methods) {
      const exp::MethodStats s = exp::evaluateMethod(ctx, *m, repeats, 1000);
      std::cerr << "   " << s.method << ": adrs=" << s.adrs_mean
                << " std=" << s.adrs_std << " time=" << s.time_mean << "s"
                << std::endl;
      row.by_method[s.method] = s;
    }
    rows.push_back(std::move(row));
  }

  std::cout << "TABLE I (reproduction) — " << repeats
            << " repeats per cell, normalized to ANN\n";
  exp::printTable1(rows, {"Ours", "FPL18", "ANN", "BT", "DAC19"}, "ANN",
                   std::cout);
  std::cout << "\nPer-run CSV:\n";
  exp::writeRunsCsv(rows, std::cout);
  return 0;
}
