// Chaos-sweep harness: the crash-only supervision acceptance gate.
//
// Eight concurrent campaigns run under deterministic seeded fault
// injection, a mid-flight daemon kill, deliberate journal corruption, and a
// protocol fuzz barrage — and every single campaign must still finish
// BIT-IDENTICAL to its fault-free isolated golden:
//
//   phase 0  goldens: each spec alone (own cache/pool), no faults;
//   phase 1  daemon A: all 8 submitted with chaos on (seeded step faults +
//            hung evals, watchdog deadline + heartbeats armed), stopped
//            mid-flight once every campaign has checkpointed >= 1 round;
//   sabotage three victims' journals: a torn frame appended to one
//            checkpoint, another truncated to zero bytes, a third's
//            checkpoint + final marker deleted outright;
//   phase 2  daemon B: --resume over the sabotaged journal dir, chaos still
//            on, while a seeded fuzz corpus hammers the request path; the
//            daemon must quarantine/cold-start the sabotaged campaigns,
//            restart every faulted step from its last good checkpoint, and
//            drain all 8 to completion.
//
// Exits non-zero if any campaign fails to complete, any trajectory deviates
// from its golden by a single bit, or any fuzz reply is not well-formed
// JSON. --out PATH writes the sweep counters as JSON; CMMFO_FAST=1 shrinks
// per-campaign iterations (never the campaign count — 8 is the acceptance
// floor).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign_stepper.h"
#include "exp/harness.h"
#include "server/server.h"
#include "util/json.h"

using namespace cmmfo;
namespace fs = std::filesystem;

namespace {

core::OptimizeResult runIsolated(const server::CampaignSpec& spec) {
  const auto space = server::makeSpaceFor(spec.benchmark);
  const auto bm = server::makeBenchmarkFor(spec.benchmark);
  const auto sim = server::makeSimFor(spec, *bm);
  core::CampaignStepper stepper(*space, *sim, spec.opts);
  while (!stepper.done()) stepper.step();
  return stepper.finish();
}

/// Bitwise trajectory equality (the bench-grade version of the test
/// helper): configs, fidelities, acquisition values, and accounting must
/// all agree exactly.
bool sameTrajectory(const core::OptimizeResult& a,
                    const core::OptimizeResult& b, std::string* why) {
  const auto fail = [&](const std::string& w) {
    if (why != nullptr) *why = w;
    return false;
  };
  if (a.cs.size() != b.cs.size()) return fail("cs size");
  for (std::size_t i = 0; i < a.cs.size(); ++i) {
    if (a.cs[i].config != b.cs[i].config) return fail("cs config");
    if (a.cs[i].fidelity != b.cs[i].fidelity) return fail("cs fidelity");
    if (a.cs[i].report.tool_seconds != b.cs[i].report.tool_seconds)
      return fail("cs tool_seconds");
  }
  if (a.iterations.size() != b.iterations.size()) return fail("iter size");
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    if (a.iterations[i].config != b.iterations[i].config)
      return fail("iter config");
    if (a.iterations[i].fidelity != b.iterations[i].fidelity)
      return fail("iter fidelity");
    if (a.iterations[i].peipv != b.iterations[i].peipv)
      return fail("iter peipv");
  }
  if (a.picks_per_fidelity != b.picks_per_fidelity) return fail("picks");
  if (a.tool_seconds != b.tool_seconds) return fail("tool_seconds");
  if (a.tool_runs != b.tool_runs) return fail("tool_runs");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const bool fast = exp::fastModeFromEnv();
  constexpr int kCampaigns = 8;  // the acceptance floor; never shrunk
  const int n_iter = fast ? 6 : 10;

  const fs::path dir = fs::temp_directory_path() / "cmmfo_chaos_sweep";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<server::CampaignSpec> specs;
  for (int i = 0; i < kCampaigns; ++i) {
    server::CampaignSpec spec;
    spec.id = "c" + std::to_string(i);
    spec.benchmark = "spmv_crs";
    spec.sim_seed = 40 + static_cast<std::uint64_t>(i);
    spec.opts.seed = 100 + static_cast<std::uint64_t>(i);
    spec.opts.n_iter = n_iter;
    spec.opts.batch_size = 2;
    spec.opts.mc_samples = 16;
    spec.opts.max_candidates = 60;
    spec.opts.refit_every = 5;
    spec.opts.surrogate.mtgp.mle_restarts = 0;
    spec.opts.surrogate.gp.mle_restarts = 0;
    spec.opts.surrogate.mtgp.max_mle_iters = 25;
    spec.opts.surrogate.gp.max_mle_iters = 25;
    specs.push_back(spec);
  }

  std::printf("chaos_sweep: %d campaigns, n_iter=%d%s\n\n", kCampaigns,
              n_iter, fast ? " (fast mode)" : "");

  // ---- Phase 0: fault-free isolated goldens. ----
  std::vector<core::OptimizeResult> golden;
  golden.reserve(specs.size());
  for (const auto& s : specs) golden.push_back(runIsolated(s));

  server::ServerOptions opts;
  opts.workers = 8;
  opts.slots = 4;
  opts.journal_dir = dir.string();
  opts.max_restarts = 64;
  opts.restart_backoff_ms = 1;
  opts.step_deadline_seconds = 0.003;
  opts.heartbeat_seconds = 0.02;
  opts.chaos.seed = 20260808;
  opts.chaos.step_fault_prob = 0.15;
  opts.chaos.step_hang_prob = 0.05;
  opts.chaos.hang_ms = 5;

  std::mutex ev_mu;
  std::size_t ev_restarts = 0, ev_stalls = 0, ev_heartbeats = 0;
  const auto sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(ev_mu);
    if (line.find("\"event\":\"restart\"") != std::string::npos) ++ev_restarts;
    if (line.find("\"event\":\"stall\"") != std::string::npos) ++ev_stalls;
    if (line.find("\"event\":\"heartbeat\"") != std::string::npos)
      ++ev_heartbeats;
  };

  // ---- Phase 1: chaos-injected daemon, killed mid-flight. ----
  server::OptimizationServer first(opts);
  first.subscribe(sink);
  first.start();
  for (const auto& s : specs) {
    std::string err;
    if (!first.submit(s, &err)) {
      std::fprintf(stderr, "submit %s failed: %s\n", s.id.c_str(),
                   err.c_str());
      return 1;
    }
  }
  const auto all_checkpointed = [&] {
    for (const auto& s : specs) {
      const auto snap = first.campaign(s.id)->snapshot();
      if (snap.rounds < 1 && snap.state != server::CampaignState::kFailed)
        return false;
    }
    return true;
  };
  while (!all_checkpointed())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  first.stop();
  const server::ServerStats s1 = first.stats();

  // ---- Sabotage three victims' journals. ----
  // c0: torn frame appended to the checkpoint (quarantine + rollback).
  {
    const std::string garbage("CMJ1\x40\x00\x00\x00 torn tail bytes", 24);
    std::ofstream out(dir / "c0.ckpt.json", std::ios::binary | std::ios::app);
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  fs::remove(dir / "c0.final.json");
  // c1: checkpoint truncated to zero bytes (lenient cold start).
  std::ofstream(dir / "c1.ckpt.json", std::ios::trunc).close();
  fs::remove(dir / "c1.final.json");
  // c2: checkpoint and final marker deleted (re-queue from spec).
  fs::remove(dir / "c2.ckpt.json");
  fs::remove(dir / "c2.final.json");

  // ---- Phase 2: resume over the sabotaged journals, chaos still on,
  // fuzz frames hammering the request path while campaigns drain. ----
  server::ServerOptions ropts = opts;
  ropts.resume = true;
  server::OptimizationServer second(ropts);
  second.subscribe(sink);
  second.start();

  std::mt19937_64 fuzz_rng(0xDEADBEEFULL);
  std::size_t fuzz_frames = 0, fuzz_well_formed = 0;
  for (int i = 0; i < 64; ++i) {
    std::string line;
    const std::size_t len = 1 + fuzz_rng() % 80;
    for (std::size_t k = 0; k < len; ++k) {
      char c = static_cast<char>(1 + fuzz_rng() % 255);
      if (c == '\n' || c == '\r') c = '?';
      line.push_back(c);
    }
    bool quit = false;
    int sub_token = -1;
    const std::string reply =
        second.handleLine(line, nullptr, &quit, &sub_token);
    ++fuzz_frames;
    util::Json j;
    std::string jerr;
    if (util::parseJson(reply, &j, &jerr)) ++fuzz_well_formed;
  }
  second.drain();
  const server::ServerStats s2 = second.stats();

  // ---- Verdict: every campaign done, every trajectory bit-identical. ----
  int done = 0, resumed = 0, mismatches = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string& id = specs[i].id;
    // A campaign that finished in phase 1 (journaled final, not sabotaged)
    // is not resurrected by --resume; its result lives in daemon A.
    auto c = second.campaign(id);
    if (c != nullptr) ++resumed;
    if (c == nullptr) c = first.campaign(id);
    if (c == nullptr || c->snapshot().state != server::CampaignState::kDone) {
      std::fprintf(stderr, "FAIL: campaign %s did not complete\n", id.c_str());
      ++mismatches;
      continue;
    }
    ++done;
    const auto result = c->result();
    std::string why;
    if (!result.has_value() || !sameTrajectory(golden[i], *result, &why)) {
      std::fprintf(stderr, "FAIL: campaign %s deviates from golden (%s)\n",
                   id.c_str(), why.c_str());
      ++mismatches;
    }
  }
  second.stop();

  const std::size_t restarts = s1.supervision.restarts + s2.supervision.restarts;
  const std::size_t stalls =
      s1.supervision.stalled_steps + s2.supervision.stalled_steps;
  const bool fuzz_ok = fuzz_well_formed == fuzz_frames;
  const bool pass = mismatches == 0 && done == kCampaigns && fuzz_ok;

  std::printf("%-38s %8d\n", "campaigns completed", done);
  std::printf("%-38s %8d\n", "campaigns resumed by daemon B", resumed);
  std::printf("%-38s %8zu\n", "supervised restarts", restarts);
  std::printf("%-38s %8zu\n", "watchdog stalls reported", stalls);
  std::printf("%-38s %8zu\n", "heartbeats streamed", ev_heartbeats);
  std::printf("%-38s %5zu/%zu\n", "fuzz replies well-formed", fuzz_well_formed,
              fuzz_frames);
  std::printf("%-38s %8d\n", "trajectory mismatches vs goldens", mismatches);
  std::printf("\nchaos-sweep: %s\n", pass ? "PASS" : "FAIL");

  if (!out_path.empty()) {
    std::string j = "{\"campaigns\":";
    util::putInt(j, kCampaigns);
    j += ",\"n_iter\":";
    util::putInt(j, n_iter);
    j += ",\"completed\":";
    util::putInt(j, done);
    j += ",\"resumed\":";
    util::putInt(j, resumed);
    j += ",\"restarts\":";
    util::putU64Bare(j, restarts);
    j += ",\"stalled_steps\":";
    util::putU64Bare(j, stalls);
    j += ",\"heartbeats\":";
    util::putU64Bare(j, ev_heartbeats);
    j += ",\"restart_events\":";
    util::putU64Bare(j, ev_restarts);
    j += ",\"stall_events\":";
    util::putU64Bare(j, ev_stalls);
    j += ",\"fuzz_frames\":";
    util::putU64Bare(j, fuzz_frames);
    j += ",\"fuzz_well_formed\":";
    util::putU64Bare(j, fuzz_well_formed);
    j += ",\"mismatches\":";
    util::putInt(j, mismatches);
    j += ",\"pass\":";
    j += pass ? "true" : "false";
    j += "}\n";
    util::writeTextTo(out_path, j);
  }

  fs::remove_all(dir);
  return pass ? 0 : 1;
}
