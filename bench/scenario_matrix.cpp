// Scenario-matrix acceptance sweep over the procedural generator.
//
// Sweeps generator seeds x target space sizes x die counts, and for every
// cell whose pruned space fits under the oracle's enumeration cap:
//   - audits Algorithm 1 against the exhaustively enumerated raw space
//     (eps-regret soundness on the COMPATIBLE front: no raw-front point the
//     pruner's own premises accept may be further than eps, normalized
//     worst-objective, from the best pruned config; the full-front regret —
//     the measured cost of the paper's compatibility heuristic — is
//     reported but never gated);
//   - runs the correlated MF-MOBO optimizer under a charged-tool-seconds
//     budget and scores it against the oracle's true Pareto set;
//   - on multi-die cells, measures the fidelity gap (how far the die-blind
//     hls-stage front is from the true impl front) and, on one cell, checks
//     that the flight recorder captured calibration records of the
//     disagreement.
//
// Exits non-zero when any gate fails: a pruning-audit violation, a cell
// missing oracle-ADRS <= kAdrsGate within budget, no measurable multi-die
// fidelity gap, or an empty flight-recorder capture.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/methods.h"
#include "diag/recorder.h"
#include "exp/harness.h"
#include "scenario/generator.h"
#include "scenario/oracle.h"
#include "util/json.h"

using namespace cmmfo;

namespace {

// Pruning-audit regret gate. The floor is set by the simulator's
// deterministic per-config noise: two configs with identical modeled
// performance differ by the noise draw, so the lucky one lands on the raw
// front up to ~0.08 (normalized) away from its pruned twin. Genuine
// enumeration bugs (a lost odometer branch, a wrong-role unroll) measured
// 0.2-0.8 while they were live, so 0.10 separates the two cleanly.
constexpr double kEps = 0.10;
constexpr double kAdrsGate = 0.05;  // optimizer oracle-ADRS gate
constexpr double kGapGate = 1e-4;   // multi-die fidelity-gap floor

struct Cell {
  std::string name;
  double raw_size = 0.0;
  std::size_t pruned_size = 0;
  bool oracle_built = false;
  std::size_t raw_enumerated = 0;
  bool raw_complete = false;
  std::size_t audit_violations = 0;
  double audit_max_regret = 0.0;       // compatible front (gated)
  double audit_full_max_regret = 0.0;  // full raw front (report-only)
  double adrs = 0.0;
  double charged_seconds = 0.0;
  double budget_seconds = 0.0;
  int tool_runs = 0;
  double gap_hls = 0.0;  // multi-die cells only
  bool ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];

  const bool fast = exp::fastModeFromEnv();
  const std::vector<std::uint64_t> seeds =
      fast ? std::vector<std::uint64_t>{11, 12}
           : std::vector<std::uint64_t>{11, 12, 13};
  const std::vector<double> sizes = fast ? std::vector<double>{300.0, 3000.0}
                                         : std::vector<double>{300.0, 3000.0,
                                                               30000.0};
  const std::vector<int> dies = {1, 2};

  std::printf("scenario matrix: %zu seeds x %zu sizes x %zu die configs "
              "(eps=%.2f, adrs gate %.2f)\n\n",
              seeds.size(), sizes.size(), dies.size(), kEps, kAdrsGate);
  std::printf("%-28s %10s %7s %6s %9s %9s %7s %9s %8s %8s\n", "scenario",
              "raw", "pruned", "viol", "regret", "fullreg", "adrs", "charged",
              "budget", "gapH");

  std::vector<Cell> cells;
  int failures = 0;
  double max_gap = 0.0;
  bool diag_checked = false, diag_ok = false;

  for (const std::uint64_t seed : seeds) {
    for (const double size : sizes) {
      for (const int d : dies) {
        scenario::GeneratorParams p;
        p.seed = seed;
        p.target_raw_size = size;
        p.num_dies = d;
        const scenario::Scenario sc = scenario::generate(p);

        Cell cell;
        cell.name = sc.name;
        cell.raw_size = sc.spec().rawSize();

        const auto oracle = scenario::Oracle::build(sc);
        if (!oracle) {
          // Over the enumeration cap: no ground truth, no gates. The CI
          // grid is sized to never hit this; report it loudly if it does.
          std::printf("%-28s %10.3g %7s  (over oracle cap; ungated)\n",
                      cell.name.c_str(), cell.raw_size, "-");
          cells.push_back(cell);
          continue;
        }
        cell.oracle_built = true;
        cell.pruned_size = oracle->space().size();

        const scenario::PruningAudit audit = oracle->auditPruning(kEps);
        cell.raw_enumerated = audit.raw_enumerated;
        cell.raw_complete = audit.raw_complete;
        cell.audit_violations = audit.violations;
        cell.audit_max_regret = audit.max_regret;
        cell.audit_full_max_regret = audit.full_max_regret;
        if (audit.violations != 0) cell.ok = false;

        core::OptimizerOptions opts;
        // Rounds scale with the pruned space so the big cells get enough
        // proposals; the charged-seconds budget below is the hard stop.
        opts.n_iter =
            fast ? 20
                 : 30 + static_cast<int>(oracle->space().size() / 2);
        opts.batch_size = 2;
        opts.n_workers = 2;
        opts.max_candidates = fast ? 80 : 200;
        opts.mc_samples = fast ? 16 : 32;
        opts.refit_every = 4;
        if (fast) {
          opts.surrogate.mtgp.mle_restarts = 0;
          opts.surrogate.gp.mle_restarts = 0;
        }
        const double nominal_impl =
            oracle->sim().nominalStageSeconds()[sim::kNumFidelities - 1];
        opts.max_charged_seconds = nominal_impl * (fast ? 120.0 : 200.0);
        cell.budget_seconds = opts.max_charged_seconds;

        // Arm the flight recorder on exactly one multi-die cell: its
        // calibration aggregates must show the surrogate being scored
        // against observed (die-aware) impl reports.
        const bool diag_cell = !diag_checked && d > 1;
        if (diag_cell) {
          diag::recorder().clear();
          diag::recorder().setEnabled(true);
        }

        const baselines::OursMethod method(opts);
        const baselines::DseOutcome out =
            method.run(oracle->space(), oracle->sim(), 77);
        cell.adrs = oracle->adrsOf(out.selected);
        cell.charged_seconds = out.tool_seconds;
        cell.tool_runs = out.tool_runs;
        if (cell.adrs > kAdrsGate) cell.ok = false;

        if (diag_cell) {
          diag_checked = true;
          long long samples = 0;
          for (int lvl = 0; lvl < sim::kNumFidelities; ++lvl)
            for (int m = 0; m < sim::kNumObjectives; ++m)
              samples += diag::recorder().aggregate(lvl, m).n;
          diag_ok = samples > 0 && diag::recorder().recordCount() > 0;
          diag::recorder().setEnabled(false);
          diag::recorder().clear();
        }

        if (d > 1) {
          cell.gap_hls = oracle->fidelityGap(sim::Fidelity::kHls);
          max_gap = std::max(max_gap, cell.gap_hls);
        }

        std::printf(
            "%-28s %10.3g %7zu %6zu %9.4f %9.4f %7.4f %8.0fs %7.0fs %8.4f%s\n",
            cell.name.c_str(), cell.raw_size, cell.pruned_size,
            cell.audit_violations, cell.audit_max_regret,
            cell.audit_full_max_regret, cell.adrs, cell.charged_seconds,
            cell.budget_seconds, cell.gap_hls, cell.ok ? "" : "  <-- FAIL");
        if (!cell.ok) ++failures;
        cells.push_back(cell);
      }
    }
  }

  std::printf("\nmax multi-die fidelity gap (hls vs impl front): %.4f "
              "(gate: >= %.4f)\n", max_gap, kGapGate);
  std::printf("flight-recorder calibration capture: %s\n",
              diag_ok ? "ok" : "MISSING");

  const bool gap_ok = max_gap >= kGapGate;
  const bool pass = failures == 0 && gap_ok && diag_ok;
  std::printf("\n%s (%d cell failure(s))\n", pass ? "PASS" : "FAIL", failures);

  if (!out_path.empty()) {
    std::string s = "{\"eps\":";
    util::putDouble(s, kEps);
    s += ",\"adrs_gate\":";
    util::putDouble(s, kAdrsGate);
    s += ",\"max_fidelity_gap\":";
    util::putDouble(s, max_gap);
    s += ",\"diag_capture\":";
    s += diag_ok ? "true" : "false";
    s += ",\"failures\":";
    util::putInt(s, failures);
    s += ",\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      if (i) s += ",";
      s += "{\"name\":";
      util::putString(s, c.name);
      s += ",\"raw_size\":";
      util::putDouble(s, c.raw_size);
      s += ",\"pruned_size\":";
      util::putU64(s, c.pruned_size);
      s += ",\"oracle\":";
      s += c.oracle_built ? "true" : "false";
      s += ",\"raw_enumerated\":";
      util::putU64(s, c.raw_enumerated);
      s += ",\"raw_complete\":";
      s += c.raw_complete ? "true" : "false";
      s += ",\"audit_violations\":";
      util::putU64(s, c.audit_violations);
      s += ",\"audit_max_regret\":";
      util::putDouble(s, c.audit_max_regret);
      s += ",\"audit_full_max_regret\":";
      util::putDouble(s, c.audit_full_max_regret);
      s += ",\"adrs\":";
      util::putDouble(s, c.adrs);
      s += ",\"charged_seconds\":";
      util::putDouble(s, c.charged_seconds);
      s += ",\"budget_seconds\":";
      util::putDouble(s, c.budget_seconds);
      s += ",\"tool_runs\":";
      util::putInt(s, c.tool_runs);
      s += ",\"gap_hls\":";
      util::putDouble(s, c.gap_hls);
      s += ",\"ok\":";
      s += c.ok ? "true" : "false";
      s += "}";
    }
    s += "]}\n";
    if (!util::writeTextTo(out_path, s))
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}
