// Regenerates Fig. 6: the grid-cell decomposition of a 2-objective value
// space around a Pareto front, the current Pareto hypervolume, and the EIPV
// of candidate predictive distributions (the green point of Fig. 6b).

#include <cstdio>

#include "core/acquisition.h"
#include "pareto/cells.h"
#include "pareto/hypervolume.h"

using namespace cmmfo;
using namespace cmmfo::pareto;

int main() {
  // A small Power/Delay front like the figure's red points.
  const std::vector<Point> front = {{0.15, 0.80}, {0.35, 0.55},
                                    {0.60, 0.30}, {0.85, 0.15}};
  const Point ref = {1.0, 1.0};  // v_ref

  std::printf("Pareto front (power, delay):\n");
  for (const auto& p : front) std::printf("  (%.2f, %.2f)\n", p[0], p[1]);
  std::printf("Current Pareto hypervolume PV_ref = %.4f\n\n",
              hypervolume(front, ref));

  const auto cells = nonDominatedCells(front, ref);
  std::printf("Non-dominated cells C_nd (%zu of the grid):\n", cells.size());
  for (const auto& c : cells)
    std::printf("  [%7.2f, %4.2f) x [%7.2f, %4.2f)\n", c.lo[0], c.hi[0],
                c.lo[1], c.hi[1]);

  // Candidate predictive distributions: one clearly improving (the "green
  // point"), one dominated, one on the fence.
  struct Candidate {
    const char* label;
    Point mu;
    Point sigma;
  };
  const Candidate candidates[] = {
      {"green (improving)", {0.22, 0.40}, {0.05, 0.05}},
      {"dominated", {0.70, 0.70}, {0.05, 0.05}},
      {"uncertain straddler", {0.40, 0.50}, {0.15, 0.15}},
  };

  rng::Rng rng(1);
  const auto z = core::drawStdNormals(20000, 2, rng);
  std::printf("\n%-22s %10s %10s\n", "candidate", "EIPV(exact)", "EIPV(MC)");
  for (const auto& c : candidates) {
    const double exact = exactEipvIndependent(c.mu, c.sigma, front, ref);
    linalg::Matrix cov(2, 2);
    cov(0, 0) = c.sigma[0] * c.sigma[0];
    cov(1, 1) = c.sigma[1] * c.sigma[1];
    const double mc = core::mcEipv(c.mu, cov, front, ref, z);
    std::printf("%-22s %10.5f %10.5f\n", c.label, exact, mc);
  }
  return 0;
}
