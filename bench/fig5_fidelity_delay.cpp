// Regenerates Fig. 5: normalized delay of every pruned configuration at the
// three fidelities, for GEMM (a — near-overlapping stages) and
// SPMV_ELLPACK (b — strongly divergent stages).
//
// Output: one series per benchmark, "index hls syn impl" rows with delay
// min-max normalized per benchmark (as in the paper's plot), plus summary
// statistics of the cross-fidelity divergence.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "exp/harness.h"

using namespace cmmfo;

int main() {
  for (const std::string name : {"gemm", "spmv_ellpack"}) {
    exp::BenchmarkContext ctx(bench_suite::makeBenchmark(name));
    const auto& gt = ctx.groundTruth();

    // Joint min-max normalization over all three fidelities.
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = 0; i < gt.size(); ++i)
      for (int f = 0; f < sim::kNumFidelities; ++f) {
        const double d = gt.report(i, static_cast<sim::Fidelity>(f)).delay_us;
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    const double range = std::max(hi - lo, 1e-12);

    // Sort configurations by impl delay so the series reads like the paper's
    // scatter (y = configuration index).
    std::vector<std::size_t> order(gt.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return gt.report(a, sim::Fidelity::kImpl).delay_us <
             gt.report(b, sim::Fidelity::kImpl).delay_us;
    });

    std::printf("# Fig5 %s Delay (normalized) — %zu configurations\n",
                name.c_str(), gt.size());
    std::printf("# index hls syn impl\n");
    double mean_gap = 0.0, max_gap = 0.0;
    const std::size_t stride = std::max<std::size_t>(1, gt.size() / 200);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      const std::size_t i = order[rank];
      const double dh =
          (gt.report(i, sim::Fidelity::kHls).delay_us - lo) / range;
      const double ds =
          (gt.report(i, sim::Fidelity::kSyn).delay_us - lo) / range;
      const double di =
          (gt.report(i, sim::Fidelity::kImpl).delay_us - lo) / range;
      const double gap = std::max(std::abs(di - dh), std::abs(di - ds));
      mean_gap += gap;
      max_gap = std::max(max_gap, gap);
      if (rank % stride == 0)
        std::printf("%6zu %.4f %.4f %.4f\n", rank, dh, ds, di);
    }
    mean_gap /= static_cast<double>(gt.size());
    std::printf(
        "# %s: mean |impl - lower-fidelity| gap = %.4f, max = %.4f "
        "(paper: GEMM overlaps, SPMV_ELLPACK diverges)\n\n",
        name.c_str(), mean_gap, max_gap);
  }
  return 0;
}
