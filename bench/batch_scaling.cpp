// Batch-scaling study of the parallel evaluation runtime (an extension
// beyond the paper; Algorithm 2 itself is strictly sequential).
//
// Sweeps the proposal batch size B over {1, 2, 4, 8} with a tool farm of
// the same width, at a FIXED total proposal budget: every point spends the
// same number of BO proposals, so charged tool time is equal to first order
// and the comparison isolates what batching costs in sample efficiency
// (Kriging-believer fantasies instead of real observations) against what it
// buys in simulated wall-clock.
//
// Reported per B: mean ADRS, charged tool hours, simulated wall-clock
// hours, idle worker hours (B * wall - charged: time workers spend waiting
// at the round barrier for the batch's slowest job — the cost the async
// pipeline of bench/async_scaling removes), wall-clock speedup over the
// sequential flow, and ADRS degradation relative to B = 1.

#include <cstdio>
#include <vector>

#include "exp/harness.h"

using namespace cmmfo;

int main() {
  const bool fast = exp::fastModeFromEnv();
  const int repeats = exp::repeatsFromEnv(fast ? 2 : 5);

  exp::BenchmarkContext ctx(bench_suite::makeGemm());
  std::printf("GEMM: %zu configurations, %zu true Pareto points, "
              "%d repeats per batch size\n\n",
              ctx.space().size(), ctx.groundTruth().paretoFront().size(),
              repeats);

  core::OptimizerOptions base;
  base.n_iter = fast ? 12 : 32;
  base.max_candidates = fast ? 80 : 250;
  base.mc_samples = fast ? 16 : 32;
  base.refit_every = 4;
  if (fast) {
    base.surrogate.mtgp.mle_restarts = 0;
    base.surrogate.gp.mle_restarts = 0;
  }

  struct Row {
    int batch = 0;
    double adrs = 0.0;
    double charged_h = 0.0;
    double wall_h = 0.0;
    double idle_h = 0.0;  // B * wall - charged: barrier wait time
  };
  std::vector<Row> rows;

  for (const int b : {1, 2, 4, 8}) {
    core::OptimizerOptions o = base;
    o.batch_size = b;
    o.n_workers = b;
    const baselines::OursMethod method(o);
    const exp::MethodStats s = exp::evaluateMethod(ctx, method, repeats, 1000);
    const double charged_h = s.time_mean / 3600.0;
    const double wall_h = s.wall_mean / 3600.0;
    rows.push_back(
        {b, s.adrs_mean, charged_h, wall_h, b * wall_h - charged_h});
  }

  const Row& seq = rows.front();
  std::printf("%6s %10s %12s %10s %10s %10s %14s\n", "B", "ADRS", "charged/h",
              "wall/h", "idle/h", "speedup", "ADRS degr./%");
  for (const Row& r : rows) {
    const double speedup = r.wall_h > 1e-12 ? seq.wall_h / r.wall_h : 0.0;
    const double degr =
        seq.adrs > 1e-12 ? 100.0 * (r.adrs - seq.adrs) / seq.adrs : 0.0;
    std::printf("%6d %10.4f %12.2f %10.2f %10.2f %9.2fx %+13.1f\n", r.batch,
                r.adrs, r.charged_h, r.wall_h, r.idle_h, speedup, degr);
  }
  std::printf("\nspeedup = wall-clock(B=1) / wall-clock(B); every row spends "
              "the same proposal budget. idle/h = B*wall - charged: worker "
              "time lost waiting at the round barrier for the batch's "
              "slowest job.\n");
  return 0;
}
