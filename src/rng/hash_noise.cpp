#include "rng/hash_noise.h"

#include <cmath>

#include "rng/rng.h"

namespace cmmfo::rng {

std::uint64_t HashNoise::hash(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              std::uint64_t d) const {
  std::uint64_t state = salt_;
  state ^= splitmix64(state) ^ a;
  state ^= splitmix64(state) ^ b;
  state ^= splitmix64(state) ^ c;
  state ^= splitmix64(state) ^ d;
  return splitmix64(state);
}

double HashNoise::uniform(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                          std::uint64_t d) const {
  return static_cast<double>(hash(a, b, c, d) >> 11) * 0x1.0p-53;
}

double HashNoise::normal(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                         std::uint64_t d) const {
  // Inverse-CDF would be exact; a 4-fold CLT sum is plenty for simulator
  // noise and is branch-free and fast. Variance of sum of 4 U(0,1) is 4/12,
  // so scale by sqrt(3) to get unit variance.
  double s = 0.0;
  for (std::uint64_t k = 0; k < 4; ++k) s += uniform(a, b, c, d ^ (k + 1));
  return (s - 2.0) * std::sqrt(3.0);
}

}  // namespace cmmfo::rng
