#include "rng/rng.h"

#include <cmath>

namespace cmmfo::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all zero; splitmix64 guarantees that with
  // overwhelming probability, and we nudge the last word just in case.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[3] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::index(std::size_t n) {
  // Debiased modulo via rejection on the top range.
  const std::uint64_t bound = n;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return static_cast<std::size_t>(r % bound);
  }
}

int Rng::uniformInt(int lo, int hi) {
  return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * m;
  has_cached_normal_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k entries become the sample.
  for (std::size_t i = 0; i < k && i + 1 < n; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::setState(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  has_cached_normal_ = st.has_cached_normal;
  cached_normal_ = st.cached_normal;
}

Rng Rng::split(std::uint64_t salt) {
  std::uint64_t mix = next() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(mix));
}

}  // namespace cmmfo::rng
