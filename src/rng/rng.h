#pragma once

#include <cstdint>
#include <vector>

namespace cmmfo::rng {

/// Deterministic, splittable pseudo-random generator.
///
/// Implements xoshiro256** seeded through splitmix64. Every stochastic
/// component in the library takes an explicit `Rng` (or a seed) so that any
/// experiment repeat is reproducible bit-for-bit across platforms; we never
/// use std:: distributions because their output is implementation-defined.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniformInt(int lo, int hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derive an independent child generator; deterministic in (state, salt).
  Rng split(std::uint64_t salt);

  /// Full generator state, for crash-safe checkpointing: restoring a saved
  /// state resumes the exact stream (including the Marsaglia-polar cache).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const;
  void setState(const State& st);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// splitmix64 step: good 64-bit mixer, used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace cmmfo::rng
