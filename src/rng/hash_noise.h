#pragma once

#include <cstdint>

namespace cmmfo::rng {

/// Stateless deterministic noise keyed by an arbitrary tuple of integers.
///
/// The FPGA-tool simulator must return the *same* report every time a given
/// (benchmark, configuration, fidelity, objective) is evaluated — real tools
/// are deterministic for a fixed input — yet different configurations must
/// see independent-looking perturbations. A keyed hash gives us exactly that
/// without storing any state.
class HashNoise {
 public:
  explicit HashNoise(std::uint64_t salt) : salt_(salt) {}

  /// Uniform in [0, 1), keyed by (a, b, c, d).
  double uniform(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
                 std::uint64_t d = 0) const;

  /// Approximately standard normal (sum of 4 hashed uniforms, CLT), keyed.
  double normal(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
                std::uint64_t d = 0) const;

  /// Raw 64-bit hash of the key tuple.
  std::uint64_t hash(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
                     std::uint64_t d = 0) const;

 private:
  std::uint64_t salt_;
};

}  // namespace cmmfo::rng
