#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "server/fair_scheduler.h"

namespace cmmfo::server {

namespace fs = std::filesystem;

OptimizationServer::OptimizationServer(ServerOptions opts)
    : opts_(std::move(opts)),
      pool_(std::max(opts_.workers, 1)),
      farm_(std::max(opts_.workers, 1)) {
  if (opts_.cache_capacity > 0) cache_.setCapacity(opts_.cache_capacity);
  if (!opts_.journal_dir.empty()) fs::create_directories(opts_.journal_dir);
}

OptimizationServer::~OptimizationServer() { stop(); }

void OptimizationServer::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_stopping_ = false;
  }
  if (opts_.resume && !opts_.journal_dir.empty()) resumeFromJournal();
  const int slots = std::max(opts_.slots, 1);
  for (int i = 0; i < slots; ++i)
    drivers_.emplace_back([this] { driverLoop(); });
}

void OptimizationServer::requestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Unblock the accept loop, then every per-connection reader: a thread
  // parked in ::read on an idle-but-open connection only returns once its
  // socket is shut down (the owning thread still does the ::close).
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_stopping_ = true;
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void OptimizationServer::stop() {
  // Plain (blocking) lock: a concurrent stop() waits for the in-flight one
  // to finish joining before returning, so callers — including the
  // destructor racing a shutdown request — never tear the server down
  // under a stop() still touching its members.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  requestStop();
  for (std::thread& t : drivers_)
    if (t.joinable()) t.join();
  drivers_.clear();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void OptimizationServer::notifyAll() { cv_.notify_all(); }

void OptimizationServer::driverLoop() {
  while (true) {
    std::shared_ptr<Campaign> claimed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stopping_) {
        const std::shared_ptr<Campaign> next =
            FairScheduler::pickNext(registry_.list());
        if (next == nullptr) {
          cv_.wait(lock);
          continue;
        }
        // Claims happen only under mu_, so this cannot race another
        // driver; it can still lose to a concurrent pause/cancel, in
        // which case re-scan.
        if (next->beginStep()) {
          claimed = next;
          break;
        }
      }
      if (claimed == nullptr) return;  // stopping
    }

    const std::string& id = claimed->spec().id;
    const auto t0 = std::chrono::steady_clock::now();
    core::RoundOutcome outcome;
    std::string what;
    bool failed = false;
    try {
      outcome = claimed->runStep();
    } catch (const std::exception& e) {
      failed = true;
      what = e.what();
    } catch (...) {
      failed = true;
      what = "unknown exception in campaign step";
    }
    const double step_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (failed) {
      claimed->fail(what);
      writeFinalFile(id, CampaignState::kFailed);
      publish(stateEvent(id, CampaignState::kFailed, what));
    } else {
      farm_.placeRound(id, outcome.job_seconds);
      const CampaignState st = claimed->endStep(outcome);
      ++steps_executed_;
      publish(roundEvent(id, outcome, step_seconds));
      if (terminal(st)) {
        writeFinalFile(id, st);
        publish(stateEvent(id, st));
      } else if (st == CampaignState::kPaused) {
        publish(stateEvent(id, st));
      }
    }
    notifyAll();  // re-queued work for other drivers / drain() progress
  }
}

void OptimizationServer::waitUntilStopped() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return stopping_ || !running_; });
}

void OptimizationServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    if (stopping_) return true;
    for (const std::shared_ptr<Campaign>& c : registry_.list()) {
      const CampaignState s = c->state();
      if (s == CampaignState::kQueued || s == CampaignState::kRunning)
        return false;
    }
    return true;
  });
}

bool OptimizationServer::submit(const CampaignSpec& spec, std::string* err) {
  if (!validCampaignId(spec.id)) {
    if (err != nullptr) *err = "invalid campaign id";
    return false;
  }
  CampaignSpec s = spec;
  if (!opts_.journal_dir.empty())
    s.opts.checkpoint_path = journalPath(s.id, ".ckpt.json");

  std::shared_ptr<const hls::DesignSpace> space;
  try {
    std::lock_guard<std::mutex> lock(spaces_mu_);
    auto& slot = spaces_[s.benchmark];
    if (slot == nullptr) slot = makeSpaceFor(s.benchmark);
    space = slot;
  } catch (const std::exception& e) {
    if (err != nullptr) *err = e.what();
    return false;
  }

  core::SharedRuntime shared;
  shared.cache = &cache_;
  shared.pool = &pool_;
  shared.cache_namespace = cacheNamespaceOf(s);
  shared.cache_ledger = cacheLedgerOf(s);
  shared.collect_outcomes = true;
  std::shared_ptr<Campaign> campaign;
  try {
    campaign = std::make_shared<Campaign>(s, space, shared);
  } catch (const std::exception& e) {
    if (err != nullptr) *err = e.what();
    return false;
  }
  if (!registry_.add(campaign)) {
    if (err != nullptr) *err = "duplicate campaign id";
    return false;
  }
  if (!s.opts.resume) writeSpecFile(s);
  notifyAll();
  return true;
}

bool OptimizationServer::pause(const std::string& id, std::string* err) {
  const std::shared_ptr<Campaign> c = registry_.get(id);
  if (c == nullptr) {
    if (err != nullptr) *err = "unknown campaign id";
    return false;
  }
  if (!c->requestPause(err)) return false;
  if (c->state() == CampaignState::kPaused)
    publish(stateEvent(id, CampaignState::kPaused));
  return true;
}

bool OptimizationServer::resumeCampaign(const std::string& id,
                                        std::string* err) {
  const std::shared_ptr<Campaign> c = registry_.get(id);
  if (c == nullptr) {
    if (err != nullptr) *err = "unknown campaign id";
    return false;
  }
  if (!c->requestResume(err)) return false;
  notifyAll();
  return true;
}

bool OptimizationServer::cancel(const std::string& id, std::string* err) {
  const std::shared_ptr<Campaign> c = registry_.get(id);
  if (c == nullptr) {
    if (err != nullptr) *err = "unknown campaign id";
    return false;
  }
  if (!c->requestCancel(err)) return false;
  if (c->state() == CampaignState::kCancelled) {
    // Cancelled in place (was queued/paused); running ones finish their
    // round first and the driver publishes the transition.
    writeFinalFile(id, CampaignState::kCancelled);
    publish(stateEvent(id, CampaignState::kCancelled));
  }
  notifyAll();
  return true;
}

std::shared_ptr<Campaign> OptimizationServer::campaign(
    const std::string& id) const {
  return registry_.get(id);
}

std::vector<StatusSnapshot> OptimizationServer::list() const {
  std::vector<StatusSnapshot> out;
  for (const std::shared_ptr<Campaign>& c : registry_.list())
    out.push_back(c->snapshot());
  return out;
}

ServerStats OptimizationServer::stats() const {
  ServerStats s;
  s.cache = cache_.stats();
  s.farm_makespan_seconds = farm_.makespan();
  s.campaigns = registry_.size();
  s.steps_executed = steps_executed_.load();
  return s;
}

int OptimizationServer::subscribe(EventSink sink) {
  auto sub = std::make_shared<Subscriber>();
  sub->sink = std::move(sink);
  std::lock_guard<std::mutex> lock(mu_);
  const int token = next_token_++;
  subscribers_[token] = std::move(sub);
  return token;
}

void OptimizationServer::unsubscribe(int token) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = subscribers_.find(token);
    if (it == subscribers_.end()) return;
    sub = it->second;
    subscribers_.erase(it);
  }
  // Block until any in-flight delivery to this sink finishes, then bar
  // further ones: once unsubscribe() returns, the transport can safely
  // close the stream/fd the sink writes to.
  std::lock_guard<std::mutex> lock(sub->m);
  sub->active = false;
}

void OptimizationServer::publish(const std::string& line) {
  // Snapshot under mu_, deliver OUTSIDE it: one stalled subscriber socket
  // (blocking ::send into a full buffer) can only wedge its own deliveries,
  // never submit/pause/cancel, drain(), the other drivers, or stop().
  // Per-sink exclusion + the active flag preserve the unsubscribe contract
  // above; the class-comment contract still holds — sinks only write bytes,
  // never call back into the server.
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    subs.reserve(subscribers_.size());
    for (const auto& [token, sub] : subscribers_) subs.push_back(sub);
  }
  for (const std::shared_ptr<Subscriber>& sub : subs) {
    std::lock_guard<std::mutex> lock(sub->m);
    if (sub->active) sub->sink(line);
  }
}

// ------------------------------------------------------------- Journal ----

std::string OptimizationServer::journalPath(const std::string& id,
                                            const char* suffix) const {
  return (fs::path(opts_.journal_dir) / (id + suffix)).string();
}

void OptimizationServer::writeSpecFile(const CampaignSpec& spec) const {
  if (opts_.journal_dir.empty()) return;
  util::writeTextTo(journalPath(spec.id, ".spec.json"),
                    specToJson(spec) + "\n");
}

void OptimizationServer::writeFinalFile(const std::string& id,
                                        CampaignState state) const {
  if (opts_.journal_dir.empty()) return;
  std::string s = "{\"id\":";
  util::putString(s, id);
  s += ",\"state\":";
  util::putString(s, stateName(state));
  s += "}\n";
  util::writeTextTo(journalPath(id, ".final.json"), s);
}

void OptimizationServer::resumeFromJournal() {
  const std::string kSpec = ".spec.json";
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator(opts_.journal_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= kSpec.size() ||
        name.compare(name.size() - kSpec.size(), kSpec.size(), kSpec) != 0)
      continue;
    ids.push_back(name.substr(0, name.size() - kSpec.size()));
  }
  std::sort(ids.begin(), ids.end());  // deterministic re-submit order
  for (const std::string& id : ids) {
    if (fs::exists(journalPath(id, ".final.json"))) continue;  // finished
    std::ifstream in(journalPath(id, ".spec.json"));
    std::stringstream buf;
    buf << in.rdbuf();
    util::Json j;
    CampaignSpec spec;
    std::string err;
    if (!util::parseJson(buf.str(), &j, &err) ||
        !specFromJson(j, &spec, &err))
      continue;  // a corrupt spec must not take the whole daemon down
    spec.opts.resume = true;  // pick the trajectory up from <id>.ckpt.json
    submit(spec, &err);
  }
}

// ------------------------------------------------------- Line protocol ----

std::string OptimizationServer::handleLine(const std::string& line,
                                           const EventSink& sink, bool* quit,
                                           int* sub_token) {
  Request req;
  std::string err;
  if (!parseRequest(line, &req, &err)) return errorResponse(err);

  if (req.op == "submit") {
    CampaignSpec spec;
    if (!specFromJson(req.body, &spec, &err)) return errorResponse(err);
    if (!submit(spec, &err)) return errorResponse(err);
    return okResponse();
  }
  if (req.op == "status") {
    const std::shared_ptr<Campaign> c = campaign(req.id);
    if (c == nullptr) return errorResponse("unknown campaign id");
    return statusResponse(c->snapshot());
  }
  if (req.op == "list") return listResponse(list());
  if (req.op == "stats") {
    const ServerStats st = stats();
    return statsResponse(st.cache, list(), st.farm_makespan_seconds);
  }
  if (req.op == "pause")
    return pause(req.id, &err) ? okResponse() : errorResponse(err);
  if (req.op == "resume")
    return resumeCampaign(req.id, &err) ? okResponse() : errorResponse(err);
  if (req.op == "cancel")
    return cancel(req.id, &err) ? okResponse() : errorResponse(err);
  if (req.op == "subscribe") {
    if (!sink) return errorResponse("transport does not support events");
    const int token = subscribe(sink);
    if (sub_token != nullptr) *sub_token = token;
    return okResponse();
  }
  if (req.op == "drain") {
    drain();
    return okResponse();
  }
  if (req.op == "shutdown") {
    if (quit != nullptr) *quit = true;
    return okResponse();
  }
  return errorResponse("unknown op: " + req.op);
}

void OptimizationServer::serveStdio(std::istream& in, std::ostream& out) {
  const auto out_mu = std::make_shared<std::mutex>();
  const EventSink sink = [&out, out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*out_mu);
    out << line << "\n";
    out.flush();
  };
  int sub_token = -1;
  bool quit = false;
  std::string line;
  while (!quit && std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string resp = handleLine(line, sink, &quit, &sub_token);
    std::lock_guard<std::mutex> lock(*out_mu);
    out << resp << "\n";
    out.flush();
  }
  // Drop the subscription before `out` goes out of the caller's scope.
  if (sub_token >= 0) unsubscribe(sub_token);
  if (quit) stop();
}

int OptimizationServer::listenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_.store(fd);
  accept_thread_ = std::thread([this] { acceptLoop(); });
  return static_cast<int>(ntohs(addr.sin_port));
}

void OptimizationServer::acceptLoop() {
  while (true) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) return;  // listener closed by stop()
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (conns_stopping_) {
      // Lost the race with requestStop()'s shutdown sweep: this fd would
      // never be shut down and its reader never joined. Refuse it.
      ::close(conn);
      continue;
    }
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { serveFd(conn); });
  }
}

void OptimizationServer::serveFd(int fd) {
  const auto write_mu = std::make_shared<std::mutex>();
  const auto writeLine = [fd, write_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*write_mu);
    std::string msg = line + "\n";
    // Best effort: a peer that hung up just stops receiving events.
    (void)::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL);
  };
  int sub_token = -1;
  bool quit = false;
  std::string buf;
  char chunk[4096];
  while (!quit) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while (!quit && (pos = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (line.empty()) continue;
      writeLine(handleLine(line, writeLine, &quit, &sub_token));
    }
  }
  if (sub_token >= 0) unsubscribe(sub_token);
  {
    // Retire the fd from the shutdown sweep's ledger before closing it, so
    // requestStop() cannot shut down a recycled descriptor number.
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
  // The shutdown op only INITIATES the stop from a connection thread; the
  // joining happens in stop(), typically on the main thread parked in
  // waitUntilStopped() — a connection thread never joins itself.
  if (quit) requestStop();
}

}  // namespace cmmfo::server
