#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "obs/prometheus.h"
#include "server/fair_scheduler.h"

namespace cmmfo::server {

namespace fs = std::filesystem;

namespace {

using SteadyClock = std::chrono::steady_clock;

std::int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

/// Deterministic chaos coin in [0, 1): splitmix64 finalize over the chaos
/// seed, an FNV-1a hash of the campaign id, and the per-campaign attempt
/// counter. Same (seed, id, tick) -> same draw, on any host.
double chaosUniform(std::uint64_t seed, const std::string& id,
                    std::uint64_t tick) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t x = seed ^ h;
  x += 0x9e3779b97f4a7c15ULL * (tick + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Atomic small-file write: temp in the same directory, then rename.
void writeFileAtomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << text;
  }
  fs::rename(tmp, path);
}

}  // namespace

OptimizationServer::OptimizationServer(ServerOptions opts)
    : opts_(std::move(opts)),
      pool_(std::max(opts_.workers, 1)),
      farm_(std::max(opts_.workers, 1)) {
  if (opts_.cache_capacity > 0) cache_.setCapacity(opts_.cache_capacity);
  if (!opts_.journal_dir.empty()) fs::create_directories(opts_.journal_dir);
}

OptimizationServer::~OptimizationServer() { stop(); }

void OptimizationServer::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_stopping_ = false;
  }
  started_at_ = SteadyClock::now();
  if (opts_.resume && !opts_.journal_dir.empty()) resumeFromJournal();
  const int slots = std::max(opts_.slots, 1);
  for (int i = 0; i < slots; ++i)
    drivers_.emplace_back([this] { driverLoop(); });
  if (opts_.heartbeat_seconds > 0.0 || opts_.step_deadline_seconds > 0.0 ||
      opts_.idle_timeout_seconds > 0.0)
    watchdog_ = std::thread([this] { watchdogLoop(); });
}

void OptimizationServer::requestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Unblock the accept loop, then every per-connection reader: a thread
  // parked in ::read on an idle-but-open connection only returns once its
  // socket is shut down (the owning thread still does the ::close).
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  const int mfd = metrics_listen_fd_.exchange(-1);
  if (mfd >= 0) {
    ::shutdown(mfd, SHUT_RDWR);
    ::close(mfd);
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_stopping_ = true;
  for (const std::shared_ptr<ConnState>& c : conns_)
    ::shutdown(c->fd, SHUT_RDWR);
}

void OptimizationServer::stop() {
  // Plain (blocking) lock: a concurrent stop() waits for the in-flight one
  // to finish joining before returning, so callers — including the
  // destructor racing a shutdown request — never tear the server down
  // under a stop() still touching its members.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  requestStop();
  for (std::thread& t : drivers_)
    if (t.joinable()) t.join();
  drivers_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_accept_thread_.joinable()) metrics_accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void OptimizationServer::notifyAll() { cv_.notify_all(); }

void OptimizationServer::maybeInjectChaos(Campaign& c) const {
  const ServerOptions::ChaosOptions& ch = opts_.chaos;
  if (ch.step_fault_prob <= 0.0 && ch.step_hang_prob <= 0.0) return;
  const std::string& id = c.spec().id;
  if (!ch.only_id.empty() && ch.only_id != id) return;
  const double u = chaosUniform(ch.seed, id, c.nextChaosTick());
  if (u < ch.step_fault_prob)
    throw std::runtime_error("chaos: injected step fault");
  // A hung eval: sleep, then run the step normally. The delay is invisible
  // to the trajectory (nothing in the optimizer reads wall clocks into
  // algorithm state) but the watchdog must report the overrun.
  if (u < ch.step_fault_prob + ch.step_hang_prob)
    std::this_thread::sleep_for(std::chrono::milliseconds(ch.hang_ms));
}

void OptimizationServer::superviseFailure(const std::shared_ptr<Campaign>& c,
                                          const std::string& what) {
  const std::string& id = c->spec().id;
  std::string reason = what;
  if (opts_.max_restarts > 0 && c->restarts() < opts_.max_restarts) {
    const int prior = c->restarts();
    const long long base = std::max(opts_.restart_backoff_ms, 0);
    const auto backoff =
        std::chrono::milliseconds(base << std::min(prior, 20));
    try {
      const CampaignState st = c->scheduleRestart(backoff, what);
      if (st == CampaignState::kCancelled) {
        writeFinalFile(id, st);
        publish(stateEvent(id, st));
        return;
      }
      ++restarts_total_;
      std::string d = "{\"type\":\"failure\",\"action\":\"restart\",\"id\":";
      util::putString(d, id);
      d += ",\"restarts\":";
      util::putInt(d, c->restarts());
      d += ",\"backoff_ms\":";
      util::putDouble(d, static_cast<double>(backoff.count()));
      d += ",\"error\":";
      util::putString(d, what);
      d += "}";
      appendDiag(id, d);
      publish(restartEvent(id, c->restarts(),
                           static_cast<double>(backoff.count()), what));
      if (st == CampaignState::kPaused) publish(stateEvent(id, st));
      return;
    } catch (const std::exception& e) {
      reason += std::string("; restart failed: ") + e.what();
    } catch (...) {
      reason += "; restart failed: unknown exception";
    }
  }
  c->fail(reason);
  std::string d = "{\"type\":\"failure\",\"action\":\"failed\",\"id\":";
  util::putString(d, id);
  d += ",\"restarts\":";
  util::putInt(d, c->restarts());
  d += ",\"error\":";
  util::putString(d, reason);
  d += "}";
  appendDiag(id, d);
  writeFinalFile(id, CampaignState::kFailed);
  publish(stateEvent(id, CampaignState::kFailed, reason));
}

void OptimizationServer::driverLoop() {
  while (true) {
    std::shared_ptr<Campaign> claimed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stopping_) {
        SteadyClock::time_point next_eligible{};
        const std::shared_ptr<Campaign> next = FairScheduler::pickNext(
            registry_.list(), SteadyClock::now(), &next_eligible);
        if (next == nullptr) {
          // Nothing runnable. If queued campaigns are merely inside their
          // restart backoff, sleep until the earliest becomes eligible.
          if (next_eligible != SteadyClock::time_point{})
            cv_.wait_until(lock, next_eligible);
          else
            cv_.wait(lock);
          continue;
        }
        // Claims happen only under mu_, so this cannot race another
        // driver; it can still lose to a concurrent pause/cancel, in
        // which case re-scan.
        if (next->beginStep()) {
          claimed = next;
          break;
        }
      }
      if (claimed == nullptr) return;  // stopping
    }

    const std::string& id = claimed->spec().id;
    const auto t0 = SteadyClock::now();
    core::RoundOutcome outcome;
    std::string what;
    bool failed = false;
    try {
      maybeInjectChaos(*claimed);
      outcome = claimed->runStep();
    } catch (const std::exception& e) {
      failed = true;
      what = e.what();
    } catch (...) {
      failed = true;
      what = "unknown exception in campaign step";
    }
    const double step_seconds =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    if (obs::metrics().enabled()) {
      // SLO latency: one aggregate histogram plus a per-campaign labeled
      // series (the "#k=v" suffix renders as a Prometheus label).
      obs::metrics().observe("slo.step_seconds", step_seconds);
      obs::metrics().observe("slo.step_seconds#campaign=" + id, step_seconds);
    }

    if (failed) {
      // Failure isolation: only THIS campaign restarts or fails; the
      // daemon, the drivers, and every co-tenant keep running.
      superviseFailure(claimed, what);
    } else {
      farm_.placeRound(id, outcome.job_seconds);
      const CampaignState st = claimed->endStep(outcome);
      ++steps_executed_;
      if (!outcome.resume_note.empty()) {
        std::string d = "{\"type\":\"journal\",\"id\":";
        util::putString(d, id);
        d += ",\"note\":";
        util::putString(d, outcome.resume_note);
        d += "}";
        appendDiag(id, d);
      }
      for (const std::string& note : outcome.recovery_notes) {
        std::string d = "{\"type\":\"recovery\",\"id\":";
        util::putString(d, id);
        d += ",\"round\":";
        util::putInt(d, outcome.round);
        d += ",\"note\":";
        util::putString(d, note);
        d += "}";
        appendDiag(id, d);
      }
      publish(roundEvent(id, outcome, step_seconds));
      if (terminal(st)) {
        writeFinalFile(id, st);
        publish(stateEvent(id, st));
      } else if (st == CampaignState::kPaused) {
        publish(stateEvent(id, st));
      }
    }
    notifyAll();  // re-queued work for other drivers / drain() progress
  }
}

void OptimizationServer::watchdogLoop() {
  // Tick at the finest enabled granularity (half-period for the deadline
  // and idle scans so an overrun is seen within ~1.5x its bound).
  double tick = 3600.0;
  if (opts_.heartbeat_seconds > 0.0) tick = std::min(tick, opts_.heartbeat_seconds);
  if (opts_.step_deadline_seconds > 0.0)
    tick = std::min(tick, opts_.step_deadline_seconds / 2.0);
  if (opts_.idle_timeout_seconds > 0.0)
    tick = std::min(tick, opts_.idle_timeout_seconds / 2.0);
  tick = std::max(tick, 0.005);
  auto last_heartbeat = SteadyClock::now();

  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double>(tick));
    if (stopping_) break;
    lock.unlock();

    const auto now = SteadyClock::now();
    if (opts_.heartbeat_seconds > 0.0 &&
        std::chrono::duration<double>(now - last_heartbeat).count() >=
            opts_.heartbeat_seconds) {
      last_heartbeat = now;
      publish(heartbeatEvent(
          registry_.size(), steps_executed_.load(), supervisionStats(),
          std::chrono::duration<double>(now - started_at_).count()));
    }
    if (opts_.step_deadline_seconds > 0.0) {
      for (const std::shared_ptr<Campaign>& c : registry_.list()) {
        const double secs = c->stepSeconds(now);
        if (secs > opts_.step_deadline_seconds && c->markStalled()) {
          ++stalled_steps_;
          const std::string& id = c->spec().id;
          std::string d = "{\"type\":\"stall\",\"id\":";
          util::putString(d, id);
          d += ",\"step_seconds\":";
          util::putDouble(d, secs);
          d += ",\"deadline_seconds\":";
          util::putDouble(d, opts_.step_deadline_seconds);
          d += "}";
          appendDiag(id, d);
          publish(stallEvent(id, secs, opts_.step_deadline_seconds));
        }
      }
    }
    if (opts_.idle_timeout_seconds > 0.0) {
      const std::int64_t cutoff_ms =
          nowMs() -
          static_cast<std::int64_t>(opts_.idle_timeout_seconds * 1000.0);
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      for (const std::shared_ptr<ConnState>& c : conns_) {
        if (c->subscribed.load() || c->last_active_ms.load() > cutoff_ms)
          continue;
        if (!c->reaped.exchange(true)) {
          // The reader thread wakes with EOF and retires the connection;
          // the latch keeps one idle socket from counting every tick.
          ::shutdown(c->fd, SHUT_RDWR);
          ++reaped_conns_;
        }
      }
    }
    lock.lock();
  }
}

void OptimizationServer::waitUntilStopped() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return stopping_ || !running_; });
}

void OptimizationServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    if (stopping_) return true;
    for (const std::shared_ptr<Campaign>& c : registry_.list()) {
      const CampaignState s = c->state();
      if (s == CampaignState::kQueued || s == CampaignState::kRunning)
        return false;
    }
    return true;
  });
}

bool OptimizationServer::submit(const CampaignSpec& spec, std::string* err,
                                bool* shed) {
  if (shed != nullptr) *shed = false;
  if (!validCampaignId(spec.id)) {
    if (err != nullptr) *err = "invalid campaign id";
    return false;
  }
  // Admission control: serialize the capacity check with the insert so two
  // racing submits cannot overshoot max_campaigns.
  std::lock_guard<std::mutex> admission_lock(admission_mu_);
  if (opts_.max_campaigns > 0) {
    std::size_t active = 0;
    for (const std::shared_ptr<Campaign>& c : registry_.list())
      if (!terminal(c->state())) ++active;
    if (active >= opts_.max_campaigns) {
      ++load_shed_;
      if (err != nullptr)
        *err = "server at capacity (" +
               std::to_string(opts_.max_campaigns) +
               " active campaigns): submission shed, retry later";
      if (shed != nullptr) *shed = true;
      return false;
    }
  }
  CampaignSpec s = spec;
  if (!opts_.journal_dir.empty())
    s.opts.checkpoint_path = journalPath(s.id, ".ckpt.json");
  // Daemon journaling policy: CRC-framed checkpoints with rollback frames,
  // and lenient resume — a torn or missing journal quarantines/cold-starts
  // the one campaign instead of refusing the whole daemon start.
  s.opts.framed_journal = opts_.framed_journal;
  s.opts.resume_lenient = true;

  std::shared_ptr<const hls::DesignSpace> space;
  try {
    std::lock_guard<std::mutex> lock(spaces_mu_);
    auto& slot = spaces_[s.benchmark];
    if (slot == nullptr) slot = makeSpaceFor(s.benchmark);
    space = slot;
  } catch (const std::exception& e) {
    if (err != nullptr) *err = e.what();
    return false;
  }

  core::SharedRuntime shared;
  shared.cache = &cache_;
  shared.pool = &pool_;
  shared.cache_namespace = cacheNamespaceOf(s);
  shared.cache_ledger = cacheLedgerOf(s);
  shared.collect_outcomes = true;
  std::shared_ptr<Campaign> campaign;
  try {
    campaign = std::make_shared<Campaign>(s, space, shared);
  } catch (const std::exception& e) {
    if (err != nullptr) *err = e.what();
    return false;
  }
  if (!registry_.add(campaign)) {
    if (err != nullptr) *err = "duplicate campaign id";
    return false;
  }
  if (!s.opts.resume) writeSpecFile(s);
  notifyAll();
  return true;
}

bool OptimizationServer::pause(const std::string& id, std::string* err) {
  const std::shared_ptr<Campaign> c = registry_.get(id);
  if (c == nullptr) {
    if (err != nullptr) *err = "unknown campaign id";
    return false;
  }
  if (!c->requestPause(err)) return false;
  if (c->state() == CampaignState::kPaused)
    publish(stateEvent(id, CampaignState::kPaused));
  return true;
}

bool OptimizationServer::resumeCampaign(const std::string& id,
                                        std::string* err) {
  const std::shared_ptr<Campaign> c = registry_.get(id);
  if (c == nullptr) {
    if (err != nullptr) *err = "unknown campaign id";
    return false;
  }
  if (!c->requestResume(err)) return false;
  notifyAll();
  return true;
}

bool OptimizationServer::cancel(const std::string& id, std::string* err) {
  const std::shared_ptr<Campaign> c = registry_.get(id);
  if (c == nullptr) {
    if (err != nullptr) *err = "unknown campaign id";
    return false;
  }
  if (!c->requestCancel(err)) return false;
  if (c->state() == CampaignState::kCancelled) {
    // Cancelled in place (was queued/paused); running ones finish their
    // round first and the driver publishes the transition.
    writeFinalFile(id, CampaignState::kCancelled);
    publish(stateEvent(id, CampaignState::kCancelled));
  }
  notifyAll();
  return true;
}

std::shared_ptr<Campaign> OptimizationServer::campaign(
    const std::string& id) const {
  return registry_.get(id);
}

std::vector<StatusSnapshot> OptimizationServer::list() const {
  std::vector<StatusSnapshot> out;
  for (const std::shared_ptr<Campaign>& c : registry_.list())
    out.push_back(c->snapshot());
  return out;
}

SupervisionStats OptimizationServer::supervisionStats() const {
  SupervisionStats sup;
  sup.restarts = restarts_total_.load();
  sup.stalled_steps = stalled_steps_.load();
  sup.load_shed = load_shed_.load();
  sup.reaped_conns = reaped_conns_.load();
  return sup;
}

ServerStats OptimizationServer::stats() const {
  ServerStats s;
  s.cache = cache_.stats();
  s.farm_makespan_seconds = farm_.makespan();
  s.campaigns = registry_.size();
  s.steps_executed = steps_executed_.load();
  s.supervision = supervisionStats();
  return s;
}

int OptimizationServer::subscribe(EventSink sink) {
  auto sub = std::make_shared<Subscriber>();
  sub->sink = std::move(sink);
  std::lock_guard<std::mutex> lock(mu_);
  const int token = next_token_++;
  subscribers_[token] = std::move(sub);
  return token;
}

void OptimizationServer::unsubscribe(int token) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = subscribers_.find(token);
    if (it == subscribers_.end()) return;
    sub = it->second;
    subscribers_.erase(it);
  }
  // Block until any in-flight delivery to this sink finishes, then bar
  // further ones: once unsubscribe() returns, the transport can safely
  // close the stream/fd the sink writes to.
  std::lock_guard<std::mutex> lock(sub->m);
  sub->active = false;
}

void OptimizationServer::publish(const std::string& line) {
  // Snapshot under mu_, deliver OUTSIDE it: one stalled subscriber socket
  // (blocking ::send into a full buffer) can only wedge its own deliveries,
  // never submit/pause/cancel, drain(), the other drivers, or stop().
  // Per-sink exclusion + the active flag preserve the unsubscribe contract
  // above; the class-comment contract still holds — sinks only write bytes,
  // never call back into the server.
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    subs.reserve(subscribers_.size());
    for (const auto& [token, sub] : subscribers_) subs.push_back(sub);
  }
  for (const std::shared_ptr<Subscriber>& sub : subs) {
    std::lock_guard<std::mutex> lock(sub->m);
    if (sub->active) sub->sink(line);
  }
}

// ------------------------------------------------------------- Journal ----

std::string OptimizationServer::journalPath(const std::string& id,
                                            const char* suffix) const {
  return (fs::path(opts_.journal_dir) / (id + suffix)).string();
}

void OptimizationServer::writeSpecFile(const CampaignSpec& spec) const {
  if (opts_.journal_dir.empty()) return;
  writeFileAtomic(journalPath(spec.id, ".spec.json"), specToJson(spec) + "\n");
}

void OptimizationServer::writeFinalFile(const std::string& id,
                                        CampaignState state) const {
  if (opts_.journal_dir.empty()) return;
  std::string s = "{\"id\":";
  util::putString(s, id);
  s += ",\"state\":";
  util::putString(s, stateName(state));
  s += "}\n";
  writeFileAtomic(journalPath(id, ".final.json"), s);
}

void OptimizationServer::appendDiag(const std::string& id,
                                    const std::string& line) const {
  if (opts_.journal_dir.empty()) return;
  std::lock_guard<std::mutex> lock(diag_mu_);
  std::ofstream out(journalPath(id, ".diag.jsonl"), std::ios::app);
  out << line << "\n";
}

void OptimizationServer::resumeFromJournal() {
  const std::string kSpec = ".spec.json";
  std::vector<std::string> ids;
  for (const auto& entry : fs::directory_iterator(opts_.journal_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= kSpec.size() ||
        name.compare(name.size() - kSpec.size(), kSpec.size(), kSpec) != 0)
      continue;
    ids.push_back(name.substr(0, name.size() - kSpec.size()));
  }
  std::sort(ids.begin(), ids.end());  // deterministic re-submit order
  const auto readAll = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  for (const std::string& id : ids) {
    const std::string final_path = journalPath(id, ".final.json");
    if (fs::exists(final_path)) {
      // Trust the final marker only when it actually parses: an empty or
      // torn one means the daemon died mid-write, so the campaign is NOT
      // reliably finished — warn and re-queue it from its spec.
      util::Json fj;
      std::string ferr;
      if (util::parseJson(readAll(final_path), &fj, &ferr) &&
          fj.kind == util::Json::kObj && !fj.strOr("state", "").empty())
        continue;  // genuinely finished
      std::string d = "{\"type\":\"resume_warning\",\"id\":";
      util::putString(d, id);
      d += ",\"note\":\"final marker unreadable; re-queued from spec\"}";
      appendDiag(id, d);
    }
    util::Json j;
    CampaignSpec spec;
    std::string err;
    if (!util::parseJson(readAll(journalPath(id, ".spec.json")), &j, &err) ||
        !specFromJson(j, &spec, &err)) {
      // A corrupt spec must not take the whole daemon down: log and skip.
      std::string d = "{\"type\":\"resume_warning\",\"id\":";
      util::putString(d, id);
      d += ",\"note\":";
      util::putString(d, "corrupt spec file, campaign skipped: " + err);
      d += "}";
      appendDiag(id, d);
      continue;
    }
    spec.opts.resume = true;  // pick the trajectory up from <id>.ckpt.json
    if (!submit(spec, &err)) {
      std::string d = "{\"type\":\"resume_warning\",\"id\":";
      util::putString(d, id);
      d += ",\"note\":";
      util::putString(d, "re-submit failed: " + err);
      d += "}";
      appendDiag(id, d);
    }
    // A missing, empty, or torn <id>.ckpt.json is handled downstream by
    // the lenient resume: the optimizer rolls back to the last intact
    // frame or cold-starts, and its resume_note lands in <id>.diag.jsonl.
  }
}

// ------------------------------------------------------- Line protocol ----

std::string OptimizationServer::handleLine(const std::string& line,
                                           const EventSink& sink, bool* quit,
                                           int* sub_token) {
  Request req;
  std::string err;
  if (!parseRequest(line, &req, &err)) return errorResponse(err);

  if (req.op == "submit") {
    CampaignSpec spec;
    if (!specFromJson(req.body, &spec, &err)) return errorResponse(err);
    bool shed = false;
    if (!submit(spec, &err, &shed))
      return shed ? shedResponse(err) : errorResponse(err);
    return okResponse();
  }
  if (req.op == "status") {
    const std::shared_ptr<Campaign> c = campaign(req.id);
    if (c == nullptr) return errorResponse("unknown campaign id");
    return statusResponse(c->snapshot());
  }
  if (req.op == "list") return listResponse(list());
  if (req.op == "metrics")
    return metricsResponse(obs::metrics().snapshot(),
                           obs::tracer().droppedCount(),
                           obs::metrics().enabled());
  if (req.op == "stats") {
    const ServerStats st = stats();
    return statsResponse(st.cache, list(), st.farm_makespan_seconds,
                         st.supervision);
  }
  if (req.op == "pause")
    return pause(req.id, &err) ? okResponse() : errorResponse(err);
  if (req.op == "resume")
    return resumeCampaign(req.id, &err) ? okResponse() : errorResponse(err);
  if (req.op == "cancel")
    return cancel(req.id, &err) ? okResponse() : errorResponse(err);
  if (req.op == "subscribe") {
    if (!sink) return errorResponse("transport does not support events");
    const int token = subscribe(sink);
    if (sub_token != nullptr) *sub_token = token;
    return okResponse();
  }
  if (req.op == "drain") {
    drain();
    return okResponse();
  }
  if (req.op == "shutdown") {
    if (quit != nullptr) *quit = true;
    return okResponse();
  }
  return errorResponse("unknown op: " + req.op);
}

void OptimizationServer::serveStdio(std::istream& in, std::ostream& out) {
  const auto out_mu = std::make_shared<std::mutex>();
  const EventSink sink = [&out, out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*out_mu);
    out << line << "\n";
    out.flush();
  };
  int sub_token = -1;
  bool quit = false;
  std::string line;
  while (!quit && std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string resp =
        line.size() > opts_.max_line_bytes
            ? errorResponse("request line exceeds max_line_bytes (" +
                            std::to_string(opts_.max_line_bytes) + ")")
            : handleLine(line, sink, &quit, &sub_token);
    std::lock_guard<std::mutex> lock(*out_mu);
    out << resp << "\n";
    out.flush();
  }
  // Drop the subscription before `out` goes out of the caller's scope.
  if (sub_token >= 0) unsubscribe(sub_token);
  if (quit) stop();
}

int OptimizationServer::listenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_.store(fd);
  accept_thread_ = std::thread([this] { acceptLoop(); });
  return static_cast<int>(ntohs(addr.sin_port));
}

int OptimizationServer::listenMetricsHttp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  metrics_listen_fd_.store(fd);
  metrics_accept_thread_ = std::thread([this] { metricsAcceptLoop(); });
  return static_cast<int>(ntohs(addr.sin_port));
}

void OptimizationServer::metricsAcceptLoop() {
  while (true) {
    const int lfd = metrics_listen_fd_.load();
    if (lfd < 0) return;
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) return;  // listener closed by stop()
    // One scrape per connection, served inline: read the request head,
    // answer, hang up. The endpoint is read-only and the body is small, so
    // a per-connection thread would buy nothing.
    std::string head;
    char chunk[4096];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos && head.size() < 65536) {
      const ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n <= 0) break;
      head.append(chunk, static_cast<std::size_t>(n));
    }
    const auto line_end = head.find_first_of("\r\n");
    const std::string req_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const bool is_get = req_line.compare(0, 4, "GET ") == 0;
    const std::string target =
        is_get ? req_line.substr(4, req_line.find(' ', 4) - 4) : "";
    const std::string path = target.substr(0, target.find('?'));
    std::string resp;
    if (is_get && (path == "/metrics" || path == "/")) {
      const std::string body = obs::toPrometheusText(
          obs::metrics().snapshot(), obs::tracer().droppedCount());
      resp = "HTTP/1.1 200 OK\r\n"
             "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
             "Content-Length: " + std::to_string(body.size()) +
             "\r\nConnection: close\r\n\r\n" + body;
    } else {
      resp = "HTTP/1.1 404 Not Found\r\n"
             "Content-Length: 0\r\nConnection: close\r\n\r\n";
    }
    (void)::send(conn, resp.data(), resp.size(), MSG_NOSIGNAL);
    ::close(conn);
  }
}

void OptimizationServer::acceptLoop() {
  while (true) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) return;  // listener closed by stop()
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (conns_stopping_) {
      // Lost the race with requestStop()'s shutdown sweep: this fd would
      // never be shut down and its reader never joined. Refuse it.
      ::close(conn);
      continue;
    }
    auto state = std::make_shared<ConnState>();
    state->fd = conn;
    state->last_active_ms.store(nowMs());
    conns_.push_back(state);
    conn_threads_.emplace_back([this, state] { serveFd(state); });
  }
}

void OptimizationServer::serveFd(const std::shared_ptr<ConnState>& conn) {
  const int fd = conn->fd;
  const auto write_mu = std::make_shared<std::mutex>();
  const auto writeLine = [fd, write_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*write_mu);
    std::string msg = line + "\n";
    // Best effort: a peer that hung up just stops receiving events.
    (void)::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL);
  };
  int sub_token = -1;
  bool quit = false;
  std::string buf;
  char chunk[4096];
  while (!quit) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    conn->last_active_ms.store(nowMs());
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while (!quit && (pos = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (line.empty()) continue;
      if (line.size() > opts_.max_line_bytes) {
        // A complete-but-oversized request: answer and resync at the
        // newline we already found.
        writeLine(errorResponse("request line exceeds max_line_bytes (" +
                                std::to_string(opts_.max_line_bytes) + ")"));
        continue;
      }
      writeLine(handleLine(line, writeLine, &quit, &sub_token));
      if (sub_token >= 0) conn->subscribed.store(true);
    }
    if (buf.size() > opts_.max_line_bytes) {
      // A newline-free buffer past the bound is a hostile or broken peer:
      // there is no frame boundary left to resync on, so hang up.
      writeLine(errorResponse(
          "unterminated request exceeds max_line_bytes; closing connection"));
      break;
    }
  }
  if (sub_token >= 0) unsubscribe(sub_token);
  {
    // Retire the fd from the shutdown sweep's ledger before closing it, so
    // requestStop() cannot shut down a recycled descriptor number.
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [&](const std::shared_ptr<ConnState>& c) {
                                  return c.get() == conn.get();
                                }),
                 conns_.end());
  }
  ::close(fd);
  // The shutdown op only INITIATES the stop from a connection thread; the
  // joining happens in stop(), typically on the main thread parked in
  // waitUntilStopped() — a connection thread never joins itself.
  if (quit) requestStop();
}

}  // namespace cmmfo::server
