#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/eval_cache.h"
#include "runtime/thread_pool.h"
#include "server/farm_model.h"
#include "server/protocol.h"
#include "server/registry.h"

namespace cmmfo::server {

struct ServerOptions {
  /// Width of the shared tool-worker pool all campaigns' jobs execute on.
  int workers = 4;
  /// Driver threads = campaign steps in flight at once. Each driver claims
  /// the minimum-deficit queued campaign, runs one round, and re-queues it,
  /// so `slots` campaigns interleave on the shared pool at any moment.
  int slots = 2;
  /// Directory for per-campaign journals (`<id>.spec.json` at submit,
  /// `<id>.ckpt.json` after every round, `<id>.final.json` on completion).
  /// Empty disables persistence.
  std::string journal_dir;
  /// Re-submit (resume=true) every journaled campaign without a final
  /// marker on start(). Requires journal_dir.
  bool resume = false;
  /// Shared eval-cache LRU bound in flows; 0 = unbounded.
  std::size_t cache_capacity = 0;

  // ---- Supervision & robustness (see docs/robustness.md). ----
  /// CRC-framed multi-generation checkpoint journals (torn-tail detection
  /// + one-round rollback on resume). Plain single-JSON journals otherwise.
  bool framed_journal = true;
  /// Failed steps re-queue the campaign (rebuilt from its last good
  /// checkpoint) up to this many times before it parks in kFailed
  /// permanently; 0 disables restarts (first failure is final).
  int max_restarts = 2;
  /// Base restart backoff; doubles per restart already consumed.
  int restart_backoff_ms = 100;
  /// Watchdog: report (once per step) any step running longer than this;
  /// 0 disables. The step is NOT killed — evals are cooperative — but the
  /// stall is streamed, journaled, and counted.
  double step_deadline_seconds = 0.0;
  /// Emit a heartbeat event on the stream this often; 0 disables.
  double heartbeat_seconds = 0.0;
  /// Shut down TCP connections idle (no request, not subscribed) longer
  /// than this; 0 disables.
  double idle_timeout_seconds = 0.0;
  /// Admission bound on non-terminal campaigns; submits beyond it are shed
  /// with an explicit load-shed reply. 0 = unbounded.
  std::size_t max_campaigns = 0;
  /// Protocol line-length bound: a complete longer line gets an error
  /// reply; an unbounded (newline-free) buffer closes the connection.
  std::size_t max_line_bytes = 1 << 20;
  /// Deterministic fault injection for the chaos harness: before each
  /// claimed step, a seeded per-(campaign, attempt) coin either throws a
  /// synthetic step fault or sleeps `hang_ms` (a hung eval the watchdog
  /// must catch). Injection happens BEFORE the stepper runs, so a
  /// restarted campaign replays its trajectory bit-identically.
  struct ChaosOptions {
    std::uint64_t seed = 0;
    double step_fault_prob = 0.0;
    double step_hang_prob = 0.0;
    int hang_ms = 20;
    /// Restrict injection to one campaign id (empty = all): lets tests pin
    /// faults on a victim and assert bystanders are untouched.
    std::string only_id;
  } chaos;
};

/// Aggregate counters for the stats endpoint / throughput bench.
struct ServerStats {
  runtime::EvalCache::Stats cache;
  double farm_makespan_seconds = 0.0;
  std::size_t campaigns = 0;
  std::size_t steps_executed = 0;
  SupervisionStats supervision;
};

/// Long-running multi-campaign optimization daemon: many tenants' BO
/// campaigns multiplexed over ONE shared worker pool and ONE shared
/// fidelity-aware eval cache.
///
/// Architecture: submit() builds a Campaign (design space cached per
/// benchmark; simulator private per campaign) and registers it queued.
/// `slots` driver threads loop {pick minimum-deficit queued campaign, run
/// one BO round on the shared pool, write its checkpoint journal, publish a
/// round event, re-queue}. Fairness, persistence, and streaming all hang
/// off that one loop.
///
/// Threading: Registry and Campaign carry their own locks; mu_ below only
/// guards the driver wakeup condition, subscribers, and counters. Event
/// sinks are invoked OUTSIDE mu_ (a stalled subscriber socket can only
/// block its own delivery, never submit/pause/stop), serialized per
/// subscriber; unsubscribe() blocks until in-flight deliveries to that sink
/// finish, so a transport can tear its stream down right after. Sinks MUST
/// NOT call back into the server (they run on driver threads).
class OptimizationServer {
 public:
  explicit OptimizationServer(ServerOptions opts);
  ~OptimizationServer();

  /// Launch the driver threads (and journal resume when configured).
  void start();
  /// Finish in-flight steps, then stop the drivers and join every transport
  /// thread (live connections are shut down so blocked reads return).
  /// Idempotent AND blocking: a concurrent stop() waits for the in-flight
  /// one to finish before returning, so the caller may destroy the server
  /// right after. Campaigns keep their states; a journaled server can be
  /// restarted later. Must not be called from a driver/connection thread.
  void stop();
  /// Block until no campaign is queued or running (paused ones keep the
  /// server drained — they only re-enter on an explicit resume).
  void drain();
  /// Block until stop() is initiated (the TCP daemon's main-thread park).
  void waitUntilStopped();

  // ---- Tenant operations (all safe from any thread). ----
  /// `shed` (when non-null) is set true iff the refusal was admission
  /// control (server at max_campaigns), i.e. "retry later", not "bad spec".
  bool submit(const CampaignSpec& spec, std::string* err,
              bool* shed = nullptr);
  bool pause(const std::string& id, std::string* err);
  bool resumeCampaign(const std::string& id, std::string* err);
  bool cancel(const std::string& id, std::string* err);
  std::shared_ptr<Campaign> campaign(const std::string& id) const;
  std::vector<StatusSnapshot> list() const;
  ServerStats stats() const;

  // ---- Event streaming. ----
  using EventSink = std::function<void(const std::string& line)>;
  int subscribe(EventSink sink);
  void unsubscribe(int token);

  // ---- Protocol front ends. ----
  /// Handle one NDJSON request line; returns the response line. subscribe
  /// registers `sink` (when non-null) for this connection's event stream
  /// and stores the subscription token in `*sub_token` (for the
  /// transport's cleanup on disconnect). drain blocks inside this call;
  /// shutdown sets `*quit` and leaves stopping to the transport.
  std::string handleLine(const std::string& line, const EventSink& sink,
                         bool* quit, int* sub_token);
  /// Serve the line protocol over streams (tests, CI smoke, --stdio mode):
  /// requests from `in`, responses AND subscribed events to `out`
  /// (interleaved whole lines, write-locked). Returns on EOF or shutdown.
  void serveStdio(std::istream& in, std::ostream& out);
  /// Listen on 127.0.0.1:`port` (0 = ephemeral) and serve each connection
  /// on its own thread. Returns the bound port; serving continues until
  /// stop().
  int listenTcp(int port);
  /// Prometheus exposition: listen on 127.0.0.1:`port` (0 = ephemeral) and
  /// answer `GET /metrics` (or `/`) with the live registry in text format
  /// 0.0.4. One scrape is served at a time (scrapes are tiny and the
  /// endpoint is read-only). Returns the bound port, -1 on error; serving
  /// continues until stop().
  int listenMetricsHttp(int port);

  runtime::EvalCache& cache() { return cache_; }
  const SharedFarmModel& farm() const { return farm_; }
  const ServerOptions& options() const { return opts_; }

 private:
  /// Per-TCP-connection ledger entry: the fd plus the watchdog's idle-reap
  /// inputs (last request instant, subscription flag, reaped-once latch).
  struct ConnState {
    int fd = -1;
    std::atomic<std::int64_t> last_active_ms{0};
    std::atomic<bool> subscribed{false};
    std::atomic<bool> reaped{false};
  };

  void driverLoop();
  void watchdogLoop();
  void acceptLoop();
  void metricsAcceptLoop();
  void serveFd(const std::shared_ptr<ConnState>& conn);
  /// Initiate shutdown without joining anything: set stopping_, close the
  /// listener, and shut down live connection sockets so their readers
  /// unblock. Safe from any thread (the shutdown op calls it from a
  /// connection thread); stop() runs it first, then joins.
  void requestStop();
  /// Throw/sleep per the seeded chaos coin for this campaign's next
  /// attempt; no-op when chaos is off or the campaign is not targeted.
  void maybeInjectChaos(Campaign& c) const;
  /// Supervision response to a failed step: restart (with backoff) while
  /// attempts remain, else park in kFailed; journals a diagnostic record
  /// and publishes the transition either way.
  void superviseFailure(const std::shared_ptr<Campaign>& c,
                        const std::string& what);
  /// Journal helpers (no-ops without journal_dir).
  void writeSpecFile(const CampaignSpec& spec) const;
  void writeFinalFile(const std::string& id, CampaignState state) const;
  void resumeFromJournal();
  std::string journalPath(const std::string& id, const char* suffix) const;
  /// Append one record line to `<id>.diag.jsonl` (no-op without
  /// journal_dir): failures, restarts, stalls, journal rollbacks, surrogate
  /// recovery notes.
  void appendDiag(const std::string& id, const std::string& line) const;
  SupervisionStats supervisionStats() const;
  void publish(const std::string& line);
  /// Wake drivers (new work) and drain()ers (work finished).
  void notifyAll();

  ServerOptions opts_;
  runtime::EvalCache cache_;
  runtime::ThreadPool pool_;
  SharedFarmModel farm_;
  Registry registry_;

  /// Serializes stop() itself: a second concurrent stop blocks until the
  /// first finishes joining, so whoever returns from stop() may safely
  /// destroy the server.
  std::mutex stop_mu_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stopping_ = false;
  std::vector<std::thread> drivers_;
  /// One registered event sink. Deliveries happen outside mu_ under the
  /// subscriber's own lock; unsubscribe flips `active` under that lock, so
  /// it cannot return while a delivery to this sink is in flight.
  struct Subscriber {
    std::mutex m;
    EventSink sink;
    bool active = true;
  };
  int next_token_ = 1;
  std::map<int, std::shared_ptr<Subscriber>> subscribers_;
  std::atomic<std::size_t> steps_executed_{0};

  /// Supervision machinery. The watchdog thread ticks on cv_ (so stop()
  /// wakes it), emits heartbeats, reports stalled steps, and reaps idle
  /// connections. admission_mu_ serializes the max_campaigns check with the
  /// registry insert so concurrent submits cannot overshoot the bound.
  std::thread watchdog_;
  std::chrono::steady_clock::time_point started_at_{};
  mutable std::mutex admission_mu_;
  mutable std::mutex diag_mu_;
  std::atomic<std::size_t> restarts_total_{0};
  std::atomic<std::size_t> stalled_steps_{0};
  std::atomic<std::size_t> load_shed_{0};
  std::atomic<std::size_t> reaped_conns_{0};

  /// Design spaces are immutable and expensive to build: shared across
  /// campaigns of the same benchmark. Guarded by spaces_mu_.
  mutable std::mutex spaces_mu_;
  std::map<std::string, std::shared_ptr<const hls::DesignSpace>> spaces_;

  /// TCP listener state. conns_mu_ guards the connection ledger: the fds
  /// requestStop() must shut down to unblock their readers, the threads
  /// stop() joins, and the flag that tells acceptLoop() to refuse a
  /// connection that races the shutdown sweep.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  /// Prometheus scrape listener (see listenMetricsHttp).
  std::atomic<int> metrics_listen_fd_{-1};
  std::thread metrics_accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::shared_ptr<ConnState>> conns_;
  bool conns_stopping_ = false;
};

}  // namespace cmmfo::server
