#include "server/fair_scheduler.h"

namespace cmmfo::server {

std::shared_ptr<Campaign> FairScheduler::pickNext(
    const std::vector<std::shared_ptr<Campaign>>& candidates,
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point* next_eligible) {
  std::shared_ptr<Campaign> best;
  double best_deficit = 0.0;
  for (const std::shared_ptr<Campaign>& c : candidates) {
    if (c->state() != CampaignState::kQueued) continue;
    const auto eligible = c->eligibleAt();
    if (eligible > now) {  // restart backoff: not runnable yet
      if (next_eligible != nullptr &&
          (*next_eligible == std::chrono::steady_clock::time_point{} ||
           eligible < *next_eligible))
        *next_eligible = eligible;
      continue;
    }
    const double d = c->deficit();
    // Strict < keeps the first (smallest-id) campaign on a tie.
    if (best == nullptr || d < best_deficit) {
      best = c;
      best_deficit = d;
    }
  }
  return best;
}

}  // namespace cmmfo::server
