#include "server/registry.h"

#include <algorithm>

namespace cmmfo::server {

std::size_t Registry::shardOf(const std::string& id) {
  return std::hash<std::string>{}(id) % kShards;
}

bool Registry::add(const std::shared_ptr<Campaign>& campaign) {
  Shard& shard = shards_[shardOf(campaign->spec().id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.emplace(campaign->spec().id, campaign).second;
}

std::shared_ptr<Campaign> Registry::get(const std::string& id) const {
  const Shard& shard = shards_[shardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(id);
  return it == shard.map.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Campaign>> Registry::list() const {
  std::vector<std::shared_ptr<Campaign>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, c] : shard.map) out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<Campaign>& a,
               const std::shared_ptr<Campaign>& b) {
              return a->spec().id < b->spec().id;
            });
  return out;
}

std::size_t Registry::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

}  // namespace cmmfo::server
