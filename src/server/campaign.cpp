#include "server/campaign.h"

#include <stdexcept>
#include <utility>

#include "bench_suite/benchmarks.h"
#include "obs/obs.h"
#include "scenario/generator.h"

namespace cmmfo::server {

bool validCampaignId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::uint64_t cacheNamespaceOf(const CampaignSpec& spec) {
  // FNV-1a over the benchmark name, then a splitmix fold of the sim seed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : spec.benchmark) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= spec.sim_seed + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  // Namespace 0 is the single-campaign default; never hand it to a tenant.
  return h == 0 ? 1 : h;
}

std::uint64_t cacheLedgerOf(const CampaignSpec& spec) {
  // FNV-1a over the campaign id, avalanched. Ids are unique per registry
  // and stable across daemon restarts, so a resumed campaign lands on its
  // own journaled counters and co-tenants never share a ledger.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : spec.id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  // 0 means "use the namespace" downstream; never hand it to a tenant.
  return h == 0 ? 1 : h;
}

std::string specToJson(const CampaignSpec& spec) {
  std::string s = "{\"id\":";
  util::putString(s, spec.id);
  s += ",\"benchmark\":";
  util::putString(s, spec.benchmark);
  s += ",\"sim_seed\":";
  util::putU64(s, spec.sim_seed);
  s += ",\"weight\":";
  util::putDouble(s, spec.weight);
  s += ",\"seed\":";
  util::putU64(s, spec.opts.seed);
  s += ",\"n_iter\":";
  util::putInt(s, spec.opts.n_iter);
  s += ",\"batch_size\":";
  util::putInt(s, spec.opts.batch_size);
  s += ",\"n_init_hls\":";
  util::putInt(s, spec.opts.n_init_hls);
  s += ",\"n_init_syn\":";
  util::putInt(s, spec.opts.n_init_syn);
  s += ",\"n_init_impl\":";
  util::putInt(s, spec.opts.n_init_impl);
  s += ",\"mc_samples\":";
  util::putInt(s, spec.opts.mc_samples);
  s += ",\"max_candidates\":";
  util::putInt(s, spec.opts.max_candidates);
  s += ",\"refit_every\":";
  util::putInt(s, spec.opts.refit_every);
  s += ",\"mle_restarts\":";
  util::putInt(s, spec.opts.surrogate.mtgp.mle_restarts);
  s += ",\"max_mle_iters\":";
  util::putInt(s, spec.opts.surrogate.mtgp.max_mle_iters);
  if (spec.opts.max_charged_seconds > 0.0) {
    // Written only when set, mirroring the checkpoint fingerprint rule:
    // unbudgeted specs keep their pre-knob JSON byte-for-byte.
    s += ",\"max_charged_seconds\":";
    util::putDouble(s, spec.opts.max_charged_seconds);
  }
  if (spec.opts.async) {
    // Same write-when-set rule. n_workers rides along because it is
    // trajectory-relevant in async mode (believer cap + fingerprint).
    s += ",\"async\":true,\"n_workers\":";
    util::putInt(s, spec.opts.n_workers);
  }
  s += "}";
  return s;
}

bool specFromJson(const util::Json& j, CampaignSpec* out, std::string* err) {
  const auto fail = [err](const char* what) {
    if (err != nullptr) *err = what;
    return false;
  };
  if (j.kind != util::Json::kObj) return fail("spec must be an object");
  CampaignSpec spec;
  spec.id = j.strOr("id", "");
  if (!validCampaignId(spec.id))
    return fail("invalid campaign id (want 1-64 chars of [A-Za-z0-9_-])");
  spec.benchmark = j.strOr("benchmark", spec.benchmark);
  if (const util::Json* v = j.find("sim_seed")) {
    if (!util::getU64(*v, spec.sim_seed)) return fail("bad sim_seed");
  }
  spec.weight = j.numOr("weight", spec.weight);
  if (!(spec.weight > 0.0)) return fail("weight must be > 0");
  if (const util::Json* v = j.find("seed")) {
    if (!util::getU64(*v, spec.opts.seed)) return fail("bad seed");
  }
  core::OptimizerOptions& o = spec.opts;
  o.n_iter = static_cast<int>(j.numOr("n_iter", o.n_iter));
  o.batch_size = static_cast<int>(j.numOr("batch_size", o.batch_size));
  o.n_init_hls = static_cast<int>(j.numOr("n_init_hls", o.n_init_hls));
  o.n_init_syn = static_cast<int>(j.numOr("n_init_syn", o.n_init_syn));
  o.n_init_impl = static_cast<int>(j.numOr("n_init_impl", o.n_init_impl));
  o.mc_samples = static_cast<int>(j.numOr("mc_samples", o.mc_samples));
  o.max_candidates =
      static_cast<int>(j.numOr("max_candidates", o.max_candidates));
  o.refit_every = static_cast<int>(j.numOr("refit_every", o.refit_every));
  o.max_charged_seconds =
      j.numOr("max_charged_seconds", o.max_charged_seconds);
  if (o.max_charged_seconds < 0.0)
    return fail("max_charged_seconds must be >= 0");
  if (const util::Json* v = j.find("async")) {
    if (v->kind != util::Json::kBool) return fail("async must be a boolean");
    o.async = v->b;
  }
  o.n_workers = static_cast<int>(j.numOr("n_workers", o.n_workers));
  if (o.async && o.n_workers < 1)
    return fail("async campaigns need n_workers >= 1");
  if (o.n_iter < 1 || o.batch_size < 1 || o.mc_samples < 1 ||
      o.max_candidates < 1 || o.refit_every < 1)
    return fail("optimizer knobs must be >= 1");
  if (o.n_init_impl < 2 || o.n_init_syn < o.n_init_impl ||
      o.n_init_hls < o.n_init_syn)
    return fail("init sizes must nest: hls >= syn >= impl >= 2");
  const int restarts = static_cast<int>(
      j.numOr("mle_restarts", o.surrogate.mtgp.mle_restarts));
  const int iters = static_cast<int>(
      j.numOr("max_mle_iters", o.surrogate.mtgp.max_mle_iters));
  if (restarts < 0 || iters < 1) return fail("bad surrogate effort knobs");
  o.surrogate.mtgp.mle_restarts = restarts;
  o.surrogate.gp.mle_restarts = restarts;
  o.surrogate.mtgp.max_mle_iters = iters;
  o.surrogate.gp.max_mle_iters = iters;
  *out = std::move(spec);
  return true;
}

const char* stateName(CampaignState s) {
  switch (s) {
    case CampaignState::kQueued: return "queued";
    case CampaignState::kRunning: return "running";
    case CampaignState::kPaused: return "paused";
    case CampaignState::kDone: return "done";
    case CampaignState::kCancelled: return "cancelled";
    case CampaignState::kFailed: return "failed";
  }
  return "unknown";
}

bool terminal(CampaignState s) {
  return s == CampaignState::kDone || s == CampaignState::kCancelled ||
         s == CampaignState::kFailed;
}

std::shared_ptr<const bench_suite::Benchmark> makeBenchmarkFor(
    const std::string& benchmark) {
  // "scenario:<seed>[:dies=d][:size=S]" names resolve to the procedural
  // generator; anything else is a suite benchmark. Either way the campaign
  // co-owns the benchmark so the simulator's kernel pointer stays alive.
  if (scenario::isScenarioName(benchmark))
    return scenario::generateFromName(benchmark).benchmark;
  return std::make_shared<const bench_suite::Benchmark>(
      bench_suite::makeBenchmark(benchmark));
}

std::unique_ptr<sim::FpgaToolSim> makeSimFor(const CampaignSpec& spec,
                                             const bench_suite::Benchmark& bm) {
  auto sim = std::make_unique<sim::FpgaToolSim>(
      bm.kernel, sim::DeviceModel::virtex7Vc707(), bm.sim_params,
      spec.sim_seed);
  sim->setDieMap(bm.die_map);
  return sim;
}

std::shared_ptr<const hls::DesignSpace> makeSpaceFor(
    const std::string& benchmark) {
  const std::shared_ptr<const bench_suite::Benchmark> bm =
      makeBenchmarkFor(benchmark);
  return std::make_shared<const hls::DesignSpace>(
      hls::DesignSpace::buildPruned(bm->kernel, bm->spec));
}

Campaign::Campaign(CampaignSpec spec,
                   std::shared_ptr<const hls::DesignSpace> space,
                   core::SharedRuntime shared)
    : spec_(std::move(spec)),
      space_(std::move(space)),
      bench_(makeBenchmarkFor(spec_.benchmark)),
      shared_(shared),
      sim_(makeSimFor(spec_, *bench_)),
      stepper_(std::make_unique<core::CampaignStepper>(*space_, *sim_,
                                                       spec_.opts, shared_)),
      trace_id_(cacheLedgerOf(spec_)) {}

CampaignState Campaign::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

StatusSnapshot Campaign::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatusSnapshot s;
  s.id = spec_.id;
  s.state = state_;
  s.rounds = last_.round + 1;
  s.proposals = last_.proposals;
  s.charged_seconds = last_.charged_seconds;
  s.wall_seconds = last_.wall_seconds;
  s.cache_hits = last_.cache_hits;
  s.cache_misses = last_.cache_misses;
  s.hypervolume = last_.hypervolume;
  s.resumed = last_.resumed;
  s.weight = spec_.weight;
  s.restarts = restarts_;
  s.error = error_;
  return s;
}

double Campaign::deficit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_.charged_seconds / spec_.weight;
}

bool Campaign::beginStep() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != CampaignState::kQueued) return false;
  if (Clock::now() < eligible_at_) return false;  // restart backoff
  state_ = CampaignState::kRunning;
  step_begin_ = Clock::now();
  stall_reported_ = false;
  return true;
}

core::RoundOutcome Campaign::runStep() {
  // Campaign root trace context: trace_id = span_id = the campaign's ledger
  // fingerprint (deterministic, stable across restarts, never 0). Every
  // span minted inside this step — round, acq_pick, scheduler job, tool
  // attempt — inherits the trace_id and parents into this root, and the
  // convention parent_span_id == trace_id marks a campaign-root child.
  obs::ContextGuard root(obs::tracer().enabled() ? &obs::tracer() : nullptr,
                         obs::TraceContext{trace_id_, trace_id_});
  return stepper_->step();
}

CampaignState Campaign::endStep(const core::RoundOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  last_ = outcome;
  if (outcome.done) {
    state_ = CampaignState::kDone;
    result_ = stepper_->finish();
  } else if (pending_cancel_) {
    state_ = CampaignState::kCancelled;
    result_ = stepper_->finish();
  } else if (pending_pause_) {
    state_ = CampaignState::kPaused;
  } else {
    state_ = CampaignState::kQueued;
  }
  pending_pause_ = pending_cancel_ = false;
  return state_;
}

void Campaign::fail(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = CampaignState::kFailed;
  error_ = what;
  pending_pause_ = pending_cancel_ = false;
}

CampaignState Campaign::scheduleRestart(std::chrono::milliseconds backoff,
                                        const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  error_ = what;  // status keeps showing the last failure across restarts
  if (pending_cancel_) {
    // The tenant asked to cancel while the failing step was in flight; a
    // failed step has no outcome to finalize, so cancel in place.
    state_ = CampaignState::kCancelled;
    pending_pause_ = pending_cancel_ = false;
    return state_;
  }
  // Rebuild the whole execution stack from the spec. The old stepper may
  // have died mid-round with arbitrary internal state; resuming lenient
  // from the journal restores the last good checkpoint (or cold-starts when
  // no journal was configured/survives) and replays deterministically.
  CampaignSpec rspec = spec_;
  rspec.opts.resume = true;
  rspec.opts.resume_lenient = true;
  sim_ = makeSimFor(rspec, *bench_);
  stepper_ = std::make_unique<core::CampaignStepper>(*space_, *sim_,
                                                     rspec.opts, shared_);
  ++restarts_;
  eligible_at_ = Clock::now() + backoff;
  state_ = pending_pause_ ? CampaignState::kPaused : CampaignState::kQueued;
  pending_pause_ = pending_cancel_ = false;
  return state_;
}

int Campaign::restarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_;
}

Campaign::Clock::time_point Campaign::eligibleAt() const {
  std::lock_guard<std::mutex> lock(mu_);
  return eligible_at_;
}

double Campaign::stepSeconds(Clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != CampaignState::kRunning) return 0.0;
  return std::chrono::duration<double>(now - step_begin_).count();
}

bool Campaign::markStalled() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != CampaignState::kRunning || stall_reported_) return false;
  stall_reported_ = true;
  return true;
}

bool Campaign::requestPause(std::string* err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (terminal(state_)) {
    if (err != nullptr) *err = "campaign is already terminal";
    return false;
  }
  if (state_ == CampaignState::kQueued) state_ = CampaignState::kPaused;
  else if (state_ == CampaignState::kRunning) pending_pause_ = true;
  return true;  // pausing a paused campaign is a no-op, not an error
}

bool Campaign::requestResume(std::string* err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (terminal(state_)) {
    if (err != nullptr) *err = "campaign is already terminal";
    return false;
  }
  if (state_ == CampaignState::kPaused) state_ = CampaignState::kQueued;
  pending_pause_ = false;  // cancel an in-flight pause request
  return true;
}

bool Campaign::requestCancel(std::string* err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (terminal(state_)) {
    if (err != nullptr) *err = "campaign is already terminal";
    return false;
  }
  if (state_ == CampaignState::kRunning) {
    pending_cancel_ = true;  // applied between rounds by endStep()
    return true;
  }
  // Queued/paused: cancel immediately. A campaign that never stepped has
  // no partial result to finalize.
  state_ = CampaignState::kCancelled;
  if (stepper_->started()) result_ = stepper_->finish();
  return true;
}

std::optional<core::OptimizeResult> Campaign::result() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_;
}

}  // namespace cmmfo::server
