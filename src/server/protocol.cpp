#include "server/protocol.h"

namespace cmmfo::server {

bool parseRequest(const std::string& line, Request* out, std::string* err) {
  util::Json j;
  std::string perr;
  if (!util::parseJson(line, &j, &perr)) {
    if (err != nullptr) *err = "malformed JSON: " + perr;
    return false;
  }
  if (j.kind != util::Json::kObj) {
    if (err != nullptr) *err = "request must be a JSON object";
    return false;
  }
  Request r;
  r.op = j.strOr("op", "");
  if (r.op.empty()) {
    if (err != nullptr) *err = "missing \"op\"";
    return false;
  }
  r.id = j.strOr("id", "");
  r.body = std::move(j);
  *out = std::move(r);
  return true;
}

std::string okResponse() { return "{\"ok\":true}"; }

std::string errorResponse(const std::string& error) {
  std::string s = "{\"ok\":false,\"error\":";
  util::putString(s, error);
  s += "}";
  return s;
}

std::string shedResponse(const std::string& error) {
  std::string s = "{\"ok\":false,\"shed\":true,\"error\":";
  util::putString(s, error);
  s += "}";
  return s;
}

namespace {

void putStatusBody(std::string& s, const StatusSnapshot& st) {
  s += "{\"id\":";
  util::putString(s, st.id);
  s += ",\"state\":";
  util::putString(s, stateName(st.state));
  s += ",\"rounds\":";
  util::putInt(s, st.rounds);
  s += ",\"proposals\":";
  util::putInt(s, st.proposals);
  s += ",\"charged_seconds\":";
  util::putDouble(s, st.charged_seconds);
  s += ",\"wall_seconds\":";
  util::putDouble(s, st.wall_seconds);
  s += ",\"cache_hits\":";
  util::putU64Bare(s, st.cache_hits);
  s += ",\"cache_misses\":";
  util::putU64Bare(s, st.cache_misses);
  s += ",\"hypervolume\":";
  util::putDoubleOrNull(s, st.hypervolume);
  s += ",\"weight\":";
  util::putDouble(s, st.weight);
  s += ",\"restarts\":";
  util::putInt(s, st.restarts);
  s += ",\"resumed\":";
  s += st.resumed ? "true" : "false";
  if (!st.error.empty()) {
    s += ",\"error\":";
    util::putString(s, st.error);
  }
  s += "}";
}

}  // namespace

std::string statusResponse(const StatusSnapshot& st) {
  std::string s = "{\"ok\":true,\"campaign\":";
  putStatusBody(s, st);
  s += "}";
  return s;
}

std::string listResponse(const std::vector<StatusSnapshot>& all) {
  std::string s = "{\"ok\":true,\"campaigns\":[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0) s += ",";
    putStatusBody(s, all[i]);
  }
  s += "]}";
  return s;
}

std::string statsResponse(const runtime::EvalCache::Stats& cache,
                          const std::vector<StatusSnapshot>& all,
                          double farm_makespan, const SupervisionStats& sup) {
  int by_state[6] = {0, 0, 0, 0, 0, 0};
  for (const StatusSnapshot& st : all) ++by_state[static_cast<int>(st.state)];
  std::string s = "{\"ok\":true,\"cache\":{\"entries\":";
  util::putU64Bare(s, cache.entries);
  s += ",\"flows\":";
  util::putU64Bare(s, cache.flows);
  s += ",\"hits\":";
  util::putU64Bare(s, cache.hits);
  s += ",\"misses\":";
  util::putU64Bare(s, cache.misses);
  s += ",\"evictions\":";
  util::putU64Bare(s, cache.evictions);
  s += "},\"campaigns\":{";
  static constexpr CampaignState kStates[] = {
      CampaignState::kQueued,    CampaignState::kRunning,
      CampaignState::kPaused,    CampaignState::kDone,
      CampaignState::kCancelled, CampaignState::kFailed};
  for (std::size_t i = 0; i < 6; ++i) {
    if (i > 0) s += ",";
    util::putString(s, stateName(kStates[i]));
    s += ":";
    util::putInt(s, by_state[static_cast<int>(kStates[i])]);
  }
  s += "},\"farm_makespan_seconds\":";
  util::putDouble(s, farm_makespan);
  s += ",\"supervision\":{\"restarts\":";
  util::putU64Bare(s, sup.restarts);
  s += ",\"stalled_steps\":";
  util::putU64Bare(s, sup.stalled_steps);
  s += ",\"load_shed\":";
  util::putU64Bare(s, sup.load_shed);
  s += ",\"reaped_conns\":";
  util::putU64Bare(s, sup.reaped_conns);
  s += "}}";
  return s;
}

std::string metricsResponse(const obs::MetricsSnapshot& snap,
                            std::uint64_t trace_dropped, bool enabled) {
  std::string s = "{\"ok\":true,\"enabled\":";
  s += enabled ? "true" : "false";
  s += ",\"trace_dropped\":";
  util::putU64Bare(s, trace_dropped);
  s += ",\"metrics\":[";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const obs::MetricPoint& p = snap[i];
    if (i > 0) s += ",";
    s += "{\"name\":";
    util::putString(s, p.name);
    s += ",\"kind\":";
    switch (p.kind) {
      case obs::MetricKind::kCounter:
        s += "\"counter\"";
        break;
      case obs::MetricKind::kGauge:
        s += "\"gauge\"";
        break;
      case obs::MetricKind::kHistogram:
        s += "\"histogram\"";
        break;
    }
    if (p.kind == obs::MetricKind::kHistogram) {
      s += ",\"count\":";
      util::putU64Bare(s, p.count);
      s += ",\"sum\":";
      util::putDoubleOrNull(s, p.sum);
      s += ",\"min\":";
      util::putDoubleOrNull(s, p.min);
      s += ",\"max\":";
      util::putDoubleOrNull(s, p.max);
      s += ",\"bounds\":[";
      for (std::size_t b = 0; b < p.bounds.size(); ++b) {
        if (b > 0) s += ",";
        util::putDoubleOrNull(s, p.bounds[b]);
      }
      s += "],\"buckets\":[";
      for (std::size_t b = 0; b < p.buckets.size(); ++b) {
        if (b > 0) s += ",";
        util::putU64Bare(s, p.buckets[b]);
      }
      s += "]";
    } else {
      s += ",\"value\":";
      util::putDoubleOrNull(s, p.value);
    }
    s += "}";
  }
  s += "]}";
  return s;
}

std::string roundEvent(const std::string& id, const core::RoundOutcome& o,
                       double step_seconds) {
  std::string s = "{\"event\":\"round\",\"id\":";
  util::putString(s, id);
  s += ",\"round\":";
  util::putInt(s, o.round);
  s += ",\"proposals\":";
  util::putInt(s, o.proposals);
  s += ",\"done\":";
  s += o.done ? "true" : "false";
  s += ",\"charged_seconds\":";
  util::putDouble(s, o.charged_seconds);
  s += ",\"round_charged_seconds\":";
  util::putDouble(s, o.round_charged_seconds);
  s += ",\"wall_seconds\":";
  util::putDouble(s, o.wall_seconds);
  s += ",\"cache_hits\":";
  util::putU64Bare(s, o.cache_hits);
  s += ",\"cache_misses\":";
  util::putU64Bare(s, o.cache_misses);
  s += ",\"hypervolume\":";
  util::putDoubleOrNull(s, o.hypervolume);
  s += ",\"step_seconds\":";
  util::putDouble(s, step_seconds);
  s += "}";
  return s;
}

std::string restartEvent(const std::string& id, int restarts,
                         double backoff_ms, const std::string& error) {
  std::string s = "{\"event\":\"restart\",\"id\":";
  util::putString(s, id);
  s += ",\"restarts\":";
  util::putInt(s, restarts);
  s += ",\"backoff_ms\":";
  util::putDouble(s, backoff_ms);
  s += ",\"error\":";
  util::putString(s, error);
  s += "}";
  return s;
}

std::string stallEvent(const std::string& id, double step_seconds,
                       double deadline_seconds) {
  std::string s = "{\"event\":\"stall\",\"id\":";
  util::putString(s, id);
  s += ",\"step_seconds\":";
  util::putDouble(s, step_seconds);
  s += ",\"deadline_seconds\":";
  util::putDouble(s, deadline_seconds);
  s += "}";
  return s;
}

std::string heartbeatEvent(std::size_t campaigns, std::size_t steps_executed,
                           const SupervisionStats& sup,
                           double uptime_seconds) {
  std::string s = "{\"event\":\"heartbeat\",\"campaigns\":";
  util::putU64Bare(s, campaigns);
  s += ",\"steps_executed\":";
  util::putU64Bare(s, steps_executed);
  s += ",\"restarts\":";
  util::putU64Bare(s, sup.restarts);
  s += ",\"stalled_steps\":";
  util::putU64Bare(s, sup.stalled_steps);
  s += ",\"load_shed\":";
  util::putU64Bare(s, sup.load_shed);
  s += ",\"reaped_conns\":";
  util::putU64Bare(s, sup.reaped_conns);
  s += ",\"uptime_seconds\":";
  util::putDouble(s, uptime_seconds);
  s += "}";
  return s;
}

std::string stateEvent(const std::string& id, CampaignState state,
                       const std::string& error) {
  std::string s = "{\"event\":\"state\",\"id\":";
  util::putString(s, id);
  s += ",\"state\":";
  util::putString(s, stateName(state));
  if (!error.empty()) {
    s += ",\"error\":";
    util::putString(s, error);
  }
  s += "}";
  return s;
}

}  // namespace cmmfo::server
