#pragma once

#include <string>
#include <vector>

#include "core/optimizer.h"
#include "obs/metrics.h"
#include "runtime/eval_cache.h"
#include "server/campaign.h"
#include "util/json.h"

namespace cmmfo::server {

/// Newline-delimited JSON line protocol (one request line in, one response
/// line out; subscribed connections additionally receive event lines).
///
/// Requests:  {"op":"submit","id":"c1","benchmark":"spmv_crs","seed":7,...}
///            {"op":"status"|"pause"|"resume"|"cancel","id":"c1"}
///            {"op":"list"} {"op":"stats"} {"op":"subscribe"}
///            {"op":"drain"} {"op":"shutdown"}
/// Responses: {"ok":true,...} | {"ok":false,"error":"..."}
/// Events:    {"event":"round","id":"c1","round":3,...}
///            {"event":"state","id":"c1","state":"done"}
struct Request {
  std::string op;
  std::string id;    ///< empty for ops that take none
  util::Json body;   ///< the full parsed request (submit reads spec keys)
};

/// Parse one request line. False (with `err`) on malformed JSON, a missing
/// or non-string "op", or a non-object payload — the server answers with an
/// error response and keeps the connection.
bool parseRequest(const std::string& line, Request* out, std::string* err);

/// Supervision counters carried in stats responses and heartbeat events.
struct SupervisionStats {
  std::size_t restarts = 0;       ///< supervised campaign restarts
  std::size_t stalled_steps = 0;  ///< watchdog deadline overruns reported
  std::size_t load_shed = 0;      ///< submissions refused at capacity
  std::size_t reaped_conns = 0;   ///< idle connections shut down
};

// ---- Response/event builders (each returns one line, no trailing \n). ----
std::string okResponse();
std::string errorResponse(const std::string& error);
/// Load-shed reply: an error frame with "shed":true so clients can
/// distinguish "retry later" from a malformed request.
std::string shedResponse(const std::string& error);
std::string statusResponse(const StatusSnapshot& s);
/// {"ok":true,"campaigns":[<status>...]} in id order.
std::string listResponse(const std::vector<StatusSnapshot>& all);
/// Shared-runtime stats: cache ledger plus campaign counts by state and
/// the supervision counters.
std::string statsResponse(const runtime::EvalCache::Stats& cache,
                          const std::vector<StatusSnapshot>& all,
                          double farm_makespan,
                          const SupervisionStats& sup = {});
/// The live metrics registry as one JSON line: every point with its kind
/// ("counter"/"gauge"/"histogram"), value or count/sum/min/max plus bucket
/// layout, the tracer's drop counter, and whether the registry is enabled
/// at all (when disabled the list is whatever was last recorded — usually
/// empty).
std::string metricsResponse(const obs::MetricsSnapshot& snap,
                            std::uint64_t trace_dropped, bool enabled);
/// Streamed once per executed campaign step. `step_seconds` is the real
/// (host) time the step took inside the driver.
std::string roundEvent(const std::string& id, const core::RoundOutcome& o,
                       double step_seconds);
std::string stateEvent(const std::string& id, CampaignState state,
                       const std::string& error = "");
/// Streamed when supervision re-queues a failed campaign: which restart
/// attempt this is, the backoff before it becomes runnable, and the error
/// that triggered it.
std::string restartEvent(const std::string& id, int restarts,
                         double backoff_ms, const std::string& error);
/// Streamed when the watchdog sees a step exceed its deadline (once per
/// in-flight step).
std::string stallEvent(const std::string& id, double step_seconds,
                       double deadline_seconds);
/// Periodic daemon liveness record on the event stream.
std::string heartbeatEvent(std::size_t campaigns, std::size_t steps_executed,
                           const SupervisionStats& sup,
                           double uptime_seconds);

}  // namespace cmmfo::server
