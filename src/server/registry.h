#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "server/campaign.h"

namespace cmmfo::server {

/// Concurrent campaign map with fine-grained locking: ids hash onto a fixed
/// set of shards, each with its own mutex, so submit/status/list traffic
/// from many protocol connections never serializes on one global lock (and
/// never blocks behind a driver holding a campaign's own mutex — shard
/// locks only guard the map structure, campaign state has its own lock).
class Registry {
 public:
  /// False (and no insertion) when the id is already registered.
  bool add(const std::shared_ptr<Campaign>& campaign);
  std::shared_ptr<Campaign> get(const std::string& id) const;
  /// Every registered campaign, sorted by id (deterministic listings and
  /// fair-scheduler tie-breaks).
  std::vector<std::shared_ptr<Campaign>> list() const;
  std::size_t size() const;

 private:
  static constexpr std::size_t kShards = 8;
  static std::size_t shardOf(const std::string& id);

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Campaign>> map;
  };
  std::array<Shard, kShards> shards_;
};

}  // namespace cmmfo::server
