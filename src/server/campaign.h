#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "bench_suite/benchmarks.h"
#include "core/campaign_stepper.h"
#include "hls/design_space.h"
#include "sim/tool.h"
#include "util/json.h"

namespace cmmfo::server {

/// Everything needed to (re)create one tenant's BO campaign. Serialized to
/// `<journal>/<id>.spec.json` at submit time, so a killed daemon can rebuild
/// the exact same optimizer on restart and resume its checkpoint journal.
struct CampaignSpec {
  std::string id;
  std::string benchmark = "spmv_crs";
  /// Simulator behavior seed: campaigns agree on the tool's ground truth
  /// (and may share cache artifacts) only when benchmark AND sim_seed match.
  std::uint64_t sim_seed = 42;
  /// Fair-share weight: a weight-2 tenant is entitled to twice the charged
  /// tool-seconds of a weight-1 tenant.
  double weight = 1.0;
  /// Optimizer knobs (seed, budget, batch size, surrogate effort, ...).
  core::OptimizerOptions opts;
};

/// Campaign ids become journal file names: restrict to [A-Za-z0-9_-] so a
/// hostile id cannot traverse out of the journal directory.
bool validCampaignId(const std::string& id);

/// The cache namespace two campaigns share iff they run the same tool on
/// the same benchmark (same deterministic report function): a fingerprint
/// of (benchmark, sim_seed). Campaign seed is deliberately excluded —
/// different search trajectories over the same space want each other's
/// artifacts.
std::uint64_t cacheNamespaceOf(const CampaignSpec& spec);

/// The per-campaign key for cache hit/miss accounting: a fingerprint of the
/// campaign id. Campaigns sharing a namespace (same benchmark + sim_seed)
/// share ARTIFACTS but keep separate counter ledgers, so one tenant's
/// checkpoint restore or streamed stats can never clobber another's.
std::uint64_t cacheLedgerOf(const CampaignSpec& spec);

/// Spec <-> JSON (the submit message body and the journal spec file share
/// this format). Unknown keys are ignored; missing keys take the defaults.
std::string specToJson(const CampaignSpec& spec);
bool specFromJson(const util::Json& j, CampaignSpec* out, std::string* err);

enum class CampaignState {
  kQueued,     ///< runnable, waiting for a driver slot
  kRunning,    ///< a driver is inside step() right now
  kPaused,     ///< held by the tenant; resume re-queues it
  kDone,       ///< proposal budget spent (or space exhausted)
  kCancelled,  ///< stopped by the tenant; result covers completed rounds
  kFailed,     ///< step() threw; see StatusSnapshot::error
};
const char* stateName(CampaignState s);
bool terminal(CampaignState s);

/// One consistent view of a campaign for status/list responses.
struct StatusSnapshot {
  std::string id;
  CampaignState state = CampaignState::kQueued;
  int rounds = 0;     ///< BO rounds executed (all processes)
  int proposals = 0;  ///< proposals executed out of opts.n_iter
  double charged_seconds = 0.0;
  double wall_seconds = 0.0;  ///< this campaign alone on the farm
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double hypervolume = 0.0;  ///< NaN until the top fidelity has data
  bool resumed = false;
  double weight = 1.0;
  int restarts = 0;  ///< supervised restarts after step failures
  std::string error;
};

/// One tenant's campaign inside the server: the spec, its private
/// simulator + stepper, and a small state machine.
///
/// Concurrency contract: exactly one driver thread is inside runStep() at a
/// time — beginStep() is the gate (kQueued -> kRunning transitions are
/// atomic under mu_, so two drivers cannot both acquire). The stepper
/// itself is then used without locks. Everything observers read
/// (state/snapshot) is guarded by mu_; pause/cancel during a step are
/// recorded as pending flags and applied by endStep(), i.e. between rounds.
class Campaign {
 public:
  using Clock = std::chrono::steady_clock;

  Campaign(CampaignSpec spec, std::shared_ptr<const hls::DesignSpace> space,
           core::SharedRuntime shared);

  const CampaignSpec& spec() const { return spec_; }
  CampaignState state() const;
  StatusSnapshot snapshot() const;
  /// Charged seconds normalized by weight — the fair-share deficit key.
  double deficit() const;

  /// kQueued -> kRunning; false when the campaign is not runnable (another
  /// driver has it, it is paused, it is terminal, or it is inside a
  /// restart-backoff window). Stamps the step start time for the watchdog.
  bool beginStep();
  /// Execute one unit of work (init/resume round or one BO round). Only the
  /// driver that won beginStep() may call this; runs unlocked.
  core::RoundOutcome runStep();
  /// Publish the outcome and leave kRunning: to kDone when the trajectory
  /// completed, else to whatever pause/cancel requested meanwhile, else
  /// back to kQueued. Returns the state entered.
  CampaignState endStep(const core::RoundOutcome& outcome);
  /// Record a step() failure: the campaign parks in kFailed with `what`.
  void fail(const std::string& what);

  // ---- Supervision (crash-only restart policy; see docs/robustness.md) ----

  /// Recover from a failed step: rebuild the simulator and stepper from the
  /// spec with resume=true (lenient), so the next step restores the last
  /// good checkpoint — or cold-starts when no/unreadable journal exists —
  /// and replays trajectory-identically. Only the driver that owns the
  /// kRunning state may call this. Honors a pending cancel (-> kCancelled,
  /// no rebuild) and a pending pause (-> kPaused after rebuild); otherwise
  /// re-queues with eligibility pushed `backoff` into the future. Returns
  /// the state entered. Throws if the rebuild itself fails (the caller then
  /// parks the campaign in kFailed).
  CampaignState scheduleRestart(std::chrono::milliseconds backoff,
                                const std::string& what);
  int restarts() const;
  /// Restart-backoff gate: the instant this campaign becomes runnable again
  /// (epoch = always eligible). The fair scheduler skips future instants.
  Clock::time_point eligibleAt() const;
  /// Seconds the in-flight step has been running (0 when not running) —
  /// the watchdog's stall measure.
  double stepSeconds(Clock::time_point now) const;
  /// First call per in-flight step returns true (the watchdog reports each
  /// stalled step once); re-armed by the next beginStep().
  bool markStalled();
  /// Monotone per-campaign draw counter for deterministic chaos injection;
  /// deliberately NOT reset by scheduleRestart so a restarted step draws a
  /// fresh fault coin instead of replaying the fatal one forever.
  std::uint64_t nextChaosTick() { return chaos_ticks_.fetch_add(1); }

  /// Tenant operations (applied between rounds when currently running).
  bool requestPause(std::string* err);
  bool requestResume(std::string* err);
  bool requestCancel(std::string* err);

  /// Final result; set once the campaign reached a terminal state with at
  /// least one executed step.
  std::optional<core::OptimizeResult> result() const;

 private:
  const CampaignSpec spec_;
  std::shared_ptr<const hls::DesignSpace> space_;
  /// Owns the kernel the simulator points into — must outlive sim_.
  std::shared_ptr<const bench_suite::Benchmark> bench_;
  /// Shared pool/cache handles, kept so scheduleRestart can rebuild the
  /// stepper against the same runtime.
  core::SharedRuntime shared_;
  std::unique_ptr<sim::FpgaToolSim> sim_;
  /// unique_ptr so a supervised restart can discard a stepper whose step
  /// threw mid-round and rebuild from the journal.
  std::unique_ptr<core::CampaignStepper> stepper_;
  /// Root trace id of this campaign (= cacheLedgerOf(spec_)): deterministic
  /// and stable across daemon restarts, installed as the ambient trace
  /// context for the duration of every runStep().
  std::uint64_t trace_id_ = 0;

  mutable std::mutex mu_;
  CampaignState state_ = CampaignState::kQueued;
  bool pending_pause_ = false;
  bool pending_cancel_ = false;
  core::RoundOutcome last_;
  std::optional<core::OptimizeResult> result_;
  std::string error_;
  int restarts_ = 0;
  Clock::time_point eligible_at_{};  // epoch = always eligible
  Clock::time_point step_begin_{};
  bool stall_reported_ = false;
  std::atomic<std::uint64_t> chaos_ticks_{0};
};

/// Build the benchmark definition for a name. The simulator keeps a pointer
/// into the benchmark's kernel, so the returned object must outlive any
/// simulator built from it. Throws on an unknown benchmark.
std::shared_ptr<const bench_suite::Benchmark> makeBenchmarkFor(
    const std::string& benchmark);
/// Build the simulator for a spec (`bm`'s kernel + sim params on the
/// standard device, seeded with spec.sim_seed).
std::unique_ptr<sim::FpgaToolSim> makeSimFor(
    const CampaignSpec& spec, const bench_suite::Benchmark& bm);
/// Build (and prune) the design space for a benchmark name. Throws on an
/// unknown benchmark.
std::shared_ptr<const hls::DesignSpace> makeSpaceFor(
    const std::string& benchmark);

}  // namespace cmmfo::server
