#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cmmfo::server {

/// Simulated wall-clock of the SHARED tool farm across all campaigns.
///
/// Each campaign's own scheduler already models its rounds as if it had the
/// farm to itself (per-campaign wall_seconds); this model answers the
/// multi-tenant question instead: how long does the whole workload take
/// when every round's tool runs are packed onto one `workers`-wide farm?
/// Same methodology as the per-round accounting (greedy list scheduling,
/// makespan = latest completion), extended with two constraints:
///  - rounds of one campaign are sequential (round r+1 cannot start before
///    round r finished — the proposals depend on its observations);
///  - jobs from different campaigns interleave freely on the workers.
/// The concurrency win the server reports is
///   sum of isolated per-campaign wall clocks / this makespan.
class SharedFarmModel {
 public:
  explicit SharedFarmModel(int workers);

  /// Place one round's tool runs (worker seconds, in job order) for
  /// `campaign`, no earlier than that campaign's previous round finished.
  /// Returns the round's completion time on the simulated clock. A round
  /// with no tool runs (all cache hits) completes at its start time.
  double placeRound(const std::string& campaign,
                    const std::vector<double>& job_seconds);

  /// Latest completion across all workers so far.
  double makespan() const;
  int workers() const { return static_cast<int>(free_.size()); }

 private:
  mutable std::mutex mu_;
  std::vector<double> free_;  ///< per-worker next-free time
  std::unordered_map<std::string, double> ready_;  ///< per-campaign
};

}  // namespace cmmfo::server
