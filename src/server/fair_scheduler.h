#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "server/campaign.h"

namespace cmmfo::server {

/// Cost-aware cross-tenant dispatch: the next campaign to step is the
/// runnable one that has consumed the least weighted tool time.
///
/// Each campaign carries a deficit = charged_seconds / weight. Always
/// stepping the minimum-deficit queued campaign is the classic deficit
/// round-robin guarantee: over any window, tenant i's charged seconds
/// approach weight_i / sum(weights) of the total, off by at most one
/// round's charge per tenant — an expensive impl round debits its tenant
/// for a while instead of starving the cheap-hls tenants behind it.
///
/// Async campaigns (OptimizerOptions::async) step per *completion event*,
/// so their deficit updates at single-evaluation grain: the fairness bound
/// tightens to one evaluation's charge rather than one full batch round's.
class FairScheduler {
 public:
  /// The queued campaign with the smallest deficit; ties break toward the
  /// smaller id so dispatch order is deterministic (candidates come from
  /// Registry::list(), which sorts by id). Null when nothing is runnable.
  ///
  /// Campaigns inside a restart-backoff window (eligibleAt() > now) are not
  /// runnable yet; when at least one queued campaign was skipped for that
  /// reason and `next_eligible` is non-null, it receives the earliest
  /// instant a skipped campaign becomes runnable, so the driver can
  /// wait_until instead of spinning.
  static std::shared_ptr<Campaign> pickNext(
      const std::vector<std::shared_ptr<Campaign>>& candidates,
      std::chrono::steady_clock::time_point now,
      std::chrono::steady_clock::time_point* next_eligible = nullptr);
  static std::shared_ptr<Campaign> pickNext(
      const std::vector<std::shared_ptr<Campaign>>& candidates) {
    return pickNext(candidates, std::chrono::steady_clock::now());
  }
};

}  // namespace cmmfo::server
