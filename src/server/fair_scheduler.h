#pragma once

#include <memory>
#include <vector>

#include "server/campaign.h"

namespace cmmfo::server {

/// Cost-aware cross-tenant dispatch: the next campaign to step is the
/// runnable one that has consumed the least weighted tool time.
///
/// Each campaign carries a deficit = charged_seconds / weight. Always
/// stepping the minimum-deficit queued campaign is the classic deficit
/// round-robin guarantee: over any window, tenant i's charged seconds
/// approach weight_i / sum(weights) of the total, off by at most one
/// round's charge per tenant — an expensive impl round debits its tenant
/// for a while instead of starving the cheap-hls tenants behind it.
class FairScheduler {
 public:
  /// The queued campaign with the smallest deficit; ties break toward the
  /// smaller id so dispatch order is deterministic (candidates come from
  /// Registry::list(), which sorts by id). Null when nothing is runnable.
  static std::shared_ptr<Campaign> pickNext(
      const std::vector<std::shared_ptr<Campaign>>& candidates);
};

}  // namespace cmmfo::server
