#include "server/farm_model.h"

#include <algorithm>

namespace cmmfo::server {

SharedFarmModel::SharedFarmModel(int workers)
    : free_(static_cast<std::size_t>(std::max(workers, 1)), 0.0) {}

double SharedFarmModel::placeRound(const std::string& campaign,
                                   const std::vector<double>& job_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  const double ready = ready_[campaign];  // 0.0 for a first round
  double round_end = ready;
  for (const double dur : job_seconds) {
    auto slot = std::min_element(free_.begin(), free_.end());
    const double start = std::max(*slot, ready);
    *slot = start + dur;
    round_end = std::max(round_end, *slot);
  }
  ready_[campaign] = round_end;
  return round_end;
}

double SharedFarmModel::makespan() const {
  std::lock_guard<std::mutex> lock(mu_);
  double m = 0.0;
  for (const double f : free_) m = std::max(m, f);
  for (const auto& [id, r] : ready_) m = std::max(m, r);
  return m;
}

}  // namespace cmmfo::server
