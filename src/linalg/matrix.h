#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace cmmfo::linalg {

/// Dense row-major matrix of doubles.
///
/// Sized for the library's workloads (Gram matrices of a few hundred rows):
/// plain triple loops, no blocking, value semantics. Invariant:
/// data_.size() == rows_ * cols_.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diag(const std::vector<double>& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw row pointer (row-major contiguous).
  double* rowPtr(std::size_t r) { return data_.data() + r * cols_; }
  const double* rowPtr(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<double> row(std::size_t r) const;
  std::vector<double> col(std::size_t c) const;
  void setRow(std::size_t r, const std::vector<double>& v);

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product this * o.
  Matrix matmul(const Matrix& o) const;
  /// Matrix-vector product this * v.
  std::vector<double> matvec(const std::vector<double>& v) const;
  /// v^T * this (returns a vector of length cols()).
  std::vector<double> vecmat(const std::vector<double>& v) const;

  /// Sum of diagonal entries (requires square).
  double trace() const;
  /// Frobenius norm.
  double frobeniusNorm() const;
  /// Max |a_ij - b_ij|.
  double maxAbsDiff(const Matrix& o) const;

  /// Symmetrize in place: A <- (A + A^T) / 2. Requires square.
  void symmetrize();

  std::string toString(int precision = 4) const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Assemble a symmetric n x n matrix from an entry functor f(i, j), visiting
/// the lower triangle in square blocks so both the output rows and the
/// mirrored columns stay cache-resident, and writing straight into the
/// matrix's contiguous row-major storage. Entry values are independent of
/// visit order, so the result is bit-identical to the naive double loop.
template <class F>
Matrix assembleSymmetricBlocked(std::size_t n, F&& f,
                                std::size_t block = 64) {
  Matrix k(n, n);
  for (std::size_t ib = 0; ib < n; ib += block) {
    const std::size_t iend = std::min(n, ib + block);
    for (std::size_t jb = 0; jb <= ib; jb += block) {
      const std::size_t jend = std::min(n, jb + block);
      for (std::size_t i = ib; i < iend; ++i) {
        double* ki = k.rowPtr(i);
        const std::size_t jhi = std::min(jend, i + 1);
        for (std::size_t j = jb; j < jhi; ++j) {
          const double v = f(i, j);
          ki[j] = v;
          k(j, i) = v;
        }
      }
    }
  }
  return k;
}

}  // namespace cmmfo::linalg
