#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace cmmfo::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix,
/// with the solves and determinants Gaussian-process inference needs.
///
/// GP Gram matrices are PSD in exact arithmetic but frequently indefinite in
/// floating point when points nearly coincide; `factorizeWithJitter` retries
/// with exponentially growing diagonal jitter, which is the standard remedy.
class Cholesky {
 public:
  /// Factorize; returns std::nullopt if A is not numerically PD.
  static std::optional<Cholesky> factorize(const Matrix& a);

  /// Factorize A + jitter*I, growing jitter by 10x up to maxTries.
  /// Returns nullopt only if even the largest jitter fails.
  static std::optional<Cholesky> factorizeWithJitter(
      const Matrix& a, double initial_jitter = 1e-10, int max_tries = 10);

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;
  /// Multi-RHS solve A X = B: both substitutions sweep all columns per
  /// factor row, so L is streamed once instead of once per column. Each
  /// column's operation sequence is identical to solve(b.col(c)), making the
  /// result bit-for-bit equal to the per-vector path.
  Matrix solve(const Matrix& b) const;
  /// Solve L y = b (forward substitution).
  std::vector<double> solveLower(const std::vector<double>& b) const;
  /// Multi-RHS forward substitution L Y = B (bit-equal per column).
  Matrix solveLower(const Matrix& b) const;
  /// Solve L^T x = y (backward substitution).
  std::vector<double> solveUpper(const std::vector<double>& y) const;

  /// Rank-append update: grow the factor of A to the factor of
  ///   [A  c; c^T  d]
  /// in O(n^2) — exactly the operations a fresh factorization would spend on
  /// its last row, so the grown factor is bit-identical to refactorizing the
  /// bordered matrix (when A factorized without jitter). Returns false (and
  /// leaves the factor untouched) if the Schur complement d - l^T l is not
  /// numerically positive; callers should fall back to a dense refactorize.
  /// Refuses jittered factors: the implied bordered matrix would mix
  /// jittered and unjittered diagonals.
  bool appendRow(const std::vector<double>& cross, double diag);
  /// Shrink the factor to its leading n x n block — the exact factor of the
  /// leading principal submatrix, so append/truncate pairs round-trip
  /// bit-identically (Kriging-believer speculation rollback).
  void truncateTo(std::size_t n);

  /// log det(A) = 2 * sum_i log L_ii.
  double logDet() const;
  /// Explicit inverse of A (use sparingly; needed for MLE gradient traces).
  Matrix inverse() const;
  /// The lower-triangular factor.
  const Matrix& lower() const { return l_; }
  /// Cheap 2-norm condition estimate of A from the factor diagonal:
  /// (max_i L_ii / min_i L_ii)^2. A lower bound on cond_2(A), accurate
  /// enough to flag ill-conditioned Gram matrices in diagnostics.
  double conditionEstimate() const;
  /// Jitter that was actually added to the diagonal (0 if none).
  double jitterUsed() const { return jitter_; }

  std::size_t dim() const { return l_.rows(); }

 private:
  explicit Cholesky(Matrix l, double jitter) : l_(std::move(l)), jitter_(jitter) {}
  Matrix l_;
  double jitter_ = 0.0;
};

/// Sample z ~ N(mu, A) given the Cholesky factor of A and iid standard
/// normals `std_normals` (length = dim).
std::vector<double> mvnSample(const std::vector<double>& mu,
                              const Cholesky& chol,
                              const std::vector<double>& std_normals);

}  // namespace cmmfo::linalg
