#pragma once

#include <vector>

namespace cmmfo::linalg {

double mean(const std::vector<double>& v);
/// Population variance (divides by n); 0 for n < 2.
double variance(const std::vector<double>& v);
/// Sample standard deviation (divides by n-1); 0 for n < 2.
double sampleStddev(const std::vector<double>& v);
double minElem(const std::vector<double>& v);
double maxElem(const std::vector<double>& v);

/// z-score standardization parameters for a 1-D sample.
struct Standardizer {
  double mean = 0.0;
  double stddev = 1.0;

  static Standardizer fit(const std::vector<double>& v);
  double transform(double y) const { return (y - mean) / stddev; }
  double inverse(double z) const { return z * stddev + mean; }
  /// Variances scale by stddev^2.
  double inverseVar(double var_z) const { return var_z * stddev * stddev; }
  std::vector<double> transform(const std::vector<double>& v) const;
};

/// Min-max scaling to [0, 1]; degenerate ranges map to 0.
struct MinMaxScaler {
  double lo = 0.0;
  double hi = 1.0;

  static MinMaxScaler fit(const std::vector<double>& v);
  double transform(double y) const;
  double inverse(double t) const { return lo + t * (hi - lo); }
};

}  // namespace cmmfo::linalg
