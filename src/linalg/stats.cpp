#include "linalg/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cmmfo::linalg {

double mean(const std::vector<double>& v) {
  assert(!v.empty());
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double sampleStddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double minElem(const std::vector<double>& v) {
  assert(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double maxElem(const std::vector<double>& v) {
  assert(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

Standardizer Standardizer::fit(const std::vector<double>& v) {
  Standardizer s;
  s.mean = cmmfo::linalg::mean(v);
  const double sd = std::sqrt(variance(v));
  // Constant targets would otherwise divide by zero; unit scale keeps the
  // transform well-defined and invertible.
  s.stddev = sd > 1e-12 ? sd : 1.0;
  return s;
}

std::vector<double> Standardizer::transform(const std::vector<double>& v) const {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = transform(v[i]);
  return out;
}

MinMaxScaler MinMaxScaler::fit(const std::vector<double>& v) {
  MinMaxScaler s;
  s.lo = minElem(v);
  s.hi = maxElem(v);
  return s;
}

double MinMaxScaler::transform(double y) const {
  if (hi - lo < 1e-15) return 0.0;
  return (y - lo) / (hi - lo);
}

}  // namespace cmmfo::linalg
