#pragma once

#include <vector>

namespace cmmfo::linalg {

/// Small free-function vector kernel set shared across the library.
/// All functions assume matching sizes (checked by assert in the .cpp).

double dot(const std::vector<double>& a, const std::vector<double>& b);
/// y += alpha * x
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);
std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b);
std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b);
std::vector<double> scale(const std::vector<double>& a, double s);
double norm2(const std::vector<double>& a);
double normInf(const std::vector<double>& a);
/// Euclidean distance.
double dist2(const std::vector<double>& a, const std::vector<double>& b);
/// Concatenate b onto a copy of a.
std::vector<double> concat(const std::vector<double>& a,
                           const std::vector<double>& b);
/// Elementwise product.
std::vector<double> hadamard(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace cmmfo::linalg
