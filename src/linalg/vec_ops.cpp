#include "linalg/vec_ops.h"

#include <cassert>
#include <cmath>

namespace cmmfo::linalg {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> scale(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double normInf(const std::vector<double>& a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::fabs(x));
  return m;
}

double dist2(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

std::vector<double> concat(const std::vector<double>& a,
                           const std::vector<double>& b) {
  std::vector<double> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

std::vector<double> hadamard(const std::vector<double>& a,
                             const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

}  // namespace cmmfo::linalg
