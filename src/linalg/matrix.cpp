#include "linalg/matrix.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace cmmfo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_ && "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const std::vector<double>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

std::vector<double> Matrix::row(std::size_t r) const {
  return {rowPtr(r), rowPtr(r) + cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  std::vector<double> v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::setRow(std::size_t r, const std::vector<double>& v) {
  assert(v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::matmul(const Matrix& o) const {
  assert(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* orow = o.rowPtr(k);
      double* crow = out.rowPtr(i);
      for (std::size_t j = 0; j < o.cols_; ++j) crow[j] += a * orow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::matvec(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = rowPtr(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::vecmat(const std::vector<double>& v) const {
  assert(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double s = v[r];
    if (s == 0.0) continue;
    const double* row = rowPtr(r);
    for (std::size_t c = 0; c < cols_; ++c) out[c] += s * row[c];
  }
  return out;
}

double Matrix::trace() const {
  assert(rows_ == cols_);
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::maxAbsDiff(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - o.data_[i]));
  return m;
}

void Matrix::symmetrize() {
  assert(rows_ == cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double m = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = m;
      (*this)(c, r) = m;
    }
}

std::string Matrix::toString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c)
      os << (*this)(r, c) << (c + 1 == cols_ ? "" : ", ");
    os << (r + 1 == rows_ ? "]" : "\n");
  }
  return os.str();
}

}  // namespace cmmfo::linalg
