#include "linalg/cholesky.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace cmmfo::linalg {

std::optional<Cholesky> Cholesky::factorize(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return std::nullopt;
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = l.rowPtr(i);
      const double* lj = l.rowPtr(j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l), 0.0);
}

std::optional<Cholesky> Cholesky::factorizeWithJitter(const Matrix& a,
                                                      double initial_jitter,
                                                      int max_tries) {
  if (auto c = factorize(a)) return c;
  // Scale jitter to the matrix magnitude so that it is meaningful for both
  // unit-variance Gram matrices and raw-unit covariances.
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    scale = std::max(scale, std::fabs(a(i, i)));
  if (scale == 0.0) scale = 1.0;
  double jitter = initial_jitter * scale;
  for (int t = 0; t < max_tries; ++t, jitter *= 10.0) {
    Matrix aj = a;
    for (std::size_t i = 0; i < aj.rows(); ++i) aj(i, i) += jitter;
    if (auto c = factorize(aj)) {
      c->jitter_ = jitter;
      return c;
    }
  }
  return std::nullopt;
}

std::vector<double> Cholesky::solveLower(const std::vector<double>& b) const {
  const std::size_t n = dim();
  assert(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l_.rowPtr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

std::vector<double> Cholesky::solveUpper(const std::vector<double>& y) const {
  const std::size_t n = dim();
  assert(y.size() == n);
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  return solveUpper(solveLower(b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  assert(b.rows() == dim());
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    auto xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

double Cholesky::logDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const { return solve(Matrix::identity(dim())); }

double Cholesky::conditionEstimate() const {
  const std::size_t n = dim();
  if (n == 0) return 1.0;
  double lo = l_(0, 0), hi = l_(0, 0);
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, l_(i, i));
    hi = std::max(hi, l_(i, i));
  }
  if (lo <= 0.0) return std::numeric_limits<double>::infinity();
  const double r = hi / lo;
  return r * r;
}

std::vector<double> mvnSample(const std::vector<double>& mu,
                              const Cholesky& chol,
                              const std::vector<double>& std_normals) {
  const std::size_t n = mu.size();
  assert(chol.dim() == n && std_normals.size() == n);
  std::vector<double> z = mu;
  const Matrix& l = chol.lower();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.rowPtr(i);
    double acc = 0.0;
    for (std::size_t k = 0; k <= i; ++k) acc += li[k] * std_normals[k];
    z[i] += acc;
  }
  return z;
}

}  // namespace cmmfo::linalg
