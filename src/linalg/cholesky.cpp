#include "linalg/cholesky.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace cmmfo::linalg {

std::optional<Cholesky> Cholesky::factorize(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return std::nullopt;
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = l.rowPtr(i);
      const double* lj = l.rowPtr(j);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      l(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l), 0.0);
}

std::optional<Cholesky> Cholesky::factorizeWithJitter(const Matrix& a,
                                                      double initial_jitter,
                                                      int max_tries) {
  if (auto c = factorize(a)) return c;
  // Scale jitter to the matrix magnitude so that it is meaningful for both
  // unit-variance Gram matrices and raw-unit covariances.
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    scale = std::max(scale, std::fabs(a(i, i)));
  if (scale == 0.0) scale = 1.0;
  double jitter = initial_jitter * scale;
  for (int t = 0; t < max_tries; ++t, jitter *= 10.0) {
    Matrix aj = a;
    for (std::size_t i = 0; i < aj.rows(); ++i) aj(i, i) += jitter;
    if (auto c = factorize(aj)) {
      c->jitter_ = jitter;
      return c;
    }
  }
  return std::nullopt;
}

std::vector<double> Cholesky::solveLower(const std::vector<double>& b) const {
  const std::size_t n = dim();
  assert(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l_.rowPtr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * y[k];
    y[i] = s / li[i];
  }
  return y;
}

std::vector<double> Cholesky::solveUpper(const std::vector<double>& y) const {
  const std::size_t n = dim();
  assert(y.size() == n);
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  // One allocation for the result; both substitutions run in place on it
  // (the old solveUpper(solveLower(b)) pair allocated an intermediate per
  // call, which dominated the acquisition sweep's allocator traffic). Each
  // element still accumulates through a scalar in the exact order of the
  // out-of-place substitutions, so results are bit-identical.
  const std::size_t n = dim();
  assert(b.size() == n);
  std::vector<double> x = b;
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    const double* li = l_.rowPtr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * x[k];
    x[i] = s / li[i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

namespace {
/// Column tile of the multi-RHS substitutions: bounds the active slice of
/// the RHS block to ~n * kSolveTile * 8 bytes so it stays cache-resident
/// while L streams through once per tile. Without it a wide block (e.g. a
/// 1024-candidate sweep) is re-streamed from memory on every factor row and
/// the solve goes memory-bound. Tiling only partitions the independent
/// columns — each column's operation sequence is untouched.
constexpr std::size_t kSolveTile = 64;

#if defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__)
// Runtime-dispatched wide clones of the tile kernels: 4/8-wide mul+sub over
// the columns. With contraction off (the build pins -ffp-contract=off for
// this file — AVX-512F carries its own FMA forms) multiply and subtract
// stay separately rounded exactly like the baseline ISA, so the wide clones
// are bit-identical to the default one.
#define CMMFO_SOLVE_TILE_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define CMMFO_SOLVE_TILE_CLONES
#endif

/// Forward substitution L x = b over a compact n x kSolveTile tile buffer
/// (row stride kSolveTile, first tw columns active), in place. The caller
/// copies the tile out of the wide RHS block first: the compact layout
/// turns every x[k] slice load into a short fixed-stride sequential run
/// instead of a gather across multi-KB-strided rows. Rows accumulate in
/// local buffers: without them the compiler must spill the running row to
/// memory on every k step, putting a store-to-load round-trip on the
/// critical path. Four output rows advance together so each loaded x[k]
/// slice feeds four rows' updates. Per column every row still subtracts
/// its k terms in ascending order against finalized earlier rows — the
/// blocking reorders row interleaving only, never a column's operation
/// sequence, so results stay bit-identical to the per-vector solveLower.
CMMFO_SOLVE_TILE_CLONES
void forwardSubTile(const Matrix& l, double* xb, std::size_t tw) {
  const std::size_t n = l.rows();
  double a0[kSolveTile], a1[kSolveTile], a2[kSolveTile], a3[kSolveTile];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double* x0 = xb + i * kSolveTile;
    double* x1 = x0 + kSolveTile;
    double* x2 = x1 + kSolveTile;
    double* x3 = x2 + kSolveTile;
    for (std::size_t c = 0; c < tw; ++c) {
      a0[c] = x0[c];
      a1[c] = x1[c];
      a2[c] = x2[c];
      a3[c] = x3[c];
    }
    const double* l0 = l.rowPtr(i);
    const double* l1 = l.rowPtr(i + 1);
    const double* l2 = l.rowPtr(i + 2);
    const double* l3 = l.rowPtr(i + 3);
    for (std::size_t k = 0; k < i; ++k) {
      const double* xk = xb + k * kSolveTile;
      const double m0 = l0[k], m1 = l1[k], m2 = l2[k], m3 = l3[k];
      for (std::size_t c = 0; c < tw; ++c) {
        const double v = xk[c];
        a0[c] -= m0 * v;
        a1[c] -= m1 * v;
        a2[c] -= m2 * v;
        a3[c] -= m3 * v;
      }
    }
    // Triangular corner: finalize the rows in order; each later row's
    // remaining k terms (still ascending) use the freshly finalized rows.
    const double d0 = l0[i];
    for (std::size_t c = 0; c < tw; ++c) x0[c] = a0[c] / d0;
    const double e1 = l1[i], d1 = l1[i + 1];
    for (std::size_t c = 0; c < tw; ++c) {
      a1[c] -= e1 * x0[c];
      x1[c] = a1[c] / d1;
    }
    const double e2 = l2[i], f2 = l2[i + 1], d2 = l2[i + 2];
    for (std::size_t c = 0; c < tw; ++c) {
      a2[c] -= e2 * x0[c];
      a2[c] -= f2 * x1[c];
      x2[c] = a2[c] / d2;
    }
    const double e3 = l3[i], f3 = l3[i + 1], g3 = l3[i + 2], d3 = l3[i + 3];
    for (std::size_t c = 0; c < tw; ++c) {
      a3[c] -= e3 * x0[c];
      a3[c] -= f3 * x1[c];
      a3[c] -= g3 * x2[c];
      x3[c] = a3[c] / d3;
    }
  }
  for (; i < n; ++i) {
    double* xi = xb + i * kSolveTile;
    for (std::size_t c = 0; c < tw; ++c) a0[c] = xi[c];
    const double* li = l.rowPtr(i);
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      const double* xk = xb + k * kSolveTile;
      for (std::size_t c = 0; c < tw; ++c) a0[c] -= lik * xk[c];
    }
    const double lii = li[i];
    for (std::size_t c = 0; c < tw; ++c) xi[c] = a0[c] / lii;
  }
}

/// Backward substitution L^T x = y over the compact tile buffer, in place
/// (rows high to low, k ascending per row, matching the per-vector
/// solveUpper; row blocking would put each row's corner terms after its
/// tail terms, changing the per-column order, so this one stays unblocked).
CMMFO_SOLVE_TILE_CLONES
void backwardSubTile(const Matrix& l, double* xb, std::size_t tw) {
  const std::size_t n = l.rows();
  double acc[kSolveTile];
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = xb + ii * kSolveTile;
    for (std::size_t c = 0; c < tw; ++c) acc[c] = xi[c];
    for (std::size_t k = ii + 1; k < n; ++k) {
      const double lki = l(k, ii);
      const double* xk = xb + k * kSolveTile;
      for (std::size_t c = 0; c < tw; ++c) acc[c] -= lki * xk[c];
    }
    const double lii = l(ii, ii);
    for (std::size_t c = 0; c < tw; ++c) xi[c] = acc[c] / lii;
  }
}

/// Copy columns [c0, c0 + tw) of src into the compact tile buffer (and back
/// out with unpackTile). Pure data movement — no arithmetic, so packing
/// cannot perturb a single bit of the solve.
void packTile(const Matrix& src, std::size_t c0, std::size_t tw, double* xb) {
  for (std::size_t i = 0; i < src.rows(); ++i) {
    const double* s = src.rowPtr(i) + c0;
    double* d = xb + i * kSolveTile;
    for (std::size_t c = 0; c < tw; ++c) d[c] = s[c];
  }
}

void unpackTile(const double* xb, std::size_t c0, std::size_t tw,
                Matrix& dst) {
  for (std::size_t i = 0; i < dst.rows(); ++i) {
    const double* s = xb + i * kSolveTile;
    double* d = dst.rowPtr(i) + c0;
    for (std::size_t c = 0; c < tw; ++c) d[c] = s[c];
  }
}
}  // namespace

Matrix Cholesky::solve(const Matrix& b) const {
  // Multi-RHS path: within a column tile, sweep every column per factor
  // row. For each column the subtraction order (k ascending / descending)
  // and the final division match solve(b.col(c)) exactly, so the result is
  // bit-identical to the per-vector loop.
  const std::size_t n = dim();
  assert(b.rows() == n);
  const std::size_t nc = b.cols();
  Matrix x = b;
  std::vector<double> xb(n * kSolveTile);
  for (std::size_t c0 = 0; c0 < nc; c0 += kSolveTile) {
    const std::size_t tw = std::min(kSolveTile, nc - c0);
    packTile(x, c0, tw, xb.data());
    forwardSubTile(l_, xb.data(), tw);
    backwardSubTile(l_, xb.data(), tw);
    unpackTile(xb.data(), c0, tw, x);
  }
  return x;
}

Matrix Cholesky::solveLower(const Matrix& b) const {
  const std::size_t n = dim();
  assert(b.rows() == n);
  const std::size_t nc = b.cols();
  Matrix x = b;
  std::vector<double> xb(n * kSolveTile);
  for (std::size_t c0 = 0; c0 < nc; c0 += kSolveTile) {
    const std::size_t tw = std::min(kSolveTile, nc - c0);
    packTile(x, c0, tw, xb.data());
    forwardSubTile(l_, xb.data(), tw);
    unpackTile(xb.data(), c0, tw, x);
  }
  return x;
}

bool Cholesky::appendRow(const std::vector<double>& cross, double diag) {
  const std::size_t n = dim();
  assert(cross.size() == n);
  if (jitter_ != 0.0) return false;
  // New bottom row of L, computed with exactly the operations factorize()
  // would spend on the last row of the bordered matrix — one forward
  // substitution against the existing factor, then the Schur complement.
  std::vector<double> row(n + 1);
  for (std::size_t j = 0; j < n; ++j) {
    double s = cross[j];
    const double* lj = l_.rowPtr(j);
    for (std::size_t k = 0; k < j; ++k) s -= row[k] * lj[k];
    row[j] = s / lj[j];
  }
  double d = diag;
  for (std::size_t k = 0; k < n; ++k) d -= row[k] * row[k];
  if (!(d > 0.0) || !std::isfinite(d)) return false;
  row[n] = std::sqrt(d);

  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = l_.rowPtr(i);
    double* dst = grown.rowPtr(i);
    for (std::size_t k = 0; k <= i; ++k) dst[k] = src[k];
  }
  double* last = grown.rowPtr(n);
  for (std::size_t k = 0; k <= n; ++k) last[k] = row[k];
  l_ = std::move(grown);
  return true;
}

void Cholesky::truncateTo(std::size_t n) {
  assert(n <= dim());
  if (n == dim()) return;
  Matrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = l_.rowPtr(i);
    double* dst = t.rowPtr(i);
    for (std::size_t k = 0; k <= i; ++k) dst[k] = src[k];
  }
  l_ = std::move(t);
}

double Cholesky::logDet() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const { return solve(Matrix::identity(dim())); }

double Cholesky::conditionEstimate() const {
  const std::size_t n = dim();
  if (n == 0) return 1.0;
  double lo = l_(0, 0), hi = l_(0, 0);
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, l_(i, i));
    hi = std::max(hi, l_(i, i));
  }
  if (lo <= 0.0) return std::numeric_limits<double>::infinity();
  const double r = hi / lo;
  return r * r;
}

std::vector<double> mvnSample(const std::vector<double>& mu,
                              const Cholesky& chol,
                              const std::vector<double>& std_normals) {
  const std::size_t n = mu.size();
  assert(chol.dim() == n && std_normals.size() == n);
  std::vector<double> z = mu;
  const Matrix& l = chol.lower();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.rowPtr(i);
    double acc = 0.0;
    for (std::size_t k = 0; k <= i; ++k) acc += li[k] * std_normals[k];
    z[i] += acc;
  }
  return z;
}

}  // namespace cmmfo::linalg
