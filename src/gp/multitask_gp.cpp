#include "gp/multitask_gp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "linalg/vec_ops.h"
#include "opt/lbfgs.h"

namespace cmmfo::gp {

namespace {
std::size_t lowerTriCount(std::size_t m) { return m * (m + 1) / 2; }
}  // namespace

MultiTaskGp::MultiTaskGp(const Kernel& input_kernel, std::size_t num_tasks,
                         MultiTaskFitOptions opts)
    : kernel_(input_kernel.clone()),
      m_(num_tasks),
      opts_(opts),
      l_entries_(lowerTriCount(num_tasks), 0.0),
      log_noise_(num_tasks, std::log(opts.init_noise)) {
  // Identity initialization of L: diagonal logs at 0, off-diagonals at 0.
}

MultiTaskGp::MultiTaskGp(const MultiTaskGp& o)
    : kernel_(o.kernel_->clone()),
      m_(o.m_),
      opts_(o.opts_),
      l_entries_(o.l_entries_),
      log_noise_(o.log_noise_),
      last_fit_iters_(o.last_fit_iters_),
      x_(o.x_),
      y_raw_(o.y_raw_),
      state_(o.state_),
      row_point_(o.row_point_),
      row_task_(o.row_task_) {}

MultiTaskGp& MultiTaskGp::operator=(const MultiTaskGp& o) {
  if (this == &o) return *this;
  kernel_ = o.kernel_->clone();
  m_ = o.m_;
  opts_ = o.opts_;
  l_entries_ = o.l_entries_;
  log_noise_ = o.log_noise_;
  last_fit_iters_ = o.last_fit_iters_;
  x_ = o.x_;
  y_raw_ = o.y_raw_;
  state_ = o.state_;
  row_point_ = o.row_point_;
  row_task_ = o.row_task_;
  return *this;
}

std::size_t MultiTaskGp::numPacked() const {
  return kernel_->numParams() + lowerTriCount(m_) + m_;
}

Vec MultiTaskGp::packedParams() const {
  Vec p = kernel_->params();
  p.insert(p.end(), l_entries_.begin(), l_entries_.end());
  p.insert(p.end(), log_noise_.begin(), log_noise_.end());
  return p;
}

void MultiTaskGp::applyPacked(const Vec& p) {
  assert(p.size() == numPacked());
  const std::size_t nk = kernel_->numParams();
  kernel_->setParams(Vec(p.begin(), p.begin() + nk));
  const std::size_t nl = lowerTriCount(m_);
  l_entries_.assign(p.begin() + nk, p.begin() + nk + nl);
  log_noise_.assign(p.begin() + nk + nl, p.end());
  for (auto& ln : log_noise_)
    ln = std::clamp(ln, std::log(opts_.min_noise), std::log(4.0));
}

linalg::Matrix MultiTaskGp::buildB(const Vec& l_entries, std::size_t m) {
  // Expand the packed lower triangle into L (diagonals exponentiated to stay
  // positive), then B = L L^T.
  linalg::Matrix l(m, m);
  std::size_t idx = 0;
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c <= r; ++c, ++idx)
      l(r, c) = (r == c) ? std::exp(l_entries[idx]) : l_entries[idx];
  return l.matmul(l.transposed());
}

linalg::Matrix MultiTaskGp::buildStackedGram(const Kernel& k,
                                             const Vec& l_entries,
                                             const Vec& log_noise) const {
  const std::size_t n = x_.size();
  const linalg::Matrix kx = k.gram(x_);
  const linalg::Matrix b = buildB(l_entries, m_);
  linalg::Matrix gram(n * m_, n * m_);
  for (std::size_t mm = 0; mm < m_; ++mm)
    for (std::size_t mp = 0; mp < m_; ++mp) {
      const double bmm = b(mm, mp);
      for (std::size_t i = 0; i < n; ++i) {
        double* dst = gram.rowPtr(mm * n + i) + mp * n;
        const double* src = kx.rowPtr(i);
        for (std::size_t j = 0; j < n; ++j) dst[j] += bmm * src[j];
      }
    }
  for (std::size_t mm = 0; mm < m_; ++mm) {
    const double nv = std::exp(2.0 * log_noise[mm]);
    for (std::size_t i = 0; i < n; ++i) gram(mm * n + i, mm * n + i) += nv;
  }
  return gram;
}

double MultiTaskGp::negLml(const Vec& packed, Vec& grad) const {
  const std::size_t n = x_.size();
  const std::size_t nn = n * m_;
  const std::size_t nk = kernel_->numParams();
  const std::size_t nl = lowerTriCount(m_);
  grad.assign(packed.size(), 0.0);

  KernelPtr k = kernel_->clone();
  k->setParams(Vec(packed.begin(), packed.begin() + nk));
  Vec l_entries(packed.begin() + nk, packed.begin() + nk + nl);
  Vec log_noise(packed.begin() + nk + nl, packed.end());
  for (auto& ln : log_noise)
    ln = std::clamp(ln, std::log(opts_.min_noise), std::log(4.0));

  // Task-major standardized targets, rebuilt from the raw targets so the
  // MLE objective is valid even when the cached factor is in bordered
  // (append) order. Bit-identical to the cached y_std after a dense refit.
  Vec y_stacked(nn);
  for (std::size_t mm = 0; mm < m_; ++mm)
    for (std::size_t i = 0; i < n; ++i)
      y_stacked[mm * n + i] =
          state_.standardizers[mm].transform(y_raw_(i, mm));

  const linalg::Matrix gram = buildStackedGram(*k, l_entries, log_noise);
  auto chol = linalg::Cholesky::factorizeWithJitter(gram);
  if (!chol) return std::numeric_limits<double>::infinity();

  const Vec alpha = chol->solve(y_stacked);
  const double nll =
      0.5 * linalg::dot(y_stacked, alpha) + 0.5 * chol->logDet() +
      0.5 * static_cast<double>(nn) * std::log(2.0 * std::numbers::pi);

  // W = alpha alpha^T - K^{-1}; dNLL/dtheta = -1/2 tr(W dK/dtheta).
  const linalg::Matrix kinv = chol->inverse();
  auto w = [&](std::size_t a, std::size_t b2) {
    return alpha[a] * alpha[b2] - kinv(a, b2);
  };

  const linalg::Matrix kx = k->gram(x_);
  const linalg::Matrix b = buildB(l_entries, m_);

  // Kernel parameters: dK = B (x) dKx. Precompute the B-weighted collapse of
  // W over task blocks so each kernel parameter costs O(n^2).
  linalg::Matrix wsum(n, n);
  for (std::size_t mm = 0; mm < m_; ++mm)
    for (std::size_t mp = 0; mp < m_; ++mp) {
      const double bmm = b(mm, mp);
      if (bmm == 0.0) continue;
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          wsum(i, j) += bmm * w(mm * n + i, mp * n + j);
    }
  for (std::size_t p = 0; p < nk; ++p) {
    const linalg::Matrix dkx = k->gramGrad(x_, p);
    double tr = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) tr += wsum(i, j) * dkx(i, j);
    grad[p] = -0.5 * tr;
  }

  // Task-covariance parameters: dK = dB (x) Kx. Precompute
  // T[mm, mp] = sum_ij W[(mm,i),(mp,j)] Kx(i,j) so each is O(M^2).
  linalg::Matrix t(m_, m_);
  for (std::size_t mm = 0; mm < m_; ++mm)
    for (std::size_t mp = 0; mp < m_; ++mp) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          s += w(mm * n + i, mp * n + j) * kx(i, j);
      t(mm, mp) = s;
    }
  // Expand L for dB computation.
  linalg::Matrix lmat(m_, m_);
  {
    std::size_t idx = 0;
    for (std::size_t r = 0; r < m_; ++r)
      for (std::size_t c = 0; c <= r; ++c, ++idx)
        lmat(r, c) = (r == c) ? std::exp(l_entries[idx]) : l_entries[idx];
  }
  {
    std::size_t idx = 0;
    for (std::size_t a = 0; a < m_; ++a)
      for (std::size_t c = 0; c <= a; ++c, ++idx) {
        // dL = d * E_{a,c}, d = L_aa for the log-diagonal, else 1.
        const double d = (a == c) ? lmat(a, a) : 1.0;
        // dB = dL L^T + L dL^T => dB(r,s) = [r==a] d L(s,c) + [s==a] d L(r,c).
        double tr = 0.0;
        for (std::size_t s = 0; s < m_; ++s) tr += t(a, s) * d * lmat(s, c);
        for (std::size_t r = 0; r < m_; ++r) tr += t(r, a) * d * lmat(r, c);
        grad[nk + idx] = -0.5 * tr;
      }
  }

  // Noise parameters: dK = 2 sigma_m^2 I on task-m block.
  for (std::size_t mm = 0; mm < m_; ++mm) {
    const double nv = std::exp(2.0 * log_noise[mm]);
    double tr = 0.0;
    for (std::size_t i = 0; i < n; ++i) tr += w(mm * n + i, mm * n + i);
    double g = -0.5 * tr * 2.0 * nv;
    if ((packed[nk + nl + mm] <= std::log(opts_.min_noise) && g > 0.0) ||
        (packed[nk + nl + mm] >= std::log(4.0) && g < 0.0))
      g = 0.0;
    grad[nk + nl + mm] = g;
  }
  return nll;
}

void MultiTaskGp::fit(const Dataset& x, const linalg::Matrix& y,
                      rng::Rng& rng) {
  assert(!x.empty() && y.rows() == x.size() && y.cols() == m_);
  refitPosterior(x, y);  // sets up standardized targets for the objective

  opt::GradObjectiveFn objective = [this](const Vec& p, Vec& g) {
    return negLml(p, g);
  };
  opt::LbfgsOptions lopts;
  lopts.max_iters = opts_.max_mle_iters;

  // Informed multi-start (see GpRegressor::fit): prototype parameters plus
  // the median-distance data initialization of the input kernel, plus
  // random perturbations of the latter.
  std::vector<Vec> starts;
  starts.push_back(packedParams());
  {
    KernelPtr init = kernel_->clone();
    init->initFromData(x_);
    for (double factor : {1.0, 0.25}) {
      KernelPtr k2 = init->clone();
      k2->scaleLengthscales(factor);
      Vec p = k2->params();
      p.insert(p.end(), l_entries_.begin(), l_entries_.end());
      p.insert(p.end(), log_noise_.begin(), log_noise_.end());
      starts.push_back(std::move(p));
    }
    for (int s2 = 0; s2 < opts_.mle_restarts; ++s2) {
      Vec q = starts[1];
      for (auto& v : q) v += rng.uniform(-1.0, 1.0);
      starts.push_back(std::move(q));
    }
  }
  opt::OptResult best;
  best.value = std::numeric_limits<double>::infinity();
  last_fit_iters_ = 0;
  for (const auto& start : starts) {
    const opt::OptResult r = opt::minimizeLbfgs(objective, start, lopts);
    last_fit_iters_ += r.iterations;
    if (std::isfinite(r.value) && r.value < best.value) best = r;
  }
  if (std::isfinite(best.value)) applyPacked(best.x);

  refitPosterior(x, y);
}

double MultiTaskGp::evalNegLogMarginalLikelihood(const Vec& packed,
                                                 Vec* grad) const {
  Vec g;
  const double v = negLml(packed, g);
  if (grad != nullptr) *grad = std::move(g);
  return v;
}

void MultiTaskGp::refitPosterior(const Dataset& x, const linalg::Matrix& y) {
  assert(!x.empty() && y.rows() == x.size() && y.cols() == m_);
  x_ = x;
  y_raw_ = y;
  const std::size_t n = x_.size();
  state_.standardizers.resize(m_);
  state_.y_std.assign(n * m_, 0.0);
  for (std::size_t mm = 0; mm < m_; ++mm) {
    const Vec col = y.col(mm);
    state_.standardizers[mm] = linalg::Standardizer::fit(col);
    for (std::size_t i = 0; i < n; ++i)
      state_.y_std[mm * n + i] = state_.standardizers[mm].transform(col[i]);
  }
  // Task-major factor-row ordering (row = m*n + i).
  row_point_.resize(n * m_);
  row_task_.resize(n * m_);
  for (std::size_t mm = 0; mm < m_; ++mm)
    for (std::size_t i = 0; i < n; ++i) {
      row_point_[mm * n + i] = i;
      row_task_[mm * n + i] = mm;
    }
  const linalg::Matrix gram = buildStackedGram(*kernel_, l_entries_, log_noise_);
  // Throw (not assert) on an unfactorizable stacked Gram: Release builds
  // compile the assert out and the subsequent solves would read an empty
  // factor. The server's supervision layer turns this throw into a
  // per-campaign failure + restart instead of a process death.
  if (!state_.refitDense(gram))
    throw std::runtime_error(
        "gp: multi-task Gram not factorizable even with escalated jitter "
        "(non-finite entries?)");
  state_.solveTargets();
}

void MultiTaskGp::resolveTargets() {
  const std::size_t rows = state_.rows();
  state_.standardizers.resize(m_);
  for (std::size_t mm = 0; mm < m_; ++mm)
    state_.standardizers[mm] = linalg::Standardizer::fit(y_raw_.col(mm));
  state_.y_std.resize(rows);
  for (std::size_t r = 0; r < rows; ++r)
    state_.y_std[r] = state_.standardizers[row_task_[r]].transform(
        y_raw_(row_point_[r], row_task_[r]));
  state_.solveTargets();
}

bool MultiTaskGp::appendObservation(const Vec& x, const Vec& y_row) {
  assert(y_row.size() == m_);
  const auto appendRaw = [&] {
    const std::size_t n = y_raw_.rows();
    linalg::Matrix grown(n + 1, m_);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t mm = 0; mm < m_; ++mm) grown(i, mm) = y_raw_(i, mm);
    for (std::size_t mm = 0; mm < m_; ++mm) grown(n, mm) = y_row[mm];
    y_raw_ = std::move(grown);
  };

  if (!fitted() || state_.chol->jitterUsed() != 0.0 ||
      state_.rows() != x_.size() * m_) {
    x_.push_back(x);
    appendRaw();
    refitPosterior(x_, y_raw_);
    return false;
  }

  // Bordered rank-append: the new point's M factor rows go at the tail (a
  // symmetric permutation of the task-major stacked Gram, so the posterior
  // is exact). Cross-covariances against every existing factor row follow
  // the ICM structure K[(i,mi),(j,mj)] = B(mi,mj) k(x_i, x_j).
  const std::size_t new_pt = x_.size();
  const Vec kx = kernel_->crossVec(x_, x);
  const double kss = kernel_->eval(x, x);
  const linalg::Matrix b = buildB(l_entries_, m_);
  x_.push_back(x);
  appendRaw();
  for (std::size_t mm = 0; mm < m_; ++mm) {
    const std::size_t rows = state_.rows();
    Vec cross(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const double kval = row_point_[r] == new_pt ? kss : kx[row_point_[r]];
      cross[r] = b(mm, row_task_[r]) * kval;
    }
    const double diag = b(mm, mm) * kss + std::exp(2.0 * log_noise_[mm]);
    if (!state_.appendRow(cross, diag)) {
      // Numerically unsafe mid-point: discard any partially appended task
      // rows by rebuilding densely (also restores task-major ordering).
      refitPosterior(x_, y_raw_);
      return false;
    }
    row_point_.push_back(new_pt);
    row_task_.push_back(mm);
  }
  resolveTargets();
  return true;
}

void MultiTaskGp::truncateToPoints(std::size_t n) {
  assert(fitted() && n >= 1 && n <= x_.size() &&
         state_.rows() == x_.size() * m_);
  if (n == x_.size()) return;
  assert(n * m_ >= state_.base_rows &&
         "cannot truncate into the dense task-major base block");
  x_.resize(n);
  linalg::Matrix shrunk(n, m_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t mm = 0; mm < m_; ++mm) shrunk(i, mm) = y_raw_(i, mm);
  y_raw_ = std::move(shrunk);
  row_point_.resize(n * m_);
  row_task_.resize(n * m_);
  state_.truncateTo(n * m_);
  resolveTargets();
}

MultiPosterior MultiTaskGp::predict(const Vec& x) const {
  assert(fitted());
  const std::size_t rows = state_.rows();
  const linalg::Matrix b = buildB(l_entries_, m_);
  const Vec kxstar = kernel_->crossVec(x_, x);
  const double kss = kernel_->eval(x, x);

  // Cross-covariance K_* is (nM) x M in factor-row order:
  // K_*[r, mp] = B(task(r), mp) kx(point(r)).
  linalg::Matrix kstar(rows, m_);
  for (std::size_t r = 0; r < rows; ++r) {
    const double kval = kxstar[row_point_[r]];
    double* dst = kstar.rowPtr(r);
    const double* brow = b.rowPtr(row_task_[r]);
    for (std::size_t mp = 0; mp < m_; ++mp) dst[mp] = brow[mp] * kval;
  }

  MultiPosterior post;
  post.mean.resize(m_);
  post.cov = linalg::Matrix(m_, m_);

  // Mean: K_*^T alpha. Covariance: B kss - V^T V with V = L^{-1} K_* —
  // the same Schur complement as K_*^T K^{-1} K_* but through one forward
  // substitution instead of two, and V^T V keeps the reduction symmetric
  // PSD by construction. The single-point path runs one per-vector
  // substitution per task column, matching GpRegressor::predict; each
  // column is bit-identical to the multi-RHS path predictBatch takes.
  linalg::Matrix v(rows, m_);
  {
    Vec col(rows);
    for (std::size_t mp = 0; mp < m_; ++mp) {
      for (std::size_t a = 0; a < rows; ++a) col[a] = kstar(a, mp);
      const Vec vc = state_.chol->solveLower(col);
      for (std::size_t a = 0; a < rows; ++a) v(a, mp) = vc[a];
    }
  }
  for (std::size_t mp = 0; mp < m_; ++mp) {
    double mu = 0.0;
    for (std::size_t a = 0; a < rows; ++a) mu += kstar(a, mp) * state_.alpha[a];
    post.mean[mp] = state_.standardizers[mp].inverse(mu);
  }
  for (std::size_t mp = 0; mp < m_; ++mp)
    for (std::size_t mq = 0; mq < m_; ++mq) {
      double red = 0.0;
      for (std::size_t a = 0; a < rows; ++a) red += v(a, mp) * v(a, mq);
      double cz = b(mp, mq) * kss - red;
      if (mp == mq) cz = std::max(cz, 0.0);
      post.cov(mp, mq) = cz * state_.standardizers[mp].stddev *
                         state_.standardizers[mq].stddev;
    }
  post.cov.symmetrize();
  return post;
}

std::vector<MultiPosterior> MultiTaskGp::predictBatch(const Dataset& x) const {
  assert(fitted());
  std::vector<MultiPosterior> out;
  if (x.empty()) return out;
  out.reserve(x.size());
  const std::size_t rows = state_.rows();
  const std::size_t nc = x.size();
  const linalg::Matrix b = buildB(l_entries_, m_);
  // One cross-Gram over all candidates and ONE multi-RHS forward substitution
  // for the whole (candidate x task) RHS block — the covariance uses the same
  // B kss - V^T V Schur complement as predict(), and the per-candidate
  // reductions below run in the same index order, so every entry is
  // bit-identical to the scalar path.
  const linalg::Matrix kx = kernel_->cross(x_, x);
  linalg::Matrix kstar(rows, nc * m_);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* kxp = kx.rowPtr(row_point_[r]);
    const double* brow = b.rowPtr(row_task_[r]);
    double* dst = kstar.rowPtr(r);
    for (std::size_t c = 0; c < nc; ++c) {
      const double kval = kxp[c];
      for (std::size_t mp = 0; mp < m_; ++mp) dst[c * m_ + mp] = brow[mp] * kval;
    }
  }
  const linalg::Matrix v = state_.chol->solveLower(kstar);

  // One row sweep per candidate accumulates all m means and m^2 covariance
  // reductions together: each accumulator still sums its terms in ascending
  // row order, so folding the sweeps changes memory traffic only (one pass
  // over the kstar/v rows instead of m + m^2 strided column walks), never a
  // single bit of any sum.
  Vec mu(m_);
  std::vector<double> red(m_ * m_);
  for (std::size_t c = 0; c < nc; ++c) {
    const double kss = kernel_->eval(x[c], x[c]);
    MultiPosterior post;
    post.mean.resize(m_);
    post.cov = linalg::Matrix(m_, m_);
    std::fill(mu.begin(), mu.end(), 0.0);
    std::fill(red.begin(), red.end(), 0.0);
    for (std::size_t a = 0; a < rows; ++a) {
      const double* ks = kstar.rowPtr(a) + c * m_;
      const double* vr = v.rowPtr(a) + c * m_;
      const double al = state_.alpha[a];
      for (std::size_t mp = 0; mp < m_; ++mp) {
        mu[mp] += ks[mp] * al;
        for (std::size_t mq = 0; mq < m_; ++mq)
          red[mp * m_ + mq] += vr[mp] * vr[mq];
      }
    }
    for (std::size_t mp = 0; mp < m_; ++mp)
      post.mean[mp] = state_.standardizers[mp].inverse(mu[mp]);
    for (std::size_t mp = 0; mp < m_; ++mp)
      for (std::size_t mq = 0; mq < m_; ++mq) {
        double cz = b(mp, mq) * kss - red[mp * m_ + mq];
        if (mp == mq) cz = std::max(cz, 0.0);
        post.cov(mp, mq) = cz * state_.standardizers[mp].stddev *
                           state_.standardizers[mq].stddev;
      }
    post.cov.symmetrize();
    out.push_back(std::move(post));
  }
  return out;
}

linalg::Matrix MultiTaskGp::taskCovariance() const {
  linalg::Matrix b = buildB(l_entries_, m_);
  // Report in original target units.
  for (std::size_t i = 0; i < m_; ++i)
    for (std::size_t j = 0; j < m_; ++j)
      b(i, j) *= state_.standardizers.empty()
                     ? 1.0
                     : state_.standardizers[i].stddev *
                           state_.standardizers[j].stddev;
  return b;
}

linalg::Matrix MultiTaskGp::taskCorrelation() const {
  const linalg::Matrix b = taskCovariance();
  linalg::Matrix c(m_, m_);
  for (std::size_t i = 0; i < m_; ++i)
    for (std::size_t j = 0; j < m_; ++j)
      c(i, j) = b(i, j) / std::sqrt(b(i, i) * b(j, j));
  return c;
}

}  // namespace cmmfo::gp
