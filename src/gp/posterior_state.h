#pragma once

#include <cstdint>
#include <optional>

#include "gp/kernel.h"
#include "linalg/cholesky.h"
#include "linalg/stats.h"

namespace cmmfo::gp {

/// Shared posterior core for every GP layer: the factorization of the
/// noise-augmented Gram matrix, the target standardization, the standardized
/// targets in factor-row order, the dual weights alpha = K^{-1} y_std, and
/// the log marginal likelihood. GpRegressor (one task), MultiTaskGp (M
/// stacked tasks) and NonlinearMfGp (per level, through GpRegressor) each
/// own exactly one PosteriorState per model and mutate it through two paths:
///
///  - refitDense(): O(n^3) refactorization — MLE refits and any Gram that
///    needs jitter;
///  - appendRow()/truncateTo(): O(n^2) rank-append growth for incremental
///    observation updates, with exact (bitwise) rollback for
///    Kriging-believer speculation.
///
/// `base_rows` records how many factor rows come from the last dense
/// factorization; everything above it was rank-appended. Checkpoints journal
/// the split so a resumed run can rebuild the factor as dense(base) followed
/// by the same appends — bit-identical to the uninterrupted evolution.
struct PosteriorState {
  std::optional<linalg::Cholesky> chol;
  std::vector<linalg::Standardizer> standardizers;
  Vec y_std;
  Vec alpha;
  double lml = 0.0;
  std::size_t base_rows = 0;
  /// Self-healing ledger: refitDense() factorizations that only succeeded
  /// after escalating past the standard jitter ladder, and the jitter the
  /// last such rescue needed. Cumulative over the model's lifetime (not
  /// cleared by reset()) so callers can diff across a fit to detect a
  /// rescue and emit a recovery diag record.
  std::uint64_t jitter_escalations = 0;
  double last_escalation_jitter = 0.0;

  bool fitted() const { return chol.has_value(); }
  std::size_t rows() const { return chol ? chol->dim() : 0; }

  /// Factorize the noise-augmented Gram. On failure of the standard jitter
  /// ladder (1e-10 growing 10x for 10 tries) the ladder is escalated from a
  /// larger base with more tries — a rescue for Grams so degenerate the
  /// routine remedy is insufficient (counted in jitter_escalations). Resets
  /// the append base to the full size. Returns false only when even the
  /// escalated ladder fails (e.g. non-finite Gram entries).
  bool refitDense(const linalg::Matrix& gram_with_noise);

  /// Rank-append one factor row (Cholesky::appendRow). A false return means
  /// the update is not numerically safe and the caller must refitDense.
  bool appendRow(const Vec& cross, double diag);

  /// Exact rollback to the leading `n` factor rows; alpha/lml are stale
  /// until the next solveTargets().
  void truncateTo(std::size_t n);

  /// Recompute alpha and the LML from y_std (callers restandardize and fill
  /// y_std first; targets do not enter the factor, so this is the whole
  /// O(n^2) tail of an append).
  void solveTargets();

  void reset();
};

}  // namespace cmmfo::gp
