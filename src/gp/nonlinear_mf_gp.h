#pragma once

#include <vector>

#include "gp/gp_regressor.h"

namespace cmmfo::gp {

/// Training data for one fidelity level.
struct FidelityData {
  Dataset x;
  Vec y;
};

/// Non-linear multi-fidelity Gaussian process (Eq. 5 of the paper;
/// structurally the NARGP model of Perdikaris et al. 2017):
///
///   f_{i+1}(x) = z(f_i(x), x) + f_e(x)
///
/// where z is a GP over the *concatenation* of the design features and the
/// lower-fidelity prediction, and f_e is a GP error term over the design
/// features alone. Sums of independent GPs are GPs, so level i > 0 is a
/// single GP with kernel
///
///   k([x,f],[x',f']) = k_z([x,f],[x',f']) + k_e(x, x'),
///
/// trained on inputs augmented with the level-(i-1) posterior mean.
/// Prediction propagates posterior means through the hierarchy (the
/// deterministic NARGP approximation).
struct NonlinearMfGpOptions {
  GpFitOptions gp;
  /// Variance propagation: inflate the top-level variance with the
  /// lower-level variance scaled by the (numerical) sensitivity of the
  /// top level to its fidelity input.
  bool propagate_variance = true;
};

class NonlinearMfGp {
 public:
  using Options = NonlinearMfGpOptions;

  NonlinearMfGp(std::size_t input_dim, std::size_t num_levels,
                Options opts = {});

  /// data[i] holds the training set of fidelity i (0 = lowest). Every level
  /// must have at least one point. Typically X_{i+1} is a subset of X_i,
  /// but this is not required by the model.
  void fit(const std::vector<FidelityData>& data, rng::Rng& rng);

  /// Posterior at fidelity `level` (mean-propagated through lower levels).
  Posterior predict(std::size_t level, const Vec& x) const;
  /// Posterior at the highest fidelity.
  Posterior predictHighest(const Vec& x) const;

  std::size_t numLevels() const { return models_.size(); }
  const GpRegressor& model(std::size_t level) const { return models_[level]; }

 private:
  Vec augment(std::size_t level, const Vec& x) const;

  std::size_t input_dim_;
  Options opts_;
  std::vector<GpRegressor> models_;
};

}  // namespace cmmfo::gp
