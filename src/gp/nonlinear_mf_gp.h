#pragma once

#include <vector>

#include "gp/gp_regressor.h"

namespace cmmfo::gp {

/// Training data for one fidelity level.
struct FidelityData {
  Dataset x;
  Vec y;
};

/// Non-linear multi-fidelity Gaussian process (Eq. 5 of the paper;
/// structurally the NARGP model of Perdikaris et al. 2017):
///
///   f_{i+1}(x) = z(f_i(x), x) + f_e(x)
///
/// where z is a GP over the *concatenation* of the design features and the
/// lower-fidelity prediction, and f_e is a GP error term over the design
/// features alone. Sums of independent GPs are GPs, so level i > 0 is a
/// single GP with kernel
///
///   k([x,f],[x',f']) = k_z([x,f],[x',f']) + k_e(x, x'),
///
/// trained on inputs augmented with the level-(i-1) posterior mean.
/// Prediction propagates posterior means through the hierarchy (the
/// deterministic NARGP approximation).
struct NonlinearMfGpOptions {
  GpFitOptions gp;
  /// Variance propagation: inflate the top-level variance with the
  /// lower-level variance scaled by the (numerical) sensitivity of the
  /// top level to its fidelity input.
  bool propagate_variance = true;
};

class NonlinearMfGp {
 public:
  using Options = NonlinearMfGpOptions;

  NonlinearMfGp(std::size_t input_dim, std::size_t num_levels,
                Options opts = {});

  /// data[i] holds the training set of fidelity i (0 = lowest). Every level
  /// must have at least one point. Typically X_{i+1} is a subset of X_i,
  /// but this is not required by the model.
  void fit(const std::vector<FidelityData>& data, rng::Rng& rng);

  /// Rebuild every level's posterior densely (bottom-up, fresh augmentation)
  /// with current hyperparameters on new data. No MLE.
  void refitPosterior(const std::vector<FidelityData>& data);

  /// Append one observation at `level` with an O(n^2) rank-append on that
  /// level's GP, then densely refit the levels above it (their augmented
  /// training inputs depend on the changed posterior; they hold far fewer
  /// points, so the dense rebuilds are cheap). Equivalent to refitPosterior
  /// on the extended data. Returns true when `level` took the incremental
  /// path rather than an internal dense fallback.
  bool appendObservation(std::size_t level, const Vec& x, double y);

  /// Roll back `level` to its first n points (exact inverse of
  /// appendObservation at that level) and densely refit the levels above.
  void truncateTo(std::size_t level, std::size_t n);

  /// Posterior at fidelity `level` (mean-propagated through lower levels).
  Posterior predict(std::size_t level, const Vec& x) const;
  /// Posterior at the highest fidelity.
  Posterior predictHighest(const Vec& x) const;
  /// Batched prediction: the whole candidate block is propagated through
  /// the hierarchy with one cross-Gram + multi-RHS solve per level (the
  /// central-difference variance probes are batched too). Per candidate
  /// bit-identical to predict().
  std::vector<Posterior> predictBatch(std::size_t level,
                                      const Dataset& x) const;

  std::size_t numLevels() const { return models_.size(); }
  const GpRegressor& model(std::size_t level) const { return models_[level]; }

  /// Diagnostics: share of the level's prior signal variance carried by the
  /// NARGP error term k_e, i.e. var(k_e) / (var(k_z) + var(k_e)) evaluated
  /// at the fitted hyperparameters. Near 0 the level is explained almost
  /// entirely through the lower-fidelity transfer; near 1 the chaining adds
  /// nothing over an independent GP. Returns NaN for level 0 (no error
  /// term) or when the kernel is not the k_z + k_e composite.
  double errorVarianceShare(std::size_t level) const;

 private:
  Vec augment(std::size_t level, const Vec& x) const;
  /// Dense posterior rebuilds (fresh augmentation) for levels above `level`.
  void refitLevelsAbove(std::size_t level);

  std::size_t input_dim_;
  Options opts_;
  std::vector<GpRegressor> models_;
  /// Raw per-level training data, cached by fit()/refitPosterior() so the
  /// append/truncate paths can re-augment the upper levels.
  std::vector<FidelityData> data_;
};

}  // namespace cmmfo::gp
