#pragma once

#include <optional>

#include "gp/kernel.h"
#include "gp/posterior_state.h"
#include "linalg/cholesky.h"
#include "linalg/stats.h"
#include "rng/rng.h"

namespace cmmfo::gp {

/// Mean / variance of a scalar Gaussian posterior.
struct Posterior {
  double mean = 0.0;
  /// Variance of the latent function (excludes observation noise).
  double var = 0.0;
};

struct GpFitOptions {
  /// Also optimize the observation-noise stddev (log-parameterized).
  bool optimize_noise = true;
  /// Initial observation-noise stddev, in standardized-target units.
  double init_noise = 0.1;
  /// Lower bound on the noise stddev, keeping the Gram matrix well
  /// conditioned even for noise-free data.
  double min_noise = 1e-4;
  /// Upper bound on the noise stddev (standardized units): beyond a few
  /// data-stddevs "all noise" is already expressed, and an unbounded
  /// parameter lets a bad line search run off to infinity.
  double max_noise = 4.0;
  /// Extra random restarts for the MLE search.
  int mle_restarts = 2;
  int max_mle_iters = 60;
};

/// Single-output Gaussian-process regression with constant (empirical) mean,
/// hyperparameters fitted by maximizing the log marginal likelihood with
/// analytic gradients (Sec. II-A of the paper).
///
/// Targets are standardized internally; predictions are reported in the
/// original units.
class GpRegressor {
 public:
  /// `prototype` supplies the kernel family and initial hyperparameters;
  /// it is cloned, never mutated.
  explicit GpRegressor(const Kernel& prototype, GpFitOptions opts = {});
  GpRegressor(const GpRegressor& o);
  GpRegressor& operator=(const GpRegressor& o);
  GpRegressor(GpRegressor&&) = default;
  GpRegressor& operator=(GpRegressor&&) = default;

  /// Fit hyperparameters on (x, y) and cache the posterior state.
  /// Requires x.size() == y.size() >= 1.
  void fit(const Dataset& x, const Vec& y, rng::Rng& rng);

  /// Rebuild the posterior state densely (O(n^3)) with current
  /// hyperparameters on new data.
  void refitPosterior(const Dataset& x, const Vec& y);

  /// Append one observation with an O(n^2) rank-append posterior update.
  /// When the factor is jitter-free the result is bit-identical to a dense
  /// refitPosterior on the extended data; if the update is numerically
  /// unsafe (jittered factor or non-positive Schur complement) the model
  /// falls back to the dense path internally. Returns true when the
  /// incremental path was taken.
  bool appendObservation(const Vec& x, double y);

  /// Exact rollback to the first n observations (bitwise inverse of a
  /// sequence of appendObservation calls) — Kriging-believer speculation.
  void truncateTo(std::size_t n);

  /// Observations covered by the last dense factorization (appends sit on
  /// top). Journaled by checkpoints so resume can replay dense(base) +
  /// appends bit-identically.
  std::size_t denseBaseSize() const { return state_.base_rows; }

  Posterior predict(const Vec& x) const;
  /// Batched prediction: one cross-Gram build + one multi-RHS triangular
  /// solve for all candidates. Per candidate bit-identical to predict().
  std::vector<Posterior> predictBatch(const Dataset& x) const;

  /// Log marginal likelihood of the training data at the fitted
  /// hyperparameters (standardized units).
  double logMarginalLikelihood() const { return state_.lml; }
  double noiseStddev() const;
  const Kernel& kernel() const { return *kernel_; }
  std::size_t numData() const { return x_.size(); }
  bool fitted() const { return state_.fitted(); }

  /// Packed hyperparameters [kernel log-params..., log noise]. Exposed so
  /// checkpoints can journal them: fit() warm-starts MLE from the current
  /// packed vector, so a resumed run must restore it to stay
  /// trajectory-identical. applyPacked is pure parameter assignment — it
  /// does not touch the cached posterior.
  Vec packedParams() const;
  void applyPacked(const Vec& packed);

  /// Negative log marginal likelihood (and, if grad != nullptr, its analytic
  /// gradient) at arbitrary packed parameters, evaluated on the cached
  /// training data (set by fit()/refitPosterior()). Exposed for the
  /// finite-difference gradient-check test battery; does not mutate state.
  double evalNegLogMarginalLikelihood(const Vec& packed,
                                      Vec* grad = nullptr) const;

  /// Total L-BFGS iterations spent across all restarts in the last fit().
  int lastFitIterations() const { return last_fit_iters_; }
  /// Condition estimate of the fitted (noise-augmented) Gram matrix.
  double gramConditionEstimate() const {
    return state_.chol ? state_.chol->conditionEstimate() : 1.0;
  }
  /// Factorizations that needed the escalated jitter ladder (cumulative;
  /// diffed across fits by the self-healing layer) and the jitter the last
  /// rescue used.
  std::uint64_t jitterEscalations() const { return state_.jitter_escalations; }
  double lastEscalationJitter() const { return state_.last_escalation_jitter; }

 private:
  /// Negative LML and gradient at packed parameters [kernel..., log noise].
  double negLml(const Vec& packed, Vec& grad) const;
  /// Dense rebuild of `state_` from the cached (x_, y_raw_).
  void rebuildDense();
  /// Restandardize y_raw_, refresh state_.y_std, and re-solve targets —
  /// the O(n^2) tail shared by the append and truncate paths.
  void resolveTargets();

  KernelPtr kernel_;
  GpFitOptions opts_;
  double log_noise_ = 0.0;
  int last_fit_iters_ = 0;

  // Cached training data and shared posterior core.
  Dataset x_;
  Vec y_raw_;  // original-unit targets (append paths restandardize)
  PosteriorState state_;
};

}  // namespace cmmfo::gp
