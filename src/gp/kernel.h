#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace cmmfo::gp {

using Vec = std::vector<double>;
/// A dataset is a list of input points (row vectors).
using Dataset = std::vector<Vec>;

/// Covariance function interface.
///
/// All tunable hyperparameters are exposed in LOG space so that optimizers
/// can work unconstrained while the underlying quantities (lengthscales,
/// variances) stay positive. `gramGrad` returns the derivative of the Gram
/// matrix with respect to one log-parameter, which is what the marginal
/// likelihood gradient needs.
class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual double eval(const Vec& x, const Vec& y) const = 0;

  virtual std::size_t numParams() const = 0;
  /// Current log-parameters.
  virtual Vec params() const = 0;
  virtual void setParams(const Vec& p) = 0;

  /// dK(X,X)/d log-param p.
  virtual linalg::Matrix gramGrad(const Dataset& x, std::size_t p) const = 0;

  /// Data-driven hyperparameter initialization (e.g. the median-distance
  /// heuristic for lengthscales). MLE landscapes for GP kernels have an
  /// "everything is noise" local optimum that swallows gradient descent when
  /// the initial lengthscale is far longer than the data's variation scale;
  /// starting near the median pairwise distance avoids it. Default: no-op.
  virtual void initFromData(const Dataset& x) { (void)x; }

  /// Multiply every lengthscale by `factor` (no-op for kernels without
  /// lengthscales). Used to build a multi-resolution ladder of MLE starts:
  /// the marginal-likelihood landscape typically has one basin per plausible
  /// variation scale, and a ladder of starts visits several of them.
  virtual void scaleLengthscales(double factor) { (void)factor; }

  virtual std::unique_ptr<Kernel> clone() const = 0;
  virtual std::string name() const = 0;

  /// Symmetric Gram matrix K(X, X).
  linalg::Matrix gram(const Dataset& x) const;
  /// Cross-covariance K(X, Z), rows indexed by X.
  linalg::Matrix cross(const Dataset& x, const Dataset& z) const;
  /// Covariance vector k(X, z).
  Vec crossVec(const Dataset& x, const Vec& z) const;
};

using KernelPtr = std::unique_ptr<Kernel>;

}  // namespace cmmfo::gp
