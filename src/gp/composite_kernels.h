#pragma once

#include "gp/kernel.h"

namespace cmmfo::gp {

/// Restrict an inner kernel to a subset of input dimensions. Needed by the
/// NARGP composite (Eq. 5): the "error" kernel k_delta sees only the design
/// features while the "transfer" kernel sees design features plus the
/// lower-fidelity output.
class SubspaceKernel final : public Kernel {
 public:
  SubspaceKernel(KernelPtr inner, std::vector<std::size_t> dims);
  SubspaceKernel(const SubspaceKernel& o);

  double eval(const Vec& x, const Vec& y) const override;
  std::size_t numParams() const override { return inner_->numParams(); }
  Vec params() const override { return inner_->params(); }
  void setParams(const Vec& p) override { inner_->setParams(p); }
  linalg::Matrix gramGrad(const Dataset& x, std::size_t p) const override;
  void initFromData(const Dataset& x) override;
  void scaleLengthscales(double factor) override;
  std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<SubspaceKernel>(*this);
  }
  std::string name() const override;

  /// Read-only view of the wrapped kernel (diagnostics: the NARGP error
  /// term's variance lives on the inner ARD kernel).
  const Kernel& inner() const { return *inner_; }

 private:
  Vec project(const Vec& x) const;
  Dataset projectAll(const Dataset& x) const;

  KernelPtr inner_;
  std::vector<std::size_t> dims_;
};

/// Sum of kernels; parameters are the concatenation of the terms' parameters.
class SumKernel final : public Kernel {
 public:
  SumKernel(KernelPtr a, KernelPtr b);
  SumKernel(const SumKernel& o);

  double eval(const Vec& x, const Vec& y) const override;
  std::size_t numParams() const override;
  Vec params() const override;
  void setParams(const Vec& p) override;
  linalg::Matrix gramGrad(const Dataset& x, std::size_t p) const override;
  void initFromData(const Dataset& x) override;
  void scaleLengthscales(double factor) override;
  std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<SumKernel>(*this);
  }
  std::string name() const override;

  /// Read-only views of the two terms (diagnostics: the NARGP kernel is
  /// k_z + k_e and the variance split between them is a calibration signal).
  const Kernel& termA() const { return *a_; }
  const Kernel& termB() const { return *b_; }

 private:
  KernelPtr a_, b_;
};

/// Product of kernels; parameters are the concatenation of the factors'.
class ProductKernel final : public Kernel {
 public:
  ProductKernel(KernelPtr a, KernelPtr b);
  ProductKernel(const ProductKernel& o);

  double eval(const Vec& x, const Vec& y) const override;
  std::size_t numParams() const override;
  Vec params() const override;
  void setParams(const Vec& p) override;
  linalg::Matrix gramGrad(const Dataset& x, std::size_t p) const override;
  void initFromData(const Dataset& x) override;
  void scaleLengthscales(double factor) override;
  std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<ProductKernel>(*this);
  }
  std::string name() const override;

 private:
  KernelPtr a_, b_;
};

}  // namespace cmmfo::gp
