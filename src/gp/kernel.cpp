#include "gp/kernel.h"

namespace cmmfo::gp {

linalg::Matrix Kernel::gram(const Dataset& x) const {
  const std::size_t n = x.size();
  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = eval(x[i], x[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

linalg::Matrix Kernel::cross(const Dataset& x, const Dataset& z) const {
  linalg::Matrix k(x.size(), z.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < z.size(); ++j) k(i, j) = eval(x[i], z[j]);
  return k;
}

Vec Kernel::crossVec(const Dataset& x, const Vec& z) const {
  Vec k(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) k[i] = eval(x[i], z);
  return k;
}

}  // namespace cmmfo::gp
