#include "gp/kernel.h"

namespace cmmfo::gp {

linalg::Matrix Kernel::gram(const Dataset& x) const {
  // Blocked lower-triangle sweep writing straight into contiguous row-major
  // storage; entry values are pure functions of (i, j), so this is
  // bit-identical to the naive loop while keeping the mirrored writes in
  // cache for large n.
  return linalg::assembleSymmetricBlocked(
      x.size(), [&](std::size_t i, std::size_t j) { return eval(x[i], x[j]); });
}

linalg::Matrix Kernel::cross(const Dataset& x, const Dataset& z) const {
  linalg::Matrix k(x.size(), z.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < z.size(); ++j) k(i, j) = eval(x[i], z[j]);
  return k;
}

Vec Kernel::crossVec(const Dataset& x, const Vec& z) const {
  Vec k(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) k[i] = eval(x[i], z);
  return k;
}

}  // namespace cmmfo::gp
