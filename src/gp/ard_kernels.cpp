#include "gp/ard_kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cmmfo::gp {

ArdKernelBase::ArdKernelBase(std::size_t dim, bool unit_variance)
    : dim_(dim), unit_variance_(unit_variance), log_ls_(dim, 0.0) {
  refreshParamCache();
}

void ArdKernelBase::refreshParamCache() {
  inv_ls_.resize(dim_);
  for (std::size_t d = 0; d < dim_; ++d) inv_ls_[d] = std::exp(-log_ls_[d]);
  sf2_ = unit_variance_ ? 1.0 : std::exp(2.0 * log_sf_);
}

double ArdKernelBase::lengthscale(std::size_t d) const {
  return std::exp(log_ls_[d]);
}

double ArdKernelBase::signalVariance() const { return sf2_; }

void ArdKernelBase::setLengthscale(std::size_t d, double value) {
  log_ls_[d] = std::log(value);
  refreshParamCache();
}

void ArdKernelBase::setSignalStddev(double value) {
  log_sf_ = std::log(value);
  refreshParamCache();
}

std::size_t ArdKernelBase::numParams() const {
  return dim_ + (unit_variance_ ? 0 : 1);
}

Vec ArdKernelBase::params() const {
  Vec p = log_ls_;
  if (!unit_variance_) p.push_back(log_sf_);
  return p;
}

void ArdKernelBase::setParams(const Vec& p) {
  assert(p.size() == numParams());
  for (std::size_t d = 0; d < dim_; ++d) log_ls_[d] = p[d];
  if (!unit_variance_) log_sf_ = p[dim_];
  refreshParamCache();
}

void ArdKernelBase::initFromData(const Dataset& x) {
  if (x.size() < 2) return;
  // Cap the pair count so initialization stays cheap on large sets.
  const std::size_t stride = x.size() > 64 ? x.size() / 64 : 1;
  for (std::size_t d = 0; d < dim_; ++d) {
    std::vector<double> dists;
    for (std::size_t i = 0; i < x.size(); i += stride)
      for (std::size_t j = i + 1; j < x.size(); j += stride) {
        const double dd = std::fabs(x[i][d] - x[j][d]);
        if (dd > 0.0) dists.push_back(dd);
      }
    if (dists.empty()) continue;
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    log_ls_[d] = std::log(std::max(dists[dists.size() / 2], 1e-3));
  }
  refreshParamCache();
}

void ArdKernelBase::scaleLengthscales(double factor) {
  const double lf = std::log(factor);
  for (auto& l : log_ls_) l += lf;
  refreshParamCache();
}

double ArdKernelBase::scaledSqDist(const Vec& x, const Vec& y) const {
  assert(x.size() >= dim_ && y.size() >= dim_);
  double r2 = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    const double diff = (x[d] - y[d]) * inv_ls_[d];
    r2 += diff * diff;
  }
  return r2;
}

double ArdKernelBase::eval(const Vec& x, const Vec& y) const {
  return signalVariance() * shape(scaledSqDist(x, y));
}

linalg::Matrix ArdKernelBase::gramGrad(const Dataset& x, std::size_t p) const {
  const std::size_t n = x.size();
  linalg::Matrix g(n, n);
  if (!unit_variance_ && p == dim_) {
    // d/d log_sf of sf^2 * shape = 2 * k.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j) {
        const double v = 2.0 * eval(x[i], x[j]);
        g(i, j) = v;
        g(j, i) = v;
      }
    return g;
  }
  // d r2 / d log_l_d = -2 (x_d - y_d)^2 / l_d^2, so
  // dk / d log_l_d = sf^2 * shape'(r2) * (-2 sd), sd = (x_d-y_d)^2/l_d^2.
  const std::size_t d = p;
  assert(d < dim_);
  const double inv_l2 = std::exp(-2.0 * log_ls_[d]);
  const double sf2 = signalVariance();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double r2 = scaledSqDist(x[i], x[j]);
      const double diff = x[i][d] - x[j][d];
      const double sd = diff * diff * inv_l2;
      const double v = sf2 * shapeGradR2(r2) * (-2.0 * sd);
      g(i, j) = v;
      g(j, i) = v;
    }
  return g;
}

double RbfArd::shape(double r2) const { return std::exp(-0.5 * r2); }

double RbfArd::shapeGradR2(double r2) const { return -0.5 * std::exp(-0.5 * r2); }

namespace {
constexpr double kSqrt5 = 2.2360679774997896;
}

double Matern52Ard::shape(double r2) const {
  const double r = std::sqrt(r2);
  return (1.0 + kSqrt5 * r + 5.0 * r2 / 3.0) * std::exp(-kSqrt5 * r);
}

double Matern52Ard::shapeGradR2(double r2) const {
  // d shape / d r = -(5 r / 3)(1 + sqrt5 r) e^{-sqrt5 r};
  // d r / d r2 = 1 / (2 r); the r factors cancel, so the limit at r = 0 is
  // finite and the expression below is smooth everywhere.
  const double r = std::sqrt(r2);
  return -(5.0 / 6.0) * (1.0 + kSqrt5 * r) * std::exp(-kSqrt5 * r);
}

}  // namespace cmmfo::gp
