#include "gp/gp_regressor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "linalg/vec_ops.h"
#include "opt/lbfgs.h"

namespace cmmfo::gp {

namespace {
double clampLogNoise(double v, const GpFitOptions& opts) {
  return std::clamp(v, std::log(opts.min_noise), std::log(opts.max_noise));
}
}  // namespace

GpRegressor::GpRegressor(const Kernel& prototype, GpFitOptions opts)
    : kernel_(prototype.clone()),
      opts_(opts),
      log_noise_(std::log(opts.init_noise)) {}

GpRegressor::GpRegressor(const GpRegressor& o)
    : kernel_(o.kernel_->clone()),
      opts_(o.opts_),
      log_noise_(o.log_noise_),
      last_fit_iters_(o.last_fit_iters_),
      x_(o.x_),
      y_raw_(o.y_raw_),
      state_(o.state_) {}

GpRegressor& GpRegressor::operator=(const GpRegressor& o) {
  if (this == &o) return *this;
  kernel_ = o.kernel_->clone();
  opts_ = o.opts_;
  log_noise_ = o.log_noise_;
  last_fit_iters_ = o.last_fit_iters_;
  x_ = o.x_;
  y_raw_ = o.y_raw_;
  state_ = o.state_;
  return *this;
}

double GpRegressor::noiseStddev() const { return std::exp(log_noise_); }

Vec GpRegressor::packedParams() const {
  Vec p = kernel_->params();
  if (opts_.optimize_noise) p.push_back(log_noise_);
  return p;
}

void GpRegressor::applyPacked(const Vec& packed) {
  const std::size_t nk = kernel_->numParams();
  kernel_->setParams(Vec(packed.begin(), packed.begin() + nk));
  if (opts_.optimize_noise) log_noise_ = clampLogNoise(packed[nk], opts_);
}

double GpRegressor::negLml(const Vec& packed, Vec& grad) const {
  const std::size_t n = x_.size();
  const std::size_t nk = kernel_->numParams();
  grad.assign(packed.size(), 0.0);

  // Work on a clone so the const contract holds while scanning parameters.
  KernelPtr k = kernel_->clone();
  k->setParams(Vec(packed.begin(), packed.begin() + nk));
  const double log_noise =
      opts_.optimize_noise ? clampLogNoise(packed[nk], opts_) : log_noise_;
  const double noise_var = std::exp(2.0 * log_noise);

  linalg::Matrix gram = k->gram(x_);
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += noise_var;
  auto chol = linalg::Cholesky::factorizeWithJitter(gram);
  if (!chol) return std::numeric_limits<double>::infinity();

  const Vec alpha = chol->solve(state_.y_std);
  const double data_fit = 0.5 * linalg::dot(state_.y_std, alpha);
  const double nll = data_fit + 0.5 * chol->logDet() +
                     0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);

  // dNLL/dtheta = -1/2 tr((alpha alpha^T - K^{-1}) dK/dtheta).
  const linalg::Matrix kinv = chol->inverse();
  auto traceTerm = [&](const linalg::Matrix& dk) {
    double tr = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        tr += (alpha[i] * alpha[j] - kinv(i, j)) * dk(i, j);
    return -0.5 * tr;
  };
  for (std::size_t p = 0; p < nk; ++p)
    grad[p] = traceTerm(k->gramGrad(x_, p));
  if (opts_.optimize_noise) {
    // dK/d log_noise = 2 * noise_var * I.
    double tr = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      tr += alpha[i] * alpha[i] - kinv(i, i);
    grad[nk] = -0.5 * tr * 2.0 * noise_var;
    // At a clamp boundary, zero the gradient component pointing outward so
    // the line search does not chase an inert direction.
    if ((packed[nk] <= std::log(opts_.min_noise) && grad[nk] > 0.0) ||
        (packed[nk] >= std::log(opts_.max_noise) && grad[nk] < 0.0))
      grad[nk] = 0.0;
  }
  return nll;
}

double GpRegressor::evalNegLogMarginalLikelihood(const Vec& packed,
                                                 Vec* grad) const {
  Vec g;
  const double v = negLml(packed, g);
  if (grad != nullptr) *grad = std::move(g);
  return v;
}

void GpRegressor::fit(const Dataset& x, const Vec& y, rng::Rng& rng) {
  assert(!x.empty() && x.size() == y.size());
  x_ = x;
  y_raw_ = y;
  state_.standardizers.assign(1, linalg::Standardizer::fit(y));
  state_.y_std = state_.standardizers[0].transform(y);

  opt::GradObjectiveFn objective = [this](const Vec& p, Vec& g) {
    return negLml(p, g);
  };
  opt::LbfgsOptions lopts;
  lopts.max_iters = opts_.max_mle_iters;

  // Informed multi-start: the caller's prototype parameters, the
  // median-distance data-driven initialization, and random perturbations of
  // the latter. The data-driven start is what rescues MLE from the
  // "everything is noise" optimum on fast-varying targets.
  std::vector<Vec> starts;
  starts.push_back(packedParams());
  {
    KernelPtr init = kernel_->clone();
    init->initFromData(x_);
    // Multi-resolution ladder: the median distance and two shorter scales.
    for (double factor : {1.0, 0.25, 0.0625}) {
      KernelPtr k2 = init->clone();
      k2->scaleLengthscales(factor);
      Vec p = k2->params();
      if (opts_.optimize_noise) p.push_back(std::log(0.1));
      starts.push_back(std::move(p));
    }
    for (int s2 = 0; s2 < opts_.mle_restarts; ++s2) {
      Vec q = starts[1];
      for (auto& v : q) v += rng.uniform(-1.5, 1.5);
      starts.push_back(std::move(q));
    }
  }
  opt::OptResult best;
  best.value = std::numeric_limits<double>::infinity();
  last_fit_iters_ = 0;
  for (const auto& start : starts) {
    const opt::OptResult r = opt::minimizeLbfgs(objective, start, lopts);
    last_fit_iters_ += r.iterations;
    if (std::isfinite(r.value) && r.value < best.value) best = r;
  }
  if (std::isfinite(best.value)) applyPacked(best.x);

  refitPosterior(x, y);
}

void GpRegressor::rebuildDense() {
  const std::size_t n = x_.size();
  linalg::Matrix gram = kernel_->gram(x_);
  const double noise_var = std::exp(2.0 * log_noise_);
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += noise_var;
  // A Gram the escalated jitter ladder cannot factorize has non-finite
  // entries (degenerate hyperparameters or poisoned targets). Throw instead
  // of asserting: in Release an assert would compile out and the solve
  // below would read an empty factor (UB); a throw lets the server's
  // supervision isolate the failure to this campaign.
  if (!state_.refitDense(gram))
    throw std::runtime_error(
        "gp: Gram matrix not factorizable even with escalated jitter "
        "(non-finite entries?)");
  state_.solveTargets();
}

void GpRegressor::resolveTargets() {
  state_.standardizers.assign(1, linalg::Standardizer::fit(y_raw_));
  state_.y_std = state_.standardizers[0].transform(y_raw_);
  state_.solveTargets();
}

void GpRegressor::refitPosterior(const Dataset& x, const Vec& y) {
  assert(!x.empty() && x.size() == y.size());
  x_ = x;
  y_raw_ = y;
  state_.standardizers.assign(1, linalg::Standardizer::fit(y));
  state_.y_std = state_.standardizers[0].transform(y);
  rebuildDense();
}

bool GpRegressor::appendObservation(const Vec& x, double y) {
  if (!fitted() || state_.chol->jitterUsed() != 0.0 ||
      state_.rows() != x_.size()) {
    x_.push_back(x);
    y_raw_.push_back(y);
    refitPosterior(x_, y_raw_);
    return false;
  }
  // Rank-append: the cross-covariance row and noise-augmented diagonal are
  // exactly the entries a dense Gram of the extended data would hold, so
  // the grown factor (and thus alpha, lml, predictions) is bit-identical to
  // refitPosterior on x_ + {x}.
  Vec cross = kernel_->crossVec(x_, x);
  const double diag = kernel_->eval(x, x) + std::exp(2.0 * log_noise_);
  if (!state_.appendRow(cross, diag)) {
    x_.push_back(x);
    y_raw_.push_back(y);
    refitPosterior(x_, y_raw_);
    return false;
  }
  x_.push_back(x);
  y_raw_.push_back(y);
  resolveTargets();
  return true;
}

void GpRegressor::truncateTo(std::size_t n) {
  assert(fitted() && n >= 1 && n <= x_.size() && state_.rows() == x_.size());
  if (n == x_.size()) return;
  x_.resize(n);
  y_raw_.resize(n);
  state_.truncateTo(n);
  resolveTargets();
}

Posterior GpRegressor::predict(const Vec& x) const {
  assert(fitted());
  const Vec kstar = kernel_->crossVec(x_, x);
  Posterior p;
  const double z_mean = linalg::dot(kstar, state_.alpha);
  const Vec v = state_.chol->solveLower(kstar);
  const double kxx = kernel_->eval(x, x);
  double z_var = kxx - linalg::dot(v, v);
  z_var = std::max(z_var, 0.0);
  p.mean = state_.standardizers[0].inverse(z_mean);
  p.var = state_.standardizers[0].inverseVar(z_var);
  return p;
}

std::vector<Posterior> GpRegressor::predictBatch(const Dataset& x) const {
  assert(fitted());
  std::vector<Posterior> out;
  if (x.empty()) return out;
  out.reserve(x.size());
  const std::size_t n = x_.size(), nc = x.size();
  // One cross-Gram build and ONE multi-RHS forward substitution for the
  // whole candidate block; the per-candidate reductions below accumulate in
  // the same index order as predict()'s dot products, so every entry is
  // bit-identical to the scalar path.
  const linalg::Matrix kstar = kernel_->cross(x_, x);
  const linalg::Matrix v = state_.chol->solveLower(kstar);
  const linalg::Standardizer& std1 = state_.standardizers[0];
  for (std::size_t c = 0; c < nc; ++c) {
    double z_mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) z_mean += kstar(i, c) * state_.alpha[i];
    double vv = 0.0;
    for (std::size_t i = 0; i < n; ++i) vv += v(i, c) * v(i, c);
    const double kxx = kernel_->eval(x[c], x[c]);
    double z_var = kxx - vv;
    z_var = std::max(z_var, 0.0);
    Posterior p;
    p.mean = std1.inverse(z_mean);
    p.var = std1.inverseVar(z_var);
    out.push_back(p);
  }
  return out;
}

}  // namespace cmmfo::gp
