#include "gp/composite_kernels.h"

#include <cassert>

namespace cmmfo::gp {

SubspaceKernel::SubspaceKernel(KernelPtr inner, std::vector<std::size_t> dims)
    : inner_(std::move(inner)), dims_(std::move(dims)) {}

SubspaceKernel::SubspaceKernel(const SubspaceKernel& o)
    : inner_(o.inner_->clone()), dims_(o.dims_) {}

Vec SubspaceKernel::project(const Vec& x) const {
  Vec out(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    assert(dims_[i] < x.size());
    out[i] = x[dims_[i]];
  }
  return out;
}

Dataset SubspaceKernel::projectAll(const Dataset& x) const {
  Dataset out;
  out.reserve(x.size());
  for (const auto& xi : x) out.push_back(project(xi));
  return out;
}

double SubspaceKernel::eval(const Vec& x, const Vec& y) const {
  return inner_->eval(project(x), project(y));
}

linalg::Matrix SubspaceKernel::gramGrad(const Dataset& x, std::size_t p) const {
  return inner_->gramGrad(projectAll(x), p);
}

void SubspaceKernel::initFromData(const Dataset& x) {
  inner_->initFromData(projectAll(x));
}

void SubspaceKernel::scaleLengthscales(double factor) {
  inner_->scaleLengthscales(factor);
}

std::string SubspaceKernel::name() const {
  return "Subspace(" + inner_->name() + ")";
}

SumKernel::SumKernel(KernelPtr a, KernelPtr b)
    : a_(std::move(a)), b_(std::move(b)) {}

SumKernel::SumKernel(const SumKernel& o)
    : a_(o.a_->clone()), b_(o.b_->clone()) {}

double SumKernel::eval(const Vec& x, const Vec& y) const {
  return a_->eval(x, y) + b_->eval(x, y);
}

std::size_t SumKernel::numParams() const {
  return a_->numParams() + b_->numParams();
}

Vec SumKernel::params() const {
  Vec p = a_->params();
  const Vec pb = b_->params();
  p.insert(p.end(), pb.begin(), pb.end());
  return p;
}

void SumKernel::setParams(const Vec& p) {
  assert(p.size() == numParams());
  a_->setParams(Vec(p.begin(), p.begin() + a_->numParams()));
  b_->setParams(Vec(p.begin() + a_->numParams(), p.end()));
}

linalg::Matrix SumKernel::gramGrad(const Dataset& x, std::size_t p) const {
  if (p < a_->numParams()) return a_->gramGrad(x, p);
  return b_->gramGrad(x, p - a_->numParams());
}

void SumKernel::initFromData(const Dataset& x) {
  a_->initFromData(x);
  b_->initFromData(x);
}

void SumKernel::scaleLengthscales(double factor) {
  a_->scaleLengthscales(factor);
  b_->scaleLengthscales(factor);
}

std::string SumKernel::name() const {
  return a_->name() + " + " + b_->name();
}

ProductKernel::ProductKernel(KernelPtr a, KernelPtr b)
    : a_(std::move(a)), b_(std::move(b)) {}

ProductKernel::ProductKernel(const ProductKernel& o)
    : a_(o.a_->clone()), b_(o.b_->clone()) {}

double ProductKernel::eval(const Vec& x, const Vec& y) const {
  return a_->eval(x, y) * b_->eval(x, y);
}

std::size_t ProductKernel::numParams() const {
  return a_->numParams() + b_->numParams();
}

Vec ProductKernel::params() const {
  Vec p = a_->params();
  const Vec pb = b_->params();
  p.insert(p.end(), pb.begin(), pb.end());
  return p;
}

void ProductKernel::setParams(const Vec& p) {
  assert(p.size() == numParams());
  a_->setParams(Vec(p.begin(), p.begin() + a_->numParams()));
  b_->setParams(Vec(p.begin() + a_->numParams(), p.end()));
}

linalg::Matrix ProductKernel::gramGrad(const Dataset& x, std::size_t p) const {
  // Product rule: d(A.*B) = dA.*B or A.*dB elementwise.
  const std::size_t n = x.size();
  linalg::Matrix g(n, n);
  if (p < a_->numParams()) {
    const linalg::Matrix da = a_->gramGrad(x, p);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        g(i, j) = da(i, j) * b_->eval(x[i], x[j]);
  } else {
    const linalg::Matrix db = b_->gramGrad(x, p - a_->numParams());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        g(i, j) = a_->eval(x[i], x[j]) * db(i, j);
  }
  return g;
}

void ProductKernel::initFromData(const Dataset& x) {
  a_->initFromData(x);
  b_->initFromData(x);
}

void ProductKernel::scaleLengthscales(double factor) {
  a_->scaleLengthscales(factor);
  b_->scaleLengthscales(factor);
}

std::string ProductKernel::name() const {
  return "(" + a_->name() + ") * (" + b_->name() + ")";
}

}  // namespace cmmfo::gp
