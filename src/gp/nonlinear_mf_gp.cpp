#include "gp/nonlinear_mf_gp.h"

#include <cassert>
#include <cmath>

#include "gp/ard_kernels.h"
#include "gp/composite_kernels.h"

namespace cmmfo::gp {

namespace {
/// Kernel for level 0: plain Matern-5/2 ARD over the design features.
KernelPtr baseKernel(std::size_t dim) {
  return std::make_unique<Matern52Ard>(dim, /*unit_variance=*/false);
}

/// Kernel for levels > 0 over [x (dim), f_lower (1)]:
///   k_z over all dim+1 coordinates  +  k_e over x only.
KernelPtr nargpKernel(std::size_t dim) {
  auto kz = std::make_unique<Matern52Ard>(dim + 1, false);
  std::vector<std::size_t> xdims(dim);
  for (std::size_t d = 0; d < dim; ++d) xdims[d] = d;
  auto ke_inner = std::make_unique<Matern52Ard>(dim, false);
  // The error term is typically small relative to the transfer term; start
  // it an order of magnitude lower so MLE converges to that regime.
  ke_inner->setSignalStddev(0.3);
  auto ke = std::make_unique<SubspaceKernel>(std::move(ke_inner), xdims);
  return std::make_unique<SumKernel>(std::move(kz), std::move(ke));
}
}  // namespace

NonlinearMfGp::NonlinearMfGp(std::size_t input_dim, std::size_t num_levels,
                             Options opts)
    : input_dim_(input_dim), opts_(opts) {
  assert(num_levels >= 1);
  models_.reserve(num_levels);
  for (std::size_t l = 0; l < num_levels; ++l) {
    const KernelPtr proto = l == 0 ? baseKernel(input_dim) : nargpKernel(input_dim);
    models_.emplace_back(*proto, opts_.gp);
  }
}

Vec NonlinearMfGp::augment(std::size_t level, const Vec& x) const {
  // Inputs to level l > 0 are [x, mu_{l-1}(x)], recursively propagated.
  assert(x.size() == input_dim_);
  if (level == 0) return x;
  Vec aug = x;
  aug.push_back(predict(level - 1, x).mean);
  return aug;
}

void NonlinearMfGp::fit(const std::vector<FidelityData>& data, rng::Rng& rng) {
  assert(data.size() == models_.size());
  for (std::size_t l = 0; l < models_.size(); ++l) {
    assert(!data[l].x.empty() && data[l].x.size() == data[l].y.size());
    Dataset inputs;
    inputs.reserve(data[l].x.size());
    for (const auto& xi : data[l].x) inputs.push_back(augment(l, xi));
    models_[l].fit(inputs, data[l].y, rng);
  }
}

Posterior NonlinearMfGp::predict(std::size_t level, const Vec& x) const {
  assert(level < models_.size());
  if (level == 0) return models_[0].predict(x);

  const Posterior lower = predict(level - 1, x);
  Vec aug = x;
  aug.push_back(lower.mean);
  Posterior post = models_[level].predict(aug);

  if (opts_.propagate_variance && lower.var > 0.0) {
    // First-order propagation: Var += (d mu/d f)^2 * Var_lower, with the
    // sensitivity estimated by a central difference on the fidelity input.
    const double h = std::sqrt(lower.var) * 0.5 + 1e-9;
    Vec ap = aug, am = aug;
    ap.back() += h;
    am.back() -= h;
    const double dmu =
        (models_[level].predict(ap).mean - models_[level].predict(am).mean) /
        (2.0 * h);
    post.var += dmu * dmu * lower.var;
  }
  return post;
}

Posterior NonlinearMfGp::predictHighest(const Vec& x) const {
  return predict(models_.size() - 1, x);
}

}  // namespace cmmfo::gp
