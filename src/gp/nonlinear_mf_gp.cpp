#include "gp/nonlinear_mf_gp.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "gp/ard_kernels.h"
#include "gp/composite_kernels.h"

namespace cmmfo::gp {

namespace {
/// Kernel for level 0: plain Matern-5/2 ARD over the design features.
KernelPtr baseKernel(std::size_t dim) {
  return std::make_unique<Matern52Ard>(dim, /*unit_variance=*/false);
}

/// Kernel for levels > 0 over [x (dim), f_lower (1)]:
///   k_z over all dim+1 coordinates  +  k_e over x only.
KernelPtr nargpKernel(std::size_t dim) {
  auto kz = std::make_unique<Matern52Ard>(dim + 1, false);
  std::vector<std::size_t> xdims(dim);
  for (std::size_t d = 0; d < dim; ++d) xdims[d] = d;
  auto ke_inner = std::make_unique<Matern52Ard>(dim, false);
  // The error term is typically small relative to the transfer term; start
  // it an order of magnitude lower so MLE converges to that regime.
  ke_inner->setSignalStddev(0.3);
  auto ke = std::make_unique<SubspaceKernel>(std::move(ke_inner), xdims);
  return std::make_unique<SumKernel>(std::move(kz), std::move(ke));
}
}  // namespace

NonlinearMfGp::NonlinearMfGp(std::size_t input_dim, std::size_t num_levels,
                             Options opts)
    : input_dim_(input_dim), opts_(opts) {
  assert(num_levels >= 1);
  models_.reserve(num_levels);
  for (std::size_t l = 0; l < num_levels; ++l) {
    const KernelPtr proto = l == 0 ? baseKernel(input_dim) : nargpKernel(input_dim);
    models_.emplace_back(*proto, opts_.gp);
  }
}

Vec NonlinearMfGp::augment(std::size_t level, const Vec& x) const {
  // Inputs to level l > 0 are [x, mu_{l-1}(x)], recursively propagated.
  assert(x.size() == input_dim_);
  if (level == 0) return x;
  Vec aug = x;
  aug.push_back(predict(level - 1, x).mean);
  return aug;
}

void NonlinearMfGp::fit(const std::vector<FidelityData>& data, rng::Rng& rng) {
  assert(data.size() == models_.size());
  data_ = data;
  for (std::size_t l = 0; l < models_.size(); ++l) {
    assert(!data[l].x.empty() && data[l].x.size() == data[l].y.size());
    Dataset inputs;
    inputs.reserve(data[l].x.size());
    for (const auto& xi : data[l].x) inputs.push_back(augment(l, xi));
    models_[l].fit(inputs, data[l].y, rng);
  }
}

void NonlinearMfGp::refitPosterior(const std::vector<FidelityData>& data) {
  assert(data.size() == models_.size());
  data_ = data;
  for (std::size_t l = 0; l < models_.size(); ++l) {
    assert(!data[l].x.empty() && data[l].x.size() == data[l].y.size());
    Dataset inputs;
    inputs.reserve(data[l].x.size());
    for (const auto& xi : data[l].x) inputs.push_back(augment(l, xi));
    models_[l].refitPosterior(inputs, data[l].y);
  }
}

void NonlinearMfGp::refitLevelsAbove(std::size_t level) {
  for (std::size_t l = level + 1; l < models_.size(); ++l) {
    Dataset inputs;
    inputs.reserve(data_[l].x.size());
    for (const auto& xi : data_[l].x) inputs.push_back(augment(l, xi));
    models_[l].refitPosterior(inputs, data_[l].y);
  }
}

bool NonlinearMfGp::appendObservation(std::size_t level, const Vec& x,
                                      double y) {
  assert(level < models_.size() && data_.size() == models_.size());
  // Augment BEFORE touching the level's model: the lower levels (and thus
  // the fidelity feature) are exactly what a dense rebuild would see.
  const Vec input = augment(level, x);
  data_[level].x.push_back(x);
  data_[level].y.push_back(y);
  const bool incremental = models_[level].appendObservation(input, y);
  refitLevelsAbove(level);
  return incremental;
}

void NonlinearMfGp::truncateTo(std::size_t level, std::size_t n) {
  assert(level < models_.size() && data_.size() == models_.size());
  assert(n >= 1 && n <= data_[level].x.size());
  if (n == data_[level].x.size()) return;
  data_[level].x.resize(n);
  data_[level].y.resize(n);
  models_[level].truncateTo(n);
  refitLevelsAbove(level);
}

Posterior NonlinearMfGp::predict(std::size_t level, const Vec& x) const {
  assert(level < models_.size());
  if (level == 0) return models_[0].predict(x);

  const Posterior lower = predict(level - 1, x);
  Vec aug = x;
  aug.push_back(lower.mean);
  Posterior post = models_[level].predict(aug);

  if (opts_.propagate_variance && lower.var > 0.0) {
    // First-order propagation: Var += (d mu/d f)^2 * Var_lower, with the
    // sensitivity estimated by a central difference on the fidelity input.
    const double h = std::sqrt(lower.var) * 0.5 + 1e-9;
    Vec ap = aug, am = aug;
    ap.back() += h;
    am.back() -= h;
    const double dmu =
        (models_[level].predict(ap).mean - models_[level].predict(am).mean) /
        (2.0 * h);
    post.var += dmu * dmu * lower.var;
  }
  return post;
}

Posterior NonlinearMfGp::predictHighest(const Vec& x) const {
  return predict(models_.size() - 1, x);
}

std::vector<Posterior> NonlinearMfGp::predictBatch(std::size_t level,
                                                   const Dataset& x) const {
  assert(level < models_.size());
  if (level == 0) return models_[0].predictBatch(x);

  const std::vector<Posterior> lower = predictBatch(level - 1, x);
  Dataset aug;
  aug.reserve(x.size());
  for (std::size_t c = 0; c < x.size(); ++c) {
    Vec a = x[c];
    a.push_back(lower[c].mean);
    aug.push_back(std::move(a));
  }
  std::vector<Posterior> out = models_[level].predictBatch(aug);

  if (opts_.propagate_variance) {
    // Batch the +-h central-difference probes for every candidate whose
    // lower-level variance is positive; GpRegressor::predictBatch is
    // bit-identical per candidate, so dmu matches the scalar path.
    std::vector<std::size_t> idx;
    std::vector<double> hs;
    Dataset probes;
    for (std::size_t c = 0; c < x.size(); ++c) {
      if (!(lower[c].var > 0.0)) continue;
      const double h = std::sqrt(lower[c].var) * 0.5 + 1e-9;
      Vec ap = aug[c], am = aug[c];
      ap.back() += h;
      am.back() -= h;
      idx.push_back(c);
      hs.push_back(h);
      probes.push_back(std::move(ap));
      probes.push_back(std::move(am));
    }
    if (!idx.empty()) {
      const std::vector<Posterior> probe_post =
          models_[level].predictBatch(probes);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        const std::size_t c = idx[k];
        const double dmu =
            (probe_post[2 * k].mean - probe_post[2 * k + 1].mean) /
            (2.0 * hs[k]);
        out[c].var += dmu * dmu * lower[c].var;
      }
    }
  }
  return out;
}

double NonlinearMfGp::errorVarianceShare(std::size_t level) const {
  if (level == 0 || level >= models_.size())
    return std::numeric_limits<double>::quiet_NaN();
  const auto* sum = dynamic_cast<const SumKernel*>(&models_[level].kernel());
  if (sum == nullptr) return std::numeric_limits<double>::quiet_NaN();
  const auto* kz = dynamic_cast<const ArdKernelBase*>(&sum->termA());
  const auto* sub = dynamic_cast<const SubspaceKernel*>(&sum->termB());
  const auto* ke =
      sub ? dynamic_cast<const ArdKernelBase*>(&sub->inner()) : nullptr;
  if (kz == nullptr || ke == nullptr)
    return std::numeric_limits<double>::quiet_NaN();
  const double vz = kz->signalVariance();
  const double ve = ke->signalVariance();
  const double total = vz + ve;
  if (!(total > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  return ve / total;
}

}  // namespace cmmfo::gp
