#include "gp/posterior_state.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "linalg/vec_ops.h"

namespace cmmfo::gp {

bool PosteriorState::refitDense(const linalg::Matrix& gram_with_noise) {
  chol = linalg::Cholesky::factorizeWithJitter(gram_with_noise);
  if (!chol) {
    // Standard ladder exhausted (tops out near 1e-1): escalate from a
    // larger base jitter with more tries (up to ~1e7 — enough to swamp any
    // finite near-singular Gram). Anything still failing here has
    // non-finite entries, which no jitter can fix.
    chol = linalg::Cholesky::factorizeWithJitter(gram_with_noise,
                                                 /*initial_jitter=*/1e-6,
                                                 /*max_tries=*/14);
    if (!chol) return false;
    ++jitter_escalations;
    last_escalation_jitter = chol->jitterUsed();
  }
  base_rows = chol->dim();
  return true;
}

bool PosteriorState::appendRow(const Vec& cross, double diag) {
  if (!chol) return false;
  return chol->appendRow(cross, diag);
}

void PosteriorState::truncateTo(std::size_t n) {
  assert(chol && n <= chol->dim());
  chol->truncateTo(n);
  if (y_std.size() > n) y_std.resize(n);
  if (base_rows > n) base_rows = n;
}

void PosteriorState::solveTargets() {
  assert(chol && y_std.size() == chol->dim());
  alpha = chol->solve(y_std);
  lml = -(0.5 * linalg::dot(y_std, alpha) + 0.5 * chol->logDet() +
          0.5 * static_cast<double>(chol->dim()) *
              std::log(2.0 * std::numbers::pi));
}

void PosteriorState::reset() {
  chol.reset();
  standardizers.clear();
  y_std.clear();
  alpha.clear();
  lml = 0.0;
  base_rows = 0;
}

}  // namespace cmmfo::gp
