#pragma once

#include <vector>

#include "gp/gp_regressor.h"
#include "gp/nonlinear_mf_gp.h"  // FidelityData

namespace cmmfo::gp {

/// Linear auto-regressive multi-fidelity GP (Kennedy & O'Hagan 2000, in the
/// recursive formulation of Le Gratiet 2013). This is the model used by the
/// FPL18 baseline the paper compares against:
///
///   f_{i+1}(x) = rho_i * f_i(x) + delta_i(x),
///
/// with scalar rho_i estimated by least squares against the lower-fidelity
/// posterior mean and delta_i an independent GP on the residuals.
class LinearMfGp {
 public:
  explicit LinearMfGp(std::size_t input_dim, std::size_t num_levels,
                      GpFitOptions opts = {});

  void fit(const std::vector<FidelityData>& data, rng::Rng& rng);

  Posterior predict(std::size_t level, const Vec& x) const;
  Posterior predictHighest(const Vec& x) const;

  std::size_t numLevels() const { return models_.size(); }
  double rho(std::size_t level) const { return rhos_.at(level); }

 private:
  std::size_t input_dim_;
  GpFitOptions opts_;
  std::vector<GpRegressor> models_;  // level 0: f_0; level i: delta_i
  std::vector<double> rhos_;         // rhos_[0] unused, rhos_[i] links i-1 -> i
};

}  // namespace cmmfo::gp
