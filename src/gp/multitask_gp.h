#pragma once

#include <optional>

#include "gp/kernel.h"
#include "linalg/cholesky.h"
#include "linalg/stats.h"
#include "rng/rng.h"

namespace cmmfo::gp {

/// Joint Gaussian posterior over M correlated objectives at one input.
struct MultiPosterior {
  Vec mean;            // length M
  linalg::Matrix cov;  // M x M (latent, no observation noise)
};

struct MultiTaskFitOptions {
  double init_noise = 0.1;
  double min_noise = 1e-4;
  int mle_restarts = 1;
  int max_mle_iters = 50;
};

/// Correlated multi-objective Gaussian process (intrinsic coregionalization
/// model, Bonilla et al. 2008) — Eq. (9) of the paper:
///
///   Cov(f_i(x), f_j(x')) = B[i,j] * k_C(x, x'),   B = L L^T,
///
/// where k_C is a unit-variance ARD Matern-5/2 kernel over directive
/// features and B is a freely learned task covariance capturing e.g. the
/// negative latency/LUT and positive power/LUT correlations the paper calls
/// out. All M objectives are observed at every training input (the FPGA
/// tool reports all of PPA per run), which the stacked-Gram layout assumes.
class MultiTaskGp {
 public:
  /// `input_kernel` must be unit-variance (output scales live in B).
  MultiTaskGp(const Kernel& input_kernel, std::size_t num_tasks,
              MultiTaskFitOptions opts = {});
  MultiTaskGp(const MultiTaskGp& o);
  MultiTaskGp& operator=(const MultiTaskGp& o);
  MultiTaskGp(MultiTaskGp&&) = default;
  MultiTaskGp& operator=(MultiTaskGp&&) = default;

  /// Fit hyperparameters; y is n x M (row i = all objectives at x[i]).
  void fit(const Dataset& x, const linalg::Matrix& y, rng::Rng& rng);
  /// Rebuild the posterior with current hyperparameters on new data.
  void refitPosterior(const Dataset& x, const linalg::Matrix& y);

  MultiPosterior predict(const Vec& x) const;

  /// Learned task covariance B (standardized-target units).
  linalg::Matrix taskCovariance() const;
  /// Task correlation matrix derived from B.
  linalg::Matrix taskCorrelation() const;
  double logMarginalLikelihood() const { return lml_; }
  std::size_t numTasks() const { return m_; }
  std::size_t numData() const { return x_.size(); }
  bool fitted() const { return chol_.has_value(); }
  const Kernel& inputKernel() const { return *kernel_; }

  // Packed parameter layout:
  //   [0, nk)                      kernel log-params
  //   [nk, nk + M(M+1)/2)          L entries, row-major lower triangle;
  //                                diagonal entries stored as logs
  //   [nk + M(M+1)/2, ... + M)     per-task log noise stddev
  // Exposed so checkpoints can journal the hyperparameters: fit()
  // warm-starts MLE from the current packed vector, so a resumed run must
  // restore it to stay trajectory-identical. applyPacked is pure parameter
  // assignment — it does not touch the cached posterior.
  Vec packedParams() const;
  void applyPacked(const Vec& p);

  /// Negative log marginal likelihood (and, if grad != nullptr, its analytic
  /// gradient) at arbitrary packed parameters, evaluated on the cached
  /// training data (set by fit()/refitPosterior()). Exposed for the
  /// finite-difference gradient-check test battery; does not mutate state.
  double evalNegLogMarginalLikelihood(const Vec& packed,
                                      Vec* grad = nullptr) const;

  /// Total L-BFGS iterations spent across all restarts in the last fit().
  int lastFitIterations() const { return last_fit_iters_; }
  /// Condition estimate of the fitted stacked (noise-augmented) Gram matrix.
  double gramConditionEstimate() const {
    return chol_ ? chol_->conditionEstimate() : 1.0;
  }

 private:
  std::size_t numPacked() const;
  static linalg::Matrix buildB(const Vec& l_entries, std::size_t m);
  double negLml(const Vec& packed, Vec& grad) const;
  linalg::Matrix buildStackedGram(const Kernel& k, const Vec& l_entries,
                                  const Vec& log_noise) const;

  KernelPtr kernel_;
  std::size_t m_;
  MultiTaskFitOptions opts_;
  Vec l_entries_;   // lower-triangular parameterization of B
  Vec log_noise_;   // per task
  int last_fit_iters_ = 0;

  // Cached posterior state.
  Dataset x_;
  std::vector<linalg::Standardizer> standardizers_;
  Vec y_stacked_;  // task-major: index m*n + i
  std::optional<linalg::Cholesky> chol_;
  Vec alpha_;
  double lml_ = 0.0;
};

}  // namespace cmmfo::gp
