#pragma once

#include <optional>

#include "gp/kernel.h"
#include "gp/posterior_state.h"
#include "linalg/cholesky.h"
#include "linalg/stats.h"
#include "rng/rng.h"

namespace cmmfo::gp {

/// Joint Gaussian posterior over M correlated objectives at one input.
struct MultiPosterior {
  Vec mean;            // length M
  linalg::Matrix cov;  // M x M (latent, no observation noise)
};

struct MultiTaskFitOptions {
  double init_noise = 0.1;
  double min_noise = 1e-4;
  int mle_restarts = 1;
  int max_mle_iters = 50;
};

/// Correlated multi-objective Gaussian process (intrinsic coregionalization
/// model, Bonilla et al. 2008) — Eq. (9) of the paper:
///
///   Cov(f_i(x), f_j(x')) = B[i,j] * k_C(x, x'),   B = L L^T,
///
/// where k_C is a unit-variance ARD Matern-5/2 kernel over directive
/// features and B is a freely learned task covariance capturing e.g. the
/// negative latency/LUT and positive power/LUT correlations the paper calls
/// out. All M objectives are observed at every training input (the FPGA
/// tool reports all of PPA per run), which the stacked-Gram layout assumes.
class MultiTaskGp {
 public:
  /// `input_kernel` must be unit-variance (output scales live in B).
  MultiTaskGp(const Kernel& input_kernel, std::size_t num_tasks,
              MultiTaskFitOptions opts = {});
  MultiTaskGp(const MultiTaskGp& o);
  MultiTaskGp& operator=(const MultiTaskGp& o);
  MultiTaskGp(MultiTaskGp&&) = default;
  MultiTaskGp& operator=(MultiTaskGp&&) = default;

  /// Fit hyperparameters; y is n x M (row i = all objectives at x[i]).
  void fit(const Dataset& x, const linalg::Matrix& y, rng::Rng& rng);
  /// Rebuild the posterior densely (O((nM)^3)) with current
  /// hyperparameters on new data; factor rows return to task-major order.
  void refitPosterior(const Dataset& x, const linalg::Matrix& y);

  /// Append one point (all M objectives) with M rank-append factor updates,
  /// O((nM)^2) total. The stacked Gram is task-major, where a new point
  /// inserts interior rows; instead the appended rows go at the factor's
  /// tail ("bordered" ordering — a symmetric permutation of the task-major
  /// matrix, so the posterior is exact; predictions agree with a dense
  /// refit to roundoff, though not bit-for-bit). Falls back to a dense
  /// rebuild when numerically unsafe; returns true on the incremental path.
  bool appendObservation(const Vec& x, const Vec& y_row);

  /// Exact rollback to the first n points (inverse of appendObservation) —
  /// Kriging-believer speculation. n must cover the dense base block.
  void truncateToPoints(std::size_t n);

  /// Points covered by the last dense factorization (appended points sit on
  /// top in bordered order). Journaled by checkpoints so resume can replay
  /// dense(base) + appends bit-identically.
  std::size_t denseBasePoints() const { return state_.base_rows / m_; }

  MultiPosterior predict(const Vec& x) const;
  /// Batched prediction: one cross-Gram build + one multi-RHS solve for the
  /// whole candidate block. Per candidate bit-identical to predict().
  std::vector<MultiPosterior> predictBatch(const Dataset& x) const;

  /// Learned task covariance B (standardized-target units).
  linalg::Matrix taskCovariance() const;
  /// Task correlation matrix derived from B.
  linalg::Matrix taskCorrelation() const;
  double logMarginalLikelihood() const { return state_.lml; }
  std::size_t numTasks() const { return m_; }
  std::size_t numData() const { return x_.size(); }
  bool fitted() const { return state_.fitted(); }
  const Kernel& inputKernel() const { return *kernel_; }

  // Packed parameter layout:
  //   [0, nk)                      kernel log-params
  //   [nk, nk + M(M+1)/2)          L entries, row-major lower triangle;
  //                                diagonal entries stored as logs
  //   [nk + M(M+1)/2, ... + M)     per-task log noise stddev
  // Exposed so checkpoints can journal the hyperparameters: fit()
  // warm-starts MLE from the current packed vector, so a resumed run must
  // restore it to stay trajectory-identical. applyPacked is pure parameter
  // assignment — it does not touch the cached posterior.
  Vec packedParams() const;
  void applyPacked(const Vec& p);

  /// Negative log marginal likelihood (and, if grad != nullptr, its analytic
  /// gradient) at arbitrary packed parameters, evaluated on the cached
  /// training data (set by fit()/refitPosterior()). Exposed for the
  /// finite-difference gradient-check test battery; does not mutate state.
  double evalNegLogMarginalLikelihood(const Vec& packed,
                                      Vec* grad = nullptr) const;

  /// Total L-BFGS iterations spent across all restarts in the last fit().
  int lastFitIterations() const { return last_fit_iters_; }
  /// Condition estimate of the fitted stacked (noise-augmented) Gram matrix.
  double gramConditionEstimate() const {
    return state_.chol ? state_.chol->conditionEstimate() : 1.0;
  }
  /// Factorizations that needed the escalated jitter ladder (cumulative;
  /// diffed across fits by the self-healing layer) and the jitter the last
  /// rescue used.
  std::uint64_t jitterEscalations() const { return state_.jitter_escalations; }
  double lastEscalationJitter() const { return state_.last_escalation_jitter; }

 private:
  std::size_t numPacked() const;
  static linalg::Matrix buildB(const Vec& l_entries, std::size_t m);
  double negLml(const Vec& packed, Vec& grad) const;
  linalg::Matrix buildStackedGram(const Kernel& k, const Vec& l_entries,
                                  const Vec& log_noise) const;
  /// Restandardize y_raw_, refresh state_.y_std in factor-row order, and
  /// re-solve targets (shared by the append and truncate paths).
  void resolveTargets();

  KernelPtr kernel_;
  std::size_t m_;
  MultiTaskFitOptions opts_;
  Vec l_entries_;   // lower-triangular parameterization of B
  Vec log_noise_;   // per task
  int last_fit_iters_ = 0;

  // Cached training data and shared posterior core. After a dense refit the
  // factor rows are task-major (row = m*n + i); appended points add their M
  // rows at the tail instead, and the row_point_/row_task_ maps record the
  // factor-row -> (point, task) ordering either way.
  Dataset x_;
  linalg::Matrix y_raw_;  // n x M original-unit targets
  PosteriorState state_;
  std::vector<std::size_t> row_point_;
  std::vector<std::size_t> row_task_;
};

}  // namespace cmmfo::gp
