#pragma once

#include "gp/kernel.h"

namespace cmmfo::gp {

/// Shared implementation for stationary ARD kernels parameterized by
/// per-dimension log-lengthscales and (optionally) a log signal stddev.
///
/// When `unit_variance` is true the signal variance is pinned at 1 and not
/// exposed as a parameter — used inside the multi-task model where the task
/// covariance matrix B already carries all output scales (Eq. 9 of the
/// paper: Sigma_ij = K_ij * k_C(x, x')).
class ArdKernelBase : public Kernel {
 public:
  ArdKernelBase(std::size_t dim, bool unit_variance);

  std::size_t dim() const { return dim_; }
  double lengthscale(std::size_t d) const;
  double signalVariance() const;
  void setLengthscale(std::size_t d, double value);
  void setSignalStddev(double value);

  std::size_t numParams() const override;
  Vec params() const override;
  void setParams(const Vec& p) override;

  double eval(const Vec& x, const Vec& y) const override;
  linalg::Matrix gramGrad(const Dataset& x, std::size_t p) const override;
  /// Median-distance heuristic: per-dimension lengthscale = median of the
  /// non-zero pairwise |x_d - y_d| (subsampled), floored at 1e-3.
  void initFromData(const Dataset& x) override;
  void scaleLengthscales(double factor) override;

 protected:
  /// Scaled squared distance r2 = sum_d (x_d - y_d)^2 / l_d^2.
  double scaledSqDist(const Vec& x, const Vec& y) const;
  /// Kernel value as a function of r2 (excluding the signal variance).
  virtual double shape(double r2) const = 0;
  /// d shape / d r2.
  virtual double shapeGradR2(double r2) const = 0;

  std::size_t dim_;
  bool unit_variance_;
  Vec log_ls_;          // per-dimension log lengthscales
  double log_sf_ = 0.0; // log signal stddev (ignored if unit_variance_)

 private:
  /// Re-derive the cached exp(-log_ls_) / exp(2 log_sf_) values. Every
  /// parameter mutator calls this so eval() spends no transcendentals on
  /// parameters — the same exp of the same argument, just hoisted out of
  /// the O(n^2) pair loops, so kernel values are bit-identical.
  void refreshParamCache();
  Vec inv_ls_;          // exp(-log_ls_) per dimension
  double sf2_ = 1.0;    // exp(2 log_sf_), pinned at 1 when unit_variance_
};

/// Squared-exponential (RBF) ARD kernel:
///   k(x,y) = sf^2 * exp(-r2 / 2).
class RbfArd final : public ArdKernelBase {
 public:
  explicit RbfArd(std::size_t dim, bool unit_variance = false)
      : ArdKernelBase(dim, unit_variance) {}
  std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<RbfArd>(*this);
  }
  std::string name() const override { return "RbfArd"; }

 protected:
  double shape(double r2) const override;
  double shapeGradR2(double r2) const override;
};

/// Matern-5/2 ARD kernel (the paper's choice, "to avoid unrealistic
/// smoothness"):
///   k(x,y) = sf^2 * (1 + sqrt(5) r + 5 r^2 / 3) exp(-sqrt(5) r),  r = sqrt(r2).
class Matern52Ard final : public ArdKernelBase {
 public:
  explicit Matern52Ard(std::size_t dim, bool unit_variance = false)
      : ArdKernelBase(dim, unit_variance) {}
  std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<Matern52Ard>(*this);
  }
  std::string name() const override { return "Matern52Ard"; }

 protected:
  double shape(double r2) const override;
  double shapeGradR2(double r2) const override;
};

}  // namespace cmmfo::gp
