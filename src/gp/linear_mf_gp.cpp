#include "gp/linear_mf_gp.h"

#include <cassert>
#include <cmath>

#include "gp/ard_kernels.h"

namespace cmmfo::gp {

LinearMfGp::LinearMfGp(std::size_t input_dim, std::size_t num_levels,
                       GpFitOptions opts)
    : input_dim_(input_dim), opts_(opts) {
  assert(num_levels >= 1);
  const Matern52Ard proto(input_dim, /*unit_variance=*/false);
  models_.reserve(num_levels);
  for (std::size_t l = 0; l < num_levels; ++l) models_.emplace_back(proto, opts_);
  rhos_.assign(num_levels, 1.0);
}

void LinearMfGp::fit(const std::vector<FidelityData>& data, rng::Rng& rng) {
  assert(data.size() == models_.size());
  models_[0].fit(data[0].x, data[0].y, rng);
  for (std::size_t l = 1; l < models_.size(); ++l) {
    const auto& dl = data[l];
    assert(!dl.x.empty() && dl.x.size() == dl.y.size());
    // rho = argmin sum (y - rho * mu_lower)^2 = <mu, y> / <mu, mu>.
    double num = 0.0, den = 0.0;
    Vec mu_lower(dl.x.size());
    for (std::size_t i = 0; i < dl.x.size(); ++i) {
      mu_lower[i] = predict(l - 1, dl.x[i]).mean;
      num += mu_lower[i] * dl.y[i];
      den += mu_lower[i] * mu_lower[i];
    }
    rhos_[l] = den > 1e-12 ? num / den : 1.0;
    Vec resid(dl.x.size());
    for (std::size_t i = 0; i < dl.x.size(); ++i)
      resid[i] = dl.y[i] - rhos_[l] * mu_lower[i];
    models_[l].fit(dl.x, resid, rng);
  }
}

Posterior LinearMfGp::predict(std::size_t level, const Vec& x) const {
  assert(level < models_.size());
  if (level == 0) return models_[0].predict(x);
  const Posterior lower = predict(level - 1, x);
  const Posterior delta = models_[level].predict(x);
  Posterior post;
  post.mean = rhos_[level] * lower.mean + delta.mean;
  post.var = rhos_[level] * rhos_[level] * lower.var + delta.var;
  return post;
}

Posterior LinearMfGp::predictHighest(const Vec& x) const {
  return predict(models_.size() - 1, x);
}

}  // namespace cmmfo::gp
