#include "scenario/generator.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>

#include "rng/rng.h"

namespace cmmfo::scenario {

namespace {

// Keep in sync with GeneratorParams::target_raw_size's default (the name
// grammar omits ":size=" exactly when the target is this value).
constexpr double kDefaultTargetRawSize = 1e4;

// Power-of-two trip counts keep unroll-factor lists divisor-rich.
constexpr int kTripMenu[] = {8, 16, 32, 64, 128, 256};
constexpr int kSizeMenu[] = {64, 128, 256, 512, 1024, 4096};

std::string loopName(int i) { return "L" + std::to_string(i); }
std::string arrayName(int i) { return "A" + std::to_string(i); }

hls::Kernel buildKernel(const GeneratorParams& p, rng::Rng& rng) {
  hls::Kernel k("scn" + std::to_string(p.seed));

  const int n_arrays =
      1 + static_cast<int>(rng.index(
              static_cast<std::size_t>(std::max(p.max_arrays, 1))));
  for (int a = 0; a < n_arrays; ++a)
    k.addArray(arrayName(a), kSizeMenu[rng.index(6)], 32);

  // Loop forest: chains with an occasional fork, depth-capped. Unique names
  // in creation order (the space parser resolves names first-match, so
  // uniqueness is what makes the spec text round-trip).
  const int n_top =
      1 + static_cast<int>(rng.index(
              static_cast<std::size_t>(std::max(p.max_top_loops, 1))));
  const int max_depth = std::max(p.max_depth, 1);
  int counter = 0;
  for (int t = 0; t < n_top; ++t) {
    const hls::LoopId top = k.addLoop(loopName(counter++), kTripMenu[rng.index(6)]);
    hls::LoopId cur = top;
    int depth = 1;
    while (depth < max_depth && rng.bernoulli(p.child_prob)) {
      cur = k.addLoop(loopName(counter++), kTripMenu[rng.index(6)], cur);
      ++depth;
    }
    // A fork: a second leaf body sharing the nest's outer loop.
    if (cur != top && rng.bernoulli(0.3))
      k.addLoop(loopName(counter++), kTripMenu[rng.index(6)], top);
  }

  // Bodies: innermost loops carry the compute and the array traffic; outer
  // loops only light bookkeeping.
  std::vector<hls::LoopId> innermost;
  for (std::size_t li = 0; li < k.numLoops(); ++li)
    if (k.isInnermost(static_cast<hls::LoopId>(li)))
      innermost.push_back(static_cast<hls::LoopId>(li));

  for (std::size_t li = 0; li < k.numLoops(); ++li) {
    const auto l = static_cast<hls::LoopId>(li);
    hls::Loop& loop = k.loop(l);
    if (!k.isInnermost(l)) {
      loop.body_ops[hls::OpKind::kAdd] = static_cast<int>(rng.index(3));
      loop.body_ops[hls::OpKind::kCmp] = static_cast<int>(rng.index(2));
      continue;
    }
    const int n_refs = 1 + static_cast<int>(rng.index(2));
    int loads = 0, stores = 0;
    for (int r = 0; r < n_refs; ++r) {
      hls::ArrayRef ref;
      ref.array = static_cast<hls::ArrayId>(rng.index(k.numArrays()));
      // The innermost induction variable is the unit-stride (minor) index;
      // an enclosing loop sometimes enters as the strided (major) index —
      // the A[i*N + j] shape Algorithm 1's cyclic/block rules key on.
      ref.index.push_back({l, hls::IndexRole::kMinor});
      if (loop.parent != hls::kNoLoop && rng.bernoulli(0.5))
        ref.index.push_back({loop.parent, hls::IndexRole::kMajor});
      ref.is_write = r == n_refs - 1 && rng.bernoulli(0.5);
      ref.count = 1 + static_cast<int>(rng.index(2));
      (ref.is_write ? stores : loads) += ref.count;
      loop.refs.push_back(std::move(ref));
    }
    loop.body_ops[hls::OpKind::kAdd] = 1 + static_cast<int>(rng.index(4));
    loop.body_ops[hls::OpKind::kMul] = static_cast<int>(rng.index(4));
    loop.body_ops[hls::OpKind::kCmp] = static_cast<int>(rng.index(2));
    loop.body_ops[hls::OpKind::kLogic] = static_cast<int>(rng.index(2));
    loop.body_ops[hls::OpKind::kLoad] = loads;
    loop.body_ops[hls::OpKind::kStore] = stores;
    if (rng.bernoulli(p.recurrence_prob)) {
      loop.loop_carried_dep = true;
      loop.dep_distance = 1 + static_cast<int>(rng.index(2));
    }
  }

  // Every array must be referenced somewhere (loopsIndexingArray-driven
  // factor lists and die crossings both assume live arrays).
  for (std::size_t a = 0; a < k.numArrays(); ++a) {
    if (!k.loopsIndexingArray(static_cast<hls::ArrayId>(a)).empty()) continue;
    const hls::LoopId l = innermost[rng.index(innermost.size())];
    hls::ArrayRef ref;
    ref.array = static_cast<hls::ArrayId>(a);
    ref.index.push_back({l, hls::IndexRole::kMinor});
    ref.count = 1;
    k.loop(l).refs.push_back(std::move(ref));
    k.loop(l).body_ops[hls::OpKind::kLoad] += 1;
  }
  return k;
}

hls::SpaceSpec buildSpec(const hls::Kernel& k, const GeneratorParams& p,
                         rng::Rng& rng) {
  hls::SpaceSpec spec;
  spec.loops.resize(k.numLoops());
  spec.arrays.resize(k.numArrays());

  for (std::size_t li = 0; li < k.numLoops(); ++li) {
    const auto l = static_cast<hls::LoopId>(li);
    hls::LoopSiteOptions& site = spec.loops[li];
    site.unroll_factors =
        hls::divisorFactors(k.loop(l).trip_count, std::max(p.max_factor, 1));
    if (k.isInnermost(l) && rng.bernoulli(p.pipeline_prob)) {
      site.allow_pipeline = true;
      site.pipeline_iis = {1, 2};
    }
    // When pipeline is off, pipeline_iis stays at the default {1}: the
    // parser cannot represent a non-default II list behind a missing
    // `pipeline` clause, and the spec must round-trip bitwise.
  }

  for (std::size_t ai = 0; ai < k.numArrays(); ++ai) {
    const auto a = static_cast<hls::ArrayId>(ai);
    hls::ArraySiteOptions& site = spec.arrays[ai];
    // Partition kinds are role-driven, not random: cyclic banks unit-stride
    // (minor) accesses, block banks strided (major) ones, so offering the
    // kind each indexing loop's role calls for guarantees every unroll in
    // the space has a compatible seed for Algorithm 1 to grow from. A
    // random menu can leave an array with only the wrong-role kind, which
    // silently strands its loops at unroll=1 in the pruned space.
    site.types = {hls::PartitionType::kNone};
    bool has_minor = false, has_major = false;
    for (hls::LoopId l : k.loopsIndexingArray(a)) {
      (k.roleOf(l, a) == hls::IndexRole::kMajor ? has_major : has_minor) =
          true;
    }
    if (has_minor) site.types.push_back(hls::PartitionType::kCyclic);
    if (has_major) site.types.push_back(hls::PartitionType::kBlock);
    if (k.array(a).size <= 64 && rng.bernoulli(0.3))
      site.types.push_back(hls::PartitionType::kComplete);
    // Factor menu = the indexing loops' unroll factors: every unroll the
    // space offers has a matching banking, which is what keeps the pruned
    // space's eps-regret against the raw front small (docs/scenarios.md).
    std::vector<int> fs;
    for (hls::LoopId l : k.loopsIndexingArray(a))
      for (int f : spec.loops[l].unroll_factors)
        if (f > 1 && std::find(fs.begin(), fs.end(), f) == fs.end())
          fs.push_back(f);
    std::sort(fs.begin(), fs.end());
    if (fs.empty()) fs.push_back(2);
    site.factors = std::move(fs);
  }
  return spec;
}

/// Deterministically remove one option at a time (largest list first, fixed
/// tie-break order) until the raw size is within 4x of the target.
void shrinkToward(hls::SpaceSpec& spec, double target) {
  while (spec.rawSize() > 4.0 * target) {
    std::size_t best_len = 1;
    std::vector<int>* best_list = nullptr;
    std::vector<hls::PartitionType>* best_types = nullptr;
    for (auto& l : spec.loops) {
      if (l.unroll_factors.size() > best_len) {
        best_len = l.unroll_factors.size();
        best_list = &l.unroll_factors;
        best_types = nullptr;
      }
      if (l.allow_pipeline && l.pipeline_iis.size() > best_len) {
        best_len = l.pipeline_iis.size();
        best_list = &l.pipeline_iis;
        best_types = nullptr;
      }
    }
    for (auto& a : spec.arrays) {
      if (a.factors.size() > best_len) {
        best_len = a.factors.size();
        best_list = &a.factors;
        best_types = nullptr;
      }
      if (a.types.size() > best_len) {
        best_len = a.types.size();
        best_list = nullptr;
        best_types = &a.types;
      }
    }
    if (best_list) {
      best_list->pop_back();  // drop the largest factor/II
    } else if (best_types) {
      best_types->pop_back();  // kNone sits first and always survives
    } else {
      // All lists are singletons; the last shavable richness is pipelining.
      bool dropped = false;
      for (auto it = spec.loops.rbegin(); it != spec.loops.rend(); ++it) {
        if (!it->allow_pipeline) continue;
        it->allow_pipeline = false;
        it->pipeline_iis = {1};
        dropped = true;
        break;
      }
      if (!dropped) break;  // structural floor reached
    }
  }
}

/// Deterministically add one option at a time (fixed priority ladder) until
/// the raw size is within 1/4 of the target or no move remains.
void growToward(const hls::Kernel& k, hls::SpaceSpec& spec, double target,
                int max_factor) {
  constexpr int kIiMenu[] = {1, 2, 3, 4, 6, 8};
  while (spec.rawSize() < 0.25 * target) {
    bool moved = false;
    // 1) Pipeline an innermost loop that does not offer it yet.
    for (std::size_t li = 0; li < spec.loops.size() && !moved; ++li) {
      if (spec.loops[li].allow_pipeline ||
          !k.isInnermost(static_cast<hls::LoopId>(li)))
        continue;
      spec.loops[li].allow_pipeline = true;
      spec.loops[li].pipeline_iis = {1, 2};
      moved = true;
    }
    // 2) Extend the shortest II list.
    if (!moved) {
      std::vector<int>* shortest = nullptr;
      for (auto& l : spec.loops)
        if (l.allow_pipeline && l.pipeline_iis.size() < std::size(kIiMenu) &&
            (!shortest || l.pipeline_iis.size() < shortest->size()))
          shortest = &l.pipeline_iis;
      if (shortest) {
        shortest->push_back(kIiMenu[shortest->size()]);
        moved = true;
      }
    }
    // 3) Extend the shortest partition-factor list (doubling ladder).
    if (!moved) {
      for (std::size_t ai = 0; ai < spec.arrays.size() && !moved; ++ai) {
        auto& site = spec.arrays[ai];
        const int next = site.factors.empty() ? 2 : 2 * site.factors.back();
        const int cap = std::min(std::max(max_factor, 2) * 4,
                                 k.array(static_cast<hls::ArrayId>(ai)).size);
        if (site.factors.size() < 6 && next <= cap) {
          site.factors.push_back(next);
          moved = true;
        }
      }
    }
    // 4) Offer the missing partition kinds.
    if (!moved) {
      for (auto& site : spec.arrays) {
        auto missing = [&](hls::PartitionType t) {
          return std::find(site.types.begin(), site.types.end(), t) ==
                 site.types.end();
        };
        if (missing(hls::PartitionType::kCyclic)) {
          site.types.push_back(hls::PartitionType::kCyclic);
          moved = true;
          break;
        }
        if (missing(hls::PartitionType::kBlock)) {
          site.types.push_back(hls::PartitionType::kBlock);
          moved = true;
          break;
        }
      }
    }
    if (!moved) break;  // richness ceiling for this kernel's structure
  }
}

sim::DieMap buildDieMap(const hls::Kernel& k, const GeneratorParams& p,
                        rng::Rng& rng) {
  sim::DieMap dm;
  if (p.num_dies <= 1) return dm;
  dm.num_dies = p.num_dies;

  // Whole nests live on one die (an HLS floorplanner would never split a
  // loop body): nest i -> die i mod D, arrays offset by one so even a
  // single-nest, single-array kernel crosses a boundary.
  dm.loop_die.assign(k.numLoops(), 0);
  const std::vector<hls::LoopId> tops = k.topLoops();
  for (std::size_t li = 0; li < k.numLoops(); ++li) {
    hls::LoopId root = static_cast<hls::LoopId>(li);
    while (k.loop(root).parent != hls::kNoLoop) root = k.loop(root).parent;
    const auto it = std::find(tops.begin(), tops.end(), root);
    dm.loop_die[li] =
        static_cast<int>((it - tops.begin()) % static_cast<std::size_t>(dm.num_dies));
  }
  dm.array_die.assign(k.numArrays(), 0);
  for (std::size_t a = 0; a < k.numArrays(); ++a)
    dm.array_die[a] =
        static_cast<int>((a + 1) % static_cast<std::size_t>(dm.num_dies));

  // Guarantee at least one crossing reference.
  bool crossing = false;
  for (std::size_t li = 0; li < k.numLoops() && !crossing; ++li)
    for (const hls::ArrayRef& ref : k.loop(static_cast<hls::LoopId>(li)).refs)
      if (dm.dieOfLoop(static_cast<hls::LoopId>(li)) !=
          dm.dieOfArray(ref.array)) {
        crossing = true;
        break;
      }
  if (!crossing) {
    for (std::size_t li = 0; li < k.numLoops() && !crossing; ++li) {
      const auto& refs = k.loop(static_cast<hls::LoopId>(li)).refs;
      if (refs.empty()) continue;
      dm.array_die[refs.front().array] =
          (dm.dieOfLoop(static_cast<hls::LoopId>(li)) + 1) % dm.num_dies;
      crossing = true;
    }
  }

  // Per-seed SLL budget (4k..16k bits per boundary): some scenarios route
  // comfortably, others hit the pool with aggressive unrolls.
  dm.sll_capacity_bits = 4000.0 * (1.0 + static_cast<double>(rng.index(4)));
  return dm;
}

std::uint64_t parseU64Token(const std::string& s, const std::string& name) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("bad scenario name '" + name + "': expected a "
                                "non-negative integer, got '" + s + "'");
  try {
    return std::stoull(s);
  } catch (...) {
    throw std::invalid_argument("bad scenario name '" + name +
                                "': integer out of range '" + s + "'");
  }
}

}  // namespace

Scenario generate(const GeneratorParams& p) {
  rng::Rng rng(0x5CE9A210F00DULL ^ (p.seed * 0x9E3779B97F4A7C15ULL));

  hls::Kernel kernel = buildKernel(p, rng);
  hls::SpaceSpec spec = buildSpec(kernel, p, rng);
  const double target = std::max(p.target_raw_size, 1.0);
  shrinkToward(spec, target);
  growToward(kernel, spec, target, p.max_factor);

  sim::SimParams sp;
  sp.divergence = 0.2 + 0.6 * rng.uniform();
  sim::DieMap dm = buildDieMap(kernel, p, rng);

  const std::string err = kernel.validate();
  if (!err.empty())
    throw std::logic_error("scenario generator produced an invalid kernel: " +
                           err);

  Scenario sc;
  sc.params = p;
  sc.name = scenarioName(p);
  std::string desc = "generated scenario seed=" + std::to_string(p.seed);
  if (p.num_dies > 1) desc += " dies=" + std::to_string(p.num_dies);
  sc.benchmark = std::make_shared<const bench_suite::Benchmark>(
      bench_suite::Benchmark{std::move(kernel), std::move(spec), sp,
                             std::move(desc), std::move(dm)});
  return sc;
}

std::string scenarioName(const GeneratorParams& p) {
  std::string n = "scenario:" + std::to_string(p.seed);
  if (p.num_dies > 1) n += ":dies=" + std::to_string(p.num_dies);
  if (p.target_raw_size != kDefaultTargetRawSize)
    n += ":size=" +
         std::to_string(static_cast<long long>(std::llround(p.target_raw_size)));
  return n;
}

bool isScenarioName(const std::string& name) {
  return name.rfind("scenario:", 0) == 0;
}

Scenario generateFromName(const std::string& name) {
  if (!isScenarioName(name))
    throw std::invalid_argument("not a scenario name: '" + name + "'");
  GeneratorParams p;
  std::vector<std::string> parts;
  {
    std::string rest = name.substr(9);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
      const std::size_t colon = rest.find(':', pos);
      parts.push_back(rest.substr(pos, colon - pos));
      if (colon == std::string::npos) break;
      pos = colon + 1;
    }
  }
  if (parts.empty() || parts[0].empty())
    throw std::invalid_argument("bad scenario name '" + name +
                                "': missing seed");
  p.seed = parseU64Token(parts[0], name);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& t = parts[i];
    if (t.rfind("dies=", 0) == 0) {
      const std::uint64_t d = parseU64Token(t.substr(5), name);
      if (d < 1 || d > 16)
        throw std::invalid_argument("bad scenario name '" + name +
                                    "': dies must be in [1, 16]");
      p.num_dies = static_cast<int>(d);
    } else if (t.rfind("size=", 0) == 0) {
      const std::uint64_t s = parseU64Token(t.substr(5), name);
      if (s < 1)
        throw std::invalid_argument("bad scenario name '" + name +
                                    "': size must be >= 1");
      p.target_raw_size = static_cast<double>(s);
    } else {
      throw std::invalid_argument("bad scenario name '" + name +
                                  "': unknown key '" + t + "'");
    }
  }
  return generate(p);
}

}  // namespace cmmfo::scenario
