#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bench_suite/benchmarks.h"

namespace cmmfo::scenario {

/// Knobs of the procedural kernel generator. A scenario — kernel IR,
/// directive space, die map, simulator params — is a pure function of this
/// struct: same params, bit-identical scenario, on every platform (the
/// generator draws only from rng::Rng).
struct GeneratorParams {
  std::uint64_t seed = 1;
  /// Dies on the simulated device; 1 = classic single-die (die model off).
  /// With more dies the generator spreads loop nests and arrays so at least
  /// one loop-array pair crosses a die boundary.
  int num_dies = 1;
  /// Desired RAW Cartesian size of the directive space. The generator
  /// deterministically trims/grows per-site option lists toward it; the
  /// achieved size is within a small factor when the structural floor and
  /// ceiling allow (tiny kernels cannot reach 1e6; see docs/scenarios.md).
  double target_raw_size = 1e4;

  // ---- Structural richness. ----
  int max_top_loops = 2;  ///< loop nests (>= 1)
  int max_depth = 3;      ///< max nesting depth of each nest
  int max_arrays = 3;     ///< arrays (>= 1)
  int max_factor = 16;    ///< unroll/partition factor ceiling
  double child_prob = 0.55;       ///< chance a loop gets a child (per level)
  double recurrence_prob = 0.25;  ///< chance an innermost loop carries a dep
  double pipeline_prob = 0.6;     ///< chance an innermost loop offers PIPELINE

  bool operator==(const GeneratorParams&) const = default;
};

/// A generated benchmark plus its provenance. The benchmark rides a
/// shared_ptr because FpgaToolSim keeps a raw pointer into the kernel:
/// anything building a simulator from a scenario must co-own the benchmark
/// (the server's makeBenchmarkFor lifetime pattern) or the kernel dangles.
struct Scenario {
  std::string name;  ///< canonical "scenario:<seed>[:dies=d][:size=S]"
  GeneratorParams params;
  std::shared_ptr<const bench_suite::Benchmark> benchmark;

  const hls::Kernel& kernel() const { return benchmark->kernel; }
  const hls::SpaceSpec& spec() const { return benchmark->spec; }
};

/// Generate deterministically from params. The returned kernel always
/// passes Kernel::validate() and the spec round-trips bitwise through
/// hls::formatSpaceSpec / parseSpaceSpec.
Scenario generate(const GeneratorParams& p);

/// Canonical name: "scenario:<seed>", plus ":dies=<d>" when num_dies > 1
/// and ":size=<raw>" when target_raw_size differs from the default. Only
/// those three knobs are name-encodable; the structural knobs must stay at
/// their defaults for a scenario to be reachable by name (which is what the
/// server's journal-resume path needs).
std::string scenarioName(const GeneratorParams& p);

/// True when `name` uses the scenario grammar (i.e. starts "scenario:").
bool isScenarioName(const std::string& name);

/// Parse a scenario name and generate it. Throws std::invalid_argument on
/// a malformed name (bad seed, unknown key, dies < 1, size < 1).
Scenario generateFromName(const std::string& name);

}  // namespace cmmfo::scenario
