#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hls/design_space.h"
#include "scenario/generator.h"
#include "sim/ground_truth.h"
#include "sim/tool.h"

namespace cmmfo::scenario {

struct OracleOptions {
  /// Refuse to build (return nullptr) when the pruned space exceeds this —
  /// exhaustive enumeration of every fidelity is the whole point of the
  /// oracle, and it must stay cheap enough for CI.
  std::size_t enum_cap = 50000;
  /// Cap on raw-Cartesian enumeration inside auditPruning. When the raw
  /// space is larger, the audit covers a truncated odometer prefix and
  /// reports raw_complete = false.
  std::size_t raw_cap = 200000;
  std::uint64_t sim_seed = 42;
};

/// Result of checking Algorithm 1 against the exhaustively enumerated raw
/// space. Two fronts are audited separately because they test different
/// claims:
///
/// - The COMPATIBLE front (raw-front of configs satisfying Algorithm 1's
///   enumeration premise: every unrolled loop finds each array it indexes
///   banked in the scheme serving that loop's role, bank count tiling the
///   unroll) tests the pruner's enumeration: everything its own premises
///   call good must be eps-covered by the pruned set. A violation here is a
///   pruner bug (lost odometer branch, bad backtracking). This is the gate.
///
/// - The FULL front additionally contains configs the pruner rejects on
///   principle (e.g. unroll over an unpartitioned array: the dual-port
///   BRAM still serves 2 accesses/cycle, so at small factors most of the
///   speedup survives WITHOUT the banking LUT cost, and such points are
///   genuinely non-dominated). Their distance to the pruned set is the
///   measured price of the paper's heuristic — reported, never gated.
struct PruningAudit {
  std::size_t raw_enumerated = 0;
  bool raw_complete = false;
  double eps = 0.0;
  /// Compatible-front coverage (the gate).
  std::size_t compat_front_size = 0;
  std::size_t violations = 0;
  double max_regret = 0.0;
  double mean_regret = 0.0;
  /// Full-front heuristic cost (report-only).
  std::size_t raw_front_size = 0;
  double full_max_regret = 0.0;
  double full_mean_regret = 0.0;
};

/// Exhaustive ground truth for one generated scenario: the pruned design
/// space, a simulator with the scenario's die map installed, per-fidelity
/// reports for every config, the true Pareto set, and oracle-ADRS scoring
/// identical to exp::BenchmarkContext (normalized by the valid impl-range,
/// Euclidean ADRS, worst-corner fallback).
class Oracle {
 public:
  /// nullptr when the pruned space exceeds opts.enum_cap.
  static std::unique_ptr<Oracle> build(const Scenario& sc,
                                       const OracleOptions& opts = {});

  const hls::DesignSpace& space() const { return *space_; }
  const sim::FpgaToolSim& sim() const { return *sim_; }
  /// Mutable overload: DseMethod::run needs to reset/charge accounting.
  sim::FpgaToolSim& sim() { return *sim_; }
  const sim::GroundTruth& groundTruth() const { return *gt_; }
  const OracleOptions& options() const { return opts_; }

  /// Oracle ADRS of a selection of pruned-space config indices against the
  /// true (impl, valid) Pareto set. 0 means every true-front point matched.
  double adrsOf(const std::vector<std::size_t>& selected) const;

  /// ADRS of the front AS SEEN at fidelity f against the true front: 0 at
  /// kImpl by construction; positive at lower fidelities exactly when they
  /// mislead (e.g. die-blind stages on a multi-die scenario).
  double fidelityGap(sim::Fidelity f) const;

  /// Enumerate the raw Cartesian space (capped) and measure the pruned
  /// space's eps-regret against the raw Pareto front.
  PruningAudit auditPruning(double eps) const;

 private:
  Oracle() = default;

  // Order matters for destruction: sim_ holds a raw pointer into
  // benchmark_->kernel, gt_ reads space_ and sim_.
  std::shared_ptr<const bench_suite::Benchmark> benchmark_;
  OracleOptions opts_;
  std::unique_ptr<hls::DesignSpace> space_;
  std::unique_ptr<sim::FpgaToolSim> sim_;
  std::unique_ptr<sim::GroundTruth> gt_;
  std::vector<double> lo_, hi_;  // valid impl-objective ranges
};

}  // namespace cmmfo::scenario
