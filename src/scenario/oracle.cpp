#include "scenario/oracle.h"

#include <algorithm>
#include <cmath>

#include "hls/pruner.h"
#include "pareto/adrs.h"
#include "pareto/dominance.h"

namespace cmmfo::scenario {

namespace {

pareto::Point normalizeBy(const pareto::Point& p, const std::vector<double>& lo,
                          const std::vector<double>& hi) {
  pareto::Point q(p.size());
  for (std::size_t m = 0; m < p.size(); ++m) {
    const double range = std::max(hi[m] - lo[m], 1e-12);
    q[m] = (p[m] - lo[m]) / range;
  }
  return q;
}

/// Algorithm 1's ENUMERATION premise, independently re-derived from the
/// paper's rules (NOT from the enumerator's code — the audit exists to
/// catch enumerator bugs) and stricter than hls::isCompatibleConfig:
///
/// - cyclic/block banking: every unrolled loop must find each array it
///   indexes banked in the scheme serving that loop's own access role,
///   with the bank count tiling the unroll factor. isCompatibleConfig
///   also admits wrong-role banking (the perf model charges it instead of
///   rejecting it, and backtracking can derive it for secondary arrays
///   under mixed-role access), but the enumerator never unrolls a
///   wrong-role loop from a seed array — so wrong-role points do not
///   belong in the coverage gate.
/// - complete banking: "pays only when all the parallelism is used" — the
///   enumerator emits it solely as the whole-merged-tree corner with every
///   tree loop at its maximum spec unroll, so a complete array requires
///   its indexing loops maxed out and every co-indexed array complete too.
bool premiseAccepts(const hls::Kernel& k, const hls::SpaceSpec& spec,
                    const hls::DirectiveConfig& cfg) {
  for (std::size_t ai = 0; ai < cfg.arrays.size(); ++ai) {
    const auto a = static_cast<hls::ArrayId>(ai);
    const hls::ArrayDirective& ad = cfg.arrays[ai];
    if (ad.type == hls::PartitionType::kComplete) {
      for (hls::LoopId l : k.loopsIndexingArray(a)) {
        const std::vector<int>& ufs = spec.loops[l].unroll_factors;
        if (cfg.loops[l].unroll !=
            *std::max_element(ufs.begin(), ufs.end()))
          return false;
        for (std::size_t bi = 0; bi < cfg.arrays.size(); ++bi) {
          if (bi == ai ||
              cfg.arrays[bi].type == hls::PartitionType::kComplete)
            continue;
          const std::vector<hls::LoopId> lb =
              k.loopsIndexingArray(static_cast<hls::ArrayId>(bi));
          if (std::find(lb.begin(), lb.end(), l) != lb.end()) return false;
        }
      }
    } else {
      for (hls::LoopId l : k.loopsIndexingArray(a)) {
        if (cfg.loops[l].unroll <= 1) continue;
        if (!hls::unrollCompatible(k, l, a, ad.type))
          return false;  // covers kNone and wrong-role cyclic/block
        if (ad.factor % cfg.loops[l].unroll != 0) return false;
      }
    }
  }
  return true;
}

}  // namespace

std::unique_ptr<Oracle> Oracle::build(const Scenario& sc,
                                      const OracleOptions& opts) {
  auto space = std::make_unique<hls::DesignSpace>(
      hls::DesignSpace::buildPruned(sc.kernel(), sc.spec()));
  if (space->size() > opts.enum_cap) return nullptr;

  std::unique_ptr<Oracle> o(new Oracle());
  o->benchmark_ = sc.benchmark;
  o->opts_ = opts;
  o->space_ = std::move(space);
  o->sim_ = std::make_unique<sim::FpgaToolSim>(
      o->benchmark_->kernel, sim::DeviceModel::virtex7Vc707(),
      o->benchmark_->sim_params, opts.sim_seed);
  o->sim_->setDieMap(o->benchmark_->die_map);
  o->gt_ = std::make_unique<sim::GroundTruth>(*o->space_, *o->sim_);

  o->lo_.assign(sim::kNumObjectives, 1e300);
  o->hi_.assign(sim::kNumObjectives, -1e300);
  for (std::size_t i = 0; i < o->gt_->size(); ++i) {
    if (!o->gt_->valid(i)) continue;
    const pareto::Point y = o->gt_->implObjectives(i);
    for (int m = 0; m < sim::kNumObjectives; ++m) {
      o->lo_[m] = std::min(o->lo_[m], y[m]);
      o->hi_[m] = std::max(o->hi_[m], y[m]);
    }
  }
  return o;
}

double Oracle::adrsOf(const std::vector<std::size_t>& selected) const {
  std::vector<pareto::Point> learned;
  for (std::size_t i : selected)
    if (gt_->valid(i))
      learned.push_back(normalizeBy(gt_->implObjectives(i), lo_, hi_));
  learned = pareto::paretoFilter(learned);
  if (learned.empty())
    learned.push_back(pareto::Point(sim::kNumObjectives, 1.0));

  std::vector<pareto::Point> reference;
  for (const pareto::Point& p : gt_->paretoFront())
    reference.push_back(normalizeBy(p, lo_, hi_));
  return pareto::adrs(reference, learned, pareto::AdrsDistance::kEuclidean);
}

double Oracle::fidelityGap(sim::Fidelity f) const {
  return adrsOf(gt_->frontIndicesAt(f));
}

PruningAudit Oracle::auditPruning(double eps) const {
  PruningAudit audit;
  audit.eps = eps;

  const hls::DesignSpace raw = hls::DesignSpace::buildRaw(
      benchmark_->kernel, benchmark_->spec, opts_.raw_cap);
  audit.raw_enumerated = raw.size();
  audit.raw_complete =
      benchmark_->spec.rawSize() <= static_cast<double>(opts_.raw_cap);

  // Evaluate the raw space at impl fidelity; keep valid points, tagged with
  // whether Algorithm 1's own compatibility premises accept the config.
  std::vector<pareto::Point> raw_pts, compat_pts;
  raw_pts.reserve(raw.size());
  std::vector<double> rlo(sim::kNumObjectives, 1e300);
  std::vector<double> rhi(sim::kNumObjectives, -1e300);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const sim::Report r = sim_->run(raw.config(i), sim::Fidelity::kImpl);
    if (!r.valid) continue;
    const std::vector<double> obj = r.objectives();
    pareto::Point y(sim::kNumObjectives);
    for (int m = 0; m < sim::kNumObjectives; ++m) y[m] = obj[m];
    for (int m = 0; m < sim::kNumObjectives; ++m) {
      rlo[m] = std::min(rlo[m], y[m]);
      rhi[m] = std::max(rhi[m], y[m]);
    }
    if (premiseAccepts(benchmark_->kernel, benchmark_->spec, raw.config(i)))
      compat_pts.push_back(y);
    raw_pts.push_back(std::move(y));
  }
  const std::vector<pareto::Point> raw_front = pareto::paretoFilter(raw_pts);
  const std::vector<pareto::Point> compat_front =
      pareto::paretoFilter(compat_pts);
  audit.raw_front_size = raw_front.size();
  audit.compat_front_size = compat_front.size();
  if (raw_front.empty()) return audit;

  // Pruned candidates, normalized by the RAW valid ranges so regret is
  // commensurate with the fronts being audited.
  std::vector<pareto::Point> pruned;
  for (std::size_t i = 0; i < gt_->size(); ++i)
    if (gt_->valid(i))
      pruned.push_back(normalizeBy(gt_->implObjectives(i), rlo, rhi));

  // Regret of a front point = how far the closest-from-above pruned config
  // is, in the worst objective (0 when some pruned config weakly dominates
  // it; 1e9 when the pruned space has no valid config at all).
  const auto regretOf = [&](const pareto::Point& fp) {
    const pareto::Point p = normalizeBy(fp, rlo, rhi);
    double best = 1e9;
    for (const pareto::Point& q : pruned) {
      double worst = 0.0;
      for (std::size_t m = 0; m < p.size(); ++m)
        worst = std::max(worst, q[m] - p[m]);
      best = std::min(best, std::max(worst, 0.0));
      if (best == 0.0) break;
    }
    return best;
  };

  double sum = 0.0;
  for (const pareto::Point& fp : compat_front) {
    const double r = regretOf(fp);
    if (r > eps) ++audit.violations;
    audit.max_regret = std::max(audit.max_regret, r);
    sum += r;
  }
  if (!compat_front.empty())
    audit.mean_regret = sum / static_cast<double>(compat_front.size());

  sum = 0.0;
  for (const pareto::Point& fp : raw_front) {
    const double r = regretOf(fp);
    audit.full_max_regret = std::max(audit.full_max_regret, r);
    sum += r;
  }
  audit.full_mean_regret = sum / static_cast<double>(raw_front.size());
  return audit;
}

}  // namespace cmmfo::scenario
