#pragma once

#include <string>
#include <vector>

#include "util/json.h"

namespace cmmfo::diag {

/// A parsed diagnostics journal: one util::Json object per JSONL line, in
/// file order. Lines that fail to parse are skipped (counted) rather than
/// fatal, so a truncated journal from a crashed run still renders.
struct Journal {
  std::vector<util::Json> records;
  std::size_t skipped_lines = 0;
};

/// Parse JSONL text into a Journal. Never fails hard; an empty/garbage
/// input yields an empty journal with skipped_lines set.
Journal parseJournal(const std::string& text);

/// Load a journal file ("-" is NOT supported here; reports read files).
/// Returns false with `error` set when the file cannot be opened.
bool loadJournal(const std::string& path, Journal* out, std::string* error);

/// Render the journal into one self-contained HTML page: run manifest,
/// convergence curves (hypervolume / ADRS / charged seconds, inline SVG),
/// calibration summary (coverage and NLPD per fidelity, standardized
/// residual strip plot), decision timeline, and the health-warning table.
/// No external scripts, styles, or fonts — the file works offline and can
/// be archived as a CI artifact.
std::string renderHtmlReport(const Journal& journal);

}  // namespace cmmfo::diag
