#include "diag/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "diag/calibration.h"
#include "diag/recorder.h"

namespace cmmfo::diag {

namespace {

using util::Json;

std::string htmlEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v) {
  if (std::isnan(v)) return "n/a";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.5g", v);
  return buf;
}

std::string fmtInt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

/// One polyline chart with a light frame and min/max labels. Points with a
/// NaN y are skipped (they break the polyline into segments).
std::string svgChart(const std::string& title, const std::vector<double>& xs,
                     const std::vector<double>& ys, const char* color) {
  const int w = 420, h = 180, pad = 34;
  std::string out = "<figure><figcaption>" + htmlEscaped(title) +
                    "</figcaption><svg width=\"" + std::to_string(w) +
                    "\" height=\"" + std::to_string(h) +
                    "\" viewBox=\"0 0 " + std::to_string(w) + " " +
                    std::to_string(h) + "\" role=\"img\">";
  double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  bool any = false;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (std::isnan(ys[i])) continue;
    if (!any) {
      xmin = xmax = xs[i];
      ymin = ymax = ys[i];
      any = true;
    } else {
      xmin = std::min(xmin, xs[i]);
      xmax = std::max(xmax, xs[i]);
      ymin = std::min(ymin, ys[i]);
      ymax = std::max(ymax, ys[i]);
    }
  }
  if (!any) {
    out += "<text x=\"50%\" y=\"50%\" text-anchor=\"middle\">no data</text>"
           "</svg></figure>";
    return out;
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;
  const auto px = [&](double x) {
    return pad + (x - xmin) / (xmax - xmin) * (w - 2 * pad);
  };
  const auto py = [&](double y) {
    return h - pad - (y - ymin) / (ymax - ymin) * (h - 2 * pad);
  };
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
                "fill=\"none\" stroke=\"#ccc\"/>",
                pad, pad, w - 2 * pad, h - 2 * pad);
  out += buf;
  out += "<polyline fill=\"none\" stroke=\"";
  out += color;
  out += "\" stroke-width=\"1.5\" points=\"";
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (std::isnan(ys[i])) continue;
    std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", px(xs[i]), py(ys[i]));
    out += buf;
  }
  out += "\"/>";
  std::snprintf(buf, sizeof(buf),
                "<text x=\"%d\" y=\"%d\" font-size=\"10\">%s</text>"
                "<text x=\"%d\" y=\"%d\" font-size=\"10\">%s</text>",
                2, h - pad, fmt(ymin).c_str(), 2, pad + 4, fmt(ymax).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "<text x=\"%d\" y=\"%d\" font-size=\"10\">round %s..%s</text>",
                pad, h - 4, fmt(xmin).c_str(), fmt(xmax).c_str());
  out += buf;
  out += "</svg></figure>";
  return out;
}

/// Standardized-residual strip plot: round on x, z on y, one dot per
/// (sample, objective), dashed guides at z = +-1.96 and 0.
std::string svgResiduals(const std::vector<double>& rounds,
                         const std::vector<double>& zs) {
  const int w = 420, h = 200, pad = 34;
  std::string out =
      "<figure><figcaption>standardized residuals (predict-before-observe)"
      "</figcaption><svg width=\"420\" height=\"200\" viewBox=\"0 0 420 200\""
      " role=\"img\">";
  if (rounds.empty()) {
    out += "<text x=\"50%\" y=\"50%\" text-anchor=\"middle\">no data</text>"
           "</svg></figure>";
    return out;
  }
  double xmin = rounds[0], xmax = rounds[0];
  for (const double r : rounds) {
    xmin = std::min(xmin, r);
    xmax = std::max(xmax, r);
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  double zlim = 3.0;
  for (const double z : zs)
    if (std::isfinite(z)) zlim = std::max(zlim, std::min(std::fabs(z), 8.0));
  const auto px = [&](double x) {
    return pad + (x - xmin) / (xmax - xmin) * (w - 2 * pad);
  };
  const auto py = [&](double z) {
    return h / 2.0 - z / zlim * (h / 2.0 - pad);
  };
  char buf[200];
  for (const double guide : {-kZ95, 0.0, kZ95}) {
    std::snprintf(buf, sizeof(buf),
                  "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" "
                  "stroke=\"#bbb\" stroke-dasharray=\"4 3\"/>",
                  pad, py(guide), w - pad, py(guide));
    out += buf;
  }
  for (std::size_t i = 0; i < rounds.size() && i < zs.size(); ++i) {
    if (!std::isfinite(zs[i])) continue;
    const double z = std::max(-zlim, std::min(zlim, zs[i]));
    std::snprintf(buf, sizeof(buf),
                  "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" "
                  "fill=\"#2b6cb0\" fill-opacity=\"0.6\"/>",
                  px(rounds[i]), py(z));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "<text x=\"2\" y=\"%.1f\" font-size=\"10\">+1.96</text>"
                "<text x=\"2\" y=\"%.1f\" font-size=\"10\">-1.96</text>",
                py(kZ95) + 3, py(-kZ95) + 3);
  out += buf;
  out += "</svg></figure>";
  return out;
}

const Json* firstOfType(const Journal& j, const char* type) {
  for (const Json& r : j.records)
    if (r.kind == Json::kObj && r.strOr("type", "") == type) return &r;
  return nullptr;
}

}  // namespace

Journal parseJournal(const std::string& text) {
  Journal out;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    Json j;
    if (util::parseJson(line, &j) && j.kind == Json::kObj)
      out.records.push_back(std::move(j));
    else
      ++out.skipped_lines;
  }
  return out;
}

bool loadJournal(const std::string& path, Journal* out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error) *error = "report: cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = parseJournal(ss.str());
  return true;
}

std::string renderHtmlReport(const Journal& journal) {
  std::string out =
      "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
      "<title>CMMFO run report</title><style>\n"
      "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:64em;"
      "color:#1a202c;padding:0 1em}\n"
      "h1{font-size:1.5em}h2{font-size:1.15em;border-bottom:1px solid #e2e8f0;"
      "padding-bottom:.2em;margin-top:2em}\n"
      "table{border-collapse:collapse;margin:.5em 0}\n"
      "th,td{border:1px solid #e2e8f0;padding:.25em .6em;text-align:right}\n"
      "th{background:#f7fafc}td.l,th.l{text-align:left}\n"
      "figure{display:inline-block;margin:.5em 1em .5em 0}\n"
      "figcaption{font-size:.85em;color:#4a5568}\n"
      ".warn{color:#c05621;font-weight:600}\n"
      ".ok{color:#2f855a}\n"
      "</style></head><body>\n<h1>CMMFO run report</h1>\n";

  // ---- manifest ----
  out += "<h2>Run manifest</h2>\n";
  if (const Json* m = firstOfType(journal, "manifest")) {
    out += "<table>\n";
    for (const auto& [key, val] : m->obj) {
      if (key == "type") continue;
      out += "<tr><th class=\"l\">" + htmlEscaped(key) + "</th><td class=\"l\">";
      if (val.kind == Json::kStr)
        out += htmlEscaped(val.str);
      else if (val.kind == Json::kNum)
        out += fmt(val.num);
      out += "</td></tr>\n";
    }
    out += "</table>\n";
  } else {
    out += "<p>(no manifest record)</p>\n";
  }

  // ---- convergence ----
  std::vector<double> rounds, hv, adrs, charged;
  for (const Json& r : journal.records) {
    if (r.kind != Json::kObj || r.strOr("type", "") != "convergence") continue;
    rounds.push_back(r.numOr("round", 0.0));
    hv.push_back(r.numOr("hypervolume",
                         std::numeric_limits<double>::quiet_NaN()));
    adrs.push_back(r.numOr("adrs", std::numeric_limits<double>::quiet_NaN()));
    charged.push_back(r.numOr("charged_seconds",
                              std::numeric_limits<double>::quiet_NaN()));
  }
  out += "<h2>Convergence</h2>\n";
  out += svgChart("hypervolume", rounds, hv, "#2b6cb0");
  out += svgChart("ADRS", rounds, adrs, "#c05621");
  out += svgChart("cumulative charged tool-seconds", rounds, charged,
                  "#2f855a");
  out += "\n";

  // ---- calibration ----
  out += "<h2>Surrogate calibration</h2>\n";
  {
    CalibrationAgg agg[kNumLevels][kNumObjectives];
    std::vector<double> zr, zv;
    for (const Json& r : journal.records) {
      if (r.kind != Json::kObj || r.strOr("type", "") != "calibration")
        continue;
      const int level = static_cast<int>(r.numOr("fidelity", -1));
      const Json* believer = r.find("believer");
      const bool fantasy =
          believer && believer->kind == Json::kBool && believer->b;
      const Json *y = r.find("y"), *mu = r.find("mu"), *var = r.find("var"),
                 *z = r.find("z");
      if (!y || !mu || !var) continue;
      std::vector<double> yv, muv, varv, zvv;
      util::getVec(*y, yv);
      util::getVec(*mu, muv);
      util::getVec(*var, varv);
      if (z) util::getVec(*z, zvv);
      for (std::size_t i = 0; i < zvv.size(); ++i) {
        zr.push_back(r.numOr("round", 0.0));
        zv.push_back(zvv[i]);
      }
      if (fantasy || level < 0 || level >= kNumLevels) continue;
      for (std::size_t i = 0;
           i < yv.size() && i < muv.size() && i < varv.size() &&
           i < static_cast<std::size_t>(kNumObjectives);
           ++i)
        agg[level][i].add(yv[i], muv[i], varv[i]);
    }
    out += svgResiduals(zr, zv);
    out += "<table>\n<tr><th class=\"l\">fidelity</th><th class=\"l\">"
           "objective</th><th>n</th><th>coverage95</th><th>mean NLPD</th>"
           "<th>mean z</th><th>std z</th></tr>\n";
    for (int l = 0; l < kNumLevels; ++l)
      for (int o = 0; o < kNumObjectives; ++o) {
        const CalibrationAgg& a = agg[l][o];
        if (a.n == 0) continue;
        const bool bad = a.coverage() < 0.75;
        out += std::string("<tr><td class=\"l\">") + levelName(l) +
               "</td><td class=\"l\">" + objectiveName(o) + "</td><td>" +
               std::to_string(a.n) + "</td><td class=\"" +
               (bad ? "warn" : "ok") + "\">" + fmt(a.coverage()) +
               "</td><td>" + fmt(a.meanNlpd()) + "</td><td>" +
               fmt(a.meanResid()) + "</td><td>" + fmt(a.residStddev()) +
               "</td></tr>\n";
      }
    out += "</table>\n";
  }

  // ---- model state ----
  out += "<h2>Model state</h2>\n";
  out += "<table>\n<tr><th>round</th><th class=\"l\">level</th><th>LML</th>"
         "<th>fit iters</th><th>cond log10</th><th>low-fid relevance</th>"
         "<th class=\"l\">K_task (off-diag)</th></tr>\n";
  for (const Json& r : journal.records) {
    if (r.kind != Json::kObj || r.strOr("type", "") != "model") continue;
    const int level = static_cast<int>(r.numOr("level", -1));
    std::string corr;
    if (const Json* k = r.find("k_task"); k && k->kind == Json::kArr)
      for (std::size_t i = 0; i < k->arr.size(); ++i)
        for (std::size_t j = i + 1; j < k->arr.size(); ++j)
          if (k->arr[i].kind == Json::kArr && j < k->arr[i].arr.size()) {
            if (!corr.empty()) corr += ", ";
            corr += fmt(k->arr[i].arr[j].num);
          }
    out += "<tr><td>" + fmtInt(r.numOr("round", -1)) + "</td><td class=\"l\">" +
           levelName(level) + "</td><td>" + fmt(r.numOr("lml", 0)) +
           "</td><td>" + fmtInt(r.numOr("fit_iters", 0)) + "/" +
           fmtInt(r.numOr("max_iters", 0)) + "</td><td>" +
           fmt(r.numOr("cond_log10", 0)) + "</td><td>" +
           fmt(r.numOr("lowfid_relevance",
                       std::numeric_limits<double>::quiet_NaN())) +
           "</td><td class=\"l\">" + htmlEscaped(corr) + "</td></tr>\n";
  }
  out += "</table>\n";

  // ---- decision timeline ----
  out += "<h2>Decision timeline</h2>\n";
  out += "<table>\n<tr><th>round</th><th>winner config</th><th class=\"l\">"
         "fidelity</th><th>PEIPV</th><th class=\"l\">per-fidelity "
         "penalty &middot; best (config: eipv&rarr;peipv)</th></tr>\n";
  for (const Json& r : journal.records) {
    if (r.kind != Json::kObj || r.strOr("type", "") != "decision") continue;
    std::string cells;
    if (const Json* fs = r.find("fidelities"); fs && fs->kind == Json::kArr)
      for (const Json& f : fs->arr) {
        if (f.kind != Json::kObj) continue;
        if (!cells.empty()) cells += " | ";
        cells += std::string(levelName(static_cast<int>(
                     f.numOr("fidelity", -1)))) +
                 " &times;" + fmt(f.numOr("cost_penalty", 1.0));
        if (const Json* cands = f.find("candidates");
            cands && cands->kind == Json::kArr && !cands->arr.empty()) {
          const Json& best = cands->arr[0];
          cells += " (" + fmtInt(best.numOr("config", -1)) + ": " +
                   fmt(best.numOr("eipv", 0)) + "&rarr;" +
                   fmt(best.numOr("peipv", 0)) + ")";
        }
      }
    out += "<tr><td>" + fmtInt(r.numOr("round", -1)) + "</td><td>" +
           fmtInt(r.numOr("winner_config", -1)) + "</td><td class=\"l\">" +
           levelName(static_cast<int>(r.numOr("winner_fidelity", -1))) +
           "</td><td>" + fmt(r.numOr("winner_peipv", 0)) +
           "</td><td class=\"l\">" + cells + "</td></tr>\n";
  }
  out += "</table>\n";

  // ---- health ----
  out += "<h2>Health checks</h2>\n";
  bool any_health = false;
  std::string health_rows;
  for (const Json& r : journal.records) {
    if (r.kind != Json::kObj || r.strOr("type", "") != "health") continue;
    any_health = true;
    health_rows += "<tr><td class=\"l warn\">" +
                   htmlEscaped(r.strOr("kind", "?")) + "</td><td>" +
                   fmtInt(r.numOr("round", -1)) + "</td><td>" +
                   fmt(r.numOr("value", 0)) + "</td><td>" +
                   fmt(r.numOr("threshold", 0)) + "</td><td class=\"l\">" +
                   htmlEscaped(r.strOr("message", "")) + "</td></tr>\n";
  }
  if (any_health) {
    out += "<table>\n<tr><th class=\"l\">kind</th><th>round</th><th>value"
           "</th><th>threshold</th><th class=\"l\">message</th></tr>\n" +
           health_rows + "</table>\n";
  } else {
    out += "<p class=\"ok\">No health warnings.</p>\n";
  }

  if (const Json* s = firstOfType(journal, "summary")) {
    out += "<h2>Summary</h2>\n<p>rounds=" + fmtInt(s->numOr("rounds", 0)) +
           " samples=" + fmtInt(s->numOr("samples", 0)) +
           " decisions=" + fmtInt(s->numOr("decisions", 0)) +
           " warnings=" + fmtInt(s->numOr("warnings", 0)) + "</p>\n";
  }
  if (journal.skipped_lines > 0)
    out += "<p class=\"warn\">" + std::to_string(journal.skipped_lines) +
           " unparseable journal line(s) skipped.</p>\n";
  out += "</body></html>\n";
  return out;
}

}  // namespace cmmfo::diag
