#include "diag/recorder.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/json.h"

namespace cmmfo::diag {

namespace {

using util::putDoubleOrNull;
using util::putInt;
using util::putString;
using util::putU64Bare;

constexpr const char* kLevelNames[kNumLevels] = {"hls", "syn", "impl"};
constexpr const char* kObjectiveNames[kNumObjectives] = {"power", "delay",
                                                         "lut"};

void putVecField(std::string& out, const char* key,
                 const std::vector<double>& v) {
  out += ", \"";
  out += key;
  out += "\": ";
  util::putVecOrNull(out, v);
}

std::string renderHealthLine(const HealthWarning& w) {
  std::string out = "{\"type\": \"health\", \"kind\": ";
  putString(out, healthKindName(w.kind));
  out += ", \"round\": ";
  putInt(out, w.round);
  if (w.fidelity >= 0) {
    out += ", \"fidelity\": ";
    putInt(out, w.fidelity);
  }
  out += ", \"value\": ";
  putDoubleOrNull(out, w.value);
  out += ", \"threshold\": ";
  putDoubleOrNull(out, w.threshold);
  out += ", \"message\": ";
  putString(out, w.message);
  out += "}";
  return out;
}

}  // namespace

const char* levelName(int level) {
  return level >= 0 && level < kNumLevels ? kLevelNames[level] : "?";
}

const char* objectiveName(int index) {
  return index >= 0 && index < kNumObjectives ? kObjectiveNames[index] : "?";
}

void DiagRecorder::setEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void DiagRecorder::setThresholds(const HealthThresholds& t) {
  std::lock_guard<std::mutex> lock(mu_);
  thresholds_ = t;
}

HealthThresholds DiagRecorder::thresholds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thresholds_;
}

void DiagRecorder::setTopK(int k) {
  std::lock_guard<std::mutex> lock(mu_);
  top_k_ = k > 0 ? k : 1;
}

int DiagRecorder::topK() const {
  std::lock_guard<std::mutex> lock(mu_);
  return top_k_;
}

void DiagRecorder::setManifest(Manifest m) {
  std::lock_guard<std::mutex> lock(mu_);
  manifest_ = std::move(m);
  has_manifest_ = true;
}

void DiagRecorder::setAdrsOracle(
    std::function<double(const std::vector<std::size_t>&)> oracle) {
  std::lock_guard<std::mutex> lock(mu_);
  adrs_oracle_ = std::move(oracle);
}

void DiagRecorder::addCalibrationSample(CalibrationSample s) {
  if (!enabled()) return;
  const std::size_t m = s.y.size();
  std::vector<double> z(m), lpd(m);
  std::vector<bool> inside(m);
  for (std::size_t i = 0; i < m; ++i) {
    z[i] = standardizedResidual(s.y[i], s.mu[i], s.var[i]);
    lpd[i] = nlpd(s.y[i], s.mu[i], s.var[i]);
    inside[i] = in95(s.y[i], s.mu[i], s.var[i]);
  }

  std::string out = "{\"type\": \"calibration\", \"round\": ";
  putInt(out, s.round);
  out += ", \"config\": ";
  putInt(out, static_cast<long long>(s.config));
  out += ", \"fidelity\": ";
  putInt(out, s.fidelity);
  out += ", \"believer\": ";
  out += s.believer ? "true" : "false";
  putVecField(out, "y", s.y);
  putVecField(out, "mu", s.mu);
  putVecField(out, "var", s.var);
  putVecField(out, "z", z);
  putVecField(out, "nlpd", lpd);
  out += ", \"in95\": [";
  for (std::size_t i = 0; i < m; ++i) {
    if (i) out += ',';
    out += inside[i] ? "true" : "false";
  }
  out += "]}";

  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(out));
  ++samples_;
  if (s.believer) return;  // fantasy-conditioned posteriors skew coverage
  if (s.fidelity < 0 || s.fidelity >= kNumLevels) return;
  for (std::size_t i = 0; i < m && i < kNumObjectives; ++i)
    agg_[s.fidelity][i].add(s.y[i], s.mu[i], s.var[i]);
}

void DiagRecorder::addDecision(DecisionRecord d) {
  if (!enabled()) return;
  std::string out = "{\"type\": \"decision\", \"round\": ";
  putInt(out, d.round);
  out += ", \"winner_config\": ";
  putInt(out, static_cast<long long>(d.winner_config));
  out += ", \"winner_fidelity\": ";
  putInt(out, d.winner_fidelity);
  out += ", \"winner_peipv\": ";
  putDoubleOrNull(out, d.winner_peipv);
  out += ", \"believer_depth\": ";
  putInt(out, d.believer_depth);
  out += ", \"believer_invalidations\": ";
  putInt(out, d.believer_invalidations);
  out += ", \"rationale\": ";
  putString(out, d.rationale);
  out += ", \"fidelities\": [";
  for (std::size_t f = 0; f < d.fidelities.size(); ++f) {
    const FidelityAudit& a = d.fidelities[f];
    if (f) out += ',';
    out += "{\"fidelity\": ";
    putInt(out, a.fidelity);
    out += ", \"cost_penalty\": ";
    putDoubleOrNull(out, a.cost_penalty);
    out += ", \"candidates\": [";
    for (std::size_t c = 0; c < a.top.size(); ++c) {
      if (c) out += ',';
      out += "{\"config\": ";
      putInt(out, static_cast<long long>(a.top[c].config));
      out += ", \"eipv\": ";
      putDoubleOrNull(out, a.top[c].eipv);
      out += ", \"peipv\": ";
      putDoubleOrNull(out, a.top[c].peipv);
      out += "}";
    }
    out += "]}";
  }
  out += "]}";

  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(out));
  ++decisions_;
}

void DiagRecorder::addModelRecord(ModelRecord m) {
  if (!enabled()) return;
  std::string out = "{\"type\": \"model\", \"round\": ";
  putInt(out, m.round);
  out += ", \"level\": ";
  putInt(out, m.level);
  out += ", \"correlated\": ";
  out += m.correlated ? "true" : "false";
  out += ", \"k_task\": [";
  for (std::size_t i = 0; i < m.task_corr.size(); ++i) {
    if (i) out += ',';
    util::putVecOrNull(out, m.task_corr[i]);
  }
  out += "], \"lml\": ";
  putDoubleOrNull(out, m.lml);
  out += ", \"fit_iters\": ";
  putInt(out, m.fit_iters);
  out += ", \"max_iters\": ";
  putInt(out, m.max_iters);
  out += ", \"cond_log10\": ";
  putDoubleOrNull(out, m.cond_log10);
  out += ", \"lowfid_relevance\": ";
  putDoubleOrNull(out, m.lowfid_relevance);
  out += "}";

  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(out));

  if (m.cond_log10 > thresholds_.max_gram_log10) {
    HealthWarning w;
    w.kind = HealthKind::kGramConditionBlowup;
    w.round = m.round;
    w.fidelity = m.level;
    w.value = m.cond_log10;
    w.threshold = thresholds_.max_gram_log10;
    w.message = std::string("Gram condition estimate 1e") +
                std::to_string(m.cond_log10) + " at level " +
                levelName(m.level) + " — posterior numerics are suspect";
    emitLocked(std::move(w));
  }
  if (m.max_iters > 0 && m.fit_iters >= m.max_iters) {
    HealthWarning w;
    w.kind = HealthKind::kMleNonConvergence;
    w.round = m.round;
    w.fidelity = m.level;
    w.value = static_cast<double>(m.fit_iters);
    w.threshold = static_cast<double>(m.max_iters);
    w.message = std::string("hyperparameter MLE used its full budget of ") +
                std::to_string(m.max_iters) + " iterations at level " +
                levelName(m.level);
    emitLocked(std::move(w));
  }
  for (std::size_t i = 0; i < m.task_corr.size(); ++i)
    for (std::size_t j = 0; j < m.task_corr[i].size(); ++j) {
      if (i == j) continue;
      const double c = m.task_corr[i][j];
      if (std::isfinite(c) && std::fabs(c) <= thresholds_.max_task_corr)
        continue;
      HealthWarning w;
      w.kind = HealthKind::kDegenerateKTask;
      w.round = m.round;
      w.fidelity = m.level;
      w.value = c;
      w.threshold = thresholds_.max_task_corr;
      w.message = std::string("task correlation ") + objectiveName(int(i)) +
                  "/" + objectiveName(int(j)) + " is degenerate at level " +
                  levelName(m.level);
      emitLocked(std::move(w));
      i = m.task_corr.size();  // one warning per record is enough
      break;
    }
}

void DiagRecorder::endRound(int round, double hypervolume,
                            const std::vector<std::size_t>& selected,
                            double charged_seconds, std::uint64_t cache_hits,
                            std::uint64_t cache_misses) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  double adrs = std::numeric_limits<double>::quiet_NaN();
  if (adrs_oracle_) adrs = adrs_oracle_(selected);

  std::string out = "{\"type\": \"convergence\", \"round\": ";
  putInt(out, round);
  out += ", \"hypervolume\": ";
  putDoubleOrNull(out, hypervolume);
  out += ", \"adrs\": ";
  putDoubleOrNull(out, adrs);
  out += ", \"charged_seconds\": ";
  putDoubleOrNull(out, charged_seconds);
  out += ", \"cache_hits\": ";
  putU64Bare(out, cache_hits);
  out += ", \"cache_misses\": ";
  putU64Bare(out, cache_misses);
  out += ", \"coverage\": [";
  for (int l = 0; l < kNumLevels; ++l) {
    CalibrationAgg pooled;
    for (int o = 0; o < kNumObjectives; ++o) {
      pooled.n += agg_[l][o].n;
      pooled.n_in95 += agg_[l][o].n_in95;
    }
    if (l) out += ',';
    putDoubleOrNull(out, pooled.coverage());
  }
  out += "]}";
  lines_.push_back(std::move(out));
  ++rounds_;

  for (int l = 0; l < kNumLevels; ++l) {
    CalibrationAgg pooled;
    for (int o = 0; o < kNumObjectives; ++o) {
      pooled.n += agg_[l][o].n;
      pooled.n_in95 += agg_[l][o].n_in95;
    }
    if (pooled.n < thresholds_.min_coverage_samples) continue;
    const double cov = pooled.coverage();
    if (cov >= thresholds_.min_coverage) continue;
    HealthWarning w;
    w.kind = HealthKind::kCoverageDrift;
    w.round = round;
    w.fidelity = l;
    w.value = cov;
    w.threshold = thresholds_.min_coverage;
    w.message = std::string("95%-interval coverage at level ") +
                levelName(l) + " collapsed — surrogate is over-confident";
    emitLocked(std::move(w));
  }

  const std::uint64_t lookups = cache_hits + cache_misses;
  if (lookups >= static_cast<std::uint64_t>(thresholds_.min_cache_lookups)) {
    const double rate =
        static_cast<double>(cache_hits) / static_cast<double>(lookups);
    if (rate < thresholds_.min_cache_hit_rate) {
      HealthWarning w;
      w.kind = HealthKind::kCacheHitCollapse;
      w.round = round;
      w.value = rate;
      w.threshold = thresholds_.min_cache_hit_rate;
      w.message = "evaluation-cache hit rate collapsed — duplicate picks are "
                  "not being reused";
      emitLocked(std::move(w));
    }
  }
}

void DiagRecorder::health(HealthWarning w) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(renderHealthLine(w));
  health_.emit(std::move(w));
}

void DiagRecorder::emitLocked(HealthWarning w) {
  const auto key = std::make_pair(static_cast<int>(w.kind), w.fidelity);
  if (!fired_.insert(key).second) return;  // once per (kind, fidelity) / run
  lines_.push_back(renderHealthLine(w));
  health_.emit(std::move(w));
}

void DiagRecorder::addRecovery(RecoveryRecord r) {
  if (!enabled()) return;
  std::string out = "{\"type\": \"recovery\", \"round\": ";
  putInt(out, r.round);
  out += ", \"level\": ";
  putInt(out, r.level);
  out += ", \"action\": ";
  putString(out, r.action);
  out += ", \"reason\": ";
  putString(out, r.reason);
  out += ", \"value\": ";
  putDoubleOrNull(out, r.value);
  out += "}";

  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(out));
  ++recoveries_;
}

std::size_t DiagRecorder::recordCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

std::size_t DiagRecorder::recoveryCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(recoveries_);
}

CalibrationAgg DiagRecorder::aggregate(int level, int objective) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level < 0 || level >= kNumLevels || objective < 0 ||
      objective >= kNumObjectives)
    return {};
  return agg_[level][objective];
}

DiagState DiagRecorder::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  DiagState st;
  st.agg = agg_;
  st.rounds = rounds_;
  st.samples = samples_;
  st.decisions = decisions_;
  st.warnings = health_.warnings();
  return st;
}

void DiagRecorder::restore(const DiagState& st) {
  std::lock_guard<std::mutex> lock(mu_);
  agg_ = st.agg;
  rounds_ = st.rounds;
  samples_ = st.samples;
  decisions_ = st.decisions;
  health_.restore(st.warnings);
  fired_.clear();
  for (const HealthWarning& w : st.warnings)
    fired_.insert({static_cast<int>(w.kind), w.fidelity});
}

void DiagRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
  agg_ = {};
  rounds_ = samples_ = decisions_ = recoveries_ = 0;
  fired_.clear();
  health_.clear();
  has_manifest_ = false;
  manifest_ = {};
}

std::string DiagRecorder::journal() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"type\": \"manifest\", \"git_sha\": ";
  putString(out, manifest_.git_sha);
  out += ", \"build_type\": ";
  putString(out, manifest_.build_type);
  out += ", \"tool\": ";
  putString(out, manifest_.tool);
  out += ", \"flags\": ";
  putString(out, manifest_.flags);
  out += ", \"benchmark\": ";
  putString(out, manifest_.benchmark);
  out += ", \"method\": ";
  putString(out, manifest_.method);
  if (manifest_.has_seed) {
    out += ", \"seed\": ";
    putU64Bare(out, manifest_.seed);
  }
  out += "}\n";

  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }

  out += "{\"type\": \"summary\", \"rounds\": ";
  putInt(out, rounds_);
  out += ", \"samples\": ";
  putInt(out, samples_);
  out += ", \"decisions\": ";
  putInt(out, decisions_);
  out += ", \"warnings\": ";
  putInt(out, static_cast<long long>(health_.count()));
  out += ", \"coverage\": [";
  for (int l = 0; l < kNumLevels; ++l) {
    CalibrationAgg pooled;
    for (int o = 0; o < kNumObjectives; ++o) {
      pooled.n += agg_[l][o].n;
      pooled.n_in95 += agg_[l][o].n_in95;
    }
    if (l) out += ',';
    putDoubleOrNull(out, pooled.coverage());
  }
  out += "], \"mean_nlpd\": [";
  for (int l = 0; l < kNumLevels; ++l) {
    CalibrationAgg pooled;
    for (int o = 0; o < kNumObjectives; ++o) {
      pooled.n += agg_[l][o].n;
      pooled.nlpd_sum += agg_[l][o].nlpd_sum;
    }
    if (l) out += ',';
    putDoubleOrNull(out, pooled.meanNlpd());
  }
  out += "]}\n";
  return out;
}

bool DiagRecorder::writeJournal(const std::string& path) const {
  return util::writeTextTo(path, journal());
}

std::string DiagRecorder::summaryText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "diag: rounds=" + std::to_string(rounds_) +
                    " samples=" + std::to_string(samples_) +
                    " decisions=" + std::to_string(decisions_) +
                    " warnings=" + std::to_string(health_.count()) + "\n";
  for (int l = 0; l < kNumLevels; ++l) {
    CalibrationAgg pooled;
    for (int o = 0; o < kNumObjectives; ++o) {
      pooled.n += agg_[l][o].n;
      pooled.n_in95 += agg_[l][o].n_in95;
      pooled.nlpd_sum += agg_[l][o].nlpd_sum;
    }
    if (pooled.n == 0) continue;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "diag: %s: n=%lld coverage95=%.3f mean_nlpd=%.4f\n",
                  levelName(l), pooled.n, pooled.coverage(),
                  pooled.meanNlpd());
    out += buf;
  }
  for (const HealthWarning& w : health_.warnings()) {
    out += "diag: WARN [";
    out += healthKindName(w.kind);
    out += "] round=" + std::to_string(w.round);
    if (w.fidelity >= 0) out += std::string(" level=") + levelName(w.fidelity);
    out += ": " + w.message + "\n";
  }
  return out;
}

DiagRecorder& recorder() {
  static DiagRecorder instance;
  return instance;
}

}  // namespace cmmfo::diag
