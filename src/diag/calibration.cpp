#include "diag/calibration.h"

#include <cmath>
#include <limits>

namespace cmmfo::diag {

namespace {

double safeVar(double var) {
  return var > 0.0 ? var : std::numeric_limits<double>::min();
}

constexpr double kLn2Pi = 1.8378770664093453;  // ln(2 pi)

}  // namespace

double standardizedResidual(double y, double mu, double var) {
  return (y - mu) / std::sqrt(safeVar(var));
}

double nlpd(double y, double mu, double var) {
  const double v = safeVar(var);
  const double d = y - mu;
  return 0.5 * (kLn2Pi + std::log(v)) + d * d / (2.0 * v);
}

bool in95(double y, double mu, double var) {
  return std::fabs(standardizedResidual(y, mu, var)) <= kZ95;
}

void CalibrationAgg::add(double y, double mu, double var) {
  const double z = standardizedResidual(y, mu, var);
  ++n;
  if (in95(y, mu, var)) ++n_in95;
  nlpd_sum += nlpd(y, mu, var);
  resid_sum += z;
  resid_sq_sum += z * z;
}

double CalibrationAgg::coverage() const {
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(n_in95) / static_cast<double>(n);
}

double CalibrationAgg::meanNlpd() const {
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return nlpd_sum / static_cast<double>(n);
}

double CalibrationAgg::meanResid() const {
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return resid_sum / static_cast<double>(n);
}

double CalibrationAgg::residStddev() const {
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  const double mean = resid_sum / static_cast<double>(n);
  const double var = resid_sq_sum / static_cast<double>(n) - mean * mean;
  return std::sqrt(var > 0.0 ? var : 0.0);
}

}  // namespace cmmfo::diag
