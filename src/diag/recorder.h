#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "diag/calibration.h"
#include "diag/health.h"

namespace cmmfo::diag {

/// Fidelity levels and objectives mirror sim::Fidelity and the (power,
/// delay, lut) objective vector; duplicated here as plain constants so the
/// diagnostics layer stays free of sim/gp/core types (it links only util).
inline constexpr int kNumLevels = 3;
inline constexpr int kNumObjectives = 3;

const char* levelName(int level);      // "hls" / "syn" / "impl"
const char* objectiveName(int index);  // "power" / "delay" / "lut"

/// Run provenance, written as the first journal line.
struct Manifest {
  std::string git_sha;
  std::string build_type;
  std::string tool;
  std::string flags;
  std::string benchmark;
  std::string method;
  std::uint64_t seed = 0;
  bool has_seed = false;
};

/// One scored candidate inside a per-fidelity acquisition audit.
struct CandidateScore {
  std::size_t config = 0;
  double eipv = 0.0;   // raw MC-EIPV before the cost penalty
  double peipv = 0.0;  // cost_penalty * eipv, the ranking quantity (Eq. 10)
};

/// Per-fidelity slice of one acquisition decision: the cost penalty
/// T_impl/T_i applied at this fidelity and the top-k candidates by PEIPV.
struct FidelityAudit {
  int fidelity = -1;
  double cost_penalty = 1.0;
  std::vector<CandidateScore> top;  // peipv-descending, size <= topK()
};

/// One winning pick and the cross-fidelity evidence behind it.
struct DecisionRecord {
  int round = -1;
  std::size_t winner_config = 0;
  int winner_fidelity = -1;
  double winner_peipv = 0.0;
  /// Kriging-believer fantasies the pick was conditioned on: the batch
  /// position b in the synchronous q-PEIPV path, the number of in-flight
  /// jobs in the asynchronous pipeline. 0 = pure committed posterior.
  int believer_depth = 0;
  /// Cumulative believer observations rolled back by posterior commits so
  /// far (async pipeline; every landed result invalidates ALL fantasies).
  long long believer_invalidations = 0;
  std::string rationale;  // e.g. "argmax PEIPV across fidelities"
  std::vector<FidelityAudit> fidelities;
};

/// One predict-before-observe calibration sample: the posterior (mu, var)
/// captured at pick time joined with the observation y that arrived later.
/// The recorder derives z / nlpd / in95 per objective on ingestion.
struct CalibrationSample {
  int round = -1;
  std::size_t config = 0;
  int fidelity = -1;
  /// True when the posterior included Kriging-believer fantasy observations
  /// (batch picks after the first); such samples are journaled but excluded
  /// from the running aggregates so coverage reflects the real posterior.
  bool believer = false;
  std::vector<double> y;    // observed objectives
  std::vector<double> mu;   // posterior mean per objective
  std::vector<double> var;  // posterior variance per objective
};

/// Per-round surrogate state for one fidelity level.
struct ModelRecord {
  int round = -1;
  int level = -1;
  bool correlated = false;
  /// Learned task correlation matrix from the ICM B = LL^T (Eq. 9);
  /// empty for independent-GP surrogates.
  std::vector<std::vector<double>> task_corr;
  double lml = 0.0;            // log marginal likelihood after (re)fit
  long long fit_iters = 0;     // MLE iterations actually used
  long long max_iters = 0;     // MLE iteration budget (0 = unknown)
  double cond_log10 = 0.0;     // log10 Gram condition estimate
  /// Share of ARD relevance on the lower-fidelity input dimensions — the
  /// augmented-input analog of the NARGP error-term variance share (0 for
  /// level 0, NaN when unavailable).
  double lowfid_relevance = 0.0;
};

/// One numerical self-healing action taken by the optimizer/GP layer —
/// the *response* side of the health warnings above (PR 5 detected;
/// recovery acts). Journaled so a diagnosed run shows what degraded and
/// what the system did about it.
struct RecoveryRecord {
  int round = -1;
  int level = -1;
  std::string action;  // jitter_escalation | dense_refit |
                       // surrogate_fallback | surrogate_reinstated
  std::string reason;
  double value = 0.0;  // jitter used / cond log10 / failed-fit streak
};

/// Checkpointable digest of the recorder: running calibration aggregates
/// and counters (NOT the full journal; journals are append-only files, the
/// checkpoint only needs what future health checks depend on).
struct DiagState {
  std::array<std::array<CalibrationAgg, kNumObjectives>, kNumLevels> agg{};
  long long rounds = 0;
  long long samples = 0;
  long long decisions = 0;
  std::vector<HealthWarning> warnings;

  bool operator==(const DiagState&) const = default;
};

/// Deterministic flight recorder for one optimization run.
///
/// Contract (shared with obs::Tracer / obs::MetricsRegistry): observation
/// must never perturb the run. The recorder draws no RNG, feeds nothing
/// back into algorithm state, and every mutator is a no-op while disabled —
/// a run with diagnostics on is bit-identical in trajectory to one without
/// (enforced by the seed-77 golden test).
///
/// Thread safety: one mutex guards all record state. Scheduler worker
/// threads emit health warnings concurrently with the optimizer thread.
class DiagRecorder {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on);

  void setThresholds(const HealthThresholds& t);
  HealthThresholds thresholds() const;
  /// Candidates kept per fidelity in decision audits (default 5).
  void setTopK(int k);
  int topK() const;

  void setManifest(Manifest m);
  /// Optional ADRS oracle (the optimizer has no ground truth; the harness
  /// does). Called at endRound with the currently selected config ids;
  /// convergence records carry NaN ADRS when unset.
  void setAdrsOracle(
      std::function<double(const std::vector<std::size_t>&)> oracle);

  // ---- record ingestion (all no-ops while disabled) ----
  void addCalibrationSample(CalibrationSample s);
  void addDecision(DecisionRecord d);
  void addModelRecord(ModelRecord m);
  void addRecovery(RecoveryRecord r);
  void endRound(int round, double hypervolume,
                const std::vector<std::size_t>& selected,
                double charged_seconds, std::uint64_t cache_hits,
                std::uint64_t cache_misses);
  /// Direct warning emission — safe from any thread (used by scheduler
  /// workers for retry storms).
  void health(HealthWarning w);

  // ---- introspection ----
  std::size_t healthCount() const { return health_.count(); }
  std::vector<HealthWarning> healthWarnings() const {
    return health_.warnings();
  }
  std::size_t recordCount() const;
  CalibrationAgg aggregate(int level, int objective) const;
  /// Recovery actions journaled so far (not checkpointed: the journal is
  /// append-only and a resumed run's counter restarts, like record lines).
  std::size_t recoveryCount() const;

  // ---- persistence ----
  DiagState state() const;
  void restore(const DiagState& st);
  /// Drop all records, aggregates and warnings; enabled flag untouched.
  void clear();

  /// Full JSONL journal: manifest line, records in ingestion order, one
  /// summary line last. Strings are JSON-escaped; doubles are %.17g.
  std::string journal() const;
  bool writeJournal(const std::string& path) const;  // "-" = stdout
  /// Human-readable end-of-run digest (coverage, NLPD, health warnings).
  std::string summaryText() const;

 private:
  void emitLocked(HealthWarning w);  // dedupe + journal line; mu_ held

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Manifest manifest_;
  bool has_manifest_ = false;
  HealthThresholds thresholds_;
  int top_k_ = 5;
  std::function<double(const std::vector<std::size_t>&)> adrs_oracle_;

  std::vector<std::string> lines_;  // pre-rendered record JSON, in order
  std::array<std::array<CalibrationAgg, kNumObjectives>, kNumLevels> agg_{};
  long long rounds_ = 0;
  long long samples_ = 0;
  long long decisions_ = 0;
  long long recoveries_ = 0;
  /// (kind, fidelity) pairs already warned — each structural condition is
  /// reported once per run, not once per round.
  std::set<std::pair<int, int>> fired_;
  HealthMonitor health_;
};

/// Process-wide recorder, mirroring obs::tracer()/obs::metrics(): disabled
/// by default, enabled by the CLI for diagnosed runs. Global so scheduler
/// worker threads can emit health warnings without plumbing.
DiagRecorder& recorder();

}  // namespace cmmfo::diag
