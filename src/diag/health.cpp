#include "diag/health.h"

namespace cmmfo::diag {

const char* healthKindName(HealthKind k) {
  switch (k) {
    case HealthKind::kCoverageDrift: return "coverage_drift";
    case HealthKind::kGramConditionBlowup: return "gram_condition_blowup";
    case HealthKind::kMleNonConvergence: return "mle_non_convergence";
    case HealthKind::kCacheHitCollapse: return "cache_hit_collapse";
    case HealthKind::kDegenerateKTask: return "degenerate_k_task";
    case HealthKind::kRetryStorm: return "retry_storm";
  }
  return "?";
}

void HealthMonitor::emit(HealthWarning w) {
  std::lock_guard<std::mutex> lock(mu_);
  warnings_.push_back(std::move(w));
  count_.store(warnings_.size(), std::memory_order_release);
}

std::vector<HealthWarning> HealthMonitor::warnings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warnings_;
}

void HealthMonitor::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  warnings_.clear();
  count_.store(0, std::memory_order_release);
}

void HealthMonitor::restore(std::vector<HealthWarning> ws) {
  std::lock_guard<std::mutex> lock(mu_);
  warnings_ = std::move(ws);
  count_.store(warnings_.size(), std::memory_order_release);
}

}  // namespace cmmfo::diag
