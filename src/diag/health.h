#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace cmmfo::diag {

/// Non-fatal run-health conditions detected by the flight recorder. None of
/// these aborts a run; each becomes a structured warning in the diagnostics
/// journal and the end-of-run summary.
enum class HealthKind : int {
  kCoverageDrift = 0,       // empirical 95% coverage far from nominal
  kGramConditionBlowup = 1, // GP Gram matrix condition estimate too large
  kMleNonConvergence = 2,   // hyperparameter MLE exhausted its iteration cap
  kCacheHitCollapse = 3,    // evaluation-cache hit rate collapsed
  kDegenerateKTask = 4,     // ICM task correlation pinned at +-1 or non-finite
  kRetryStorm = 5,          // scheduler job burned its whole retry budget
};

const char* healthKindName(HealthKind k);

struct HealthWarning {
  HealthKind kind = HealthKind::kCoverageDrift;
  int round = -1;     // -1 = not tied to a BO round
  int fidelity = -1;  // -1 = not fidelity-specific
  double value = 0.0;      // the observed quantity that tripped the check
  double threshold = 0.0;  // the configured trigger level
  std::string message;

  bool operator==(const HealthWarning&) const = default;
};

/// Trigger levels for the built-in checks. Defaults are deliberately loose —
/// they flag genuinely pathological runs, not normal BO noise. Tests tighten
/// them to force specific checks to fire.
struct HealthThresholds {
  /// Coverage below this (per fidelity, pooled over objectives) after at
  /// least min_coverage_samples observations flags drift. Nominal is 0.95.
  double min_coverage = 0.75;
  long long min_coverage_samples = 20;
  /// log10 condition estimate of the GP Gram matrix above this flags
  /// blow-up (doubles hold ~15-16 digits; 12 leaves little headroom).
  double max_gram_log10 = 12.0;
  /// Cache hit rate below this after min_cache_lookups flags collapse.
  double min_cache_hit_rate = 0.01;
  long long min_cache_lookups = 20;
  /// Off-diagonal |task correlation| above this flags a degenerate K_task.
  double max_task_corr = 0.999;
};

/// Thread-safe warning sink. Scheduler worker threads emit retry-storm
/// warnings concurrently with the optimizer thread's model checks, so every
/// access goes through one mutex; `count()` additionally reads an atomic so
/// hot paths can poll without the lock (and the TSan no-tear test has a
/// lock-free observable).
class HealthMonitor {
 public:
  void emit(HealthWarning w);
  std::vector<HealthWarning> warnings() const;
  std::size_t count() const { return count_.load(std::memory_order_acquire); }
  void clear();
  void restore(std::vector<HealthWarning> ws);

 private:
  mutable std::mutex mu_;
  std::vector<HealthWarning> warnings_;
  std::atomic<std::size_t> count_{0};
};

}  // namespace cmmfo::diag
