#pragma once

namespace cmmfo::diag {

/// Two-sided z threshold for a central 95% normal interval:
/// Phi(1.959963984540054) - Phi(-1.959963984540054) = 0.95.
inline constexpr double kZ95 = 1.959963984540054;

/// Standardized residual z = (y - mu) / sigma of an observation against the
/// predict-before-observe posterior N(mu, var). Nonpositive variance is
/// clamped to the smallest normal double so a saturated GP posterior cannot
/// produce inf/NaN diagnostics.
double standardizedResidual(double y, double mu, double var);

/// Negative log predictive density of y under N(mu, var):
/// 0.5 ln(2 pi var) + (y - mu)^2 / (2 var).
double nlpd(double y, double mu, double var);

/// Whether y falls inside the central 95% predictive interval
/// [mu - kZ95 sigma, mu + kZ95 sigma] (boundary counts as inside).
bool in95(double y, double mu, double var);

/// Running calibration aggregate for one (fidelity, objective) cell. Small
/// and exactly serializable (%.17g per field) so it survives the checkpoint
/// journal bit-for-bit.
struct CalibrationAgg {
  long long n = 0;
  long long n_in95 = 0;
  double nlpd_sum = 0.0;
  double resid_sum = 0.0;
  double resid_sq_sum = 0.0;

  void add(double y, double mu, double var);
  /// Empirical 95%-interval coverage; NaN while empty. Calibrated models
  /// hover near 0.95.
  double coverage() const;
  /// Mean negative log predictive density; NaN while empty.
  double meanNlpd() const;
  /// Mean standardized residual; NaN while empty. Calibrated: near 0.
  double meanResid() const;
  /// Population stddev of standardized residuals; NaN while empty.
  /// Calibrated: near 1 (<< 1 under-confident, >> 1 over-confident).
  double residStddev() const;

  bool operator==(const CalibrationAgg&) const = default;
};

}  // namespace cmmfo::diag
