#pragma once

#include <vector>

#include "core/optimizer.h"
#include "exp/harness.h"

namespace cmmfo::exp {

/// One point of a convergence curve: the state of the search after each
/// tool invocation.
struct ConvergencePoint {
  int samples = 0;            ///< tool invocations so far (init + BO picks)
  double tool_seconds = 0.0;  ///< cumulative simulated tool time
  double adrs = 0.0;          ///< ADRS of everything proposed so far
  double hypervolume = 0.0;   ///< normalized HV of the learned front so far
};

/// Replay an OptimizeResult against the ground truth into an
/// ADRS-vs-samples / HV-vs-tool-time convergence curve. Each prefix of the
/// candidate set CS is scored as if the run had stopped there — the
/// standard way DSE papers draw "quality vs cost" trajectories.
std::vector<ConvergencePoint> convergenceCurve(
    const BenchmarkContext& ctx, const core::OptimizeResult& result);

/// Area under the (samples, ADRS) staircase — a single scalar summarizing
/// how QUICKLY a run converges, not only where it ends. Lower is better.
double adrsAuc(const std::vector<ConvergencePoint>& curve);

}  // namespace cmmfo::exp
