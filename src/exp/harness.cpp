#include "exp/harness.h"

#include <cstdlib>

#include "linalg/stats.h"
#include "pareto/adrs.h"

namespace cmmfo::exp {

BenchmarkContext::BenchmarkContext(bench_suite::Benchmark bm,
                                   std::uint64_t sim_seed)
    : bm_(std::move(bm)) {
  space_ = std::make_unique<hls::DesignSpace>(
      hls::DesignSpace::buildPruned(bm_.kernel, bm_.spec));
  sim_ = std::make_unique<sim::FpgaToolSim>(
      bm_.kernel, sim::DeviceModel::virtex7Vc707(), bm_.sim_params, sim_seed);
  sim_->setDieMap(bm_.die_map);
  gt_ = std::make_unique<sim::GroundTruth>(*space_, *sim_);

  lo_.assign(sim::kNumObjectives, 1e300);
  hi_.assign(sim::kNumObjectives, -1e300);
  for (std::size_t i = 0; i < gt_->size(); ++i) {
    if (!gt_->valid(i)) continue;
    const auto y = gt_->implObjectives(i);
    for (int m = 0; m < sim::kNumObjectives; ++m) {
      lo_[m] = std::min(lo_[m], y[m]);
      hi_[m] = std::max(hi_[m], y[m]);
    }
  }
}

double BenchmarkContext::adrsOf(const std::vector<std::size_t>& selected) const {
  auto normalize = [&](const pareto::Point& p) {
    pareto::Point q(p.size());
    for (std::size_t m = 0; m < p.size(); ++m) {
      const double range = std::max(hi_[m] - lo_[m], 1e-12);
      q[m] = (p[m] - lo_[m]) / range;
    }
    return q;
  };

  std::vector<pareto::Point> learned;
  for (std::size_t i : selected)
    if (gt_->valid(i)) learned.push_back(normalize(gt_->implObjectives(i)));
  learned = pareto::paretoFilter(learned);
  if (learned.empty()) {
    // A method that proposed nothing usable is as far from the front as the
    // worst corner of the space.
    learned.push_back(pareto::Point(sim::kNumObjectives, 1.0));
  }

  std::vector<pareto::Point> reference;
  for (const auto& p : gt_->paretoFront()) reference.push_back(normalize(p));
  return pareto::adrs(reference, learned, pareto::AdrsDistance::kEuclidean);
}

MethodStats evaluateMethod(BenchmarkContext& ctx,
                           const baselines::DseMethod& method, int repeats,
                           std::uint64_t seed0) {
  MethodStats stats;
  stats.method = method.name();
  std::vector<double> adrs_vals, times, walls;
  for (int r = 0; r < repeats; ++r) {
    const baselines::DseOutcome out =
        method.run(ctx.space(), ctx.sim(), seed0 + 7919ULL * r);
    RunMetrics m;
    m.adrs = ctx.adrsOf(out.selected);
    m.tool_seconds = out.tool_seconds;
    m.wall_seconds = out.wall_seconds;
    m.tool_runs = out.tool_runs;
    m.num_selected = out.selected.size();
    stats.runs.push_back(m);
    adrs_vals.push_back(m.adrs);
    times.push_back(m.tool_seconds);
    walls.push_back(m.wall_seconds);
  }
  stats.adrs_mean = linalg::mean(adrs_vals);
  stats.adrs_std = linalg::sampleStddev(adrs_vals);
  stats.time_mean = linalg::mean(times);
  stats.wall_mean = linalg::mean(walls);
  return stats;
}

int repeatsFromEnv(int def_repeats) {
  if (const char* s = std::getenv("CMMFO_REPEATS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  if (fastModeFromEnv()) return 2;
  return def_repeats;
}

bool fastModeFromEnv() { return std::getenv("CMMFO_FAST") != nullptr; }

}  // namespace cmmfo::exp
