#include "exp/table.h"

#include <iomanip>

namespace cmmfo::exp {

namespace {
double safeRatio(double num, double den) {
  return den > 1e-300 ? num / den : 0.0;
}
}  // namespace

void printTable1(const std::vector<BenchmarkResults>& rows,
                 const std::vector<std::string>& method_order,
                 const std::string& normalizer, std::ostream& os) {
  os << std::fixed << std::setprecision(2);

  auto header = [&](const std::string& title) {
    os << "\n" << title << "\n";
    os << std::setw(14) << "Benchmark";
    for (const auto& m : method_order) os << std::setw(8) << m;
    os << "\n";
  };

  struct Acc {
    std::map<std::string, double> sum;
    int n = 0;
  };
  Acc acc_adrs, acc_std, acc_time, acc_wall;

  auto section = [&](const std::string& title, auto metric, Acc& acc) {
    header(title);
    for (const auto& row : rows) {
      const auto norm_it = row.by_method.find(normalizer);
      const double den =
          norm_it != row.by_method.end() ? metric(norm_it->second) : 1.0;
      os << std::setw(14) << row.benchmark;
      for (const auto& m : method_order) {
        const auto it = row.by_method.find(m);
        const double v =
            it != row.by_method.end() ? safeRatio(metric(it->second), den) : 0.0;
        os << std::setw(8) << v;
        acc.sum[m] += v;
      }
      os << "\n";
      ++acc.n;
    }
    os << std::setw(14) << "Average";
    for (const auto& m : method_order)
      os << std::setw(8) << (acc.n ? acc.sum[m] / acc.n : 0.0);
    os << "\n";
  };

  section("Normalized ADRS (lower is better, 1.00 = " + normalizer + ")",
          [](const MethodStats& s) { return s.adrs_mean; }, acc_adrs);
  section("Normalized Standard Deviation of ADRS",
          [](const MethodStats& s) { return s.adrs_std; }, acc_std);
  section("Normalized Overall Running Time (charged tool-seconds)",
          [](const MethodStats& s) { return s.time_mean; }, acc_time);
  section("Normalized Simulated Wall-clock (worker farm; == charged when "
          "sequential)",
          [](const MethodStats& s) { return s.wall_mean; }, acc_wall);

  // Raw values for traceability.
  os << "\nRaw ADRS / tool-hours\n";
  os << std::setw(14) << "Benchmark";
  for (const auto& m : method_order) os << std::setw(16) << m;
  os << "\n";
  os << std::setprecision(4);
  for (const auto& row : rows) {
    os << std::setw(14) << row.benchmark;
    for (const auto& m : method_order) {
      const auto it = row.by_method.find(m);
      if (it == row.by_method.end()) {
        os << std::setw(16) << "-";
        continue;
      }
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(3) << it->second.adrs_mean << "/"
           << std::setprecision(1) << it->second.time_mean / 3600.0 << "h";
      os << std::setw(16) << cell.str();
    }
    os << "\n";
  }
}

void writeRunsCsv(const std::vector<BenchmarkResults>& rows, std::ostream& os) {
  os << "benchmark,method,run,adrs,tool_seconds,wall_seconds,tool_runs,"
        "num_selected\n";
  for (const auto& row : rows)
    for (const auto& [name, stats] : row.by_method)
      for (std::size_t r = 0; r < stats.runs.size(); ++r) {
        const RunMetrics& m = stats.runs[r];
        os << row.benchmark << "," << name << "," << r << "," << m.adrs << ","
           << m.tool_seconds << "," << m.wall_seconds << "," << m.tool_runs
           << "," << m.num_selected << "\n";
      }
}

}  // namespace cmmfo::exp
