#include "exp/convergence.h"

#include "pareto/hypervolume.h"

namespace cmmfo::exp {

std::vector<ConvergencePoint> convergenceCurve(
    const BenchmarkContext& ctx, const core::OptimizeResult& result) {
  const auto& gt = ctx.groundTruth();

  // Normalization ranges over valid ground-truth objectives (same frame the
  // harness scores ADRS in).
  pareto::Point lo(sim::kNumObjectives, 1e300);
  pareto::Point hi(sim::kNumObjectives, -1e300);
  for (std::size_t i = 0; i < gt.size(); ++i) {
    if (!gt.valid(i)) continue;
    const auto y = gt.implObjectives(i);
    for (int m = 0; m < sim::kNumObjectives; ++m) {
      lo[m] = std::min(lo[m], y[m]);
      hi[m] = std::max(hi[m], y[m]);
    }
  }
  auto normalize = [&](const pareto::Point& p) {
    pareto::Point q(p.size());
    for (std::size_t m = 0; m < p.size(); ++m)
      q[m] = (p[m] - lo[m]) / std::max(hi[m] - lo[m], 1e-12);
    return q;
  };
  const pareto::Point ref(sim::kNumObjectives, 1.1);

  std::vector<ConvergencePoint> curve;
  std::vector<std::size_t> proposed;
  std::vector<pareto::Point> learned;
  double cumulative_seconds = 0.0;
  for (const auto& rec : result.cs) {
    proposed.push_back(rec.config);
    cumulative_seconds += rec.report.tool_seconds;
    if (gt.valid(rec.config))
      learned.push_back(normalize(gt.implObjectives(rec.config)));

    ConvergencePoint pt;
    pt.samples = static_cast<int>(proposed.size());
    pt.tool_seconds = cumulative_seconds;
    pt.adrs = ctx.adrsOf(proposed);
    pt.hypervolume = pareto::hypervolume(learned, ref);
    curve.push_back(pt);
  }
  return curve;
}

double adrsAuc(const std::vector<ConvergencePoint>& curve) {
  double auc = 0.0;
  for (const auto& pt : curve) auc += pt.adrs;  // unit-width staircase
  return auc;
}

}  // namespace cmmfo::exp
