#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/methods.h"
#include "bench_suite/benchmarks.h"
#include "hls/design_space.h"
#include "sim/ground_truth.h"
#include "sim/tool.h"

namespace cmmfo::exp {

/// Everything needed to evaluate methods on one benchmark: the pruned
/// design space, the simulated tool and the exhaustive ground truth.
/// Construction is the expensive part; reuse across methods and repeats.
class BenchmarkContext {
 public:
  explicit BenchmarkContext(bench_suite::Benchmark bm,
                            std::uint64_t sim_seed = 42);

  const hls::DesignSpace& space() const { return *space_; }
  sim::FpgaToolSim& sim() { return *sim_; }
  const sim::GroundTruth& groundTruth() const { return *gt_; }
  const bench_suite::Benchmark& benchmark() const { return bm_; }

  /// ADRS (Eq. 11) of a method's proposed configurations against the true
  /// Pareto set: proposals are scored at their TRUE post-Impl objectives
  /// (invalid proposals dropped), jointly min-max normalized with the
  /// ground-truth ranges, Euclidean distance.
  double adrsOf(const std::vector<std::size_t>& selected) const;

 private:
  bench_suite::Benchmark bm_;
  std::unique_ptr<hls::DesignSpace> space_;
  std::unique_ptr<sim::FpgaToolSim> sim_;
  std::unique_ptr<sim::GroundTruth> gt_;
  pareto::Point lo_, hi_;  // normalization ranges over valid configs
};

struct RunMetrics {
  double adrs = 0.0;
  double tool_seconds = 0.0;  // charged tool time (sum over flows)
  double wall_seconds = 0.0;  // simulated elapsed time on the worker farm
  int tool_runs = 0;
  std::size_t num_selected = 0;
};

struct MethodStats {
  std::string method;
  double adrs_mean = 0.0;
  double adrs_std = 0.0;   // sample std over repeats
  double time_mean = 0.0;  // charged tool seconds
  double wall_mean = 0.0;  // simulated wall-clock seconds
  std::vector<RunMetrics> runs;
};

/// Run `repeats` independent seeds of a method and aggregate (Sec. V-B:
/// "we run 10 tests on each benchmark and the results are averages").
MethodStats evaluateMethod(BenchmarkContext& ctx,
                           const baselines::DseMethod& method, int repeats,
                           std::uint64_t seed0 = 1000);

/// Environment-variable knobs shared by the bench binaries:
///   CMMFO_REPEATS  — repeats per method (default `def_repeats`)
///   CMMFO_FAST     — if set, shrink everything for a quick smoke pass
int repeatsFromEnv(int def_repeats);
bool fastModeFromEnv();

}  // namespace cmmfo::exp
