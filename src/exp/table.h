#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "exp/harness.h"

namespace cmmfo::exp {

/// One benchmark's results for every compared method.
struct BenchmarkResults {
  std::string benchmark;
  std::map<std::string, MethodStats> by_method;
};

/// Print Table I: per-benchmark ADRS / ADRS-std / running time, each
/// normalized to the `normalizer` method's value (the paper normalizes to
/// ANN), plus the Average row. Also prints the raw (unnormalized) values
/// below for traceability.
void printTable1(const std::vector<BenchmarkResults>& rows,
                 const std::vector<std::string>& method_order,
                 const std::string& normalizer, std::ostream& os);

/// CSV dump of the raw per-run metrics (one line per benchmark x method x run).
void writeRunsCsv(const std::vector<BenchmarkResults>& rows, std::ostream& os);

}  // namespace cmmfo::exp
