#include "runtime/eval_cache.h"

namespace cmmfo::runtime {

std::optional<sim::Report> EvalCache::find(std::size_t config,
                                           sim::Fidelity fidelity) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key(config, fidelity));
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::optional<std::array<sim::Report, sim::kNumFidelities>>
EvalCache::findFlow(std::size_t config, sim::Fidelity fidelity) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<sim::Report, sim::kNumFidelities> stages{};
  for (int f = 0; f <= static_cast<int>(fidelity); ++f) {
    const auto it = map_.find(key(config, static_cast<sim::Fidelity>(f)));
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    stages[f] = it->second;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return stages;
}

void EvalCache::storeFlow(
    std::size_t config, sim::Fidelity upto,
    const std::array<sim::Report, sim::kNumFidelities>& stages) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int f = 0; f <= static_cast<int>(upto); ++f)
    map_[key(config, static_cast<sim::Fidelity>(f))] = stages[f];
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace cmmfo::runtime
