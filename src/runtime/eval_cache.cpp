#include "runtime/eval_cache.h"

#include <algorithm>
#include <map>

namespace cmmfo::runtime {

std::optional<sim::Report> EvalCache::find(std::size_t config,
                                           sim::Fidelity fidelity) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key(config, fidelity));
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::optional<std::array<sim::Report, sim::kNumFidelities>>
EvalCache::findFlow(std::size_t config, sim::Fidelity fidelity) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<sim::Report, sim::kNumFidelities> stages{};
  for (int f = 0; f <= static_cast<int>(fidelity); ++f) {
    const auto it = map_.find(key(config, static_cast<sim::Fidelity>(f)));
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    stages[f] = it->second;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return stages;
}

void EvalCache::storeFlow(
    std::size_t config, sim::Fidelity upto,
    const std::array<sim::Report, sim::kNumFidelities>& stages) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int f = 0; f <= static_cast<int>(upto); ++f)
    map_[key(config, static_cast<sim::Fidelity>(f))] = stages[f];
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

EvalCache::Stats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {map_.size(), hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed)};
}

std::vector<std::pair<std::size_t, sim::Fidelity>> EvalCache::contents()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::size_t, int> highest;
  for (const auto& [k, report] : map_) {
    const auto config = static_cast<std::size_t>(k / sim::kNumFidelities);
    const int fid = static_cast<int>(k % sim::kNumFidelities);
    auto [it, fresh] = highest.emplace(config, fid);
    if (!fresh) it->second = std::max(it->second, fid);
  }
  std::vector<std::pair<std::size_t, sim::Fidelity>> out;
  out.reserve(highest.size());
  for (const auto& [config, fid] : highest)
    out.emplace_back(config, static_cast<sim::Fidelity>(fid));
  return out;
}

void EvalCache::restoreCounters(std::uint64_t hits, std::uint64_t misses) {
  hits_.store(hits, std::memory_order_relaxed);
  misses_.store(misses, std::memory_order_relaxed);
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace cmmfo::runtime
