#include "runtime/eval_cache.h"

#include <algorithm>
#include <map>

#include "obs/obs.h"

namespace cmmfo::runtime {

const EvalCache::Flow* EvalCache::findLocked(std::size_t config,
                                             sim::Fidelity fidelity,
                                             std::uint64_t ns,
                                             std::uint64_t ledger,
                                             bool count) const {
  const std::uint64_t key = ledger != 0 ? ledger : ns;
  const auto it = map_.find({ns, static_cast<std::uint64_t>(config)});
  if (it == map_.end() || it->second.upto < static_cast<int>(fidelity)) {
    if (count) ++counters_[key].misses;
    return nullptr;
  }
  if (count) ++counters_[key].hits;
  // Touch: a hit makes this flow the most recently used.
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return &it->second;
}

std::optional<sim::Report> EvalCache::find(std::size_t config,
                                           sim::Fidelity fidelity,
                                           std::uint64_t ns,
                                           std::uint64_t ledger) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Flow* flow = findLocked(config, fidelity, ns, ledger);
  if (flow == nullptr) return std::nullopt;
  return flow->stages[static_cast<int>(fidelity)];
}

std::optional<std::array<sim::Report, sim::kNumFidelities>>
EvalCache::findFlow(std::size_t config, sim::Fidelity fidelity,
                    std::uint64_t ns, std::uint64_t ledger) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Flow* flow = findLocked(config, fidelity, ns, ledger);
  if (flow == nullptr) return std::nullopt;
  // Stages beyond the cached ladder stay default-constructed, exactly like
  // the per-stage map used to return them.
  std::array<sim::Report, sim::kNumFidelities> stages{};
  for (int f = 0; f <= static_cast<int>(fidelity); ++f)
    stages[f] = flow->stages[f];
  return stages;
}

std::optional<std::array<sim::Report, sim::kNumFidelities>>
EvalCache::findFlowUncounted(std::size_t config, sim::Fidelity fidelity,
                             std::uint64_t ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Flow* flow = findLocked(config, fidelity, ns, 0, /*count=*/false);
  if (flow == nullptr) return std::nullopt;
  std::array<sim::Report, sim::kNumFidelities> stages{};
  for (int f = 0; f <= static_cast<int>(fidelity); ++f)
    stages[f] = flow->stages[f];
  return stages;
}

void EvalCache::countLookup(bool hit, std::uint64_t ledger) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit)
    ++counters_[ledger].hits;
  else
    ++counters_[ledger].misses;
}

EvalCache::FlightJoin EvalCache::joinFlight(
    std::size_t config, sim::Fidelity fidelity, std::uint64_t ns,
    std::uint64_t ledger,
    std::array<sim::Report, sim::kNumFidelities>* stages, FlightLink self,
    FlightLink* leader) {
  const Key key{ns, static_cast<std::uint64_t>(config)};
  {
    std::unique_lock<std::mutex> lock(flight_mu_);
    const auto it = in_flight_.find(key);
    if (it == in_flight_.end()) {
      in_flight_.emplace(key, Flight{static_cast<int>(fidelity), self, 0});
      return FlightJoin::kLeader;
    }
    // Someone is already running this config's flow. Whether their run can
    // serve us is decided by the fidelity they are running TO; snapshot it
    // (and the leader's causal identity) before the entry disappears, then
    // wait the flight out.
    const bool deep_enough = it->second.fidelity >= static_cast<int>(fidelity);
    const FlightLink leader_link = it->second.leader;
    ++it->second.waiters;
    flight_cv_.wait(lock,
                    [&] { return in_flight_.find(key) == in_flight_.end(); });
    if (!deep_enough) return FlightJoin::kRetry;
    if (leader != nullptr) *leader = leader_link;
  }
  // The leader ran at least as deep as we need: its ladder is in the cache
  // unless the run failed completely or the flow was evicted meanwhile —
  // both send the caller back around the probe/join loop.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Flow* flow = findLocked(config, fidelity, ns, 0, /*count=*/false);
    if (flow == nullptr) return FlightJoin::kRetry;
    std::array<sim::Report, sim::kNumFidelities> out{};
    for (int f = 0; f <= static_cast<int>(fidelity); ++f)
      out[f] = flow->stages[f];
    *stages = out;
    ++counters_[ledger != 0 ? ledger : ns].coalesced;
  }
  if (obs::metrics().enabled()) obs::metrics().add("cache.coalesced", 1.0);
  return FlightJoin::kServed;
}

int EvalCache::finishFlight(std::size_t config, std::uint64_t ns) {
  int waiters = 0;
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    const Key key{ns, static_cast<std::uint64_t>(config)};
    if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
      waiters = it->second.waiters;
      in_flight_.erase(it);
    }
  }
  flight_cv_.notify_all();
  return waiters;
}

int EvalCache::flightWaiters(std::size_t config, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(flight_mu_);
  const auto it = in_flight_.find(Key{ns, static_cast<std::uint64_t>(config)});
  return it == in_flight_.end() ? 0 : it->second.waiters;
}

int EvalCache::enforceCapacityLocked() {
  int dropped = 0;
  while (capacity_ > 0 && map_.size() > capacity_) {
    const Key victim = lru_.back();
    const auto it = map_.find(victim);
    entries_ -= static_cast<std::size_t>(it->second.upto + 1);
    lru_.pop_back();
    map_.erase(it);
    ++evictions_;
    ++dropped;
  }
  return dropped;
}

void EvalCache::storeFlow(
    std::size_t config, sim::Fidelity upto,
    const std::array<sim::Report, sim::kNumFidelities>& stages,
    std::uint64_t ns) {
  int dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Key key{ns, static_cast<std::uint64_t>(config)};
    auto [it, fresh] = map_.try_emplace(key);
    Flow& flow = it->second;
    if (fresh) {
      lru_.push_front(key);
      flow.lru = lru_.begin();
    } else {
      lru_.splice(lru_.begin(), lru_, flow.lru);
    }
    const int new_upto = std::max(flow.upto, static_cast<int>(upto));
    for (int f = 0; f <= static_cast<int>(upto); ++f) flow.stages[f] = stages[f];
    // A fresh flow starts at upto = -1, so this also counts its first ladder.
    entries_ += static_cast<std::size_t>(new_upto - flow.upto);
    flow.upto = new_upto;
    dropped = enforceCapacityLocked();
  }
  // Metrics emission outside mu_ (the registry has its own lock).
  if (dropped > 0 && obs::metrics().enabled())
    obs::metrics().add("server.cache.evictions", static_cast<double>(dropped));
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void EvalCache::setCapacity(std::size_t max_flows) {
  int dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = max_flows;
    dropped = enforceCapacityLocked();
  }
  if (dropped > 0 && obs::metrics().enabled())
    obs::metrics().add("server.cache.evictions", static_cast<double>(dropped));
}

std::size_t EvalCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::uint64_t EvalCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [ns, c] : counters_) total += c.hits;
  return total;
}

std::uint64_t EvalCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [ns, c] : counters_) total += c.misses;
  return total;
}

std::uint64_t EvalCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

EvalCache::Stats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.entries = entries_;
  s.flows = map_.size();
  for (const auto& [ns, c] : counters_) {
    s.hits += c.hits;
    s.misses += c.misses;
    s.coalesced += c.coalesced;
  }
  s.evictions = evictions_;
  return s;
}

EvalCache::Stats EvalCache::stats(std::uint64_t ns,
                                  std::uint64_t ledger) const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  for (const auto& [key, flow] : map_) {
    if (key.ns != ns) continue;
    ++s.flows;
    s.entries += static_cast<std::size_t>(flow.upto + 1);
  }
  const std::uint64_t counter_key = ledger != 0 ? ledger : ns;
  if (const auto it = counters_.find(counter_key); it != counters_.end()) {
    s.hits = it->second.hits;
    s.misses = it->second.misses;
    s.coalesced = it->second.coalesced;
  }
  s.evictions = evictions_;
  return s;
}

std::vector<std::pair<std::size_t, sim::Fidelity>> EvalCache::contents(
    std::uint64_t ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::size_t, int> highest;
  for (const auto& [key, flow] : map_)
    if (key.ns == ns)
      highest.emplace(static_cast<std::size_t>(key.config), flow.upto);
  std::vector<std::pair<std::size_t, sim::Fidelity>> out;
  out.reserve(highest.size());
  for (const auto& [config, fid] : highest)
    out.emplace_back(config, static_cast<sim::Fidelity>(fid));
  return out;
}

void EvalCache::restoreCounters(std::uint64_t hits, std::uint64_t misses,
                                std::uint64_t ledger) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[ledger] = {hits, misses};
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  counters_.clear();
  entries_ = 0;
  evictions_ = 0;
}

}  // namespace cmmfo::runtime
