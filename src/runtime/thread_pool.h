#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace cmmfo::runtime {

/// Unbounded MPMC handoff queue for completion notifications: workers push
/// results the moment they finish (real completion order, NOT submission
/// order) and a consumer blocks in pop() until one arrives. This is what
/// lets the asynchronous scheduler react to the first finished job instead
/// of draining a whole batch of futures in submission order.
template <typename T>
class CompletionQueue {
 public:
  void push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available.
  T pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty(); });
    T value = std::move(items_.front());
    items_.pop();
    return value;
  }

  /// Non-blocking variant; false when the queue is empty right now.
  bool tryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop();
    return true;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<T> items_;
};

/// Fixed-size worker pool backing the tool scheduler.
///
/// Tasks are executed FIFO; with one worker the pool therefore runs tasks in
/// exactly the order they were submitted, which is what lets the runtime
/// reproduce the sequential optimizer's accounting bit-for-bit. Exceptions
/// thrown by a task are captured in its future and rethrown at get();
/// shutdown() (and the destructor) finishes every already-queued task before
/// joining, so no accepted work is silently dropped.
///
/// Shutdown contract: submit() never throws on a stopped pool — it returns a
/// future that carries a std::runtime_error instead, so a submitter racing
/// shutdown() observes the failure at get() rather than as an exception on
/// its own thread. submit() concurrent with shutdown() is well-defined:
/// each submission is either fully accepted (and will run) or fully
/// rejected (failed future).
class ThreadPool {
 public:
  explicit ThreadPool(int n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int numWorkers() const { return num_workers_; }

  /// Tasks accepted but not yet picked up by a worker, read under the pool
  /// lock (same synchronization as submit/worker handoff, so an observer
  /// thread polling the depth mid-batch never races the queue).
  std::size_t queueDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Drain the queue, join the workers and reject all future submissions.
  /// Idempotent and safe to race with submit(); must not be called from a
  /// worker thread.
  void shutdown();

  /// Enqueue a nullary callable; its result (or exception) arrives through
  /// the returned future. On a stopped pool the returned future is already
  /// failed (std::runtime_error) — the task is never run.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        std::promise<R> failed;
        failed.set_exception(std::make_exception_ptr(
            std::runtime_error("submit on stopped ThreadPool")));
        return failed.get_future();
      }
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Completion-notification submit: run `fn` on a worker and push its
  /// result into `done` the moment it finishes. Unlike submit()+get(),
  /// results become visible in COMPLETION order across tasks, which is the
  /// primitive the asynchronous scheduler is built on. Returns false (task
  /// never runs, nothing is pushed) on a stopped pool, so a consumer that
  /// counts expected completions must check the return value.
  /// `fn` must be noexcept-equivalent: an escaping exception would be lost
  /// with the notification, so callers wrap fallible work themselves.
  template <typename F, typename T>
  bool submitTo(CompletionQueue<T>& done, F&& fn) {
    auto task = std::make_shared<std::decay_t<F>>(std::forward<F>(fn));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return false;
      queue_.push([task, &done] { done.push((*task)()); });
    }
    cv_.notify_one();
    return true;
  }

 private:
  void workerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  int num_workers_ = 0;
  std::vector<std::thread> workers_;  // emptied by shutdown() after joining
};

}  // namespace cmmfo::runtime
