#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace cmmfo::runtime {

/// Fixed-size worker pool backing the tool scheduler.
///
/// Tasks are executed FIFO; with one worker the pool therefore runs tasks in
/// exactly the order they were submitted, which is what lets the runtime
/// reproduce the sequential optimizer's accounting bit-for-bit. Exceptions
/// thrown by a task are captured in its future and rethrown at get(); the
/// destructor finishes every already-queued task before joining, so no
/// submitted work is silently dropped.
class ThreadPool {
 public:
  explicit ThreadPool(int n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int numWorkers() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a nullary callable; its result (or exception) arrives through
  /// the returned future. Throws if the pool is already shutting down.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cmmfo::runtime
