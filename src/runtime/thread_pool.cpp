#include "runtime/thread_pool.h"

#include <algorithm>

namespace cmmfo::runtime {

ThreadPool::ThreadPool(int n_workers) {
  const int n = std::max(n_workers, 1);
  num_workers_ = n;
  workers_.reserve(n);
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Only the first caller sees live threads; concurrent/second calls find
  // workers_ already emptied. Joining drains the queue (workers exit only
  // once it is empty), preserving the no-dropped-work guarantee.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_join.swap(workers_);
  }
  for (auto& w : to_join) w.join();
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // a throwing task is a packaged_task: the exception lands in
             // its future, never on this thread
  }
}

}  // namespace cmmfo::runtime
