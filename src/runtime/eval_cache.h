#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/tool.h"

namespace cmmfo::runtime {

/// Thread-safe memo of FPGA-tool reports keyed on (config id, fidelity).
///
/// The cache exploits the nesting of the design flow (Fig. 2): a single flow
/// invocation up to fidelity h produces the reports of every stage i <= h
/// along the way — exactly as a real Vivado impl run leaves the HLS and
/// logic-synthesis artifacts behind. storeFlow() therefore populates all
/// stages up to the charged fidelity at once, so a later proposal of the
/// same configuration at any lower fidelity is a free hit.
class EvalCache {
 public:
  /// Report at (config, fidelity) if present. Counts a hit or a miss.
  std::optional<sim::Report> find(std::size_t config,
                                  sim::Fidelity fidelity) const;

  /// The whole stage ladder [0..fidelity] in one lookup (one hit or miss
  /// counted). Present either fully or not at all, by the storeFlow
  /// invariant.
  std::optional<std::array<sim::Report, sim::kNumFidelities>> findFlow(
      std::size_t config, sim::Fidelity fidelity) const;

  /// Record one flow run: `stages[0..upto]` are the per-stage reports of a
  /// single invocation that ran up to `upto`. Entries beyond `upto` are
  /// ignored. Re-stores overwrite (the tool is deterministic, so the value
  /// cannot actually change).
  void storeFlow(std::size_t config, sim::Fidelity upto,
                 const std::array<sim::Report, sim::kNumFidelities>& stages);

  std::size_t size() const;
  void clear();

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// One consistent snapshot of the cache state, for the journal.
  struct Stats {
    std::size_t entries = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

  /// The cached flows as (config, highest cached fidelity) pairs, sorted by
  /// config id. Because the tool is deterministic, this is a complete
  /// serialization: reports can be regenerated with FpgaToolSim::run.
  std::vector<std::pair<std::size_t, sim::Fidelity>> contents() const;

  /// Restore counters from a checkpoint (entries are re-stored separately
  /// via storeFlow, since reports are recomputable).
  void restoreCounters(std::uint64_t hits, std::uint64_t misses);

 private:
  static std::uint64_t key(std::size_t config, sim::Fidelity fidelity) {
    return static_cast<std::uint64_t>(config) * sim::kNumFidelities +
           static_cast<std::uint64_t>(fidelity);
  }

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, sim::Report> map_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace cmmfo::runtime
