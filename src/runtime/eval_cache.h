#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/tool.h"

namespace cmmfo::runtime {

/// Thread-safe memo of FPGA-tool reports keyed on (namespace, config id,
/// fidelity).
///
/// The cache exploits the nesting of the design flow (Fig. 2): a single flow
/// invocation up to fidelity h produces the reports of every stage i <= h
/// along the way — exactly as a real Vivado impl run leaves the HLS and
/// logic-synthesis artifacts behind. storeFlow() therefore populates all
/// stages up to the charged fidelity at once, so a later proposal of the
/// same configuration at any lower fidelity is a free hit.
///
/// Multi-campaign serving (the optimization server) shares ONE long-lived
/// cache across tenants, which needs two extensions — both dormant at their
/// defaults so single-campaign users see the original behavior:
///  - namespacing: every operation takes a `ns` key (default 0). Campaigns
///    against the same benchmark/simulator fingerprint share a namespace and
///    hit each other's artifacts; unrelated campaigns cannot collide on raw
///    config ids. Hit/miss counters are kept under a separate `ledger` key
///    (default: the namespace itself) so two live campaigns SHARING a
///    namespace still account — and checkpoint — their own traffic; a
///    restoreCounters() on one tenant can never clobber a co-tenant.
///  - bounded memory: setCapacity(N) turns on LRU eviction over *flows*
///    (all stages of one (ns, config) evict together, preserving the
///    storeFlow invariant). Evictions count into stats() and, when metrics
///    are enabled, the `server.cache.evictions` counter. Capacity 0 (the
///    default) never evicts.
class EvalCache {
 public:
  /// Report at (config, fidelity) if present. Counts a hit or a miss
  /// against `ledger` (0 = use `ns`) and refreshes the flow's LRU position
  /// on a hit.
  std::optional<sim::Report> find(std::size_t config, sim::Fidelity fidelity,
                                  std::uint64_t ns = 0,
                                  std::uint64_t ledger = 0) const;

  /// The whole stage ladder [0..fidelity] in one lookup (one hit or miss
  /// counted). Present either fully or not at all, by the storeFlow
  /// invariant.
  std::optional<std::array<sim::Report, sim::kNumFidelities>> findFlow(
      std::size_t config, sim::Fidelity fidelity, std::uint64_t ns = 0,
      std::uint64_t ledger = 0) const;

  /// findFlow without touching the hit/miss counters (the LRU position is
  /// still refreshed — the lookup is real usage). The asynchronous
  /// scheduler probes with this from worker threads, whose real-time
  /// interleaving is nondeterministic, and books the hit/miss later via
  /// countLookup() in deterministic completion-processing order, so
  /// checkpointed counters stay bit-stable across runs and resumes.
  std::optional<std::array<sim::Report, sim::kNumFidelities>>
  findFlowUncounted(std::size_t config, sim::Fidelity fidelity,
                    std::uint64_t ns = 0) const;

  /// Deterministic counter hook paired with findFlowUncounted: books one
  /// hit or miss against counter key `ledger` (passed resolved — no
  /// ns fallback here).
  void countLookup(bool hit, std::uint64_t ledger);

  // ---- Single-flight coalescing ------------------------------------------
  // Two workers (or co-tenant campaigns sharing a namespace) requesting the
  // same (config, fidelity) concurrently must not launch duplicate tool
  // runs. After a cache miss the requester calls joinFlight():
  //   kLeader — nobody is running this config's flow: the caller runs the
  //             tool and MUST call finishFlight() afterwards, success or
  //             not (waiters block until then).
  //   kServed — a concurrent flow at >= the requested fidelity finished and
  //             its ladder was returned; one `coalesced` count is booked on
  //             the caller's ledger (the original miss count stands — the
  //             artifact was not cached when asked for).
  //   kRetry  — the concurrent flow was too shallow, failed, or was evicted
  //             before we looked: re-probe the cache and join again.

  enum class FlightJoin { kLeader, kServed, kRetry };

  /// Causal identity of the span that leads a flight, so coalesced
  /// followers can link their trace to the leader's tool run. Plain data —
  /// the cache stores and returns it without interpreting it.
  /// (No default member initializers: the zero default below is spelled at
  /// the use sites so it stays usable as a default argument in-class.)
  struct FlightLink {
    std::uint64_t trace_id;
    std::uint64_t span_id;
  };

  /// See above. On kServed, `stages[0..fidelity]` is filled from the cache.
  /// `self` is registered as the flight's leader identity on kLeader; on
  /// kServed the leader's identity is copied into `*leader` (when non-null)
  /// so the follower can record a cross-trace link.
  FlightJoin joinFlight(std::size_t config, sim::Fidelity fidelity,
                        std::uint64_t ns, std::uint64_t ledger,
                        std::array<sim::Report, sim::kNumFidelities>* stages,
                        FlightLink self = FlightLink{0, 0},
                        FlightLink* leader = nullptr);

  /// Ends the flight registered by a kLeader join and wakes every waiter.
  /// The leader stores its result (if any) via storeFlow() BEFORE calling
  /// this, so woken waiters find the artifacts. Returns the number of
  /// requests that blocked on this flight (the coalesce fan-out).
  int finishFlight(std::size_t config, std::uint64_t ns);

  /// Number of requests currently blocked on (ns, config)'s flight — 0 when
  /// no flight is registered. Test/diagnostic hook for deterministically
  /// arranging coalescing.
  int flightWaiters(std::size_t config, std::uint64_t ns);

  /// Record one flow run: `stages[0..upto]` are the per-stage reports of a
  /// single invocation that ran up to `upto`. Entries beyond `upto` are
  /// ignored. Re-stores overwrite (the tool is deterministic, so the value
  /// cannot actually change); a deeper re-store extends the cached ladder.
  void storeFlow(std::size_t config, sim::Fidelity upto,
                 const std::array<sim::Report, sim::kNumFidelities>& stages,
                 std::uint64_t ns = 0);

  /// Number of cached (config, stage) entries across every namespace.
  std::size_t size() const;
  void clear();

  /// LRU bound in *flows* (cached configs); 0 = unbounded.
  void setCapacity(std::size_t max_flows);
  std::size_t capacity() const;

  /// Aggregate counters over all namespaces (the pre-server interface).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

  /// One consistent snapshot of the cache state, for the journal and the
  /// server's stats endpoint.
  struct Stats {
    std::size_t entries = 0;  // (config, stage) pairs
    std::size_t flows = 0;    // distinct (ns, config) ladders
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Requests served by joining another requester's in-flight tool run
    /// (single-flight coalescing) instead of launching a duplicate.
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;  // always the cache-wide total
  };
  Stats stats() const;
  /// Restricted to one namespace (entries/flows of `ns`; hits/misses of
  /// the counter key `ledger` when non-zero, else of `ns`; evictions stay
  /// cache-wide — an eviction caused by tenant A can land on tenant B's
  /// flow, so a per-tenant split would be misleading).
  Stats stats(std::uint64_t ns, std::uint64_t ledger = 0) const;

  /// The cached flows of `ns` as (config, highest cached fidelity) pairs,
  /// sorted by config id. Because the tool is deterministic, this is a
  /// complete serialization: reports can be regenerated with
  /// FpgaToolSim::run.
  std::vector<std::pair<std::size_t, sim::Fidelity>> contents(
      std::uint64_t ns = 0) const;

  /// Restore one ledger's counters from a checkpoint (entries are
  /// re-stored separately via storeFlow, since reports are recomputable).
  /// Only the given counter key is overwritten — a co-tenant ledger in the
  /// same artifact namespace is untouched.
  void restoreCounters(std::uint64_t hits, std::uint64_t misses,
                       std::uint64_t ledger = 0);

 private:
  struct Key {
    std::uint64_t ns = 0;
    std::uint64_t config = 0;
    bool operator==(const Key& o) const {
      return ns == o.ns && config == o.config;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style avalanche of the two words.
      std::uint64_t h = k.ns + 0x9e3779b97f4a7c15ULL * (k.config + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h * 0x94d049bb133111ebULL);
    }
  };
  struct Flow {
    int upto = -1;  // highest stage cached
    std::array<sim::Report, sim::kNumFidelities> stages{};
    std::list<Key>::iterator lru;  // position in lru_ (front = most recent)
  };
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;
  };

  /// Lookup + LRU touch + per-ledger count (skipped when `count` is
  /// false); requires mu_ held.
  const Flow* findLocked(std::size_t config, sim::Fidelity fidelity,
                         std::uint64_t ns, std::uint64_t ledger,
                         bool count = true) const;
  /// Evict LRU flows beyond capacity; requires mu_ held. Returns how many
  /// flows were dropped (for the metrics emission outside the lock).
  int enforceCapacityLocked();

  mutable std::mutex mu_;
  std::unordered_map<Key, Flow, KeyHash> map_;
  mutable std::list<Key> lru_;
  mutable std::unordered_map<std::uint64_t, Counters> counters_;
  std::size_t capacity_ = 0;  // flows; 0 = unbounded
  std::size_t entries_ = 0;   // sum over flows of (upto + 1)
  std::uint64_t evictions_ = 0;

  struct Flight {
    int fidelity = 0;           // target fidelity the leader is running to
    FlightLink leader{0, 0};    // causal identity of the leader's span
    int waiters = 0;            // requests blocked on this flight
  };

  /// Single-flight registry: (ns, config) -> the flight a leader is
  /// currently running. Guarded by its own lock so waiters never hold up
  /// cache traffic; the two locks are never held together.
  std::mutex flight_mu_;
  std::condition_variable flight_cv_;
  std::unordered_map<Key, Flight, KeyHash> in_flight_;
};

}  // namespace cmmfo::runtime
