#include "runtime/scheduler.h"

#include <algorithm>
#include <future>

namespace cmmfo::runtime {

ToolScheduler::ToolScheduler(const hls::DesignSpace& space,
                             sim::FpgaToolSim& sim, EvalCache& cache,
                             int n_workers)
    : space_(&space), sim_(&sim), cache_(&cache), pool_(n_workers) {}

EvalResult ToolScheduler::execute(const EvalJob& job) {
  EvalResult res;
  res.job = job;
  if (auto cached = cache_->findFlow(job.config, job.fidelity)) {
    res.stages = *cached;
    res.cache_hit = true;
    return res;  // the artifacts already exist; nothing to charge
  }
  // One charged invocation runs the flow up to the requested fidelity; the
  // intermediate stage reports come with it for free (a real tool run emits
  // every stage's report along the way).
  const hls::DirectiveConfig cfg = space_->config(job.config);
  const sim::Report charged = sim_->runCounted(cfg, job.fidelity);
  for (int f = 0; f < static_cast<int>(job.fidelity); ++f)
    res.stages[f] = sim_->run(cfg, static_cast<sim::Fidelity>(f));
  res.stages[static_cast<int>(job.fidelity)] = charged;
  res.charged_seconds = charged.tool_seconds;
  cache_->storeFlow(job.config, job.fidelity, res.stages);
  return res;
}

std::vector<EvalResult> ToolScheduler::runBatch(
    const std::vector<EvalJob>& jobs) {
  std::vector<std::future<EvalResult>> futures;
  futures.reserve(jobs.size());
  for (const EvalJob& job : jobs)
    futures.push_back(pool_.submit([this, job] { return execute(job); }));

  std::vector<EvalResult> results;
  results.reserve(jobs.size());
  for (auto& f : futures) results.push_back(f.get());

  // Accounting (main thread, deterministic). Wall clock: greedy list
  // scheduling of the round's charges onto the farm in job order; the
  // round costs its makespan. With one worker this degenerates to the
  // plain sum, i.e. wall == charged, the sequential regime.
  SchedulerStats round;
  std::vector<double> load(pool_.numWorkers(), 0.0);
  for (const EvalResult& r : results) {
    round.charged_seconds += r.charged_seconds;
    if (r.cache_hit) {
      ++round.cache_hits;
    } else {
      ++round.tool_runs;
      auto slot = std::min_element(load.begin(), load.end());
      *slot += r.charged_seconds;
    }
  }
  round.wall_seconds = *std::max_element(load.begin(), load.end());

  last_ = round;
  totals_.charged_seconds += round.charged_seconds;
  totals_.wall_seconds += round.wall_seconds;
  totals_.tool_runs += round.tool_runs;
  totals_.cache_hits += round.cache_hits;
  return results;
}

}  // namespace cmmfo::runtime
