#include "runtime/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <string>
#include <utility>

#include "diag/recorder.h"
#include "obs/obs.h"
#include "rng/hash_noise.h"

namespace cmmfo::runtime {

double RetryPolicy::backoffSeconds(std::size_t config, sim::Fidelity fidelity,
                                   int attempt) const {
  if (backoff_base_seconds <= 0.0) return 0.0;
  double delay = backoff_base_seconds;
  for (int i = 1; i < attempt; ++i) delay *= backoff_factor;
  if (backoff_jitter_frac > 0.0) {
    const rng::HashNoise noise(backoff_seed);
    const double u = noise.uniform(config, static_cast<int>(fidelity),
                                   attempt, 206);
    delay *= 1.0 + backoff_jitter_frac * (2.0 * u - 1.0);
  }
  return delay;
}

ToolScheduler::ToolScheduler(const hls::DesignSpace& space,
                             sim::FpgaToolSim& sim, EvalCache& cache,
                             int n_workers, RetryPolicy policy)
    : space_(&space),
      sim_(&sim),
      cache_(&cache),
      policy_(policy),
      owned_pool_(std::make_unique<ThreadPool>(n_workers)),
      pool_(owned_pool_.get()) {
  policy_.max_attempts = std::max(policy_.max_attempts, 1);
}

ToolScheduler::ToolScheduler(const hls::DesignSpace& space,
                             sim::FpgaToolSim& sim, EvalCache& cache,
                             ThreadPool& shared_pool, RetryPolicy policy,
                             std::uint64_t cache_ns,
                             std::uint64_t cache_ledger)
    : space_(&space),
      sim_(&sim),
      cache_(&cache),
      policy_(policy),
      cache_ns_(cache_ns),
      cache_ledger_(cache_ledger),
      pool_(&shared_pool) {
  policy_.max_attempts = std::max(policy_.max_attempts, 1);
}

ToolScheduler::~ToolScheduler() {
  std::size_t unharvested = 0;
  for (const Inflight& e : inflight_)
    if (!e.harvested) ++unharvested;
  // Every accepted task eventually pushes (ThreadPool finishes queued work
  // before joining; a stopped pool made submitAsyncAt run inline), so this
  // drain terminates.
  while (unharvested > 0) {
    done_.pop();
    --unharvested;
  }
}

void ToolScheduler::resetAccounting() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    totals_ = {};
    last_ = {};
  }
  sim_now_ = 0.0;
  det_tool_seconds_ = 0.0;
  sim_->resetAccounting();
}

SchedulerStats ToolScheduler::totals() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return totals_;
}

SchedulerStats ToolScheduler::lastBatch() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_;
}

EvalResult ToolScheduler::execute(const EvalJob& job, bool counted) {
  // Worker-side span: pure timing/labeling, never feeds back into the run.
  obs::Span span(obs::tracer().enabled() ? &obs::tracer() : nullptr, "job",
                 "scheduler");
  span.id(static_cast<std::int64_t>(job.config))
      .fidelity(static_cast<int>(job.fidelity));
  EvalResult res;
  res.job = job;
  // Probe/join loop: a miss is followed by a single-flight join, so two
  // workers (or co-tenant campaigns sharing a namespace) asking for the
  // same flow concurrently launch ONE tool run. Only the first probe is
  // counted — logically this is one lookup, however many times a too-
  // shallow or failed leader sends us back around.
  bool first_probe = true;
  for (;;) {
    std::optional<std::array<sim::Report, sim::kNumFidelities>> cached;
    if (counted && first_probe)
      cached = cache_->findFlow(job.config, job.fidelity, cache_ns_,
                                cache_ledger_);
    else
      cached = cache_->findFlowUncounted(job.config, job.fidelity, cache_ns_);
    first_probe = false;
    if (cached) {
      res.stages = *cached;
      res.cache_hit = true;
      res.completed_fidelity = static_cast<int>(job.fidelity);
      span.outcome("cache_hit");
      return res;  // the artifacts already exist; nothing to charge
    }
    std::array<sim::Report, sim::kNumFidelities> served{};
    EvalCache::FlightLink leader_link;
    const EvalCache::FlightJoin join = cache_->joinFlight(
        job.config, job.fidelity, cache_ns_, cacheLedger(), &served,
        EvalCache::FlightLink{span.traceId(), span.spanId()}, &leader_link);
    if (join == EvalCache::FlightJoin::kServed) {
      res.stages = served;
      res.coalesced = true;
      res.completed_fidelity = static_cast<int>(job.fidelity);
      // Follower span linking to the leader's job span — possibly in
      // another campaign's trace (cross-tenant coalescing).
      span.link(leader_link.trace_id, leader_link.span_id)
          .outcome("coalesced");
      return res;  // the leader's run charged the leader; we pay nothing
    }
    if (join == EvalCache::FlightJoin::kLeader) break;
    // kRetry: the flight we waited out was too shallow, failed, or its
    // flow was evicted before we looked — re-probe and join again.
  }
  // One charged invocation runs the flow up to the requested fidelity; the
  // intermediate stage reports come with it for free (a real tool run emits
  // every stage's report along the way). Under injected faults the attempt
  // loop retries transient crashes and timeouts with deterministic backoff,
  // gives up immediately on a persistent per-config failure, and settles on
  // the best stage prefix any attempt completed.
  const hls::DirectiveConfig cfg = space_->config(job.config);
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    const sim::FlowAttempt fa = sim_->runFlowAttemptCounted(
        cfg, job.fidelity, attempt, policy_.attempt_timeout_seconds);
    ++res.attempts;
    res.charged_seconds += fa.attempt_seconds;
    if (fa.ok()) {
      res.stages = fa.stages;
      res.completed_fidelity = fa.completed_upto;
      res.failed_stage = -1;
      break;
    }
    res.wasted_seconds += fa.attempt_seconds;
    res.failed_stage = fa.failed_stage;
    if (fa.status == sim::AttemptStatus::kTimeout)
      ++res.timeout_attempts;
    else if (fa.status == sim::AttemptStatus::kTransientCrash)
      ++res.transient_crashes;
    if (fa.completed_upto > res.completed_fidelity) {
      // Keep the deepest prefix seen across attempts: a crashed impl run
      // still leaves valid hls/syn artifacts behind.
      res.stages = fa.stages;
      res.completed_fidelity = fa.completed_upto;
    }
    if (fa.status == sim::AttemptStatus::kPersistentFailure) {
      res.persistent_failure = true;
      break;  // the same stage dies every time; retrying only burns hours
    }
    if (attempt < policy_.max_attempts)
      res.backoff_seconds +=
          policy_.backoffSeconds(job.config, job.fidelity, attempt);
  }
  if (res.completed_fidelity >= 0)
    cache_->storeFlow(job.config,
                      static_cast<sim::Fidelity>(res.completed_fidelity),
                      res.stages, cache_ns_);
  // Leader obligation: end the flight AFTER the store so woken waiters find
  // the artifacts — unconditionally, or a failed run would strand them.
  const int fanout = cache_->finishFlight(job.config, cache_ns_);
  if (obs::metrics().enabled()) {
    // Small exact integers from worker threads: order-independent sums, so
    // the histogram stays deterministic even though coalescing is not.
    obs::metrics().defineHistogram("slo.coalesce_fanout",
                                   obs::MetricsRegistry::countBounds());
    obs::metrics().observe("slo.coalesce_fanout", static_cast<double>(fanout));
  }
  span.attempts(res.attempts).value(res.charged_seconds);
  if (res.persistent_failure)
    span.outcome("persistent_failure");
  else if (res.completed_fidelity < 0)
    span.outcome("failed");
  else if (res.degraded())
    span.outcome("degraded");
  else
    span.outcome("ok");
  // Flight-recorder health: a job that burned its whole retry budget (or
  // died persistently) is a retry storm. Emitted from the worker thread —
  // the recorder's health sink is thread-safe by contract.
  if (diag::recorder().enabled() &&
      (res.persistent_failure ||
       res.completed_fidelity < static_cast<int>(job.fidelity))) {
    diag::HealthWarning w;
    w.kind = diag::HealthKind::kRetryStorm;
    w.fidelity = static_cast<int>(job.fidelity);
    w.value = static_cast<double>(res.attempts);
    w.threshold = static_cast<double>(policy_.max_attempts);
    w.message = "config " + std::to_string(job.config) +
                (res.persistent_failure
                     ? " fails persistently at this stage"
                     : " exhausted its retry budget short of the target "
                       "fidelity");
    diag::recorder().health(std::move(w));
  }
  return res;
}

std::vector<EvalResult> ToolScheduler::runBatch(
    const std::vector<EvalJob>& jobs) {
  obs::Span span(obs::tracer().enabled() ? &obs::tracer() : nullptr,
                 "run_batch", "scheduler");
  std::vector<std::future<EvalResult>> futures;
  futures.reserve(jobs.size());
  // Capture the driving thread's causal context at submit time and
  // re-install it on the worker, so job spans parent to the round that
  // proposed them; host-clock queue wait is observational only (never fed
  // back) and is skipped entirely while metrics are off.
  const obs::TraceContext ctx =
      obs::tracer().enabled() ? obs::currentContext() : obs::TraceContext{};
  const bool timed = obs::metrics().enabled();
  for (const EvalJob& job : jobs) {
    const auto submitted = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    futures.push_back(pool_->submit([this, job, ctx, timed, submitted] {
      obs::ContextGuard guard(
          obs::tracer().enabled() ? &obs::tracer() : nullptr, ctx);
      if (timed)
        obs::metrics().observe(
            "slo.queue_wait_seconds",
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          submitted)
                .count());
      return execute(job);
    }));
  }

  if (obs::metrics().enabled()) {
    obs::metrics().defineHistogram("sched.queue_depth",
                                   obs::MetricsRegistry::countBounds());
    obs::metrics().observe("sched.queue_depth",
                           static_cast<double>(pool_->queueDepth()));
  }

  std::vector<EvalResult> results;
  results.reserve(jobs.size());
  for (auto& f : futures) results.push_back(f.get());

  // Accounting (main thread, deterministic). Wall clock: greedy list
  // scheduling of the round's charges onto the farm in job order; the
  // round costs its makespan. A job occupies its worker for every attempt
  // plus the backoff waits between them. With one worker and no faults this
  // degenerates to the plain sum, i.e. wall == charged, the sequential
  // regime.
  SchedulerStats round;
  std::vector<double> load(pool_->numWorkers(), 0.0);
  for (const EvalResult& r : results) {
    round.charged_seconds += r.charged_seconds;
    round.attempts += r.attempts;
    round.transient_failures += r.transient_crashes;
    round.timeouts += r.timeout_attempts;
    round.retry_seconds_wasted += r.wasted_seconds;
    round.backoff_seconds += r.backoff_seconds;
    if (r.persistent_failure) ++round.persistent_failures;
    // Degraded = genuinely fell back to a completed lower stage. Jobs that
    // completed nothing show up in the failure counters instead.
    if (!r.cache_hit && !r.persistent_failure && r.degraded() &&
        r.completed_fidelity >= 0)
      ++round.degraded_jobs;
    if (r.cache_hit) {
      ++round.cache_hits;
    } else if (r.coalesced) {
      ++round.coalesced;  // zero charge, zero occupancy: the leader pays
    } else {
      ++round.tool_runs;
      auto slot = std::min_element(load.begin(), load.end());
      *slot += r.charged_seconds + r.backoff_seconds;
    }
    // Deterministic per-job mirror of the simulator's accumulator (job
    // order — matches the single-worker attempt order bitwise).
    det_tool_seconds_ += r.charged_seconds;
  }
  round.wall_seconds = *std::max_element(load.begin(), load.end());
  sim_now_ += round.wall_seconds;  // round barrier: the clock jumps a makespan

  SchedulerStats after;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_ = round;
    totals_.charged_seconds += round.charged_seconds;
    totals_.wall_seconds += round.wall_seconds;
    totals_.tool_runs += round.tool_runs;
    totals_.cache_hits += round.cache_hits;
    totals_.coalesced += round.coalesced;
    totals_.attempts += round.attempts;
    totals_.transient_failures += round.transient_failures;
    totals_.timeouts += round.timeouts;
    totals_.persistent_failures += round.persistent_failures;
    totals_.degraded_jobs += round.degraded_jobs;
    totals_.retry_seconds_wasted += round.retry_seconds_wasted;
    totals_.backoff_seconds += round.backoff_seconds;
    after = totals_;
  }

  // Metrics mirror the ledgers exactly: gauges are SET from the very totals
  // the scheduler reports (not re-accumulated), on the main thread, in job
  // order, so the metrics dump ties out with totals() bit-for-bit.
  if (obs::metrics().enabled()) {
    obs::MetricsRegistry& m = obs::metrics();
    m.set("sched.charged_seconds", after.charged_seconds);
    m.set("sched.wall_seconds", after.wall_seconds);
    m.set("sched.retry_seconds_wasted", after.retry_seconds_wasted);
    m.set("sched.backoff_seconds", after.backoff_seconds);
    m.set("sched.tool_runs", static_cast<double>(after.tool_runs));
    m.set("sched.cache_hits", static_cast<double>(after.cache_hits));
    m.set("sched.attempts", static_cast<double>(after.attempts));
    m.set("sched.transient_failures",
          static_cast<double>(after.transient_failures));
    m.set("sched.timeouts", static_cast<double>(after.timeouts));
    m.set("sched.persistent_failures",
          static_cast<double>(after.persistent_failures));
    m.set("sched.degraded_jobs", static_cast<double>(after.degraded_jobs));
    const double lookups =
        static_cast<double>(after.cache_hits + after.tool_runs);
    m.set("sched.cache_hit_rate",
          lookups > 0.0 ? static_cast<double>(after.cache_hits) / lookups
                        : 0.0);
    m.defineHistogram("sched.batch_size",
                      obs::MetricsRegistry::countBounds());
    m.observe("sched.batch_size", static_cast<double>(jobs.size()));
  }
  span.id(static_cast<std::int64_t>(jobs.size()))
      .value(round.charged_seconds);
  return results;
}

std::uint64_t ToolScheduler::submitAsync(const EvalJob& job) {
  return submitAsyncAt(job, sim_now_);
}

std::uint64_t ToolScheduler::submitAsyncAt(const EvalJob& job,
                                           double sim_start) {
  const std::uint64_t seq = next_seq_++;
  inflight_.push_back(Inflight{job, seq, sim_start, false, {}});
  // Same propagation as runBatch: the proposal's context travels with the
  // closure and survives the event loop's fantasy/invalidate cycle.
  const obs::TraceContext ctx =
      obs::tracer().enabled() ? obs::currentContext() : obs::TraceContext{};
  const bool timed = obs::metrics().enabled();
  const auto submitted = timed ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  const bool accepted =
      pool_->submitTo(done_, [this, job, seq, ctx, timed, submitted] {
        obs::ContextGuard guard(
            obs::tracer().enabled() ? &obs::tracer() : nullptr, ctx);
        if (timed)
          obs::metrics().observe(
              "slo.queue_wait_seconds",
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - submitted)
                  .count());
        return std::make_pair(seq, execute(job, /*counted=*/false));
      });
  if (!accepted) {
    // Pool stopped (server shutdown race): run inline so the completion
    // still materializes and nextCompletion() cannot deadlock.
    Inflight& e = inflight_.back();
    e.result = execute(job, /*counted=*/false);
    e.harvested = true;
  }
  return seq;
}

namespace {
/// Simulated worker occupancy of a finished job: a tool run holds its
/// worker for every attempt plus the backoff waits between them; cache
/// hits and coalesced joins occupy nothing.
double simDuration(const EvalResult& r) {
  if (r.cache_hit || r.coalesced) return 0.0;
  return r.charged_seconds + r.backoff_seconds;
}
}  // namespace

ToolScheduler::AsyncCompletion ToolScheduler::nextCompletion() {
  obs::Span span(obs::tracer().enabled() ? &obs::tracer() : nullptr,
                 "completion", "scheduler");
  // Harvest EVERY outstanding real result first: the earliest simulated
  // event cannot be identified until every in-flight duration is known.
  // The jobs already ran concurrently on the pool, so this preserves real
  // parallelism; only the event-processing order is serialized.
  std::size_t unharvested = 0;
  for (const Inflight& e : inflight_)
    if (!e.harvested) ++unharvested;
  while (unharvested > 0) {
    auto [seq, result] = done_.pop();
    for (Inflight& e : inflight_) {
      if (e.seq != seq) continue;
      e.result = std::move(result);
      e.harvested = true;
      --unharvested;
      break;
    }
  }
  // Earliest simulated completion wins; ties break on submission order.
  std::size_t best = 0;
  double best_end = inflight_[0].sim_start + simDuration(inflight_[0].result);
  for (std::size_t i = 1; i < inflight_.size(); ++i) {
    const double end = inflight_[i].sim_start + simDuration(inflight_[i].result);
    if (end < best_end ||
        (end == best_end && inflight_[i].seq < inflight_[best].seq)) {
      best = i;
      best_end = end;
    }
  }
  AsyncCompletion out;
  out.result = std::move(inflight_[best].result);
  out.seq = inflight_[best].seq;
  out.sim_start = inflight_[best].sim_start;
  out.sim_end = best_end;
  inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(best));

  // The clock never runs backwards: a resumed in-flight job dispatched
  // before the checkpoint can complete "in the past" relative to events
  // already journaled.
  sim_now_ = std::max(sim_now_, out.sim_end);
  const EvalResult& r = out.result;
  det_tool_seconds_ += r.charged_seconds;
  // The async lookup was UNCOUNTED on the worker; book it now, in event
  // order, so the checkpointed ledger is bit-stable. A coalesced join still
  // counts as the miss it was when the worker asked.
  cache_->countLookup(r.cache_hit, cacheLedger());

  SchedulerStats after;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    SchedulerStats one;  // per-completion "round" for lastBatch() observers
    one.charged_seconds = r.charged_seconds;
    one.attempts = r.attempts;
    one.transient_failures = r.transient_crashes;
    one.timeouts = r.timeout_attempts;
    one.retry_seconds_wasted = r.wasted_seconds;
    one.backoff_seconds = r.backoff_seconds;
    if (r.persistent_failure) one.persistent_failures = 1;
    if (!r.cache_hit && !r.persistent_failure && r.degraded() &&
        r.completed_fidelity >= 0)
      one.degraded_jobs = 1;
    if (r.cache_hit)
      one.cache_hits = 1;
    else if (r.coalesced)
      one.coalesced = 1;
    else
      one.tool_runs = 1;
    one.wall_seconds = out.sim_end - out.sim_start;
    last_ = one;
    totals_.charged_seconds += one.charged_seconds;
    totals_.tool_runs += one.tool_runs;
    totals_.cache_hits += one.cache_hits;
    totals_.coalesced += one.coalesced;
    totals_.attempts += one.attempts;
    totals_.transient_failures += one.transient_failures;
    totals_.timeouts += one.timeouts;
    totals_.persistent_failures += one.persistent_failures;
    totals_.degraded_jobs += one.degraded_jobs;
    totals_.retry_seconds_wasted += one.retry_seconds_wasted;
    totals_.backoff_seconds += one.backoff_seconds;
    // Wall clock IS the simulated clock in the async regime — overlap means
    // per-completion walls don't add up.
    totals_.wall_seconds = sim_now_;
    after = totals_;
  }

  if (obs::metrics().enabled()) {
    obs::MetricsRegistry& m = obs::metrics();
    m.set("sched.charged_seconds", after.charged_seconds);
    m.set("sched.wall_seconds", after.wall_seconds);
    m.set("sched.retry_seconds_wasted", after.retry_seconds_wasted);
    m.set("sched.backoff_seconds", after.backoff_seconds);
    m.set("sched.tool_runs", static_cast<double>(after.tool_runs));
    m.set("sched.cache_hits", static_cast<double>(after.cache_hits));
    m.set("sched.coalesced", static_cast<double>(after.coalesced));
    m.set("sched.attempts", static_cast<double>(after.attempts));
    m.set("sched.transient_failures",
          static_cast<double>(after.transient_failures));
    m.set("sched.timeouts", static_cast<double>(after.timeouts));
    m.set("sched.persistent_failures",
          static_cast<double>(after.persistent_failures));
    m.set("sched.degraded_jobs", static_cast<double>(after.degraded_jobs));
    m.set("sched.in_flight", static_cast<double>(inflight_.size()));
  }
  span.id(static_cast<std::int64_t>(out.result.job.config))
      .value(out.sim_end);
  return out;
}

}  // namespace cmmfo::runtime
