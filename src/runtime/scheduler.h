#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "hls/design_space.h"
#include "runtime/eval_cache.h"
#include "runtime/thread_pool.h"
#include "sim/tool.h"

namespace cmmfo::runtime {

/// One requested tool invocation: run `config` up to `fidelity`.
struct EvalJob {
  std::size_t config = 0;
  sim::Fidelity fidelity = sim::Fidelity::kHls;
};

/// How the scheduler reacts to injected tool failures (sim::FaultParams).
/// The defaults are a no-op when the fault layer is off: nothing ever
/// fails, so the attempt loop runs exactly once with no timeout and no
/// backoff, and accounting is bit-for-bit the single-attempt path.
struct RetryPolicy {
  /// Attempts per job before giving up (>= 1). Exhaustion degrades the job
  /// to its best completed prefix (see EvalResult::completed_fidelity).
  int max_attempts = 3;
  /// Kill an attempt after this many simulated seconds (0 = no timeout).
  /// Should sit above the nominal impl-stage time or healthy runs die too.
  double attempt_timeout_seconds = 0.0;
  /// Deterministic exponential backoff between attempts:
  ///   base * factor^(attempt-1) * (1 + jitter * (2u - 1)),
  /// u a keyed hash uniform in (config, fidelity, attempt). Backoff extends
  /// the round's makespan but charges no tool-seconds (the license is
  /// released while waiting).
  double backoff_base_seconds = 30.0;
  double backoff_factor = 2.0;
  double backoff_jitter_frac = 0.25;
  std::uint64_t backoff_seed = 0xB0FF;

  double backoffSeconds(std::size_t config, sim::Fidelity fidelity,
                        int attempt) const;
};

/// Outcome of one job: the per-stage reports of the flow up to the highest
/// stage that completed (entries beyond it are default-constructed), plus
/// accounting and the fault-tolerance verdict.
struct EvalResult {
  EvalJob job;
  std::array<sim::Report, sim::kNumFidelities> stages{};
  bool cache_hit = false;
  /// Served by joining another requester's concurrent tool run on the same
  /// (config, fidelity) — single-flight coalescing. Like a cache hit this
  /// charges nothing and occupies no worker in the simulated-wall model
  /// (the leader's scheduler carries the charge), but it is counted
  /// separately because the artifact did NOT exist when we asked.
  bool coalesced = false;
  /// Tool seconds charged for this job over ALL its attempts, wasted or
  /// useful (0 on a cache hit).
  double charged_seconds = 0.0;

  // ---- Fault-tolerance outcome (trivial when faults are off). ----
  /// Highest stage with a finished report; equals the requested fidelity on
  /// success, lower on a degraded job, -1 when nothing completed.
  int completed_fidelity = -1;
  /// Flow attempts consumed (0 on a cache hit, 1 in the healthy regime).
  int attempts = 0;
  /// Attempts lost to a transient crash / killed at the timeout.
  int transient_crashes = 0;
  int timeout_attempts = 0;
  /// Charged seconds burned by failed attempts (subset of charged_seconds).
  double wasted_seconds = 0.0;
  /// Scheduler wait between attempts; extends wall-clock, never charged.
  double backoff_seconds = 0.0;
  /// The job died on a per-(config, stage) persistent fault: retrying can
  /// never complete it and the optimizer should penalize the design.
  bool persistent_failure = false;
  /// Stage that caused the final failure (-1 on success).
  int failed_stage = -1;

  bool degraded() const {
    return completed_fidelity < static_cast<int>(job.fidelity);
  }
  /// The report at the requested fidelity (valid only when !degraded()).
  const sim::Report& report() const {
    return stages[static_cast<int>(job.fidelity)];
  }
  /// The report at the highest completed stage (requires completed >= 0).
  const sim::Report& completedReport() const {
    return stages[completed_fidelity];
  }
};

/// Cost accounting over scheduler rounds. Two notions of time:
///  - charged_seconds: the Table-I metric, sum of every flow attempt's tool
///    time (what you pay in tool licenses / CPU hours) — identical to the
///    sequential optimizer's total by construction;
///  - wall_seconds: the simulated elapsed time of running each round's jobs
///    on an `n_workers`-wide farm (greedy list scheduling in job order,
///    makespan = max per-worker load, retries and backoff included) — what
///    a deployment actually waits.
/// retry_seconds_wasted carves the failed-attempt share out of
/// charged_seconds so graceful degradation can be costed honestly.
struct SchedulerStats {
  double charged_seconds = 0.0;
  double wall_seconds = 0.0;
  int tool_runs = 0;    // charged flow invocations (jobs that ran, not hits)
  int cache_hits = 0;
  int coalesced = 0;    // jobs served by joining a concurrent in-flight run
  // ---- Fault-tolerance accounting. ----
  int attempts = 0;             // flow attempts, including failed ones
  int transient_failures = 0;   // attempts lost to transient crashes
  int timeouts = 0;             // attempts killed at the deadline
  int persistent_failures = 0;  // jobs abandoned on a persistent fault
  int degraded_jobs = 0;        // jobs that fell back to a lower fidelity
  double retry_seconds_wasted = 0.0;  // charged seconds of failed attempts
  double backoff_seconds = 0.0;       // wall-only wait between attempts
};

/// Worker-pool executor for batches of FPGA-tool runs.
///
/// Jobs of one runBatch() round execute concurrently on the thread pool.
/// Results are returned in job order and all model-visible state is
/// deterministic in (jobs, cache contents, fault/retry knobs) alone —
/// worker count and thread interleaving can only affect the floating-point
/// summation order of the simulator's global accounting, never the reports.
///
/// Failure handling: each job retries up to policy.max_attempts times with
/// deterministic backoff; a persistent fault aborts the loop immediately.
/// The job then settles on the best stage prefix any attempt completed.
class ToolScheduler {
 public:
  ToolScheduler(const hls::DesignSpace& space, sim::FpgaToolSim& sim,
                EvalCache& cache, int n_workers, RetryPolicy policy = {});
  /// Shared-pool variant for the multi-campaign server: jobs execute on an
  /// externally owned pool (shared across campaigns; must outlive this
  /// scheduler) and cache traffic is keyed under `cache_ns`, so campaigns
  /// against the same benchmark share artifacts while unrelated ones cannot
  /// collide on raw config ids. Hit/miss counts land on `cache_ledger`
  /// (0 = the namespace itself) — per CAMPAIGN, so two tenants sharing a
  /// namespace keep separate ledgers. Accounting stays per-scheduler — the
  /// simulated wall-clock models this campaign's rounds on the full shared
  /// farm width.
  ToolScheduler(const hls::DesignSpace& space, sim::FpgaToolSim& sim,
                EvalCache& cache, ThreadPool& shared_pool,
                RetryPolicy policy = {}, std::uint64_t cache_ns = 0,
                std::uint64_t cache_ledger = 0);
  /// Blocks until every outstanding async task has pushed its result (the
  /// tasks reference this object's completion queue), then discards them.
  /// A preempted optimizer journaled those jobs as in-flight and re-runs
  /// them on resume, so nothing is lost.
  ~ToolScheduler();

  /// Execute one round of jobs; results come back in job order.
  std::vector<EvalResult> runBatch(const std::vector<EvalJob>& jobs);

  // ---- Asynchronous (event-driven) farm interface ------------------------
  // The synchronous runBatch() drains a whole round before the optimizer
  // sees anything. The async interface instead hands back ONE completion at
  // a time, in deterministic SIMULATED-time order: each job is dispatched at
  // an absolute simulated start time (the clock simNow() at submission — a
  // worker that just freed), occupies its simulated worker for
  // charged + backoff seconds (zero for cache hits and coalesced joins),
  // and completes at sim_end = sim_start + duration. nextCompletion()
  // returns the in-flight job with the smallest (sim_end, submission seq),
  // REGARDLESS of real thread interleaving, so the optimizer's event order
  // — and everything downstream of it — is bit-reproducible.

  /// One processed completion event.
  struct AsyncCompletion {
    EvalResult result;
    std::uint64_t seq = 0;     // submission sequence number
    double sim_start = 0.0;    // simulated dispatch time
    double sim_end = 0.0;      // simulated completion time
  };

  /// Dispatch a job at the current simulated clock. Returns its seq.
  std::uint64_t submitAsync(const EvalJob& job);
  /// Dispatch at an explicit simulated start time — the resume path re-runs
  /// journaled in-flight jobs with their ORIGINAL dispatch times (possibly
  /// before the checkpoint's clock), so the completion order replays
  /// exactly.
  std::uint64_t submitAsyncAt(const EvalJob& job, double sim_start);

  /// Block until the earliest simulated completion among the in-flight jobs
  /// and fold it into the totals (per-completion accounting: this is where
  /// the FairScheduler's charge lands in the server). Requires inFlight()
  /// > 0. Every outstanding real result is harvested first — the earliest
  /// simulated event cannot be identified until every in-flight duration is
  /// known — so real parallelism is preserved (the jobs already ran
  /// concurrently) while event processing stays deterministic.
  AsyncCompletion nextCompletion();

  /// Jobs dispatched and not yet returned by nextCompletion().
  std::size_t inFlight() const { return inflight_.size(); }
  /// The absolute simulated clock. Advanced by runBatch() (one round's
  /// makespan) and nextCompletion() (to the processed event's sim_end), so
  /// it always equals totals().wall_seconds.
  double simNow() const { return sim_now_; }
  /// Per-job deterministic mirror of the simulator's tool-seconds
  /// accumulator: charges fold in at completion-PROCESSING time, not when a
  /// worker thread happens to run the attempt, so the async checkpoint can
  /// journal a tool-seconds figure that excludes still-in-flight jobs and
  /// is bit-stable across runs. Equals the simulator's accumulator bitwise
  /// in the sequential healthy regime.
  double deterministicToolSeconds() const { return det_tool_seconds_; }
  /// Restore the deterministic accumulator from a checkpoint (the async
  /// resume path; pairs with FpgaToolSim::setAccounting).
  void restoreDeterministicToolSeconds(double seconds) {
    det_tool_seconds_ = seconds;
  }

  /// Accounting snapshots, returned BY VALUE under the stats lock so that a
  /// concurrent observer (metrics scraper, progress UI) polling during
  /// runBatch() never sees a torn ledger — e.g. retry_seconds_wasted from
  /// one round paired with charged_seconds from the previous one.
  SchedulerStats totals() const;
  SchedulerStats lastBatch() const;
  const RetryPolicy& policy() const { return policy_; }
  int numWorkers() const { return pool_->numWorkers(); }
  std::uint64_t cacheNamespace() const { return cache_ns_; }
  /// Effective counter key for this campaign's cache hit/miss ledger.
  std::uint64_t cacheLedger() const {
    return cache_ledger_ != 0 ? cache_ledger_ : cache_ns_;
  }

  /// Reset BOTH the scheduler totals and the simulator's tool-seconds
  /// accumulator, keeping the two ledgers tied out. (A bare
  /// FpgaToolSim::resetAccounting() desyncs them — always reset through
  /// the scheduler once one exists.)
  void resetAccounting();

  /// Restore totals from a checkpoint (the caller restores the simulator's
  /// own accumulator, which can differ in the last bits under parallel
  /// summation, via FpgaToolSim::setAccounting). Also re-seats the
  /// simulated clock at the restored wall figure so async dispatches
  /// continue from where the journal left off.
  void restoreTotals(const SchedulerStats& totals) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    totals_ = totals;
    sim_now_ = totals.wall_seconds;
  }

 private:
  /// Worker-side execution of one job (cache probe, single-flight join,
  /// retry loop, store). `counted` probes bump the cache hit/miss ledger
  /// inline (the synchronous path, where worker traffic is ordered by the
  /// batch drain); async workers probe UNCOUNTED and the lookup is booked
  /// later in nextCompletion(), in deterministic event order.
  EvalResult execute(const EvalJob& job, bool counted = true);

  const hls::DesignSpace* space_;
  sim::FpgaToolSim* sim_;
  EvalCache* cache_;
  RetryPolicy policy_;
  std::uint64_t cache_ns_ = 0;
  std::uint64_t cache_ledger_ = 0;
  /// Owned in the single-campaign regime, null when a shared pool was
  /// injected; pool_ always points at the pool actually in use.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  /// Guards totals_ and last_: written by runBatch()/resetAccounting()/
  /// restoreTotals() on the driving thread, read by totals()/lastBatch()
  /// possibly from observer threads.
  mutable std::mutex stats_mu_;
  SchedulerStats totals_;
  SchedulerStats last_;

  // ---- Async state (driving thread only, except done_) -------------------
  struct Inflight {
    EvalJob job;
    std::uint64_t seq = 0;
    double sim_start = 0.0;
    bool harvested = false;  // real result landed in `result`
    EvalResult result;
  };
  std::vector<Inflight> inflight_;
  /// Workers push (seq, result) the moment they finish — real completion
  /// order; nextCompletion() re-orders by simulated time.
  CompletionQueue<std::pair<std::uint64_t, EvalResult>> done_;
  double sim_now_ = 0.0;
  double det_tool_seconds_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cmmfo::runtime
