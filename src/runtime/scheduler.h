#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hls/design_space.h"
#include "runtime/eval_cache.h"
#include "runtime/thread_pool.h"
#include "sim/tool.h"

namespace cmmfo::runtime {

/// One requested tool invocation: run `config` up to `fidelity`.
struct EvalJob {
  std::size_t config = 0;
  sim::Fidelity fidelity = sim::Fidelity::kHls;
};

/// How the scheduler reacts to injected tool failures (sim::FaultParams).
/// The defaults are a no-op when the fault layer is off: nothing ever
/// fails, so the attempt loop runs exactly once with no timeout and no
/// backoff, and accounting is bit-for-bit the single-attempt path.
struct RetryPolicy {
  /// Attempts per job before giving up (>= 1). Exhaustion degrades the job
  /// to its best completed prefix (see EvalResult::completed_fidelity).
  int max_attempts = 3;
  /// Kill an attempt after this many simulated seconds (0 = no timeout).
  /// Should sit above the nominal impl-stage time or healthy runs die too.
  double attempt_timeout_seconds = 0.0;
  /// Deterministic exponential backoff between attempts:
  ///   base * factor^(attempt-1) * (1 + jitter * (2u - 1)),
  /// u a keyed hash uniform in (config, fidelity, attempt). Backoff extends
  /// the round's makespan but charges no tool-seconds (the license is
  /// released while waiting).
  double backoff_base_seconds = 30.0;
  double backoff_factor = 2.0;
  double backoff_jitter_frac = 0.25;
  std::uint64_t backoff_seed = 0xB0FF;

  double backoffSeconds(std::size_t config, sim::Fidelity fidelity,
                        int attempt) const;
};

/// Outcome of one job: the per-stage reports of the flow up to the highest
/// stage that completed (entries beyond it are default-constructed), plus
/// accounting and the fault-tolerance verdict.
struct EvalResult {
  EvalJob job;
  std::array<sim::Report, sim::kNumFidelities> stages{};
  bool cache_hit = false;
  /// Tool seconds charged for this job over ALL its attempts, wasted or
  /// useful (0 on a cache hit).
  double charged_seconds = 0.0;

  // ---- Fault-tolerance outcome (trivial when faults are off). ----
  /// Highest stage with a finished report; equals the requested fidelity on
  /// success, lower on a degraded job, -1 when nothing completed.
  int completed_fidelity = -1;
  /// Flow attempts consumed (0 on a cache hit, 1 in the healthy regime).
  int attempts = 0;
  /// Attempts lost to a transient crash / killed at the timeout.
  int transient_crashes = 0;
  int timeout_attempts = 0;
  /// Charged seconds burned by failed attempts (subset of charged_seconds).
  double wasted_seconds = 0.0;
  /// Scheduler wait between attempts; extends wall-clock, never charged.
  double backoff_seconds = 0.0;
  /// The job died on a per-(config, stage) persistent fault: retrying can
  /// never complete it and the optimizer should penalize the design.
  bool persistent_failure = false;
  /// Stage that caused the final failure (-1 on success).
  int failed_stage = -1;

  bool degraded() const {
    return completed_fidelity < static_cast<int>(job.fidelity);
  }
  /// The report at the requested fidelity (valid only when !degraded()).
  const sim::Report& report() const {
    return stages[static_cast<int>(job.fidelity)];
  }
  /// The report at the highest completed stage (requires completed >= 0).
  const sim::Report& completedReport() const {
    return stages[completed_fidelity];
  }
};

/// Cost accounting over scheduler rounds. Two notions of time:
///  - charged_seconds: the Table-I metric, sum of every flow attempt's tool
///    time (what you pay in tool licenses / CPU hours) — identical to the
///    sequential optimizer's total by construction;
///  - wall_seconds: the simulated elapsed time of running each round's jobs
///    on an `n_workers`-wide farm (greedy list scheduling in job order,
///    makespan = max per-worker load, retries and backoff included) — what
///    a deployment actually waits.
/// retry_seconds_wasted carves the failed-attempt share out of
/// charged_seconds so graceful degradation can be costed honestly.
struct SchedulerStats {
  double charged_seconds = 0.0;
  double wall_seconds = 0.0;
  int tool_runs = 0;    // charged flow invocations (jobs that ran, not hits)
  int cache_hits = 0;
  // ---- Fault-tolerance accounting. ----
  int attempts = 0;             // flow attempts, including failed ones
  int transient_failures = 0;   // attempts lost to transient crashes
  int timeouts = 0;             // attempts killed at the deadline
  int persistent_failures = 0;  // jobs abandoned on a persistent fault
  int degraded_jobs = 0;        // jobs that fell back to a lower fidelity
  double retry_seconds_wasted = 0.0;  // charged seconds of failed attempts
  double backoff_seconds = 0.0;       // wall-only wait between attempts
};

/// Worker-pool executor for batches of FPGA-tool runs.
///
/// Jobs of one runBatch() round execute concurrently on the thread pool.
/// Results are returned in job order and all model-visible state is
/// deterministic in (jobs, cache contents, fault/retry knobs) alone —
/// worker count and thread interleaving can only affect the floating-point
/// summation order of the simulator's global accounting, never the reports.
///
/// Failure handling: each job retries up to policy.max_attempts times with
/// deterministic backoff; a persistent fault aborts the loop immediately.
/// The job then settles on the best stage prefix any attempt completed.
class ToolScheduler {
 public:
  ToolScheduler(const hls::DesignSpace& space, sim::FpgaToolSim& sim,
                EvalCache& cache, int n_workers, RetryPolicy policy = {});
  /// Shared-pool variant for the multi-campaign server: jobs execute on an
  /// externally owned pool (shared across campaigns; must outlive this
  /// scheduler) and cache traffic is keyed under `cache_ns`, so campaigns
  /// against the same benchmark share artifacts while unrelated ones cannot
  /// collide on raw config ids. Hit/miss counts land on `cache_ledger`
  /// (0 = the namespace itself) — per CAMPAIGN, so two tenants sharing a
  /// namespace keep separate ledgers. Accounting stays per-scheduler — the
  /// simulated wall-clock models this campaign's rounds on the full shared
  /// farm width.
  ToolScheduler(const hls::DesignSpace& space, sim::FpgaToolSim& sim,
                EvalCache& cache, ThreadPool& shared_pool,
                RetryPolicy policy = {}, std::uint64_t cache_ns = 0,
                std::uint64_t cache_ledger = 0);

  /// Execute one round of jobs; results come back in job order.
  std::vector<EvalResult> runBatch(const std::vector<EvalJob>& jobs);

  /// Accounting snapshots, returned BY VALUE under the stats lock so that a
  /// concurrent observer (metrics scraper, progress UI) polling during
  /// runBatch() never sees a torn ledger — e.g. retry_seconds_wasted from
  /// one round paired with charged_seconds from the previous one.
  SchedulerStats totals() const;
  SchedulerStats lastBatch() const;
  const RetryPolicy& policy() const { return policy_; }
  int numWorkers() const { return pool_->numWorkers(); }
  std::uint64_t cacheNamespace() const { return cache_ns_; }
  /// Effective counter key for this campaign's cache hit/miss ledger.
  std::uint64_t cacheLedger() const {
    return cache_ledger_ != 0 ? cache_ledger_ : cache_ns_;
  }

  /// Reset BOTH the scheduler totals and the simulator's tool-seconds
  /// accumulator, keeping the two ledgers tied out. (A bare
  /// FpgaToolSim::resetAccounting() desyncs them — always reset through
  /// the scheduler once one exists.)
  void resetAccounting();

  /// Restore totals from a checkpoint (the caller restores the simulator's
  /// own accumulator, which can differ in the last bits under parallel
  /// summation, via FpgaToolSim::setAccounting).
  void restoreTotals(const SchedulerStats& totals) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    totals_ = totals;
  }

 private:
  /// Worker-side execution of one job (cache lookup, retry loop, store).
  EvalResult execute(const EvalJob& job);

  const hls::DesignSpace* space_;
  sim::FpgaToolSim* sim_;
  EvalCache* cache_;
  RetryPolicy policy_;
  std::uint64_t cache_ns_ = 0;
  std::uint64_t cache_ledger_ = 0;
  /// Owned in the single-campaign regime, null when a shared pool was
  /// injected; pool_ always points at the pool actually in use.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  /// Guards totals_ and last_: written by runBatch()/resetAccounting()/
  /// restoreTotals() on the driving thread, read by totals()/lastBatch()
  /// possibly from observer threads.
  mutable std::mutex stats_mu_;
  SchedulerStats totals_;
  SchedulerStats last_;
};

}  // namespace cmmfo::runtime
