#pragma once

#include <array>
#include <vector>

#include "hls/design_space.h"
#include "runtime/eval_cache.h"
#include "runtime/thread_pool.h"
#include "sim/tool.h"

namespace cmmfo::runtime {

/// One requested tool invocation: run `config` up to `fidelity`.
struct EvalJob {
  std::size_t config = 0;
  sim::Fidelity fidelity = sim::Fidelity::kHls;
};

/// Outcome of one job: the per-stage reports of the flow up to the job's
/// fidelity (entries beyond it are default-constructed), plus accounting.
struct EvalResult {
  EvalJob job;
  std::array<sim::Report, sim::kNumFidelities> stages{};
  bool cache_hit = false;
  /// Tool seconds charged for this job (0 on a cache hit).
  double charged_seconds = 0.0;

  /// The report at the requested fidelity.
  const sim::Report& report() const {
    return stages[static_cast<int>(job.fidelity)];
  }
};

/// Cost accounting over scheduler rounds. Two notions of time:
///  - charged_seconds: the Table-I metric, sum of every flow's tool time
///    (what you pay in tool licenses / CPU hours) — identical to the
///    sequential optimizer's total by construction;
///  - wall_seconds: the simulated elapsed time of running each round's jobs
///    on an `n_workers`-wide farm (greedy list scheduling in job order,
///    makespan = max per-worker load) — what a deployment actually waits.
struct SchedulerStats {
  double charged_seconds = 0.0;
  double wall_seconds = 0.0;
  int tool_runs = 0;    // charged flow invocations (cache misses)
  int cache_hits = 0;
};

/// Worker-pool executor for batches of FPGA-tool runs.
///
/// Jobs of one runBatch() round execute concurrently on the thread pool.
/// Results are returned in job order and all model-visible state is
/// deterministic in (jobs, cache contents) alone — worker count and thread
/// interleaving can only affect the floating-point summation order of the
/// simulator's global accounting, never the reports.
class ToolScheduler {
 public:
  ToolScheduler(const hls::DesignSpace& space, sim::FpgaToolSim& sim,
                EvalCache& cache, int n_workers);

  /// Execute one round of jobs; results come back in job order.
  std::vector<EvalResult> runBatch(const std::vector<EvalJob>& jobs);

  const SchedulerStats& totals() const { return totals_; }
  const SchedulerStats& lastBatch() const { return last_; }
  int numWorkers() const { return pool_.numWorkers(); }

 private:
  /// Worker-side execution of one job (cache lookup, tool run, store).
  EvalResult execute(const EvalJob& job);

  const hls::DesignSpace* space_;
  sim::FpgaToolSim* sim_;
  EvalCache* cache_;
  ThreadPool pool_;
  SchedulerStats totals_;
  SchedulerStats last_;
};

}  // namespace cmmfo::runtime
