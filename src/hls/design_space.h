#pragma once

#include "hls/encoding.h"
#include "hls/pruner.h"

namespace cmmfo::hls {

/// A materialized, encoded design space: the finite set X the Bayesian
/// optimizer samples from (every point is "already known except its
/// objective values", Sec. II-B).
class DesignSpace {
 public:
  /// Build the pruned space (Algorithm 1).
  static DesignSpace buildPruned(const Kernel& kernel, const SpaceSpec& spec);
  /// Build the raw Cartesian space, capped (pruning-off ablation).
  static DesignSpace buildRaw(const Kernel& kernel, const SpaceSpec& spec,
                              std::size_t cap);

  std::size_t size() const { return configs_.size(); }
  const DirectiveConfig& config(std::size_t i) const { return configs_[i]; }
  const std::vector<double>& features(std::size_t i) const {
    return features_[i];
  }
  std::size_t featureDim() const { return encoder_.dim(); }
  const Encoder& encoder() const { return encoder_; }
  const PruneStats& stats() const { return stats_; }
  const std::vector<std::vector<double>>& allFeatures() const {
    return features_;
  }

 private:
  DesignSpace(const Kernel& kernel, const SpaceSpec& spec,
              std::vector<DirectiveConfig> configs, PruneStats stats);

  Encoder encoder_;
  std::vector<DirectiveConfig> configs_;
  std::vector<std::vector<double>> features_;
  PruneStats stats_;
};

}  // namespace cmmfo::hls
