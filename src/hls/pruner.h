#pragma once

#include "hls/directives.h"
#include "hls/kernel_ir.h"

namespace cmmfo::hls {

/// One merged array/loop tree (Fig. 3b): a group of arrays whose index
/// loops overlap, plus the union of those loops.
struct MergedTree {
  std::vector<ArrayId> arrays;
  std::vector<LoopId> loops;
};

/// Build one tree per array (root = array, nodes = loops indexing it) and
/// merge trees sharing loop nodes — steps 3-4 of Algorithm 1.
std::vector<MergedTree> buildMergedTrees(const Kernel& kernel);

/// Is unrolling loop `l` compatible with partitioning array `a` as `type`?
/// Cyclic partitioning spreads *consecutive* elements across banks, so only
/// unit-stride (minor) index loops fan out across banks; block partitioning
/// is the dual and serves strided (major) index loops. This encodes the
/// Fig. 3 discussion ("L1 is incompatible with CYCLIC partitioning of A").
bool unrollCompatible(const Kernel& kernel, LoopId l, ArrayId a,
                      PartitionType type);

struct PruneStats {
  double raw_size = 0.0;
  std::size_t pruned_size = 0;
  double reduction_factor() const {
    return pruned_size == 0 ? 0.0
                            : raw_size / static_cast<double>(pruned_size);
  }
};

/// Tree-based design-space pruning (Algorithm 1): enumerate only directive
/// configurations whose unroll and partition factors are mutually
/// compatible, with backtracked partition assignment for co-accessed
/// arrays, then expand orthogonal pipeline options and deduplicate.
///
/// The returned configurations always include the all-default baseline.
std::vector<DirectiveConfig> prunedConfigs(const Kernel& kernel,
                                           const SpaceSpec& spec,
                                           PruneStats* stats = nullptr);

/// Exhaustive enumeration of the RAW space (for tests and the pruning-off
/// ablation). Aborts via the `cap`: returns at most `cap` configurations,
/// enumerated in odometer order.
std::vector<DirectiveConfig> rawConfigs(const Kernel& kernel,
                                        const SpaceSpec& spec,
                                        std::size_t cap);

/// Post-hoc feasibility check used by tests: true iff every (unrolled loop,
/// partitioned array) pair in the configuration is compatible and factors
/// match, i.e. the configuration would survive Algorithm 1's rules.
bool isCompatibleConfig(const Kernel& kernel, const DirectiveConfig& cfg);

}  // namespace cmmfo::hls
