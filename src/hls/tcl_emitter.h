#pragma once

#include <string>

#include "hls/directives.h"

namespace cmmfo::hls {

/// Options for the Vivado HLS TCL emitter.
struct TclOptions {
  /// Top-level function the directives attach to.
  std::string top_function = "top";
  /// Project / solution names for the script preamble.
  std::string project = "cmmfo_proj";
  std::string solution = "solution1";
  /// Target device part (default: the paper's VC707 part).
  std::string part = "xc7vx485tffg1761-2";
  /// Target clock period in ns.
  double clock_period_ns = 10.0;
  /// Source file added to the project.
  std::string source_file = "kernel.cpp";
  /// Which stages to run: csynth only, or export through implementation.
  bool run_implementation = true;
};

/// Emit the set_directive_* lines for one configuration (the body of a
/// directives.tcl). Loops are addressed as "<top>/<loop-name>" and arrays
/// as variables of the top function, matching Vivado HLS conventions.
///
/// This is the final conversion step of the paper's flow ("convert the
/// directives to feature vectors and HLS TCL files", Sec. V): the output is
/// what a real Vivado HLS 2018.2 run would consume in place of our
/// simulator.
std::string emitDirectivesTcl(const Kernel& kernel, const DirectiveConfig& cfg,
                              const TclOptions& opts = {});

/// Emit a complete, runnable vivado_hls batch script: project setup, source,
/// directives, csynth (and optionally export to implementation).
std::string emitRunScriptTcl(const Kernel& kernel, const DirectiveConfig& cfg,
                             const TclOptions& opts = {});

}  // namespace cmmfo::hls
