#include "hls/space_parser.h"

#include <algorithm>
#include <sstream>

namespace cmmfo::hls {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;  // rest of line is a comment
    tokens.push_back(t);
  }
  return tokens;
}

std::vector<std::string> splitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

bool parseIntList(const std::string& s, std::vector<int>* out) {
  out->clear();
  for (const auto& part : splitCommas(s)) {
    try {
      std::size_t pos = 0;
      const int v = std::stoi(part, &pos);
      if (pos != part.size() || v < 1) return false;
      out->push_back(v);
    } catch (...) {
      return false;
    }
  }
  return !out->empty();
}

bool parseTypeList(const std::string& s, std::vector<PartitionType>* out) {
  out->clear();
  for (const auto& part : splitCommas(s)) {
    if (part == "none") out->push_back(PartitionType::kNone);
    else if (part == "cyclic") out->push_back(PartitionType::kCyclic);
    else if (part == "block") out->push_back(PartitionType::kBlock);
    else if (part == "complete") out->push_back(PartitionType::kComplete);
    else return false;
  }
  return !out->empty();
}

int findLoop(const Kernel& k, const std::string& name) {
  for (std::size_t l = 0; l < k.numLoops(); ++l)
    if (k.loop(static_cast<LoopId>(l)).name == name) return static_cast<int>(l);
  return -1;
}

int findArray(const Kernel& k, const std::string& name) {
  for (std::size_t a = 0; a < k.numArrays(); ++a)
    if (k.array(static_cast<ArrayId>(a)).name == name)
      return static_cast<int>(a);
  return -1;
}

}  // namespace

std::variant<SpaceSpec, ParseError> parseSpaceSpec(const Kernel& kernel,
                                                   const std::string& text) {
  SpaceSpec spec;
  spec.loops.resize(kernel.numLoops());
  spec.arrays.resize(kernel.numArrays());

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    auto fail = [&](const std::string& msg) {
      return ParseError{line_no, msg};
    };

    if (tokens[0] == "loop") {
      if (tokens.size() < 4 || tokens[2] != "unroll")
        return fail("expected: loop <name> unroll <list> [pipeline <iis>]");
      const int l = findLoop(kernel, tokens[1]);
      if (l < 0) return fail("unknown loop '" + tokens[1] + "'");
      LoopSiteOptions& site = spec.loops[l];
      if (!parseIntList(tokens[3], &site.unroll_factors))
        return fail("bad unroll factor list '" + tokens[3] + "'");
      if (std::find(site.unroll_factors.begin(), site.unroll_factors.end(),
                    1) == site.unroll_factors.end())
        site.unroll_factors.insert(site.unroll_factors.begin(), 1);
      if (tokens.size() >= 5) {
        if (tokens[4] != "pipeline" || tokens.size() != 6)
          return fail("expected: pipeline <ii list>");
        site.allow_pipeline = true;
        if (!parseIntList(tokens[5], &site.pipeline_iis))
          return fail("bad II list '" + tokens[5] + "'");
      }
    } else if (tokens[0] == "array") {
      if (tokens.size() != 6 || tokens[2] != "partition" ||
          tokens[4] != "factors")
        return fail(
            "expected: array <name> partition <types> factors <list>");
      const int a = findArray(kernel, tokens[1]);
      if (a < 0) return fail("unknown array '" + tokens[1] + "'");
      ArraySiteOptions& site = spec.arrays[a];
      if (!parseTypeList(tokens[3], &site.types))
        return fail("bad partition type list '" + tokens[3] + "'");
      if (!parseIntList(tokens[5], &site.factors))
        return fail("bad factor list '" + tokens[5] + "'");
    } else {
      return fail("unknown directive site kind '" + tokens[0] + "'");
    }
  }
  return spec;
}

std::string formatSpaceSpec(const Kernel& kernel, const SpaceSpec& spec) {
  std::ostringstream os;
  auto intList = [](const std::vector<int>& v) {
    std::ostringstream s;
    for (std::size_t i = 0; i < v.size(); ++i)
      s << (i ? "," : "") << v[i];
    return s.str();
  };
  for (std::size_t l = 0; l < spec.loops.size(); ++l) {
    const auto& site = spec.loops[l];
    os << "loop " << kernel.loop(static_cast<LoopId>(l)).name << " unroll "
       << intList(site.unroll_factors);
    if (site.allow_pipeline)
      os << " pipeline " << intList(site.pipeline_iis);
    os << "\n";
  }
  for (std::size_t a = 0; a < spec.arrays.size(); ++a) {
    const auto& site = spec.arrays[a];
    os << "array " << kernel.array(static_cast<ArrayId>(a)).name
       << " partition ";
    for (std::size_t i = 0; i < site.types.size(); ++i)
      os << (i ? "," : "") << partitionTypeName(site.types[i]);
    os << " factors " << intList(site.factors) << "\n";
  }
  return os.str();
}

}  // namespace cmmfo::hls
