#include "hls/kernel_ir.h"

#include <algorithm>
#include <sstream>

namespace cmmfo::hls {

const char* opKindName(OpKind k) {
  switch (k) {
    case OpKind::kAdd: return "add";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kCmp: return "cmp";
    case OpKind::kLogic: return "logic";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
  }
  return "?";
}

int OpCounts::total() const {
  int t = 0;
  for (int c : counts) t += c;
  return t;
}

int OpCounts::memoryOps() const {
  return (*this)[OpKind::kLoad] + (*this)[OpKind::kStore];
}

int OpCounts::computeOps() const { return total() - memoryOps(); }

ArrayId Kernel::addArray(std::string name, int size, int elem_bits) {
  arrays_.push_back({std::move(name), size, elem_bits});
  return static_cast<ArrayId>(arrays_.size() - 1);
}

LoopId Kernel::addLoop(std::string name, int trip_count, LoopId parent) {
  Loop l;
  l.name = std::move(name);
  l.trip_count = trip_count;
  l.parent = parent;
  loops_.push_back(std::move(l));
  return static_cast<LoopId>(loops_.size() - 1);
}

std::vector<LoopId> Kernel::children(LoopId id) const {
  std::vector<LoopId> out;
  for (std::size_t i = 0; i < loops_.size(); ++i)
    if (loops_[i].parent == id) out.push_back(static_cast<LoopId>(i));
  return out;
}

std::vector<LoopId> Kernel::topLoops() const { return children(kNoLoop); }

bool Kernel::isInnermost(LoopId id) const { return children(id).empty(); }

int Kernel::depth(LoopId id) const {
  int d = 0;
  for (LoopId p = loops_[id].parent; p != kNoLoop; p = loops_[p].parent) ++d;
  return d;
}

std::int64_t Kernel::tripProductToRoot(LoopId id) const {
  std::int64_t prod = 1;
  for (LoopId l = id; l != kNoLoop; l = loops_[l].parent)
    prod *= loops_[l].trip_count;
  return prod;
}

std::vector<LoopId> Kernel::loopsIndexingArray(ArrayId a) const {
  std::vector<LoopId> out;
  for (std::size_t l = 0; l < loops_.size(); ++l)
    for (const auto& ref : loops_[l].refs) {
      if (ref.array != a) continue;
      for (const auto& [loop_id, role] : ref.index) {
        (void)role;
        if (std::find(out.begin(), out.end(), loop_id) == out.end())
          out.push_back(loop_id);
      }
    }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ArrayId> Kernel::arraysInLoop(LoopId l) const {
  std::vector<ArrayId> out;
  for (const auto& ref : loops_[l].refs)
    if (std::find(out.begin(), out.end(), ref.array) == out.end())
      out.push_back(ref.array);
  std::sort(out.begin(), out.end());
  return out;
}

IndexRole Kernel::roleOf(LoopId l, ArrayId a) const {
  IndexRole role = IndexRole::kMinor;
  bool found = false;
  for (const auto& loop : loops_)
    for (const auto& ref : loop.refs) {
      if (ref.array != a) continue;
      for (const auto& [loop_id, r] : ref.index)
        if (loop_id == l) {
          found = true;
          if (r == IndexRole::kMajor) role = IndexRole::kMajor;
        }
    }
  (void)found;
  return role;
}

std::string Kernel::validate() const {
  std::ostringstream err;
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    const Loop& l = loops_[i];
    if (l.trip_count < 1) err << "loop " << l.name << " trip_count < 1; ";
    if (l.parent != kNoLoop &&
        (l.parent < 0 || l.parent >= static_cast<LoopId>(i)))
      err << "loop " << l.name << " parent must precede it; ";
    for (const auto& ref : l.refs) {
      if (ref.array < 0 || ref.array >= static_cast<ArrayId>(arrays_.size()))
        err << "loop " << l.name << " references unknown array; ";
      for (const auto& [loop_id, role] : ref.index) {
        (void)role;
        if (loop_id < 0 || loop_id >= static_cast<LoopId>(loops_.size()))
          err << "loop " << l.name << " index uses unknown loop; ";
      }
      if (ref.count < 1) err << "loop " << l.name << " ref count < 1; ";
    }
  }
  for (const auto& a : arrays_)
    if (a.size < 1) err << "array " << a.name << " size < 1; ";
  return err.str();
}

}  // namespace cmmfo::hls
