#pragma once

#include <string>
#include <variant>

#include "hls/directives.h"

namespace cmmfo::hls {

/// Parse error with a line number and message.
struct ParseError {
  int line = 0;
  std::string message;
};

/// Parse a directive-space description — the in-repo equivalent of the
/// paper's YAML files ("the initial design space is defined by specifying
/// all of the possible locations of directives and their factors",
/// Sec. V). Line-oriented format, `#` comments:
///
///   # loops: unroll factor list, optional pipeline with II list
///   loop <name> unroll <f1,f2,...> [pipeline <ii1,ii2,...>]
///   # arrays: partition type list and factor list
///   array <name> partition <none|cyclic|block|complete[,...]> factors <f1,...>
///
/// Sites not mentioned keep their defaults (no unrolling / no partitioning).
/// Loop and array names are resolved against the kernel; unknown names,
/// malformed numbers, or factors < 1 are reported as errors.
std::variant<SpaceSpec, ParseError> parseSpaceSpec(const Kernel& kernel,
                                                   const std::string& text);

/// Render a SpaceSpec back into the text format (round-trips through
/// parseSpaceSpec). Useful for logging the space actually explored.
std::string formatSpaceSpec(const Kernel& kernel, const SpaceSpec& spec);

}  // namespace cmmfo::hls
