#include "hls/design_space.h"

namespace cmmfo::hls {

DesignSpace::DesignSpace(const Kernel& kernel, const SpaceSpec& spec,
                         std::vector<DirectiveConfig> configs, PruneStats stats)
    : encoder_(kernel, spec), configs_(std::move(configs)), stats_(stats) {
  features_.reserve(configs_.size());
  for (const auto& c : configs_) features_.push_back(encoder_.encode(c));
}

DesignSpace DesignSpace::buildPruned(const Kernel& kernel,
                                     const SpaceSpec& spec) {
  PruneStats stats;
  auto configs = prunedConfigs(kernel, spec, &stats);
  return DesignSpace(kernel, spec, std::move(configs), stats);
}

DesignSpace DesignSpace::buildRaw(const Kernel& kernel, const SpaceSpec& spec,
                                  std::size_t cap) {
  PruneStats stats;
  stats.raw_size = spec.rawSize();
  auto configs = rawConfigs(kernel, spec, cap);
  stats.pruned_size = configs.size();
  return DesignSpace(kernel, spec, std::move(configs), stats);
}

}  // namespace cmmfo::hls
