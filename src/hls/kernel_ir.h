#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cmmfo::hls {

using LoopId = int;
using ArrayId = int;
inline constexpr LoopId kNoLoop = -1;

/// Operation kinds tracked per loop body. Latency/area weights for each
/// kind live in the simulator's device model.
enum class OpKind : int {
  kAdd = 0,
  kMul,
  kDiv,
  kCmp,
  kLogic,
  kLoad,
  kStore,
};
inline constexpr int kNumOpKinds = 7;
const char* opKindName(OpKind k);

/// Per-iteration op counts for one loop body.
struct OpCounts {
  std::array<int, kNumOpKinds> counts{};

  int& operator[](OpKind k) { return counts[static_cast<int>(k)]; }
  int operator[](OpKind k) const { return counts[static_cast<int>(k)]; }
  int total() const;
  int memoryOps() const;
  int computeOps() const;
};

/// How a loop's induction variable enters an array index expression.
/// For A[L1 * 10 + L2]: L1 indexes A in a kMajor (strided) position and L2
/// in the kMinor (unit-stride) position. This distinction drives the
/// cyclic/block partitioning compatibility rules of Algorithm 1.
enum class IndexRole { kMinor, kMajor };

/// One array reference inside a loop body.
struct ArrayRef {
  ArrayId array = 0;
  /// (loop, role) pairs for every induction variable in the index.
  std::vector<std::pair<LoopId, IndexRole>> index;
  bool is_write = false;
  /// Number of such accesses per iteration.
  int count = 1;
};

struct ArrayDecl {
  std::string name;
  int size = 0;       // elements
  int elem_bits = 32;
};

struct Loop {
  std::string name;
  int trip_count = 1;
  LoopId parent = kNoLoop;
  /// Loop-carried dependence (recurrence): bounds pipeline II from below and
  /// caps the useful unroll parallelism.
  bool loop_carried_dep = false;
  int dep_distance = 1;
  OpCounts body_ops;              // per-iteration ops excluding child loops
  std::vector<ArrayRef> refs;     // array accesses in this loop's body
};

/// A compute kernel as a loop forest plus arrays — the unit both the
/// tree-based pruner (Algorithm 1) and the performance models consume.
class Kernel {
 public:
  explicit Kernel(std::string name) : name_(std::move(name)) {}

  /// Builder API. addLoop returns the new LoopId; parent = kNoLoop for
  /// top-level loops. Children must be added after their parents.
  ArrayId addArray(std::string name, int size, int elem_bits = 32);
  LoopId addLoop(std::string name, int trip_count, LoopId parent = kNoLoop);
  Loop& loop(LoopId id) { return loops_[id]; }
  const Loop& loop(LoopId id) const { return loops_[id]; }
  ArrayDecl& array(ArrayId id) { return arrays_[id]; }
  const ArrayDecl& array(ArrayId id) const { return arrays_[id]; }

  const std::string& name() const { return name_; }
  std::size_t numLoops() const { return loops_.size(); }
  std::size_t numArrays() const { return arrays_.size(); }

  std::vector<LoopId> children(LoopId id) const;
  std::vector<LoopId> topLoops() const;
  bool isInnermost(LoopId id) const;
  /// Depth of the loop in its nest (top-level = 0).
  int depth(LoopId id) const;
  /// Product of trip counts from `id` up to (and including) its top ancestor.
  std::int64_t tripProductToRoot(LoopId id) const;
  /// Loops (ids) whose induction variable indexes the given array anywhere.
  std::vector<LoopId> loopsIndexingArray(ArrayId a) const;
  /// Arrays referenced (directly) in the body of the given loop.
  std::vector<ArrayId> arraysInLoop(LoopId l) const;
  /// Role of loop l in references to array a (kMajor wins if mixed).
  IndexRole roleOf(LoopId l, ArrayId a) const;

  /// Structural sanity checks (parents precede children, refs in range...).
  /// Returns an empty string when valid, else a description of the problem.
  std::string validate() const;

 private:
  std::string name_;
  std::vector<Loop> loops_;
  std::vector<ArrayDecl> arrays_;
};

}  // namespace cmmfo::hls
