#pragma once

#include <string>
#include <vector>

#include "hls/directives.h"

namespace cmmfo::hls {

/// Directive-configuration feature encoder (Sec. III-B).
///
/// Numeric factor lists are min-max normalized over the site's option list,
/// e.g. factors {2, 5, 10} encode as {0, 0.375, 1} — preserving relative
/// distances, which the paper argues beats one-hot for GP kernels.
/// Booleans encode as 0/1. The final feature vector is the concatenation of
/// all directive-site features, in a fixed site order.
class Encoder {
 public:
  Encoder(const Kernel& kernel, const SpaceSpec& spec);

  std::vector<double> encode(const DirectiveConfig& cfg) const;
  std::size_t dim() const { return names_.size(); }
  const std::vector<std::string>& featureNames() const { return names_; }

  /// Min-max range of one numeric directive site.
  struct NumericSite {
    double lo = 0.0;
    double hi = 1.0;
    double normalize(double v) const {
      return hi - lo > 1e-12 ? (v - lo) / (hi - lo) : 0.0;
    }
  };

 private:
  const SpaceSpec* spec_;
  std::vector<NumericSite> unroll_sites_;   // per loop
  std::vector<bool> loop_has_pipeline_;     // per loop
  std::vector<NumericSite> ii_sites_;       // per loop (valid if pipeline)
  std::vector<NumericSite> factor_sites_;   // per array
  std::vector<double> type_scale_;          // per array: 1/(numTypes-1) or 0
  std::vector<std::vector<PartitionType>> type_lists_;  // per array
  std::vector<std::string> names_;
};

}  // namespace cmmfo::hls
