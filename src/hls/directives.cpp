#include "hls/directives.h"

#include <sstream>

namespace cmmfo::hls {

const char* partitionTypeName(PartitionType t) {
  switch (t) {
    case PartitionType::kNone: return "none";
    case PartitionType::kCyclic: return "cyclic";
    case PartitionType::kBlock: return "block";
    case PartitionType::kComplete: return "complete";
  }
  return "?";
}

std::uint64_t DirectiveConfig::hash() const {
  // FNV-1a over the directive fields; stable across runs and platforms.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& l : loops) {
    mix(static_cast<std::uint64_t>(l.unroll));
    mix(l.pipeline ? 2u : 1u);
    mix(static_cast<std::uint64_t>(l.ii));
  }
  for (const auto& a : arrays) {
    mix(static_cast<std::uint64_t>(a.type) + 11u);
    mix(static_cast<std::uint64_t>(a.factor));
  }
  return h;
}

std::string DirectiveConfig::toString(const Kernel& k) const {
  std::ostringstream os;
  for (std::size_t l = 0; l < loops.size(); ++l) {
    const auto& d = loops[l];
    if (d.unroll > 1)
      os << "#pragma HLS unroll " << k.loop(static_cast<LoopId>(l)).name
         << " factor=" << d.unroll << "\n";
    if (d.pipeline)
      os << "#pragma HLS pipeline " << k.loop(static_cast<LoopId>(l)).name
         << " II=" << d.ii << "\n";
  }
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const auto& d = arrays[a];
    if (d.type != PartitionType::kNone)
      os << "#pragma HLS array_partition " << k.array(static_cast<ArrayId>(a)).name
         << " " << partitionTypeName(d.type) << " factor=" << d.factor << "\n";
  }
  return os.str();
}

double SpaceSpec::rawSize() const {
  double size = 1.0;
  for (const auto& l : loops) {
    double site = static_cast<double>(l.unroll_factors.size());
    if (l.allow_pipeline)
      site *= 1.0 + static_cast<double>(l.pipeline_iis.size());
    size *= site;
  }
  for (const auto& a : arrays) {
    double site = 0.0;
    for (PartitionType t : a.types)
      site += (t == PartitionType::kCyclic || t == PartitionType::kBlock)
                  ? static_cast<double>(a.factors.size())
                  : 1.0;
    size *= site;
  }
  return size;
}

std::vector<int> divisorFactors(int trip, int max_factor) {
  std::vector<int> out;
  for (int f = 1; f <= trip && f <= max_factor; ++f)
    if (trip % f == 0) out.push_back(f);
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace cmmfo::hls
