#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hls/kernel_ir.h"

namespace cmmfo::hls {

/// Array-partitioning pragma variants (Fig. 1 / Sec. III-A).
enum class PartitionType : int { kNone = 0, kCyclic, kBlock, kComplete };
const char* partitionTypeName(PartitionType t);

/// Per-loop directive assignment.
struct LoopDirective {
  int unroll = 1;         // 1 = no unrolling
  bool pipeline = false;  // PIPELINE pragma on/off
  int ii = 1;             // requested initiation interval when pipelined
  bool operator==(const LoopDirective&) const = default;
};

/// Per-array directive assignment.
struct ArrayDirective {
  PartitionType type = PartitionType::kNone;
  int factor = 1;  // meaningful for cyclic/block
  bool operator==(const ArrayDirective&) const = default;
};

/// A full directive configuration for a kernel: the "x" of the paper.
struct DirectiveConfig {
  std::vector<LoopDirective> loops;    // indexed by LoopId
  std::vector<ArrayDirective> arrays;  // indexed by ArrayId
  bool operator==(const DirectiveConfig&) const = default;

  /// Stable content hash, used for dedup and for the simulator's
  /// deterministic per-configuration noise.
  std::uint64_t hash() const;
  std::string toString(const Kernel& k) const;
};

/// Candidate options at each directive site — the raw (unpruned) space
/// specification, the in-code equivalent of the paper's YAML description
/// files.
struct LoopSiteOptions {
  std::vector<int> unroll_factors = {1};  // must include 1
  bool allow_pipeline = false;
  std::vector<int> pipeline_iis = {1};
  bool operator==(const LoopSiteOptions&) const = default;
};

struct ArraySiteOptions {
  std::vector<PartitionType> types = {PartitionType::kNone};
  std::vector<int> factors = {1};  // used for cyclic/block
  bool operator==(const ArraySiteOptions&) const = default;
};

struct SpaceSpec {
  std::vector<LoopSiteOptions> loops;    // indexed by LoopId
  std::vector<ArraySiteOptions> arrays;  // indexed by ArrayId
  bool operator==(const SpaceSpec&) const = default;

  /// Number of configurations in the raw Cartesian space (can be astronomically
  /// large, hence double).
  double rawSize() const;
};

/// Convenience: unroll-factor candidates = divisors of `trip` up to
/// `max_factor` (bounded list keeps spaces finite), always including 1.
std::vector<int> divisorFactors(int trip, int max_factor);

}  // namespace cmmfo::hls
