#include "hls/encoding.h"

#include <algorithm>
#include <cassert>

namespace cmmfo::hls {

namespace {
Encoder::NumericSite makeNumericSiteFromInts(const std::vector<int>& opts);
}  // namespace

Encoder::Encoder(const Kernel& kernel, const SpaceSpec& spec) : spec_(&spec) {
  assert(spec.loops.size() == kernel.numLoops());
  assert(spec.arrays.size() == kernel.numArrays());

  for (std::size_t l = 0; l < kernel.numLoops(); ++l) {
    const auto& lo = spec.loops[l];
    const auto [mn, mx] = std::minmax_element(lo.unroll_factors.begin(),
                                              lo.unroll_factors.end());
    unroll_sites_.push_back({static_cast<double>(*mn), static_cast<double>(*mx)});
    names_.push_back(kernel.loop(static_cast<LoopId>(l)).name + ".unroll");

    loop_has_pipeline_.push_back(lo.allow_pipeline);
    NumericSite ii{1.0, 1.0};
    if (lo.allow_pipeline) {
      const auto [imn, imx] = std::minmax_element(lo.pipeline_iis.begin(),
                                                  lo.pipeline_iis.end());
      ii = {static_cast<double>(*imn), static_cast<double>(*imx)};
      names_.push_back(kernel.loop(static_cast<LoopId>(l)).name + ".pipeline");
      if (lo.pipeline_iis.size() > 1)
        names_.push_back(kernel.loop(static_cast<LoopId>(l)).name + ".ii");
    }
    ii_sites_.push_back(ii);
  }

  for (std::size_t a = 0; a < kernel.numArrays(); ++a) {
    const auto& ao = spec.arrays[a];
    factor_sites_.push_back(makeNumericSiteFromInts(ao.factors));
    type_lists_.push_back(ao.types);
    type_scale_.push_back(
        ao.types.size() > 1 ? 1.0 / static_cast<double>(ao.types.size() - 1)
                            : 0.0);
    if (ao.types.size() > 1)
      names_.push_back(kernel.array(static_cast<ArrayId>(a)).name + ".ptype");
    if (ao.factors.size() > 1)
      names_.push_back(kernel.array(static_cast<ArrayId>(a)).name + ".pfactor");
  }
}

namespace {
Encoder::NumericSite makeNumericSiteFromInts(const std::vector<int>& opts) {
  if (opts.empty()) return {0.0, 1.0};
  const auto [mn, mx] = std::minmax_element(opts.begin(), opts.end());
  return {static_cast<double>(*mn), static_cast<double>(*mx)};
}
}  // namespace

std::vector<double> Encoder::encode(const DirectiveConfig& cfg) const {
  std::vector<double> x;
  x.reserve(dim());
  for (std::size_t l = 0; l < cfg.loops.size(); ++l) {
    const auto& d = cfg.loops[l];
    x.push_back(unroll_sites_[l].normalize(d.unroll));
    if (loop_has_pipeline_[l]) {
      x.push_back(d.pipeline ? 1.0 : 0.0);
      if (spec_->loops[l].pipeline_iis.size() > 1)
        x.push_back(d.pipeline ? ii_sites_[l].normalize(d.ii) : 0.0);
    }
  }
  for (std::size_t a = 0; a < cfg.arrays.size(); ++a) {
    const auto& d = cfg.arrays[a];
    if (type_lists_[a].size() > 1) {
      const auto it =
          std::find(type_lists_[a].begin(), type_lists_[a].end(), d.type);
      const double idx = it == type_lists_[a].end()
                             ? 0.0
                             : static_cast<double>(it - type_lists_[a].begin());
      x.push_back(idx * type_scale_[a]);
    }
    if (spec_->arrays[a].factors.size() > 1) {
      // kNone encodes at factor 1 (== no banking); kComplete saturates at 1.
      const double f = d.type == PartitionType::kNone ? 1.0
                       : d.type == PartitionType::kComplete
                           ? factor_sites_[a].hi
                           : static_cast<double>(d.factor);
      x.push_back(factor_sites_[a].normalize(f));
    }
  }
  assert(x.size() == dim());
  return x;
}

}  // namespace cmmfo::hls
